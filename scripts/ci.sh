#!/usr/bin/env sh
# Full CI sweep: tier-1 tests, ThreadSanitizer and Address+UB Sanitizer
# presets, and a benchmark regression check against the committed baselines.
#
# Usage: scripts/ci.sh [stage...]
#   stages: tier1 tsan asan bench-check   (default: all four, in order)
#
# Environment:
#   JOBS            parallel build/test width (default: nproc)
#   BENCH_MIN_TIME  seconds per benchmark for bench-check (default 0.2; the
#                   committed baselines were recorded at the default)
#   BENCH_THRESHOLD allowed fractional regression for bench-check
#                   (default 0.15 — benches run on shared CI hardware, so a
#                   looser gate than a quiet desk run)
set -eu

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
STAGES=${*:-"tier1 tsan asan bench-check"}

run_preset() {
  preset=$1
  shift
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$preset" -j "$JOBS" "$@"
}

for stage in $STAGES; do
  echo "==== ci: $stage ===="
  case "$stage" in
    tier1)
      run_preset default
      ;;
    tsan)
      run_preset tsan
      ;;
    asan)
      run_preset asan
      ;;
    bench-check)
      # Release build, fresh bench JSONs, gated diff against the committed
      # baselines (throughput, p95_lag_ts, and the per-sink partition
      # volume counters — see bench/compare_bench_json.py).
      cmake --preset release
      cmake --build --preset default -j "$JOBS" \
        --target micro_replication_bench micro_engine_bench
      bench/run_replication_bench.sh build/bench/micro_replication_bench \
        /tmp/ci_bench_replication.json
      python3 bench/compare_bench_json.py BENCH_replication.json \
        /tmp/ci_bench_replication.json \
        --threshold "${BENCH_THRESHOLD:-0.15}"
      bench/run_engine_bench.sh build/bench/micro_engine_bench \
        /tmp/ci_bench_engine.json
      python3 bench/compare_bench_json.py BENCH_engine.json \
        /tmp/ci_bench_engine.json \
        --threshold "${BENCH_THRESHOLD:-0.15}"
      ;;
    *)
      echo "ci.sh: unknown stage '$stage'" >&2
      exit 2
      ;;
  esac
done
echo "==== ci: all stages passed ===="
