#!/usr/bin/env sh
# Full CI sweep: tier-1 tests, ThreadSanitizer and Address+UB Sanitizer
# presets, and a benchmark regression check against the committed baselines.
#
# Usage: scripts/ci.sh [stage...]
#   stages: tier1 proc crash tsan asan bench-check
#   (default: all six, in order)
#
# Environment:
#   JOBS            parallel build/test width (default: nproc)
#   BENCH_MIN_TIME  seconds per benchmark for bench-check (default 0.2; the
#                   committed baselines were recorded at the default)
#   BENCH_REPS      repetitions per benchmark (default 3); the differ gates
#                   on the best repetition per row, which filters out the
#                   transient slowdowns of shared CI hardware
#   BENCH_THRESHOLD allowed fractional regression for bench-check
#                   (default 0.25, matching the bench-check CMake target —
#                   even best-of-N rows drift ~15% run-to-run on shared CI
#                   hardware; tighten locally on a quiet machine)
set -eu

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
STAGES=${*:-"tier1 proc crash tsan asan bench-check"}

run_preset() {
  preset=$1
  shift
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$preset" -j "$JOBS" "$@"
}

for stage in $STAGES; do
  echo "==== ci: $stage ===="
  case "$stage" in
    tier1)
      run_preset default
      ;;
    proc)
      # Multi-process deployment smoke: build the site-server binary, then
      # run the fork/exec cluster suite (1 primary + secondaries over
      # loopback TCP, including kill -9 of a secondary followed by a fresh
      # process resyncing via full log replay). The timeout guard keeps a
      # wedged child process from hanging CI: ctest's per-test TIMEOUT
      # reaps the test, and the test itself SIGKILLs servers that ignore
      # SIGTERM.
      cmake --preset default
      cmake --build --preset default -j "$JOBS" \
        --target lazysi_server system_proc_test
      ctest --test-dir build -R system_proc_test --output-on-failure \
        --timeout 120
      # Fan-out soak: 16 secondary processes against one primary with the
      # reactor wire (batching on). The primary must serve the whole fleet
      # from its fixed thread pool — the soak fails if its kernel thread
      # count exceeds the O(1) budget (reactor + workers + runtime threads),
      # i.e. if anything regresses to a thread per connection.
      SOAK_SECONDS=3 MAX_PRIMARY_THREADS=10 BATCHING=1 \
        scripts/run_cluster.sh 16 build/src/server/lazysi_server
      ;;
    crash)
      # Durability and crash-recovery sweep: the WAL unit suite (torn-tail
      # file surgery, truncation, fsync-mode contract), the data-dir
      # recovery suite (fork+SIGKILL at injected crash points inside the
      # log writer, differential restore-vs-replay), and the multi-process
      # primary kill -9 restart case.
      cmake --preset default
      cmake --build --preset default -j "$JOBS" \
        --target lazysi_server wal_test engine_test system_proc_test
      ctest --test-dir build -R "wal_test|engine_test" \
        --output-on-failure --timeout 120
      GTEST_FILTER="ProcClusterTest.PrimaryKillNineRecoversAckedCommits" \
        ctest --test-dir build -R system_proc_test --output-on-failure \
        --timeout 120
      ;;
    tsan)
      run_preset tsan
      ;;
    asan)
      run_preset asan
      ;;
    bench-check)
      # Release build (its own build-release/ tree, never mixed with the
      # RelWithDebInfo tier-1 tree), fresh bench JSONs, gated diff against
      # the committed baselines (throughput, p95_lag_ts, and the per-sink
      # partition volume counters — see bench/compare_bench_json.py).
      cmake --preset release
      cmake --build --preset release -j "$JOBS" \
        --target micro_replication_bench micro_engine_bench
      BENCH_MIN_TIME="${BENCH_MIN_TIME:-0.2}" \
        bench/run_replication_bench.sh \
        build-release/bench/micro_replication_bench \
        /tmp/ci_bench_replication.json
      python3 bench/compare_bench_json.py BENCH_replication.json \
        /tmp/ci_bench_replication.json \
        --threshold "${BENCH_THRESHOLD:-0.25}"
      BENCH_MIN_TIME="${BENCH_MIN_TIME:-0.2}" \
        bench/run_engine_bench.sh \
        build-release/bench/micro_engine_bench \
        /tmp/ci_bench_engine.json
      python3 bench/compare_bench_json.py BENCH_engine.json \
        /tmp/ci_bench_engine.json \
        --threshold "${BENCH_THRESHOLD:-0.25}"
      ;;
    *)
      echo "ci.sh: unknown stage '$stage'" >&2
      exit 2
      ;;
  esac
done
echo "==== ci: all stages passed ===="
