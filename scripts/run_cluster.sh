#!/usr/bin/env bash
# Launches a loopback lazy-master cluster: one primary + N secondary
# lazysi_server processes, each site its own process (Figure 1's deployment
# shape). Ports are ephemeral and printed once every site is up; the cluster
# runs until Ctrl-C / SIGTERM, then shuts down every site in order.
#
#   scripts/run_cluster.sh [num_secondaries] [server_binary]
#
# Defaults: 2 secondaries, build/src/server/lazysi_server.
set -euo pipefail

cd "$(dirname "$0")/.."

NUM_SECONDARIES="${1:-2}"
SERVER_BIN="${2:-build/src/server/lazysi_server}"

if [[ ! -x "$SERVER_BIN" ]]; then
  echo "error: $SERVER_BIN not built (cmake --build build --target lazysi_server)" >&2
  exit 1
fi

WORKDIR="$(mktemp -d /tmp/lazysi_cluster.XXXXXX)"
PIDS=()

cleanup() {
  trap - TERM INT EXIT
  echo
  echo "shutting down cluster..."
  for pid in "${PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
  echo "cluster down."
}
trap cleanup TERM INT EXIT

wait_ports() {
  # wait_ports <port-file>: polls until the server writes its ports.
  local file="$1"
  for _ in $(seq 200); do
    [[ -s "$file" ]] && return 0
    sleep 0.05
  done
  echo "error: server did not come up ($file)" >&2
  return 1
}

"$SERVER_BIN" --role=primary --port-file="$WORKDIR/primary.ports" &
PIDS+=($!)
wait_ports "$WORKDIR/primary.ports"
read -r PRIMARY_CLIENT PRIMARY_REPL < "$WORKDIR/primary.ports"
echo "primary:      client 127.0.0.1:$PRIMARY_CLIENT, replication :$PRIMARY_REPL"

for i in $(seq "$NUM_SECONDARIES"); do
  "$SERVER_BIN" --role=secondary --primary-port="$PRIMARY_REPL" \
    --site-id="$i" --port-file="$WORKDIR/secondary$i.ports" &
  PIDS+=($!)
done
for i in $(seq "$NUM_SECONDARIES"); do
  wait_ports "$WORKDIR/secondary$i.ports"
  read -r SEC_CLIENT _ < "$WORKDIR/secondary$i.ports"
  echo "secondary $i:  client 127.0.0.1:$SEC_CLIENT"
done

echo
echo "cluster up ($((NUM_SECONDARIES + 1)) processes). Updates go to the"
echo "primary's client port, reads to any secondary's. Ctrl-C to stop."
wait
