#!/usr/bin/env bash
# Launches a loopback lazy-master cluster: one primary + N secondary
# lazysi_server processes, each site its own process (Figure 1's deployment
# shape). Ports are ephemeral and printed once every site is up; the cluster
# runs until Ctrl-C / SIGTERM, then shuts down every site in order.
#
#   scripts/run_cluster.sh [num_secondaries] [server_binary]
#
# Defaults: 2 secondaries, build/src/server/lazysi_server.
#
# Durability: set DATA_DIR to give the primary a durable group-commit WAL +
# periodic checkpoints; a rerun with the same DATA_DIR recovers every acked
# commit. FSYNC_MODE (always|group|never) and CHECKPOINT_INTERVAL_MS tune it.
#
#   DATA_DIR=/var/tmp/lazysi scripts/run_cluster.sh 2
set -euo pipefail

cd "$(dirname "$0")/.."

NUM_SECONDARIES="${1:-2}"
SERVER_BIN="${2:-build/src/server/lazysi_server}"
DATA_DIR="${DATA_DIR:-}"
FSYNC_MODE="${FSYNC_MODE:-group}"
CHECKPOINT_INTERVAL_MS="${CHECKPOINT_INTERVAL_MS:-1000}"

if [[ ! -x "$SERVER_BIN" ]]; then
  echo "error: $SERVER_BIN not built (cmake --build build --target lazysi_server)" >&2
  exit 1
fi

WORKDIR="$(mktemp -d /tmp/lazysi_cluster.XXXXXX)"
PIDS=()

cleanup() {
  trap - TERM INT EXIT
  echo
  echo "shutting down cluster..."
  for pid in "${PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
  echo "cluster down."
}
trap cleanup TERM INT EXIT

wait_ports() {
  # wait_ports <port-file>: polls until the server writes its ports.
  local file="$1"
  for _ in $(seq 200); do
    [[ -s "$file" ]] && return 0
    sleep 0.05
  done
  echo "error: server did not come up ($file)" >&2
  return 1
}

PRIMARY_ARGS=(--role=primary --port-file="$WORKDIR/primary.ports")
if [[ -n "$DATA_DIR" ]]; then
  PRIMARY_ARGS+=(--data-dir="$DATA_DIR" --fsync-mode="$FSYNC_MODE"
                 --checkpoint-interval-ms="$CHECKPOINT_INTERVAL_MS")
fi
"$SERVER_BIN" "${PRIMARY_ARGS[@]}" &
PIDS+=($!)
wait_ports "$WORKDIR/primary.ports"
read -r PRIMARY_CLIENT PRIMARY_REPL < "$WORKDIR/primary.ports"
if [[ -n "$DATA_DIR" ]]; then
  echo "primary:      client 127.0.0.1:$PRIMARY_CLIENT, replication :$PRIMARY_REPL, data dir $DATA_DIR ($FSYNC_MODE)"
else
  echo "primary:      client 127.0.0.1:$PRIMARY_CLIENT, replication :$PRIMARY_REPL"
fi

for i in $(seq "$NUM_SECONDARIES"); do
  "$SERVER_BIN" --role=secondary --primary-port="$PRIMARY_REPL" \
    --site-id="$i" --port-file="$WORKDIR/secondary$i.ports" &
  PIDS+=($!)
done
for i in $(seq "$NUM_SECONDARIES"); do
  wait_ports "$WORKDIR/secondary$i.ports"
  read -r SEC_CLIENT _ < "$WORKDIR/secondary$i.ports"
  echo "secondary $i:  client 127.0.0.1:$SEC_CLIENT"
done

echo
echo "cluster up ($((NUM_SECONDARIES + 1)) processes). Updates go to the"
echo "primary's client port, reads to any secondary's. Ctrl-C to stop."
wait
