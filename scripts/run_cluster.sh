#!/usr/bin/env bash
# Launches a loopback lazy-master cluster: one primary + N secondary
# lazysi_server processes, each site its own process (Figure 1's deployment
# shape). Ports are ephemeral and printed once every site is up; the cluster
# runs until Ctrl-C / SIGTERM, then shuts down every site in order.
#
#   scripts/run_cluster.sh [num_secondaries] [server_binary]
#
# Defaults: 2 secondaries, build/src/server/lazysi_server.
#
# Durability: set DATA_DIR to give the primary a durable group-commit WAL +
# periodic checkpoints; a rerun with the same DATA_DIR recovers every acked
# commit. FSYNC_MODE (always|group|never) and CHECKPOINT_INTERVAL_MS tune it.
#
#   DATA_DIR=/var/tmp/lazysi scripts/run_cluster.sh 2
#
# Wire knobs: BATCHING (0|1), MAX_BATCH_RECORDS, BATCH_FLUSH_MS and WORKERS
# are forwarded to the primary so a soak can exercise either wire shape.
#
# Soak mode: set SOAK_SECONDS to run the cluster for that long and then shut
# down cleanly instead of waiting for Ctrl-C. The soak samples the primary's
# kernel thread count (/proc/<pid>/status Threads:) after the full fan-out is
# connected; if MAX_PRIMARY_THREADS is set the script fails when the primary
# exceeds it — the reactor must serve N secondaries with O(1) I/O threads,
# not a thread per connection.
#
#   SOAK_SECONDS=3 MAX_PRIMARY_THREADS=8 scripts/run_cluster.sh 16
set -euo pipefail

cd "$(dirname "$0")/.."

NUM_SECONDARIES="${1:-2}"
SERVER_BIN="${2:-build/src/server/lazysi_server}"
DATA_DIR="${DATA_DIR:-}"
FSYNC_MODE="${FSYNC_MODE:-group}"
CHECKPOINT_INTERVAL_MS="${CHECKPOINT_INTERVAL_MS:-1000}"
SOAK_SECONDS="${SOAK_SECONDS:-}"
MAX_PRIMARY_THREADS="${MAX_PRIMARY_THREADS:-}"

if [[ ! -x "$SERVER_BIN" ]]; then
  echo "error: $SERVER_BIN not built (cmake --build build --target lazysi_server)" >&2
  exit 1
fi

WORKDIR="$(mktemp -d /tmp/lazysi_cluster.XXXXXX)"
PIDS=()

cleanup() {
  trap - TERM INT EXIT
  echo
  echo "shutting down cluster..."
  for pid in "${PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
  echo "cluster down."
}
trap cleanup TERM INT EXIT

wait_ports() {
  # wait_ports <port-file>: polls until the server writes its ports.
  local file="$1"
  for _ in $(seq 200); do
    [[ -s "$file" ]] && return 0
    sleep 0.05
  done
  echo "error: server did not come up ($file)" >&2
  return 1
}

PRIMARY_ARGS=(--role=primary --port-file="$WORKDIR/primary.ports")
if [[ -n "$DATA_DIR" ]]; then
  PRIMARY_ARGS+=(--data-dir="$DATA_DIR" --fsync-mode="$FSYNC_MODE"
                 --checkpoint-interval-ms="$CHECKPOINT_INTERVAL_MS")
fi
[[ -n "${BATCHING:-}" ]] && PRIMARY_ARGS+=(--batching="$BATCHING")
[[ -n "${MAX_BATCH_RECORDS:-}" ]] && PRIMARY_ARGS+=(--max-batch-records="$MAX_BATCH_RECORDS")
[[ -n "${BATCH_FLUSH_MS:-}" ]] && PRIMARY_ARGS+=(--batch-flush-ms="$BATCH_FLUSH_MS")
[[ -n "${WORKERS:-}" ]] && PRIMARY_ARGS+=(--workers="$WORKERS")
"$SERVER_BIN" "${PRIMARY_ARGS[@]}" &
PIDS+=($!)
PRIMARY_PID="${PIDS[0]}"
wait_ports "$WORKDIR/primary.ports"
read -r PRIMARY_CLIENT PRIMARY_REPL < "$WORKDIR/primary.ports"
if [[ -n "$DATA_DIR" ]]; then
  echo "primary:      client 127.0.0.1:$PRIMARY_CLIENT, replication :$PRIMARY_REPL, data dir $DATA_DIR ($FSYNC_MODE)"
else
  echo "primary:      client 127.0.0.1:$PRIMARY_CLIENT, replication :$PRIMARY_REPL"
fi

for i in $(seq "$NUM_SECONDARIES"); do
  "$SERVER_BIN" --role=secondary --primary-port="$PRIMARY_REPL" \
    --site-id="$i" --port-file="$WORKDIR/secondary$i.ports" &
  PIDS+=($!)
done
for i in $(seq "$NUM_SECONDARIES"); do
  wait_ports "$WORKDIR/secondary$i.ports"
  read -r SEC_CLIENT _ < "$WORKDIR/secondary$i.ports"
  echo "secondary $i:  client 127.0.0.1:$SEC_CLIENT"
done

echo
echo "cluster up ($((NUM_SECONDARIES + 1)) processes). Updates go to the"
echo "primary's client port, reads to any secondary's. Ctrl-C to stop."

if [[ -n "$SOAK_SECONDS" ]]; then
  primary_threads() { awk '/^Threads:/{print $2}' "/proc/$PRIMARY_PID/status"; }
  THREADS_UP="$(primary_threads)"
  echo "soak: primary threads with $NUM_SECONDARIES secondaries connected: $THREADS_UP"
  sleep "$SOAK_SECONDS"
  if ! kill -0 "$PRIMARY_PID" 2>/dev/null; then
    echo "soak: FAIL — primary died during the soak" >&2
    exit 1
  fi
  for i in $(seq "$NUM_SECONDARIES"); do
    if ! kill -0 "${PIDS[$i]}" 2>/dev/null; then
      echo "soak: FAIL — secondary $i died during the soak" >&2
      exit 1
    fi
  done
  THREADS_END="$(primary_threads)"
  echo "soak: primary threads after ${SOAK_SECONDS}s: $THREADS_END"
  if [[ -n "$MAX_PRIMARY_THREADS" && "$THREADS_END" -gt "$MAX_PRIMARY_THREADS" ]]; then
    echo "soak: FAIL — primary runs $THREADS_END threads for $NUM_SECONDARIES secondaries (max $MAX_PRIMARY_THREADS); I/O threads must not scale with fan-out" >&2
    exit 1
  fi
  echo "soak: OK — primary thread count flat at $THREADS_END across $NUM_SECONDARIES-secondary fan-out"
  exit 0
fi

wait
