#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and flag regressions.

Usage:
    python3 bench/compare_bench_json.py BASELINE.json CANDIDATE.json \
        [--threshold 0.10] [--metric auto|real_time|items_per_second]

Benchmarks are matched by name. With --metric auto (the default) a row is
compared on items_per_second when both sides report it (higher is better),
falling back to real_time (lower is better). Rows that report a gated
counter are additionally gated on it, lower is better: p95_lag_ts (the
replay catch-up benchmarks' 95th-percentile freshness lag — a replica that
"keeps up" must not start lagging even when its throughput holds) and the
partial-replication volume counters updates_per_sink / bytes_per_sink (a
partitioned sink must not silently start receiving records it filters out).
A row regresses when the
candidate is worse than the baseline by more than the threshold fraction.
Exits 1 if any matched row regressed, 0 otherwise. Rows present on only one
side are listed but never fail the comparison (benchmarks come and go across
PRs).

When a file was recorded with --benchmark_repetitions, each side compares
the BEST repetition per row (highest throughput / lowest time / lowest
gated counter). Transient interference on shared hardware only ever makes
a repetition slower, never faster, so best-of-N is a far more stable
estimate of what the code can do than the mean of one longer run.
"""

import argparse
import json
import sys

# Counters gated independently of a row's primary metric, all lower-is-better.
GATED_COUNTERS = ("p95_lag_ts", "updates_per_sink", "bytes_per_sink",
                  "syscalls_per_record", "bytes_per_record")


# Fields the comparison reads, and which direction "best" points for each
# when folding repetitions of the same benchmark into one row.
BEST_OF = {"items_per_second": max, "real_time": min}
BEST_OF.update({c: min for c in GATED_COUNTERS})


def load_rows(path):
    """Load one row per benchmark name, folding repetitions into best-of.

    Aggregate rows (mean/median/stddev) are skipped so files recorded with
    repetitions line up against single-run files; the individual repetition
    rows are merged keeping the best value of each compared metric.
    """
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("run_name", b["name"])
        prev = rows.get(name)
        if prev is None:
            rows[name] = dict(b)
            continue
        for key, best in BEST_OF.items():
            if key in b and key in prev:
                prev[key] = best(prev[key], b[key])
    return rows


def pick_metric(base, cand, forced):
    if forced != "auto":
        if forced in base and forced in cand:
            return forced
        return None
    if "items_per_second" in base and "items_per_second" in cand:
        return "items_per_second"
    if "real_time" in base and "real_time" in cand:
        return "real_time"
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="allowed fractional regression (default 0.10 = 10%%)")
    ap.add_argument("--metric", default="auto",
                    choices=["auto", "real_time", "items_per_second"])
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cand = load_rows(args.candidate)
    common = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    if not common:
        print("error: no benchmark names in common", file=sys.stderr)
        return 2

    regressions = []
    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'metric':<16} {'baseline':>12} "
          f"{'candidate':>12} {'change':>8}")
    def compare_one(name, metric, b, c, higher_is_better):
        if b == 0:
            print(f"{name:<{width}}  {metric:<16} (baseline is zero)")
            return
        change = (c - b) / b
        worse = -change if higher_is_better else change
        mark = ""
        if worse > args.threshold:
            mark = "  << REGRESSION"
            regressions.append(f"{name} [{metric}]")
        print(f"{name:<{width}}  {metric:<16} {b:>12.4g} {c:>12.4g} "
              f"{change:>+7.1%}{mark}")

    for name in common:
        metric = pick_metric(base[name], cand[name], args.metric)
        if metric is None:
            print(f"{name:<{width}}  (no comparable metric)")
        else:
            compare_one(name, metric, base[name][metric], cand[name][metric],
                        higher_is_better=metric == "items_per_second")
        # Gated counters ride independently of the primary metric: a catch-up
        # row may hold throughput while its tail freshness lag blows up, and
        # a partitioned row may hold throughput while its per-sink volume
        # creeps back toward full replication.
        for counter in GATED_COUNTERS:
            if counter in base[name] and counter in cand[name]:
                compare_one(name, counter, base[name][counter],
                            cand[name][counter], higher_is_better=False)

    for name in only_base:
        print(f"{name:<{width}}  (removed in candidate)")
    for name in only_cand:
        print(f"{name:<{width}}  (new in candidate)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name in regressions:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"\nOK: no regressions beyond {args.threshold:.0%} "
          f"across {len(common)} matched benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
