// Figure 2: Transaction Throughput vs. Number of Clients, 80/20 workload.
// Five secondary sites under increasing client load; throughput counts
// transactions finishing within 3 seconds ("response time-related"), per the
// paper's Section 6.2. Expected shape: ALG-STRONG-SESSION-SI tracks
// ALG-WEAK-SI closely (small gap under heavy load); ALG-STRONG-SI is far
// below both because its reads wait out the propagation delay.

#include "bench/fig_common.h"

int main() {
  using namespace lazysi::bench;
  auto make = [](double clients) {
    Params p;
    p.num_secondaries = 5;
    p.total_clients_override = static_cast<std::size_t>(clients);
    return p;
  };
  const std::vector<double> xs = {25, 50, 75, 100, 125, 150, 175, 200, 225,
                                  250};
  PrintParams(make(xs.front()));
  auto rows = SweepAlgorithms(xs, make);
  PrintFigure(
      "Figure 2: Transaction Throughput vs. Number of Clients (80/20)",
      "clients", "txns finishing <= 3s, per second", rows,
      [](const ReplicatedResult& r) { return r.throughput_fast; });
  return 0;
}
