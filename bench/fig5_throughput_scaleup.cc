// Figure 5: Transaction Throughput vs. Number of Secondary Sites,
// 20 clients per secondary, 80/20 workload, with the paper's y=x ideal
// scaling reference. Expected shape: near-linear growth for ALG-WEAK-SI and
// ALG-STRONG-SESSION-SI until the primary saturates (past ~11 secondaries,
// Section 6.2.1), ALG-STRONG-SI flat and low throughout.

#include "bench/fig_common.h"

int main() {
  using namespace lazysi::bench;
  auto make = [](double secondaries) {
    Params p;
    p.num_secondaries = static_cast<std::size_t>(secondaries);
    p.clients_per_secondary = 20;
    return p;
  };
  const std::vector<double> xs = {1, 2, 4, 6, 8, 10, 11, 12, 14, 16};
  PrintParams(make(xs.front()));
  auto rows = SweepAlgorithms(xs, make);
  PrintFigure(
      "Figure 5: Throughput vs. Number of Secondaries (20 clients each, "
      "80/20)",
      "secondary sites", "txns finishing <= 3s, per second", rows,
      [](const ReplicatedResult& r) { return r.throughput_fast; },
      /*show_ideal=*/true);
  return 0;
}
