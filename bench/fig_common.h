#ifndef LAZYSI_BENCH_FIG_COMMON_H_
#define LAZYSI_BENCH_FIG_COMMON_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "simmodel/model.h"

namespace lazysi {
namespace bench {

using simmodel::Params;
using simmodel::ReplicatedResult;
using simmodel::Summary;

/// One sweep point: the x value and the three algorithms' results.
struct Row {
  double x;
  ReplicatedResult weak;
  ReplicatedResult session;
  ReplicatedResult strong;
};

/// Runs the three Section 6 algorithms over a sweep of x values.
/// `make_params(x)` builds the Params for one point (guarantee is
/// overwritten per algorithm). Honors LAZYSI_REPS and LAZYSI_TIME_SCALE.
inline std::vector<Row> SweepAlgorithms(
    const std::vector<double>& xs,
    const std::function<Params(double)>& make_params) {
  const int reps = simmodel::DefaultReplications();
  const double scale = simmodel::TimeScale();
  std::vector<Row> rows;
  for (double x : xs) {
    Row row;
    row.x = x;
    for (auto g : {session::Guarantee::kWeakSI,
                   session::Guarantee::kStrongSessionSI,
                   session::Guarantee::kStrongSI}) {
      Params p = make_params(x);
      p.guarantee = g;
      p.warmup_time *= scale;
      p.measure_time *= scale;
      ReplicatedResult r = simmodel::RunReplications(p, reps);
      switch (g) {
        case session::Guarantee::kWeakSI: row.weak = r; break;
        case session::Guarantee::kStrongSessionSI: row.session = r; break;
        case session::Guarantee::kStrongSI: row.strong = r; break;
      }
    }
    rows.push_back(row);
    std::fflush(stdout);
  }
  return rows;
}

/// Prints a figure table: x column plus mean +/- 95% CI for each algorithm,
/// matching the three curves of the paper's plots.
inline void PrintFigure(const std::string& title, const std::string& xlabel,
                        const std::string& ylabel,
                        const std::vector<Row>& rows,
                        const std::function<Summary(const ReplicatedResult&)>&
                            metric,
                        bool show_ideal = false) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(title.size(), '=').c_str());
  std::printf("%-22s | %-24s | %-24s | %-24s%s\n", xlabel.c_str(),
              "ALG-WEAK-SI", "ALG-STRONG-SESSION-SI", "ALG-STRONG-SI",
              show_ideal ? " | y=x" : "");
  std::printf("%-22s | %-24s | %-24s | %-24s%s\n",
              ("(" + ylabel + ")").c_str(), "mean +/- 95% CI",
              "mean +/- 95% CI", "mean +/- 95% CI", show_ideal ? " |" : "");
  std::printf("%s\n", std::string(show_ideal ? 110 : 100, '-').c_str());
  for (const Row& row : rows) {
    const Summary w = metric(row.weak);
    const Summary s = metric(row.session);
    const Summary g = metric(row.strong);
    if (show_ideal) {
      std::printf("%-22.0f | %10.2f +/- %-10.2f | %10.2f +/- %-10.2f | "
                  "%10.2f +/- %-10.2f | %6.0f\n",
                  row.x, w.mean, w.ci95, s.mean, s.ci95, g.mean, g.ci95,
                  row.x);
    } else {
      std::printf("%-22.0f | %10.3f +/- %-10.3f | %10.3f +/- %-10.3f | "
                  "%10.3f +/- %-10.3f\n",
                  row.x, w.mean, w.ci95, s.mean, s.ci95, g.mean, g.ci95);
    }
  }
  std::printf("\n");
}

/// Prints the Table-1 parameter block once per binary.
inline void PrintParams(const Params& p) {
  std::printf("%s", p.ToTableString().c_str());
  std::printf("  replications       %d\n", simmodel::DefaultReplications());
  const double scale = simmodel::TimeScale();
  if (scale != 1.0) {
    std::printf("  (LAZYSI_TIME_SCALE %.3f: windows scaled down)\n", scale);
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace lazysi

#endif  // LAZYSI_BENCH_FIG_COMMON_H_
