#!/usr/bin/env sh
# Runs the engine micro-benchmarks (including the contended ThreadRange
# variants) and emits machine-readable results.
#
# Usage: bench/run_engine_bench.sh [path/to/micro_engine_bench] [output.json]
# Environment: BENCH_MIN_TIME (seconds per benchmark, default 0.2) and
# BENCH_REPS (repetitions per benchmark, default 3 — the regression differ
# compares the best repetition per row to filter out transient interference).
set -eu

BIN=${1:-build-release/bench/micro_engine_bench}
OUT=${2:-BENCH_engine.json}

if [ ! -x "$BIN" ]; then
  echo "error: benchmark binary '$BIN' not found; build it first:" >&2
  echo "  cmake --preset release && cmake --build --preset release --target micro_engine_bench" >&2
  exit 1
fi

exec "$BIN" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_min_time="${BENCH_MIN_TIME:-0.2}" \
  --benchmark_repetitions="${BENCH_REPS:-3}" \
  --benchmark_enable_random_interleaving=true
