// Figure 3: Read-Only Transaction Response Time vs. Number of Clients,
// 80/20 workload, 5 secondaries. Expected shape: ALG-WEAK-SI lowest (never
// blocks), ALG-STRONG-SESSION-SI slightly above it (occasional waits for the
// session's own updates), ALG-STRONG-SI dominated by the 10 s propagation
// delay.

#include "bench/fig_common.h"

int main() {
  using namespace lazysi::bench;
  auto make = [](double clients) {
    Params p;
    p.num_secondaries = 5;
    p.total_clients_override = static_cast<std::size_t>(clients);
    return p;
  };
  const std::vector<double> xs = {25, 50, 75, 100, 125, 150, 175, 200, 225,
                                  250};
  PrintParams(make(xs.front()));
  auto rows = SweepAlgorithms(xs, make);
  PrintFigure(
      "Figure 3: Read-Only Response Time vs. Number of Clients (80/20)",
      "clients", "seconds", rows,
      [](const ReplicatedResult& r) { return r.ro_response; });
  PrintFigure(
      "Supplement: mean time reads spent blocked on seq(DBsec) >= seq(c)",
      "clients", "seconds", rows,
      [](const ReplicatedResult& r) { return r.ro_block; });
  PrintFigure(
      "Supplement: 95th-percentile read-only response time", "clients",
      "seconds", rows,
      [](const ReplicatedResult& r) { return r.ro_response_p95; });
  return 0;
}
