// Micro-benchmarks of the real (threaded) replication pipeline: end-to-end
// refresh throughput and the cost of the session blocking rule. These
// complement the simulation figures by showing the actual engine keeps up
// with far more than the model's offered load.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/checkpointer.h"
#include "engine/database.h"
#include "replication/chaos_link.h"
#include "replication/primary.h"
#include "replication/propagator.h"
#include "replication/reliable_channel.h"
#include "replication/secondary.h"
#include "replication/tcp_replication.h"
#include "simmodel/model.h"
#include "system/replicated_system.h"

namespace {

using lazysi::session::Guarantee;
using lazysi::system::ReplicatedSystem;
using lazysi::system::SystemConfig;
using lazysi::system::SystemTransaction;
namespace engine = lazysi::engine;
namespace replication = lazysi::replication;

void BM_ReplicationPipeline(benchmark::State& state) {
  // Measures primary-commit -> secondary-applied end to end, batched.
  SystemConfig config;
  config.num_secondaries = static_cast<std::size_t>(state.range(0));
  config.guarantee = Guarantee::kWeakSI;
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(0);
  std::uint64_t i = 0;
  constexpr int kBatch = 256;
  for (auto _ : state) {
    for (int n = 0; n < kBatch; ++n) {
      (void)client->ExecuteUpdate([&](SystemTransaction& t) {
        return t.Put("key" + std::to_string(i % 1024), std::to_string(i));
      });
      ++i;
    }
    benchmark::DoNotOptimize(sys.WaitForReplication());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  sys.Stop();
}
BENCHMARK(BM_ReplicationPipeline)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_RefreshCatchup(benchmark::State& state) {
  // THE direct-vs-legacy engine comparison: a secondary catches up on a
  // pre-built primary backlog of rounds of 8 overlapping transactions (the
  // contended shape — the legacy refresher must drain the pending queue at
  // every start record, the direct engine never stalls). Each iteration
  // replays the identical backlog into a fresh secondary. Reported items are
  // refresh commits/second; the p95_lag_ts counter is the 95th-percentile
  // freshness lag (primary latest commit ts minus seq(DBsec), in timestamp
  // units) sampled during catch-up.
  //
  // Args: direct {0 = legacy, 1 = direct}, applicator threads {1, 2, 4},
  // frame loss percent {0 = in-process handoff, 1 = ReliableChannel over a
  // lossy ChaosLink}.
  const bool direct = state.range(0) != 0;
  const auto applicators = static_cast<std::size_t>(state.range(1));
  const double loss = static_cast<double>(state.range(2)) / 100.0;

  engine::Database primary_db(
      engine::DatabaseOptions{lazysi::kPrimarySiteId, "primary", false});
  constexpr int kRounds = 100;
  constexpr int kConcurrent = 8;
  constexpr int kOpsPerTxn = 4;
  for (int r = 0; r < kRounds; ++r) {
    std::vector<std::unique_ptr<lazysi::txn::Transaction>> txns;
    for (int t = 0; t < kConcurrent; ++t) txns.push_back(primary_db.Begin());
    for (int t = 0; t < kConcurrent; ++t) {
      for (int o = 0; o < kOpsPerTxn; ++o) {
        // Disjoint within a round (keeps every transaction committable),
        // shared across rounds (same keys are rewritten, so chains grow).
        (void)txns[t]->Put(
            "k" + std::to_string((t * kOpsPerTxn + o) % 512) + "/" +
                std::to_string(t),
            std::to_string(r));
      }
    }
    for (int t = 0; t < kConcurrent; ++t) (void)txns[t]->Commit();
  }
  const lazysi::Timestamp target = primary_db.LatestCommitTs();
  const std::uint64_t commits =
      static_cast<std::uint64_t>(kRounds) * kConcurrent;

  std::vector<double> lag_samples;
  bool timed_out = false;
  for (auto _ : state) {
    engine::Database sec_db(engine::DatabaseOptions{1, "sec", false});
    replication::Secondary sec(&sec_db,
                               replication::SecondaryOptions{applicators,
                                                             direct});
    replication::Propagator prop(primary_db.log());
    std::unique_ptr<replication::ChaosLink> link;
    std::unique_ptr<replication::ReliableChannel> reliable;
    sec.Start();
    if (loss > 0.0) {
      replication::FaultProfile faults;
      faults.drop_probability = loss;
      link = std::make_unique<replication::ChaosLink>(faults, 42);
      replication::ReliableChannel::Options opts;
      opts.backoff_initial = std::chrono::milliseconds(1);
      opts.backoff_max = std::chrono::milliseconds(16);
      reliable = std::make_unique<replication::ReliableChannel>(
          &prop, link.get(), sec.update_queue(), opts);
      reliable->Start();
    } else {
      prop.AttachSink(sec.update_queue());
    }
    std::atomic<bool> sampling{true};
    std::vector<double> iter_lags;
    std::thread sampler([&] {
      while (sampling.load(std::memory_order_acquire)) {
        iter_lags.push_back(static_cast<double>(target - sec.applied_seq()));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    // Manual timing brackets exactly the catch-up window; teardown (notably
    // the propagator's 50 ms poll-interval shutdown) is excluded.
    const auto begin = std::chrono::steady_clock::now();
    prop.Start();
    const bool ok = sec.WaitForSeq(target, std::chrono::milliseconds(60000));
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count());
    sampling.store(false, std::memory_order_release);
    sampler.join();
    prop.Stop();
    if (reliable) reliable->Stop();
    sec.Stop();
    if (!ok) {
      timed_out = true;
      break;
    }
    lag_samples.insert(lag_samples.end(), iter_lags.begin(), iter_lags.end());
  }
  if (timed_out) {
    state.SkipWithError("secondary failed to catch up within 60s");
    return;
  }
  state.SetItemsProcessed(state.iterations() * commits);
  if (!lag_samples.empty()) {
    std::sort(lag_samples.begin(), lag_samples.end());
    state.counters["p95_lag_ts"] =
        lag_samples[(lag_samples.size() * 95) / 100 == lag_samples.size()
                        ? lag_samples.size() - 1
                        : (lag_samples.size() * 95) / 100];
  }
}
BENCHMARK(BM_RefreshCatchup)
    ->ArgNames({"direct", "applicators", "loss_pct"})
    ->ArgsProduct({{0, 1}, {1, 2, 4}, {0, 1}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_ParallelReplayCatchup(benchmark::State& state) {
  // The parallel-pipeline scaling matrix: the same contended backlog as
  // BM_RefreshCatchup — plus deletes and aborts, so the decode pool sees the
  // full record mix — replayed through the direct-apply engine at several
  // decode/apply widths. decode:0 is the serial direct-apply baseline (one
  // refresher thread decodes and allocates inline); decode>0 selects the
  // three-stage pipeline. Items are refresh commits/second; p95_lag_ts is
  // the 95th-percentile freshness lag (primary latest commit ts minus
  // seq(DBsec)) sampled during catch-up — the "always keeps up" number, and
  // the row compare_bench_json.py gates on (lower is better).
  const auto decode = static_cast<std::size_t>(state.range(0));
  const auto applicators = static_cast<std::size_t>(state.range(1));

  engine::Database primary_db(
      engine::DatabaseOptions{lazysi::kPrimarySiteId, "primary", false});
  constexpr int kRounds = 150;
  constexpr int kConcurrent = 8;
  constexpr int kOpsPerTxn = 4;
  std::uint64_t commits = 0;
  for (int r = 0; r < kRounds; ++r) {
    std::vector<std::unique_ptr<lazysi::txn::Transaction>> txns;
    for (int t = 0; t < kConcurrent; ++t) txns.push_back(primary_db.Begin());
    for (int t = 0; t < kConcurrent; ++t) {
      for (int o = 0; o < kOpsPerTxn; ++o) {
        const std::string key =
            "k" + std::to_string((t * kOpsPerTxn + o) % 512) + "/" +
            std::to_string(t);
        if (o == kOpsPerTxn - 1 && r % 5 == 0) {
          (void)txns[t]->Delete(key);
        } else {
          (void)txns[t]->Put(key, std::to_string(r));
        }
      }
    }
    for (int t = 0; t < kConcurrent; ++t) {
      if (t == kConcurrent - 1 && r % 7 == 0) {
        txns[t]->Abort();  // abort records flow down the wire too
      } else if (txns[t]->Commit().ok()) {
        ++commits;
      }
    }
  }
  const lazysi::Timestamp target = primary_db.LatestCommitTs();

  std::vector<double> lag_samples;
  bool timed_out = false;
  for (auto _ : state) {
    engine::Database sec_db(engine::DatabaseOptions{1, "sec", false});
    replication::SecondaryOptions opts;
    opts.applicator_threads = applicators;
    opts.direct_apply = true;
    opts.decode_threads = decode;
    replication::Secondary sec(&sec_db, opts);
    replication::Propagator prop(primary_db.log());
    sec.Start();
    prop.AttachSink(sec.update_queue());
    std::atomic<bool> sampling{true};
    std::vector<double> iter_lags;
    std::thread sampler([&] {
      while (sampling.load(std::memory_order_acquire)) {
        iter_lags.push_back(static_cast<double>(target - sec.applied_seq()));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    const auto begin = std::chrono::steady_clock::now();
    prop.Start();
    const bool ok = sec.WaitForSeq(target, std::chrono::milliseconds(60000));
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count());
    sampling.store(false, std::memory_order_release);
    sampler.join();
    prop.Stop();
    sec.Stop();
    if (!ok) {
      timed_out = true;
      break;
    }
    lag_samples.insert(lag_samples.end(), iter_lags.begin(), iter_lags.end());
  }
  if (timed_out) {
    state.SkipWithError("secondary failed to catch up within 60s");
    return;
  }
  state.SetItemsProcessed(state.iterations() * commits);
  if (!lag_samples.empty()) {
    std::sort(lag_samples.begin(), lag_samples.end());
    const std::size_t idx = (lag_samples.size() * 95) / 100;
    state.counters["p95_lag_ts"] =
        lag_samples[idx >= lag_samples.size() ? lag_samples.size() - 1 : idx];
  }
}
BENCHMARK(BM_ParallelReplayCatchup)
    ->ArgNames({"decode", "applicators"})
    ->ArgsProduct({{0, 2, 4}, {1, 2, 4}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_SessionReadAfterWrite(benchmark::State& state) {
  // The read-your-writes round trip under ALG-STRONG-SESSION-SI: update at
  // the primary, then a session read that must wait for the refresh.
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = Guarantee::kStrongSessionSI;
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)client->ExecuteUpdate([&](SystemTransaction& t) {
      return t.Put("key", std::to_string(i++));
    });
    auto read = client->BeginRead();
    benchmark::DoNotOptimize((*read)->Get("key"));
    (void)(*read)->Commit();
  }
  state.SetItemsProcessed(state.iterations());
  sys.Stop();
}
BENCHMARK(BM_SessionReadAfterWrite)->Unit(benchmark::kMicrosecond);

void BM_WeakReadThroughput(benchmark::State& state) {
  // Read-only transactions at a secondary are never blocked; this is the
  // raw secondary read path.
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = Guarantee::kWeakSI;
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(0);
  (void)client->ExecuteUpdate([](SystemTransaction& t) {
    return t.Put("key", "value");
  });
  sys.WaitForReplication();
  for (auto _ : state) {
    auto read = client->BeginRead();
    benchmark::DoNotOptimize((*read)->Get("key"));
    (void)(*read)->Commit();
  }
  state.SetItemsProcessed(state.iterations());
  sys.Stop();
}
BENCHMARK(BM_WeakReadThroughput);

void BM_ReadRoutingFreshVsBlind(benchmark::State& state) {
  // Freshness routing vs blind round-robin roaming under per-secondary
  // delivery jitter: after each session update the two secondaries catch up
  // at independently jittered times, so at read time one is usually fresh
  // and the other stale. Blind roaming sends half the reads to whichever
  // site the round-robin picks — stale half the time, blocking on seq(c) —
  // while the router places each read on a site that already covers the
  // session (or the freshest one, which also unblocks soonest). Arg:
  // routed=0 is the blind baseline, routed=1 the freshness router.
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = Guarantee::kStrongSessionSI;
  config.network_latency = std::chrono::milliseconds(1);
  config.network_jitter = std::chrono::milliseconds(3);
  if (state.range(0) != 0) {
    config.freshness_routing = true;
  } else {
    config.roam_reads = true;
  }
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(0);
  std::uint64_t i = 0;
  constexpr int kReadsPerUpdate = 4;
  for (auto _ : state) {
    (void)client->ExecuteUpdate([&](SystemTransaction& t) {
      return t.Put("key", std::to_string(i++));
    });
    for (int r = 0; r < kReadsPerUpdate; ++r) {
      auto read = client->BeginRead();
      benchmark::DoNotOptimize((*read)->Get("key"));
      (void)(*read)->Commit();
    }
  }
  state.SetItemsProcessed(state.iterations() * kReadsPerUpdate);
  sys.Stop();
}
BENCHMARK(BM_ReadRoutingFreshVsBlind)
    ->ArgNames({"routed"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_ChaosTransportThroughput(benchmark::State& state) {
  // Primary-commit -> secondary-applied throughput when every record crosses
  // the ReliableChannel-over-ChaosLink path (encode + CRC + ack machinery on
  // the hot path) at 0% / 1% / 5% frame loss. Arg is loss in percent; the
  // 0% row isolates the cost of the reliability layer itself, the lossy rows
  // add retransmission.
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = Guarantee::kWeakSI;
  config.transport_faults.drop_probability =
      static_cast<double>(state.range(0)) / 100.0;
  // Make the profile non-trivially "any()" even at 0% loss so the chaos
  // path is exercised: corrupt nothing, drop per the arg, but keep the
  // link + channel in the pipeline.
  config.transport_faults.duplicate_probability = 0.0;
  config.transport_faults.corrupt_probability = 0.0;
  config.transport_faults.disconnect_probability = 0.0;
  if (!config.transport_faults.any()) {
    // 0% row: an all-zero profile would bypass the transport; keep it on
    // the wire with a fault rate too small to ever fire in practice.
    config.transport_faults.drop_probability = 1e-12;
  }
  config.transport_backoff_initial = std::chrono::milliseconds(1);
  config.transport_backoff_max = std::chrono::milliseconds(16);
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(0);
  std::uint64_t i = 0;
  constexpr int kBatch = 256;
  for (auto _ : state) {
    for (int n = 0; n < kBatch; ++n) {
      (void)client->ExecuteUpdate([&](SystemTransaction& t) {
        return t.Put("key" + std::to_string(i % 1024), std::to_string(i));
      });
      ++i;
    }
    benchmark::DoNotOptimize(sys.WaitForReplication());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  sys.Stop();
}
BENCHMARK(BM_ChaosTransportThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_TcpPropagation(benchmark::State& state) {
  // Primary-commit -> secondary-applied throughput over the reactor-based
  // cross-process stream (ReplicationListener -> loopback TCP ->
  // ReplicationReceiver): the wire the multi-process deployment actually
  // runs. Args are {secondaries, max_batch_records}; batch 0 disables
  // coalescing (one DATA frame + flush per record, the PR 8 wire shape).
  // The counters read the listener's own syscall accounting across the
  // timed region: syscalls_per_record is flush syscalls per record streamed
  // (the headline reactor win — batching must cut it >= 4x at the default
  // knobs), bytes_per_record the framing + encoding overhead per record.
  // Both are gated lower-is-better by compare_bench_json.py.
  const auto n_secondaries = static_cast<std::size_t>(state.range(0));
  const auto batch_records = static_cast<std::size_t>(state.range(1));

  engine::Database primary_db;
  replication::Primary primary(&primary_db);
  replication::ReplicationListener::Options lo;
  lo.batching = batch_records > 0;
  if (batch_records > 0) lo.max_batch_records = batch_records;
  replication::ReplicationListener listener(primary.propagator(), lo);
  if (!listener.Start().ok()) {
    state.SkipWithError("listener failed to start");
    return;
  }
  primary.Start();

  struct Sink {
    engine::Database db;
    replication::Secondary secondary;
    replication::ReplicationReceiver receiver;
    Sink(std::uint16_t port, std::size_t id)
        : db(engine::DatabaseOptions{static_cast<lazysi::SiteId>(id),
                                     "bench-sec"}),
          secondary(&db),
          receiver(secondary.update_queue(), [port] {
            replication::ReplicationReceiver::Options o;
            o.primary_port = port;
            return o;
          }()) {
      secondary.Start();
      receiver.Start();
    }
    ~Sink() {
      receiver.Stop();
      secondary.Stop();
    }
  };
  std::vector<std::unique_ptr<Sink>> sinks;
  for (std::size_t s = 0; s < n_secondaries; ++s) {
    sinks.push_back(std::make_unique<Sink>(listener.port(), s + 1));
  }

  std::uint64_t i = 0;
  constexpr int kBatch = 256;
  const auto before = listener.stats();
  for (auto _ : state) {
    lazysi::Timestamp last = 0;
    for (int n = 0; n < kBatch; ++n) {
      auto t = primary_db.Begin();
      (void)t->Put("key" + std::to_string(i % 1024), std::to_string(i));
      (void)t->Commit();
      last = t->commit_ts();
      ++i;
    }
    for (auto& sink : sinks) {
      benchmark::DoNotOptimize(
          sink->secondary.WaitForSeq(last, std::chrono::milliseconds(10000)));
    }
  }
  const auto after = listener.stats();
  const double records =
      static_cast<double>(after.records_streamed - before.records_streamed);
  if (records > 0) {
    state.counters["syscalls_per_record"] =
        static_cast<double>(after.writev_calls - before.writev_calls) /
        records;
    state.counters["bytes_per_record"] =
        static_cast<double>(after.bytes_sent - before.bytes_sent) / records;
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  for (auto& sink : sinks) sink.reset();
  primary.Stop();
  listener.Stop();
}
BENCHMARK(BM_TcpPropagation)
    ->ArgNames({"secondaries", "batch"})
    ->Args({1, 0})
    ->Args({1, 128})
    ->Args({2, 0})
    ->Args({2, 128})
    ->Args({4, 128})
    ->Unit(benchmark::kMillisecond);

void BM_PartitionedPropagation(benchmark::State& state) {
  // Partial-replication propagation volume and catch-up: 4 partitions over
  // 4 secondaries at replication factor Arg in {4, 2, 1}, i.e. each sink
  // covers 1/1, 1/2 or 1/4 of the keyspace. Every iteration commits a batch
  // spread uniformly across the keyspace and waits until every sink has
  // applied it, so the reported time is fleet catch-up at that coverage.
  // The counters are the delivered volume per sink per committed update:
  // updates_per_sink / bytes_per_sink shrink with the coverage fraction
  // (at 2-way over 4 secondaries a sink carries ~half the full-replication
  // volume — the filtered remainder crosses the wire only as coverage
  // markers, which is the point of partitioning the fleet). Both are gated
  // lower-is-better by compare_bench_json.py.
  SystemConfig config;
  config.num_secondaries = 4;
  config.num_partitions = 4;
  config.partition_replication = static_cast<std::size_t>(state.range(0));
  config.guarantee = Guarantee::kWeakSI;
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(0);
  std::uint64_t i = 0;
  constexpr int kBatch = 256;
  for (auto _ : state) {
    for (int n = 0; n < kBatch; ++n) {
      (void)client->ExecuteUpdate([&](SystemTransaction& t) {
        return t.Put("key" + std::to_string(i % 1024), std::to_string(i));
      });
      ++i;
    }
    benchmark::DoNotOptimize(sys.WaitForReplication());
  }
  const auto stats = sys.Stats();
  double updates = 0.0, bytes = 0.0;
  for (const auto& sec : stats.secondaries) {
    updates += static_cast<double>(sec.updates_received);
    bytes += static_cast<double>(sec.update_bytes_received);
  }
  const double sinks = static_cast<double>(stats.secondaries.size());
  const double commits =
      static_cast<double>(state.iterations()) * static_cast<double>(kBatch);
  state.counters["updates_per_sink"] = updates / sinks / commits;
  state.counters["bytes_per_sink"] = bytes / sinks / commits;
  state.SetItemsProcessed(state.iterations() * kBatch);
  sys.Stop();
}
BENCHMARK(BM_PartitionedPropagation)
    ->ArgNames({"replicas"})
    ->Arg(4)
    ->Arg(2)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_GroupCommitThroughput(benchmark::State& state) {
  // The durable commit pipeline under concurrent committers: mode 0 is the
  // in-memory engine (no WAL at all), 1/2/3 attach the durable log with
  // fsync_mode never/group/always. The headline comparison: group commit at
  // 16 committers should beat per-commit fsync ("always") by sharing one
  // fdatasync across the batch, while "never" prices the queueing alone and
  // stays within noise of the in-memory path.
  const int mode = static_cast<int>(state.range(0));
  const int committers = static_cast<int>(state.range(1));
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("lazysi_group_commit_bench_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  engine::Database db;
  std::unique_ptr<lazysi::wal::DurableLog> durable;
  if (mode != 0) {
    lazysi::wal::DurableLog::Options lo;
    lo.fsync_mode = mode == 1   ? lazysi::wal::DurableLog::FsyncMode::kNever
                    : mode == 2 ? lazysi::wal::DurableLog::FsyncMode::kGroup
                                : lazysi::wal::DurableLog::FsyncMode::kAlways;
    auto opened = lazysi::engine::OpenDataDir(&db, dir.string(), lo);
    if (!opened.ok()) {
      state.SkipWithError(opened.status().ToString().c_str());
      return;
    }
    durable = std::move(opened->durable);
  }

  constexpr int kPerThread = 32;
  std::mutex lat_mu;
  std::vector<double> lat_us;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(committers);
    for (int t = 0; t < committers; ++t) {
      threads.emplace_back([&, t] {
        std::vector<double> local;
        local.reserve(kPerThread);
        for (int i = 0; i < kPerThread; ++i) {
          const auto begin = std::chrono::steady_clock::now();
          // Distinct key space per committer: no write conflicts, so every
          // latency sample is a clean commit+durability-gate round trip.
          (void)db.Put("c" + std::to_string(t) + "-k" + std::to_string(i % 8),
                       "v" + std::to_string(i));
          local.push_back(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - begin)
                              .count());
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        lat_us.insert(lat_us.end(), local.begin(), local.end());
      });
    }
    for (auto& th : threads) th.join();
  }

  std::sort(lat_us.begin(), lat_us.end());
  if (!lat_us.empty()) {
    state.counters["p95_commit_us"] = lat_us[lat_us.size() * 95 / 100];
  }
  if (durable) {
    const auto c = durable->counters();
    state.counters["fsyncs_per_commit"] =
        lat_us.empty() ? 0.0
                       : static_cast<double>(c.fsyncs) /
                             static_cast<double>(lat_us.size());
    state.counters["mean_group_records"] =
        c.flush_batches == 0 ? 0.0
                             : static_cast<double>(c.records_flushed) /
                                   static_cast<double>(c.flush_batches);
    durable->Close();
  }
  state.SetItemsProcessed(state.iterations() * committers * kPerThread);
  fs::remove_all(dir);
}
BENCHMARK(BM_GroupCommitThroughput)
    ->ArgNames({"mode", "committers"})
    ->Args({0, 1})
    ->Args({0, 4})
    ->Args({0, 16})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({1, 16})
    ->Args({2, 1})
    ->Args({2, 4})
    ->Args({2, 16})
    ->Args({3, 1})
    ->Args({3, 4})
    ->Args({3, 16})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // Raw discrete-event engine speed: how many simulated client events per
  // wall second the CSIM-replacement sustains (drives the figure sweeps).
  for (auto _ : state) {
    lazysi::simmodel::Params p;
    p.num_secondaries = 2;
    p.total_clients_override = 40;
    p.warmup_time = 30;
    p.measure_time = 300;
    lazysi::simmodel::Model model(p, 1);
    benchmark::DoNotOptimize(model.Run());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
