// Micro-benchmarks of the real (threaded) replication pipeline: end-to-end
// refresh throughput and the cost of the session blocking rule. These
// complement the simulation figures by showing the actual engine keeps up
// with far more than the model's offered load.

#include <benchmark/benchmark.h>

#include "simmodel/model.h"
#include "system/replicated_system.h"

namespace {

using lazysi::session::Guarantee;
using lazysi::system::ReplicatedSystem;
using lazysi::system::SystemConfig;
using lazysi::system::SystemTransaction;

void BM_ReplicationPipeline(benchmark::State& state) {
  // Measures primary-commit -> secondary-applied end to end, batched.
  SystemConfig config;
  config.num_secondaries = static_cast<std::size_t>(state.range(0));
  config.guarantee = Guarantee::kWeakSI;
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(0);
  std::uint64_t i = 0;
  constexpr int kBatch = 256;
  for (auto _ : state) {
    for (int n = 0; n < kBatch; ++n) {
      (void)client->ExecuteUpdate([&](SystemTransaction& t) {
        return t.Put("key" + std::to_string(i % 1024), std::to_string(i));
      });
      ++i;
    }
    benchmark::DoNotOptimize(sys.WaitForReplication());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  sys.Stop();
}
BENCHMARK(BM_ReplicationPipeline)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SessionReadAfterWrite(benchmark::State& state) {
  // The read-your-writes round trip under ALG-STRONG-SESSION-SI: update at
  // the primary, then a session read that must wait for the refresh.
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = Guarantee::kStrongSessionSI;
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)client->ExecuteUpdate([&](SystemTransaction& t) {
      return t.Put("key", std::to_string(i++));
    });
    auto read = client->BeginRead();
    benchmark::DoNotOptimize((*read)->Get("key"));
    (void)(*read)->Commit();
  }
  state.SetItemsProcessed(state.iterations());
  sys.Stop();
}
BENCHMARK(BM_SessionReadAfterWrite)->Unit(benchmark::kMicrosecond);

void BM_WeakReadThroughput(benchmark::State& state) {
  // Read-only transactions at a secondary are never blocked; this is the
  // raw secondary read path.
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = Guarantee::kWeakSI;
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(0);
  (void)client->ExecuteUpdate([](SystemTransaction& t) {
    return t.Put("key", "value");
  });
  sys.WaitForReplication();
  for (auto _ : state) {
    auto read = client->BeginRead();
    benchmark::DoNotOptimize((*read)->Get("key"));
    (void)(*read)->Commit();
  }
  state.SetItemsProcessed(state.iterations());
  sys.Stop();
}
BENCHMARK(BM_WeakReadThroughput);

void BM_ChaosTransportThroughput(benchmark::State& state) {
  // Primary-commit -> secondary-applied throughput when every record crosses
  // the ReliableChannel-over-ChaosLink path (encode + CRC + ack machinery on
  // the hot path) at 0% / 1% / 5% frame loss. Arg is loss in percent; the
  // 0% row isolates the cost of the reliability layer itself, the lossy rows
  // add retransmission.
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = Guarantee::kWeakSI;
  config.transport_faults.drop_probability =
      static_cast<double>(state.range(0)) / 100.0;
  // Make the profile non-trivially "any()" even at 0% loss so the chaos
  // path is exercised: corrupt nothing, drop per the arg, but keep the
  // link + channel in the pipeline.
  config.transport_faults.duplicate_probability = 0.0;
  config.transport_faults.corrupt_probability = 0.0;
  config.transport_faults.disconnect_probability = 0.0;
  if (!config.transport_faults.any()) {
    // 0% row: an all-zero profile would bypass the transport; keep it on
    // the wire with a fault rate too small to ever fire in practice.
    config.transport_faults.drop_probability = 1e-12;
  }
  config.transport_backoff_initial = std::chrono::milliseconds(1);
  config.transport_backoff_max = std::chrono::milliseconds(16);
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(0);
  std::uint64_t i = 0;
  constexpr int kBatch = 256;
  for (auto _ : state) {
    for (int n = 0; n < kBatch; ++n) {
      (void)client->ExecuteUpdate([&](SystemTransaction& t) {
        return t.Put("key" + std::to_string(i % 1024), std::to_string(i));
      });
      ++i;
    }
    benchmark::DoNotOptimize(sys.WaitForReplication());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  sys.Stop();
}
BENCHMARK(BM_ChaosTransportThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // Raw discrete-event engine speed: how many simulated client events per
  // wall second the CSIM-replacement sustains (drives the figure sweeps).
  for (auto _ : state) {
    lazysi::simmodel::Params p;
    p.num_secondaries = 2;
    p.total_clients_override = 40;
    p.warmup_time = 30;
    p.measure_time = 300;
    lazysi::simmodel::Model model(p, 1);
    benchmark::DoNotOptimize(model.Run());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
