// Ablation: concurrent vs serialized refresh (Section 3.3). The paper's
// refresh design exists precisely to exploit the local concurrency control
// with multiple concurrent applicators instead of replaying the primary log
// serially. Capping the applicator pool at 1 recreates the serial design;
// larger pools approach the unbounded case. A write-heavy mix makes the
// difference visible in refresh lag and session-read blocking.

#include <cstdio>

#include "simmodel/model.h"

using namespace lazysi;
using namespace lazysi::simmodel;

int main() {
  const int reps = DefaultReplications();
  const double scale = TimeScale();
  const std::size_t pools[] = {1, 2, 4, 8, 0};  // 0 = unbounded

  Params base;
  base.num_secondaries = 5;
  base.total_clients_override = 150;
  base.update_tran_prob = 0.5;  // write-heavy to stress the refresh path
  base.guarantee = session::Guarantee::kStrongSessionSI;
  std::printf("%s\n", base.ToTableString().c_str());
  std::printf("Ablation: applicator pool size (150 clients, 5 secondaries, "
              "50/50 mix, ALG-STRONG-SESSION-SI)\n\n");
  std::printf("%-12s | %14s | %14s | %14s | %14s\n", "pool size",
              "refresh lag (s)", "ro block (s)", "ro resp (s)",
              "tput<=3s (tps)");
  std::printf("%s\n", std::string(80, '-').c_str());
  for (std::size_t pool : pools) {
    Params p = base;
    p.applicator_pool_size = pool;
    p.warmup_time *= scale;
    p.measure_time *= scale;
    ReplicatedResult r = RunReplications(p, reps);
    char label[32];
    if (pool == 0) {
      std::snprintf(label, sizeof(label), "unbounded");
    } else {
      std::snprintf(label, sizeof(label), "%zu", pool);
    }
    std::printf("%-12s | %14.3f | %14.3f | %14.3f | %14.2f\n", label,
                r.refresh_lag.mean, r.ro_block.mean, r.ro_response.mean,
                r.throughput_fast.mean);
  }
  return 0;
}
