// Micro-benchmarks of the storage/transaction substrate (google-benchmark):
// not a paper figure, but the numbers that determine how much headroom the
// real (non-simulated) engine has relative to the model's 20 ms/op budget.

#include <benchmark/benchmark.h>

#include "engine/database.h"
#include "storage/versioned_store.h"
#include "txn/txn_manager.h"

namespace {

using lazysi::engine::Database;
using lazysi::storage::VersionedStore;
using lazysi::storage::WriteSet;

void BM_AutoCommitPut(benchmark::State& state) {
  Database db;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Put("key" + std::to_string(i++ % 1024), "v"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AutoCommitPut);

void BM_TxnBeginCommitEmpty(benchmark::State& state) {
  Database db;
  for (auto _ : state) {
    auto t = db.Begin(/*read_only=*/true);
    benchmark::DoNotOptimize(t->Commit());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TxnBeginCommitEmpty);

void BM_TxnMultiOp(benchmark::State& state) {
  Database db;
  const int ops = static_cast<int>(state.range(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto t = db.Begin();
    for (int o = 0; o < ops; ++o) {
      (void)t->Put("key" + std::to_string((i + o) % 4096),
                   std::to_string(i));
    }
    benchmark::DoNotOptimize(t->Commit());
    i += ops;
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_TxnMultiOp)->Arg(1)->Arg(10)->Arg(100);

void BM_SnapshotGet(benchmark::State& state) {
  VersionedStore store;
  const int versions = static_cast<int>(state.range(0));
  // One key with a long version chain: measures the binary search.
  for (int v = 1; v <= versions; ++v) {
    WriteSet ws;
    ws.Put("hot", std::to_string(v));
    store.Apply(ws, static_cast<lazysi::Timestamp>(v));
  }
  lazysi::Timestamp snap = versions / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get("hot", snap));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotGet)->Arg(1)->Arg(64)->Arg(4096);

void BM_FcwValidation(benchmark::State& state) {
  // Commit path with a write set of range(0) keys over a populated store.
  VersionedStore store;
  lazysi::txn::TxnManager manager(&store);
  const int keys = static_cast<int>(state.range(0));
  for (int k = 0; k < 1024; ++k) {
    auto t = manager.Begin();
    (void)t->Put("key" + std::to_string(k), "seed");
    (void)t->Commit();
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto t = manager.Begin();
    for (int k = 0; k < keys; ++k) {
      (void)t->Put("key" + std::to_string((i + k) % 1024), "v");
    }
    benchmark::DoNotOptimize(t->Commit());
    i += keys;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FcwValidation)->Arg(1)->Arg(10)->Arg(50);

// --- Contended variants -----------------------------------------------------
// All threads hammer one shared instance (setup/teardown on thread 0, the
// google-benchmark multi-threaded idiom). The first Arg is the store shard
// count: 1 reproduces the old single-global-lock layout, the default (16)
// is the lock-striped layout, so shards:1 vs shards:16 at the same thread
// count is the before/after of the sharding change.

void BM_SnapshotGetContended(benchmark::State& state) {
  static VersionedStore* store = nullptr;
  constexpr int kKeys = 4096;
  if (state.thread_index() == 0) {
    store = new VersionedStore(static_cast<std::size_t>(state.range(0)));
    for (int k = 0; k < kKeys; ++k) {
      WriteSet ws;
      ws.Put("key" + std::to_string(k), "v");
      store->Apply(ws, 10);
    }
  }
  // Thread-strided key access: every thread reads a disjoint residue class,
  // so all contention is on the shard locks, not on hot chain data.
  std::uint64_t i = state.thread_index();
  const std::uint64_t stride = state.threads();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store->Get("key" + std::to_string(i % kKeys), 100));
    i += stride;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete store;
    store = nullptr;
  }
}
BENCHMARK(BM_SnapshotGetContended)
    ->Arg(1)
    ->Arg(16)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_ReadOnlyBegin(benchmark::State& state) {
  // Lock-free read-only begin: one atomic watermark load + a reader-slot
  // CAS, no clock mutex. Contended threads measure whether concurrent RO
  // begins scale instead of serializing on the timestamp lock.
  static Database* db = nullptr;
  if (state.thread_index() == 0) {
    lazysi::engine::DatabaseOptions options;
    options.record_state_chain = false;
    db = new Database(options);
    (void)db->Put("key", "v");
  }
  for (auto _ : state) {
    auto t = db->Begin(/*read_only=*/true);
    benchmark::DoNotOptimize(t.get());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete db;
    db = nullptr;
  }
}
BENCHMARK(BM_ReadOnlyBegin)->ThreadRange(1, 8)->UseRealTime();

void BM_SnapshotReadHot(benchmark::State& state) {
  // Every thread reads the SAME row, so there is no lock striping to hide
  // behind: the Arg toggles the shared-lock baseline (GetLocked, what every
  // read paid before the lock-free chains) against the lock-free path
  // (Get). locked:0/threads:N vs locked:1/threads:N is the before/after of
  // the lock-free read work.
  static VersionedStore* store = nullptr;
  if (state.thread_index() == 0) {
    store = new VersionedStore();
    WriteSet ws;
    ws.Put("hot", "v");
    store->Apply(ws, 10);
  }
  const bool locked = state.range(0) != 0;
  if (locked) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(store->GetLocked("hot", 100));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(store->Get("hot", 100));
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete store;
    store = nullptr;
  }
}
BENCHMARK(BM_SnapshotReadHot)
    ->ArgNames({"locked"})
    ->Arg(0)
    ->Arg(1)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_TxnMultiOpContended(benchmark::State& state) {
  static Database* db = nullptr;
  if (state.thread_index() == 0) {
    lazysi::engine::DatabaseOptions options;
    options.record_state_chain = false;
    options.store_shards = static_cast<std::size_t>(state.range(0));
    db = new Database(options);
  }
  // Thread-private key ranges: commits race on the timestamp mutex and the
  // watermark publication, never on first-committer-wins conflicts, so this
  // measures the pipelined commit's critical section under load.
  constexpr int kOps = 8;
  const std::string prefix = "t" + std::to_string(state.thread_index()) + "k";
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto t = db->Begin();
    for (int o = 0; o < kOps; ++o) {
      (void)t->Put(prefix + std::to_string((i + o) % 256), "v");
    }
    benchmark::DoNotOptimize(t->Commit());
    i += kOps;
  }
  state.SetItemsProcessed(state.iterations() * kOps);
  if (state.thread_index() == 0) {
    delete db;
    db = nullptr;
  }
}
BENCHMARK(BM_TxnMultiOpContended)
    ->Arg(1)
    ->Arg(16)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_FcwValidationContended(benchmark::State& state) {
  static VersionedStore* store = nullptr;
  static lazysi::txn::TxnManager* manager = nullptr;
  constexpr int kPool = 1024;
  if (state.thread_index() == 0) {
    store = new VersionedStore(static_cast<std::size_t>(state.range(0)));
    manager = new lazysi::txn::TxnManager(store);
    for (int k = 0; k < kPool; ++k) {
      auto t = manager->Begin();
      (void)t->Put("key" + std::to_string(k), "seed");
      (void)t->Commit();
    }
  }
  // All threads draw from one shared key pool, so first-committer-wins
  // conflicts (and aborts) genuinely occur; each iteration is one commit
  // attempt, successful or not.
  constexpr int kKeysPerTxn = 4;
  std::uint64_t i = state.thread_index() * 7919u;
  for (auto _ : state) {
    auto t = manager->Begin();
    for (int k = 0; k < kKeysPerTxn; ++k) {
      (void)t->Put("key" + std::to_string((i * 31 + k * 131) % kPool), "v");
    }
    benchmark::DoNotOptimize(t->Commit());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete manager;
    delete store;
    manager = nullptr;
    store = nullptr;
  }
}
BENCHMARK(BM_FcwValidationContended)
    ->Arg(1)
    ->Arg(16)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_ScanRange(benchmark::State& state) {
  Database db;
  for (int k = 0; k < 1000; ++k) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%06d", k);
    (void)db.Put(buf, "v");
  }
  const std::string begin = "key000100";
  const std::string end = "key000200";
  for (auto _ : state) {
    auto t = db.Begin(/*read_only=*/true);
    benchmark::DoNotOptimize(t->Scan(begin, end));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ScanRange);

void BM_LogAppend(benchmark::State& state) {
  lazysi::wal::LogicalLog log;
  std::uint64_t i = 0;
  for (auto _ : state) {
    log.Append(lazysi::wal::LogRecord::Update(i, "key", "value", false));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogAppend);

void BM_LogRecordEncodeDecode(benchmark::State& state) {
  auto record = lazysi::wal::LogRecord::Update(42, "some/key/path",
                                               "a moderately sized value",
                                               false);
  for (auto _ : state) {
    std::string buf;
    record.EncodeTo(&buf);
    std::size_t offset = 0;
    benchmark::DoNotOptimize(lazysi::wal::LogRecord::Decode(buf, &offset));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogRecordEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
