// Micro-benchmarks of the storage/transaction substrate (google-benchmark):
// not a paper figure, but the numbers that determine how much headroom the
// real (non-simulated) engine has relative to the model's 20 ms/op budget.

#include <benchmark/benchmark.h>

#include "engine/database.h"
#include "storage/versioned_store.h"
#include "txn/txn_manager.h"

namespace {

using lazysi::engine::Database;
using lazysi::storage::VersionedStore;
using lazysi::storage::WriteSet;

void BM_AutoCommitPut(benchmark::State& state) {
  Database db;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Put("key" + std::to_string(i++ % 1024), "v"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AutoCommitPut);

void BM_TxnBeginCommitEmpty(benchmark::State& state) {
  Database db;
  for (auto _ : state) {
    auto t = db.Begin(/*read_only=*/true);
    benchmark::DoNotOptimize(t->Commit());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TxnBeginCommitEmpty);

void BM_TxnMultiOp(benchmark::State& state) {
  Database db;
  const int ops = static_cast<int>(state.range(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto t = db.Begin();
    for (int o = 0; o < ops; ++o) {
      (void)t->Put("key" + std::to_string((i + o) % 4096),
                   std::to_string(i));
    }
    benchmark::DoNotOptimize(t->Commit());
    i += ops;
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_TxnMultiOp)->Arg(1)->Arg(10)->Arg(100);

void BM_SnapshotGet(benchmark::State& state) {
  VersionedStore store;
  const int versions = static_cast<int>(state.range(0));
  // One key with a long version chain: measures the binary search.
  for (int v = 1; v <= versions; ++v) {
    WriteSet ws;
    ws.Put("hot", std::to_string(v));
    store.Apply(ws, static_cast<lazysi::Timestamp>(v));
  }
  lazysi::Timestamp snap = versions / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get("hot", snap));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotGet)->Arg(1)->Arg(64)->Arg(4096);

void BM_FcwValidation(benchmark::State& state) {
  // Commit path with a write set of range(0) keys over a populated store.
  VersionedStore store;
  lazysi::txn::TxnManager manager(&store);
  const int keys = static_cast<int>(state.range(0));
  for (int k = 0; k < 1024; ++k) {
    auto t = manager.Begin();
    (void)t->Put("key" + std::to_string(k), "seed");
    (void)t->Commit();
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto t = manager.Begin();
    for (int k = 0; k < keys; ++k) {
      (void)t->Put("key" + std::to_string((i + k) % 1024), "v");
    }
    benchmark::DoNotOptimize(t->Commit());
    i += keys;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FcwValidation)->Arg(1)->Arg(10)->Arg(50);

void BM_ScanRange(benchmark::State& state) {
  Database db;
  for (int k = 0; k < 1000; ++k) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%06d", k);
    (void)db.Put(buf, "v");
  }
  const std::string begin = "key000100";
  const std::string end = "key000200";
  for (auto _ : state) {
    auto t = db.Begin(/*read_only=*/true);
    benchmark::DoNotOptimize(t->Scan(begin, end));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ScanRange);

void BM_LogAppend(benchmark::State& state) {
  lazysi::wal::LogicalLog log;
  std::uint64_t i = 0;
  for (auto _ : state) {
    log.Append(lazysi::wal::LogRecord::Update(i, "key", "value", false));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogAppend);

void BM_LogRecordEncodeDecode(benchmark::State& state) {
  auto record = lazysi::wal::LogRecord::Update(42, "some/key/path",
                                               "a moderately sized value",
                                               false);
  for (auto _ : state) {
    std::string buf;
    record.EncodeTo(&buf);
    std::size_t offset = 0;
    benchmark::DoNotOptimize(lazysi::wal::LogRecord::Decode(buf, &offset));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogRecordEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
