// Figure 7: Update Transaction Response Time vs. Number of Secondary Sites,
// 20 clients per secondary, 80/20 workload. Expected shape: update response
// time rises sharply for weak/session SI as the growing total client count
// saturates the single primary; strong SI's suppressed update load keeps
// its curve much lower.

#include "bench/fig_common.h"

int main() {
  using namespace lazysi::bench;
  auto make = [](double secondaries) {
    Params p;
    p.num_secondaries = static_cast<std::size_t>(secondaries);
    p.clients_per_secondary = 20;
    return p;
  };
  const std::vector<double> xs = {1, 2, 4, 6, 8, 10, 11, 12, 14, 16};
  PrintParams(make(xs.front()));
  auto rows = SweepAlgorithms(xs, make);
  PrintFigure(
      "Figure 7: Update Response Time vs. Number of Secondaries (80/20)",
      "secondary sites", "seconds", rows,
      [](const ReplicatedResult& r) { return r.upd_response; });
  PrintFigure(
      "Supplement: primary utilization (saturation past ~11 secondaries)",
      "secondary sites", "fraction busy", rows,
      [](const ReplicatedResult& r) { return r.primary_utilization; });
  return 0;
}
