// Figure 8: Transaction Throughput vs. Number of Secondary Sites with the
// TPC-W "browsing" 95/5 mix, 20 clients per secondary. Expected shape: with
// only 5% updates the primary saturates far later, so weak/session SI scale
// close to the y=x ideal well past the 80/20 plateau (to ~45+ secondaries).

#include "bench/fig_common.h"

int main() {
  using namespace lazysi::bench;
  auto make = [](double secondaries) {
    Params p;
    p.num_secondaries = static_cast<std::size_t>(secondaries);
    p.clients_per_secondary = 20;
    p.update_tran_prob = 0.05;  // browsing mix
    return p;
  };
  const std::vector<double> xs = {5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55};
  PrintParams(make(xs.front()));
  auto rows = SweepAlgorithms(xs, make);
  PrintFigure(
      "Figure 8: Throughput vs. Number of Secondaries (20 clients each, "
      "95/5)",
      "secondary sites", "txns finishing <= 3s, per second", rows,
      [](const ReplicatedResult& r) { return r.throughput_fast; },
      /*show_ideal=*/true);
  return 0;
}
