// Figure 4: Update Transaction Response Time vs. Number of Clients, 80/20
// workload, 5 secondaries. Expected shape: ALG-WEAK-SI and
// ALG-STRONG-SESSION-SI rise together as the primary saturates;
// ALG-STRONG-SI shows *lower* update response times because its blocked
// readers suppress the offered update load (Section 6.2's explanation).

#include "bench/fig_common.h"

int main() {
  using namespace lazysi::bench;
  auto make = [](double clients) {
    Params p;
    p.num_secondaries = 5;
    p.total_clients_override = static_cast<std::size_t>(clients);
    return p;
  };
  const std::vector<double> xs = {25, 50, 75, 100, 125, 150, 175, 200, 225,
                                  250};
  PrintParams(make(xs.front()));
  auto rows = SweepAlgorithms(xs, make);
  PrintFigure(
      "Figure 4: Update Response Time vs. Number of Clients (80/20)",
      "clients", "seconds", rows,
      [](const ReplicatedResult& r) { return r.upd_response; });
  PrintFigure(
      "Supplement: primary site utilization", "clients", "fraction busy",
      rows, [](const ReplicatedResult& r) { return r.primary_utilization; });
  return 0;
}
