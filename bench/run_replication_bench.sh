#!/usr/bin/env sh
# Runs the replication micro-benchmarks (the direct-vs-legacy RefreshCatchup
# matrix, the end-to-end pipeline, session round trips, and the chaos
# transport rows) and emits machine-readable results.
#
# Usage: bench/run_replication_bench.sh [path/to/micro_replication_bench] [output.json]
# Environment: BENCH_MIN_TIME (seconds per benchmark, default 0.2 — pass a
# bare double; this benchmark library rejects the "0.2s" suffix form).
# BENCH_REPS (repetitions per benchmark, default 3 — the regression differ
# compares the best repetition per row, which filters out transient
# shared-hardware interference that a single longer run just averages in).
set -eu

BIN=${1:-build-release/bench/micro_replication_bench}
OUT=${2:-BENCH_replication.json}

if [ ! -x "$BIN" ]; then
  echo "error: benchmark binary '$BIN' not found; build it first:" >&2
  echo "  cmake --preset release && cmake --build --preset release --target micro_replication_bench" >&2
  exit 1
fi

exec "$BIN" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_min_time="${BENCH_MIN_TIME:-0.2}" \
  --benchmark_repetitions="${BENCH_REPS:-3}" \
  --benchmark_enable_random_interleaving=true
