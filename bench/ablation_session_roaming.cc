// Ablation: roaming reads — each read-only transaction goes to a random
// secondary instead of the session's home site. This exposes the difference
// between strong session SI (Definition 2.2: read-read monotonicity) and
// prefix-consistent SI (Section 7: only the session's own updates order
// later transactions): under PCSI and weak SI a session's observed snapshot
// can move backwards; strong session SI pays a little extra blocking to
// forbid it.

#include <cstdio>

#include "simmodel/model.h"

using namespace lazysi;
using namespace lazysi::simmodel;

int main() {
  const int reps = DefaultReplications();
  const double scale = TimeScale();
  const session::Guarantee algorithms[] = {
      session::Guarantee::kWeakSI, session::Guarantee::kPrefixConsistentSI,
      session::Guarantee::kStrongSessionSI, session::Guarantee::kStrongSI};

  Params base;
  base.num_secondaries = 5;
  base.total_clients_override = 100;
  std::printf("%s\n", base.ToTableString().c_str());
  std::printf("Ablation: home-bound vs roaming reads (100 clients, 5 "
              "secondaries, 80/20)\n\n");
  std::printf("%-10s | %-22s | %16s | %12s | %12s\n", "routing", "algorithm",
              "regressions/1k RO", "ro block (s)", "ro resp (s)");
  std::printf("%s\n", std::string(84, '-').c_str());
  for (bool roam : {false, true}) {
    for (auto g : algorithms) {
      Params p = base;
      p.roam_reads = roam;
      p.guarantee = g;
      p.warmup_time *= scale;
      p.measure_time *= scale;
      ReplicatedResult r = RunReplications(p, reps);
      std::printf("%-10s | %-22s | %10.2f +/- %-5.2f | %12.3f | %12.3f\n",
                  roam ? "roaming" : "home",
                  std::string(session::GuaranteeName(g)).c_str(),
                  r.regressions_per_k.mean, r.regressions_per_k.ci95,
                  r.ro_block.mean, r.ro_response.mean);
    }
    std::printf("%s\n", std::string(84, '-').c_str());
  }
  std::printf("Strong session SI keeps regressions at zero even while "
              "roaming;\nPCSI trades those regressions for less blocking.\n");
  return 0;
}
