// Ablation: read/update mix sweep. Figures 2-7 use the TPC-W shopping mix
// (80/20) and Figure 8 the browsing mix (95/5); this sweep fills in the
// space between and beyond, showing how the primary's update capacity
// bounds every algorithm and where the session guarantee's cost peaks.

#include <cstdio>

#include "simmodel/model.h"

using namespace lazysi;
using namespace lazysi::simmodel;

int main() {
  const int reps = DefaultReplications();
  const double scale = TimeScale();
  const double update_fractions[] = {0.02, 0.05, 0.1, 0.2, 0.35, 0.5};
  const session::Guarantee algorithms[] = {
      session::Guarantee::kWeakSI, session::Guarantee::kStrongSessionSI,
      session::Guarantee::kStrongSI};

  Params base;
  base.num_secondaries = 5;
  base.total_clients_override = 150;
  std::printf("%s\n", base.ToTableString().c_str());
  std::printf("Ablation: update fraction sweep (150 clients, 5 "
              "secondaries)\n\n");
  std::printf("%-10s | %-22s | %12s | %12s | %12s | %12s\n", "updates",
              "algorithm", "tput<=3s", "ro resp (s)", "upd resp (s)",
              "primary util");
  std::printf("%s\n", std::string(96, '-').c_str());
  for (double frac : update_fractions) {
    for (auto g : algorithms) {
      Params p = base;
      p.update_tran_prob = frac;
      p.guarantee = g;
      p.warmup_time *= scale;
      p.measure_time *= scale;
      ReplicatedResult r = RunReplications(p, reps);
      std::printf("%-10.2f | %-22s | %12.2f | %12.3f | %12.3f | %12.2f\n",
                  frac, std::string(session::GuaranteeName(g)).c_str(),
                  r.throughput_fast.mean, r.ro_response.mean,
                  r.upd_response.mean, r.primary_utilization.mean);
    }
    std::printf("%s\n", std::string(96, '-').c_str());
  }
  return 0;
}
