// Figure 6: Read-Only Transaction Response Time vs. Number of Secondary
// Sites, 20 clients per secondary, 80/20 workload. Expected shape: weak and
// session SI stay low and flat (read capacity scales with the sites);
// strong SI stays near the propagation delay.

#include "bench/fig_common.h"

int main() {
  using namespace lazysi::bench;
  auto make = [](double secondaries) {
    Params p;
    p.num_secondaries = static_cast<std::size_t>(secondaries);
    p.clients_per_secondary = 20;
    return p;
  };
  const std::vector<double> xs = {1, 2, 4, 6, 8, 10, 11, 12, 14, 16};
  PrintParams(make(xs.front()));
  auto rows = SweepAlgorithms(xs, make);
  PrintFigure(
      "Figure 6: Read-Only Response Time vs. Number of Secondaries (80/20)",
      "secondary sites", "seconds", rows,
      [](const ReplicatedResult& r) { return r.ro_response; });
  PrintFigure(
      "Supplement: 95th-percentile read-only response time",
      "secondary sites", "seconds", rows,
      [](const ReplicatedResult& r) { return r.ro_response_p95; });
  return 0;
}
