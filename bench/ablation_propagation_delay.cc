// Ablation: sensitivity to the propagation delay (Table 1 default: 10 s).
// Strong SI's read latency tracks the delay almost one-for-one (every read
// waits for the newest global update to arrive), strong session SI degrades
// only mildly (a read waits only when its own session updated recently), and
// weak SI is flat by construction. PCSI behaves like session SI here since
// clients are home-bound.

#include <cstdio>

#include "simmodel/model.h"

using namespace lazysi;
using namespace lazysi::simmodel;

int main() {
  const int reps = DefaultReplications();
  const double scale = TimeScale();
  const double delays[] = {0.5, 1, 2, 5, 10, 20, 30};
  const session::Guarantee algorithms[] = {
      session::Guarantee::kWeakSI, session::Guarantee::kStrongSessionSI,
      session::Guarantee::kStrongSI, session::Guarantee::kPrefixConsistentSI};

  Params base;
  base.num_secondaries = 5;
  base.total_clients_override = 100;
  std::printf("%s\n", base.ToTableString().c_str());
  std::printf("Ablation: propagation_delay sweep (100 clients, 5 "
              "secondaries, 80/20)\n\n");
  std::printf("%-10s | %-22s | %12s | %12s | %12s | %12s\n", "delay (s)",
              "algorithm", "ro resp (s)", "ro block (s)", "tput<=3s",
              "refresh lag");
  std::printf("%s\n", std::string(98, '-').c_str());
  for (double delay : delays) {
    for (auto g : algorithms) {
      Params p = base;
      p.propagation_delay = delay;
      p.guarantee = g;
      p.warmup_time *= scale;
      p.measure_time *= scale;
      ReplicatedResult r = RunReplications(p, reps);
      std::printf("%-10.1f | %-22s | %12.3f | %12.3f | %12.2f | %12.2f\n",
                  delay, std::string(session::GuaranteeName(g)).c_str(),
                  r.ro_response.mean, r.ro_block.mean, r.throughput_fast.mean,
                  r.refresh_lag.mean);
    }
    std::printf("%s\n", std::string(98, '-').c_str());
  }
  return 0;
}
