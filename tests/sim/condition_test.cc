#include "sim/condition.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace lazysi {
namespace sim {
namespace {

struct SharedState {
  int seq = 0;
};

Process Waiter(Simulator& sim, Condition& cond, SharedState& state,
               int needed, std::vector<double>& done) {
  while (state.seq < needed) co_await cond.Wait();
  done.push_back(sim.Now());
}

Process Advancer(Simulator& sim, Condition& cond, SharedState& state,
                 double interval, int upto) {
  while (state.seq < upto) {
    co_await sim.Delay(interval);
    ++state.seq;
    cond.NotifyAll();
  }
}

TEST(ConditionTest, WaiterWakesWhenPredicateHolds) {
  Simulator sim;
  Condition cond(&sim);
  SharedState state;
  std::vector<double> done;
  sim.Spawn(Waiter(sim, cond, state, 3, done));
  sim.Spawn(Advancer(sim, cond, state, 1.0, 5));
  sim.Run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 3.0);  // woke exactly when seq reached 3
}

TEST(ConditionTest, SatisfiedPredicateNeverWaits) {
  Simulator sim;
  Condition cond(&sim);
  SharedState state;
  state.seq = 10;
  std::vector<double> done;
  sim.Spawn(Waiter(sim, cond, state, 3, done));
  sim.Run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 0.0);
}

TEST(ConditionTest, NotifyAllWakesEveryWaiter) {
  Simulator sim;
  Condition cond(&sim);
  SharedState state;
  std::vector<double> done;
  for (int i = 0; i < 5; ++i) sim.Spawn(Waiter(sim, cond, state, 1, done));
  sim.Spawn(Advancer(sim, cond, state, 2.0, 1));
  sim.Run();
  EXPECT_EQ(done.size(), 5u);
  for (double t : done) EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(ConditionTest, WaitersWithDifferentThresholds) {
  Simulator sim;
  Condition cond(&sim);
  SharedState state;
  std::vector<double> done1, done3, done5;
  sim.Spawn(Waiter(sim, cond, state, 1, done1));
  sim.Spawn(Waiter(sim, cond, state, 3, done3));
  sim.Spawn(Waiter(sim, cond, state, 5, done5));
  sim.Spawn(Advancer(sim, cond, state, 1.0, 5));
  sim.Run();
  EXPECT_DOUBLE_EQ(done1[0], 1.0);
  EXPECT_DOUBLE_EQ(done3[0], 3.0);
  EXPECT_DOUBLE_EQ(done5[0], 5.0);
}

TEST(ConditionTest, NumWaitersTracksQueue) {
  Simulator sim;
  Condition cond(&sim);
  SharedState state;
  std::vector<double> done;
  sim.Spawn(Waiter(sim, cond, state, 1, done));
  sim.RunUntil(0.5);
  EXPECT_EQ(cond.num_waiters(), 1u);
  state.seq = 1;
  cond.NotifyAll();
  sim.RunUntil(1.0);
  EXPECT_EQ(cond.num_waiters(), 0u);
  EXPECT_EQ(done.size(), 1u);
}

}  // namespace
}  // namespace sim
}  // namespace lazysi
