#include "sim/resource.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace lazysi {
namespace sim {
namespace {

Process OneJob(Simulator& sim, Resource& r, double arrive, double demand,
               std::vector<double>& done) {
  co_await sim.Delay(arrive);
  co_await r.Use(demand);
  done.push_back(sim.Now());
}

TEST(ResourceTest, SingleJobServedAtFullRate) {
  Simulator sim;
  Resource r(&sim, "cpu");
  std::vector<double> done;
  sim.Spawn(OneJob(sim, r, 0, 2.0, done));
  sim.Run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_EQ(r.completed(), 1u);
}

TEST(ResourceTest, ProcessorSharingSplitsCapacity) {
  // Two equal jobs arriving together under PS each see half the server:
  // both complete at 2 * demand.
  Simulator sim;
  Resource r(&sim, "cpu");
  std::vector<double> done;
  sim.Spawn(OneJob(sim, r, 0, 1.0, done));
  sim.Spawn(OneJob(sim, r, 0, 1.0, done));
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(ResourceTest, ProcessorSharingLateArrival) {
  // Job A (demand 2) alone for 1s (1 unit done), then B (demand 0.5)
  // arrives. They share: B finishes after 1s more (0.5 served at rate 1/2),
  // at t=2; A then has 0.5 left alone, finishing at 2.5.
  Simulator sim;
  Resource r(&sim, "cpu");
  std::vector<double> done_a, done_b;
  sim.Spawn(OneJob(sim, r, 0, 2.0, done_a));
  sim.Spawn(OneJob(sim, r, 1.0, 0.5, done_b));
  sim.Run();
  ASSERT_EQ(done_a.size(), 1u);
  ASSERT_EQ(done_b.size(), 1u);
  EXPECT_NEAR(done_b[0], 2.0, 1e-9);
  EXPECT_NEAR(done_a[0], 2.5, 1e-9);
}

TEST(ResourceTest, FifoServesInArrivalOrder) {
  Simulator sim;
  Resource r(&sim, "cpu", Resource::Discipline::kFifo);
  std::vector<double> done1, done2;
  sim.Spawn(OneJob(sim, r, 0, 2.0, done1));
  sim.Spawn(OneJob(sim, r, 0.5, 1.0, done2));
  sim.Run();
  EXPECT_NEAR(done1[0], 2.0, 1e-9);
  EXPECT_NEAR(done2[0], 3.0, 1e-9);  // waits for job 1
}

TEST(ResourceTest, RoundRobinApproximatesProcessorSharing) {
  // The substitution DESIGN.md documents: with slice << demand, literal
  // round-robin completion times converge to PS completion times.
  for (const double demand : {0.2, 1.0}) {
    Simulator ps_sim;
    Resource ps(&ps_sim, "ps");
    std::vector<double> ps_done;
    for (int i = 0; i < 4; ++i) {
      ps_sim.Spawn(OneJob(ps_sim, ps, 0.1 * i, demand, ps_done));
    }
    ps_sim.Run();

    Simulator rr_sim;
    Resource rr(&rr_sim, "rr", Resource::Discipline::kRoundRobin, 0.001);
    std::vector<double> rr_done;
    for (int i = 0; i < 4; ++i) {
      rr_sim.Spawn(OneJob(rr_sim, rr, 0.1 * i, demand, rr_done));
    }
    rr_sim.Run();

    ASSERT_EQ(ps_done.size(), rr_done.size());
    for (std::size_t i = 0; i < ps_done.size(); ++i) {
      EXPECT_NEAR(ps_done[i], rr_done[i], 0.01)
          << "demand " << demand << " job " << i;
    }
  }
}

TEST(ResourceTest, UtilizationTracked) {
  Simulator sim;
  Resource r(&sim, "cpu");
  std::vector<double> done;
  sim.Spawn(OneJob(sim, r, 0, 3.0, done));
  sim.Run();
  sim.RunUntil(6.0);  // idle from 3 to 6
  EXPECT_NEAR(r.Utilization(), 0.5, 0.01);
}

TEST(ResourceTest, ResetStatsClearsCounters) {
  Simulator sim;
  Resource r(&sim, "cpu");
  std::vector<double> done;
  sim.Spawn(OneJob(sim, r, 0, 1.0, done));
  sim.Run();
  EXPECT_EQ(r.completed(), 1u);
  r.ResetStats();
  EXPECT_EQ(r.completed(), 0u);
  EXPECT_EQ(r.demand_served(), 0.0);
}

TEST(ResourceTest, ManyJobsConserveWork) {
  // Total demand in == total time the server is busy (work conservation).
  Simulator sim;
  Resource r(&sim, "cpu");
  std::vector<double> done;
  double total_demand = 0;
  for (int i = 0; i < 50; ++i) {
    const double demand = 0.1 + 0.01 * i;
    total_demand += demand;
    sim.Spawn(OneJob(sim, r, 0.05 * i, demand, done));
  }
  sim.Run();
  EXPECT_EQ(done.size(), 50u);
  EXPECT_NEAR(r.demand_served(), total_demand, 1e-6);
}

}  // namespace
}  // namespace sim
}  // namespace lazysi
