#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace lazysi {
namespace sim {
namespace {

Process Appender(Simulator& sim, std::vector<double>& log, double delay,
                 int count) {
  for (int i = 0; i < count; ++i) {
    co_await sim.Delay(delay);
    log.push_back(sim.Now());
  }
}

TEST(SimulatorTest, VirtualTimeAdvancesWithDelays) {
  Simulator sim;
  std::vector<double> log;
  sim.Spawn(Appender(sim, log, 1.5, 3));
  sim.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log[0], 1.5);
  EXPECT_DOUBLE_EQ(log[1], 3.0);
  EXPECT_DOUBLE_EQ(log[2], 4.5);
  EXPECT_DOUBLE_EQ(sim.Now(), 4.5);
}

TEST(SimulatorTest, ProcessesInterleaveByTime) {
  Simulator sim;
  std::vector<double> a, b;
  sim.Spawn(Appender(sim, a, 2.0, 3));  // 2, 4, 6
  sim.Spawn(Appender(sim, b, 3.0, 2));  // 3, 6
  sim.Run();
  EXPECT_EQ(a, (std::vector<double>{2, 4, 6}));
  EXPECT_EQ(b, (std::vector<double>{3, 6}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> log;
  sim.Spawn(Appender(sim, log, 1.0, 100));
  sim.RunUntil(5.0);
  EXPECT_EQ(log.size(), 5u);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
  sim.RunUntil(7.5);
  EXPECT_EQ(log.size(), 7u);
  EXPECT_DOUBLE_EQ(sim.Now(), 7.5);
}

TEST(SimulatorTest, CallbacksFireAtScheduledTime) {
  Simulator sim;
  std::vector<double> fired;
  sim.ScheduleCallback(2.0, [&] { fired.push_back(sim.Now()); });
  sim.ScheduleCallback(1.0, [&] { fired.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
}

TEST(SimulatorTest, CancelledCallbackNeverFires) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.ScheduleCallback(1.0, [&] { fired = true; });
  sim.CancelCallback(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleCallback(1.0, [&] { order.push_back(1); });
  sim.ScheduleCallback(1.0, [&] { order.push_back(2); });
  sim.ScheduleCallback(1.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, UnfinishedProcessesDestroyedSafely) {
  // A process suspended forever must be cleaned up by the simulator's
  // destructor without leaks or crashes (checked by ASAN-like tooling; here
  // we just exercise the path).
  auto forever = [](Simulator& sim) -> Process {
    for (;;) co_await sim.Delay(1.0);
  };
  Simulator sim;
  sim.Spawn(forever(sim));
  sim.RunUntil(10.0);
  // Destructor runs at scope exit.
}

TEST(SimulatorTest, EventCountTracked) {
  Simulator sim;
  std::vector<double> log;
  sim.Spawn(Appender(sim, log, 1.0, 5));
  sim.Run();
  EXPECT_GE(sim.events_processed(), 5u);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  std::vector<double> log;
  sim.Spawn(Appender(sim, log, 0.0, 2));
  sim.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log[0], 0.0);
  EXPECT_DOUBLE_EQ(log[1], 0.0);
}

}  // namespace
}  // namespace sim
}  // namespace lazysi
