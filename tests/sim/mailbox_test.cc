#include "sim/mailbox.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace lazysi {
namespace sim {
namespace {

Process Receiver(Simulator& sim, Mailbox<int>& mb, std::vector<int>& got,
                 int count) {
  for (int i = 0; i < count; ++i) {
    int v = co_await mb.Receive();
    got.push_back(v);
    (void)sim;
  }
}

Process DelayedSender(Simulator& sim, Mailbox<int>& mb, double delay,
                      int value) {
  co_await sim.Delay(delay);
  mb.Send(value);
}

TEST(MailboxTest, ValuesBeforeReceiversFifo) {
  Simulator sim;
  Mailbox<int> mb(&sim);
  mb.Send(1);
  mb.Send(2);
  mb.Send(3);
  std::vector<int> got;
  sim.Spawn(Receiver(sim, mb, got, 3));
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(MailboxTest, ReceiverBlocksUntilSend) {
  Simulator sim;
  Mailbox<int> mb(&sim);
  std::vector<int> got;
  sim.Spawn(Receiver(sim, mb, got, 1));
  sim.Spawn(DelayedSender(sim, mb, 5.0, 42));
  sim.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(MailboxTest, InterleavedSendsPreserveOrder) {
  Simulator sim;
  Mailbox<int> mb(&sim);
  std::vector<int> got;
  sim.Spawn(Receiver(sim, mb, got, 4));
  sim.Spawn(DelayedSender(sim, mb, 1.0, 1));
  sim.Spawn(DelayedSender(sim, mb, 2.0, 2));
  sim.Spawn(DelayedSender(sim, mb, 3.0, 3));
  sim.Spawn(DelayedSender(sim, mb, 4.0, 4));
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
}

TEST(MailboxTest, MultipleReceiversEachGetOneValue) {
  Simulator sim;
  Mailbox<int> mb(&sim);
  std::vector<int> got_a, got_b;
  sim.Spawn(Receiver(sim, mb, got_a, 1));
  sim.Spawn(Receiver(sim, mb, got_b, 1));
  sim.Spawn(DelayedSender(sim, mb, 1.0, 10));
  sim.Spawn(DelayedSender(sim, mb, 2.0, 20));
  sim.Run();
  EXPECT_EQ(got_a.size() + got_b.size(), 2u);
}

TEST(MailboxTest, SizeReflectsBufferedValues) {
  Simulator sim;
  Mailbox<std::string> mb(&sim);
  EXPECT_TRUE(mb.empty());
  mb.Send("a");
  mb.Send("b");
  EXPECT_EQ(mb.size(), 2u);
}

}  // namespace
}  // namespace sim
}  // namespace lazysi
