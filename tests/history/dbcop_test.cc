#include "history/dbcop.h"

#include <gtest/gtest.h>

#include <sstream>

#include "system/replicated_system.h"

namespace lazysi {
namespace history {
namespace {

bool SameHistory(const DbcopHistory& a, const DbcopHistory& b) {
  if (a.id != b.id || a.info != b.info || a.start != b.start ||
      a.end != b.end || a.sessions.size() != b.sessions.size()) {
    return false;
  }
  for (std::size_t s = 0; s < a.sessions.size(); ++s) {
    const auto& sa = a.sessions[s];
    const auto& sb = b.sessions[s];
    if (sa.txns.size() != sb.txns.size()) return false;
    for (std::size_t t = 0; t < sa.txns.size(); ++t) {
      const auto& ta = sa.txns[t];
      const auto& tb = sb.txns[t];
      if (ta.success != tb.success || ta.events.size() != tb.events.size()) {
        return false;
      }
      for (std::size_t e = 0; e < ta.events.size(); ++e) {
        const auto& ea = ta.events[e];
        const auto& eb = tb.events[e];
        if (ea.is_write != eb.is_write || ea.key != eb.key ||
            ea.value != eb.value || ea.success != eb.success) {
          return false;
        }
      }
    }
  }
  return true;
}

TEST(DbcopTest, RoundTripHandBuilt) {
  DbcopHistory history;
  history.id = 7;
  history.info = "hand built";
  history.start = "2026-01-01";
  history.end = "2026-01-02";
  DbcopSession session;
  DbcopTxn txn;
  txn.events.push_back(DbcopEvent{true, 0, 42, true});
  txn.events.push_back(DbcopEvent{false, 1, 0, true});
  session.txns.push_back(txn);
  DbcopTxn aborted;
  aborted.success = false;
  aborted.events.push_back(DbcopEvent{true, 1, 43, false});
  session.txns.push_back(aborted);
  history.sessions.push_back(session);
  history.sessions.push_back(DbcopSession{});  // empty session survives

  std::ostringstream out;
  WriteDbcop(history, out);
  std::istringstream in(out.str());
  auto parsed = ReadDbcop(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(SameHistory(history, *parsed));
  EXPECT_EQ(parsed->key_num(), 2);
  EXPECT_EQ(parsed->txn_num(), 2);
  EXPECT_EQ(parsed->event_num(), 3);
}

TEST(DbcopTest, TruncatedAndImplausibleStreamsRejected) {
  DbcopHistory history;
  history.sessions.push_back(DbcopSession{});
  std::ostringstream out;
  WriteDbcop(history, out);
  const std::string bytes = out.str();
  for (std::size_t cut : {std::size_t{0}, std::size_t{7}, bytes.size() - 1}) {
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_FALSE(ReadDbcop(in).ok()) << "cut=" << cut;
  }
  // A session count far beyond anything the stream could hold.
  std::string huge = bytes;
  huge.resize(huge.size() - 8);
  for (int i = 0; i < 8; ++i) huge.push_back('\x7f');
  std::istringstream in(huge);
  EXPECT_FALSE(ReadDbcop(in).ok());
}

TEST(DbcopTest, ExportsRecordedSystemHistory) {
  system::SystemConfig config;
  config.num_secondaries = 2;
  config.record_history = true;
  system::ReplicatedSystem sys(config);
  sys.Start();

  auto client_a = sys.ConnectTo(0);
  auto client_b = sys.ConnectTo(1);
  ASSERT_TRUE(client_a
                  ->ExecuteUpdate([](system::SystemTransaction& txn) {
                    EXPECT_TRUE(txn.Put("x", "1").ok());
                    return txn.Put("y", "1");
                  })
                  .ok());
  ASSERT_TRUE(client_b
                  ->ExecuteUpdate([](system::SystemTransaction& txn) {
                    return txn.Put("x", "2");
                  })
                  .ok());
  ASSERT_TRUE(sys.WaitForReplication());
  ASSERT_TRUE(client_a
                  ->ExecuteRead([](system::SystemTransaction& txn) {
                    auto x = txn.Get("x");
                    EXPECT_TRUE(x.ok());
                    return Status::OK();
                  })
                  .ok());
  sys.Stop();

  const auto records = sys.recorder()->Snapshot();
  ASSERT_EQ(records.size(), 3u);
  const DbcopHistory history = ToDbcop(records, /*id=*/3);
  EXPECT_EQ(history.id, 3);
  EXPECT_EQ(history.sessions.size(), 2u);  // two session labels
  EXPECT_EQ(history.txn_num(), 3);
  EXPECT_EQ(history.key_num(), 2);

  // The read observed one of the two writes to x; its value must equal that
  // writer's commit timestamp (primary coordinates survive the export).
  std::vector<std::int64_t> x_writes;
  std::int64_t x_read = -1;
  for (const auto& session : history.sessions) {
    for (const auto& txn : session.txns) {
      for (const auto& event : txn.events) {
        if (event.key != 0) continue;  // "x" sorts before "y" -> id 0
        if (event.is_write) {
          x_writes.push_back(event.value);
        } else {
          x_read = event.value;
        }
      }
    }
  }
  ASSERT_EQ(x_writes.size(), 2u);
  EXPECT_NE(x_read, -1);
  EXPECT_TRUE(x_read == x_writes[0] || x_read == x_writes[1]);

  std::ostringstream out;
  WriteDbcop(history, out);
  std::istringstream in(out.str());
  auto parsed = ReadDbcop(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(SameHistory(history, *parsed));
}

}  // namespace
}  // namespace history
}  // namespace lazysi
