#include "history/completeness.h"

#include <gtest/gtest.h>

namespace lazysi {
namespace history {
namespace {

engine::StateChainEntry E(Timestamp ts, std::uint64_t hash) {
  return engine::StateChainEntry{ts, hash};
}

TEST(CompletenessTest, EmptySecondaryIsPrefix) {
  EXPECT_TRUE(CheckCompleteness({E(1, 11), E(2, 22)}, {}).ok);
}

TEST(CompletenessTest, ExactMatchPasses) {
  auto report = CheckCompleteness({E(1, 11), E(2, 22)},
                                  {E(5, 11), E(6, 22)});  // local ts differ
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_EQ(report.checked, 2u);
}

TEST(CompletenessTest, LaggingSecondaryPasses) {
  EXPECT_TRUE(
      CheckCompleteness({E(1, 11), E(2, 22), E(3, 33)}, {E(9, 11)}).ok);
}

TEST(CompletenessTest, DivergentStateFails) {
  auto report =
      CheckCompleteness({E(1, 11), E(2, 22)}, {E(9, 11), E(10, 99)});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("state 1"), std::string::npos);
}

TEST(CompletenessTest, ReorderedCommitsFail) {
  // Same states installed in a different order: hashes chain differently.
  auto report =
      CheckCompleteness({E(1, 11), E(2, 22)}, {E(9, 22), E(10, 11)});
  EXPECT_FALSE(report.ok);
}

TEST(CompletenessTest, SecondaryAheadFails) {
  auto report = CheckCompleteness({E(1, 11)}, {E(9, 11), E(10, 22)});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("primary only installed"),
            std::string::npos);
}

}  // namespace
}  // namespace history
}  // namespace lazysi
