// Section 2.3's two degenerate cases of strong session SI, checked as
// properties over randomized histories:
//
//   "If each transaction is assigned the same session label then strong
//    session SI is equivalent to strong SI. If a distinct label is assigned
//    to every transaction, strong session SI is equivalent to weak SI."

#include <gtest/gtest.h>

#include "common/random.h"
#include "history/si_checker.h"

namespace lazysi {
namespace history {
namespace {

// Generates a random history over a small key space. About half the
// generated histories contain stale reads (weak SI only), the rest are
// fresh-read histories; both kinds exercise the equivalences.
std::vector<TxnRecord> RandomHistory(std::uint64_t seed, bool allow_stale,
                                     bool allow_torn = false) {
  Rng rng(seed);
  std::vector<TxnRecord> records;
  // Versions installed so far per key: commit timestamps in order.
  std::map<std::string, std::vector<Timestamp>> versions;
  std::uint64_t event_seq = 1;
  Timestamp clock = 1;
  const int txns = 30;
  for (int i = 0; i < txns; ++i) {
    TxnRecord r;
    r.order_id = static_cast<std::uint64_t>(i);
    r.label = static_cast<SessionLabel>(rng.Next(4) + 1);
    r.first_op_seq = event_seq++;
    const bool is_update = rng.Bernoulli(0.5);
    // Choose a snapshot: latest, or (if allowed) any earlier state.
    const Timestamp latest = clock;
    Timestamp snapshot = latest;
    if (allow_stale && rng.Bernoulli(0.5)) {
      snapshot = rng.Next(latest) + 1;
    }
    // Reads against the chosen snapshot.
    const int reads = static_cast<int>(rng.UniformInt(0, 3));
    for (int k = 0; k < reads; ++k) {
      const std::string key = "k" + std::to_string(rng.Next(5));
      const auto& chain = versions[key];
      Timestamp seen = kInvalidTimestamp;
      for (Timestamp ts : chain) {
        if (ts <= snapshot) seen = ts;
      }
      if (allow_torn && seen != kInvalidTimestamp && chain.size() > 1 &&
          rng.Bernoulli(0.2)) {
        // Torn read: observe an older version than the snapshot's — makes
        // the history violate even weak SI (when another read pins the
        // newer state).
        seen = chain.front();
      }
      r.reads.push_back(RecordedRead{key, seen, seen != kInvalidTimestamp});
    }
    if (is_update) {
      r.read_only = false;
      const std::string key = "k" + std::to_string(rng.Next(5));
      // Give it a fresh snapshot for its own writes so FCW holds: its write
      // must not overwrite versions it could not see. To keep the history
      // SI-valid we only let updates write keys whose latest version is
      // within the snapshot.
      const auto& chain = versions[key];
      if (!chain.empty() && chain.back() > snapshot) {
        r.read_only = true;  // demote to read-only instead
      } else {
        r.writes.push_back(storage::Write{key, "v" + std::to_string(i),
                                          false});
        r.commit_primary_ts = ++clock;
        versions[key].push_back(r.commit_primary_ts);
      }
    } else {
      r.read_only = true;
    }
    r.commit_seq = event_seq++;
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<TxnRecord> Relabel(std::vector<TxnRecord> records,
                               bool all_same) {
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].label = all_same ? 1 : (1000 + i);
  }
  return records;
}

class EquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceTest, SingleLabelMakesSessionSIEqualStrongSI) {
  for (bool allow_stale : {false, true}) {
    auto history = RandomHistory(GetParam(), allow_stale);
    auto single = Relabel(history, /*all_same=*/true);
    SIChecker checker(single);
    EXPECT_EQ(checker.CheckStrongSessionSI().ok, checker.CheckStrongSI().ok)
        << "seed " << GetParam() << " stale=" << allow_stale;
    EXPECT_EQ(checker.CountSessionInversions(),
              checker.CountGlobalInversions());
  }
}

TEST_P(EquivalenceTest, DistinctLabelsMakeSessionSIEqualWeakSI) {
  for (bool allow_stale : {false, true}) {
    for (bool allow_torn : {false, true}) {
      auto history = RandomHistory(GetParam(), allow_stale, allow_torn);
      auto distinct = Relabel(history, /*all_same=*/false);
      SIChecker checker(distinct);
      // With one transaction per session no ordering constraint binds, so
      // strong session SI reduces to weak SI (both verdicts, whether the
      // underlying history is weak SI or not).
      EXPECT_EQ(checker.CheckStrongSessionSI().ok, checker.CheckWeakSI().ok)
          << "seed " << GetParam() << " stale=" << allow_stale
          << " torn=" << allow_torn;
      EXPECT_EQ(checker.CountSessionInversions(), 0u);
    }
  }
}

TEST_P(EquivalenceTest, StrongImpliesSessionImpliesPCSIImpliesWeak) {
  // The guarantee lattice: every strong-SI history is strong session SI;
  // every strong session SI history is PCSI; every PCSI history is weak SI.
  auto history = RandomHistory(GetParam(), /*allow_stale=*/true);
  SIChecker checker(history);
  if (checker.CheckStrongSI().ok) {
    EXPECT_TRUE(checker.CheckStrongSessionSI().ok);
  }
  if (checker.CheckStrongSessionSI().ok) {
    EXPECT_TRUE(checker.CheckPrefixConsistentSI().ok);
  }
  if (checker.CheckPrefixConsistentSI().ok) {
    EXPECT_TRUE(checker.CheckWeakSI().ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace history
}  // namespace lazysi
