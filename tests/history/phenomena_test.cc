// Executable versions of the SQL phenomena from the paper's appendix
// (P0-P5): the engine's local strong SI must preclude P0-P4 and admit P5
// (write skew), exactly as Section 2.1 states.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace lazysi {
namespace {

class PhenomenaTest : public ::testing::Test {
 protected:
  engine::Database db_;
};

TEST_F(PhenomenaTest, P0DirtyWritePrevented) {
  // T1 modifies x; T2 modifies x before T1 commits. Under FCW the second
  // committer aborts, and uncommitted writes are never visible, so no state
  // ever interleaves the two.
  ASSERT_TRUE(db_.Put("x", "0").ok());
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  ASSERT_TRUE(t1->Put("x", "t1").ok());
  ASSERT_TRUE(t2->Put("x", "t2").ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().IsWriteConflict());
  EXPECT_EQ(db_.Get("x").value(), "t1");
}

TEST_F(PhenomenaTest, P1DirtyReadPrevented) {
  // T2 must never observe T1's uncommitted modification.
  ASSERT_TRUE(db_.Put("x", "committed").ok());
  auto t1 = db_.Begin();
  ASSERT_TRUE(t1->Put("x", "uncommitted").ok());
  auto t2 = db_.Begin(/*read_only=*/true);
  EXPECT_EQ(t2->Get("x").value(), "committed");
  t1->Abort();
  EXPECT_EQ(db_.Get("x").value(), "committed");
}

TEST_F(PhenomenaTest, P2FuzzyReadPrevented) {
  // T1 reads x; T2 modifies x and commits; T1 rereads and must see the same
  // value (snapshot reads are repeatable).
  ASSERT_TRUE(db_.Put("x", "v1").ok());
  auto t1 = db_.Begin(/*read_only=*/true);
  EXPECT_EQ(t1->Get("x").value(), "v1");
  ASSERT_TRUE(db_.Put("x", "v2").ok());
  EXPECT_EQ(t1->Get("x").value(), "v1");
}

TEST_F(PhenomenaTest, P3PhantomPrevented) {
  // T1 scans a predicate range; T2 inserts a matching row and commits; T1's
  // re-scan returns the same rows.
  ASSERT_TRUE(db_.Put("acct/1", "100").ok());
  auto t1 = db_.Begin(/*read_only=*/true);
  auto before = t1->Scan("acct/", "acct0");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 1u);
  ASSERT_TRUE(db_.Put("acct/2", "200").ok());
  auto after = t1->Scan("acct/", "acct0");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 1u);
  // A fresh transaction does see the phantom row.
  auto t2 = db_.Begin(/*read_only=*/true);
  EXPECT_EQ(t2->Scan("acct/", "acct0")->size(), 2u);
}

TEST_F(PhenomenaTest, P4LostUpdatePrevented) {
  // T1 reads x; T2 updates x and commits; T1 updates x based on its earlier
  // read and tries to commit — FCW aborts T1, so T2's update survives.
  ASSERT_TRUE(db_.Put("x", "10").ok());
  auto t1 = db_.Begin();
  EXPECT_EQ(t1->Get("x").value(), "10");
  {
    auto t2 = db_.Begin();
    ASSERT_TRUE(t2->Put("x", "20").ok());
    ASSERT_TRUE(t2->Commit().ok());
  }
  ASSERT_TRUE(t1->Put("x", "11").ok());  // 10 + 1 from the stale read
  EXPECT_TRUE(t1->Commit().IsWriteConflict());
  EXPECT_EQ(db_.Get("x").value(), "20");  // T2's update not lost
}

TEST_F(PhenomenaTest, P5WriteSkewAdmitted) {
  // The constraint x + y >= 0 can be violated under SI: both transactions
  // check it against the same snapshot, write disjoint keys and commit.
  // This is what makes SI weaker than serializability.
  ASSERT_TRUE(db_.Put("x", "50").ok());
  ASSERT_TRUE(db_.Put("y", "50").ok());
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  // Each verifies x + y - 100 >= 0 on its snapshot, then withdraws 100 from
  // a different account.
  const int sum1 = std::stoi(t1->Get("x").value()) +
                   std::stoi(t1->Get("y").value());
  const int sum2 = std::stoi(t2->Get("x").value()) +
                   std::stoi(t2->Get("y").value());
  ASSERT_GE(sum1 - 100, 0);
  ASSERT_GE(sum2 - 100, 0);
  ASSERT_TRUE(t1->Put("x", "-50").ok());
  ASSERT_TRUE(t2->Put("y", "-50").ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());  // SI admits the anomaly
  const int final_sum = std::stoi(db_.Get("x").value()) +
                        std::stoi(db_.Get("y").value());
  EXPECT_LT(final_sum, 0);  // constraint violated: write skew happened
}

}  // namespace
}  // namespace lazysi
