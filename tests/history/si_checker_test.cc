#include "history/si_checker.h"

#include <gtest/gtest.h>

namespace lazysi {
namespace history {
namespace {

TxnRecord Update(std::uint64_t order_id, SessionLabel label,
                 std::uint64_t first_op, std::uint64_t commit_seq,
                 Timestamp commit_ts,
                 std::vector<storage::Write> writes,
                 std::vector<RecordedRead> reads = {}) {
  TxnRecord r;
  r.order_id = order_id;
  r.label = label;
  r.read_only = false;
  r.first_op_seq = first_op;
  r.commit_seq = commit_seq;
  r.commit_primary_ts = commit_ts;
  r.writes = std::move(writes);
  r.reads = std::move(reads);
  return r;
}

TxnRecord Reader(std::uint64_t order_id, SessionLabel label,
                 std::uint64_t first_op, std::uint64_t commit_seq,
                 std::vector<RecordedRead> reads) {
  TxnRecord r;
  r.order_id = order_id;
  r.label = label;
  r.read_only = true;
  r.first_op_seq = first_op;
  r.commit_seq = commit_seq;
  r.reads = std::move(reads);
  return r;
}

storage::Write W(const std::string& key, const std::string& value) {
  return storage::Write{key, value, false};
}

RecordedRead R(const std::string& key, Timestamp ts) {
  return RecordedRead{key, ts, ts != kInvalidTimestamp};
}

RecordedRead NotFoundRead(const std::string& key) {
  return RecordedRead{key, kInvalidTimestamp, false};
}

TEST(SICheckerTest, EmptyHistoryIsEverything) {
  SIChecker checker({});
  EXPECT_TRUE(checker.CheckWeakSI().ok);
  EXPECT_TRUE(checker.CheckStrongSI().ok);
  EXPECT_TRUE(checker.CheckStrongSessionSI().ok);
  EXPECT_EQ(checker.CountGlobalInversions(), 0u);
}

TEST(SICheckerTest, ConsistentSnapshotPasses) {
  // U1 installs {x=1,y=1}@10; U2 installs {x=2,y=2}@20. A reader that saw
  // both keys from the same snapshot is weak SI.
  SIChecker checker({
      Update(0, 1, 1, 2, 10, {W("x", "1"), W("y", "1")}),
      Update(1, 1, 3, 4, 20, {W("x", "2"), W("y", "2")}),
      Reader(2, 2, 5, 6, {R("x", 10), R("y", 10)}),
      Reader(3, 2, 7, 8, {R("x", 20), R("y", 20)}),
  });
  auto report = checker.CheckWeakSI();
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST(SICheckerTest, TornSnapshotFailsWeakSI) {
  // Reading x from state 10 and y from state 20 is not any single snapshot.
  SIChecker checker({
      Update(0, 1, 1, 2, 10, {W("x", "1"), W("y", "1")}),
      Update(1, 1, 3, 4, 20, {W("x", "2"), W("y", "2")}),
      Reader(2, 2, 5, 6, {R("x", 10), R("y", 20)}),
  });
  auto report = checker.CheckWeakSI();
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("no snapshot"), std::string::npos);
}

TEST(SICheckerTest, PhantomVersionFailsWeakSI) {
  SIChecker checker({
      Update(0, 1, 1, 2, 10, {W("x", "1")}),
      Reader(1, 2, 3, 4, {R("x", 999)}),  // no such version
  });
  EXPECT_FALSE(checker.CheckWeakSI().ok);
}

TEST(SICheckerTest, StaleSnapshotPassesWeakButFailsStrong) {
  // The reader's first operation happens after U2's commit (commit_seq 4 <
  // first_op 5) yet it reads the pre-U2 state: allowed by weak SI, a
  // transaction inversion under strong SI (Definition 2.1).
  std::vector<TxnRecord> records{
      Update(0, 1, 1, 2, 10, {W("x", "1")}),
      Update(1, 1, 3, 4, 20, {W("x", "2")}),
      Reader(2, 2, 5, 6, {R("x", 10)}),
  };
  SIChecker checker(records);
  EXPECT_TRUE(checker.CheckWeakSI().ok);
  auto strong = checker.CheckStrongSI();
  EXPECT_FALSE(strong.ok);
  // Different session labels: strong *session* SI tolerates it.
  EXPECT_TRUE(checker.CheckStrongSessionSI().ok);
  EXPECT_EQ(checker.CountGlobalInversions(), 1u);
  EXPECT_EQ(checker.CountSessionInversions(), 0u);
}

TEST(SICheckerTest, SameSessionInversionFailsSessionSI) {
  // Same as above but the writer and reader share a session: the classic
  // Tbuy/Tcheck example from the introduction.
  SIChecker checker({
      Update(0, 7, 1, 2, 10, {W("order", "none")}),
      Update(1, 7, 3, 4, 20, {W("order", "books")}),  // Tbuy
      Reader(2, 7, 5, 6, {R("order", 10)}),           // Tcheck sees stale
  });
  EXPECT_TRUE(checker.CheckWeakSI().ok);
  EXPECT_FALSE(checker.CheckStrongSessionSI().ok);
  EXPECT_EQ(checker.CountSessionInversions(), 1u);
}

TEST(SICheckerTest, ConcurrentReaderNotInverted) {
  // The reader's first operation precedes U2's commit; seeing the old state
  // is fine even under strong SI.
  SIChecker checker({
      Update(0, 1, 1, 2, 10, {W("x", "1")}),
      Update(1, 1, 3, 6, 20, {W("x", "2")}),
      Reader(2, 1, 4, 5, {R("x", 10)}),  // first_op 4 < commit_seq 6
  });
  EXPECT_TRUE(checker.CheckStrongSI().ok);
  EXPECT_TRUE(checker.CheckStrongSessionSI().ok);
  EXPECT_EQ(checker.CountGlobalInversions(), 0u);
}

TEST(SICheckerTest, NotFoundReadConstrainsSnapshot) {
  // Key written at ts 10; a reader that did NOT find it but started after
  // the writer committed is inverted under strong SI.
  SIChecker checker({
      Update(0, 1, 1, 2, 10, {W("x", "1")}),
      Reader(1, 1, 3, 4, {NotFoundRead("x")}),
  });
  EXPECT_TRUE(checker.CheckWeakSI().ok);  // snapshot before ts 10 works
  EXPECT_FALSE(checker.CheckStrongSessionSI().ok);
  EXPECT_EQ(checker.CountSessionInversions(), 1u);
}

TEST(SICheckerTest, DeletedKeyNotFoundIsConsistent) {
  SIChecker checker({
      Update(0, 1, 1, 2, 10, {W("x", "1")}),
      Update(1, 1, 3, 4, 20, {storage::Write{"x", "", true}}),  // delete
      Reader(2, 1, 5, 6, {NotFoundRead("x")}),
  });
  auto weak = checker.CheckWeakSI();
  EXPECT_TRUE(weak.ok) << weak.violation;
  auto session = checker.CheckStrongSessionSI();
  EXPECT_TRUE(session.ok) << session.violation;  // snapshot at ts 20 works
}

TEST(SICheckerTest, LostUpdateFailsWeakSI) {
  // U2 wrote x at ts 20 while its reads show it never saw U1's ts-10
  // version: first-committer-wins would have aborted it, so this history is
  // not SI (a lost update).
  SIChecker checker({
      Update(0, 1, 1, 2, 10, {W("x", "1")}),
      Update(1, 2, 1, 4, 20, {W("x", "2")}, {NotFoundRead("x")}),
  });
  auto report = checker.CheckWeakSI();
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("first-committer-wins"), std::string::npos);
}

TEST(SICheckerTest, WriteSkewPassesWeakSI) {
  // T1 reads x,y writes y; T2 reads x,y writes x; both from the initial
  // state: SI admits this (P5).
  SIChecker checker({
      Update(0, 1, 1, 2, 10, {W("x", "0"), W("y", "0")}),
      Update(1, 2, 3, 5, 20, {W("y", "t1")}, {R("x", 10), R("y", 10)}),
      Update(2, 3, 4, 6, 30, {W("x", "t2")}, {R("x", 10), R("y", 10)}),
  });
  auto report = checker.CheckWeakSI();
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST(SICheckerTest, ReadReadRegressionFailsSessionSIButPassesPCSI) {
  // Section 7's distinction: two read-only transactions in one session, the
  // second seeing an *older* snapshot than the first. Definition 2.2
  // (strong session SI) forbids it; prefix-consistent SI allows it because
  // only the session's own update commits constrain later transactions.
  SIChecker checker({
      Update(0, 1, 1, 2, 10, {W("x", "1")}),
      Update(1, 1, 3, 4, 20, {W("x", "2")}),
      Reader(2, 9, 5, 6, {R("x", 20)}),  // saw the fresh state...
      Reader(3, 9, 7, 8, {R("x", 10)}),  // ...then regressed to the old one
  });
  EXPECT_TRUE(checker.CheckWeakSI().ok);
  auto session = checker.CheckStrongSessionSI();
  EXPECT_FALSE(session.ok);
  auto pcsi = checker.CheckPrefixConsistentSI();
  EXPECT_TRUE(pcsi.ok) << pcsi.violation;
}

TEST(SICheckerTest, PCSIStillRequiresOwnUpdatesVisible) {
  // PCSI's defining requirement: a session's reads include the session's
  // earlier updates.
  SIChecker checker({
      Update(0, 9, 1, 2, 10, {W("x", "1")}),
      Reader(1, 9, 3, 4, {NotFoundRead("x")}),  // missed its own update
  });
  EXPECT_FALSE(checker.CheckPrefixConsistentSI().ok);
}

TEST(SICheckerTest, CrossSessionReadRegressionPassesSessionSI) {
  // The same regression across *different* sessions is fine under strong
  // session SI (that is the whole point of sessions, Section 2.3) but not
  // under strong SI.
  SIChecker checker({
      Update(0, 1, 1, 2, 10, {W("x", "1")}),
      Update(1, 1, 3, 4, 20, {W("x", "2")}),
      Reader(2, 8, 5, 6, {R("x", 20)}),
      Reader(3, 9, 7, 8, {R("x", 10)}),  // other session: allowed
  });
  auto session = checker.CheckStrongSessionSI();
  EXPECT_TRUE(session.ok) << session.violation;
  EXPECT_FALSE(checker.CheckStrongSI().ok);
}

TEST(SICheckerTest, UpdateReadingOwnSnapshotPassesStrongSession) {
  // An update transaction that saw the freshest state passes everything.
  SIChecker checker({
      Update(0, 1, 1, 2, 10, {W("x", "1")}),
      Update(1, 1, 3, 4, 20, {W("x", "2")}, {R("x", 10)}),
      Reader(2, 1, 5, 6, {R("x", 20)}),
  });
  EXPECT_TRUE(checker.CheckStrongSI().ok);
  EXPECT_TRUE(checker.CheckStrongSessionSI().ok);
  EXPECT_EQ(checker.CountGlobalInversions(), 0u);
}

}  // namespace
}  // namespace history
}  // namespace lazysi
