#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "system/replicated_system.h"

namespace lazysi {
namespace system {
namespace {

TEST(SystemStatsTest, TracksCommitsAndLag) {
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = session::Guarantee::kWeakSI;
  ReplicatedSystem sys(config);
  sys.Start();

  auto before = sys.Stats();
  EXPECT_EQ(before.primary_committed, 0u);
  ASSERT_EQ(before.secondaries.size(), 2u);
  EXPECT_EQ(before.secondaries[0].lag, 0u);

  auto client = sys.Connect();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("k" + std::to_string(i), "v");
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());
  auto after = sys.Stats();
  EXPECT_EQ(after.primary_committed, 10u);
  EXPECT_EQ(after.primary_latest_commit_ts, sys.primary_db()->LatestCommitTs());
  for (const auto& sec : after.secondaries) {
    EXPECT_FALSE(sec.failed);
    EXPECT_EQ(sec.lag, 0u);
    EXPECT_EQ(sec.refreshed_count, 10u);
    EXPECT_EQ(sec.applied_seq, after.primary_latest_commit_ts);
  }
  sys.Stop();
}

TEST(SystemStatsTest, FailedSecondaryMarked) {
  SystemConfig config;
  config.num_secondaries = 2;
  ReplicatedSystem sys(config);
  sys.Start();
  ASSERT_TRUE(sys.FailSecondary(1).ok());
  auto stats = sys.Stats();
  EXPECT_FALSE(stats.secondaries[0].failed);
  EXPECT_TRUE(stats.secondaries[1].failed);
  EXPECT_NE(stats.ToString().find("FAILED"), std::string::npos);
  sys.Stop();
}

TEST(SystemStatsTest, WireVolumeCountersSurfaceOverChaosTransport) {
  // The byte-link counts frames/bytes in both directions of the delivery
  // pipeline; the stats layer must surface them per secondary and render
  // them in ToString so wire volume is observable without a debugger.
  SystemConfig config;
  config.num_secondaries = 2;
  config.transport_faults.drop_probability = 0.05;
  ReplicatedSystem sys(config);
  sys.Start();

  auto client = sys.Connect();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("k" + std::to_string(i), "v");
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());

  const auto stats = sys.Stats();
  for (const auto& sec : stats.secondaries) {
    EXPECT_GT(sec.link_frames_sent, 0u) << "secondary " << sec.index;
    EXPECT_GT(sec.link_frames_delivered, 0u) << "secondary " << sec.index;
    EXPECT_GT(sec.link_bytes_sent, 0u) << "secondary " << sec.index;
    EXPECT_GT(sec.link_bytes_delivered, 0u) << "secondary " << sec.index;
    // Dropped frames' bytes never arrive: delivered <= sent unless
    // duplication outweighs loss (duplication is off here).
    EXPECT_LE(sec.link_bytes_delivered, sec.link_bytes_sent);
  }
  EXPECT_NE(stats.ToString().find("wire[frames="), std::string::npos);
  sys.Stop();
}

TEST(SystemGcTest, ReclaimsAcrossAllSites) {
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = session::Guarantee::kWeakSI;
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.Connect();
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("hot", std::to_string(round));
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());
  // Each of the 3 sites holds 5 versions of "hot"; GC keeps 1 per site.
  EXPECT_EQ(sys.GarbageCollectAll(), 3u * 4u);
  EXPECT_EQ(sys.primary_db()->store()->VersionCount(), 1u);
  // Replication continues to work after pruning.
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("hot", "after-gc");
                  })
                  .ok());
  ASSERT_TRUE(sys.WaitForReplication());
  EXPECT_EQ(sys.secondary_db(0)->Get("hot").value(), "after-gc");
  sys.Stop();
}

TEST(SystemStatsTest, RouterCountsFreshPlacements) {
  SystemConfig config;
  config.num_secondaries = 3;
  config.guarantee = session::Guarantee::kStrongSessionSI;
  config.freshness_routing = true;
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.Connect();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("k" + std::to_string(i), "v");
                    })
                    .ok());
    // Every secondary catches up before the read, so a fresh replica always
    // exists and the router must never fall back to block-on-freshest.
    ASSERT_TRUE(sys.WaitForReplication());
    ASSERT_TRUE(client
                    ->ExecuteRead([&](SystemTransaction& t) {
                      return t.Get("k" + std::to_string(i)).status();
                    })
                    .ok());
  }
  auto stats = sys.Stats();
  std::uint64_t fresh = 0, blocked = 0;
  for (const auto& sec : stats.secondaries) {
    fresh += sec.ro_routed_fresh;
    blocked += sec.ro_blocked_on_freshness;
    EXPECT_EQ(sec.active_reads, 0u);  // all reads finished
  }
  EXPECT_EQ(fresh, 5u);
  EXPECT_EQ(blocked, 0u);
  EXPECT_NE(stats.ToString().find("router[fresh="), std::string::npos);
  sys.Stop();
}

TEST(SystemStatsTest, RouterFallsBackToFreshestWhenNoneFresh) {
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = session::Guarantee::kStrongSessionSI;
  config.freshness_routing = true;
  // Slow, batched propagation: right after an update commits, no secondary
  // covers the session's seq(c) yet, so the read must take the
  // block-on-freshest fallback (and still see its own write, per the
  // session guarantee).
  config.propagation_batch_interval = std::chrono::milliseconds(60);
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.Connect();
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("announcement", std::to_string(round));
                    })
                    .ok());
    const std::string want = std::to_string(round);
    ASSERT_TRUE(client
                    ->ExecuteRead([&](SystemTransaction& t) {
                      auto v = t.Get("announcement");
                      if (!v.ok()) return v.status();
                      return v.value() == want
                                 ? Status::OK()
                                 : Status::Internal("stale read");
                    })
                    .ok());
  }
  auto stats = sys.Stats();
  std::uint64_t blocked = 0;
  for (const auto& sec : stats.secondaries) {
    blocked += sec.ro_blocked_on_freshness;
  }
  EXPECT_GT(blocked, 0u);
  sys.Stop();
}

TEST(SystemGcTest, BackgroundCadenceReclaims) {
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = session::Guarantee::kWeakSI;
  config.gc_interval = std::chrono::milliseconds(5);
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.Connect();
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("hot", std::to_string(round));
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());
  // The maintenance thread prunes without any explicit GarbageCollectAll
  // call; poll until the shadowed versions are gone at both sites.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         (sys.primary_db()->store()->VersionCount() > 1 ||
          sys.secondary_db(0)->store()->VersionCount() > 1)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(sys.gc_passes(), 0u);
  EXPECT_EQ(sys.primary_db()->store()->VersionCount(), 1u);
  EXPECT_EQ(sys.secondary_db(0)->store()->VersionCount(), 1u);
  // Replication and reads still work after background pruning.
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("hot", "after-gc");
                  })
                  .ok());
  ASSERT_TRUE(sys.WaitForReplication());
  EXPECT_EQ(sys.secondary_db(0)->Get("hot").value(), "after-gc");
  sys.Stop();
}

TEST(SystemStatsTest, DurabilityCountersTrackTheLog) {
  const std::string dir = testing::TempDir() + "lazysi_durable_stats";
  std::filesystem::remove_all(dir);
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = session::Guarantee::kWeakSI;
  config.durable_log = true;
  config.data_dir = dir;
  config.fsync_mode = "group";
  config.checkpoint_interval = std::chrono::milliseconds(20);

  std::uint64_t hash = 0;
  {
    ReplicatedSystem sys(config);
    ASSERT_NE(sys.durable_log(), nullptr);
    ASSERT_NE(sys.checkpointer(), nullptr);
    sys.Start();
    auto client = sys.Connect();
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(client
                      ->ExecuteUpdate([&](SystemTransaction& t) {
                        return t.Put("k" + std::to_string(i), "v");
                      })
                      .ok());
    }
    ASSERT_TRUE(sys.WaitForReplication());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline &&
           sys.checkpointer()->checkpoint_count() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    auto stats = sys.Stats();
    EXPECT_TRUE(stats.durable);
    EXPECT_GT(stats.fsyncs, 0u);
    EXPECT_GT(stats.records_flushed, 0u);
    EXPECT_GT(stats.mean_group_size, 0.0);
    EXPECT_GE(stats.max_group_size, 1u);
    EXPECT_GT(stats.checkpoint_count, 0u);
    EXPECT_NE(stats.ToString().find("durability: fsyncs="), std::string::npos);
    hash = sys.primary_db()->ContentHash();
    EXPECT_NE(hash, 0u);
    sys.Stop();
  }

  // Restart from the same data directory: the primary restores its state
  // and every secondary bootstraps from a checkpoint of the restored image.
  {
    ReplicatedSystem sys(config);
    ASSERT_NE(sys.durable_log(), nullptr);
    EXPECT_NE(sys.restore_report().restored_visible, kInvalidTimestamp);
    sys.Start();
    EXPECT_EQ(sys.primary_db()->ContentHash(), hash);
    ASSERT_TRUE(sys.WaitForReplication());
    EXPECT_EQ(sys.secondary_db(0)->ContentHash(), hash);
    // The restored system keeps committing and replicating.
    auto client = sys.Connect();
    ASSERT_TRUE(client
                    ->ExecuteUpdate([](SystemTransaction& t) {
                      return t.Put("post-restart", "yes");
                    })
                    .ok());
    ASSERT_TRUE(sys.WaitForReplication());
    EXPECT_EQ(sys.secondary_db(0)->Get("post-restart").value(), "yes");
    sys.Stop();
  }
  std::filesystem::remove_all(dir);
}

TEST(SystemStatsTest, ToStringMentionsAllSites) {
  SystemConfig config;
  config.num_secondaries = 3;
  ReplicatedSystem sys(config);
  sys.Start();
  const std::string s = sys.Stats().ToString();
  EXPECT_NE(s.find("primary:"), std::string::npos);
  EXPECT_NE(s.find("secondary 0"), std::string::npos);
  EXPECT_NE(s.find("secondary 2"), std::string::npos);
  sys.Stop();
}

}  // namespace
}  // namespace system
}  // namespace lazysi
