#include <gtest/gtest.h>

#include "system/replicated_system.h"

namespace lazysi {
namespace system {
namespace {

TEST(SystemStatsTest, TracksCommitsAndLag) {
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = session::Guarantee::kWeakSI;
  ReplicatedSystem sys(config);
  sys.Start();

  auto before = sys.Stats();
  EXPECT_EQ(before.primary_committed, 0u);
  ASSERT_EQ(before.secondaries.size(), 2u);
  EXPECT_EQ(before.secondaries[0].lag, 0u);

  auto client = sys.Connect();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("k" + std::to_string(i), "v");
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());
  auto after = sys.Stats();
  EXPECT_EQ(after.primary_committed, 10u);
  EXPECT_EQ(after.primary_latest_commit_ts, sys.primary_db()->LatestCommitTs());
  for (const auto& sec : after.secondaries) {
    EXPECT_FALSE(sec.failed);
    EXPECT_EQ(sec.lag, 0u);
    EXPECT_EQ(sec.refreshed_count, 10u);
    EXPECT_EQ(sec.applied_seq, after.primary_latest_commit_ts);
  }
  sys.Stop();
}

TEST(SystemStatsTest, FailedSecondaryMarked) {
  SystemConfig config;
  config.num_secondaries = 2;
  ReplicatedSystem sys(config);
  sys.Start();
  ASSERT_TRUE(sys.FailSecondary(1).ok());
  auto stats = sys.Stats();
  EXPECT_FALSE(stats.secondaries[0].failed);
  EXPECT_TRUE(stats.secondaries[1].failed);
  EXPECT_NE(stats.ToString().find("FAILED"), std::string::npos);
  sys.Stop();
}

TEST(SystemGcTest, ReclaimsAcrossAllSites) {
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = session::Guarantee::kWeakSI;
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.Connect();
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("hot", std::to_string(round));
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());
  // Each of the 3 sites holds 5 versions of "hot"; GC keeps 1 per site.
  EXPECT_EQ(sys.GarbageCollectAll(), 3u * 4u);
  EXPECT_EQ(sys.primary_db()->store()->VersionCount(), 1u);
  // Replication continues to work after pruning.
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("hot", "after-gc");
                  })
                  .ok());
  ASSERT_TRUE(sys.WaitForReplication());
  EXPECT_EQ(sys.secondary_db(0)->Get("hot").value(), "after-gc");
  sys.Stop();
}

TEST(SystemStatsTest, ToStringMentionsAllSites) {
  SystemConfig config;
  config.num_secondaries = 3;
  ReplicatedSystem sys(config);
  sys.Start();
  const std::string s = sys.Stats().ToString();
  EXPECT_NE(s.find("primary:"), std::string::npos);
  EXPECT_NE(s.find("secondary 0"), std::string::npos);
  EXPECT_NE(s.find("secondary 2"), std::string::npos);
  sys.Stop();
}

}  // namespace
}  // namespace system
}  // namespace lazysi
