#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "replication/framed_socket.h"
#include "system/site_server.h"
#include "system/wire_api.h"

namespace lazysi {
namespace system {
namespace {

using namespace std::chrono_literals;

TEST(SiteServerBackpressureTest, PipelinedFloodPausesReadsAndStillAnswersAll) {
  // A client pipelining requests faster than the fixed worker pool drains
  // them must be throttled by parking its reads once `pending` hits
  // max_pending_requests (TCP then backpressures the socket), not buffered
  // without bound — and every request must still be answered, in order,
  // once the workers catch up.
  std::uint16_t silent_port = 0;
  const int silent = replication::ListenOn("127.0.0.1", 0, &silent_port);
  ASSERT_GE(silent, 0);  // bound but never accepted: calm, futile dials

  SiteServer::Options o;
  o.role = SiteServer::Role::kSecondary;
  o.site_id = 1;
  o.primary_repl_port = silent_port;
  o.worker_threads = 1;
  o.max_pending_requests = 8;
  o.read_block_timeout = 1000ms;
  SiteServer server(o);
  ASSERT_TRUE(server.Start().ok());

  const int cfd = replication::DialTcp("127.0.0.1", server.client_port());
  ASSERT_GE(cfd, 0);
  replication::FramedSocket client(cfd);

  // Request 1 parks the only worker on the freshness wait (nothing ever
  // replicates here, so it blocks for the whole read_block_timeout)...
  std::string wait_req(1, wire_api::kOpWaitSeq);
  replication::PutVarint(&wait_req, 1);
  ASSERT_TRUE(client.Send(wait_req));
  // ...then a pipelined flood piles onto the connection's pending queue.
  constexpr int kFlood = 512;
  const std::string big_value(8 * 1024, 'v');
  std::thread sender([&] {
    for (int i = 0; i < kFlood; ++i) {
      std::string put(1, wire_api::kOpPut);
      wire_api::PutString(&put, "k" + std::to_string(i));
      wire_api::PutString(&put, big_value);
      if (!client.Send(put)) break;
    }
  });

  // The cap must trip while the worker is still parked.
  const auto pause_deadline = std::chrono::steady_clock::now() + 5s;
  while (server.read_pauses() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), pause_deadline)
        << "pending queue grew without tripping the read pause";
    std::this_thread::sleep_for(1ms);
  }

  // Once the wait times out the worker drains everything, reads resume as
  // the queue empties, and every request gets its reply (a TimedOut, then
  // per-put errors — the count and liveness are what matter here).
  client.set_recv_timeout(30000ms);
  for (int replies = 0; replies < 1 + kFlood; ++replies) {
    auto reply = client.Recv();
    ASSERT_TRUE(reply.has_value()) << "connection died after " << replies
                                   << " replies";
  }
  sender.join();
  EXPECT_GE(server.read_pauses(), 1u);
  client.Close();
  server.Stop();
  ::close(silent);
}

}  // namespace
}  // namespace system
}  // namespace lazysi
