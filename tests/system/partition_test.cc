// Partial replication end-to-end: the keyspace partitioned across the
// secondary fleet (PartitionMap), per-sink write-set filtering on the
// propagation stream, SCAR-style cross-partition reads validated at the
// transaction's primary snapshot, per-partition applied floors feeding GC,
// and failure/recovery with partition-filtered checkpoints.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/random.h"
#include "history/si_checker.h"
#include "system/replicated_system.h"

namespace lazysi {
namespace system {
namespace {

SystemConfig PartitionedConfig(std::size_t secondaries,
                               std::size_t partitions,
                               std::size_t replication) {
  SystemConfig config;
  config.num_secondaries = secondaries;
  config.num_partitions = partitions;
  config.partition_replication = replication;
  return config;
}

std::map<std::string, std::string> Restrict(
    const std::map<std::string, std::string>& state,
    const replication::PartitionMap& map, std::size_t secondary) {
  std::map<std::string, std::string> out;
  for (const auto& entry : state) {
    if (map.CoversKey(secondary, entry.first)) out.insert(entry);
  }
  return out;
}

TEST(PartitionSystemTest, SecondariesHoldExactlyTheirPartitions) {
  SystemConfig config = PartitionedConfig(4, 4, 2);
  ReplicatedSystem sys(config);
  sys.Start();
  auto conn = sys.ConnectTo(0);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(conn->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("k" + std::to_string(i),
                                   std::to_string(i));
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());
  const auto stats = sys.Stats();
  sys.Stop();

  const auto& map = sys.partition_map();
  EXPECT_TRUE(map.partial());
  const auto primary_state = sys.primary_db()->store()->Materialize(
      sys.primary_db()->LatestCommitTs());
  ASSERT_EQ(primary_state.size(), 60u);
  std::size_t fleet_updates = 0, fleet_filtered = 0;
  for (std::size_t s = 0; s < sys.num_secondaries(); ++s) {
    // Each secondary materializes exactly the covered restriction of the
    // primary state: covered keys present and equal, uncovered keys absent.
    EXPECT_EQ(sys.secondary_db(s)->store()->Materialize(
                  sys.secondary_db(s)->LatestCommitTs()),
              Restrict(primary_state, map, s))
        << "secondary " << s;
    EXPECT_EQ(stats.secondaries[s].covered_partitions, 2u);
    EXPECT_GT(stats.secondaries[s].records_filtered, 0u);
    fleet_updates += stats.secondaries[s].updates_received;
    fleet_filtered += stats.secondaries[s].records_filtered;
  }
  // 2-way replication of every update across the fleet: received updates
  // total commits x 2, and received + filtered = commits x fleet size.
  EXPECT_EQ(fleet_updates, 60u * 2);
  EXPECT_EQ(fleet_updates + fleet_filtered, 60u * sys.num_secondaries());
}

TEST(PartitionSystemTest, CrossPartitionGetAndScan) {
  SystemConfig config = PartitionedConfig(4, 4, 2);
  ReplicatedSystem sys(config);
  sys.Start();
  auto writer = sys.ConnectTo(0);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 40; ++i) {
    const std::string key = "k" + std::to_string(i);
    expected[key] = std::to_string(i * 7);
    ASSERT_TRUE(writer
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put(key, expected[key]);
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());

  const auto& map = sys.partition_map();
  for (std::size_t s = 0; s < sys.num_secondaries(); ++s) {
    auto conn = sys.ConnectTo(s);
    // Point reads of every key — roughly half are served remotely.
    ASSERT_TRUE(conn->ExecuteRead([&](SystemTransaction& t) -> Status {
                      for (const auto& entry : expected) {
                        auto v = t.Get(entry.first);
                        EXPECT_TRUE(v.ok()) << entry.first << ": "
                                            << v.status().ToString();
                        if (v.ok()) EXPECT_EQ(*v, entry.second);
                      }
                      return Status::OK();
                    })
                    .ok());
    // A partition-spanning scan merges local and remote slices, sorted.
    ASSERT_TRUE(conn->ExecuteRead([&](SystemTransaction& t) -> Status {
                      auto rows = t.Scan("", "zzzz");
                      EXPECT_TRUE(rows.ok());
                      if (rows.ok()) {
                        std::map<std::string, std::string> got(rows->begin(),
                                                               rows->end());
                        EXPECT_EQ(got, expected);
                        EXPECT_TRUE(std::is_sorted(rows->begin(),
                                                   rows->end()));
                      }
                      return Status::OK();
                    })
                    .ok());
  }
  const auto stats = sys.Stats();
  sys.Stop();
  EXPECT_GT(stats.remote_partition_reads, 0u);
  std::uint64_t served = 0;
  for (const auto& sec : stats.secondaries) served += sec.remote_reads_served;
  EXPECT_GT(served, 0u);
  (void)map;
}

TEST(PartitionSystemTest, StaleCoveringReplicaRejectedThenServed) {
  // Deterministic SCAR rejection: WAN latency holds fresh commits away from
  // every secondary for 300ms, then secondary 0 recovers from a checkpoint
  // taken *after* those commits — its snapshot is ahead of partition 1's
  // only replica, so the cross-partition read must reject the stale replica,
  // wait for just the snapshot prefix, and then serve the right value.
  SystemConfig config = PartitionedConfig(2, 2, 1);
  config.guarantee = session::Guarantee::kWeakSI;  // reads never block at home
  config.network_latency = std::chrono::milliseconds(300);
  ReplicatedSystem sys(config);
  sys.Start();

  const auto& map = sys.partition_map();
  // A key on partition 1 (covered only by secondary 1).
  std::string remote_key;
  for (int i = 0; i < 64 && remote_key.empty(); ++i) {
    const std::string key = "rk" + std::to_string(i);
    if (map.PartitionOf(key) == 1) remote_key = key;
  }
  ASSERT_FALSE(remote_key.empty());
  ASSERT_EQ(map.Replicas(1), std::vector<std::size_t>{1});

  auto conn = sys.ConnectTo(0);
  ASSERT_TRUE(conn->ExecuteUpdate([&](SystemTransaction& t) {
                    return t.Put(remote_key, "old");
                  })
                  .ok());
  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(20000)));

  ASSERT_TRUE(sys.FailSecondary(0).ok());
  ASSERT_TRUE(conn->ExecuteUpdate([&](SystemTransaction& t) {
                    return t.Put(remote_key, "new");
                  })
                  .ok());
  // Quiesced (the update already committed); the checkpoint includes "new".
  ASSERT_TRUE(sys.RecoverSecondary(0).ok());

  std::string got;
  ASSERT_TRUE(conn->ExecuteRead([&](SystemTransaction& t) -> Status {
                    auto v = t.Get(remote_key);
                    LAZYSI_RETURN_NOT_OK(v.status());
                    got = *v;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(got, "new");
  const auto stats = sys.Stats();
  sys.Stop();
  // The covering replica was provably behind the reader's snapshot when the
  // read started; the SCAR validation must have fired at least once.
  EXPECT_GT(stats.scar_stale_rejects, 0u);
  EXPECT_GT(stats.remote_partition_reads, 0u);
}

TEST(PartitionSystemTest, SingleKillLeavesEveryPartitionServable) {
  SystemConfig config = PartitionedConfig(4, 4, 2);
  ReplicatedSystem sys(config);
  sys.Start();
  auto conn = sys.ConnectTo(0);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 40; ++i) {
    const std::string key = "k" + std::to_string(i);
    expected[key] = std::to_string(i);
    ASSERT_TRUE(conn->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put(key, expected[key]);
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());
  ASSERT_TRUE(sys.FailSecondary(2).ok());

  // With 2-way replication, killing one secondary leaves every partition
  // with a live replica: every key stays readable from any surviving home.
  for (std::size_t s : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    auto reader = sys.ConnectTo(s);
    ASSERT_TRUE(reader
                    ->ExecuteRead([&](SystemTransaction& t) -> Status {
                      for (const auto& entry : expected) {
                        auto v = t.Get(entry.first);
                        EXPECT_TRUE(v.ok())
                            << "home " << s << " key " << entry.first << ": "
                            << v.status().ToString();
                        if (v.ok()) EXPECT_EQ(*v, entry.second);
                      }
                      return Status::OK();
                    })
                    .ok());
  }

  // More updates while one replica of partitions {1,2} is down, then
  // recover; the recovered site reinstalls only its covered partitions and
  // catches up.
  for (int i = 40; i < 60; ++i) {
    const std::string key = "k" + std::to_string(i);
    expected[key] = std::to_string(i);
    ASSERT_TRUE(conn->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put(key, expected[key]);
                    })
                    .ok());
  }
  Status s = Status::OK();
  for (int attempt = 0; attempt < 20; ++attempt) {
    s = sys.RecoverSecondary(2);
    if (s.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_TRUE(sys.WaitForReplication());
  sys.Stop();

  const auto& map = sys.partition_map();
  const auto primary_state = sys.primary_db()->store()->Materialize(
      sys.primary_db()->LatestCommitTs());
  for (std::size_t i = 0; i < sys.num_secondaries(); ++i) {
    EXPECT_EQ(sys.secondary_db(i)->store()->Materialize(
                  sys.secondary_db(i)->LatestCommitTs()),
              Restrict(primary_state, map, i))
        << "secondary " << i;
  }
}

TEST(PartitionSystemTest, PerPartitionFloorsGateTranslationPruning) {
  SystemConfig config = PartitionedConfig(4, 4, 2);
  ReplicatedSystem sys(config);
  sys.Start();
  auto conn = sys.ConnectTo(0);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(conn->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("k" + std::to_string(i), "v");
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());

  // All replicas live and caught up: every floor equals the primary's
  // latest commit, and GC prunes translations down to a constant residue.
  const Timestamp latest = sys.primary_db()->LatestCommitTs();
  for (Timestamp floor : sys.PartitionFloors()) EXPECT_EQ(floor, latest);
  sys.GarbageCollectAll();
  auto stats = sys.Stats();
  for (const auto& sec : stats.secondaries) {
    EXPECT_LE(sec.translation_count, 2u) << "secondary " << sec.index;
  }

  // Kill secondary 3: partitions {2,3} lose one replica each but keep one;
  // their floors drop to the surviving replica's applied_seq (still == the
  // fleet tip here), and a partition with NO live replica would pin its
  // floor at 0. Simulate that by also killing secondary 2 (partition 2's
  // other replica).
  ASSERT_TRUE(sys.FailSecondary(3).ok());
  ASSERT_TRUE(sys.FailSecondary(2).ok());
  const auto floors = sys.PartitionFloors();
  ASSERT_EQ(floors.size(), 4u);
  EXPECT_EQ(floors[0], latest);  // replicas {0,1} both live
  EXPECT_EQ(floors[1], latest);  // replicas {1,2} -> 1 live
  EXPECT_EQ(floors[2], 0u);      // replicas {2,3} both dead: floor pinned
  EXPECT_EQ(floors[3], latest);  // replicas {3,0} -> 0 live
  // GC must still run safely with dead partitions in the map.
  sys.GarbageCollectAll();
  sys.Stop();
}

TEST(PartitionSystemTest, DifferentialAgainstFullReplication) {
  // The same deterministic workload against a fully replicated fleet and a
  // 4x2-way partitioned fleet: primary states agree, every partitioned
  // secondary equals the full-replication state restricted to its coverage,
  // and reads give identical answers wherever they are served.
  SystemConfig full_config = PartitionedConfig(4, 1, 0);
  full_config.record_history = true;
  SystemConfig part_config = PartitionedConfig(4, 4, 2);
  part_config.record_history = true;
  ReplicatedSystem full(full_config);
  ReplicatedSystem part(part_config);
  full.Start();
  part.Start();

  Rng rng(20060912);
  auto full_conn = full.ConnectTo(0);
  auto part_conn = part.ConnectTo(0);
  for (int i = 0; i < 120; ++i) {
    const std::string key = "k" + std::to_string(rng.Next(24));
    const bool del = rng.Bernoulli(0.1);
    const std::string value = "v" + std::to_string(i);
    for (auto* conn : {full_conn.get(), part_conn.get()}) {
      ASSERT_TRUE(conn->ExecuteUpdate([&](SystemTransaction& t) {
                        return del ? t.Delete(key) : t.Put(key, value);
                      })
                      .ok());
    }
  }
  ASSERT_TRUE(full.WaitForReplication());
  ASSERT_TRUE(part.WaitForReplication());

  const auto full_state = full.primary_db()->store()->Materialize(
      full.primary_db()->LatestCommitTs());
  const auto part_state = part.primary_db()->store()->Materialize(
      part.primary_db()->LatestCommitTs());
  EXPECT_EQ(full_state, part_state);
  for (std::size_t s = 0; s < part.num_secondaries(); ++s) {
    EXPECT_EQ(part.secondary_db(s)->store()->Materialize(
                  part.secondary_db(s)->LatestCommitTs()),
              Restrict(full_state, part.partition_map(), s))
        << "secondary " << s;
  }

  // Reads answered identically at every home, wherever each key is served.
  for (std::size_t s = 0; s < 4; ++s) {
    auto fc = full.ConnectTo(s);
    auto pc = part.ConnectTo(s);
    for (int i = 0; i < 24; ++i) {
      const std::string key = "k" + std::to_string(i);
      std::optional<std::string> fv, pv;
      ASSERT_TRUE(fc->ExecuteRead([&](SystemTransaction& t) -> Status {
                        auto v = t.Get(key);
                        if (v.ok()) fv = *v;
                        return Status::OK();
                      })
                      .ok());
      ASSERT_TRUE(pc->ExecuteRead([&](SystemTransaction& t) -> Status {
                        auto v = t.Get(key);
                        if (v.ok()) pv = *v;
                        return Status::OK();
                      })
                      .ok());
      EXPECT_EQ(fv, pv) << "home " << s << " key " << key;
    }
  }
  full.Stop();
  part.Stop();

  // Both histories are weak SI; the partitioned one recorded its remote
  // reads in the same primary coordinates as local ones.
  history::SIChecker part_checker(part.recorder()->Snapshot());
  auto weak = part_checker.CheckWeakSI();
  EXPECT_TRUE(weak.ok) << weak.violation;
}

TEST(PartitionSystemTest, ConcurrentCrossPartitionHistoryIsStrongSessionSI) {
  // Concurrent sessions spanning partitions under the strong-session
  // guarantee, remote reads and all; the recorded history must still check.
  SystemConfig config = PartitionedConfig(4, 4, 2);
  config.guarantee = session::Guarantee::kStrongSessionSI;
  config.record_history = true;
  config.read_block_timeout = std::chrono::milliseconds(20000);
  ReplicatedSystem sys(config);
  sys.Start();

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(777 * (c + 1));
      auto conn = sys.ConnectTo(static_cast<std::size_t>(c));
      for (int i = 0; i < 40; ++i) {
        if (rng.Bernoulli(0.45)) {
          Status s = conn->ExecuteUpdate(
              [&](SystemTransaction& t) -> Status {
                const std::string key = "k" + std::to_string(rng.Next(16));
                auto v = t.Get(key);
                const int cur = v.ok() ? std::stoi(*v) : 0;
                return t.Put(key, std::to_string(cur + 1));
              },
              /*max_attempts=*/50);
          ASSERT_TRUE(s.ok()) << s;
        } else {
          Status s = conn->ExecuteRead([&](SystemTransaction& t) -> Status {
            for (int o = 0; o < 3; ++o) {
              (void)t.Get("k" + std::to_string(rng.Next(16)));
            }
            return Status::OK();
          });
          ASSERT_TRUE(s.ok()) << s;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(20000)));
  const auto stats = sys.Stats();
  sys.Stop();

  EXPECT_GT(stats.remote_partition_reads, 0u);
  history::SIChecker checker(sys.recorder()->Snapshot());
  ASSERT_GT(checker.num_records(), 0u);
  auto weak = checker.CheckWeakSI();
  ASSERT_TRUE(weak.ok) << weak.violation;
  auto session = checker.CheckStrongSessionSI();
  ASSERT_TRUE(session.ok) << session.violation;
  EXPECT_EQ(checker.CountSessionInversions(), 0u);
}

TEST(PartitionSystemTest, RangeSchemeAndCoverageAwareRouting) {
  SystemConfig config = PartitionedConfig(4, 4, 2);
  config.partition_scheme = replication::PartitionMap::Scheme::kRange;
  config.freshness_routing = true;
  ReplicatedSystem sys(config);
  sys.Start();
  auto conn = sys.ConnectTo(0);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 48; ++i) {
    // Keys spread over the byte range so range partitions all get data.
    const std::string key(1, static_cast<char>(5 + i * 5));
    expected[key] = std::to_string(i);
    ASSERT_TRUE(conn->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put(key, expected[key]);
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());
  for (int r = 0; r < 8; ++r) {
    ASSERT_TRUE(conn->ExecuteRead([&](SystemTransaction& t) -> Status {
                      auto rows = t.Scan("", std::string(2, '\xff'));
                      EXPECT_TRUE(rows.ok());
                      if (rows.ok()) {
                        std::map<std::string, std::string> got(rows->begin(),
                                                               rows->end());
                        EXPECT_EQ(got, expected);
                      }
                      return Status::OK();
                    })
                    .ok());
  }
  sys.Stop();
}

}  // namespace
}  // namespace system
}  // namespace lazysi
