// Client-protocol deadline regression tests: a silent or absent site server
// must surface as a bounded TimedOut/Unavailable at the RemoteSite stub, not
// wedge the client forever. These drive the real sockets — a listener that
// accepts (via the kernel backlog) but never replies, and a port nobody
// listens on — against the ConnectOptions deadlines.

#include <unistd.h>

#include <chrono>
#include <gtest/gtest.h>

#include "replication/framed_socket.h"
#include "system/remote_client.h"

namespace lazysi {
namespace system {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(RemoteTimeoutTest, SilentListenerYieldsTimedOutWithinDeadline) {
  // Listen but never accept: the kernel completes the TCP handshake from
  // the backlog, so Connect succeeds — then the Get's reply never comes.
  // Before op_timeout existed this blocked in recv() forever.
  std::uint16_t port = 0;
  const int listen_fd = replication::ListenOn("127.0.0.1", 0, &port);
  ASSERT_GE(listen_fd, 0);

  RemoteSite site;
  RemoteSite::ConnectOptions options;
  options.connect_timeout = milliseconds(2000);
  options.op_timeout = milliseconds(200);
  ASSERT_TRUE(site.Connect("127.0.0.1", port, options).ok());

  const auto start = steady_clock::now();
  auto value = site.Get("k");
  const auto elapsed = steady_clock::now() - start;

  EXPECT_EQ(value.status().code(), StatusCode::kTimedOut) << value.status();
  // Bounded: well past the 200ms deadline is a regression back to "wait
  // for a reply that never comes". Generous ceiling for loaded CI.
  EXPECT_LT(elapsed, milliseconds(5000));
  // The dead connection is discarded; the stub is reconnectable, not wedged.
  EXPECT_FALSE(site.connected());
  ::close(listen_fd);
}

TEST(RemoteTimeoutTest, ConnectRetriesAreBoundedAndBackedOff) {
  // Grab an ephemeral port and release it: nothing listens there, so every
  // dial fails fast with ECONNREFUSED and the retry loop carries the delay.
  std::uint16_t port = 0;
  const int fd = replication::ListenOn("127.0.0.1", 0, &port);
  ASSERT_GE(fd, 0);
  ::close(fd);

  RemoteSite site;
  RemoteSite::ConnectOptions options;
  options.max_attempts = 3;
  options.backoff_initial = milliseconds(30);
  options.backoff_max = milliseconds(1000);
  options.jitter = 0.0;  // deterministic delays for the timing bound

  const auto start = steady_clock::now();
  const Status status = site.Connect("127.0.0.1", port, options);
  const auto elapsed = steady_clock::now() - start;

  ASSERT_EQ(status.code(), StatusCode::kUnavailable) << status;
  EXPECT_NE(status.message().find("3 attempts"), std::string::npos) << status;
  EXPECT_FALSE(site.connected());
  // Three attempts sleep 30ms + 60ms between them...
  EXPECT_GE(elapsed, milliseconds(90));
  // ...and refused connections fail immediately, so the whole thing stays
  // far under the per-attempt connect timeout budget.
  EXPECT_LT(elapsed, milliseconds(5000));
}

TEST(RemoteTimeoutTest, SingleAttemptFailsWithoutSleeping) {
  std::uint16_t port = 0;
  const int fd = replication::ListenOn("127.0.0.1", 0, &port);
  ASSERT_GE(fd, 0);
  ::close(fd);

  RemoteSite site;
  RemoteSite::ConnectOptions options;
  options.max_attempts = 1;
  options.backoff_initial = milliseconds(500);

  const auto start = steady_clock::now();
  EXPECT_EQ(site.Connect("127.0.0.1", port, options).code(),
            StatusCode::kUnavailable);
  // No retry, no backoff sleep.
  EXPECT_LT(steady_clock::now() - start, milliseconds(400));
}

}  // namespace
}  // namespace system
}  // namespace lazysi
