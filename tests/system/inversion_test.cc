// The bookstore scenario from the introduction: Tbuy (update) followed by
// Tcheck (read-only) in the same session. Under ALG-WEAK-SI with slow
// propagation, Tcheck can miss the purchase (a transaction inversion);
// under ALG-STRONG-SESSION-SI and ALG-STRONG-SI it never can.

#include <gtest/gtest.h>

#include "history/si_checker.h"
#include "system/replicated_system.h"

namespace lazysi {
namespace system {
namespace {

class InversionTest : public ::testing::TestWithParam<session::Guarantee> {};

TEST_P(InversionTest, BuyThenCheck) {
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = GetParam();
  config.record_history = true;
  // Slow, batched propagation makes inversions overwhelmingly likely under
  // weak SI.
  config.propagation_batch_interval = std::chrono::milliseconds(150);
  config.read_block_timeout = std::chrono::milliseconds(10000);
  ReplicatedSystem sys(config);
  sys.Start();

  auto customer = sys.Connect();
  int observed_inversions = 0;
  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    const std::string order = "order/" + std::to_string(round);
    // Tbuy: purchase books.
    ASSERT_TRUE(customer
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put(order, "purchased");
                    })
                    .ok());
    // Tcheck: immediately check the status of the purchase.
    auto check = customer->BeginRead();
    ASSERT_TRUE(check.ok());
    auto status = (*check)->Get(order);
    if (!status.ok()) {
      ++observed_inversions;
    } else {
      EXPECT_EQ(*status, "purchased");
    }
    ASSERT_TRUE((*check)->Commit().ok());
  }
  sys.WaitForReplication();
  sys.Stop();

  history::SIChecker checker(sys.recorder()->Snapshot());
  // Global weak SI always holds (Theorem 3.2).
  auto weak = checker.CheckWeakSI();
  EXPECT_TRUE(weak.ok) << weak.violation;

  switch (GetParam()) {
    case session::Guarantee::kWeakSI:
      // With 150 ms batching and immediate reads, every round inverts.
      EXPECT_GT(observed_inversions, 0);
      EXPECT_GT(checker.CountSessionInversions(), 0u);
      break;
    case session::Guarantee::kStrongSessionSI: {
      EXPECT_EQ(observed_inversions, 0);
      auto report = checker.CheckStrongSessionSI();
      EXPECT_TRUE(report.ok) << report.violation;
      EXPECT_EQ(checker.CountSessionInversions(), 0u);
      break;
    }
    case session::Guarantee::kStrongSI: {
      EXPECT_EQ(observed_inversions, 0);
      auto strong = checker.CheckStrongSI();
      EXPECT_TRUE(strong.ok) << strong.violation;
      EXPECT_EQ(checker.CountGlobalInversions(), 0u);
      break;
    }
    case session::Guarantee::kPrefixConsistentSI: {
      // Tcheck follows the session's own update, so PCSI also prevents
      // this particular inversion (it only tolerates read-read staleness).
      EXPECT_EQ(observed_inversions, 0);
      auto report = checker.CheckPrefixConsistentSI();
      EXPECT_TRUE(report.ok) << report.violation;
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGuarantees, InversionTest,
    ::testing::Values(session::Guarantee::kWeakSI,
                      session::Guarantee::kStrongSessionSI,
                      session::Guarantee::kStrongSI,
                      session::Guarantee::kPrefixConsistentSI),
    [](const ::testing::TestParamInfo<session::Guarantee>& info) {
      switch (info.param) {
        case session::Guarantee::kWeakSI: return std::string("WeakSI");
        case session::Guarantee::kStrongSessionSI:
          return std::string("StrongSessionSI");
        case session::Guarantee::kStrongSI: return std::string("StrongSI");
        case session::Guarantee::kPrefixConsistentSI:
          return std::string("PCSI");
      }
      return std::string("Unknown");
    });

// A session whose reads roam across secondaries via the freshness router
// never observes an inversion: placement lands each read on a secondary
// whose seq(DBsec) already covers seq(c), or falls back to blocking on the
// freshest one — either way the blocking rule of ALG-STRONG-SESSION-SI
// holds at whichever site serves the read.
TEST(RoutedRoamingTest, SessionNeverObservesInversionAcrossSecondaries) {
  SystemConfig config;
  config.num_secondaries = 3;
  config.guarantee = session::Guarantee::kStrongSessionSI;
  config.record_history = true;
  config.freshness_routing = true;
  config.propagation_batch_interval = std::chrono::milliseconds(30);
  ReplicatedSystem sys(config);
  sys.Start();

  auto customer = sys.Connect();
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    const std::string order = "order/" + std::to_string(round);
    ASSERT_TRUE(customer
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put(order, "purchased");
                    })
                    .ok());
    auto check = customer->BeginRead();
    ASSERT_TRUE(check.ok());
    // The session's own purchase is always visible, wherever the read
    // landed.
    auto status = (*check)->Get(order);
    ASSERT_TRUE(status.ok()) << "inversion in round " << round << ": "
                             << status.status();
    EXPECT_EQ(*status, "purchased");
    ASSERT_TRUE((*check)->Commit().ok());
  }
  sys.WaitForReplication();
  const auto stats = sys.Stats();
  sys.Stop();

  // Every read went through the router.
  std::uint64_t routed = 0;
  for (const auto& sec : stats.secondaries) {
    routed += sec.ro_routed_fresh + sec.ro_blocked_on_freshness;
  }
  EXPECT_EQ(routed, static_cast<std::uint64_t>(kRounds));

  history::SIChecker checker(sys.recorder()->Snapshot());
  auto weak = checker.CheckWeakSI();
  EXPECT_TRUE(weak.ok) << weak.violation;
  auto report = checker.CheckStrongSessionSI();
  EXPECT_TRUE(report.ok) << report.violation;
  EXPECT_EQ(checker.CountSessionInversions(), 0u);
}

// The router's load signal is an EWMA of active reads, not the raw gauge:
// when a burst of reads ends, the estimate decays geometrically over
// subsequent routing decisions instead of snapping to zero. That is the
// hysteresis that stops one transient burst from flipping placement (and
// the herd) on every sample. Routing correctness under the EWMA — every
// read placed fresh or blocked-on-freshest, zero session inversions — is
// asserted by RoutedRoamingTest above.
TEST(RoutedRoamingTest, LoadEstimateSmoothsTransientBursts) {
  SystemConfig config;
  config.num_secondaries = 2;
  config.freshness_routing = true;
  ReplicatedSystem sys(config);
  sys.Start();
  auto* sec = sys.secondary(0);
  ASSERT_NE(sec, nullptr);
  EXPECT_EQ(sec->load_estimate(), 0u);

  // A sustained burst: the estimate converges up toward the gauge.
  for (int i = 0; i < 16; ++i) sec->OnReadStart();
  std::uint64_t est = 0;
  for (int i = 0; i < 64; ++i) est = sec->SampleLoadEstimate();
  EXPECT_GE(est, 15u << 10);  // within 1 read of 16 after 64 samples
  EXPECT_LE(est, 16u << 10);

  // Burst ends: the raw gauge drops to zero instantly...
  for (int i = 0; i < 16; ++i) sec->OnReadFinish();
  EXPECT_EQ(sec->active_reads(), 0u);
  // ...but one routing sample sheds only ~1/8 of the estimate.
  const std::uint64_t after_one = sec->SampleLoadEstimate();
  EXPECT_GT(after_one, est / 2);
  EXPECT_LT(after_one, est);
  // The decay is monotone and converges exactly to zero (the +-1 floor step
  // keeps it from sticking just above the target forever).
  std::uint64_t prev = after_one;
  for (int i = 0; i < 400 && sec->load_estimate() > 0; ++i) {
    const std::uint64_t next = sec->SampleLoadEstimate();
    EXPECT_LE(next, prev);
    prev = next;
  }
  EXPECT_EQ(sec->load_estimate(), 0u);
  sys.Stop();
}

// Cross-session inversions are permitted under strong session SI — that is
// precisely the cost it does not pay (Definition 2.2).
TEST(CrossSessionTest, SessionSIAllowsCrossSessionStaleness) {
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = session::Guarantee::kStrongSessionSI;
  config.record_history = true;
  config.propagation_batch_interval = std::chrono::milliseconds(200);
  ReplicatedSystem sys(config);
  sys.Start();

  auto alice = sys.Connect();
  auto bob = sys.Connect();
  ASSERT_TRUE(alice
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("announcement", "posted");
                  })
                  .ok());
  // Bob reads immediately from a different session: may or may not see it;
  // must not block.
  auto read = bob->BeginRead();
  ASSERT_TRUE(read.ok());
  (void)(*read)->Get("announcement");
  ASSERT_TRUE((*read)->Commit().ok());
  sys.WaitForReplication();
  sys.Stop();

  history::SIChecker checker(sys.recorder()->Snapshot());
  auto session_report = checker.CheckStrongSessionSI();
  EXPECT_TRUE(session_report.ok) << session_report.violation;
  // No *session* inversion even though Bob's read was globally stale.
  EXPECT_EQ(checker.CountSessionInversions(), 0u);
}

}  // namespace
}  // namespace system
}  // namespace lazysi
