// Secondary failure and recovery (Sections 3.4 and 4): a crashed secondary
// loses its queued updates and refresh state; recovery installs a quiesced
// primary checkpoint, re-seeds seq(DBsec), replays the missed log suffix and
// rejoins live propagation.

#include <gtest/gtest.h>

#include "system/replicated_system.h"

namespace lazysi {
namespace system {
namespace {

SystemConfig Config() {
  SystemConfig c;
  c.num_secondaries = 2;
  c.guarantee = session::Guarantee::kStrongSessionSI;
  return c;
}

TEST(RecoveryTest, FailedSecondaryRejectsClients) {
  ReplicatedSystem sys(Config());
  sys.Start();
  ASSERT_TRUE(sys.FailSecondary(0).ok());
  auto client = sys.ConnectTo(0);
  auto read = client->BeginRead();
  EXPECT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsUnavailable());
  // The other secondary still works.
  auto other = sys.ConnectTo(1);
  EXPECT_TRUE(other->BeginRead().ok());
  sys.Stop();
}

TEST(RecoveryTest, FailSecondaryIsIdempotentlyGuarded) {
  ReplicatedSystem sys(Config());
  sys.Start();
  ASSERT_TRUE(sys.FailSecondary(0).ok());
  EXPECT_FALSE(sys.FailSecondary(0).ok());   // already failed
  EXPECT_FALSE(sys.FailSecondary(99).ok());  // no such site
  EXPECT_FALSE(sys.RecoverSecondary(1).ok());  // not failed
  sys.Stop();
}

TEST(RecoveryTest, RecoveredSecondaryCatchesUp) {
  ReplicatedSystem sys(Config());
  sys.Start();
  auto client = sys.ConnectTo(1);

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("pre/" + std::to_string(i), "v");
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());
  ASSERT_TRUE(sys.FailSecondary(0).ok());

  // Updates committed while the secondary is down.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("during/" + std::to_string(i), "v");
                    })
                    .ok());
  }
  // Quiesce, then recover from a fresh checkpoint.
  ASSERT_TRUE(sys.WaitForReplication());
  ASSERT_TRUE(sys.RecoverSecondary(0).ok());

  // Updates after recovery flow through normal propagation.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("post/" + std::to_string(i), "v");
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());

  EXPECT_EQ(sys.secondary_db(0)->store()->Materialize(
                sys.secondary_db(0)->LatestCommitTs()),
            sys.primary_db()->store()->Materialize(
                sys.primary_db()->LatestCommitTs()));
  sys.Stop();
}

TEST(RecoveryTest, RecoveredSecondaryServesSessionReads) {
  ReplicatedSystem sys(Config());
  sys.Start();
  auto writer = sys.ConnectTo(1);
  ASSERT_TRUE(writer
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("k", "v1");
                  })
                  .ok());
  ASSERT_TRUE(sys.WaitForReplication());
  ASSERT_TRUE(sys.FailSecondary(0).ok());
  ASSERT_TRUE(sys.RecoverSecondary(0).ok());

  // A client of the recovered secondary sees its own subsequent updates
  // (seq(DBsec) was re-seeded correctly, Section 4's dummy transaction).
  auto client = sys.ConnectTo(0);
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("k", "v2");
                  })
                  .ok());
  auto read = client->BeginRead();
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ((*read)->Get("k").value(), "v2");
  sys.Stop();
}

TEST(RecoveryTest, RepeatedFailRecoverCycles) {
  ReplicatedSystem sys(Config());
  sys.Start();
  auto client = sys.ConnectTo(1);
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("cycle/" + std::to_string(cycle), "v");
                    })
                    .ok());
    ASSERT_TRUE(sys.WaitForReplication());
    ASSERT_TRUE(sys.FailSecondary(0).ok());
    ASSERT_TRUE(sys.RecoverSecondary(0).ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());
  EXPECT_EQ(sys.secondary_db(0)->store()->KeyCount(), 3u);
  sys.Stop();
}

}  // namespace
}  // namespace system
}  // namespace lazysi
