#include "system/replicated_system.h"

#include <gtest/gtest.h>

#include <thread>

#include "history/completeness.h"

namespace lazysi {
namespace system {
namespace {

SystemConfig Config(session::Guarantee g, std::size_t secondaries = 2) {
  SystemConfig c;
  c.num_secondaries = secondaries;
  c.guarantee = g;
  c.record_history = true;
  return c;
}

TEST(ReplicatedSystemTest, UpdateRoutedToPrimaryReadToSecondary) {
  ReplicatedSystem sys(Config(session::Guarantee::kStrongSessionSI));
  sys.Start();
  auto client = sys.ConnectTo(0);

  auto upd = client->BeginUpdate();
  ASSERT_TRUE(upd.ok());
  ASSERT_TRUE((*upd)->Put("k", "v").ok());
  ASSERT_TRUE((*upd)->Commit().ok());
  EXPECT_EQ(sys.primary_db()->Get("k").value(), "v");

  auto read = client->BeginRead();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)->Get("k").value(), "v");  // read-your-writes
  ASSERT_TRUE((*read)->Commit().ok());
  sys.Stop();
}

TEST(ReplicatedSystemTest, ReadOnlyTxnRejectsWrites) {
  ReplicatedSystem sys(Config(session::Guarantee::kWeakSI));
  sys.Start();
  auto client = sys.Connect();
  auto read = client->BeginRead();
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE((*read)->Put("k", "v").ok());
  EXPECT_FALSE((*read)->Delete("k").ok());
  sys.Stop();
}

TEST(ReplicatedSystemTest, SessionSeqAdvancesOnUpdateCommit) {
  ReplicatedSystem sys(Config(session::Guarantee::kStrongSessionSI));
  sys.Start();
  auto client = sys.Connect();
  EXPECT_EQ(client->session()->seq(), 0u);
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("k", "v");
                  })
                  .ok());
  EXPECT_EQ(client->session()->seq(), sys.primary_db()->LatestCommitTs());
  sys.Stop();
}

TEST(ReplicatedSystemTest, ExecuteUpdateRetriesConflicts) {
  ReplicatedSystem sys(Config(session::Guarantee::kWeakSI));
  sys.Start();
  ASSERT_TRUE(sys.ConnectTo(0)
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("counter", "0");
                  })
                  .ok());
  // Concurrent read-modify-write increments from many clients; FCW retries
  // inside ExecuteUpdate must make them all land.
  constexpr int kClients = 4;
  constexpr int kIncrements = 25;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto client = sys.Connect();
      for (int i = 0; i < kIncrements; ++i) {
        Status s = client->ExecuteUpdate(
            [](SystemTransaction& t) -> Status {
              auto v = t.Get("counter");
              if (!v.ok()) return v.status();
              return t.Put("counter", std::to_string(std::stoi(*v) + 1));
            },
            /*max_attempts=*/100);
        ASSERT_TRUE(s.ok()) << s;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sys.primary_db()->Get("counter").value(),
            std::to_string(kClients * kIncrements));
  sys.Stop();
}

TEST(ReplicatedSystemTest, WaitForReplicationSyncsAllSecondaries) {
  ReplicatedSystem sys(Config(session::Guarantee::kWeakSI, 3));
  sys.Start();
  auto client = sys.Connect();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("k" + std::to_string(i), "v");
                    })
                    .ok());
  }
  ASSERT_TRUE(sys.WaitForReplication());
  for (std::size_t s = 0; s < sys.num_secondaries(); ++s) {
    EXPECT_EQ(sys.secondary_db(s)->store()->KeyCount(), 50u);
    // Theorem 3.1 executable form: identical state chains.
    auto report = history::CheckCompleteness(
        sys.primary_db()->StateChainHistory(),
        sys.secondary_db(s)->StateChainHistory());
    EXPECT_TRUE(report.ok) << report.violation;
  }
  sys.Stop();
}

TEST(ReplicatedSystemTest, ScanThroughSystemTransaction) {
  ReplicatedSystem sys(Config(session::Guarantee::kStrongSessionSI));
  sys.Start();
  auto client = sys.ConnectTo(0);
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) -> Status {
                    LAZYSI_RETURN_NOT_OK(t.Put("a/1", "1"));
                    LAZYSI_RETURN_NOT_OK(t.Put("a/2", "2"));
                    return t.Put("b/1", "3");
                  })
                  .ok());
  auto read = client->BeginRead();
  ASSERT_TRUE(read.ok());
  auto rows = (*read)->Scan("a/", "a0");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  sys.Stop();
}

TEST(ReplicatedSystemTest, ConnectRoundRobins) {
  ReplicatedSystem sys(Config(session::Guarantee::kWeakSI, 3));
  sys.Start();
  auto c0 = sys.Connect();
  auto c1 = sys.Connect();
  auto c2 = sys.Connect();
  auto c3 = sys.Connect();
  EXPECT_NE(c0->secondary_index(), c1->secondary_index());
  EXPECT_EQ(c0->secondary_index(), c3->secondary_index());
  sys.Stop();
}

TEST(ReplicatedSystemTest, HistoryRecorded) {
  ReplicatedSystem sys(Config(session::Guarantee::kStrongSessionSI));
  sys.Start();
  auto client = sys.Connect();
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("k", "v");
                  })
                  .ok());
  ASSERT_TRUE(sys.WaitForReplication());
  ASSERT_TRUE(client
                  ->ExecuteRead([](SystemTransaction& t) {
                    return t.Get("k").status();
                  })
                  .ok());
  auto records = sys.recorder()->Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].read_only);
  EXPECT_EQ(records[0].writes.size(), 1u);
  EXPECT_TRUE(records[1].read_only);
  ASSERT_EQ(records[1].reads.size(), 1u);
  // The read's observed version is expressed in primary timestamps.
  EXPECT_EQ(records[1].reads[0].version_primary_ts,
            records[0].commit_primary_ts);
  sys.Stop();
}

TEST(ReplicatedSystemTest, StrongSessionBlocksUntilCaughtUp) {
  // With a slow (batched) propagator, a read right after an update must
  // block until the update is applied — and then see it.
  SystemConfig config = Config(session::Guarantee::kStrongSessionSI, 1);
  config.propagation_batch_interval = std::chrono::milliseconds(100);
  config.read_block_timeout = std::chrono::milliseconds(10000);
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.Connect();
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("fresh", "yes");
                  })
                  .ok());
  const auto t0 = std::chrono::steady_clock::now();
  auto read = client->BeginRead();
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)->Get("fresh").value(), "yes");
  // It genuinely waited for the propagation cycle.
  EXPECT_GT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            20);
  sys.Stop();
}

TEST(ReplicatedSystemTest, WeakSIDoesNotBlock) {
  SystemConfig config = Config(session::Guarantee::kWeakSI, 1);
  config.propagation_batch_interval = std::chrono::milliseconds(200);
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.Connect();
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("fresh", "yes");
                  })
                  .ok());
  auto read = client->BeginRead();
  ASSERT_TRUE(read.ok());
  // Immediately readable — and typically stale (transaction inversion).
  EXPECT_TRUE((*read)->Get("fresh").status().IsNotFound());
  sys.Stop();
}

}  // namespace
}  // namespace system
}  // namespace lazysi
