// WAN configuration: per-record network latency between the primary and
// each secondary (SystemConfig::network_latency), on top of which all the
// usual guarantees must keep holding.

#include <gtest/gtest.h>

#include "history/si_checker.h"
#include "system/replicated_system.h"

namespace lazysi {
namespace system {
namespace {

TEST(WanTest, SessionGuaranteeHoldsAcrossSlowLinks) {
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = session::Guarantee::kStrongSessionSI;
  config.network_latency = std::chrono::milliseconds(30);
  config.network_jitter = std::chrono::milliseconds(20);
  config.record_history = true;
  ReplicatedSystem sys(config);
  sys.Start();

  auto client = sys.Connect();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client
                    ->ExecuteUpdate([&](SystemTransaction& t) {
                      return t.Put("k" + std::to_string(i), "v");
                    })
                    .ok());
    // Read-your-writes must hold despite the slow link (it blocks).
    Status s = client->ExecuteRead([&](SystemTransaction& t) {
      auto v = t.Get("k" + std::to_string(i));
      return v.ok() ? Status::OK() : Status::Internal("inversion over WAN");
    });
    ASSERT_TRUE(s.ok()) << s;
  }
  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(20000)));
  sys.Stop();

  history::SIChecker checker(sys.recorder()->Snapshot());
  auto weak = checker.CheckWeakSI();
  EXPECT_TRUE(weak.ok) << weak.violation;
  auto session = checker.CheckStrongSessionSI();
  EXPECT_TRUE(session.ok) << session.violation;
}

TEST(WanTest, WeakSIInvertsOverSlowLinks) {
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = session::Guarantee::kWeakSI;
  config.network_latency = std::chrono::milliseconds(100);
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.Connect();
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("fresh", "yes");
                  })
                  .ok());
  auto read = client->BeginRead();
  ASSERT_TRUE(read.ok());
  // 100 ms link: the update cannot have been applied yet.
  EXPECT_TRUE((*read)->Get("fresh").status().IsNotFound());
  sys.WaitForReplication(std::chrono::milliseconds(20000));
  sys.Stop();
}

TEST(WanTest, FailAndRecoverOverWan) {
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = session::Guarantee::kStrongSessionSI;
  config.network_latency = std::chrono::milliseconds(10);
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(1);
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("a", "1");
                  })
                  .ok());
  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(20000)));
  ASSERT_TRUE(sys.FailSecondary(0).ok());
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("b", "2");
                  })
                  .ok());
  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(20000)));
  ASSERT_TRUE(sys.RecoverSecondary(0).ok());
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("c", "3");
                  })
                  .ok());
  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(20000)));
  EXPECT_EQ(sys.secondary_db(0)->store()->KeyCount(), 3u);
  sys.Stop();
}

TEST(WanTest, RoamingSkipsFailedSecondaries) {
  SystemConfig config;
  config.num_secondaries = 3;
  config.guarantee = session::Guarantee::kWeakSI;
  config.roam_reads = true;
  ReplicatedSystem sys(config);
  sys.Start();
  ASSERT_TRUE(sys.FailSecondary(1).ok());
  auto client = sys.ConnectTo(1);  // home site is even the dead one
  for (int i = 0; i < 10; ++i) {
    auto read = client->BeginRead();
    ASSERT_TRUE(read.ok()) << read.status();  // roams to a live site
    ASSERT_TRUE((*read)->Commit().ok());
  }
  sys.Stop();
}

}  // namespace
}  // namespace system
}  // namespace lazysi
