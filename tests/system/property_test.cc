// Randomized end-to-end property sweep over the full replicated system:
// concurrent client sessions issue mixed read/update transactions against a
// lazily synchronized system, the recorded history is then checked against
// the paper's correctness criteria:
//
//  - global weak SI holds under every algorithm (Theorem 3.2);
//  - completeness holds at every secondary (Theorem 3.1);
//  - ALG-STRONG-SESSION-SI histories are strong session SI (Theorem 4.1);
//  - ALG-STRONG-SI histories are strong SI;
//  - ALG-WEAK-SI histories exhibit *observable* inversions under slow
//    propagation (the anomaly is real, not hypothetical).

#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "history/completeness.h"
#include "history/si_checker.h"
#include "system/replicated_system.h"

namespace lazysi {
namespace system {
namespace {

struct PropertyParams {
  session::Guarantee guarantee;
  std::size_t secondaries;
  int clients;
  int txns_per_client;
  int propagation_batch_ms;
  std::string name;
  bool roam_reads = false;
  /// Run the legacy transactional refresh engine instead of direct-apply,
  /// so both engines stay covered by the SI checkers.
  bool legacy_refresh = false;
  /// Freshness-aware read routing: reads go to the least-loaded secondary
  /// whose seq(DBsec) already covers the session's seq(c).
  bool freshness_routing = false;
  /// Partial replication: partition the keyspace num_partitions-ways with
  /// partition_replication replicas per partition. 1/0 = full replication.
  std::size_t num_partitions = 1;
  std::size_t partition_replication = 0;
  /// Ship propagation over real loopback TCP sockets (TcpLink +
  /// ReliableChannel) instead of in-process queues.
  bool transport_tcp = false;
};

class SystemPropertyTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(SystemPropertyTest, HistorySatisfiesGuarantee) {
  const PropertyParams p = GetParam();
  SystemConfig config;
  config.num_secondaries = p.secondaries;
  config.guarantee = p.guarantee;
  config.record_history = true;
  config.propagation_batch_interval =
      std::chrono::milliseconds(p.propagation_batch_ms);
  config.read_block_timeout = std::chrono::milliseconds(20000);
  config.roam_reads = p.roam_reads;
  config.direct_apply_refresh = !p.legacy_refresh;
  config.freshness_routing = p.freshness_routing;
  config.num_partitions = p.num_partitions;
  config.partition_replication = p.partition_replication;
  config.transport_tcp = p.transport_tcp;
  ReplicatedSystem sys(config);
  sys.Start();

  std::vector<std::thread> clients;
  for (int c = 0; c < p.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(10007 * (c + 1));
      auto conn = sys.Connect();
      for (int i = 0; i < p.txns_per_client; ++i) {
        if (rng.Bernoulli(0.4)) {
          // Update: read-modify-write of 1-3 keys from a small hot set.
          Status s = conn->ExecuteUpdate(
              [&](SystemTransaction& t) -> Status {
                const int nops = static_cast<int>(rng.UniformInt(1, 3));
                for (int o = 0; o < nops; ++o) {
                  const std::string key =
                      "k" + std::to_string(rng.Next(12));
                  auto v = t.Get(key);
                  const int cur = v.ok() ? std::stoi(*v) : 0;
                  LAZYSI_RETURN_NOT_OK(
                      t.Put(key, std::to_string(cur + 1)));
                }
                return Status::OK();
              },
              /*max_attempts=*/50);
          ASSERT_TRUE(s.ok()) << s;
        } else {
          // Read-only: snapshot reads of several keys.
          Status s = conn->ExecuteRead([&](SystemTransaction& t) -> Status {
            const int nops = static_cast<int>(rng.UniformInt(1, 4));
            for (int o = 0; o < nops; ++o) {
              (void)t.Get("k" + std::to_string(rng.Next(12)));
            }
            return Status::OK();
          });
          ASSERT_TRUE(s.ok()) << s;
        }
        if (rng.Bernoulli(0.2)) {
          std::this_thread::sleep_for(std::chrono::microseconds(300));
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(20000)));
  sys.Stop();

  // Completeness at every secondary (Theorem 3.1). A partial replica's
  // chain covers only its partitions' write sets, so chain-for-chain
  // comparison against the primary only applies under full replication;
  // partitioned state equality is asserted in partition_test.cc.
  if (!sys.partition_map().partial()) {
    for (std::size_t s = 0; s < sys.num_secondaries(); ++s) {
      auto report = history::CheckCompleteness(
          sys.primary_db()->StateChainHistory(),
          sys.secondary_db(s)->StateChainHistory());
      ASSERT_TRUE(report.ok) << "secondary " << s << ": " << report.violation;
    }
  }

  history::SIChecker checker(sys.recorder()->Snapshot());
  ASSERT_GT(checker.num_records(), 0u);

  // Global weak SI always (Theorem 3.2).
  auto weak = checker.CheckWeakSI();
  ASSERT_TRUE(weak.ok) << weak.violation;

  switch (p.guarantee) {
    case session::Guarantee::kWeakSI:
      // No session guarantee claimed; nothing further to assert (inversions
      // are demonstrated deterministically in inversion_test.cc).
      break;
    case session::Guarantee::kStrongSessionSI: {
      auto report = checker.CheckStrongSessionSI();
      ASSERT_TRUE(report.ok) << report.violation;
      EXPECT_EQ(checker.CountSessionInversions(), 0u);
      break;
    }
    case session::Guarantee::kStrongSI: {
      auto report = checker.CheckStrongSI();
      ASSERT_TRUE(report.ok) << report.violation;
      EXPECT_EQ(checker.CountGlobalInversions(), 0u);
      break;
    }
    case session::Guarantee::kPrefixConsistentSI: {
      auto report = checker.CheckPrefixConsistentSI();
      ASSERT_TRUE(report.ok) << report.violation;
      // Observable *update* inversions within a session are still
      // impossible (reads wait for the session's own commits).
      EXPECT_EQ(checker.CountSessionInversions(), 0u);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SystemPropertyTest,
    ::testing::Values(
        PropertyParams{session::Guarantee::kWeakSI, 2, 4, 40, 0, "weak_fast"},
        PropertyParams{session::Guarantee::kWeakSI, 3, 4, 30, 40,
                       "weak_batched"},
        PropertyParams{session::Guarantee::kStrongSessionSI, 1, 4, 40, 0,
                       "session_1sec"},
        PropertyParams{session::Guarantee::kStrongSessionSI, 3, 6, 30, 0,
                       "session_3sec"},
        PropertyParams{session::Guarantee::kStrongSessionSI, 2, 4, 25, 40,
                       "session_batched"},
        PropertyParams{session::Guarantee::kStrongSI, 2, 4, 25, 0,
                       "strong_2sec"},
        PropertyParams{session::Guarantee::kStrongSI, 2, 3, 20, 40,
                       "strong_batched"},
        PropertyParams{session::Guarantee::kStrongSessionSI, 3, 4, 25, 20,
                       "session_roaming", /*roam_reads=*/true},
        PropertyParams{session::Guarantee::kPrefixConsistentSI, 3, 4, 25, 20,
                       "pcsi_roaming", /*roam_reads=*/true},
        PropertyParams{session::Guarantee::kStrongSI, 3, 3, 20, 20,
                       "strong_roaming", /*roam_reads=*/true},
        PropertyParams{session::Guarantee::kStrongSessionSI, 2, 4, 25, 0,
                       "session_legacy_refresh", /*roam_reads=*/false,
                       /*legacy_refresh=*/true},
        PropertyParams{session::Guarantee::kWeakSI, 2, 4, 30, 40,
                       "weak_legacy_refresh", /*roam_reads=*/false,
                       /*legacy_refresh=*/true},
        PropertyParams{session::Guarantee::kWeakSI, 3, 4, 30, 20,
                       "weak_routed", /*roam_reads=*/false,
                       /*legacy_refresh=*/false, /*freshness_routing=*/true},
        PropertyParams{session::Guarantee::kStrongSessionSI, 3, 6, 25, 20,
                       "session_routed", /*roam_reads=*/false,
                       /*legacy_refresh=*/false, /*freshness_routing=*/true},
        PropertyParams{session::Guarantee::kStrongSI, 3, 3, 20, 20,
                       "strong_routed", /*roam_reads=*/false,
                       /*legacy_refresh=*/false, /*freshness_routing=*/true},
        PropertyParams{session::Guarantee::kStrongSessionSI, 4, 6, 30, 0,
                       "session_partitioned", /*roam_reads=*/false,
                       /*legacy_refresh=*/false, /*freshness_routing=*/false,
                       /*num_partitions=*/4, /*partition_replication=*/2},
        PropertyParams{session::Guarantee::kWeakSI, 4, 4, 30, 20,
                       "weak_partitioned", /*roam_reads=*/false,
                       /*legacy_refresh=*/false, /*freshness_routing=*/false,
                       /*num_partitions=*/4, /*partition_replication=*/2},
        PropertyParams{session::Guarantee::kStrongSI, 4, 3, 20, 0,
                       "strong_partitioned", /*roam_reads=*/false,
                       /*legacy_refresh=*/false, /*freshness_routing=*/false,
                       /*num_partitions=*/4, /*partition_replication=*/2},
        PropertyParams{session::Guarantee::kStrongSessionSI, 4, 4, 25, 0,
                       "session_partitioned_legacy", /*roam_reads=*/false,
                       /*legacy_refresh=*/true, /*freshness_routing=*/false,
                       /*num_partitions=*/4, /*partition_replication=*/2},
        PropertyParams{session::Guarantee::kStrongSessionSI, 4, 4, 25, 20,
                       "session_partitioned_routed", /*roam_reads=*/false,
                       /*legacy_refresh=*/false, /*freshness_routing=*/true,
                       /*num_partitions=*/4, /*partition_replication=*/2},
        // End-to-end over real loopback sockets: the same guarantees must
        // hold when propagation crosses the kernel TCP stack.
        PropertyParams{session::Guarantee::kStrongSessionSI, 3, 6, 30, 0,
                       "session_tcp", /*roam_reads=*/false,
                       /*legacy_refresh=*/false, /*freshness_routing=*/false,
                       /*num_partitions=*/1, /*partition_replication=*/0,
                       /*transport_tcp=*/true},
        PropertyParams{session::Guarantee::kWeakSI, 2, 4, 30, 40,
                       "weak_tcp", /*roam_reads=*/false,
                       /*legacy_refresh=*/false, /*freshness_routing=*/false,
                       /*num_partitions=*/1, /*partition_replication=*/0,
                       /*transport_tcp=*/true},
        PropertyParams{session::Guarantee::kStrongSI, 2, 3, 20, 0,
                       "strong_tcp", /*roam_reads=*/false,
                       /*legacy_refresh=*/false, /*freshness_routing=*/false,
                       /*num_partitions=*/1, /*partition_replication=*/0,
                       /*transport_tcp=*/true},
        PropertyParams{session::Guarantee::kStrongSessionSI, 4, 4, 25, 0,
                       "session_partitioned_tcp", /*roam_reads=*/false,
                       /*legacy_refresh=*/false, /*freshness_routing=*/false,
                       /*num_partitions=*/4, /*partition_replication=*/2,
                       /*transport_tcp=*/true}),
    [](const ::testing::TestParamInfo<PropertyParams>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace system
}  // namespace lazysi
