// Multi-process deployment tests: fork/exec real lazysi_server processes
// (binary path from the LAZYSI_SERVER_BIN environment variable, wired up by
// CMake), drive them through the client wire API over loopback TCP, and
// exercise the failure path the in-process suites cannot: kill -9 of a
// secondary process followed by a fresh process resyncing via the
// replication handshake's full-log replay (AttachSinkAt).

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "system/remote_client.h"
#include "system/wire_api.h"

namespace lazysi {
namespace system {
namespace {

using namespace std::chrono_literals;

std::string ServerBinary() {
  const char* bin = std::getenv("LAZYSI_SERVER_BIN");
  return bin != nullptr ? bin : "";
}

/// One child lazysi_server process. Ports are ephemeral and discovered
/// through the --port-file handshake.
class ServerProcess {
 public:
  ServerProcess() = default;
  ~ServerProcess() { Terminate(); }

  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;

  /// Spawns `role` ("primary"/"secondary"); secondaries dial `primary_repl`.
  /// `extra` is appended verbatim (e.g. "--data-dir=...", "--repl-port=...").
  bool Spawn(const std::string& role, std::uint16_t primary_repl = 0,
             int site_id = 1, std::vector<std::string> extra = {}) {
    static int counter = 0;
    port_file_ = testing::TempDir() + "lazysi_ports_" +
                 std::to_string(::getpid()) + "_" + std::to_string(counter++);
    std::remove(port_file_.c_str());

    std::vector<std::string> args = {ServerBinary(), "--role=" + role,
                                     "--port-file=" + port_file_};
    if (role == "secondary") {
      args.push_back("--primary-port=" + std::to_string(primary_repl));
      args.push_back("--site-id=" + std::to_string(site_id));
    }
    for (auto& a : extra) args.push_back(std::move(a));
    std::vector<char*> argv;
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    pid_ = ::fork();
    if (pid_ == 0) {
      ::execv(argv[0], argv.data());
      ::_exit(127);  // exec failed
    }
    if (pid_ < 0) return false;
    return WaitForPorts();
  }

  /// kill -9: no shutdown handshake, no flushing — the crash the paper's
  /// Section 3.4 recovery machinery is for.
  void Kill9() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    Reap();
  }

  /// Orderly SIGTERM shutdown; returns the exit code (-1 on timeout/signal).
  int Terminate() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    return Reap();
  }

  std::uint16_t client_port() const { return client_port_; }
  std::uint16_t repl_port() const { return repl_port_; }
  pid_t pid() const { return pid_; }

 private:
  bool WaitForPorts() {
    for (int i = 0; i < 500; ++i) {  // up to 10 s
      std::ifstream in(port_file_);
      unsigned client = 0;
      unsigned repl = 0;
      if (in >> client >> repl && client != 0) {
        client_port_ = static_cast<std::uint16_t>(client);
        repl_port_ = static_cast<std::uint16_t>(repl);
        return true;
      }
      std::this_thread::sleep_for(20ms);
    }
    return false;
  }

  int Reap() {
    int status = 0;
    for (int i = 0; i < 500; ++i) {  // up to 10 s, then escalate
      const pid_t done = ::waitpid(pid_, &status, WNOHANG);
      if (done == pid_) {
        pid_ = -1;
        std::remove(port_file_.c_str());
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      }
      std::this_thread::sleep_for(20ms);
    }
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    std::remove(port_file_.c_str());
    return -1;
  }

  pid_t pid_ = -1;
  std::string port_file_;
  std::uint16_t client_port_ = 0;
  std::uint16_t repl_port_ = 0;
};

class ProcClusterTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(ServerBinary().empty())
        << "LAZYSI_SERVER_BIN not set; run via ctest";
  }

  /// Runs `n` single-key update transactions at the primary through
  /// `session`, returning the last commit's primary timestamp.
  Timestamp PutN(RemoteSite* primary, RemoteSession* session, int n,
                 const std::string& tag, int base = 0) {
    Timestamp last = 0;
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(session->Begin(primary, /*read_only=*/false).ok());
      EXPECT_TRUE(primary
                      ->Put("key-" + std::to_string(base + i),
                            tag + "-" + std::to_string(base + i))
                      .ok());
      auto seq = session->Commit(primary);
      EXPECT_TRUE(seq.ok());
      if (seq.ok()) last = *seq;
    }
    return last;
  }
};

TEST_F(ProcClusterTest, ReplicatesAcrossProcesses) {
  ServerProcess primary_proc;
  ASSERT_TRUE(primary_proc.Spawn("primary"));
  ServerProcess sec1;
  ServerProcess sec2;
  ASSERT_TRUE(sec1.Spawn("secondary", primary_proc.repl_port(), 1));
  ASSERT_TRUE(sec2.Spawn("secondary", primary_proc.repl_port(), 2));

  RemoteSite primary;
  ASSERT_TRUE(primary.Connect("127.0.0.1", primary_proc.client_port()).ok());
  RemoteSession session;
  PutN(&primary, &session, 30, "v");

  // Strong session SI across sites: a read-only transaction begun with
  // seq(c) observes every update this session committed, on either replica.
  for (ServerProcess* proc : {&sec1, &sec2}) {
    RemoteSite replica;
    ASSERT_TRUE(replica.Connect("127.0.0.1", proc->client_port()).ok());
    auto prefix = session.Begin(&replica, /*read_only=*/true);
    ASSERT_TRUE(prefix.ok()) << prefix.status();
    EXPECT_GE(*prefix, session.seq());
    for (int i = 0; i < 30; ++i) {
      auto value = replica.Get("key-" + std::to_string(i));
      ASSERT_TRUE(value.ok()) << value.status();
      EXPECT_EQ(*value, "v-" + std::to_string(i));
    }
    auto rows = replica.Scan("key-", "key-~");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 30u);
    EXPECT_TRUE(replica.Commit().ok());
  }

  EXPECT_EQ(sec1.Terminate(), 0);
  EXPECT_EQ(sec2.Terminate(), 0);
  EXPECT_EQ(primary_proc.Terminate(), 0);
}

TEST_F(ProcClusterTest, SecondaryRejectsUpdates) {
  ServerProcess primary_proc;
  ASSERT_TRUE(primary_proc.Spawn("primary"));
  ServerProcess sec;
  ASSERT_TRUE(sec.Spawn("secondary", primary_proc.repl_port()));

  RemoteSite replica;
  ASSERT_TRUE(replica.Connect("127.0.0.1", sec.client_port()).ok());
  auto begin = replica.Begin(/*read_only=*/false);
  EXPECT_FALSE(begin.ok());
  EXPECT_EQ(begin.status().code(), StatusCode::kFailedPrecondition);

  EXPECT_EQ(sec.Terminate(), 0);
  EXPECT_EQ(primary_proc.Terminate(), 0);
}

TEST_F(ProcClusterTest, WriteConflictSurfacesOverTheWire) {
  ServerProcess primary_proc;
  ASSERT_TRUE(primary_proc.Spawn("primary"));

  RemoteSite a;
  RemoteSite b;
  ASSERT_TRUE(a.Connect("127.0.0.1", primary_proc.client_port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", primary_proc.client_port()).ok());
  ASSERT_TRUE(a.Begin(false).ok());
  ASSERT_TRUE(b.Begin(false).ok());
  ASSERT_TRUE(a.Put("contended", "from-a").ok());
  ASSERT_TRUE(b.Put("contended", "from-b").ok());
  ASSERT_TRUE(a.Commit().ok());
  auto second = b.Commit();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kWriteConflict);

  EXPECT_EQ(primary_proc.Terminate(), 0);
}

TEST_F(ProcClusterTest, KillNineSecondaryResyncsFromScratch) {
  ServerProcess primary_proc;
  ASSERT_TRUE(primary_proc.Spawn("primary"));
  ServerProcess sec;
  ASSERT_TRUE(sec.Spawn("secondary", primary_proc.repl_port()));

  RemoteSite primary;
  ASSERT_TRUE(primary.Connect("127.0.0.1", primary_proc.client_port()).ok());
  RemoteSession session;
  PutN(&primary, &session, 25, "v", 0);

  {
    RemoteSite replica;
    ASSERT_TRUE(replica.Connect("127.0.0.1", sec.client_port()).ok());
    ASSERT_TRUE(replica.WaitSeq(session.seq()).ok());
  }

  // Crash the secondary outright, then keep committing while it is gone.
  sec.Kill9();
  PutN(&primary, &session, 25, "v", 25);

  // A fresh process has an empty database: its HELLO carries expected_seq 0
  // and the primary answers with a full log replay (AttachSinkAt(0)).
  ServerProcess fresh;
  ASSERT_TRUE(fresh.Spawn("secondary", primary_proc.repl_port(), 2));
  RemoteSite replica;
  ASSERT_TRUE(replica.Connect("127.0.0.1", fresh.client_port()).ok());
  auto prefix = session.Begin(&replica, /*read_only=*/true);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  for (int i = 0; i < 50; ++i) {
    auto value = replica.Get("key-" + std::to_string(i));
    ASSERT_TRUE(value.ok()) << "key-" << i << ": " << value.status();
    EXPECT_EQ(*value, "v-" + std::to_string(i));
  }
  EXPECT_TRUE(replica.Commit().ok());

  auto stats = replica.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->role, wire_api::kRoleSecondary);
  EXPECT_GE(stats->applied_seq, session.seq());

  EXPECT_EQ(fresh.Terminate(), 0);
  EXPECT_EQ(primary_proc.Terminate(), 0);
}

TEST_F(ProcClusterTest, PrimaryKillNineRecoversAckedCommits) {
  const std::string data_dir = testing::TempDir() + "lazysi_primary_data_" +
                               std::to_string(::getpid());
  ServerProcess primary_proc;
  ASSERT_TRUE(primary_proc.Spawn("primary", 0, 1,
                                 {"--data-dir=" + data_dir,
                                  "--fsync-mode=group",
                                  "--checkpoint-interval-ms=100"}));
  const std::uint16_t repl_port = primary_proc.repl_port();
  ServerProcess sec;
  ASSERT_TRUE(sec.Spawn("secondary", repl_port));

  RemoteSite primary;
  ASSERT_TRUE(primary.Connect("127.0.0.1", primary_proc.client_port()).ok());
  RemoteSession session;
  PutN(&primary, &session, 40, "v", 0);
  const Timestamp acked = session.seq();

  {
    RemoteSite replica;
    ASSERT_TRUE(replica.Connect("127.0.0.1", sec.client_port()).ok());
    ASSERT_TRUE(replica.WaitSeq(acked).ok());
  }

  // Crash the primary outright. Every Commit above returned OK, so the
  // group-commit ack rule guarantees all 40 transactions are on disk.
  primary_proc.Kill9();

  // Restart from the same data directory, pinning the replication port so
  // the surviving secondary's receiver reconnects on its own. Recovery reads
  // manifest + checkpoint + log suffix and preserves commit timestamps, so
  // the session's seq(c) stays meaningful across the restart.
  ServerProcess restarted;
  ASSERT_TRUE(restarted.Spawn("primary", 0, 1,
                              {"--data-dir=" + data_dir,
                               "--fsync-mode=group",
                               "--checkpoint-interval-ms=100",
                               "--repl-port=" + std::to_string(repl_port)}));

  RemoteSite primary2;
  ASSERT_TRUE(primary2.Connect("127.0.0.1", restarted.client_port()).ok());
  {
    ASSERT_TRUE(primary2.Begin(/*read_only=*/true).ok());
    for (int i = 0; i < 40; ++i) {
      auto value = primary2.Get("key-" + std::to_string(i));
      ASSERT_TRUE(value.ok()) << "key-" << i << ": " << value.status();
      EXPECT_EQ(*value, "v-" + std::to_string(i));
    }
    EXPECT_TRUE(primary2.Commit().ok());
  }

  // The restarted primary keeps accepting updates with fresh timestamps
  // above everything restored; the session carries its seq across.
  PutN(&primary2, &session, 10, "v", 40);

  // The surviving secondary resyncs through the reliable channel's
  // reconnect handshake and converges on the full 50-key state.
  RemoteSite replica;
  ASSERT_TRUE(replica.Connect("127.0.0.1", sec.client_port()).ok());
  ASSERT_TRUE(replica.WaitSeq(session.seq()).ok());
  auto prefix = session.Begin(&replica, /*read_only=*/true);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  for (int i = 0; i < 50; ++i) {
    auto value = replica.Get("key-" + std::to_string(i));
    ASSERT_TRUE(value.ok()) << "key-" << i << ": " << value.status();
    EXPECT_EQ(*value, "v-" + std::to_string(i));
  }
  EXPECT_TRUE(replica.Commit().ok());

  // Byte-for-byte convergence: order-independent content hashes match.
  auto primary_stats = primary2.Stats();
  auto replica_stats = replica.Stats();
  ASSERT_TRUE(primary_stats.ok());
  ASSERT_TRUE(replica_stats.ok());
  EXPECT_EQ(primary_stats->content_hash, replica_stats->content_hash);
  EXPECT_NE(primary_stats->content_hash, 0u);

  EXPECT_EQ(sec.Terminate(), 0);
  EXPECT_EQ(restarted.Terminate(), 0);
  std::filesystem::remove_all(data_dir);
}

/// Thread count of another process, from /proc/<pid>/status.
int ThreadsOf(pid_t pid) {
  std::ifstream status("/proc/" + std::to_string(pid) + "/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::stoi(line.substr(sizeof("Threads:") - 1));
    }
  }
  return -1;
}

TEST_F(ProcClusterTest, FanOutKeepsPrimaryThreadCountFlat) {
  // The reactor's scaling contract, observed from outside the process: a
  // primary serving 16 secondary streams must run the same thread count as
  // one serving a single stream. The pre-reactor transport spent ~3 threads
  // per connection, which this would catch immediately.
  ServerProcess primary_proc;
  ASSERT_TRUE(primary_proc.Spawn("primary"));

  RemoteSite primary;
  ASSERT_TRUE(primary.Connect("127.0.0.1", primary_proc.client_port()).ok());
  RemoteSession session;
  PutN(&primary, &session, 20, "v");

  std::vector<std::unique_ptr<ServerProcess>> secondaries;
  auto add_secondary = [&](int site_id) {
    secondaries.push_back(std::make_unique<ServerProcess>());
    ASSERT_TRUE(secondaries.back()->Spawn("secondary",
                                          primary_proc.repl_port(), site_id));
    RemoteSite replica;
    ASSERT_TRUE(
        replica.Connect("127.0.0.1", secondaries.back()->client_port()).ok());
    ASSERT_TRUE(replica.WaitSeq(session.seq()).ok());
  };

  add_secondary(1);
  const int threads_with_one = ThreadsOf(primary_proc.pid());
  ASSERT_GT(threads_with_one, 0);

  for (int site = 2; site <= 16; ++site) add_secondary(site);
  const int threads_with_sixteen = ThreadsOf(primary_proc.pid());
  ASSERT_GT(threads_with_sixteen, 0);

  // 15 extra connections, zero extra threads (slack of 2 for runtime
  // helpers that may appear lazily — far below even one thread per conn).
  EXPECT_LE(threads_with_sixteen - threads_with_one, 2)
      << "1 secondary: " << threads_with_one
      << " threads; 16 secondaries: " << threads_with_sixteen;

  // The stats wire agrees about the fan-out and the batched frames.
  auto stats = primary.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->role, wire_api::kRolePrimary);
  EXPECT_GE(stats->wire_connections, 16u);
  EXPECT_GT(stats->wire_batch_frames, 0u);
  EXPECT_GT(stats->wire_records, 0u);
  EXPECT_GT(stats->wire_bytes, 0u);

  for (auto& sec : secondaries) EXPECT_EQ(sec->Terminate(), 0);
  EXPECT_EQ(primary_proc.Terminate(), 0);
}

TEST_F(ProcClusterTest, SessionBeginBlocksUntilSecondaryCatchesUp) {
  ServerProcess primary_proc;
  ASSERT_TRUE(primary_proc.Spawn("primary"));

  RemoteSite primary;
  ASSERT_TRUE(primary.Connect("127.0.0.1", primary_proc.client_port()).ok());
  RemoteSession session;
  PutN(&primary, &session, 40, "v");

  // Start the secondary only after the updates exist: its first snapshot
  // trails the session, so the session's Begin must block on WaitForSeq
  // until the replayed prefix reaches seq(c) — not return a stale snapshot.
  ServerProcess sec;
  ASSERT_TRUE(sec.Spawn("secondary", primary_proc.repl_port()));
  RemoteSite replica;
  ASSERT_TRUE(replica.Connect("127.0.0.1", sec.client_port()).ok());
  auto prefix = session.Begin(&replica, /*read_only=*/true);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  EXPECT_GE(*prefix, session.seq());
  auto value = replica.Get("key-39");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "v-39");
  EXPECT_TRUE(replica.Commit().ok());

  EXPECT_EQ(sec.Terminate(), 0);
  EXPECT_EQ(primary_proc.Terminate(), 0);
}

}  // namespace
}  // namespace system
}  // namespace lazysi
