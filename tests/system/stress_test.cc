// Stress: sustained mixed load with a secondary failing and recovering
// mid-flight. Checks liveness (no deadlocks/hangs), end-state convergence,
// and that the surviving secondary's guarantees never degraded.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "history/completeness.h"
#include "system/replicated_system.h"

namespace lazysi {
namespace system {
namespace {

TEST(StressTest, FailureUnderSustainedLoad) {
  SystemConfig config;
  config.num_secondaries = 2;
  config.guarantee = session::Guarantee::kStrongSessionSI;
  config.read_block_timeout = std::chrono::milliseconds(30000);
  ReplicatedSystem sys(config);
  sys.Start();

  std::atomic<bool> stop{false};
  std::atomic<long> committed{0};
  std::vector<std::thread> clients;
  // All clients bind to the surviving secondary (index 1); secondary 0 is
  // the one that crashes.
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(9000 + c);
      auto conn = sys.ConnectTo(1);
      while (!stop) {
        if (rng.Bernoulli(0.3)) {
          Status s = conn->ExecuteUpdate(
              [&](SystemTransaction& t) -> Status {
                return t.Put("c" + std::to_string(c) + "/k" +
                                 std::to_string(rng.Next(50)),
                             std::to_string(rng.Next(1000)));
              },
              /*max_attempts=*/50);
          if (s.ok()) ++committed;
        } else {
          Status s = conn->ExecuteRead([&](SystemTransaction& t) -> Status {
            (void)t.Get("c" + std::to_string(c) + "/k" +
                        std::to_string(rng.Next(50)));
            return Status::OK();
          });
          ASSERT_TRUE(s.ok()) << s;
        }
      }
    });
  }

  // Fail and recover secondary 0 twice while the load runs.
  for (int cycle = 0; cycle < 2; ++cycle) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_TRUE(sys.FailSecondary(0).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    // Recovery requires a quiesced checkpoint; momentarily drain.
    // (Clients keep running: WaitForReplication only waits for what has
    // committed so far; the checkpoint itself is cut atomically underneath.
    // For strictness we tolerate a FailedPrecondition and retry.)
    Status s;
    for (int attempt = 0; attempt < 20; ++attempt) {
      s = sys.RecoverSecondary(0);
      if (s.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_TRUE(s.ok()) << s;
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  stop = true;
  for (auto& t : clients) t.join();
  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(30000)));

  EXPECT_GT(committed.load(), 50);
  // Both secondaries converged to the primary's state.
  const auto primary_state = sys.primary_db()->store()->Materialize(
      sys.primary_db()->LatestCommitTs());
  for (std::size_t i = 0; i < sys.num_secondaries(); ++i) {
    EXPECT_EQ(sys.secondary_db(i)->store()->Materialize(
                  sys.secondary_db(i)->LatestCommitTs()),
              primary_state)
        << "secondary " << i;
  }
  // The never-failed secondary's completeness held throughout.
  auto report = history::CheckCompleteness(
      sys.primary_db()->StateChainHistory(),
      sys.secondary_db(1)->StateChainHistory());
  EXPECT_TRUE(report.ok) << report.violation;
  sys.Stop();
}

}  // namespace
}  // namespace system
}  // namespace lazysi
