// Edge cases of the public client API: misuse must fail cleanly, never
// crash, deadlock or corrupt state.

#include <gtest/gtest.h>

#include "system/replicated_system.h"

namespace lazysi {
namespace system {
namespace {

TEST(ApiEdgeTest, CommitTwiceFailsCleanly) {
  ReplicatedSystem sys(SystemConfig{});
  sys.Start();
  auto client = sys.Connect();
  auto txn = client->BeginUpdate();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE((*txn)->Put("k", "v").ok());
  ASSERT_TRUE((*txn)->Commit().ok());
  EXPECT_FALSE((*txn)->Commit().ok());
  EXPECT_FALSE((*txn)->Put("k2", "v").ok());
  sys.Stop();
}

TEST(ApiEdgeTest, AbortThenCommitFails) {
  ReplicatedSystem sys(SystemConfig{});
  sys.Start();
  auto client = sys.Connect();
  auto txn = client->BeginUpdate();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE((*txn)->Put("k", "v").ok());
  (*txn)->Abort();
  EXPECT_FALSE((*txn)->Commit().ok());
  EXPECT_TRUE(sys.primary_db()->Get("k").status().IsNotFound());
  sys.Stop();
}

TEST(ApiEdgeTest, DroppedTransactionRollsBack) {
  ReplicatedSystem sys(SystemConfig{});
  sys.Start();
  auto client = sys.Connect();
  {
    auto txn = client->BeginUpdate();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put("k", "v").ok());
    // dropped without commit
  }
  EXPECT_TRUE(sys.primary_db()->Get("k").status().IsNotFound());
  sys.Stop();
}

TEST(ApiEdgeTest, ReadTimesOutWhenPipelineCannotCatchUp) {
  SystemConfig config;
  config.num_secondaries = 1;
  config.guarantee = session::Guarantee::kStrongSessionSI;
  config.read_block_timeout = std::chrono::milliseconds(100);
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.Connect();
  // Kill the refresh pipeline *before* the update commits, so seq(DBsec)
  // can deterministically never catch up. (Stopping afterwards races with
  // the refresher, which may already have applied the update.) The primary
  // commit itself is unaffected — replication is lazy.
  sys.secondary(0)->Stop();
  ASSERT_TRUE(client
                  ->ExecuteUpdate([](SystemTransaction& t) {
                    return t.Put("k", "v");
                  })
                  .ok());
  auto read = client->BeginRead();
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsTimedOut());
  sys.Stop();
}

TEST(ApiEdgeTest, ExecuteUpdateGivesUpAfterMaxAttempts) {
  ReplicatedSystem sys(SystemConfig{});
  sys.Start();
  auto a = sys.Connect();
  auto b = sys.Connect();
  ASSERT_TRUE(a->ExecuteUpdate([](SystemTransaction& t) {
                 return t.Put("contended", "0");
               }).ok());
  // Force a conflict deterministically: hold an update open in `a`, commit
  // `b`'s write to the same key in between, then commit `a`.
  auto txn_a = a->BeginUpdate();
  ASSERT_TRUE(txn_a.ok());
  ASSERT_TRUE((*txn_a)->Put("contended", "a").ok());
  ASSERT_TRUE(b->ExecuteUpdate([](SystemTransaction& t) {
                 return t.Put("contended", "b");
               }).ok());
  Status s = (*txn_a)->Commit();
  EXPECT_TRUE(s.IsWriteConflict()) << s;
  sys.Stop();
}

TEST(ApiEdgeTest, BodyErrorAbortsAndPropagates) {
  ReplicatedSystem sys(SystemConfig{});
  sys.Start();
  auto client = sys.Connect();
  Status s = client->ExecuteUpdate([](SystemTransaction& t) -> Status {
    (void)t.Put("partial", "x");
    return Status::InvalidArgument("application rejected");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(sys.primary_db()->Get("partial").status().IsNotFound());
  sys.Stop();
}

TEST(ApiEdgeTest, ConnectToOutOfRangeSecondaryIsUnavailable) {
  SystemConfig config;
  config.num_secondaries = 1;
  ReplicatedSystem sys(config);
  sys.Start();
  auto client = sys.ConnectTo(99);
  auto read = client->BeginRead();
  EXPECT_FALSE(read.ok());
  sys.Stop();
}

}  // namespace
}  // namespace system
}  // namespace lazysi
