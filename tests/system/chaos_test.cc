// Chaos stress: the full replicated system running over a transport that
// actively violates Section 3.2's assumptions (drops, duplicates,
// corruption, disconnects, all from a fixed seed), with concurrent client
// sessions on top. The reliable channel must make the faults invisible:
// zero records lost or misordered (state-hash chains and materialized
// states equal at every site), the recorded history still weak SI and
// strong session SI — while the fault counters prove the chaos actually
// happened and was repaired on the wire.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/random.h"
#include "history/completeness.h"
#include "history/si_checker.h"
#include "system/replicated_system.h"

namespace lazysi {
namespace system {
namespace {

/// One replay-engine configuration: the legacy transactional engine, the
/// serial direct-apply engine, or the parallel replay pipeline at several
/// decode/apply widths — so the chaos transport composes with every engine.
struct ChaosEngineParam {
  const char* name;
  bool direct_apply;
  std::size_t decode_threads;
  std::size_t applicator_threads;
  /// Partial replication shape; 2 secondaries / 1 partition = full.
  std::size_t secondaries = 2;
  std::size_t num_partitions = 1;
  std::size_t partition_replication = 0;
  /// Run the chaos schedule over real loopback TCP sockets (TcpLink)
  /// instead of in-process queues.
  bool tcp = false;
};

const ChaosEngineParam kChaosEngines[] = {
    {"LegacyRefresh", false, 0, 4},
    {"DirectSerial", true, 0, 4},
    {"Parallel1", true, 1, 1},
    {"Parallel2", true, 2, 2},
    {"Parallel4", true, 4, 4},
    // The chaos transport composed with partition filtering: every sink
    // sees a different filtered stream, each repaired independently.
    {"Parallel2Partitioned", true, 2, 2, 4, 4, 2},
    {"LegacyPartitioned", false, 0, 4, 4, 4, 2},
    // Same fault schedules, but the frames genuinely cross kernel loopback
    // sockets: faults are injected before the write, and the reliable
    // channel must repair them on a real wire.
    {"TcpParallel2", true, 2, 2, 2, 1, 0, /*tcp=*/true},
    {"TcpLegacy", false, 0, 4, 2, 1, 0, /*tcp=*/true},
    {"TcpParallel2Partitioned", true, 2, 2, 4, 4, 2, /*tcp=*/true},
};

class ChaosEngineTest : public ::testing::TestWithParam<ChaosEngineParam> {
 protected:
  void ApplyEngine(SystemConfig* config) const {
    config->direct_apply_refresh = GetParam().direct_apply;
    config->decode_threads = GetParam().decode_threads;
    config->applicator_threads = GetParam().applicator_threads;
    config->num_secondaries = GetParam().secondaries;
    config->num_partitions = GetParam().num_partitions;
    config->partition_replication = GetParam().partition_replication;
    config->transport_tcp = GetParam().tcp;
  }
};

std::map<std::string, std::string> RestrictToCovered(
    const std::map<std::string, std::string>& state,
    const replication::PartitionMap& map, std::size_t secondary) {
  std::map<std::string, std::string> out;
  for (const auto& entry : state) {
    if (map.CoversKey(secondary, entry.first)) out.insert(entry);
  }
  return out;
}

TEST_P(ChaosEngineTest, FaultyTransportIsInvisibleToClients) {
  SystemConfig config;
  config.guarantee = session::Guarantee::kStrongSessionSI;
  config.record_history = true;
  ApplyEngine(&config);
  config.read_block_timeout = std::chrono::milliseconds(30000);
  config.transport_faults.drop_probability = 0.10;
  config.transport_faults.duplicate_probability = 0.05;
  config.transport_faults.corrupt_probability = 0.05;
  config.transport_faults.disconnect_probability = 0.001;
  config.transport_seed = 20060912;  // VLDB'06: fixed fault schedule
  config.transport_backoff_initial = std::chrono::milliseconds(1);
  config.transport_backoff_max = std::chrono::milliseconds(20);
  ReplicatedSystem sys(config);
  sys.Start();

  constexpr int kClients = 4;
  constexpr int kTxnsPerClient = 60;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(31 * (c + 1));
      auto conn = sys.Connect();
      for (int i = 0; i < kTxnsPerClient; ++i) {
        if (rng.Bernoulli(0.5)) {
          // Mostly counter increments, with occasional deletes and voluntary
          // aborts so the replay engines see the full record mix (deleted
          // versions, abort records) across the faulty wire.
          if (rng.Bernoulli(0.05)) {
            auto txn = conn->BeginUpdate();
            ASSERT_TRUE(txn.ok()) << txn.status();
            ASSERT_TRUE(
                (*txn)->Put("k" + std::to_string(rng.Next(10)), "doomed")
                    .ok());
            (*txn)->Abort();
            continue;
          }
          const bool del = rng.Bernoulli(0.1);
          Status s = conn->ExecuteUpdate(
              [&](SystemTransaction& t) -> Status {
                const std::string key = "k" + std::to_string(rng.Next(10));
                if (del) return t.Delete(key);
                auto v = t.Get(key);
                const int cur = v.ok() ? std::stoi(*v) : 0;
                return t.Put(key, std::to_string(cur + 1));
              },
              /*max_attempts=*/50);
          ASSERT_TRUE(s.ok()) << s;
        } else {
          Status s = conn->ExecuteRead([&](SystemTransaction& t) -> Status {
            (void)t.Get("k" + std::to_string(rng.Next(10)));
            return Status::OK();
          });
          ASSERT_TRUE(s.ok()) << s;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(60000)));
  const auto stats = sys.Stats();
  sys.Stop();

  // 1. Nothing lost, nothing misordered, nothing applied twice: every
  // secondary's materialized state agrees with the primary on the keyspace
  // it replicates. Under full replication the state-hash chains must also
  // extend the primary's commit-for-commit; a partial replica's chain
  // hashes filtered write sets, so there the covered-restriction equality
  // carries the whole claim.
  const auto& map = sys.partition_map();
  const auto primary_state = sys.primary_db()->store()->Materialize(
      sys.primary_db()->LatestCommitTs());
  for (std::size_t s = 0; s < sys.num_secondaries(); ++s) {
    EXPECT_EQ(sys.secondary_db(s)->store()->Materialize(
                  sys.secondary_db(s)->LatestCommitTs()),
              RestrictToCovered(primary_state, map, s))
        << "secondary " << s;
    if (!map.partial()) {
      auto report = history::CheckCompleteness(
          sys.primary_db()->StateChainHistory(),
          sys.secondary_db(s)->StateChainHistory());
      ASSERT_TRUE(report.ok) << "secondary " << s << ": " << report.violation;
      EXPECT_EQ(sys.secondary_db(s)->StateHash(),
                sys.primary_db()->StateHash())
          << "secondary " << s;
    }
  }

  // 2. The guarantees survived: weak SI globally (Theorem 3.2) and strong
  // session SI for every session (Theorem 4.1), over the faulty wire.
  history::SIChecker checker(sys.recorder()->Snapshot());
  ASSERT_GT(checker.num_records(), 0u);
  auto weak = checker.CheckWeakSI();
  ASSERT_TRUE(weak.ok) << weak.violation;
  auto strong_session = checker.CheckStrongSessionSI();
  ASSERT_TRUE(strong_session.ok) << strong_session.violation;
  EXPECT_EQ(checker.CountSessionInversions(), 0u);

  // 3. The chaos was real and the channel had to work for this: frames were
  // dropped and corrupted, retransmission repaired them.
  std::uint64_t drops = 0, corrupts = 0, retransmits = 0, delivered = 0;
  for (const auto& sec : stats.secondaries) {
    drops += sec.link_dropped;
    corrupts += sec.link_corrupted;
    retransmits += sec.transport_retransmits;
    delivered += sec.transport_delivered;
  }
  EXPECT_GT(drops, 0u);
  EXPECT_GT(corrupts, 0u);
  EXPECT_GT(retransmits, 0u);
  EXPECT_GT(delivered, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ChaosEngineTest, ::testing::ValuesIn(kChaosEngines),
    [](const ::testing::TestParamInfo<ChaosEngineParam>& info) {
      return std::string(info.param.name);
    });

TEST(ChaosTest, DisconnectHeavyProfileResyncsThroughLog) {
  // A profile aggressive enough to force repeated disconnects; every resync
  // goes through Propagator::AttachSinkAt and must land the secondary on a
  // consistent prefix, never a torn one.
  SystemConfig config;
  config.num_secondaries = 1;
  config.transport_faults.drop_probability = 0.05;
  config.transport_faults.disconnect_probability = 0.01;
  config.transport_seed = 7;
  config.transport_backoff_initial = std::chrono::milliseconds(1);
  config.transport_backoff_max = std::chrono::milliseconds(10);
  config.transport_retransmit_cap = 3;
  ReplicatedSystem sys(config);
  sys.Start();

  auto conn = sys.ConnectTo(0);
  for (int i = 0; i < 300; ++i) {
    Status s = conn->ExecuteUpdate(
        [&](SystemTransaction& t) -> Status {
          return t.Put("k" + std::to_string(i % 17), std::to_string(i));
        },
        /*max_attempts=*/50);
    ASSERT_TRUE(s.ok()) << s;
  }
  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(60000)));
  const auto stats = sys.Stats();
  sys.Stop();

  EXPECT_EQ(sys.secondary_db(0)->StateHash(), sys.primary_db()->StateHash());
  auto report = history::CheckCompleteness(
      sys.primary_db()->StateChainHistory(),
      sys.secondary_db(0)->StateChainHistory());
  EXPECT_TRUE(report.ok) << report.violation;
  ASSERT_EQ(stats.secondaries.size(), 1u);
  EXPECT_GT(stats.secondaries[0].link_disconnects, 0u);
  EXPECT_GT(stats.secondaries[0].transport_resyncs, 0u);
}

TEST(ChaosTest, DisconnectHeavyProfileResyncsOverTcp) {
  // The disconnect-heavy schedule over real sockets: every injected
  // disconnect shuts the loopback connection down for real, and every
  // resync re-dials a fresh one before replaying through AttachSinkAt.
  SystemConfig config;
  config.num_secondaries = 1;
  config.transport_tcp = true;
  config.transport_faults.drop_probability = 0.05;
  config.transport_faults.disconnect_probability = 0.01;
  config.transport_seed = 7;
  config.transport_backoff_initial = std::chrono::milliseconds(1);
  config.transport_backoff_max = std::chrono::milliseconds(10);
  config.transport_retransmit_cap = 3;
  ReplicatedSystem sys(config);
  sys.Start();

  auto conn = sys.ConnectTo(0);
  for (int i = 0; i < 300; ++i) {
    Status s = conn->ExecuteUpdate(
        [&](SystemTransaction& t) -> Status {
          return t.Put("k" + std::to_string(i % 17), std::to_string(i));
        },
        /*max_attempts=*/50);
    ASSERT_TRUE(s.ok()) << s;
  }
  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(60000)));
  const auto stats = sys.Stats();
  sys.Stop();

  EXPECT_EQ(sys.secondary_db(0)->StateHash(), sys.primary_db()->StateHash());
  auto report = history::CheckCompleteness(
      sys.primary_db()->StateChainHistory(),
      sys.secondary_db(0)->StateChainHistory());
  EXPECT_TRUE(report.ok) << report.violation;
  ASSERT_EQ(stats.secondaries.size(), 1u);
  EXPECT_GT(stats.secondaries[0].link_disconnects, 0u);
  EXPECT_GT(stats.secondaries[0].transport_resyncs, 0u);
}

TEST_P(ChaosEngineTest, FailAndRecoverUnderChaosTransport) {
  // Section 3.4's crash/recovery cycle composed with the chaos transport:
  // the recovered secondary rejoins through a fresh link + channel attached
  // at the checkpoint, then catches up across the faulty wire.
  SystemConfig config;
  ApplyEngine(&config);
  config.transport_faults.drop_probability = 0.08;
  config.transport_faults.duplicate_probability = 0.04;
  config.transport_faults.corrupt_probability = 0.04;
  config.transport_seed = 99;
  config.transport_backoff_initial = std::chrono::milliseconds(1);
  config.transport_backoff_max = std::chrono::milliseconds(20);
  ReplicatedSystem sys(config);
  sys.Start();

  auto conn = sys.ConnectTo(1);
  auto burst = [&](int base) {
    for (int i = 0; i < 40; ++i) {
      Status s = conn->ExecuteUpdate(
          [&](SystemTransaction& t) -> Status {
            return t.Put("k" + std::to_string((base + i) % 23),
                         std::to_string(base + i));
          },
          /*max_attempts=*/50);
      ASSERT_TRUE(s.ok()) << s;
    }
  };

  burst(0);
  ASSERT_TRUE(sys.FailSecondary(0).ok());
  burst(100);
  // Recovery needs a quiescent instant at the primary; no updates in flight.
  Status s;
  for (int attempt = 0; attempt < 20; ++attempt) {
    s = sys.RecoverSecondary(0);
    if (s.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(s.ok()) << s;
  burst(200);

  ASSERT_TRUE(sys.WaitForReplication(std::chrono::milliseconds(60000)));
  sys.Stop();
  // The recovered site's hash chain is re-rooted at the checkpoint install,
  // so compare materialized states (recovery_test does the same); partial
  // replicas compare against their covered restriction.
  const auto primary_state = sys.primary_db()->store()->Materialize(
      sys.primary_db()->LatestCommitTs());
  for (std::size_t i = 0; i < sys.num_secondaries(); ++i) {
    EXPECT_EQ(sys.secondary_db(i)->store()->Materialize(
                  sys.secondary_db(i)->LatestCommitTs()),
              RestrictToCovered(primary_state, sys.partition_map(), i))
        << "secondary " << i;
  }
}

}  // namespace
}  // namespace system
}  // namespace lazysi
