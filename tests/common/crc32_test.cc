#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace lazysi {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 zero bytes (iSCSI test vector).
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8a9136aau);
  // 32 0xff bytes.
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62a8ab43u);
}

TEST(Crc32Test, SeedChainsChunks) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const auto whole = Crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const auto first = Crc32c(std::string_view(data).substr(0, split));
    EXPECT_EQ(Crc32c(std::string_view(data).substr(split), first), whole)
        << "split=" << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  const std::string data = "frame payload bytes";
  const auto good = Crc32c(data);
  for (std::size_t pos = 0; pos < data.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = data;
      bad[pos] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(bad), good) << "pos=" << pos << " bit=" << bit;
    }
  }
}

TEST(Crc32Test, TrailerRoundTrip) {
  std::string frame = "payload";
  const auto crc = Crc32c(frame);
  AppendCrc32(&frame, crc);
  ASSERT_EQ(frame.size(), 7u + 4u);
  EXPECT_EQ(ReadCrc32(frame, 7), crc);
  EXPECT_EQ(Crc32c(std::string_view(frame).substr(0, 7)), crc);
}

}  // namespace
}  // namespace lazysi
