#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace lazysi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::WriteConflict().IsWriteConflict());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::Inverted("x").IsInverted());
  EXPECT_FALSE(Status::Internal("x").ok());
  EXPECT_FALSE(Status::InvalidArgument("x").ok());
  EXPECT_FALSE(Status::FailedPrecondition("x").ok());
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::WriteConflict("key 'a' conflicts");
  EXPECT_EQ(s.message(), "key 'a' conflicts");
  EXPECT_EQ(s.ToString(), "WriteConflict: key 'a' conflicts");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kWriteConflict), "WriteConflict");
  EXPECT_EQ(StatusCodeName(StatusCode::kInverted), "Inverted");
  EXPECT_EQ(StatusCodeName(StatusCode::kTimedOut), "TimedOut");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Aborted());
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::TimedOut("waited 5s");
  EXPECT_EQ(os.str(), "TimedOut: waited 5s");
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    LAZYSI_RETURN_NOT_OK(Status::Aborted("inner"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsAborted());
  auto succeeds = []() -> Status {
    LAZYSI_RETURN_NOT_OK(Status::OK());
    return Status::NotFound();
  };
  EXPECT_TRUE(succeeds().IsNotFound());
}

}  // namespace
}  // namespace lazysi
