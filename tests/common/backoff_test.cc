#include "common/backoff.h"

#include <gtest/gtest.h>

namespace lazysi {
namespace {

using std::chrono::milliseconds;

TEST(BackoffTest, DoublesAndClamps) {
  ExponentialBackoff b(milliseconds(2), milliseconds(12));
  EXPECT_EQ(b.Next(), milliseconds(2));
  EXPECT_EQ(b.Next(), milliseconds(4));
  EXPECT_EQ(b.Next(), milliseconds(8));
  EXPECT_EQ(b.Next(), milliseconds(12));  // 16 clamped
  EXPECT_EQ(b.Next(), milliseconds(12));
}

TEST(BackoffTest, ResetReturnsToInitial) {
  ExponentialBackoff b(milliseconds(3), milliseconds(100));
  b.Next();
  b.Next();
  EXPECT_GT(b.current(), milliseconds(3));
  b.Reset();
  EXPECT_EQ(b.current(), milliseconds(3));
  EXPECT_EQ(b.Next(), milliseconds(3));
}

TEST(BackoffTest, CurrentPeeksWithoutAdvancing) {
  ExponentialBackoff b(milliseconds(5), milliseconds(50));
  EXPECT_EQ(b.current(), milliseconds(5));
  EXPECT_EQ(b.current(), milliseconds(5));
  EXPECT_EQ(b.Next(), milliseconds(5));
  EXPECT_EQ(b.current(), milliseconds(10));
}

TEST(BackoffTest, DegenerateBoundsAreSanitized) {
  // Zero/negative initial becomes 1ms; max below initial snaps to initial.
  ExponentialBackoff zero(milliseconds(0), milliseconds(10));
  EXPECT_EQ(zero.Next(), milliseconds(1));
  ExponentialBackoff inverted(milliseconds(8), milliseconds(2));
  EXPECT_EQ(inverted.Next(), milliseconds(8));
  EXPECT_EQ(inverted.Next(), milliseconds(8));
}

}  // namespace
}  // namespace lazysi
