#include "common/backoff.h"

#include <gtest/gtest.h>

namespace lazysi {
namespace {

using std::chrono::milliseconds;

TEST(BackoffTest, DoublesAndClamps) {
  ExponentialBackoff b(milliseconds(2), milliseconds(12));
  EXPECT_EQ(b.Next(), milliseconds(2));
  EXPECT_EQ(b.Next(), milliseconds(4));
  EXPECT_EQ(b.Next(), milliseconds(8));
  EXPECT_EQ(b.Next(), milliseconds(12));  // 16 clamped
  EXPECT_EQ(b.Next(), milliseconds(12));
}

TEST(BackoffTest, ResetReturnsToInitial) {
  ExponentialBackoff b(milliseconds(3), milliseconds(100));
  b.Next();
  b.Next();
  EXPECT_GT(b.current(), milliseconds(3));
  b.Reset();
  EXPECT_EQ(b.current(), milliseconds(3));
  EXPECT_EQ(b.Next(), milliseconds(3));
}

TEST(BackoffTest, CurrentPeeksWithoutAdvancing) {
  ExponentialBackoff b(milliseconds(5), milliseconds(50));
  EXPECT_EQ(b.current(), milliseconds(5));
  EXPECT_EQ(b.current(), milliseconds(5));
  EXPECT_EQ(b.Next(), milliseconds(5));
  EXPECT_EQ(b.current(), milliseconds(10));
}

TEST(BackoffTest, DegenerateBoundsAreSanitized) {
  // Zero/negative initial becomes 1ms; max below initial snaps to initial.
  ExponentialBackoff zero(milliseconds(0), milliseconds(10));
  EXPECT_EQ(zero.Next(), milliseconds(1));
  ExponentialBackoff inverted(milliseconds(8), milliseconds(2));
  EXPECT_EQ(inverted.Next(), milliseconds(8));
  EXPECT_EQ(inverted.Next(), milliseconds(8));
}

TEST(BackoffTest, JitteredStaysWithinFraction) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const auto d = Jittered(milliseconds(100), 0.2, &rng);
    EXPECT_GE(d, milliseconds(80));
    EXPECT_LE(d, milliseconds(120));
  }
}

TEST(BackoffTest, JitteredActuallyVaries) {
  // The whole point is to desynchronize a fleet: identical inputs must not
  // keep producing identical outputs.
  Rng rng(7);
  bool varied = false;
  const auto first = Jittered(milliseconds(1000), 0.5, &rng);
  for (int i = 0; i < 50 && !varied; ++i) {
    varied = Jittered(milliseconds(1000), 0.5, &rng) != first;
  }
  EXPECT_TRUE(varied);
}

TEST(BackoffTest, JitteredPassesThroughWithoutRngOrFraction) {
  Rng rng(1);
  EXPECT_EQ(Jittered(milliseconds(100), 0.0, &rng), milliseconds(100));
  EXPECT_EQ(Jittered(milliseconds(100), -1.0, &rng), milliseconds(100));
  EXPECT_EQ(Jittered(milliseconds(100), 0.3, nullptr), milliseconds(100));
}

TEST(BackoffTest, JitteredNeverReturnsBelowOneMillisecond) {
  // Tiny delays with full jitter could round to zero and turn a backoff
  // loop into a busy spin; the floor prevents that.
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(Jittered(milliseconds(1), 1.0, &rng), milliseconds(1));
  }
}

}  // namespace
}  // namespace lazysi
