#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace lazysi {
namespace {

TEST(RunningStatTest, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ConfidenceHalfWidth95(), 0.0);
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, ConfidenceIntervalFiveRuns) {
  // The paper averages five runs; df = 4 -> t = 2.776.
  RunningStat s;
  for (double x : {10.0, 11.0, 9.0, 10.5, 9.5}) s.Add(x);
  const double se = s.stddev() / std::sqrt(5.0);
  EXPECT_NEAR(s.ConfidenceHalfWidth95(), 2.776 * se, 1e-9);
}

TEST(RunningStatTest, MergeMatchesCombined) {
  Rng rng(7);
  RunningStat a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(0, 10);
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(TCriticalTest, TableValues) {
  EXPECT_NEAR(TCritical95(1), 12.706, 1e-3);
  EXPECT_NEAR(TCritical95(4), 2.776, 1e-3);
  EXPECT_NEAR(TCritical95(30), 2.042, 1e-3);
  EXPECT_NEAR(TCritical95(1000), 1.96, 1e-3);
}

TEST(HistogramTest, CountsAndMean) {
  Histogram h(0, 10, 10);
  for (double x : {0.5, 1.5, 2.5, 3.5, 9.5}) h.Add(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
}

TEST(HistogramTest, FractionAtOrBelow) {
  Histogram h(0, 10, 100);
  for (int i = 0; i < 100; ++i) h.Add(i * 0.1);  // 0.0 .. 9.9 uniform
  EXPECT_NEAR(h.FractionAtOrBelow(5.0), 0.5, 0.02);
  EXPECT_EQ(h.FractionAtOrBelow(-1), 0.0);
  EXPECT_EQ(h.FractionAtOrBelow(100), 1.0);
}

TEST(HistogramTest, OverflowUnderflow) {
  Histogram h(0, 1, 4);
  h.Add(-5);
  h.Add(0.5);
  h.Add(42);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.FractionAtOrBelow(0.9), 2.0 / 3.0, 0.2);
}

TEST(HistogramTest, QuantileRoughlyCorrect) {
  Histogram h(0, 100, 200);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Uniform(0, 100));
  EXPECT_NEAR(h.Quantile(0.5), 50, 3);
  EXPECT_NEAR(h.Quantile(0.95), 95, 3);
}

}  // namespace
}  // namespace lazysi
