#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace lazysi {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, ValueOr) {
  Result<std::string> ok("value");
  Result<std::string> err = Status::NotFound();
  EXPECT_EQ(ok.ValueOr("fallback"), "value");
  EXPECT_EQ(err.ValueOr("fallback"), "fallback");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Aborted();
    return 5;
  };
  auto outer = [&](bool fail) -> Status {
    LAZYSI_ASSIGN_OR_RETURN(int v, inner(fail));
    EXPECT_EQ(v, 5);
    return Status::OK();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_TRUE(outer(true).IsAborted());
}

}  // namespace
}  // namespace lazysi
