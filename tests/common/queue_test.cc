#include "common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace lazysi {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueueTest, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(1);
  EXPECT_EQ(q.TryPop(), 1);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseWakesConsumers) {
  BlockingQueue<int> q;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
  EXPECT_TRUE(done);
}

TEST(BlockingQueueTest, CloseDrainsRemaining) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // rejected after close
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, SizeTracksContents) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(BlockingQueueTest, PopBatchBoundsAndOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.Push(i);
  auto first = q.PopBatch(4);
  ASSERT_EQ(first.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(first[i], i);
  // A bound larger than the queue drains what is there without blocking.
  auto rest = q.PopBatch(100);
  ASSERT_EQ(rest.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(rest[i], 4 + i);
}

TEST(BlockingQueueTest, PopAllDrainsEverything) {
  BlockingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.Push(i);
  auto all = q.PopAll();
  ASSERT_EQ(all.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(all[i], i);
}

TEST(BlockingQueueTest, PopBatchBlocksUntilItemOrClose) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Push(42);
  });
  auto batch = q.PopBatch(8);  // blocks until the push lands
  producer.join();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 42);
}

TEST(BlockingQueueTest, PopAllEmptyAfterCloseSignalsShutdown) {
  BlockingQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_EQ(q.PopAll(), std::vector<int>{7});  // leftovers still drain
  EXPECT_TRUE(q.PopAll().empty());  // closed and drained -> empty batch
  EXPECT_TRUE(q.PopBatch(3).empty());
}

TEST(BlockingQueueTest, CloseWakesBlockedPopBatch) {
  BlockingQueue<int> q;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    EXPECT_TRUE(q.PopAll().empty());
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
  EXPECT_TRUE(done);
}

TEST(BlockingQueueTest, ConcurrentProducersConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 1000;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++received;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  for (int i = 2; i < 2 + kProducers; ++i) threads[i].join();
  q.Close();
  threads[0].join();
  threads[1].join();
  EXPECT_EQ(received.load(), kProducers * kPerProducer);
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BlockingQueueTest, PushAllKeepsFifoOrder) {
  BlockingQueue<int> q;
  q.Push(0);
  EXPECT_TRUE(q.PushAll(std::vector<int>{1, 2, 3}));  // move overload
  const std::vector<int> burst{4, 5};
  EXPECT_TRUE(q.PushAll(burst));  // copy overload
  for (int i = 0; i <= 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueueTest, PushAllWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&] {
    EXPECT_EQ(q.Pop(), 7);
    EXPECT_EQ(q.Pop(), 8);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(q.PushAll(std::vector<int>{7, 8}));
  consumer.join();
}

TEST(BlockingQueueTest, PushAllOnClosedQueueDropsBurst) {
  BlockingQueue<int> q;
  q.Close();
  EXPECT_FALSE(q.PushAll(std::vector<int>{1, 2}));
  EXPECT_TRUE(q.PushAll(std::vector<int>{}));  // empty burst is trivially ok
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace lazysi
