#include "common/random.h"

#include <gtest/gtest.h>

namespace lazysi {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == b.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(42);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(7.0);
  EXPECT_NEAR(sum / kN, 7.0, 0.1);
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(42);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.UniformInt(5, 15);
    ASSERT_GE(v, 5);
    ASSERT_LE(v, 15);
    saw_lo |= (v == 5);
    saw_hi |= (v == 15);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, TransactionSizeMeanIsTen) {
  // Table 1: tran_size uniform 5..15, mean 10.
  Rng rng(1);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.UniformInt(5, 15));
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(9);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.2) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kN), 0.2, 0.01);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(5);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  // Children seeded differently from each other.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.UniformInt(0, 1 << 30) == child2.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace lazysi
