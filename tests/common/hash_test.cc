#include "common/hash.h"

#include <gtest/gtest.h>

namespace lazysi {
namespace {

TEST(Fnv1aTest, KnownValues) {
  // FNV-1a 64-bit reference vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1aTest, SeedChaining) {
  const auto h1 = Fnv1a64("ab");
  const auto h2 = Fnv1a64("b", Fnv1a64("a"));
  EXPECT_EQ(h1, h2);
}

TEST(HashMixTest, OrderSensitive) {
  const auto a = HashMix(HashMix(0, 1), 2);
  const auto b = HashMix(HashMix(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(StateChainTest, SameWritesSameOrderSameChain) {
  StateChain a, b;
  for (StateChain* c : {&a, &b}) {
    c->FoldWrite("x", "1", false);
    c->SealTransaction();
    c->FoldWrite("y", "2", false);
    c->FoldWrite("z", "3", true);
    c->SealTransaction();
  }
  EXPECT_EQ(a.value(), b.value());
}

TEST(StateChainTest, DifferentCommitOrderDiverges) {
  StateChain a, b;
  a.FoldWrite("x", "1", false);
  a.SealTransaction();
  a.FoldWrite("y", "2", false);
  a.SealTransaction();

  b.FoldWrite("y", "2", false);
  b.SealTransaction();
  b.FoldWrite("x", "1", false);
  b.SealTransaction();
  EXPECT_NE(a.value(), b.value());
}

TEST(StateChainTest, DeleteFlagMatters) {
  StateChain a, b;
  a.FoldWrite("x", "", false);
  a.SealTransaction();
  b.FoldWrite("x", "", true);
  b.SealTransaction();
  EXPECT_NE(a.value(), b.value());
}

TEST(StateChainTest, TransactionBoundaryMatters) {
  // Two writes in one transaction vs the same writes in two transactions.
  StateChain a, b;
  a.FoldWrite("x", "1", false);
  a.FoldWrite("y", "2", false);
  a.SealTransaction();

  b.FoldWrite("x", "1", false);
  b.SealTransaction();
  b.FoldWrite("y", "2", false);
  b.SealTransaction();
  EXPECT_NE(a.value(), b.value());
}

}  // namespace
}  // namespace lazysi
