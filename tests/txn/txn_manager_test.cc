#include "txn/txn_manager.h"

#include <gtest/gtest.h>

#include "storage/versioned_store.h"

namespace lazysi {
namespace txn {
namespace {

class TxnManagerTest : public ::testing::Test {
 protected:
  storage::VersionedStore store_;
  TxnManager manager_{&store_};
};

TEST_F(TxnManagerTest, TimestampsMonotonic) {
  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  EXPECT_LT(t1->start_ts(), t2->start_ts());
  ASSERT_TRUE(t1->Put("a", "1").ok());
  ASSERT_TRUE(t1->Commit().ok());
  // Commit timestamp exceeds every previously issued timestamp (Sec. 2.1).
  EXPECT_GT(t1->commit_ts(), t2->start_ts());
  EXPECT_GT(t1->commit_ts(), t1->start_ts());
}

TEST_F(TxnManagerTest, StrongSIStartSeesLatestCommit) {
  auto t1 = manager_.Begin();
  ASSERT_TRUE(t1->Put("a", "1").ok());
  ASSERT_TRUE(t1->Commit().ok());
  // Strong SI (Definition 2.1): a transaction beginning after t1's commit
  // must see t1's update — its snapshot covers t1's commit timestamp. The
  // read-only begin is lock-free and consumes no clock tick, so its
  // start_ts equals its snapshot rather than a fresh clock value.
  auto t2 = manager_.Begin(/*read_only=*/true);
  EXPECT_GE(t2->snapshot_ts(), t1->commit_ts());
  EXPECT_EQ(t2->start_ts(), t2->snapshot_ts());
  EXPECT_EQ(t2->Get("a").value(), "1");
  // Update transactions still draw start timestamps from the clock, above
  // every issued commit timestamp.
  auto t3 = manager_.Begin();
  EXPECT_GT(t3->start_ts(), t1->commit_ts());
}

TEST_F(TxnManagerTest, SnapshotIgnoresLaterCommits) {
  auto writer0 = manager_.Begin();
  ASSERT_TRUE(writer0->Put("a", "0").ok());
  ASSERT_TRUE(writer0->Commit().ok());

  auto reader = manager_.Begin(/*read_only=*/true);
  auto writer = manager_.Begin();
  ASSERT_TRUE(writer->Put("a", "1").ok());
  ASSERT_TRUE(writer->Commit().ok());
  // Reader's snapshot predates writer's commit.
  EXPECT_EQ(reader->Get("a").value(), "0");
  // A new reader sees the new value.
  EXPECT_EQ(manager_.Begin(true)->Get("a").value(), "1");
}

TEST_F(TxnManagerTest, FirstCommitterWins) {
  auto base = manager_.Begin();
  ASSERT_TRUE(base->Put("x", "0").ok());
  ASSERT_TRUE(base->Commit().ok());

  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  ASSERT_TRUE(t1->Put("x", "1").ok());
  ASSERT_TRUE(t2->Put("x", "2").ok());
  ASSERT_TRUE(t1->Commit().ok());
  Status s = t2->Commit();
  EXPECT_TRUE(s.IsWriteConflict()) << s;
  EXPECT_EQ(t2->state(), Transaction::State::kAborted);
  EXPECT_EQ(manager_.Begin(true)->Get("x").value(), "1");
}

TEST_F(TxnManagerTest, DisjointWritesBothCommit) {
  // Concurrent transactions without write-write conflict both commit under
  // SI (Section 2.4, the T1/T2 example from the introduction).
  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  ASSERT_TRUE(t1->Put("x", "1").ok());
  ASSERT_TRUE(t2->Put("y", "2").ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());
}

TEST_F(TxnManagerTest, WriteSkewAllowed) {
  // P5 is possible under SI: T1 reads x,y writes y; T2 reads x,y writes x.
  auto init = manager_.Begin();
  ASSERT_TRUE(init->Put("x", "1").ok());
  ASSERT_TRUE(init->Put("y", "1").ok());
  ASSERT_TRUE(init->Commit().ok());

  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  EXPECT_TRUE(t1->Get("x").ok());
  EXPECT_TRUE(t1->Get("y").ok());
  EXPECT_TRUE(t2->Get("x").ok());
  EXPECT_TRUE(t2->Get("y").ok());
  ASSERT_TRUE(t1->Put("y", "t1").ok());
  ASSERT_TRUE(t2->Put("x", "t2").ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());  // no write-write conflict -> both commit
}

TEST_F(TxnManagerTest, SequentialWritersNoConflict) {
  auto t1 = manager_.Begin();
  ASSERT_TRUE(t1->Put("x", "1").ok());
  ASSERT_TRUE(t1->Commit().ok());
  auto t2 = manager_.Begin();
  ASSERT_TRUE(t2->Put("x", "2").ok());
  EXPECT_TRUE(t2->Commit().ok());  // t2 started after t1 committed
}

TEST_F(TxnManagerTest, AbortDiscardsWrites) {
  auto t = manager_.Begin();
  ASSERT_TRUE(t->Put("a", "1").ok());
  t->Abort();
  EXPECT_EQ(t->state(), Transaction::State::kAborted);
  EXPECT_TRUE(manager_.Begin(true)->Get("a").status().IsNotFound());
  EXPECT_EQ(manager_.AbortedCount(), 1u);
}

TEST_F(TxnManagerTest, ReadOnlyCommitAlwaysSucceeds) {
  auto t = manager_.Begin(/*read_only=*/true);
  EXPECT_TRUE(t->Get("missing").status().IsNotFound());
  EXPECT_TRUE(t->Commit().ok());
  EXPECT_EQ(t->commit_ts(), kInvalidTimestamp);  // installs no state
}

TEST_F(TxnManagerTest, EmptyUpdateTxnGetsCommitTs) {
  // Update-declared transactions emit commit records even when empty, so
  // their refresh transactions resolve at the secondaries.
  auto t = manager_.Begin(/*read_only=*/false);
  EXPECT_TRUE(t->Commit().ok());
  EXPECT_NE(t->commit_ts(), kInvalidTimestamp);
}

TEST_F(TxnManagerTest, CountersTrackOutcomes) {
  for (int i = 0; i < 3; ++i) {
    auto t = manager_.Begin();
    ASSERT_TRUE(t->Put("k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  ASSERT_TRUE(t1->Put("c", "1").ok());
  ASSERT_TRUE(t2->Put("c", "2").ok());
  ASSERT_TRUE(t1->Commit().ok());
  ASSERT_FALSE(t2->Commit().ok());
  EXPECT_EQ(manager_.CommittedCount(), 4u);
  EXPECT_EQ(manager_.AbortedCount(), 1u);
  EXPECT_EQ(manager_.LatestCommitTs(), t1->commit_ts());
}

TEST_F(TxnManagerTest, DroppedActiveHandleAborts) {
  {
    auto t = manager_.Begin();
    ASSERT_TRUE(t->Put("a", "1").ok());
    // RAII abort on scope exit.
  }
  EXPECT_EQ(manager_.AbortedCount(), 1u);
  EXPECT_TRUE(manager_.Begin(true)->Get("a").status().IsNotFound());
}

}  // namespace
}  // namespace txn
}  // namespace lazysi
