#include "txn/txn_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/versioned_store.h"

namespace lazysi {
namespace txn {
namespace {

class TxnManagerTest : public ::testing::Test {
 protected:
  storage::VersionedStore store_;
  TxnManager manager_{&store_};
};

TEST_F(TxnManagerTest, TimestampsMonotonic) {
  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  EXPECT_LT(t1->start_ts(), t2->start_ts());
  ASSERT_TRUE(t1->Put("a", "1").ok());
  ASSERT_TRUE(t1->Commit().ok());
  // Commit timestamp exceeds every previously issued timestamp (Sec. 2.1).
  EXPECT_GT(t1->commit_ts(), t2->start_ts());
  EXPECT_GT(t1->commit_ts(), t1->start_ts());
}

TEST_F(TxnManagerTest, StrongSIStartSeesLatestCommit) {
  auto t1 = manager_.Begin();
  ASSERT_TRUE(t1->Put("a", "1").ok());
  ASSERT_TRUE(t1->Commit().ok());
  // Strong SI (Definition 2.1): a transaction beginning after t1's commit
  // must see t1's update — its snapshot covers t1's commit timestamp. The
  // read-only begin is lock-free and consumes no clock tick, so its
  // start_ts equals its snapshot rather than a fresh clock value.
  auto t2 = manager_.Begin(/*read_only=*/true);
  EXPECT_GE(t2->snapshot_ts(), t1->commit_ts());
  EXPECT_EQ(t2->start_ts(), t2->snapshot_ts());
  EXPECT_EQ(t2->Get("a").value(), "1");
  // Update transactions still draw start timestamps from the clock, above
  // every issued commit timestamp.
  auto t3 = manager_.Begin();
  EXPECT_GT(t3->start_ts(), t1->commit_ts());
}

TEST_F(TxnManagerTest, SnapshotIgnoresLaterCommits) {
  auto writer0 = manager_.Begin();
  ASSERT_TRUE(writer0->Put("a", "0").ok());
  ASSERT_TRUE(writer0->Commit().ok());

  auto reader = manager_.Begin(/*read_only=*/true);
  auto writer = manager_.Begin();
  ASSERT_TRUE(writer->Put("a", "1").ok());
  ASSERT_TRUE(writer->Commit().ok());
  // Reader's snapshot predates writer's commit.
  EXPECT_EQ(reader->Get("a").value(), "0");
  // A new reader sees the new value.
  EXPECT_EQ(manager_.Begin(true)->Get("a").value(), "1");
}

TEST_F(TxnManagerTest, FirstCommitterWins) {
  auto base = manager_.Begin();
  ASSERT_TRUE(base->Put("x", "0").ok());
  ASSERT_TRUE(base->Commit().ok());

  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  ASSERT_TRUE(t1->Put("x", "1").ok());
  ASSERT_TRUE(t2->Put("x", "2").ok());
  ASSERT_TRUE(t1->Commit().ok());
  Status s = t2->Commit();
  EXPECT_TRUE(s.IsWriteConflict()) << s;
  EXPECT_EQ(t2->state(), Transaction::State::kAborted);
  EXPECT_EQ(manager_.Begin(true)->Get("x").value(), "1");
}

TEST_F(TxnManagerTest, DisjointWritesBothCommit) {
  // Concurrent transactions without write-write conflict both commit under
  // SI (Section 2.4, the T1/T2 example from the introduction).
  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  ASSERT_TRUE(t1->Put("x", "1").ok());
  ASSERT_TRUE(t2->Put("y", "2").ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());
}

TEST_F(TxnManagerTest, WriteSkewAllowed) {
  // P5 is possible under SI: T1 reads x,y writes y; T2 reads x,y writes x.
  auto init = manager_.Begin();
  ASSERT_TRUE(init->Put("x", "1").ok());
  ASSERT_TRUE(init->Put("y", "1").ok());
  ASSERT_TRUE(init->Commit().ok());

  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  EXPECT_TRUE(t1->Get("x").ok());
  EXPECT_TRUE(t1->Get("y").ok());
  EXPECT_TRUE(t2->Get("x").ok());
  EXPECT_TRUE(t2->Get("y").ok());
  ASSERT_TRUE(t1->Put("y", "t1").ok());
  ASSERT_TRUE(t2->Put("x", "t2").ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());  // no write-write conflict -> both commit
}

TEST_F(TxnManagerTest, SequentialWritersNoConflict) {
  auto t1 = manager_.Begin();
  ASSERT_TRUE(t1->Put("x", "1").ok());
  ASSERT_TRUE(t1->Commit().ok());
  auto t2 = manager_.Begin();
  ASSERT_TRUE(t2->Put("x", "2").ok());
  EXPECT_TRUE(t2->Commit().ok());  // t2 started after t1 committed
}

TEST_F(TxnManagerTest, AbortDiscardsWrites) {
  auto t = manager_.Begin();
  ASSERT_TRUE(t->Put("a", "1").ok());
  t->Abort();
  EXPECT_EQ(t->state(), Transaction::State::kAborted);
  EXPECT_TRUE(manager_.Begin(true)->Get("a").status().IsNotFound());
  EXPECT_EQ(manager_.AbortedCount(), 1u);
}

TEST_F(TxnManagerTest, ReadOnlyCommitAlwaysSucceeds) {
  auto t = manager_.Begin(/*read_only=*/true);
  EXPECT_TRUE(t->Get("missing").status().IsNotFound());
  EXPECT_TRUE(t->Commit().ok());
  EXPECT_EQ(t->commit_ts(), kInvalidTimestamp);  // installs no state
}

TEST_F(TxnManagerTest, EmptyUpdateTxnGetsCommitTs) {
  // Update-declared transactions emit commit records even when empty, so
  // their refresh transactions resolve at the secondaries.
  auto t = manager_.Begin(/*read_only=*/false);
  EXPECT_TRUE(t->Commit().ok());
  EXPECT_NE(t->commit_ts(), kInvalidTimestamp);
}

TEST_F(TxnManagerTest, CountersTrackOutcomes) {
  for (int i = 0; i < 3; ++i) {
    auto t = manager_.Begin();
    ASSERT_TRUE(t->Put("k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  auto t1 = manager_.Begin();
  auto t2 = manager_.Begin();
  ASSERT_TRUE(t1->Put("c", "1").ok());
  ASSERT_TRUE(t2->Put("c", "2").ok());
  ASSERT_TRUE(t1->Commit().ok());
  ASSERT_FALSE(t2->Commit().ok());
  EXPECT_EQ(manager_.CommittedCount(), 4u);
  EXPECT_EQ(manager_.AbortedCount(), 1u);
  EXPECT_EQ(manager_.LatestCommitTs(), t1->commit_ts());
}

TEST_F(TxnManagerTest, ReaderSlotBanksGrowBeyondOneBank) {
  // More concurrent read-only transactions than one 256-slot bank holds:
  // begins must stay on the lock-free slot path by growing the bank chain
  // instead of falling back to the mutex-guarded multiset.
  ASSERT_TRUE([&] {
    auto t = manager_.Begin();
    return t->Put("a", "1").ok() && t->Commit().ok();
  }());
  EXPECT_EQ(manager_.slot_bank_count(), 1u);

  constexpr std::size_t kReaders = 600;  // needs at least three banks
  std::vector<std::unique_ptr<Transaction>> readers;
  readers.reserve(kReaders);
  for (std::size_t i = 0; i < kReaders; ++i) {
    readers.push_back(manager_.Begin(/*read_only=*/true));
  }
  EXPECT_GE(manager_.slot_bank_count(), 3u);

  // Every held snapshot — including those parked in grown banks — pins the
  // GC horizon; a commit after the begins must not raise it.
  const Timestamp snapshot = readers.front()->snapshot_ts();
  for (const auto& r : readers) EXPECT_EQ(r->snapshot_ts(), snapshot);
  {
    auto t = manager_.Begin();
    ASSERT_TRUE(t->Put("a", "2").ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  EXPECT_EQ(manager_.MinActiveSnapshot(), snapshot);
  // Readers in late banks still read their snapshot, not the new commit.
  auto v = readers.back()->Get("a");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");

  for (auto& r : readers) ASSERT_TRUE(r->Commit().ok());
  readers.clear();
  EXPECT_GT(manager_.MinActiveSnapshot(), snapshot);

  // Banks are never unlinked; a second wave reuses the freed slots without
  // growing the chain further.
  const std::size_t banks = manager_.slot_bank_count();
  for (std::size_t i = 0; i < kReaders; ++i) {
    readers.push_back(manager_.Begin(/*read_only=*/true));
  }
  EXPECT_EQ(manager_.slot_bank_count(), banks);
  for (auto& r : readers) ASSERT_TRUE(r->Commit().ok());
}

TEST_F(TxnManagerTest, ConcurrentReadersAcrossBankGrowth) {
  // Hammer the claim/grow/release path from several threads while a writer
  // keeps committing: no reader may ever observe a torn snapshot (a value
  // newer than its validated snapshot), and the chain must end up with more
  // than one bank. TSan target for the bank-link publication protocol.
  ASSERT_TRUE([&] {
    auto t = manager_.Begin();
    return t->Put("k", "0").ok() && t->Commit().ok();
  }());
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 1; !stop.load(std::memory_order_acquire); ++i) {
      auto t = manager_.Begin();
      ASSERT_TRUE(t->Put("k", std::to_string(i)).ok());
      ASSERT_TRUE(t->Commit().ok());
    }
  });
  constexpr int kReaderThreads = 4;
  constexpr int kIterations = 50;
  constexpr int kClump = 80;  // 4 x 80 held at once > one 256-slot bank
  std::atomic<int> claimed{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaderThreads; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        // Hold a clump of concurrent snapshots, then rendezvous so all
        // threads' clumps are live at once — the claim count must cross a
        // bank boundary every iteration, even on a single core.
        std::vector<std::unique_ptr<Transaction>> held;
        for (int j = 0; j < kClump; ++j) {
          held.push_back(manager_.Begin(/*read_only=*/true));
        }
        claimed.fetch_add(1, std::memory_order_acq_rel);
        while (claimed.load(std::memory_order_acquire) <
               kReaderThreads * (i + 1)) {
          std::this_thread::yield();
        }
        for (auto& t : held) {
          auto v = t->Get("k");
          ASSERT_TRUE(v.ok());
          // The snapshot-read contract: the version seen was committed at or
          // before the transaction's snapshot.
          EXPECT_LE(t->reads().back().version_commit_ts, t->snapshot_ts());
          ASSERT_TRUE(t->Commit().ok());
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GE(manager_.slot_bank_count(), 2u);
}

TEST_F(TxnManagerTest, DroppedActiveHandleAborts) {
  {
    auto t = manager_.Begin();
    ASSERT_TRUE(t->Put("a", "1").ok());
    // RAII abort on scope exit.
  }
  EXPECT_EQ(manager_.AbortedCount(), 1u);
  EXPECT_TRUE(manager_.Begin(true)->Get("a").status().IsNotFound());
}

}  // namespace
}  // namespace txn
}  // namespace lazysi
