#include "txn/transaction.h"

#include <gtest/gtest.h>

#include "storage/versioned_store.h"
#include "txn/txn_manager.h"

namespace lazysi {
namespace txn {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  void Seed(const std::string& key, const std::string& value) {
    auto t = manager_.Begin();
    ASSERT_TRUE(t->Put(key, value).ok());
    ASSERT_TRUE(t->Commit().ok());
  }

  storage::VersionedStore store_;
  TxnManager manager_{&store_};
};

TEST_F(TransactionTest, SeesOwnUpdates) {
  // SI requires a transaction to see its own updates even though they are
  // newer than its snapshot (Section 2.1).
  Seed("a", "old");
  auto t = manager_.Begin();
  EXPECT_EQ(t->Get("a").value(), "old");
  ASSERT_TRUE(t->Put("a", "new").ok());
  EXPECT_EQ(t->Get("a").value(), "new");
}

TEST_F(TransactionTest, SeesOwnDelete) {
  Seed("a", "v");
  auto t = manager_.Begin();
  ASSERT_TRUE(t->Delete("a").ok());
  EXPECT_TRUE(t->Get("a").status().IsNotFound());
}

TEST_F(TransactionTest, ReadOnlyRejectsWrites) {
  auto t = manager_.Begin(/*read_only=*/true);
  EXPECT_FALSE(t->Put("a", "1").ok());
  EXPECT_FALSE(t->Delete("a").ok());
}

TEST_F(TransactionTest, OperationsAfterCommitFail) {
  auto t = manager_.Begin();
  ASSERT_TRUE(t->Put("a", "1").ok());
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_FALSE(t->Put("b", "2").ok());
  EXPECT_FALSE(t->Get("a").ok());
  EXPECT_TRUE(t->Commit().ok());  // idempotent
}

TEST_F(TransactionTest, OperationsAfterAbortFail) {
  auto t = manager_.Begin();
  t->Abort();
  EXPECT_FALSE(t->Put("a", "1").ok());
  EXPECT_TRUE(t->Commit().IsAborted());
}

TEST_F(TransactionTest, ScanSnapshotWithOwnWritesOverlay) {
  Seed("a", "1");
  Seed("b", "2");
  Seed("c", "3");
  auto t = manager_.Begin();
  ASSERT_TRUE(t->Put("b", "B").ok());
  ASSERT_TRUE(t->Delete("c").ok());
  ASSERT_TRUE(t->Put("d", "D").ok());
  auto rows = t->Scan("", "");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ((*rows)[1], (std::pair<std::string, std::string>{"b", "B"}));
  EXPECT_EQ((*rows)[2], (std::pair<std::string, std::string>{"d", "D"}));
}

TEST_F(TransactionTest, ScanRangeBounds) {
  Seed("k1", "1");
  Seed("k2", "2");
  Seed("k3", "3");
  auto t = manager_.Begin(true);
  auto rows = t->Scan("k2", "k3");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].first, "k2");
}

TEST_F(TransactionTest, ScanIgnoresConcurrentCommits) {
  Seed("a", "1");
  auto t = manager_.Begin(true);
  Seed("b", "2");  // committed after t's snapshot
  auto rows = t->Scan("", "");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(TransactionTest, ReadObservationsRecorded) {
  Seed("a", "1");
  auto t = manager_.Begin();
  (void)t->Get("a");
  (void)t->Get("missing");
  ASSERT_TRUE(t->Put("own", "x").ok());
  (void)t->Get("own");
  ASSERT_EQ(t->reads().size(), 3u);
  EXPECT_TRUE(t->reads()[0].found);
  EXPECT_NE(t->reads()[0].version_commit_ts, kInvalidTimestamp);
  EXPECT_FALSE(t->reads()[1].found);
  EXPECT_TRUE(t->reads()[2].from_own_write);
}

TEST_F(TransactionTest, MultipleWritesSameKeyLastWins) {
  auto t = manager_.Begin();
  ASSERT_TRUE(t->Put("k", "1").ok());
  ASSERT_TRUE(t->Put("k", "2").ok());
  ASSERT_TRUE(t->Put("k", "3").ok());
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(manager_.Begin(true)->Get("k").value(), "3");
}

}  // namespace
}  // namespace txn
}  // namespace lazysi
