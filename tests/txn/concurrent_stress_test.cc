// Multi-threaded commit/read stress over the pipelined commit path: update
// transactions race snapshot readers, version garbage collection and
// time-travel readers on one site. Every committed transaction is fed to
// history::Recorder and the execution must satisfy the SI guarantees the
// manager claims (Section 2): weak SI, and — since this is a single site with
// a strong-SI local control — strong SI and strong session SI too. A
// multi-key invariant additionally rules out torn snapshots directly.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "history/recorder.h"
#include "history/si_checker.h"
#include "txn/transaction.h"

namespace lazysi {
namespace txn {
namespace {

constexpr int kInvariantKeys = 4;

std::string InvKey(int i) { return "inv" + std::to_string(i); }

// Copies a finished transaction's observations into the recorder.
// `first_op_seq` must have been taken before Begin so real-time ordering is
// judged conservatively (commit_seq(Ti) < first_op_seq(Tj) implies Ti's
// publication really preceded Tj's snapshot).
void RecordCommitted(history::Recorder* recorder, const Transaction& txn,
                     SessionLabel label, std::uint64_t first_op_seq) {
  history::TxnRecord record;
  record.label = label;
  record.site = kPrimarySiteId;
  record.read_only = txn.read_only();
  record.first_op_seq = first_op_seq;
  record.commit_seq = recorder->NextEventSeq();
  record.commit_primary_ts =
      txn.read_only() ? kInvalidTimestamp : txn.commit_ts();
  for (const auto& obs : txn.reads()) {
    if (obs.from_own_write) continue;
    record.reads.push_back(
        history::RecordedRead{obs.key, obs.version_commit_ts, obs.found});
  }
  record.writes = txn.write_set().ToVector();
  recorder->Record(std::move(record));
}

TEST(ConcurrentStressTest, WritersReadersAndGcPreserveSnapshotIsolation) {
  engine::Database db;
  history::Recorder recorder;

  // Seed the invariant keys in one transaction so every snapshot from here
  // on sees all of them equal.
  {
    const std::uint64_t first_op = recorder.NextEventSeq();
    auto txn = db.Begin();
    for (int i = 0; i < kInvariantKeys; ++i) {
      ASSERT_TRUE(txn->Put(InvKey(i), "0").ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
    RecordCommitted(&recorder, *txn, /*label=*/0, first_op);
  }

  constexpr int kInvariantWriters = 2;
  constexpr int kPrivateWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kRmwAttempts = 60;
  constexpr int kPrivatePuts = 100;
  constexpr int kReads = 150;

  std::atomic<bool> stop{false};
  std::atomic<int> torn_snapshots{0};
  std::atomic<int> invariant_commits{0};
  std::vector<std::thread> threads;
  SessionLabel next_label = 1;

  // Invariant writers: read-modify-write all invariant keys to a common new
  // value. First-committer-wins aborts are expected under contention and are
  // simply retried with a fresh snapshot.
  for (int w = 0; w < kInvariantWriters; ++w) {
    const SessionLabel label = next_label++;
    threads.emplace_back([&, label] {
      for (int i = 0; i < kRmwAttempts; ++i) {
        const std::uint64_t first_op = recorder.NextEventSeq();
        auto txn = db.Begin();
        auto current = txn->Get(InvKey(0));
        ASSERT_TRUE(current.ok());
        const std::string next = std::to_string(std::stoll(*current) + 1);
        bool ok = true;
        for (int k = 0; k < kInvariantKeys; ++k) {
          ok = ok && txn->Put(InvKey(k), next).ok();
        }
        ASSERT_TRUE(ok);
        Status s = txn->Commit();
        if (s.ok()) {
          invariant_commits.fetch_add(1);
          RecordCommitted(&recorder, *txn, label, first_op);
        } else {
          ASSERT_TRUE(s.IsWriteConflict()) << s;
        }
      }
    });
  }

  // Private writers: grow uncontended version chains so garbage collection
  // always has shadowed versions to reclaim.
  for (int w = 0; w < kPrivateWriters; ++w) {
    const SessionLabel label = next_label++;
    threads.emplace_back([&, label, w] {
      const std::string key = "priv" + std::to_string(w);
      for (int i = 0; i < kPrivatePuts; ++i) {
        const std::uint64_t first_op = recorder.NextEventSeq();
        auto txn = db.Begin();
        ASSERT_TRUE(txn->Put(key, std::to_string(i)).ok());
        ASSERT_TRUE(txn->Commit().ok()) << "private keys never conflict";
        RecordCommitted(&recorder, *txn, label, first_op);
      }
    });
  }

  // Readers: one snapshot must always see all invariant keys equal — a
  // partially installed commit (torn snapshot) would show a mix.
  for (int r = 0; r < kReaders; ++r) {
    const SessionLabel label = next_label++;
    threads.emplace_back([&, label] {
      for (int i = 0; i < kReads; ++i) {
        const std::uint64_t first_op = recorder.NextEventSeq();
        auto txn = db.Begin(/*read_only=*/true);
        std::vector<std::string> values;
        for (int k = 0; k < kInvariantKeys; ++k) {
          auto v = txn->Get(InvKey(k));
          ASSERT_TRUE(v.ok());
          values.push_back(*v);
        }
        for (const auto& v : values) {
          if (v != values.front()) torn_snapshots.fetch_add(1);
        }
        ASSERT_TRUE(txn->Commit().ok());
        RecordCommitted(&recorder, *txn, label, first_op);
      }
    });
  }

  // Garbage collector: continuously prunes shadowed versions and interleaves
  // time-travel reads pinned at the watermark — the BeginAtSnapshot/GC race
  // (snapshot must be pinned before validation) is exercised directly here.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      db.GarbageCollect();
      auto pinned = db.BeginAtSnapshot(db.LatestCommitTs());
      ASSERT_TRUE(pinned.ok());
      std::vector<std::string> values;
      for (int k = 0; k < kInvariantKeys; ++k) {
        auto v = (*pinned)->Get(InvKey(k));
        ASSERT_TRUE(v.ok()) << "GC pruned a version pinned by a snapshot";
        values.push_back(*v);
      }
      for (const auto& v : values) EXPECT_EQ(v, values.front());
      (*pinned)->Abort();
      std::this_thread::yield();
    }
  });

  for (std::size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(torn_snapshots.load(), 0);
  EXPECT_GT(invariant_commits.load(), 0);
  // Every retry loop ran to completion, so the final counter equals the
  // number of successful invariant commits.
  auto final_value = db.Get(InvKey(0));
  ASSERT_TRUE(final_value.ok());
  EXPECT_EQ(std::stoll(*final_value), invariant_commits.load());

  history::SIChecker checker(recorder.Snapshot());
  auto weak = checker.CheckWeakSI();
  EXPECT_TRUE(weak.ok) << weak.violation;
  auto strong = checker.CheckStrongSI();
  EXPECT_TRUE(strong.ok) << strong.violation;
  auto session = checker.CheckStrongSessionSI();
  EXPECT_TRUE(session.ok) << session.violation;
  EXPECT_EQ(checker.CountGlobalInversions(), 0u);
}

// Aimed squarely at the lock-free read path: Begin(read_only) performs no
// mutex acquisition and Get walks atomically-published newest-first version
// chains while a writer keeps prepending to the hot key and the collector
// concurrently severs shadowed tails. The TSan preset runs this test to
// certify the acquire/release publication and the seq_cst reader-slot /
// gc-floor handshakes; the assertions check the two properties the
// lock-free design must deliver: reads always hit a version at least as new
// as the GC horizon, and successive read-only snapshots in one thread never
// regress (visible watermark monotonicity).
TEST(ConcurrentStressTest, LockFreeHotReadsRaceWritersAndGc) {
  engine::Database db;
  ASSERT_TRUE(db.Put("hot", "0").ok());

  constexpr int kReaders = 4;
  constexpr int kHotWrites = 500;
  constexpr int kReadsPerThread = 800;
  std::atomic<bool> writer_done{false};
  std::vector<std::thread> threads;

  // One hot writer: uncontended sequential overwrites grow the chain as
  // fast as possible (no FCW aborts to slow it down).
  threads.emplace_back([&] {
    for (int i = 1; i <= kHotWrites; ++i) {
      auto txn = db.Begin();
      ASSERT_TRUE(txn->Put("hot", std::to_string(i)).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    writer_done.store(true, std::memory_order_release);
  });

  // Collector: prunes continuously, so readers race chain truncation the
  // whole run.
  threads.emplace_back([&] {
    while (!writer_done.load(std::memory_order_acquire)) {
      db.GarbageCollect();
      std::this_thread::yield();
    }
  });

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      long long last_seen = 0;
      for (int i = 0; i < kReadsPerThread; ++i) {
        auto txn = db.Begin(/*read_only=*/true);
        auto v = txn->Get("hot");
        ASSERT_TRUE(v.ok()) << "GC reclaimed the version a lock-free "
                               "snapshot was reading";
        const long long seen = std::stoll(*v);
        // visible_ts only advances, so per-thread snapshots are monotone.
        ASSERT_GE(seen, last_seen);
        last_seen = seen;
        ASSERT_TRUE(txn->Commit().ok());
      }
    });
  }

  for (auto& t : threads) t.join();
  EXPECT_EQ(db.Get("hot").value(), std::to_string(kHotWrites));
}

}  // namespace
}  // namespace txn
}  // namespace lazysi
