#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "storage/versioned_store.h"
#include "txn/txn_manager.h"

namespace lazysi {
namespace txn {
namespace {

// Property sweep: under first-committer-wins, concurrent read-modify-write
// increments never lose updates — the final counter value equals the number
// of successful commits (P4 is impossible, Section 2.1 / Appendix A.5).
struct FcwParams {
  int threads;
  int increments_per_thread;
  int num_counters;
};

class FcwPropertyTest : public ::testing::TestWithParam<FcwParams> {};

TEST_P(FcwPropertyTest, NoLostUpdates) {
  const FcwParams p = GetParam();
  storage::VersionedStore store;
  TxnManager manager(&store);

  // Seed counters at zero.
  for (int c = 0; c < p.num_counters; ++c) {
    auto t = manager.Begin();
    ASSERT_TRUE(t->Put("counter/" + std::to_string(c), "0").ok());
    ASSERT_TRUE(t->Commit().ok());
  }

  std::vector<std::atomic<long>> successes(p.num_counters);
  for (auto& s : successes) s = 0;

  std::vector<std::thread> threads;
  for (int i = 0; i < p.threads; ++i) {
    threads.emplace_back([&, i] {
      Rng rng(1000 + i);
      for (int n = 0; n < p.increments_per_thread; ++n) {
        const int c = static_cast<int>(rng.Next(p.num_counters));
        const std::string key = "counter/" + std::to_string(c);
        // Retry until the increment commits.
        for (;;) {
          auto t = manager.Begin();
          auto v = t->Get(key);
          ASSERT_TRUE(v.ok());
          const long cur = std::stol(*v);
          ASSERT_TRUE(t->Put(key, std::to_string(cur + 1)).ok());
          Status s = t->Commit();
          if (s.ok()) {
            ++successes[c];
            break;
          }
          ASSERT_TRUE(s.IsWriteConflict()) << s;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int c = 0; c < p.num_counters; ++c) {
    auto t = manager.Begin(/*read_only=*/true);
    auto v = t->Get("counter/" + std::to_string(c));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(std::stol(*v), successes[c].load())
        << "lost update on counter " << c;
  }
  // Note: whether conflicts actually occurred depends on thread scheduling
  // (on few-core machines highly contended runs can fully serialize);
  // deterministic conflict behaviour is covered by TxnManagerTest.
}

INSTANTIATE_TEST_SUITE_P(
    Contention, FcwPropertyTest,
    ::testing::Values(FcwParams{1, 200, 1},    // no concurrency
                      FcwParams{2, 200, 1},    // maximal contention
                      FcwParams{4, 100, 1},
                      FcwParams{4, 100, 4},    // moderate contention
                      FcwParams{4, 100, 64},   // low contention
                      FcwParams{8, 50, 8}),
    [](const ::testing::TestParamInfo<FcwParams>& info) {
      return "t" + std::to_string(info.param.threads) + "_n" +
             std::to_string(info.param.increments_per_thread) + "_c" +
             std::to_string(info.param.num_counters);
    });

// Snapshot consistency under concurrent writers: a transaction that reads
// two keys updated together always sees a consistent pair.
TEST(SnapshotConsistencyTest, PairsNeverTorn) {
  storage::VersionedStore store;
  TxnManager manager(&store);
  {
    auto t = manager.Begin();
    ASSERT_TRUE(t->Put("pair/a", "0").ok());
    ASSERT_TRUE(t->Put("pair/b", "0").ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 1; i <= 2000; ++i) {
      auto t = manager.Begin();
      ASSERT_TRUE(t->Put("pair/a", std::to_string(i)).ok());
      ASSERT_TRUE(t->Put("pair/b", std::to_string(i)).ok());
      ASSERT_TRUE(t->Commit().ok());  // single writer: no conflicts
    }
    stop = true;
  });
  std::thread reader([&] {
    while (!stop) {
      auto t = manager.Begin(/*read_only=*/true);
      auto a = t->Get("pair/a");
      auto b = t->Get("pair/b");
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(*a, *b) << "torn snapshot";
    }
  });
  writer.join();
  reader.join();
}

}  // namespace
}  // namespace txn
}  // namespace lazysi
