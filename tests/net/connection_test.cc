#include "net/connection.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/event_loop.h"

namespace lazysi {
namespace net {
namespace {

using namespace std::chrono_literals;

TEST(ConnectionTest, CloseRacingWritesLeavesNoQueuedOutput) {
  // Write checks closed_ and then queues under out_mu_; if DoClose drains
  // the buffer between the two, the late bytes must not stay queued forever
  // — output_bytes() on a closed connection would otherwise read nonzero
  // and wedge a producer polling it for backpressure. Hammer the race: the
  // invariant is that a closed connection always settles at zero.
  for (int round = 0; round < 20; ++round) {
    EventLoop loop;
    loop.Start();
    int s[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, s), 0);
    std::shared_ptr<Connection> conn;
    loop.PostAndWait([&] {
      conn = Connection::Adopt(&loop, s[0], Connection::Options{},
                               Connection::Callbacks{});
    });
    // The peer never reads, so writes pile up in the output buffer and the
    // close has real bytes to drop.
    std::thread writer([&] {
      for (int i = 0; i < 1000; ++i) conn->Write("0123456789abcdef");
    });
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    conn->Close();
    writer.join();
    loop.PostAndWait([] {});  // DoClose and any posted flush task ran
    EXPECT_EQ(conn->output_bytes(), 0u) << "round " << round;
    loop.Stop();
    ::close(s[1]);
  }
}

TEST(ConnectionTest, PauseReadsParksDeliveryUntilResumed) {
  EventLoop loop;
  loop.Start();
  int s[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, s), 0);

  std::mutex mu;
  std::string received;
  Connection::Callbacks cbs;
  cbs.on_bytes = [&](Connection&, std::string_view bytes) {
    std::lock_guard<std::mutex> lock(mu);
    received.append(bytes);
  };
  std::shared_ptr<Connection> conn;
  loop.PostAndWait([&] {
    conn = Connection::Adopt(&loop, s[0], Connection::Options{},
                             std::move(cbs));
  });

  conn->PauseReads(true);
  loop.PostAndWait([] {});  // mask change applied
  ASSERT_EQ(::write(s[1], "hello", 5), 5);
  std::this_thread::sleep_for(50ms);
  loop.PostAndWait([] {});
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(received.empty())
        << "bytes delivered while reads were paused: " << received;
  }

  conn->PauseReads(false);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (received == "hello") break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(1ms);
  }

  conn->Close();
  loop.PostAndWait([] {});
  loop.Stop();
  ::close(s[1]);
}

}  // namespace
}  // namespace net
}  // namespace lazysi
