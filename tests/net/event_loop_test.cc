#include "net/event_loop.h"

#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <future>
#include <vector>

namespace lazysi {
namespace net {
namespace {

TEST(EventLoopTest, StaleEventSkippedWhenFdNumberReusedMidBatch) {
  // Two fds become readable inside one epoll_wait batch. The first fd's
  // callback removes + closes the second and immediately registers a fresh
  // fd that reuses the freed number (lowest-free-descriptor rule) — the
  // close + accept pattern of a connection churning under load. The second
  // fd's already-queued event belongs to the dead registration and must
  // not be dispatched to the new one, which could e.g. close a healthy,
  // freshly-accepted connection on a stale EPOLLHUP.
  EventLoop loop;
  loop.Start();

  int a[2], b[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, a), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, b), 0);

  std::atomic<int> stale_hits{0};
  std::atomic<bool> reused{false};
  std::vector<int> extra_fds;  // dups burned while hunting b[0]'s number
  int new_fd = -1;

  loop.PostAndWait([&] {
    loop.AddFd(a[0], EPOLLIN, [&](std::uint32_t) {
      char c;
      (void)!::read(a[0], &c, 1);
      loop.RemoveFd(b[0]);
      ::close(b[0]);
      // Reacquire b[0]'s number: dup returns the lowest free descriptor,
      // so burn any lower free slots until we land on it.
      for (;;) {
        const int fd = ::dup(a[0]);
        ASSERT_GE(fd, 0);
        if (fd == b[0]) {
          new_fd = fd;
          break;
        }
        if (fd > b[0]) {
          ::close(fd);
          break;
        }
        extra_fds.push_back(fd);
      }
      if (new_fd >= 0) {
        reused.store(true);
        // No data is pending on this fresh registration, so any callback
        // invocation in the current batch can only be b[0]'s stale event.
        loop.AddFd(new_fd, EPOLLIN,
                   [&](std::uint32_t) { stale_hits.fetch_add(1); });
      }
    });
    loop.AddFd(b[0], EPOLLIN, [&](std::uint32_t) {
      char c;
      (void)!::read(b[0], &c, 1);
    });
  });

  // Park the loop so both fds turn readable before one epoll_wait sees
  // them — a[0] first, so its callback runs ahead of b[0]'s queued event.
  std::promise<void> parked;
  std::promise<void> release;
  auto released = release.get_future().share();
  loop.Post([&parked, released] {
    parked.set_value();
    released.wait();
  });
  parked.get_future().wait();
  ASSERT_EQ(::write(a[1], "x", 1), 1);
  ASSERT_EQ(::write(b[1], "y", 1), 1);
  release.set_value();

  loop.PostAndWait([] {});  // barrier: the batch above fully dispatched
  ASSERT_TRUE(reused.load()) << "fd number was not reused; scenario vacuous";
  EXPECT_EQ(stale_hits.load(), 0)
      << "stale event for a removed fd reached the reused registration";

  loop.PostAndWait([&] {
    loop.RemoveFd(a[0]);
    if (new_fd >= 0) loop.RemoveFd(new_fd);
  });
  loop.Stop();
  for (int fd : extra_fds) ::close(fd);
  if (new_fd >= 0) ::close(new_fd);
  ::close(a[0]);
  ::close(a[1]);
  ::close(b[1]);
}

TEST(EventLoopTest, RemovedFdEventsStillDispatchToSurvivors) {
  // Sanity companion to the stale-skip: removing one fd mid-batch must not
  // suppress the other ready fds' callbacks.
  EventLoop loop;
  loop.Start();

  int a[2], b[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, a), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, b), 0);

  std::atomic<int> b_hits{0};
  loop.PostAndWait([&] {
    loop.AddFd(a[0], EPOLLIN, [&](std::uint32_t) {
      char c;
      (void)!::read(a[0], &c, 1);
      loop.RemoveFd(a[0]);
    });
    loop.AddFd(b[0], EPOLLIN, [&](std::uint32_t) {
      char c;
      (void)!::read(b[0], &c, 1);
      b_hits.fetch_add(1);
    });
  });

  ASSERT_EQ(::write(a[1], "x", 1), 1);
  ASSERT_EQ(::write(b[1], "y", 1), 1);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (b_hits.load() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  loop.PostAndWait([&] { loop.RemoveFd(b[0]); });
  loop.Stop();
  ::close(a[0]);
  ::close(a[1]);
  ::close(b[0]);
  ::close(b[1]);
}

}  // namespace
}  // namespace net
}  // namespace lazysi
