// DurableLog unit tests: segment round-trips across reopen, torn-tail
// recovery by direct file surgery (the on-disk image a mid-write crash
// leaves behind), quiesced-boundary rotation, truncation, and the fsync-mode
// contract. Crash injection through the process-kill harness lives in
// engine/durable_recovery_test.cc; here the "crash" is ftruncate.

#include "wal/durable_log.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "wal/log_record.h"

namespace lazysi {
namespace wal {
namespace {

namespace fs = std::filesystem;

class DurableLogTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("durable_log_test_" +
            std::string(
                testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DurableLog::Options Opts(DurableLog::FsyncMode mode) {
    DurableLog::Options o;
    o.dir = dir_.string();
    o.fsync_mode = mode;
    return o;
  }

  /// Appends one quiesced transaction (start, update, commit) at the next
  /// three LSNs and returns the new end LSN.
  std::uint64_t AppendTxn(DurableLog* log, std::uint64_t lsn, TxnId txn,
                          Timestamp ts) {
    log->Append(lsn, LogRecord::Start(txn, ts));
    log->Append(lsn + 1, LogRecord::Update(txn, "k" + std::to_string(txn),
                                           "v" + std::to_string(txn), false));
    log->Append(lsn + 2, LogRecord::Commit(txn, ts + 1));
    return lsn + 3;
  }

  std::vector<fs::path> Segments() {
    std::vector<fs::path> segs;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      std::uint64_t start = 0;
      if (ParseSegmentName(entry.path().filename().string(), &start)) {
        segs.push_back(entry.path());
      }
    }
    std::sort(segs.begin(), segs.end());
    return segs;
  }

  fs::path dir_;
};

TEST_F(DurableLogTest, RoundTripsAcrossReopen) {
  std::vector<LogRecord> written;
  {
    DurableLog::Recovered rec;
    auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kGroup), &rec);
    ASSERT_TRUE(log.ok()) << log.status();
    EXPECT_TRUE(rec.records.empty());
    EXPECT_EQ(rec.base_lsn, 0u);
    std::uint64_t lsn = 0;
    for (TxnId t = 1; t <= 5; ++t) {
      (*log)->Append(lsn, LogRecord::Start(t, t * 10));
      written.push_back(LogRecord::Start(t, t * 10));
      (*log)->Append(lsn + 1, LogRecord::Update(t, "key", "value", false));
      written.push_back(LogRecord::Update(t, "key", "value", false));
      (*log)->Append(lsn + 2, LogRecord::Commit(t, t * 10 + 1));
      written.push_back(LogRecord::Commit(t, t * 10 + 1));
      lsn += 3;
    }
    ASSERT_TRUE((*log)->WaitDurable(lsn).ok());
    (*log)->Close();
  }
  DurableLog::Recovered rec;
  auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kGroup), &rec);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(rec.base_lsn, 0u);
  EXPECT_EQ(rec.base_record_seq, 0u);
  EXPECT_FALSE(rec.tail_truncated);
  ASSERT_EQ(rec.records.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(rec.records[i], written[i]) << "record " << i;
  }
  EXPECT_EQ((*log)->next_lsn(), written.size());
}

TEST_F(DurableLogTest, TornTailIsTruncatedOnOpen) {
  {
    DurableLog::Recovered rec;
    auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kGroup), &rec);
    ASSERT_TRUE(log.ok());
    std::uint64_t lsn = 0;
    for (TxnId t = 1; t <= 3; ++t) lsn = AppendTxn(log->get(), lsn, t, t * 10);
    ASSERT_TRUE((*log)->WaitDurable(lsn).ok());
    (*log)->Close();
  }
  auto segs = Segments();
  ASSERT_EQ(segs.size(), 1u);
  // Chop one byte off the final frame: the image of a crash mid-write.
  const auto full = fs::file_size(segs[0]);
  fs::resize_file(segs[0], full - 1);

  DurableLog::Recovered rec;
  auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kGroup), &rec);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_TRUE(rec.tail_truncated);
  ASSERT_EQ(rec.records.size(), 8u);  // 9 written, torn commit dropped
  EXPECT_EQ(rec.records.back().type, LogRecordType::kUpdate);
  // The torn bytes are gone from disk too: appending at the truncated end
  // and reopening must not resurrect them.
  EXPECT_EQ((*log)->next_lsn(), 8u);
  (*log)->Append(8, LogRecord::Commit(3, 31));
  ASSERT_TRUE((*log)->WaitDurable(9).ok());
  (*log)->Close();
  DurableLog::Recovered rec2;
  auto log2 = DurableLog::Open(Opts(DurableLog::FsyncMode::kGroup), &rec2);
  ASSERT_TRUE(log2.ok());
  EXPECT_FALSE(rec2.tail_truncated);
  ASSERT_EQ(rec2.records.size(), 9u);
  EXPECT_EQ(rec2.records.back(), LogRecord::Commit(3, 31));
}

TEST_F(DurableLogTest, CorruptTailCrcIsTruncatedOnOpen) {
  {
    DurableLog::Recovered rec;
    auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kGroup), &rec);
    ASSERT_TRUE(log.ok());
    std::uint64_t lsn = 0;
    for (TxnId t = 1; t <= 2; ++t) lsn = AppendTxn(log->get(), lsn, t, t * 10);
    ASSERT_TRUE((*log)->WaitDurable(lsn).ok());
    (*log)->Close();
  }
  auto segs = Segments();
  ASSERT_EQ(segs.size(), 1u);
  {
    // Flip the last payload byte; the frame length still matches, so only
    // the CRC can tell this record never fully hit disk.
    std::fstream f(segs[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-1, std::ios::end);
    char b = 0;
    f.get(b);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(b ^ 0x5a));
  }
  DurableLog::Recovered rec;
  auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kGroup), &rec);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_TRUE(rec.tail_truncated);
  EXPECT_EQ(rec.records.size(), 5u);
  EXPECT_EQ((*log)->next_lsn(), 5u);
}

TEST_F(DurableLogTest, TornRecordInEarlierSegmentIsCorruption) {
  {
    auto opts = Opts(DurableLog::FsyncMode::kGroup);
    opts.segment_target_bytes = 32;  // rotate after every quiesced txn
    DurableLog::Recovered rec;
    auto log = DurableLog::Open(opts, &rec);
    ASSERT_TRUE(log.ok());
    std::uint64_t lsn = 0;
    for (TxnId t = 1; t <= 3; ++t) lsn = AppendTxn(log->get(), lsn, t, t * 10);
    ASSERT_TRUE((*log)->WaitDurable(lsn).ok());
    (*log)->Close();
  }
  auto segs = Segments();
  ASSERT_GE(segs.size(), 2u);
  fs::resize_file(segs[0], fs::file_size(segs[0]) - 1);

  DurableLog::Recovered rec;
  auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kGroup), &rec);
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DurableLogTest, TrailingHeaderStubSegmentIsDropped) {
  std::uint64_t end = 0;
  {
    DurableLog::Recovered rec;
    auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kGroup), &rec);
    ASSERT_TRUE(log.ok());
    end = AppendTxn(log->get(), 0, 1, 10);
    ASSERT_TRUE((*log)->WaitDurable(end).ok());
    (*log)->Close();
  }
  // A crash between creating the next segment file and writing its full
  // header leaves a short stub sorting after every complete segment.
  {
    std::ofstream stub(dir_ / SegmentName(end), std::ios::binary);
    stub << "LZSI";
  }
  DurableLog::Recovered rec;
  auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kGroup), &rec);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(rec.records.size(), 3u);
  EXPECT_FALSE(fs::exists(dir_ / SegmentName(end)));
}

TEST_F(DurableLogTest, RotatesOnlyAtQuiescedBoundaries) {
  auto opts = Opts(DurableLog::FsyncMode::kGroup);
  opts.segment_target_bytes = 1;  // want rotation at every opportunity
  DurableLog::Recovered rec;
  auto log = DurableLog::Open(opts, &rec);
  ASSERT_TRUE(log.ok());
  // One long transaction: many updates, all above the rotation target, but
  // no quiesced boundary until the commit — so no rotation mid-transaction.
  (*log)->Append(0, LogRecord::Start(1, 10));
  std::uint64_t lsn = 1;
  for (int i = 0; i < 20; ++i) {
    (*log)->Append(lsn++, LogRecord::Update(1, "key" + std::to_string(i),
                                            std::string(100, 'x'), false));
  }
  (*log)->Append(lsn++, LogRecord::Commit(1, 11));
  ASSERT_TRUE((*log)->WaitDurable(lsn).ok());
  EXPECT_EQ(Segments().size(), 1u);

  // The next transaction starts past a quiesced cut: new segment.
  lsn = AppendTxn(log->get(), lsn, 2, 20);
  ASSERT_TRUE((*log)->WaitDurable(lsn).ok());
  auto segs = Segments();
  ASSERT_EQ(segs.size(), 2u);
  std::uint64_t second_start = 0;
  ASSERT_TRUE(ParseSegmentName(segs[1].filename().string(), &second_start));
  EXPECT_EQ(second_start, 22u);  // start + 20 updates + commit
  (*log)->Close();

  // Every segment start is a valid replay base with correct stream seq:
  // 2 non-update records (start, commit) precede LSN 22.
  DurableLog::Recovered rec2;
  auto reopened = DurableLog::Open(opts, &rec2);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(rec2.records.size(), 25u);
  EXPECT_EQ(rec2.base_lsn, 0u);
}

TEST_F(DurableLogTest, TruncateBelowDropsWholeSegmentsOnly) {
  auto opts = Opts(DurableLog::FsyncMode::kGroup);
  opts.segment_target_bytes = 32;
  DurableLog::Recovered rec;
  auto log = DurableLog::Open(opts, &rec);
  ASSERT_TRUE(log.ok());
  std::uint64_t lsn = 0;
  for (TxnId t = 1; t <= 4; ++t) lsn = AppendTxn(log->get(), lsn, t, t * 10);
  ASSERT_TRUE((*log)->WaitDurable(lsn).ok());
  ASSERT_GE(Segments().size(), 3u);

  // A floor inside the second segment only releases the first.
  auto base = (*log)->TruncateBelow(4);
  ASSERT_TRUE(base.ok()) << base.status();
  EXPECT_EQ(*base, 3u);
  EXPECT_EQ((*log)->base_lsn(), 3u);

  // The newest segment survives even a floor above everything.
  base = (*log)->TruncateBelow(lsn + 100);
  ASSERT_TRUE(base.ok());
  EXPECT_LT(*base, lsn);
  EXPECT_GT((*log)->counters().bytes_truncated, 0u);
  (*log)->Close();

  // Reopen resumes from the truncated base with the right stream seq:
  // 2 non-update records per dropped transaction.
  DurableLog::Recovered rec2;
  auto reopened = DurableLog::Open(opts, &rec2);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(rec2.base_lsn, *base);
  EXPECT_EQ(rec2.base_record_seq, (*base / 3) * 2);
  EXPECT_EQ(rec2.records.size(), lsn - *base);
  EXPECT_EQ((*reopened)->next_lsn(), lsn);
}

TEST_F(DurableLogTest, AlwaysModeFlushesInline) {
  DurableLog::Recovered rec;
  auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kAlways), &rec);
  ASSERT_TRUE(log.ok());
  std::uint64_t lsn = AppendTxn(log->get(), 0, 1, 10);
  ASSERT_TRUE((*log)->WaitDurable(lsn).ok());
  EXPECT_EQ((*log)->flushed_end(), lsn);
  const auto c1 = (*log)->counters();
  EXPECT_GE(c1.fsyncs, 1u);
  lsn = AppendTxn(log->get(), lsn, 2, 20);
  ASSERT_TRUE((*log)->WaitDurable(lsn).ok());
  const auto c2 = (*log)->counters();
  EXPECT_GT(c2.fsyncs, c1.fsyncs);  // one fsync per commit, no sharing
  EXPECT_EQ(c2.records_flushed, lsn);
  (*log)->Close();
}

TEST_F(DurableLogTest, NeverModeAcksWithoutFsync) {
  DurableLog::Recovered rec;
  auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kNever), &rec);
  ASSERT_TRUE(log.ok());
  std::uint64_t lsn = AppendTxn(log->get(), 0, 1, 10);
  ASSERT_TRUE((*log)->WaitDurable(lsn).ok());  // immediate, no durability
  ASSERT_TRUE((*log)->Flush(lsn).ok());        // waits for the write...
  EXPECT_EQ((*log)->counters().fsyncs, 0u);    // ...but never fsyncs
  EXPECT_EQ((*log)->counters().records_flushed, lsn);
  (*log)->Close();
  // The records were still written, so a clean reopen sees them.
  DurableLog::Recovered rec2;
  auto reopened = DurableLog::Open(Opts(DurableLog::FsyncMode::kNever), &rec2);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(rec2.records.size(), 3u);
}

TEST_F(DurableLogTest, GroupModeBatchesAndCounts) {
  DurableLog::Recovered rec;
  auto log = DurableLog::Open(Opts(DurableLog::FsyncMode::kGroup), &rec);
  ASSERT_TRUE(log.ok());
  std::uint64_t lsn = 0;
  for (TxnId t = 1; t <= 10; ++t) lsn = AppendTxn(log->get(), lsn, t, t * 10);
  ASSERT_TRUE((*log)->WaitDurable(lsn).ok());
  const auto c = (*log)->counters();
  EXPECT_GE(c.fsyncs, 1u);
  EXPECT_EQ(c.records_flushed, lsn);
  EXPECT_GE(c.flush_batches, 1u);
  EXPECT_GE(c.max_group_size, 1u);
  EXPECT_LE(c.flush_batches, c.records_flushed);
  EXPECT_GE(c.segments_created, 1u);
  (*log)->Close();
}

TEST_F(DurableLogTest, ParseFsyncModeRecognizesKnobValues) {
  DurableLog::FsyncMode mode = DurableLog::FsyncMode::kGroup;
  EXPECT_TRUE(ParseFsyncMode("always", &mode));
  EXPECT_EQ(mode, DurableLog::FsyncMode::kAlways);
  EXPECT_TRUE(ParseFsyncMode("never", &mode));
  EXPECT_EQ(mode, DurableLog::FsyncMode::kNever);
  EXPECT_TRUE(ParseFsyncMode("group", &mode));
  EXPECT_EQ(mode, DurableLog::FsyncMode::kGroup);
  EXPECT_FALSE(ParseFsyncMode("sometimes", &mode));
  EXPECT_EQ(mode, DurableLog::FsyncMode::kGroup);  // untouched on failure
  EXPECT_FALSE(ParseFsyncMode("", &mode));
}

TEST_F(DurableLogTest, SegmentNameRoundTrips) {
  std::uint64_t lsn = 0;
  EXPECT_TRUE(ParseSegmentName(SegmentName(0), &lsn));
  EXPECT_EQ(lsn, 0u);
  EXPECT_TRUE(ParseSegmentName(SegmentName(123456789), &lsn));
  EXPECT_EQ(lsn, 123456789u);
  EXPECT_FALSE(ParseSegmentName("MANIFEST", &lsn));
  EXPECT_FALSE(ParseSegmentName("x.seg", &lsn));
  // Zero padding keeps lexicographic order == numeric order.
  EXPECT_LT(SegmentName(9), SegmentName(10));
}

}  // namespace
}  // namespace wal
}  // namespace lazysi
