#include "wal/log_record.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace lazysi {
namespace wal {
namespace {

TEST(LogRecordTest, Factories) {
  auto s = LogRecord::Start(7, 100);
  EXPECT_EQ(s.type, LogRecordType::kStart);
  EXPECT_EQ(s.txn_id, 7u);
  EXPECT_EQ(s.timestamp, 100u);

  auto u = LogRecord::Update(7, "k", "v", false);
  EXPECT_EQ(u.type, LogRecordType::kUpdate);
  EXPECT_EQ(u.key, "k");
  EXPECT_EQ(u.value, "v");
  EXPECT_FALSE(u.deleted);

  auto c = LogRecord::Commit(7, 101);
  EXPECT_EQ(c.type, LogRecordType::kCommit);
  EXPECT_EQ(c.timestamp, 101u);

  auto a = LogRecord::Abort(7);
  EXPECT_EQ(a.type, LogRecordType::kAbort);
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  const LogRecord records[] = {
      LogRecord::Start(1, 10),
      LogRecord::Update(1, "key", "value", false),
      LogRecord::Update(1, "gone", "", true),
      LogRecord::Commit(1, 11),
      LogRecord::Abort(2),
  };
  std::string buf;
  for (const auto& r : records) r.EncodeTo(&buf);

  std::size_t offset = 0;
  for (const auto& expected : records) {
    auto decoded = LogRecord::Decode(buf, &offset);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, expected);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(LogRecordTest, DecodeRejectsGarbage) {
  std::string garbage = "\xff\xff\xff";
  std::size_t offset = 0;
  EXPECT_FALSE(LogRecord::Decode(garbage, &offset).ok());
}

TEST(LogRecordTest, DecodeRejectsTruncation) {
  auto r = LogRecord::Update(9, "key", "a longer value", false);
  std::string buf;
  r.EncodeTo(&buf);
  for (std::size_t cut = 1; cut < buf.size(); ++cut) {
    std::string truncated = buf.substr(0, cut);
    std::size_t offset = 0;
    auto decoded = LogRecord::Decode(truncated, &offset);
    // Either a clean error or (never) a wrong success.
    if (decoded.ok()) {
      FAIL() << "decode succeeded on truncation at " << cut;
    }
  }
}

TEST(LogRecordTest, RoundTripRandomized) {
  Rng rng(77);
  std::string buf;
  std::vector<LogRecord> expected;
  for (int i = 0; i < 500; ++i) {
    LogRecord r;
    switch (rng.Next(4)) {
      case 0:
        r = LogRecord::Start(rng.Next(1 << 20), rng.Next(1 << 30));
        break;
      case 1: {
        std::string key(rng.Next(20) + 1, 'k');
        std::string value(rng.Next(200), 'v');
        r = LogRecord::Update(rng.Next(1 << 20), key, value,
                              rng.Bernoulli(0.2));
        break;
      }
      case 2:
        r = LogRecord::Commit(rng.Next(1 << 20), rng.Next(1 << 30));
        break;
      default:
        r = LogRecord::Abort(rng.Next(1 << 20));
    }
    r.EncodeTo(&buf);
    expected.push_back(r);
  }
  std::size_t offset = 0;
  for (const auto& e : expected) {
    auto decoded = LogRecord::Decode(buf, &offset);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(*decoded, e);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(LogRecordTest, ToStringMentionsType) {
  EXPECT_NE(LogRecord::Start(1, 2).ToString().find("START"),
            std::string::npos);
  EXPECT_NE(LogRecord::Commit(1, 2).ToString().find("COMMIT"),
            std::string::npos);
  EXPECT_NE(LogRecord::Abort(1).ToString().find("ABORT"), std::string::npos);
  EXPECT_NE(LogRecord::Update(1, "k", "v", true).ToString().find("delete"),
            std::string::npos);
}

}  // namespace
}  // namespace wal
}  // namespace lazysi
