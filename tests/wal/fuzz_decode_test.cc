// Robustness: the decoders must reject (never crash on, never hang on,
// never over-read from) arbitrary byte strings — they parse data that in a
// networked deployment crosses a trust boundary.

#include <gtest/gtest.h>

#include "common/random.h"
#include "replication/wire.h"
#include "wal/log_record.h"
#include "wal/logical_log.h"

namespace lazysi {
namespace {

TEST(FuzzDecodeTest, LogRecordDecodeOnRandomBytes) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    const auto len = rng.Next(64);
    for (std::uint64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Next(256)));
    }
    std::size_t offset = 0;
    // Either decodes to something or fails cleanly; offset never overruns.
    auto r = wal::LogRecord::Decode(bytes, &offset);
    EXPECT_LE(offset, bytes.size());
    if (r.ok()) {
      // A successful decode must re-encode to the consumed prefix length.
      std::string reencoded;
      r->EncodeTo(&reencoded);
      EXPECT_EQ(reencoded.size(), offset);
    }
  }
}

TEST(FuzzDecodeTest, LogStreamDecodeOnRandomBytes) {
  Rng rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes;
    const auto len = rng.Next(256);
    for (std::uint64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Next(256)));
    }
    (void)wal::LogicalLog::DecodeAll(bytes);  // must not crash or hang
  }
}

TEST(FuzzDecodeTest, WireDecodeOnRandomBytes) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    const auto len = rng.Next(128);
    for (std::uint64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Next(256)));
    }
    std::size_t offset = 0;
    auto r = replication::DecodeRecord(bytes, &offset);
    EXPECT_LE(offset, bytes.size());
    (void)replication::DecodeBatch(bytes);
  }
}

TEST(FuzzDecodeTest, MutatedValidRecordsNeverCrash) {
  // Start from valid encodings and flip every byte once.
  auto commit = wal::LogRecord::Commit(12345, 67890);
  auto update = wal::LogRecord::Update(1, "some-key", "some-value", false);
  for (const auto& record : {commit, update}) {
    std::string base;
    record.EncodeTo(&base);
    for (std::size_t pos = 0; pos < base.size(); ++pos) {
      for (int delta : {1, 0x7f, 0x80}) {
        std::string mutated = base;
        mutated[pos] = static_cast<char>(mutated[pos] ^ delta);
        std::size_t offset = 0;
        (void)wal::LogRecord::Decode(mutated, &offset);
        EXPECT_LE(offset, mutated.size());
      }
    }
  }
}

}  // namespace
}  // namespace lazysi
