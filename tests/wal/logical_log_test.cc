#include "wal/logical_log.h"

#include <gtest/gtest.h>

#include <thread>

namespace lazysi {
namespace wal {
namespace {

TEST(LogicalLogTest, AppendAssignsSequentialLsns) {
  LogicalLog log;
  EXPECT_EQ(log.Append(LogRecord::Start(1, 1)), 0u);
  EXPECT_EQ(log.Append(LogRecord::Commit(1, 2)), 1u);
  EXPECT_EQ(log.Size(), 2u);
}

TEST(LogicalLogTest, AtReturnsRecord) {
  LogicalLog log;
  log.Append(LogRecord::Start(7, 42));
  auto r = log.At(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->txn_id, 7u);
  EXPECT_FALSE(log.At(1).has_value());
}

TEST(LogicalLogTest, WaitAtBlocksUntilAppend) {
  LogicalLog log;
  std::thread appender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    log.Append(LogRecord::Start(1, 1));
  });
  auto r = log.WaitAt(0, std::chrono::milliseconds(2000));
  appender.join();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->txn_id, 1u);
}

TEST(LogicalLogTest, WaitAtTimesOut) {
  LogicalLog log;
  auto r = log.WaitAt(0, std::chrono::milliseconds(10));
  EXPECT_FALSE(r.has_value());
}

TEST(LogicalLogTest, CloseWakesWaiters) {
  LogicalLog log;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.Close();
  });
  auto r = log.WaitAt(0, std::chrono::milliseconds(5000));
  closer.join();
  EXPECT_FALSE(r.has_value());
  EXPECT_TRUE(log.closed());
}

TEST(LogicalLogTest, EncodeDecodeSuffix) {
  LogicalLog log;
  log.Append(LogRecord::Start(1, 1));
  log.Append(LogRecord::Update(1, "k", "v", false));
  log.Append(LogRecord::Commit(1, 2));
  const std::string bytes = log.EncodeFrom(1);
  auto records = LogicalLog::DecodeAll(bytes);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].type, LogRecordType::kUpdate);
  EXPECT_EQ((*records)[1].type, LogRecordType::kCommit);
}

TEST(LogicalLogTest, DecodeAllRejectsCorruption) {
  auto bad = LogicalLog::DecodeAll("\x09garbage");
  EXPECT_FALSE(bad.ok());
}

TEST(LogicalLogTest, ConcurrentAppendersPreserveCount) {
  LogicalLog log;
  constexpr int kThreads = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        log.Append(LogRecord::Start(t * kEach + i, i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.Size(), static_cast<std::size_t>(kThreads * kEach));
}

}  // namespace
}  // namespace wal
}  // namespace lazysi
