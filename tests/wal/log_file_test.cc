#include "wal/log_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace lazysi {
namespace wal {
namespace {

class LogFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "lazysi_log_file_test.log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(LogFileTest, RoundTrip) {
  LogicalLog log;
  log.Append(LogRecord::Start(1, 10));
  log.Append(LogRecord::Update(1, "k", "v", false));
  log.Append(LogRecord::Commit(1, 11));
  log.Append(LogRecord::Abort(2));
  ASSERT_TRUE(LogFile::Write(log, path_).ok());

  auto records = LogFile::Read(path_);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 4u);
  EXPECT_EQ((*records)[0], *log.At(0));
  EXPECT_EQ((*records)[3], *log.At(3));
}

TEST_F(LogFileTest, SuffixOnly) {
  LogicalLog log;
  log.Append(LogRecord::Start(1, 10));
  log.Append(LogRecord::Commit(1, 11));
  log.Append(LogRecord::Start(2, 12));
  log.Append(LogRecord::Commit(2, 13));
  ASSERT_TRUE(LogFile::Write(log, path_, /*from_lsn=*/2).ok());
  auto records = LogFile::Read(path_);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].txn_id, 2u);
}

TEST_F(LogFileTest, EmptyLogProducesValidFile) {
  LogicalLog log;
  ASSERT_TRUE(LogFile::Write(log, path_).ok());
  auto records = LogFile::Read(path_);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_F(LogFileTest, MissingFileIsNotFound) {
  auto records = LogFile::Read(path_ + ".nope");
  EXPECT_TRUE(records.status().IsNotFound());
}

TEST_F(LogFileTest, RejectsBadMagic) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTALOGFILE.....";
  out.close();
  auto records = LogFile::Read(path_);
  EXPECT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LogFileTest, DetectsCorruption) {
  LogicalLog log;
  log.Append(LogRecord::Update(1, "key", "value", false));
  ASSERT_TRUE(LogFile::Write(log, path_).ok());
  // Flip a byte in the middle of the payload.
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(12);
  f.put('X');
  f.close();
  auto records = LogFile::Read(path_);
  EXPECT_FALSE(records.ok());
  EXPECT_NE(records.status().message().find("checksum"), std::string::npos);
}

TEST_F(LogFileTest, OverwriteIsAtomic) {
  LogicalLog log1;
  log1.Append(LogRecord::Start(1, 1));
  ASSERT_TRUE(LogFile::Write(log1, path_).ok());
  LogicalLog log2;
  for (int i = 0; i < 100; ++i) {
    log2.Append(LogRecord::Update(1, "key" + std::to_string(i), "v", false));
  }
  ASSERT_TRUE(LogFile::Write(log2, path_).ok());
  auto records = LogFile::Read(path_);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 100u);
}

}  // namespace
}  // namespace wal
}  // namespace lazysi
