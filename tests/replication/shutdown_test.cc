// Shutdown robustness of the refresh pipeline: stopping a secondary with a
// deep backlog, blocked applicators and a mid-flight pending queue must not
// hang, crash or corrupt the local database.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "replication/primary.h"
#include "replication/secondary.h"

namespace lazysi {
namespace replication {
namespace {

TEST(ShutdownTest, StopWithDeepBacklogDoesNotHang) {
  engine::Database primary_db;
  engine::Database secondary_db;
  Primary primary(&primary_db);
  Secondary secondary(&secondary_db, SecondaryOptions{2});
  primary.AttachSecondary(&secondary);

  // Build a large backlog before the secondary even starts.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(primary_db.Put("k" + std::to_string(i), "v").ok());
  }
  primary.Start();
  secondary.Start();
  // Stop almost immediately: most records are still queued or mid-apply.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  secondary.Stop();
  primary.Stop();

  // Whatever was applied is a consistent prefix: the local store never
  // contains a partially applied transaction, and seq(DBsec) matches the
  // number of completed refreshes.
  const std::size_t applied = secondary.refreshed_count();
  EXPECT_LE(applied, 500u);
  EXPECT_EQ(secondary_db.txn_manager()->CommittedCount(), applied);
}

TEST(ShutdownTest, StopAndRestartPipelineResumesCleanly) {
  // A stopped Secondary object can be started again and keeps consuming its
  // queue (the propagator kept feeding it while stopped).
  engine::Database primary_db;
  engine::Database secondary_db;
  Primary primary(&primary_db);
  Secondary secondary(&secondary_db, SecondaryOptions{2});
  primary.AttachSecondary(&secondary);
  primary.Start();
  secondary.Start();

  ASSERT_TRUE(primary_db.Put("a", "1").ok());
  ASSERT_TRUE(secondary.WaitForSeq(primary_db.LatestCommitTs(),
                                   std::chrono::milliseconds(5000)));
  secondary.Stop();

  ASSERT_TRUE(primary_db.Put("b", "2").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // The update queue was closed by Stop; records broadcast while stopped
  // are dropped, which is exactly the "crashed secondary loses its queue"
  // failure model (Section 3.4). Recovery is the documented path — but
  // restarting the pipeline must at least be safe and make no false claims.
  secondary.Start();
  EXPECT_FALSE(secondary.WaitForSeq(primary_db.LatestCommitTs(),
                                    std::chrono::milliseconds(100)));
  secondary.Stop();
  primary.Stop();
  EXPECT_EQ(secondary_db.Get("a").value(), "1");
}

TEST(ShutdownTest, RestartedPipelineReplicatesNewCommits) {
  // The other direction of the restart contract: queues reopen on Start(),
  // so commits made *after* the restart flow through the whole pipeline
  // again (before the Reopen fix the closed queues silently ate them and
  // the pipeline was dead for good).
  engine::Database primary_db;
  engine::Database secondary_db;
  Primary primary(&primary_db);
  Secondary secondary(&secondary_db, SecondaryOptions{2});
  primary.AttachSecondary(&secondary);
  primary.Start();
  secondary.Start();

  ASSERT_TRUE(primary_db.Put("a", "1").ok());
  ASSERT_TRUE(secondary.WaitForSeq(primary_db.LatestCommitTs(),
                                   std::chrono::milliseconds(5000)));
  secondary.Stop();
  secondary.Start();

  ASSERT_TRUE(primary_db.Put("b", "2").ok());
  ASSERT_TRUE(secondary.WaitForSeq(primary_db.LatestCommitTs(),
                                   std::chrono::milliseconds(5000)));
  secondary.Stop();
  primary.Stop();
  EXPECT_EQ(secondary_db.Get("a").value(), "1");
  EXPECT_EQ(secondary_db.Get("b").value(), "2");
}

TEST(ShutdownTest, DoubleStartAndDoubleStopAreIdempotent) {
  engine::Database primary_db;
  engine::Database secondary_db;
  Primary primary(&primary_db);
  Secondary secondary(&secondary_db);
  primary.AttachSecondary(&secondary);
  secondary.Start();
  secondary.Start();
  primary.Start();
  primary.Start();
  ASSERT_TRUE(primary_db.Put("k", "v").ok());
  ASSERT_TRUE(secondary.WaitForSeq(primary_db.LatestCommitTs(),
                                   std::chrono::milliseconds(5000)));
  primary.Stop();
  primary.Stop();
  secondary.Stop();
  secondary.Stop();
  EXPECT_EQ(secondary_db.Get("k").value(), "v");
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
