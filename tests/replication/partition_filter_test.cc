#include "replication/partition_map.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <thread>

#include "engine/database.h"
#include "replication/propagator.h"
#include "storage/versioned_store.h"

namespace lazysi {
namespace replication {
namespace {

using Queue = BlockingQueue<PropagationRecord>;

std::optional<PropagationRecord> PopWithin(Queue& q, int ms = 2000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto r = q.TryPop()) return r;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return std::nullopt;
}

std::shared_ptr<const PartitionMap> MakeMap(std::size_t partitions,
                                            std::size_t replication,
                                            std::size_t secondaries) {
  return std::make_shared<const PartitionMap>(
      PartitionMap::Config{partitions, replication,
                           PartitionMap::Scheme::kHash},
      secondaries);
}

TEST(PartitionMapTest, RoundRobinAssignmentAndCoverage) {
  auto map = MakeMap(4, 2, 4);
  EXPECT_TRUE(map->partial());
  EXPECT_EQ(map->num_partitions(), 4u);
  EXPECT_EQ(map->replication_factor(), 2u);
  // Partition p lives on secondaries {p, p+1 mod 4}; each secondary hence
  // covers exactly two partitions.
  for (std::size_t p = 0; p < 4; ++p) {
    const auto& replicas = map->Replicas(p);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_TRUE(std::set<std::size_t>(replicas.begin(), replicas.end()) ==
                std::set<std::size_t>({p, (p + 1) % 4}));
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(map->Coverage(s).size(), 2u);
    EXPECT_DOUBLE_EQ(map->CoverageFraction(s), 0.5);
    for (std::size_t p = 0; p < 4; ++p) {
      const auto& replicas = map->Replicas(p);
      const bool expected =
          std::find(replicas.begin(), replicas.end(), s) != replicas.end();
      EXPECT_EQ(map->Covers(s, p), expected);
    }
  }
}

TEST(PartitionMapTest, SingleFailureNeverUncoversAPartition) {
  auto map = MakeMap(4, 2, 4);
  for (std::size_t killed = 0; killed < 4; ++killed) {
    for (std::size_t p = 0; p < 4; ++p) {
      std::size_t live = 0;
      for (std::size_t s : map->Replicas(p)) {
        if (s != killed) ++live;
      }
      EXPECT_GE(live, 1u) << "partition " << p << " uncovered after killing "
                          << killed;
    }
  }
}

TEST(PartitionMapTest, FullReplicationDegenerates) {
  for (std::size_t replication : {std::size_t{0}, std::size_t{4},
                                  std::size_t{9}}) {
    auto map = MakeMap(4, replication, 4);
    EXPECT_FALSE(map->partial());
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_EQ(map->Coverage(s).size(), 4u);
    }
    SinkFilter filter{map, 0};
    EXPECT_FALSE(filter.active());
  }
  // One partition is full replication no matter the factor.
  EXPECT_FALSE(MakeMap(1, 1, 4)->partial());
}

TEST(PartitionMapTest, SchemesAgreeWithKeyHelpers) {
  const PartitionMap hash(
      PartitionMap::Config{8, 2, PartitionMap::Scheme::kHash}, 4);
  const PartitionMap range(
      PartitionMap::Config{8, 2, PartitionMap::Scheme::kRange}, 4);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i * 37);
    EXPECT_EQ(hash.PartitionOf(key), storage::HashPartitionOfKey(key, 8));
    EXPECT_EQ(range.PartitionOf(key), storage::RangePartitionOfKey(key, 8));
    EXPECT_EQ(hash.CoversKey(1, hash.PartitionOf(key) == 0 ? key : key),
              hash.Covers(1, hash.PartitionOf(key)));
  }
  // Range partitioning keeps lexicographic contiguity: a key's partition
  // never decreases as the key grows.
  std::size_t last = 0;
  for (int c = 0; c < 256; ++c) {
    const std::string key(1, static_cast<char>(c));
    const std::size_t p = range.PartitionOf(key);
    EXPECT_GE(p, last);
    last = p;
  }
}

TEST(PartitionFilterTest, FilteredSinkKeepsSeqContinuity) {
  engine::Database db;
  Propagator prop(db.log());
  auto map = MakeMap(2, 1, 2);
  Queue covered_sink, full_sink;
  prop.AttachSink(&covered_sink, SinkFilter{map, 0});
  prop.AttachSink(&full_sink);
  prop.Start();

  // Commit keys across both partitions; partition 0's sink must still see
  // every record (gapless seq), with uncovered updates replaced by the
  // coverage marker.
  std::size_t covered_updates = 0, total_updates = 0;
  for (int i = 0; i < 40; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db.Put(key, "v").ok());
    ++total_updates;
    if (map->CoversKey(0, key)) ++covered_updates;
  }
  ASSERT_GT(covered_updates, 0u);
  ASSERT_LT(covered_updates, total_updates);

  std::uint64_t next_seq = 0;
  std::size_t received_updates = 0, filtered_updates = 0;
  std::size_t empty_filtered_commits = 0;
  for (int i = 0; i < 80; ++i) {  // 40 starts + 40 commits
    auto r = PopWithin(covered_sink);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(RecordSeq(*r), next_seq++);
    if (auto* c = std::get_if<PropCommit>(&*r)) {
      received_updates += c->updates.size();
      filtered_updates += c->filtered;
      EXPECT_EQ(c->updates.size() + c->filtered, 1u);
      for (const auto& w : c->updates) {
        EXPECT_TRUE(map->CoversKey(0, w.key));
      }
      if (c->updates.empty() && c->filtered > 0) ++empty_filtered_commits;
    }
  }
  EXPECT_EQ(received_updates, covered_updates);
  EXPECT_EQ(received_updates + filtered_updates, total_updates);
  EXPECT_EQ(empty_filtered_commits, total_updates - covered_updates);

  // The unfiltered sink still gets everything.
  std::size_t full_updates = 0;
  for (int i = 0; i < 80; ++i) {
    auto r = PopWithin(full_sink);
    ASSERT_TRUE(r.has_value());
    if (auto* c = std::get_if<PropCommit>(&*r)) {
      full_updates += c->updates.size();
      EXPECT_EQ(c->filtered, 0u);
    }
  }
  EXPECT_EQ(full_updates, total_updates);
  prop.Stop();
}

TEST(PartitionFilterTest, AttachSinkAtReplaysFiltered) {
  engine::Database db;
  Propagator prop(db.log());
  Queue early;
  prop.AttachSink(&early);
  prop.Start();

  auto map = MakeMap(2, 1, 2);
  std::size_t covered = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(db.Put(key, "v").ok());
    if (map->CoversKey(1, key)) ++covered;
  }
  while (prop.position() < db.log()->Size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // A late partial sink replays the full stream, filtered the same way the
  // live path would have filtered it.
  Queue late;
  ASSERT_TRUE(prop.AttachSinkAt(&late, 0, SinkFilter{map, 1}).ok());
  std::uint64_t next_seq = 0;
  std::size_t replayed = 0, filtered = 0;
  for (int i = 0; i < 40; ++i) {
    auto r = PopWithin(late);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(RecordSeq(*r), next_seq++);
    if (auto* c = std::get_if<PropCommit>(&*r)) {
      replayed += c->updates.size();
      filtered += c->filtered;
      for (const auto& w : c->updates) EXPECT_TRUE(map->CoversKey(1, w.key));
    }
  }
  EXPECT_EQ(replayed, covered);
  EXPECT_EQ(replayed + filtered, 20u);

  // Live records after the replay are filtered too.
  ASSERT_TRUE(db.Put("zzz-live", "v").ok());
  bool saw_commit = false;
  for (int i = 0; i < 2; ++i) {
    auto r = PopWithin(late);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(RecordSeq(*r), next_seq++);
    if (auto* c = std::get_if<PropCommit>(&*r)) {
      saw_commit = true;
      EXPECT_EQ(c->updates.size() + c->filtered, 1u);
    }
  }
  EXPECT_TRUE(saw_commit);
  prop.Stop();
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
