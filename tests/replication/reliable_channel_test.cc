// ReliableChannel must rebuild Section 3.2's reliable-FIFO contract on top
// of a ChaosLink that drops, duplicates, corrupts, and disconnects: every
// propagated record arrives at the secondary exactly once, in order, no
// matter what the link does (within the seeded fault schedule).

#include "replication/reliable_channel.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "engine/database.h"
#include "replication/chaos_link.h"
#include "replication/primary.h"
#include "replication/secondary.h"

namespace lazysi {
namespace replication {
namespace {

ReliableChannel::Options FastOptions() {
  ReliableChannel::Options opts;
  opts.ack_interval = 8;
  opts.send_window = 64;
  opts.backoff_initial = std::chrono::milliseconds(1);
  opts.backoff_max = std::chrono::milliseconds(20);
  opts.retransmit_cap = 5;
  return opts;
}

struct Rig {
  engine::Database primary_db;
  engine::Database secondary_db{
      engine::DatabaseOptions{1, "chaos-sec", true}};
  Primary primary{&primary_db};
  Secondary secondary{&secondary_db};
  ChaosLink link;
  ReliableChannel channel;

  Rig(FaultProfile faults, std::uint64_t seed,
      ReliableChannel::Options opts = FastOptions())
      : link(faults, seed),
        channel(primary.propagator(), &link, secondary.update_queue(),
                opts) {}

  void Start() {
    secondary.Start();
    channel.Start();
    primary.Start();
  }

  void Stop() {
    primary.Stop();
    channel.Stop();
    secondary.Stop();
  }

  bool Converged(std::chrono::milliseconds timeout =
                     std::chrono::milliseconds(30000)) {
    return secondary.WaitForSeq(primary_db.LatestCommitTs(), timeout);
  }

  void ExpectStateEqual() {
    EXPECT_EQ(secondary_db.StateHash(), primary_db.StateHash());
    EXPECT_EQ(
        secondary_db.store()->Materialize(secondary_db.LatestCommitTs()),
        primary_db.store()->Materialize(primary_db.LatestCommitTs()));
  }
};

TEST(ReliableChannelTest, LosslessLinkIsPlainPassthrough) {
  // Generous retransmit timer: on a lossless link no retransmission should
  // ever fire, but under sanitizer slowdowns a short timer can legally beat
  // the ack round trip and make the zero-retransmit assertion flaky.
  ReliableChannel::Options opts = FastOptions();
  opts.backoff_initial = std::chrono::milliseconds(250);
  opts.backoff_max = std::chrono::milliseconds(1000);
  Rig rig(FaultProfile{}, 1, opts);
  rig.Start();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.primary_db.Put("k" + std::to_string(i % 7),
                                   std::to_string(i)).ok());
  }
  ASSERT_TRUE(rig.Converged());
  rig.Stop();
  rig.ExpectStateEqual();
  const auto stats = rig.channel.stats();
  EXPECT_EQ(stats.records_delivered,
            rig.primary.propagator()->records_broadcast());
  EXPECT_EQ(stats.retransmit_frames, 0u);
  EXPECT_EQ(stats.crc_rejected, 0u);
  EXPECT_EQ(stats.resyncs, 0u);
  EXPECT_GT(stats.acks_sent, 0u);
}

TEST(ReliableChannelTest, HeavyLossStillDeliversEverythingInOrder) {
  FaultProfile faults;
  faults.drop_probability = 0.20;
  faults.duplicate_probability = 0.10;
  Rig rig(faults, 7);
  rig.Start();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(rig.primary_db.Put("k" + std::to_string(i % 11),
                                   std::to_string(i)).ok());
  }
  ASSERT_TRUE(rig.Converged());
  rig.Stop();
  rig.ExpectStateEqual();
  const auto stats = rig.channel.stats();
  // Exactly-once delivery despite the losses and link-level duplicates.
  EXPECT_EQ(stats.records_delivered,
            rig.primary.propagator()->records_broadcast());
  EXPECT_GT(stats.retransmit_frames, 0u);
  EXPECT_GT(rig.link.counters().dropped, 0u);
}

TEST(ReliableChannelTest, CorruptionIsCaughtByCrcAndRepaired) {
  FaultProfile faults;
  faults.corrupt_probability = 0.15;
  Rig rig(faults, 21);
  rig.Start();
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(rig.primary_db.Put("k" + std::to_string(i % 5),
                                   std::to_string(i)).ok());
  }
  ASSERT_TRUE(rig.Converged());
  rig.Stop();
  rig.ExpectStateEqual();
  const auto stats = rig.channel.stats();
  EXPECT_GT(rig.link.counters().corrupted, 0u);
  EXPECT_GT(stats.crc_rejected, 0u);
  EXPECT_EQ(stats.records_delivered,
            rig.primary.propagator()->records_broadcast());
}

TEST(ReliableChannelTest, ExplicitDisconnectTriggersResyncThroughLog) {
  Rig rig(FaultProfile{}, 33);
  rig.Start();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(rig.primary_db.Put("a" + std::to_string(i), "1").ok());
  }
  ASSERT_TRUE(rig.Converged());

  // Sever the connection; commits made while it is down are only recoverable
  // through the propagator's log replay.
  rig.link.Disconnect();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(rig.primary_db.Put("b" + std::to_string(i), "2").ok());
  }
  ASSERT_TRUE(rig.Converged());
  rig.Stop();
  rig.ExpectStateEqual();
  const auto stats = rig.channel.stats();
  EXPECT_GE(stats.resyncs, 1u);
  // Replay overlap may re-deliver already-acked records; they must have been
  // dropped by sequence number, never applied twice.
  EXPECT_EQ(stats.records_delivered,
            rig.primary.propagator()->records_broadcast());
  EXPECT_EQ(rig.secondary_db.txn_manager()->CommittedCount(),
            rig.primary_db.txn_manager()->CommittedCount());
}

TEST(ReliableChannelTest, EverythingAtOnceConverges) {
  FaultProfile faults;
  faults.drop_probability = 0.08;
  faults.duplicate_probability = 0.05;
  faults.corrupt_probability = 0.05;
  faults.disconnect_probability = 0.002;
  Rig rig(faults, 77);
  rig.Start();
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(rig.primary_db.Put("k" + std::to_string(i % 13),
                                   std::to_string(i)).ok());
  }
  ASSERT_TRUE(rig.Converged());
  rig.Stop();
  rig.ExpectStateEqual();
  EXPECT_EQ(rig.channel.stats().records_delivered,
            rig.primary.propagator()->records_broadcast());
}

TEST(ReliableChannelTest, StartAtReplaysCheckpointSuffix) {
  // A channel attached late via StartAt behaves like a recovering
  // secondary: the log suffix from the (quiesced) checkpoint LSN onward is
  // replayed through the chaos transport.
  engine::Database primary_db;
  engine::Database secondary_db{engine::DatabaseOptions{1, "late", true}};
  Primary primary(&primary_db);
  Secondary secondary(&secondary_db);
  primary.Start();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(primary_db.Put("k" + std::to_string(i), "v").ok());
  }

  FaultProfile faults;
  faults.drop_probability = 0.1;
  ChaosLink link(faults, 5);
  ReliableChannel channel(primary.propagator(), &link,
                          secondary.update_queue(), FastOptions());
  secondary.Start();
  ASSERT_TRUE(channel.StartAt(0).ok());
  ASSERT_TRUE(secondary.WaitForSeq(primary_db.LatestCommitTs(),
                                   std::chrono::milliseconds(30000)));
  primary.Stop();
  channel.Stop();
  secondary.Stop();
  EXPECT_EQ(secondary_db.StateHash(), primary_db.StateHash());
}

TEST(ReliableChannelTest, AckIntervalBatchesCumulativeAcks) {
  // Regression: the receiver used to send a cumulative ack on every wake-up
  // whenever anything had been accepted, so Options::ack_interval never
  // batched. With the knob honored, a steady stream of records must produce
  // far fewer acks than deliveries (one per ack_interval accepted records,
  // plus idle flushes and duplicate/gap re-acks).
  ReliableChannel::Options opts = FastOptions();
  opts.ack_interval = 8;
  // Long idle flush and lazy retransmit timers so batching — not the idle
  // timer or retransmit-induced re-acks — decides the ack count.
  opts.ack_flush_interval = std::chrono::milliseconds(200);
  opts.backoff_initial = std::chrono::milliseconds(250);
  opts.backoff_max = std::chrono::milliseconds(1000);
  Rig rig(FaultProfile{}, 11, opts);
  rig.Start();
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(rig.primary_db.Put("k" + std::to_string(i % 9),
                                   std::to_string(i)).ok());
  }
  ASSERT_TRUE(rig.Converged());
  rig.Stop();
  rig.ExpectStateEqual();
  const auto stats = rig.channel.stats();
  EXPECT_EQ(stats.records_delivered,
            rig.primary.propagator()->records_broadcast());
  EXPECT_GT(stats.acks_sent, 0u);
  EXPECT_LT(stats.acks_sent, stats.records_delivered);
}

TEST(ReliableChannelTest, RestartAfterStopResumesDelivery) {
  Rig rig(FaultProfile{}, 99);
  rig.Start();
  ASSERT_TRUE(rig.primary_db.Put("a", "1").ok());
  ASSERT_TRUE(rig.Converged());

  rig.channel.Stop();
  rig.link.Reopen();
  rig.channel.Start();
  ASSERT_TRUE(rig.primary_db.Put("b", "2").ok());
  ASSERT_TRUE(rig.Converged());
  rig.Stop();
  EXPECT_EQ(rig.secondary_db.Get("a").value(), "1");
  EXPECT_EQ(rig.secondary_db.Get("b").value(), "2");
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
