#include "replication/transport.h"

#include <gtest/gtest.h>

#include "engine/database.h"
#include "replication/primary.h"
#include "replication/secondary.h"

namespace lazysi {
namespace replication {
namespace {

TEST(LatencyChannelTest, DeliversInOrder) {
  BlockingQueue<PropagationRecord> downstream;
  LatencyChannel channel(&downstream,
                         LatencyChannel::Options{
                             std::chrono::milliseconds(1),
                             std::chrono::milliseconds(5), 7});
  channel.Start();
  for (TxnId i = 1; i <= 50; ++i) {
    channel.inlet()->Push(PropStart{i, i});
  }
  // Drain: jitter may delay but never reorder.
  TxnId last = 0;
  for (int i = 0; i < 50; ++i) {
    auto r = downstream.Pop();
    ASSERT_TRUE(r.has_value());
    const TxnId id = RecordTxnId(*r);
    EXPECT_EQ(id, last + 1);
    last = id;
  }
  channel.Stop();
  EXPECT_EQ(channel.delivered(), 50u);
}

TEST(LatencyChannelTest, ImposesMinimumLatency) {
  BlockingQueue<PropagationRecord> downstream;
  LatencyChannel channel(
      &downstream,
      LatencyChannel::Options{std::chrono::milliseconds(50), {}, 1});
  channel.Start();
  const auto t0 = std::chrono::steady_clock::now();
  channel.inlet()->Push(PropStart{1, 1});
  auto r = downstream.Pop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            45);
  channel.Stop();
}

TEST(LatencyChannelTest, RestartAfterStopKeepsDelivering) {
  // Stop() closes the inlet; Start() must reopen it, or a restarted channel
  // silently drops everything pushed afterward.
  BlockingQueue<PropagationRecord> downstream;
  LatencyChannel channel(&downstream,
                         LatencyChannel::Options{
                             std::chrono::milliseconds(1), {}, 11});
  channel.Start();
  channel.inlet()->Push(PropStart{1, 1});
  ASSERT_TRUE(downstream.Pop().has_value());
  channel.Stop();

  channel.Start();
  channel.inlet()->Push(PropStart{2, 2});
  auto r = downstream.Pop();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(RecordTxnId(*r), 2u);
  channel.Stop();
  EXPECT_EQ(channel.delivered(), 2u);
}

TEST(LatencyChannelTest, EndToEndThroughWanLink) {
  // primary --(propagator)--> channel --(delay)--> secondary's queue.
  engine::Database primary_db;
  engine::Database secondary_db(engine::DatabaseOptions{1, "wan-sec", true});
  Primary primary(&primary_db);
  Secondary secondary(&secondary_db);
  LatencyChannel channel(secondary.update_queue(),
                         LatencyChannel::Options{
                             std::chrono::milliseconds(10),
                             std::chrono::milliseconds(10), 3});
  primary.propagator()->AttachSink(channel.inlet());

  secondary.Start();
  channel.Start();
  primary.Start();

  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(primary_db.Put("k" + std::to_string(i % 7),
                               std::to_string(i)).ok());
  }
  ASSERT_TRUE(secondary.WaitForSeq(primary_db.LatestCommitTs(),
                                   std::chrono::milliseconds(20000)));
  primary.Stop();
  channel.Stop();
  secondary.Stop();

  // Same convergence and completeness guarantees across the slow link.
  EXPECT_EQ(secondary_db.StateHash(), primary_db.StateHash());
  EXPECT_EQ(secondary_db.store()->Materialize(secondary_db.LatestCommitTs()),
            primary_db.store()->Materialize(primary_db.LatestCommitTs()));
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
