#include "replication/tcp_replication.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "engine/database.h"
#include "replication/primary.h"
#include "replication/secondary.h"

namespace lazysi {
namespace replication {
namespace {

using namespace std::chrono_literals;

/// Primary DB + propagator + TCP listener, plus helpers to run updates.
struct PrimaryProc {
  engine::Database db;
  Primary primary{&db};
  ReplicationListener listener{primary.propagator(),
                               ReplicationListener::Options{}};

  PrimaryProc() {
    EXPECT_TRUE(listener.Start().ok());
    primary.Start();
  }
  ~PrimaryProc() {
    primary.Stop();
    listener.Stop();
  }

  Timestamp PutN(int n, const std::string& tag) {
    Timestamp last = 0;
    for (int i = 0; i < n; ++i) {
      auto t = db.Begin();
      EXPECT_TRUE(t->Put("key-" + std::to_string(i), tag).ok());
      EXPECT_TRUE(t->Commit().ok());
      last = t->commit_ts();
    }
    return last;
  }
};

/// Secondary DB + refresh machinery + TCP stream client.
struct SecondaryProc {
  engine::Database db;
  Secondary secondary{&db};
  ReplicationReceiver receiver;

  explicit SecondaryProc(std::uint16_t primary_port)
      : db(engine::DatabaseOptions{1, "tcp-sec"}),
        secondary(&db),
        receiver(secondary.update_queue(), [primary_port] {
          ReplicationReceiver::Options o;
          o.primary_port = primary_port;
          o.ack_interval = 4;
          return o;
        }()) {
    secondary.Start();
    receiver.Start();
  }
  ~SecondaryProc() {
    receiver.Stop();
    secondary.Stop();
  }
};

TEST(TcpReplicationTest, StreamsRecordsEndToEnd) {
  PrimaryProc primary;
  SecondaryProc secondary(primary.listener.port());

  const Timestamp last = primary.PutN(40, "v1");
  ASSERT_TRUE(secondary.secondary.WaitForSeq(last, 5000ms));
  EXPECT_EQ(secondary.db.StateHash(), primary.db.StateHash());

  const auto rs = secondary.receiver.stats();
  EXPECT_GT(rs.records_delivered, 0u);
  EXPECT_EQ(rs.reconnects, 0u);
  const auto ls = primary.listener.stats();
  EXPECT_EQ(ls.connections_accepted, 1u);
  EXPECT_GT(ls.records_streamed, 0u);
}

TEST(TcpReplicationTest, ReceiverResyncsAfterConnectionCut) {
  PrimaryProc primary;
  SecondaryProc secondary(primary.listener.port());

  Timestamp last = primary.PutN(25, "v1");
  ASSERT_TRUE(secondary.secondary.WaitForSeq(last, 5000ms));

  // Sever the stream mid-flight; the receiver must reconnect, re-HELLO with
  // its current position, and dedup whatever the sync-point replay overlaps.
  secondary.receiver.CutConnection();
  last = primary.PutN(25, "v2");
  ASSERT_TRUE(secondary.secondary.WaitForSeq(last, 5000ms));
  EXPECT_EQ(secondary.db.StateHash(), primary.db.StateHash());

  const auto rs = secondary.receiver.stats();
  EXPECT_GE(rs.reconnects, 1u);
  EXPECT_EQ(primary.listener.stats().connections_accepted,
            1u + rs.reconnects);
}

TEST(TcpReplicationTest, FreshReceiverReplaysFullLog) {
  PrimaryProc primary;
  const Timestamp mid = primary.PutN(30, "v1");
  {
    SecondaryProc first(primary.listener.port());
    ASSERT_TRUE(first.secondary.WaitForSeq(mid, 5000ms));
  }  // first secondary torn down entirely — the kill -9 analogue in-process

  const Timestamp last = primary.PutN(30, "v2");
  // A brand-new secondary HELLOs with expected_seq = 0 and must receive the
  // whole log (AttachSinkAt(0)), not just the live tail.
  SecondaryProc fresh(primary.listener.port());
  ASSERT_TRUE(fresh.secondary.WaitForSeq(last, 5000ms));
  EXPECT_EQ(fresh.db.StateHash(), primary.db.StateHash());
  EXPECT_EQ(fresh.receiver.stats().duplicates_dropped, 0u);
}

TEST(TcpReplicationTest, ReceiverOutlivesLateListener) {
  // Receiver started before the primary listens: the dial loop must keep
  // retrying until the listener appears (process start-order independence).
  engine::Database primary_db;
  Primary primary(&primary_db);
  ReplicationListener listener(primary.propagator(),
                               ReplicationListener::Options{});
  // Reserve a port by starting and remembering it, then stop to simulate
  // "not up yet" — the port stays free for the later Start.
  ASSERT_TRUE(listener.Start().ok());
  const std::uint16_t port = listener.port();

  SecondaryProc secondary(port);
  primary.Start();
  auto t = primary_db.Begin();
  ASSERT_TRUE(t->Put("k", "v").ok());
  ASSERT_TRUE(t->Commit().ok());
  ASSERT_TRUE(secondary.secondary.WaitForSeq(t->commit_ts(), 5000ms));
  EXPECT_EQ(secondary.db.StateHash(), primary_db.StateHash());
  primary.Stop();
  listener.Stop();
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
