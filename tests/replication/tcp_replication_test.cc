#include "replication/tcp_replication.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "net/event_loop.h"
#include "replication/primary.h"
#include "replication/secondary.h"
#include "replication/wire.h"

namespace lazysi {
namespace replication {
namespace {

using namespace std::chrono_literals;

/// Primary DB + propagator + TCP listener, plus helpers to run updates.
struct PrimaryProc {
  engine::Database db;
  Primary primary{&db};
  ReplicationListener listener;

  explicit PrimaryProc(ReplicationListener::Options options = {})
      : listener(primary.propagator(), std::move(options)) {
    EXPECT_TRUE(listener.Start().ok());
    primary.Start();
  }
  ~PrimaryProc() {
    primary.Stop();
    listener.Stop();
  }

  Timestamp PutN(int n, const std::string& tag) {
    Timestamp last = 0;
    for (int i = 0; i < n; ++i) {
      auto t = db.Begin();
      EXPECT_TRUE(t->Put("key-" + std::to_string(i), tag).ok());
      EXPECT_TRUE(t->Commit().ok());
      last = t->commit_ts();
    }
    return last;
  }
};

/// Secondary DB + refresh machinery + TCP stream client.
struct SecondaryProc {
  engine::Database db;
  Secondary secondary{&db};
  ReplicationReceiver receiver;

  explicit SecondaryProc(std::uint16_t primary_port)
      : db(engine::DatabaseOptions{1, "tcp-sec"}),
        secondary(&db),
        receiver(secondary.update_queue(), [primary_port] {
          ReplicationReceiver::Options o;
          o.primary_port = primary_port;
          o.ack_interval = 4;
          return o;
        }()) {
    secondary.Start();
    receiver.Start();
  }
  ~SecondaryProc() {
    receiver.Stop();
    secondary.Stop();
  }
};

TEST(TcpReplicationTest, StreamsRecordsEndToEnd) {
  PrimaryProc primary;
  SecondaryProc secondary(primary.listener.port());

  const Timestamp last = primary.PutN(40, "v1");
  ASSERT_TRUE(secondary.secondary.WaitForSeq(last, 5000ms));
  EXPECT_EQ(secondary.db.StateHash(), primary.db.StateHash());

  const auto rs = secondary.receiver.stats();
  EXPECT_GT(rs.records_delivered, 0u);
  EXPECT_EQ(rs.reconnects, 0u);
  const auto ls = primary.listener.stats();
  EXPECT_EQ(ls.connections_accepted, 1u);
  EXPECT_GT(ls.records_streamed, 0u);
}

TEST(TcpReplicationTest, ReceiverResyncsAfterConnectionCut) {
  PrimaryProc primary;
  SecondaryProc secondary(primary.listener.port());

  Timestamp last = primary.PutN(25, "v1");
  ASSERT_TRUE(secondary.secondary.WaitForSeq(last, 5000ms));

  // Sever the stream mid-flight; the receiver must reconnect, re-HELLO with
  // its current position, and dedup whatever the sync-point replay overlaps.
  secondary.receiver.CutConnection();
  last = primary.PutN(25, "v2");
  ASSERT_TRUE(secondary.secondary.WaitForSeq(last, 5000ms));
  EXPECT_EQ(secondary.db.StateHash(), primary.db.StateHash());

  const auto rs = secondary.receiver.stats();
  EXPECT_GE(rs.reconnects, 1u);
  EXPECT_EQ(primary.listener.stats().connections_accepted,
            1u + rs.reconnects);
}

TEST(TcpReplicationTest, FreshReceiverReplaysFullLog) {
  PrimaryProc primary;
  const Timestamp mid = primary.PutN(30, "v1");
  {
    SecondaryProc first(primary.listener.port());
    ASSERT_TRUE(first.secondary.WaitForSeq(mid, 5000ms));
  }  // first secondary torn down entirely — the kill -9 analogue in-process

  const Timestamp last = primary.PutN(30, "v2");
  // A brand-new secondary HELLOs with expected_seq = 0 and must receive the
  // whole log (AttachSinkAt(0)), not just the live tail.
  SecondaryProc fresh(primary.listener.port());
  ASSERT_TRUE(fresh.secondary.WaitForSeq(last, 5000ms));
  EXPECT_EQ(fresh.db.StateHash(), primary.db.StateHash());
  EXPECT_EQ(fresh.receiver.stats().duplicates_dropped, 0u);
}

TEST(TcpReplicationTest, ReceiverOutlivesLateListener) {
  // Receiver started before the primary listens: the dial loop must keep
  // retrying until the listener appears (process start-order independence).
  engine::Database primary_db;
  Primary primary(&primary_db);
  ReplicationListener listener(primary.propagator(),
                               ReplicationListener::Options{});
  // Reserve a port by starting and remembering it, then stop to simulate
  // "not up yet" — the port stays free for the later Start.
  ASSERT_TRUE(listener.Start().ok());
  const std::uint16_t port = listener.port();

  SecondaryProc secondary(port);
  primary.Start();
  auto t = primary_db.Begin();
  ASSERT_TRUE(t->Put("k", "v").ok());
  ASSERT_TRUE(t->Commit().ok());
  ASSERT_TRUE(secondary.secondary.WaitForSeq(t->commit_ts(), 5000ms));
  EXPECT_EQ(secondary.db.StateHash(), primary_db.StateHash());
  primary.Stop();
  listener.Stop();
}

TEST(TcpReplicationTest, BatchingDifferentialConvergesToIdenticalState) {
  // Same workload over both wire shapes — coalesced BATCH frames and the
  // PR 8 one-DATA-frame-per-record mode — must materialize the same
  // database. The workload commits before the secondary attaches, so the
  // replay burst is what crosses the wire and batching has runs to coalesce.
  ReplicationListener::Options batched;
  batched.batch_flush_interval = 10ms;
  ReplicationListener::Options unbatched;
  unbatched.batching = false;

  PrimaryProc p_on(batched);
  PrimaryProc p_off(unbatched);
  const Timestamp last_on = p_on.PutN(200, "v");
  const Timestamp last_off = p_off.PutN(200, "v");

  SecondaryProc s_on(p_on.listener.port());
  SecondaryProc s_off(p_off.listener.port());
  ASSERT_TRUE(s_on.secondary.WaitForSeq(last_on, 10000ms));
  ASSERT_TRUE(s_off.secondary.WaitForSeq(last_off, 10000ms));

  EXPECT_EQ(s_on.db.StateHash(), p_on.db.StateHash());
  EXPECT_EQ(s_off.db.StateHash(), p_off.db.StateHash());
  // Identical workloads, identical state — across the wire shapes too.
  EXPECT_EQ(s_on.db.StateHash(), s_off.db.StateHash());

  const auto on = p_on.listener.stats();
  const auto off = p_off.listener.stats();
  EXPECT_EQ(on.records_streamed, off.records_streamed);
  // Batching mode emits only BATCH frames; legacy mode none.
  EXPECT_GT(on.batch_frames_sent, 0u);
  EXPECT_EQ(on.batch_frames_sent, on.frames_sent);
  EXPECT_EQ(off.batch_frames_sent, 0u);
  EXPECT_EQ(off.frames_sent, off.records_streamed);
  // The point of the exercise: the replay burst coalesces, so the batched
  // wire moves the same records in far fewer frames (and fewer syscalls —
  // the bench quantifies that; here we assert the shape).
  EXPECT_LT(on.frames_sent, off.frames_sent / 2);
}

TEST(TcpReplicationTest, CutStormConvergesWithBatchingOnAndOff) {
  // Chaos row for the batched wire: repeated mid-stream connection cuts
  // force reconnect + sync-point replay + dedup, under both wire shapes.
  // Whatever mix of BATCH/DATA frames and replay overlap results, the
  // secondary must land on the primary's exact state.
  for (const bool batching : {true, false}) {
    SCOPED_TRACE(batching ? "batching=on" : "batching=off");
    ReplicationListener::Options lo;
    lo.batching = batching;
    PrimaryProc primary(lo);
    SecondaryProc secondary(primary.listener.port());

    Timestamp last = 0;
    for (int round = 0; round < 8; ++round) {
      last = primary.PutN(15, "round-" + std::to_string(round));
      // Let the stream establish and deliver, then sever it — each round
      // cuts a live connection, not a dial still in flight.
      ASSERT_TRUE(secondary.secondary.WaitForSeq(last, 10000ms));
      secondary.receiver.CutConnection();
    }
    last = primary.PutN(15, "final");
    ASSERT_TRUE(secondary.secondary.WaitForSeq(last, 10000ms));
    EXPECT_EQ(secondary.db.StateHash(), primary.db.StateHash());
    EXPECT_GE(secondary.receiver.stats().reconnects, 1u);
  }
}

/// Reads the receiver's HELLO off a fake-primary socket and returns the
/// stream position it expects.
std::uint64_t ReadHelloExpected(FramedSocket* peer) {
  auto hello = peer->Recv();
  EXPECT_TRUE(hello.has_value());
  if (!hello.has_value()) return 0;
  EXPECT_EQ((*hello)[0], kReplHelloTag);
  std::size_t off = 1;
  std::uint64_t expected = 0;
  EXPECT_TRUE(GetVarint(*hello, &off, &expected));
  return expected;
}

/// WELCOME at `base` plus one BATCH of `n` start records seq base..base+n-1,
/// as one wire blob.
std::string WelcomeAndBatch(std::uint64_t base, std::uint64_t n) {
  std::string welcome(1, kReplWelcomeTag);
  PutVarint(&welcome, base);
  std::string wire;
  AppendTcpFrame(&wire, welcome);
  std::vector<PropagationRecord> records;
  records.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    records.push_back(PropStart{base + i + 1, base + i + 1, base + i});
  }
  AppendTcpFrame(&wire, EncodeBatchFramePayload(records));
  return wire;
}

TEST(TcpReplicationTest, ReceiverSurvivesPeerResetDuringBatchApply) {
  // Regression: with ack_interval = 1 every record of a BATCH frame writes
  // an ACK from inside the batch-apply loop. A peer reset racing the apply
  // makes one of those writes fail inline, which tears the connection down
  // (and nulls the receiver's connection handle) while the loop still holds
  // records; the receiver must abandon the rest of the batch — the
  // reconnect replay redelivers it — instead of crashing on the dead
  // connection.
  std::uint16_t port = 0;
  const int lfd = ListenOn("127.0.0.1", 0, &port);
  ASSERT_GE(lfd, 0);

  BlockingQueue<PropagationRecord> sink;
  ReplicationReceiver receiver(&sink, [port] {
    ReplicationReceiver::Options o;
    o.primary_port = port;
    o.ack_interval = 1;
    o.reconnect_backoff = std::chrono::milliseconds(5);
    o.reconnect_backoff_max = std::chrono::milliseconds(20);
    return o;
  }());
  receiver.Start();

  for (int round = 0; round < 8; ++round) {
    const int cfd = AcceptOn(lfd);
    ASSERT_GE(cfd, 0);
    FramedSocket peer(cfd);
    const std::uint64_t base = ReadHelloExpected(&peer);
    ASSERT_TRUE(SendAll(peer.fd(), WelcomeAndBatch(base, 4096)));
    // Reset, not FIN: queued data stays deliverable, but the receiver's
    // in-batch ACK writes start failing the instant the RST lands — for
    // most rounds, mid-apply.
    struct linger lg;
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(peer.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    peer.Close();
  }

  // Survival check: the receiver still redials and applies a cleanly
  // delivered tail to completion.
  const int cfd = AcceptOn(lfd);
  ASSERT_GE(cfd, 0);
  FramedSocket peer(cfd);
  const std::uint64_t base = ReadHelloExpected(&peer);
  ASSERT_TRUE(SendAll(peer.fd(), WelcomeAndBatch(base, 8)));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (receiver.next_expected() < base + 8) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "receiver did not recover from the reset storm";
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GT(receiver.stats().records_delivered, 0u);
  receiver.Stop();
  peer.Close();
  ::close(lfd);
}

int CountOwnThreads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::stoi(line.substr(sizeof("Threads:") - 1));
    }
  }
  return -1;
}

TEST(TcpReplicationTest, SharedLoopFanOutAddsNoThreadsPerConnection) {
  // The scaling claim of the reactor: 16 stream connections sharing one
  // event loop add zero threads — I/O threads are O(loops), not
  // O(connections). The receivers feed bare queues (no Secondary applier
  // stacks, which would legitimately add worker threads each).
  net::EventLoop loop;
  loop.Start();
  engine::Database db;
  Primary primary(&db);
  ReplicationListener::Options lo;
  lo.loop = &loop;
  ReplicationListener listener(primary.propagator(), lo);
  ASSERT_TRUE(listener.Start().ok());
  primary.Start();
  Timestamp last = 0;
  for (int i = 0; i < 30; ++i) {
    auto t = db.Begin();
    ASSERT_TRUE(t->Put("key-" + std::to_string(i), "v").ok());
    ASSERT_TRUE(t->Commit().ok());
    last = t->commit_ts();
  }
  (void)last;

  const int before = CountOwnThreads();
  ASSERT_GT(before, 0);

  constexpr int kFanOut = 16;
  std::vector<std::unique_ptr<BlockingQueue<PropagationRecord>>> sinks;
  std::vector<std::unique_ptr<ReplicationReceiver>> receivers;
  for (int i = 0; i < kFanOut; ++i) {
    sinks.push_back(std::make_unique<BlockingQueue<PropagationRecord>>());
    ReplicationReceiver::Options ro;
    ro.primary_port = listener.port();
    ro.loop = &loop;
    receivers.push_back(
        std::make_unique<ReplicationReceiver>(sinks.back().get(), ro));
    receivers.back()->Start();
  }

  // Every receiver replays the full log to the same stream position.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  for (;;) {
    std::uint64_t lo_seq = UINT64_MAX, hi_seq = 0;
    for (auto& r : receivers) {
      lo_seq = std::min(lo_seq, r->next_expected());
      hi_seq = std::max(hi_seq, r->next_expected());
    }
    if (hi_seq > 0 && lo_seq == hi_seq) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "fan-out did not converge: " << lo_seq << " vs " << hi_seq;
    std::this_thread::sleep_for(5ms);
  }

  const int during = CountOwnThreads();
  // Zero threads per connection; allow tiny slack for runtime noise.
  EXPECT_LE(during - before, 1) << "before=" << before << " during=" << during;

  for (auto& r : receivers) r->Stop();
  primary.Stop();
  listener.Stop();
  loop.Stop();
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
