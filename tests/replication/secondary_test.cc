#include "replication/secondary.h"

#include <gtest/gtest.h>

#include "engine/database.h"
#include "replication/primary.h"

namespace lazysi {
namespace replication {
namespace {

class SecondaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    primary_db_ = std::make_unique<engine::Database>();
    primary_ = std::make_unique<Primary>(primary_db_.get());
    secondary_db_ = std::make_unique<engine::Database>(
        engine::DatabaseOptions{1, "sec", true});
    secondary_ = std::make_unique<Secondary>(secondary_db_.get());
    primary_->AttachSecondary(secondary_.get());
    secondary_->Start();
    primary_->Start();
  }

  void TearDown() override {
    primary_->Stop();
    secondary_->Stop();
  }

  bool Sync() {
    return secondary_->WaitForSeq(primary_db_->LatestCommitTs(),
                                  std::chrono::milliseconds(5000));
  }

  std::unique_ptr<engine::Database> primary_db_;
  std::unique_ptr<Primary> primary_;
  std::unique_ptr<engine::Database> secondary_db_;
  std::unique_ptr<Secondary> secondary_;
};

TEST_F(SecondaryTest, SingleUpdatePropagates) {
  ASSERT_TRUE(primary_db_->Put("k", "v").ok());
  ASSERT_TRUE(Sync());
  EXPECT_EQ(secondary_db_->Get("k").value(), "v");
  EXPECT_EQ(secondary_->applied_seq(), primary_db_->LatestCommitTs());
  EXPECT_EQ(secondary_->refreshed_count(), 1u);
}

TEST_F(SecondaryTest, DeletesPropagate) {
  ASSERT_TRUE(primary_db_->Put("k", "v").ok());
  ASSERT_TRUE(primary_db_->Delete("k").ok());
  ASSERT_TRUE(Sync());
  EXPECT_TRUE(secondary_db_->Get("k").status().IsNotFound());
}

TEST_F(SecondaryTest, MultiKeyTransactionAppliedAtomically) {
  auto t = primary_db_->Begin();
  ASSERT_TRUE(t->Put("a", "1").ok());
  ASSERT_TRUE(t->Put("b", "2").ok());
  ASSERT_TRUE(t->Commit().ok());
  ASSERT_TRUE(Sync());
  // Both keys installed by one refresh transaction: same local commit ts.
  auto a = secondary_db_->store()->Get("a", secondary_db_->LatestCommitTs());
  auto b = secondary_db_->store()->Get("b", secondary_db_->LatestCommitTs());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->commit_ts, b->commit_ts);
}

TEST_F(SecondaryTest, AbortedTxnNotApplied) {
  auto t = primary_db_->Begin();
  ASSERT_TRUE(t->Put("gone", "x").ok());
  t->Abort();
  ASSERT_TRUE(primary_db_->Put("present", "y").ok());
  ASSERT_TRUE(Sync());
  EXPECT_TRUE(secondary_db_->Get("gone").status().IsNotFound());
  EXPECT_EQ(secondary_db_->Get("present").value(), "y");
}

TEST_F(SecondaryTest, ManyTransactionsStateConverges) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        primary_db_->Put("k" + std::to_string(i % 17), std::to_string(i)).ok());
  }
  ASSERT_TRUE(Sync());
  EXPECT_EQ(secondary_db_->store()->Materialize(
                secondary_db_->LatestCommitTs()),
            primary_db_->store()->Materialize(primary_db_->LatestCommitTs()));
  // Completeness (Theorem 3.1): the state chain matches hash-for-hash.
  auto p_chain = primary_db_->StateChainHistory();
  auto s_chain = secondary_db_->StateChainHistory();
  ASSERT_EQ(p_chain.size(), s_chain.size());
  for (std::size_t i = 0; i < p_chain.size(); ++i) {
    ASSERT_EQ(p_chain[i].hash, s_chain[i].hash) << "state " << i;
  }
}

TEST_F(SecondaryTest, WaitForSeqTimesOutWhenAhead) {
  EXPECT_FALSE(secondary_->WaitForSeq(primary_db_->LatestCommitTs() + 100,
                                      std::chrono::milliseconds(50)));
}

TEST_F(SecondaryTest, TranslateLocalToPrimary) {
  ASSERT_TRUE(primary_db_->Put("k", "v").ok());
  const Timestamp primary_ts = primary_db_->LatestCommitTs();
  ASSERT_TRUE(Sync());
  auto read = secondary_db_->store()->Get("k", secondary_db_->LatestCommitTs());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(secondary_->TranslateLocalToPrimary(read->commit_ts), primary_ts);
  EXPECT_EQ(secondary_->TranslateLocalToPrimary(9999), kInvalidTimestamp);
}

TEST_F(SecondaryTest, ConcurrentPrimaryWritersReplicateCompletely) {
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 50; ++i) {
        // Disjoint key ranges: no FCW aborts.
        auto t = primary_db_->Begin();
        ASSERT_TRUE(
            t->Put("w" + std::to_string(w) + "/" + std::to_string(i), "v")
                .ok());
        ASSERT_TRUE(t->Commit().ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  ASSERT_TRUE(Sync());
  EXPECT_EQ(secondary_db_->store()->KeyCount(), 200u);
  // Refresh commit order equals primary commit order (Lemma 3.3) =>
  // identical chains.
  EXPECT_EQ(secondary_db_->StateHash(), primary_db_->StateHash());
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
