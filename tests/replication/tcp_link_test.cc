// TcpLink must behave exactly like ChaosLink from ReliableChannel's point of
// view while the frames genuinely cross kernel loopback sockets: framing
// survives arbitrary read/write fragmentation, disconnects map onto the
// existing resync machinery, and the seeded fault injector composes with a
// real wire.

#include "replication/tcp_link.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "replication/primary.h"
#include "replication/reliable_channel.h"
#include "replication/secondary.h"

namespace lazysi {
namespace replication {
namespace {

// --- framer ---

TEST(TcpFramerTest, ReassemblesFramesFedOneByteAtATime) {
  std::vector<std::string> payloads = {"", "a", std::string(5000, 'x'),
                                       std::string("\x00\x01\xff", 3)};
  std::string wire;
  for (const auto& p : payloads) AppendTcpFrame(&wire, p);

  TcpFramer framer;
  std::vector<std::string> out;
  for (char c : wire) {
    ASSERT_TRUE(framer.Feed(std::string_view(&c, 1)));
    while (auto f = framer.Next()) out.push_back(std::move(*f));
  }
  EXPECT_EQ(out, payloads);
  EXPECT_EQ(framer.buffered(), 0u);
  EXPECT_FALSE(framer.poisoned());
}

TEST(TcpFramerTest, TruncatedPrefixYieldsNothing) {
  std::string wire;
  AppendTcpFrame(&wire, "hello");
  for (std::size_t cut = 0; cut < 4; ++cut) {
    TcpFramer framer;
    ASSERT_TRUE(framer.Feed(std::string_view(wire).substr(0, cut)));
    EXPECT_FALSE(framer.Next().has_value()) << "cut=" << cut;
    EXPECT_FALSE(framer.poisoned());
  }
}

TEST(TcpFramerTest, MidFramePayloadWaitsForTheRest) {
  std::string wire;
  AppendTcpFrame(&wire, "hello world");
  TcpFramer framer;
  ASSERT_TRUE(framer.Feed(std::string_view(wire).substr(0, 7)));
  EXPECT_FALSE(framer.Next().has_value());
  ASSERT_TRUE(framer.Feed(std::string_view(wire).substr(7)));
  auto f = framer.Next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, "hello world");
}

TEST(TcpFramerTest, OversizedLengthPoisonsTheStream) {
  // Length prefix claims 0xffffffff bytes: no allocation, no waiting — the
  // stream is dead and stays dead.
  TcpFramer framer;
  ASSERT_TRUE(framer.Feed(std::string("\xff\xff\xff\xff", 4)));
  EXPECT_FALSE(framer.Next().has_value());
  EXPECT_TRUE(framer.poisoned());
  EXPECT_FALSE(framer.Feed("more bytes"));
  EXPECT_FALSE(framer.Next().has_value());
}

TEST(TcpFramerTest, ClampIsExact) {
  TcpFramer small(8);
  std::string ok_wire;
  AppendTcpFrame(&ok_wire, std::string(8, 'y'));
  ASSERT_TRUE(small.Feed(ok_wire));
  EXPECT_TRUE(small.Next().has_value());

  TcpFramer small2(8);
  std::string bad_wire;
  AppendTcpFrame(&bad_wire, std::string(9, 'y'));
  ASSERT_TRUE(small2.Feed(bad_wire));
  EXPECT_FALSE(small2.Next().has_value());
  EXPECT_TRUE(small2.poisoned());
}

// --- link ---

std::optional<std::string> PollAck(TcpLink* link, int tries = 2000) {
  for (int i = 0; i < tries; ++i) {
    if (auto ack = link->TryReceiveAck()) return ack;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return std::nullopt;
}

TEST(TcpLinkTest, DeliversDataAndAcksOverLoopback) {
  TcpLink link;
  ASSERT_TRUE(link.ok());
  ASSERT_TRUE(link.SendData("record-1"));
  ASSERT_TRUE(link.SendData("record-2"));
  ASSERT_TRUE(link.SendAck("ack-1"));

  auto d1 = link.ReceiveData();
  auto d2 = link.ReceiveData();
  ASSERT_TRUE(d1.has_value() && d2.has_value());
  EXPECT_EQ(*d1, "record-1");
  EXPECT_EQ(*d2, "record-2");
  auto a = PollAck(&link);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, "ack-1");

  const auto c = link.counters();
  EXPECT_EQ(c.sent, 3u);
  EXPECT_EQ(c.delivered, 3u);
  EXPECT_EQ(c.dropped, 0u);
  link.Close();
  EXPECT_FALSE(link.ReceiveData().has_value());
}

TEST(TcpLinkTest, LargeFrameSurvivesPartialReadsAndWrites) {
  // Far beyond any socket buffer: the write side must loop over partial
  // sends and the reader must reassemble across many recv() calls.
  TcpLink link;
  ASSERT_TRUE(link.ok());
  std::string big(6 * 1024 * 1024, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>(i * 2654435761u);
  }
  // Writer must run concurrently with the reader: a 6 MiB frame cannot sit
  // in the kernel buffers alone, so a same-thread send would deadlock.
  std::thread writer([&] { EXPECT_TRUE(link.SendData(big)); });
  auto got = link.ReceiveData();
  writer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, big);
}

TEST(TcpLinkTest, ReceiveDataForTimesOutThenDelivers) {
  TcpLink link;
  ASSERT_TRUE(link.ok());
  EXPECT_FALSE(link.ReceiveDataFor(std::chrono::milliseconds(5)).has_value());
  ASSERT_TRUE(link.SendData("late"));
  auto got = link.ReceiveDataFor(std::chrono::milliseconds(2000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "late");
}

TEST(TcpLinkTest, DisconnectDropsSendsUntilReconnect) {
  TcpLink link;
  ASSERT_TRUE(link.ok());
  ASSERT_TRUE(link.SendData("before"));
  ASSERT_EQ(link.ReceiveData().value_or(""), "before");

  link.Disconnect();
  EXPECT_TRUE(link.disconnected());
  EXPECT_FALSE(link.SendData("lost"));
  EXPECT_GE(link.counters().disconnects, 1u);

  link.Reconnect();
  EXPECT_FALSE(link.disconnected());
  ASSERT_TRUE(link.SendData("after"));
  EXPECT_EQ(link.ReceiveData().value_or(""), "after");
  const auto c = link.counters();
  EXPECT_GE(c.dropped, 1u);
}

TEST(TcpLinkTest, ReopenAfterCloseRestoresService) {
  TcpLink link;
  ASSERT_TRUE(link.ok());
  ASSERT_TRUE(link.SendData("one"));
  ASSERT_EQ(link.ReceiveData().value_or(""), "one");
  link.Close();
  link.Reopen();
  ASSERT_TRUE(link.ok());
  ASSERT_TRUE(link.SendData("two"));
  EXPECT_EQ(link.ReceiveData().value_or(""), "two");
}

// --- ReliableChannel over real sockets ---

ReliableChannel::Options FastOptions() {
  ReliableChannel::Options opts;
  opts.ack_interval = 8;
  opts.send_window = 64;
  opts.backoff_initial = std::chrono::milliseconds(1);
  opts.backoff_max = std::chrono::milliseconds(20);
  opts.retransmit_cap = 5;
  return opts;
}

struct TcpRig {
  engine::Database primary_db;
  engine::Database secondary_db{engine::DatabaseOptions{1, "tcp-sec", true}};
  Primary primary{&primary_db};
  Secondary secondary{&secondary_db};
  TcpLink link;
  ReliableChannel channel;

  TcpRig(FaultProfile faults, std::uint64_t seed,
         ReliableChannel::Options opts = FastOptions())
      : link(faults, seed),
        channel(primary.propagator(), &link, secondary.update_queue(),
                opts) {}

  void Start() {
    secondary.Start();
    channel.Start();
    primary.Start();
  }
  void Stop() {
    primary.Stop();
    channel.Stop();
    secondary.Stop();
  }
  bool Converged() {
    return secondary.WaitForSeq(primary_db.LatestCommitTs(),
                                std::chrono::milliseconds(30000));
  }
};

TEST(TcpLinkTest, ReliableChannelConvergesOverCleanSockets) {
  TcpRig rig(FaultProfile{}, 3);
  ASSERT_TRUE(rig.link.ok());
  rig.Start();
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(rig.primary_db.Put("k" + std::to_string(i % 10),
                                   std::to_string(i)).ok());
  }
  ASSERT_TRUE(rig.Converged());
  rig.Stop();
  EXPECT_EQ(rig.secondary_db.StateHash(), rig.primary_db.StateHash());
  const auto stats = rig.channel.stats();
  EXPECT_EQ(stats.records_delivered,
            rig.primary.propagator()->records_broadcast());
  EXPECT_EQ(stats.crc_rejected, 0u);
}

TEST(TcpLinkTest, ReliableChannelRidesOutFaultsOnRealSockets) {
  FaultProfile faults;
  faults.drop_probability = 0.10;
  faults.duplicate_probability = 0.05;
  faults.corrupt_probability = 0.05;
  TcpRig rig(faults, 17);
  ASSERT_TRUE(rig.link.ok());
  rig.Start();
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(rig.primary_db.Put("k" + std::to_string(i % 7),
                                   std::to_string(i)).ok());
  }
  ASSERT_TRUE(rig.Converged());
  rig.Stop();
  EXPECT_EQ(rig.secondary_db.StateHash(), rig.primary_db.StateHash());
  const auto stats = rig.channel.stats();
  EXPECT_EQ(stats.records_delivered,
            rig.primary.propagator()->records_broadcast());
  EXPECT_GT(rig.link.counters().dropped, 0u);
}

TEST(TcpLinkTest, ReliableChannelResyncsAfterSocketCut) {
  TcpRig rig(FaultProfile{}, 29);
  ASSERT_TRUE(rig.link.ok());
  rig.Start();
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(rig.primary_db.Put("a" + std::to_string(i), "1").ok());
  }
  ASSERT_TRUE(rig.Converged());

  rig.link.Disconnect();
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(rig.primary_db.Put("b" + std::to_string(i), "2").ok());
  }
  ASSERT_TRUE(rig.Converged());
  rig.Stop();
  EXPECT_EQ(rig.secondary_db.StateHash(), rig.primary_db.StateHash());
  EXPECT_GE(rig.channel.stats().resyncs, 1u);
  EXPECT_EQ(rig.channel.stats().records_delivered,
            rig.primary.propagator()->records_broadcast());
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
