// Section 3.4's design rationale, made executable: if the propagated-record
// queue lived *inside* the database, concurrent refresh transactions would
// contend on the queue's pages and first-committer-wins would abort all but
// one — collapsing the refresh pipeline to a sequential process. Keeping the
// queue outside the database (common::BlockingQueue) avoids that entirely.

#include <gtest/gtest.h>

#include "common/queue.h"
#include "engine/database.h"
#include "replication/messages.h"

namespace lazysi {
namespace replication {
namespace {

TEST(QueuePlacementTest, InDatabaseQueueCausesFcwAborts) {
  // Model an in-database FIFO queue the obvious way: a "tail" cursor key
  // that every enqueue must read and bump. Two concurrent transactions
  // enqueueing have a write-write conflict on the cursor.
  engine::Database db;
  ASSERT_TRUE(db.Put("queue/tail", "0").ok());

  auto enqueue_a = db.Begin();
  auto enqueue_b = db.Begin();
  for (auto* t : {enqueue_a.get(), enqueue_b.get()}) {
    auto tail = t->Get("queue/tail");
    ASSERT_TRUE(tail.ok());
    const int slot = std::stoi(*tail);
    ASSERT_TRUE(t->Put("queue/item/" + std::to_string(slot), "record").ok());
    ASSERT_TRUE(t->Put("queue/tail", std::to_string(slot + 1)).ok());
  }
  EXPECT_TRUE(enqueue_a->Commit().ok());
  // The second concurrent enqueuer aborts under FCW: progress degrades to
  // one enqueue at a time — exactly what Section 3.4 warns about.
  EXPECT_TRUE(enqueue_b->Commit().IsWriteConflict());
}

TEST(QueuePlacementTest, ExternalQueueHasNoSuchContention) {
  // The external queue admits fully concurrent producers with no aborts.
  BlockingQueue<PropagationRecord> queue;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 250; ++i) {
        ASSERT_TRUE(queue.Push(PropStart{
            static_cast<TxnId>(p * 1000 + i), static_cast<Timestamp>(i)}));
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(queue.size(), 1000u);
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
