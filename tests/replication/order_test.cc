#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/database.h"
#include "replication/primary.h"
#include "replication/secondary.h"

namespace lazysi {
namespace replication {
namespace {

struct Lifespan {
  Timestamp start_ts = kInvalidTimestamp;
  Timestamp commit_ts = kInvalidTimestamp;
};

// Extracts (start, commit) lifespans of committed update transactions from a
// site's logical log, in commit-timestamp order.
std::vector<Lifespan> CommittedLifespans(engine::Database* db) {
  std::map<TxnId, Lifespan> by_txn;
  std::vector<TxnId> commit_order;
  for (std::size_t lsn = 0; lsn < db->log()->Size(); ++lsn) {
    auto r = db->log()->At(lsn);
    if (r->type == wal::LogRecordType::kStart) {
      by_txn[r->txn_id].start_ts = r->timestamp;
    } else if (r->type == wal::LogRecordType::kCommit) {
      by_txn[r->txn_id].commit_ts = r->timestamp;
      commit_order.push_back(r->txn_id);
    }
  }
  std::vector<Lifespan> out;
  for (TxnId id : commit_order) out.push_back(by_txn[id]);
  return out;
}

// The paper's synchronization relationships (Section 3.1):
//  1. start_p(T2) > commit_p(T1) => start_s(R2) > commit_s(R1)
//  2. commit_p(T2) > start_p(T1) => commit_s(R2) > start_s(R1)
//  3. commit_p(T2) > commit_p(T1) => commit_s(R2) > commit_s(R1)
// We generate a concurrent primary workload, replicate it, reconstruct the
// refresh transactions' lifespans from the secondary's own log, and check
// all three implications over every pair (Lemmas 3.1-3.3).
TEST(RefreshOrderTest, LemmasHoldOverConcurrentWorkload) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database secondary_db(engine::DatabaseOptions{1, "sec", true});
  Secondary secondary(&secondary_db, SecondaryOptions{4});
  primary.AttachSecondary(&secondary);
  secondary.Start();
  primary.Start();

  constexpr int kWriters = 4;
  constexpr int kTxnsPerWriter = 40;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(500 + w);
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto t = primary_db.Begin();
        // Disjoint key spaces keep all transactions committable while still
        // producing overlapping lifespans.
        const int ops = static_cast<int>(rng.UniformInt(1, 4));
        for (int o = 0; o < ops; ++o) {
          ASSERT_TRUE(t->Put("w" + std::to_string(w) + "/k" +
                                 std::to_string(rng.Next(10)),
                             std::to_string(i))
                          .ok());
        }
        if (rng.Bernoulli(0.1)) {
          t->Abort();  // aborted transactions must not disturb the order
        } else {
          ASSERT_TRUE(t->Commit().ok());
        }
        if (rng.Bernoulli(0.3)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  ASSERT_TRUE(secondary.WaitForSeq(primary_db.LatestCommitTs(),
                                   std::chrono::milliseconds(10000)));
  primary.Stop();
  secondary.Stop();

  const auto primary_spans = CommittedLifespans(&primary_db);
  const auto refresh_spans = CommittedLifespans(&secondary_db);
  ASSERT_EQ(primary_spans.size(), refresh_spans.size());
  ASSERT_GT(primary_spans.size(), 100u);

  const std::size_t n = primary_spans.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const Lifespan& ti = primary_spans[i];
      const Lifespan& tj = primary_spans[j];
      const Lifespan& ri = refresh_spans[i];
      const Lifespan& rj = refresh_spans[j];
      if (tj.start_ts > ti.commit_ts) {
        ASSERT_GT(rj.start_ts, ri.commit_ts)
            << "relationship 1 violated at pair (" << i << "," << j << ")";
      }
      if (tj.commit_ts > ti.start_ts) {
        ASSERT_GT(rj.commit_ts, ri.start_ts)
            << "relationship 2 violated at pair (" << i << "," << j << ")";
      }
      if (tj.commit_ts > ti.commit_ts) {
        ASSERT_GT(rj.commit_ts, ri.commit_ts)
            << "relationship 3 violated at pair (" << i << "," << j << ")";
      }
    }
  }

  // And the states themselves agree (Theorem 3.1).
  EXPECT_EQ(primary_db.StateHash(), secondary_db.StateHash());
}

// Concurrency actually happens at the secondary: with a multi-thread
// applicator pool, refresh transactions whose primary lifespans overlapped
// may also overlap locally (that is the point of exploiting the local
// concurrency control instead of serializing, Section 3.3).
TEST(RefreshOrderTest, RefreshTransactionsOverlapLocally) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database secondary_db(engine::DatabaseOptions{1, "sec", true});
  Secondary secondary(&secondary_db, SecondaryOptions{4});
  primary.AttachSecondary(&secondary);

  // Build an overlapping batch at the primary BEFORE starting replication,
  // so the secondary sees it all at once and can refresh concurrently.
  std::vector<std::unique_ptr<txn::Transaction>> txns;
  for (int i = 0; i < 8; ++i) txns.push_back(primary_db.Begin());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(txns[i]->Put("k" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(txns[i]->Commit().ok());

  secondary.Start();
  primary.Start();
  ASSERT_TRUE(secondary.WaitForSeq(primary_db.LatestCommitTs(),
                                   std::chrono::milliseconds(10000)));
  primary.Stop();
  secondary.Stop();

  const auto spans = CommittedLifespans(&secondary_db);
  ASSERT_EQ(spans.size(), 8u);
  // At least one pair of refresh transactions overlapped: start of a later
  // one before commit of an earlier one.
  bool overlapped = false;
  for (std::size_t i = 0; i < spans.size() && !overlapped; ++i) {
    for (std::size_t j = i + 1; j < spans.size() && !overlapped; ++j) {
      if (spans[j].start_ts < spans[i].commit_ts) overlapped = true;
    }
  }
  EXPECT_TRUE(overlapped)
      << "refresh pipeline serialized transactions that could run "
         "concurrently";
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
