// Fuzz coverage for the propagation wire codec. With the chaos transport,
// DecodeRecord parses bytes that crossed a link which corrupts frames on
// purpose, so the codec is on a trust boundary inside our own test rig —
// not just in a hypothetical networked deployment. Seeded mutations of
// valid encodings plus a directed corpus for the historic decoder bugs.

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"
#include "replication/tcp_link.h"
#include "replication/tcp_replication.h"
#include "replication/wire.h"

namespace lazysi {
namespace replication {
namespace {

std::vector<PropagationRecord> RandomBatch(Rng* rng, int n) {
  std::vector<PropagationRecord> batch;
  for (int i = 0; i < n; ++i) {
    switch (rng->Next(3)) {
      case 0:
        batch.push_back(PropStart{rng->Next(1 << 20), rng->Next(1 << 30),
                                  rng->Next(1 << 24)});
        break;
      case 1: {
        PropCommit c{rng->Next(1 << 20), rng->Next(1 << 30), {},
                     rng->Next(1 << 24), rng->Next(8)};
        const auto updates = rng->Next(4);
        for (std::uint64_t u = 0; u < updates; ++u) {
          c.updates.push_back(storage::Write{
              "k" + std::to_string(rng->Next(64)),
              std::string(rng->Next(32), 'x'), rng->Bernoulli(0.25)});
        }
        batch.push_back(std::move(c));
        break;
      }
      default:
        batch.push_back(PropAbort{rng->Next(1 << 20), rng->Next(1 << 24)});
    }
  }
  return batch;
}

TEST(WireFuzzTest, MutatedValidBatchesNeverCrashOrOverread) {
  Rng rng(4242);
  for (int trial = 0; trial < 400; ++trial) {
    const std::string base = EncodeBatch(RandomBatch(&rng, 1 + rng.Next(6)));
    if (base.empty()) continue;
    // A handful of random byte flips / truncations / insertions per trial.
    std::string mutated = base;
    const auto mutations = 1 + rng.Next(4);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      switch (rng.Next(3)) {
        case 0:  // flip
          mutated[rng.Next(mutated.size())] ^=
              static_cast<char>(1 + rng.Next(255));
          break;
        case 1:  // truncate
          mutated.resize(rng.Next(mutated.size() + 1));
          break;
        default:  // insert
          mutated.insert(rng.Next(mutated.size() + 1), 1,
                         static_cast<char>(rng.Next(256)));
      }
      if (mutated.empty()) break;
    }
    std::size_t offset = 0;
    while (offset < mutated.size()) {
      const std::size_t before = offset;
      auto r = DecodeRecord(mutated, &offset);
      ASSERT_LE(offset, mutated.size());
      if (!r.ok()) break;
      // A successful decode must consume at least the tag byte.
      ASSERT_GT(offset, before);
    }
    (void)DecodeBatch(mutated);
  }
}

TEST(WireFuzzTest, RoundTripIsCanonical) {
  // decode(encode(x)) == x, and re-encoding the decoded records reproduces
  // the input bytes exactly — one accepted encoding per batch.
  Rng rng(1717);
  for (int trial = 0; trial < 200; ++trial) {
    const auto batch = RandomBatch(&rng, 1 + rng.Next(8));
    const std::string encoded = EncodeBatch(batch);
    auto decoded = DecodeBatch(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_EQ(decoded->size(), batch.size());
    EXPECT_EQ(EncodeBatch(*decoded), encoded);
  }
}

// --- directed corpus: one entry per historic decoder bug ---

TEST(WireFuzzTest, HugeStringLengthRejectedWithoutOverflow) {
  // Commit frame whose key length claims ~2^64: the old bounds check
  // computed `*offset + len` which wrapped around and passed, sending
  // std::string::assign off the end of the buffer.
  std::string buf;
  buf.push_back(2);          // kTagCommit
  PutVarint(&buf, 1);        // txn id
  PutVarint(&buf, 7);        // stream seq
  PutVarint(&buf, 10);       // commit ts
  PutVarint(&buf, 0);        // filtered count
  PutVarint(&buf, 1);        // one update
  PutVarint(&buf, std::numeric_limits<std::uint64_t>::max() - 2);  // key len
  buf.append("abc");
  std::size_t offset = 0;
  auto r = DecodeRecord(buf, &offset);
  EXPECT_FALSE(r.ok());
  EXPECT_LE(offset, buf.size());
}

TEST(WireFuzzTest, HugeUpdateCountRejectedBeforeAllocation) {
  // A ~14-byte commit frame claiming 2^32 updates: reserve(count) used to
  // attempt a multi-GB allocation before the per-update reads could fail.
  std::string buf;
  buf.push_back(2);                   // kTagCommit
  PutVarint(&buf, 1);                 // txn id
  PutVarint(&buf, 7);                 // stream seq
  PutVarint(&buf, 10);                // commit ts
  PutVarint(&buf, 0);                 // filtered count
  PutVarint(&buf, std::uint64_t{1} << 32);  // update count
  std::size_t offset = 0;
  auto r = DecodeRecord(buf, &offset);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("update count"), std::string::npos)
      << r.status();
}

TEST(WireFuzzTest, OverlongAndOverflowingVarintsRejected) {
  // 10 continuation bytes: an 11-byte varint can never be needed for a
  // 64-bit value.
  std::string overlong(10, '\x80');
  overlong.push_back('\x01');
  std::size_t offset = 0;
  std::uint64_t v = 0;
  EXPECT_FALSE(GetVarint(overlong, &offset, &v));

  // 10 bytes, but the last contributes bits beyond the 64th: the old
  // decoder silently shifted them out, so two different encodings decoded
  // to the same value.
  std::string overflow(9, '\xff');
  overflow.push_back('\x02');  // bit at position 64
  offset = 0;
  EXPECT_FALSE(GetVarint(overflow, &offset, &v));

  // The maximal legal encoding still decodes: 2^64 - 1 is nine 0xff bytes
  // and a final 0x01.
  std::string max_legal(9, '\xff');
  max_legal.push_back('\x01');
  offset = 0;
  ASSERT_TRUE(GetVarint(max_legal, &offset, &v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(offset, max_legal.size());
}

TEST(WireFuzzTest, TruncatedHugeLengthStopsAtBufferEnd) {
  // Fuzz variant of the overflow case: every prefix of a huge-length frame
  // must fail cleanly too.
  std::string buf;
  buf.push_back(2);
  PutVarint(&buf, 7);
  PutVarint(&buf, 9);
  PutVarint(&buf, 1);
  PutVarint(&buf, 0);
  PutVarint(&buf, std::numeric_limits<std::uint64_t>::max());
  for (std::size_t cut = 0; cut <= buf.size(); ++cut) {
    std::size_t offset = 0;
    EXPECT_FALSE(DecodeRecord(buf.substr(0, cut), &offset).ok())
        << "cut=" << cut;
  }
}

// --- TCP length-prefixed framing corpus ---
//
// The TCP transport wraps every ReliableChannel frame in a 4-byte length
// prefix; TcpFramer reassembles them from arbitrary socket fragmentation.
// Same trust boundary as the record codec: the prefix crosses the wire
// unprotected (the CRC covers only the payload), so a flipped length bit
// must never crash, over-allocate, or desynchronize silently.

TEST(WireFuzzTest, TcpFramingSurvivesRandomFragmentation) {
  Rng rng(9090);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n_frames = 1 + rng.Next(8);
    std::vector<std::string> payloads;
    std::string wire;
    for (std::uint64_t f = 0; f < n_frames; ++f) {
      std::string p(rng.Next(512), '\0');
      for (auto& c : p) c = static_cast<char>(rng.Next(256));
      AppendTcpFrame(&wire, p);
      payloads.push_back(std::move(p));
    }
    TcpFramer framer;
    std::vector<std::string> out;
    std::size_t offset = 0;
    while (offset < wire.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.Next(64), wire.size() - offset);
      ASSERT_TRUE(
          framer.Feed(std::string_view(wire).substr(offset, chunk)));
      offset += chunk;
      while (auto frame = framer.Next()) out.push_back(std::move(*frame));
    }
    ASSERT_EQ(out, payloads);
    EXPECT_EQ(framer.buffered(), 0u);
  }
}

TEST(WireFuzzTest, TcpFramingTruncatedPrefixNeverYieldsAFrame) {
  // A connection that dies mid-prefix (the kill -9 case) must leave the
  // framer waiting, not emitting a garbage frame.
  std::string wire;
  AppendTcpFrame(&wire, "payload");
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    TcpFramer framer;
    ASSERT_TRUE(framer.Feed(std::string_view(wire).substr(0, cut)));
    EXPECT_FALSE(framer.Next().has_value()) << "cut=" << cut;
    EXPECT_FALSE(framer.poisoned()) << "cut=" << cut;
  }
}

TEST(WireFuzzTest, TcpFramingOversizedLengthPoisonsWithoutAllocating) {
  // Mutate each byte of a legal prefix toward "huge": any length above the
  // clamp must poison the stream immediately — no waiting for 4 GiB of
  // payload that will never come, no allocation proportional to the claim.
  Rng rng(4321);
  for (int trial = 0; trial < 100; ++trial) {
    std::string wire;
    AppendTcpFrame(&wire, "tiny");
    // Force the top byte high: lengths >= 2^24 always exceed the clamp.
    wire[3] = static_cast<char>(1 + rng.Next(255));
    TcpFramer framer;
    framer.Feed(wire);
    EXPECT_FALSE(framer.Next().has_value());
    EXPECT_TRUE(framer.poisoned());
    // Poisoned streams reject further bytes: the caller must drop the
    // connection, there is no resynchronization point.
    EXPECT_FALSE(framer.Feed("x"));
  }
}

TEST(WireFuzzTest, TcpFramingMidFrameCloseLeavesCleanRemainder) {
  // Close after a complete frame plus part of the next: the complete frame
  // is delivered, the partial one is reported as buffered residue (the
  // transport counts it as lost in flight), and nothing crashes.
  std::string wire;
  AppendTcpFrame(&wire, "complete");
  std::string second;
  AppendTcpFrame(&second, std::string(100, 'z'));
  for (std::size_t cut = 1; cut < second.size(); ++cut) {
    TcpFramer framer;
    ASSERT_TRUE(framer.Feed(wire));
    ASSERT_TRUE(framer.Feed(std::string_view(second).substr(0, cut)));
    auto first = framer.Next();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, "complete");
    EXPECT_FALSE(framer.Next().has_value());
    EXPECT_EQ(framer.buffered(), cut);
  }
}

// --- BATCH frame corpus ---
//
// The batched propagation wire coalesces records into 'B' frames: tag +
// varint(count) + count encoded records. The count and every record cross
// the wire unverified, so the decoder sits on the same trust boundary as
// DecodeRecord itself: a lying count or a truncated record must reject
// cleanly, never over-read, and never allocate proportional to the claim.

TEST(WireFuzzTest, BatchFrameRoundTripsThroughRandomFragmentation) {
  // End-to-end over the real reassembly path: batch payloads wrapped in
  // TCP length prefixes, fed to the framer in random fragments, decoded by
  // the receiver's batch decoder.
  Rng rng(2026);
  for (int trial = 0; trial < 100; ++trial) {
    const auto n_frames = 1 + rng.Next(5);
    std::vector<std::string> payloads;
    std::string wire;
    for (std::uint64_t f = 0; f < n_frames; ++f) {
      payloads.push_back(
          EncodeBatchFramePayload(RandomBatch(&rng, 1 + rng.Next(8))));
      AppendTcpFrame(&wire, payloads.back());
    }
    TcpFramer framer;
    std::vector<std::string> out;
    std::size_t offset = 0;
    while (offset < wire.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.Next(96), wire.size() - offset);
      ASSERT_TRUE(framer.Feed(std::string_view(wire).substr(offset, chunk)));
      offset += chunk;
      while (auto frame = framer.Next()) out.push_back(std::move(*frame));
    }
    ASSERT_EQ(out, payloads);
    for (const auto& frame : out) {
      std::size_t off = 0;
      std::vector<PropagationRecord> records;
      ASSERT_TRUE(DecodeBatchFramePayload(frame, &off, &records));
      ASSERT_EQ(off, frame.size());
      // Canonical codec: re-encoding the decoded records reproduces the
      // frame exactly.
      EXPECT_EQ(EncodeBatchFramePayload(records), frame);
    }
  }
}

TEST(WireFuzzTest, BatchFrameMutationsNeverCrashOrOverread) {
  Rng rng(3131);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated =
        EncodeBatchFramePayload(RandomBatch(&rng, 1 + rng.Next(6)));
    const auto mutations = 1 + rng.Next(4);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      switch (rng.Next(3)) {
        case 0:
          mutated[rng.Next(mutated.size())] ^=
              static_cast<char>(1 + rng.Next(255));
          break;
        case 1:
          mutated.resize(rng.Next(mutated.size() + 1));
          break;
        default:
          mutated.insert(rng.Next(mutated.size() + 1), 1,
                         static_cast<char>(rng.Next(256)));
      }
      if (mutated.empty()) break;
    }
    std::size_t offset = 0;
    std::vector<PropagationRecord> records;
    (void)DecodeBatchFramePayload(mutated, &offset, &records);
    ASSERT_LE(offset, mutated.size());
  }
}

TEST(WireFuzzTest, BatchFrameEveryTruncationRejects) {
  // count says N records; any byte shaved off the end must fail the whole
  // frame — the receiver drops the connection and replays, it never applies
  // a half-decoded batch as if it were complete.
  Rng rng(5150);
  const std::string payload = EncodeBatchFramePayload(RandomBatch(&rng, 5));
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    std::size_t offset = 0;
    std::vector<PropagationRecord> records;
    EXPECT_FALSE(
        DecodeBatchFramePayload(payload.substr(0, cut), &offset, &records))
        << "cut=" << cut;
    EXPECT_LE(offset, cut) << "cut=" << cut;
  }
  std::size_t offset = 0;
  std::vector<PropagationRecord> records;
  EXPECT_TRUE(DecodeBatchFramePayload(payload, &offset, &records));
  EXPECT_EQ(records.size(), 5u);
}

TEST(WireFuzzTest, BatchFrameHugeCountRejectedWithoutAllocation) {
  // A ~15-byte frame claiming 2^40 records: the decoder must fail at the
  // first missing record, not reserve memory for the claim.
  Rng rng(6001);
  std::string payload(1, kReplBatchTag);
  PutVarint(&payload, std::uint64_t{1} << 40);
  EncodeRecord(RandomBatch(&rng, 1)[0], &payload);
  std::size_t offset = 0;
  std::vector<PropagationRecord> records;
  EXPECT_FALSE(DecodeBatchFramePayload(payload, &offset, &records));
  EXPECT_LE(records.size(), 1u);
}

TEST(WireFuzzTest, BatchFrameTrailingGarbageRejected) {
  // Bytes after the declared count mean the stream is desynchronized; a
  // decoder that silently ignored them would mask framing bugs forever.
  Rng rng(7002);
  std::string payload = EncodeBatchFramePayload(RandomBatch(&rng, 3));
  payload.push_back('\x00');
  std::size_t offset = 0;
  std::vector<PropagationRecord> records;
  EXPECT_FALSE(DecodeBatchFramePayload(payload, &offset, &records));
}

TEST(WireFuzzTest, BatchFrameOversizedLengthPrefixPoisons) {
  // Same clamp as every other frame: a corrupted length prefix on a BATCH
  // frame poisons the framer before any payload is buffered.
  Rng rng(8003);
  std::string wire;
  AppendTcpFrame(&wire, EncodeBatchFramePayload(RandomBatch(&rng, 4)));
  wire[3] = static_cast<char>(0x7f);  // claimed length >= 2^23
  TcpFramer framer;
  framer.Feed(wire);
  EXPECT_FALSE(framer.Next().has_value());
  EXPECT_TRUE(framer.poisoned());
  EXPECT_FALSE(framer.Feed("x"));
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
