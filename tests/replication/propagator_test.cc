#include "replication/propagator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "engine/database.h"

namespace lazysi {
namespace replication {
namespace {

using Queue = BlockingQueue<PropagationRecord>;

std::optional<PropagationRecord> PopWithin(Queue& q, int ms = 2000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto r = q.TryPop()) return r;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return std::nullopt;
}

TEST(PropagatorTest, CommitCarriesUpdateList) {
  engine::Database db;
  Propagator prop(db.log());
  Queue sink;
  prop.AttachSink(&sink);
  prop.Start();

  auto t = db.Begin();
  ASSERT_TRUE(t->Put("a", "1").ok());
  ASSERT_TRUE(t->Put("b", "2").ok());
  ASSERT_TRUE(t->Commit().ok());

  auto start = PopWithin(sink);
  ASSERT_TRUE(start.has_value());
  auto* s = std::get_if<PropStart>(&*start);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->start_ts, t->start_ts());

  auto commit = PopWithin(sink);
  ASSERT_TRUE(commit.has_value());
  auto* c = std::get_if<PropCommit>(&*commit);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->commit_ts, t->commit_ts());
  ASSERT_EQ(c->updates.size(), 2u);
  EXPECT_EQ(c->updates[0].key, "a");
  EXPECT_EQ(c->updates[1].key, "b");
  prop.Stop();
}

TEST(PropagatorTest, AbortedTxnUpdatesNeverShipped) {
  engine::Database db;
  Propagator prop(db.log());
  Queue sink;
  prop.AttachSink(&sink);
  prop.Start();

  auto t = db.Begin();
  ASSERT_TRUE(t->Put("a", "1").ok());
  t->Abort();

  auto start = PopWithin(sink);
  ASSERT_TRUE(start.has_value());
  EXPECT_TRUE(std::holds_alternative<PropStart>(*start));
  auto abort = PopWithin(sink);
  ASSERT_TRUE(abort.has_value());
  EXPECT_TRUE(std::holds_alternative<PropAbort>(*abort));
  // Nothing else: in particular no commit with updates.
  EXPECT_FALSE(PopWithin(sink, 100).has_value());
  prop.Stop();
}

TEST(PropagatorTest, BroadcastToMultipleSinks) {
  engine::Database db;
  Propagator prop(db.log());
  Queue sink1, sink2;
  prop.AttachSink(&sink1);
  prop.AttachSink(&sink2);
  prop.Start();

  ASSERT_TRUE(db.Put("a", "1").ok());
  for (Queue* q : {&sink1, &sink2}) {
    ASSERT_TRUE(PopWithin(*q).has_value());  // start
    auto c = PopWithin(*q);
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(std::holds_alternative<PropCommit>(*c));
  }
  prop.Stop();
}

TEST(PropagatorTest, RecordsArriveInTimestampOrder) {
  engine::Database db;
  Propagator prop(db.log());
  Queue sink;
  prop.AttachSink(&sink);
  prop.Start();

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Put("k" + std::to_string(i % 7), std::to_string(i)).ok());
  }

  Timestamp last_ts = 0;
  for (int i = 0; i < 100; ++i) {  // 50 starts + 50 commits
    auto r = PopWithin(sink);
    ASSERT_TRUE(r.has_value());
    const Timestamp ts = RecordTimestamp(*r);
    EXPECT_GT(ts, last_ts);
    last_ts = ts;
  }
  prop.Stop();
}

TEST(PropagatorTest, DetachSinkStopsDelivery) {
  engine::Database db;
  Propagator prop(db.log());
  Queue sink;
  prop.AttachSink(&sink);
  prop.Start();
  ASSERT_TRUE(db.Put("a", "1").ok());
  ASSERT_TRUE(PopWithin(sink).has_value());
  ASSERT_TRUE(PopWithin(sink).has_value());

  prop.DetachSink(&sink);
  ASSERT_TRUE(db.Put("b", "2").ok());
  // Give the propagator time to process; nothing should arrive.
  EXPECT_FALSE(PopWithin(sink, 150).has_value());
  prop.Stop();
}

TEST(PropagatorTest, AttachSinkAtReplaysQuiescedSlice) {
  engine::Database db;
  Propagator prop(db.log());
  Queue early;
  prop.AttachSink(&early);
  prop.Start();

  ASSERT_TRUE(db.Put("a", "1").ok());
  ASSERT_TRUE(db.Put("b", "2").ok());
  // Wait until the propagator consumed everything.
  while (prop.position() < db.log()->Size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  Queue late;
  ASSERT_TRUE(prop.AttachSinkAt(&late, 0).ok());
  // The late sink receives the full replayed history.
  int commits = 0;
  for (int i = 0; i < 4; ++i) {
    auto r = PopWithin(late);
    ASSERT_TRUE(r.has_value());
    if (std::holds_alternative<PropCommit>(*r)) ++commits;
  }
  EXPECT_EQ(commits, 2);
  // And future records too.
  ASSERT_TRUE(db.Put("c", "3").ok());
  ASSERT_TRUE(PopWithin(late).has_value());
  prop.Stop();
}

TEST(PropagatorTest, AttachSinkAtRejectsNonQuiescedLsn) {
  engine::Database db;
  Propagator prop(db.log());
  Queue early;
  prop.AttachSink(&early);
  prop.Start();

  // An in-flight transaction spans the candidate LSN.
  auto t = db.Begin();
  ASSERT_TRUE(t->Put("a", "1").ok());
  const std::size_t mid_lsn = db.log()->Size();  // after start+update
  ASSERT_TRUE(t->Commit().ok());
  while (prop.position() < db.log()->Size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  Queue late;
  Status s = prop.AttachSinkAt(&late, mid_lsn).status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  prop.Stop();
}

TEST(PropagatorTest, AttachSinkAtDerivesBaseSeqFromSyncPoints) {
  engine::Database db;
  Propagator prop(db.log());
  Queue early;
  prop.AttachSink(&early);
  prop.Start();

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.Put("a" + std::to_string(i), "1").ok());
  }
  while (prop.position() < db.log()->Size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::size_t mid_lsn = db.log()->Size();  // quiesced
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(db.Put("b" + std::to_string(i), "2").ok());
  }
  while (prop.position() < db.log()->Size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Ground truth by full log scan: every non-update record below the attach
  // LSN produced exactly one propagation record. AttachSinkAt must agree
  // while counting only from the nearest recorded sync point.
  std::uint64_t expected = 0;
  for (std::size_t lsn = 0; lsn < mid_lsn; ++lsn) {
    auto r = db.log()->At(lsn);
    ASSERT_TRUE(r.has_value());
    if (r->type != wal::LogRecordType::kUpdate) ++expected;
  }
  Queue mid;
  auto seq = prop.AttachSinkAt(&mid, mid_lsn);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, expected);

  Queue origin;
  auto zero = prop.AttachSinkAt(&origin, 0);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(*zero, 0u);
  prop.Stop();
}

TEST(PropagatorTest, BatchedModeDeliversInCycles) {
  engine::Database db;
  PropagatorOptions batched;
  batched.batch_interval = std::chrono::milliseconds(80);
  Propagator prop(db.log(), batched);
  Queue sink;
  prop.AttachSink(&sink);
  prop.Start();
  // The first drain happens immediately; subsequent records wait a cycle.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(db.Put("a", "1").ok());
  // Should arrive after roughly one batch interval.
  auto r = PopWithin(sink, 1000);
  EXPECT_TRUE(r.has_value());
  prop.Stop();
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
