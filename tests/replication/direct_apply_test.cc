// Differential and regression tests for the replay engines: the legacy
// transactional engine, the serial direct-apply engine, and the parallel
// replay pipeline (at several decode/apply widths) must produce
// byte-identical replica states and state chains for the same propagated
// workload (aborts, deletes, and commit-without-start recovery included),
// the local->primary translation table must stay bounded under pruning, and
// the shared-mutex translation path must be clean under contention
// (exercised hardest under TSan).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/database.h"
#include "replication/primary.h"
#include "replication/secondary.h"

namespace lazysi {
namespace replication {
namespace {

constexpr auto kWait = std::chrono::milliseconds(15000);

/// One replay-engine configuration under test.
struct EngineParam {
  const char* name;
  bool direct_apply;
  std::size_t decode_threads;
  std::size_t applicator_threads;
};

SecondaryOptions MakeOptions(const EngineParam& p) {
  SecondaryOptions opts;
  opts.applicator_threads = p.applicator_threads;
  opts.direct_apply = p.direct_apply;
  opts.decode_threads = p.decode_threads;
  return opts;
}

const EngineParam kAllEngines[] = {
    {"Legacy", false, 0, 4},
    {"DirectSerial", true, 0, 4},
    {"Parallel1", true, 1, 1},
    {"Parallel2", true, 2, 2},
    {"Parallel4", true, 4, 4},
};

std::string EngineName(const ::testing::TestParamInfo<EngineParam>& info) {
  return info.param.name;
}

// The core differential: every engine configuration replays the same
// concurrent primary workload and must land on the same state, the same
// per-commit state chain, and the same refresh-commit count.
TEST(DirectApplyTest, AllReplayEnginesProduceIdenticalState) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  std::vector<std::unique_ptr<engine::Database>> dbs;
  std::vector<std::unique_ptr<Secondary>> secs;
  for (std::size_t i = 0; i < std::size(kAllEngines); ++i) {
    dbs.push_back(std::make_unique<engine::Database>(engine::DatabaseOptions{
        static_cast<SiteId>(i + 1), kAllEngines[i].name, true}));
    secs.push_back(std::make_unique<Secondary>(dbs.back().get(),
                                               MakeOptions(kAllEngines[i])));
    primary.AttachSecondary(secs.back().get());
    secs.back()->Start();
  }
  primary.Start();

  // Seeded concurrent workload over a SHARED hot keyspace: puts, deletes,
  // voluntary aborts, plus involuntary first-committer-wins aborts.
  constexpr int kWriters = 4;
  constexpr int kTxnsPerWriter = 50;
  std::atomic<int> committed{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(900 + w);
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto t = primary_db.Begin();
        const int ops = static_cast<int>(rng.UniformInt(1, 4));
        for (int o = 0; o < ops; ++o) {
          const std::string key = "k" + std::to_string(rng.Next(24));
          if (rng.Bernoulli(0.2)) {
            ASSERT_TRUE(t->Delete(key).ok());
          } else {
            ASSERT_TRUE(t->Put(key, std::to_string(i) + "/" +
                                        std::to_string(o)).ok());
          }
        }
        if (rng.Bernoulli(0.15)) {
          t->Abort();
        } else if (t->Commit().ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  ASSERT_GT(committed.load(), 50);

  for (auto& sec : secs) {
    ASSERT_TRUE(sec->WaitForSeq(primary_db.LatestCommitTs(), kWait));
  }
  primary.Stop();
  for (auto& sec : secs) sec->Stop();

  // Theorem 3.1, executable form: identical per-commit state chains...
  const auto primary_chain = primary_db.StateChainHistory();
  const auto want =
      primary_db.store()->Materialize(primary_db.LatestCommitTs());
  for (std::size_t e = 0; e < secs.size(); ++e) {
    SCOPED_TRACE(kAllEngines[e].name);
    EXPECT_EQ(primary_db.StateHash(), dbs[e]->StateHash());
    const auto chain = dbs[e]->StateChainHistory();
    ASSERT_EQ(primary_chain.size(), chain.size());
    for (std::size_t i = 0; i < primary_chain.size(); ++i) {
      EXPECT_EQ(primary_chain[i].hash, chain[i].hash) << "entry " << i;
    }
    // ...and identical materialized states.
    EXPECT_EQ(want, dbs[e]->store()->Materialize(dbs[e]->LatestCommitTs()));
    // Every engine committed one refresh transaction per primary commit.
    EXPECT_EQ(secs[e]->refreshed_count(),
              static_cast<std::uint64_t>(committed.load()));
    // The propagation stream reached each site gapless.
    EXPECT_EQ(secs[e]->stream_discontinuities(), 0u);
  }
}

class ReplayEngineTest : public ::testing::TestWithParam<EngineParam> {};

// A sink attached mid-stream can receive a commit whose start record it never
// saw; every engine must recover by starting the refresh transaction at
// commit time and still converge.
TEST_P(ReplayEngineTest, CommitWithoutStartRecovers) {
  engine::Database primary_db;
  Primary primary(&primary_db);

  // Begin (and log the start of) a transaction BEFORE the secondary attaches.
  auto orphan = primary_db.Begin();
  ASSERT_TRUE(orphan->Put("orphan", "v1").ok());
  primary.Start();
  while (primary.propagator()->position() < primary_db.log()->Size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  engine::Database sec_db(engine::DatabaseOptions{1, "sec", true});
  Secondary sec(&sec_db, MakeOptions(GetParam()));
  primary.AttachSecondary(&sec);
  sec.Start();

  ASSERT_TRUE(orphan->Commit().ok());  // arrives with no start record
  ASSERT_TRUE(primary_db.Put("after", "v2").ok());
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  primary.Stop();
  sec.Stop();

  const auto state = sec_db.store()->Materialize(sec_db.LatestCommitTs());
  EXPECT_EQ(state.at("orphan"), "v1");
  EXPECT_EQ(state.at("after"), "v2");
  // The secondary saw every commit, so the chains still agree.
  EXPECT_EQ(primary_db.StateHash(), sec_db.StateHash());
  // The newest local commit translates exactly.
  EXPECT_EQ(sec.TranslateLocalToPrimary(sec_db.LatestCommitTs()),
            primary_db.LatestCommitTs());
}

// A stop/restart cycle mid-stream drops queued records (Section 3.4's
// failure model) and every engine must keep working afterwards; the parallel
// pipeline must also tear down and rebuild its stages cleanly.
TEST_P(ReplayEngineTest, SurvivesStopStartCycle) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database sec_db;
  Secondary sec(&sec_db, MakeOptions(GetParam()));
  primary.AttachSecondary(&sec);
  sec.Start();
  primary.Start();

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(primary_db.Put("a" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  sec.Stop();
  sec.Start();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(primary_db.Put("b" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  primary.Stop();
  sec.Stop();

  const auto state = sec_db.store()->Materialize(sec_db.LatestCommitTs());
  EXPECT_EQ(state.at("a0"), "v");
  EXPECT_EQ(state.at("b19"), "v");
}

INSTANTIATE_TEST_SUITE_P(Engines, ReplayEngineTest,
                         ::testing::ValuesIn(kAllEngines), EngineName);

// Without pruning local_to_primary_ grows by one entry per refresh commit
// forever; pruning at the applied horizon must bound it while keeping the
// newest translation exact.
TEST(DirectApplyTest, TranslationTableIsPrunedToHorizon) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database sec_db(engine::DatabaseOptions{1, "sec", true});
  Secondary sec(&sec_db, SecondaryOptions{2, /*direct_apply=*/true});
  primary.AttachSecondary(&sec);
  sec.Start();
  primary.Start();

  constexpr int kCommits = 200;
  for (int i = 0; i < kCommits; ++i) {
    ASSERT_TRUE(primary_db.Put("k" + std::to_string(i % 5),
                               std::to_string(i)).ok());
  }
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));

  // One translation per refresh commit accumulated...
  EXPECT_EQ(sec.translation_count(), static_cast<std::size_t>(kCommits));
  // ...pruning at the applied horizon keeps only the entry at the horizon.
  const std::size_t erased = sec.PruneTranslations(sec.applied_seq());
  EXPECT_EQ(erased, static_cast<std::size_t>(kCommits - 1));
  EXPECT_EQ(sec.translation_count(), 1u);
  EXPECT_EQ(sec.TranslateLocalToPrimary(sec_db.LatestCommitTs()),
            primary_db.LatestCommitTs());

  primary.Stop();
  sec.Stop();
}

// Readers translate under a shared lock while the refresher and commit hook
// write and a pruner sweeps — the lock discipline must hold under load
// (this is the TSan target for the shared_mutex conversion).
TEST(DirectApplyTest, ContendedTranslationReadsDuringRefresh) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database sec_db(engine::DatabaseOptions{1, "sec", true});
  Secondary sec(&sec_db, SecondaryOptions{4, /*direct_apply=*/true});
  primary.AttachSecondary(&sec);
  sec.Start();
  primary.Start();

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        (void)sec.TranslateLocalToPrimary(sec_db.LatestCommitTs());
        (void)sec.translation_count();
      }
    });
  }
  std::thread pruner([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)sec.PruneTranslations(sec.applied_seq() / 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kCommits = 300;
  for (int i = 0; i < kCommits; ++i) {
    ASSERT_TRUE(primary_db.Put("k" + std::to_string(i % 7),
                               std::to_string(i)).ok());
  }
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  pruner.join();
  primary.Stop();
  sec.Stop();

  EXPECT_EQ(primary_db.StateHash(), sec_db.StateHash());
}

// Group-apply accounting: every refresh commit is covered by exactly one
// store pass, and passes never exceed commits. A pre-built backlog gives the
// single applicator a chance to coalesce (but the assertions hold for any
// batching the scheduler produces).
TEST(DirectApplyTest, GroupApplyCountersAccountForEveryCommit) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database sec_db(engine::DatabaseOptions{1, "sec", true});
  Secondary sec(&sec_db, SecondaryOptions{1, /*direct_apply=*/true});
  primary.AttachSecondary(&sec);

  constexpr std::uint64_t kCommits = 32;
  for (std::uint64_t i = 0; i < kCommits; ++i) {
    ASSERT_TRUE(primary_db.Put("k" + std::to_string(i), "v").ok());
  }
  sec.Start();
  primary.Start();
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  primary.Stop();
  sec.Stop();

  EXPECT_EQ(sec.refreshed_count(), kCommits);
  EXPECT_EQ(sec.group_applied_commits(), kCommits);
  EXPECT_GE(sec.group_applies(), 1u);
  EXPECT_LE(sec.group_applies(), kCommits);
  EXPECT_GE(sec.max_group_apply(), 1u);
  EXPECT_LE(sec.max_group_apply(), kCommits);
  EXPECT_EQ(primary_db.StateHash(), sec_db.StateHash());
}

// The legacy engine never touches the group-apply machinery.
TEST(DirectApplyTest, LegacyEngineReportsNoGroupApplies) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database sec_db(engine::DatabaseOptions{1, "sec", true});
  Secondary sec(&sec_db, SecondaryOptions{2, /*direct_apply=*/false});
  primary.AttachSecondary(&sec);
  sec.Start();
  primary.Start();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(primary_db.Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  primary.Stop();
  sec.Stop();
  EXPECT_EQ(sec.group_applies(), 0u);
  EXPECT_EQ(sec.group_applied_commits(), 0u);
  EXPECT_EQ(sec.max_group_apply(), 0u);
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
