// Differential and regression tests for the direct-apply refresh engine:
// the direct and legacy engines must produce byte-identical replica states
// and state chains for the same propagated workload (aborts, deletes, and
// commit-without-start recovery included), the local->primary translation
// table must stay bounded under pruning, and the shared-mutex translation
// path must be clean under contention (exercised hardest under TSan).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/database.h"
#include "replication/primary.h"
#include "replication/secondary.h"

namespace lazysi {
namespace replication {
namespace {

constexpr auto kWait = std::chrono::milliseconds(15000);

TEST(DirectApplyTest, DirectAndLegacyEnginesProduceIdenticalState) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database direct_db(engine::DatabaseOptions{1, "direct", true});
  Secondary direct(&direct_db, SecondaryOptions{4, /*direct_apply=*/true});
  engine::Database legacy_db(engine::DatabaseOptions{2, "legacy", true});
  Secondary legacy(&legacy_db, SecondaryOptions{4, /*direct_apply=*/false});
  primary.AttachSecondary(&direct);
  primary.AttachSecondary(&legacy);
  direct.Start();
  legacy.Start();
  primary.Start();

  // Seeded concurrent workload over a SHARED hot keyspace: puts, deletes,
  // voluntary aborts, plus involuntary first-committer-wins aborts.
  constexpr int kWriters = 4;
  constexpr int kTxnsPerWriter = 50;
  std::atomic<int> committed{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(900 + w);
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto t = primary_db.Begin();
        const int ops = static_cast<int>(rng.UniformInt(1, 4));
        for (int o = 0; o < ops; ++o) {
          const std::string key = "k" + std::to_string(rng.Next(24));
          if (rng.Bernoulli(0.2)) {
            ASSERT_TRUE(t->Delete(key).ok());
          } else {
            ASSERT_TRUE(t->Put(key, std::to_string(i) + "/" +
                                        std::to_string(o)).ok());
          }
        }
        if (rng.Bernoulli(0.15)) {
          t->Abort();
        } else if (t->Commit().ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  ASSERT_GT(committed.load(), 50);

  ASSERT_TRUE(direct.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  ASSERT_TRUE(legacy.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  primary.Stop();
  direct.Stop();
  legacy.Stop();

  // Theorem 3.1, executable form: identical per-commit state chains...
  EXPECT_EQ(primary_db.StateHash(), direct_db.StateHash());
  EXPECT_EQ(primary_db.StateHash(), legacy_db.StateHash());
  const auto primary_chain = primary_db.StateChainHistory();
  const auto direct_chain = direct_db.StateChainHistory();
  const auto legacy_chain = legacy_db.StateChainHistory();
  ASSERT_EQ(primary_chain.size(), direct_chain.size());
  ASSERT_EQ(primary_chain.size(), legacy_chain.size());
  for (std::size_t i = 0; i < primary_chain.size(); ++i) {
    EXPECT_EQ(primary_chain[i].hash, direct_chain[i].hash) << "entry " << i;
    EXPECT_EQ(primary_chain[i].hash, legacy_chain[i].hash) << "entry " << i;
  }
  // ...and identical materialized states.
  const auto want =
      primary_db.store()->Materialize(primary_db.LatestCommitTs());
  EXPECT_EQ(want, direct_db.store()->Materialize(direct_db.LatestCommitTs()));
  EXPECT_EQ(want, legacy_db.store()->Materialize(legacy_db.LatestCommitTs()));
  // Both engines committed one refresh transaction per primary commit.
  EXPECT_EQ(direct.refreshed_count(), legacy.refreshed_count());
  EXPECT_EQ(direct.refreshed_count(),
            static_cast<std::uint64_t>(committed.load()));
}

// A sink attached mid-stream can receive a commit whose start record it never
// saw; both engines must recover by starting the refresh transaction at
// commit time and still converge.
void RunCommitWithoutStart(bool direct_mode) {
  engine::Database primary_db;
  Primary primary(&primary_db);

  // Begin (and log the start of) a transaction BEFORE the secondary attaches.
  auto orphan = primary_db.Begin();
  ASSERT_TRUE(orphan->Put("orphan", "v1").ok());
  primary.Start();
  while (primary.propagator()->position() < primary_db.log()->Size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  engine::Database sec_db(engine::DatabaseOptions{1, "sec", true});
  Secondary sec(&sec_db, SecondaryOptions{2, direct_mode});
  primary.AttachSecondary(&sec);
  sec.Start();

  ASSERT_TRUE(orphan->Commit().ok());  // arrives with no start record
  ASSERT_TRUE(primary_db.Put("after", "v2").ok());
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  primary.Stop();
  sec.Stop();

  const auto state = sec_db.store()->Materialize(sec_db.LatestCommitTs());
  EXPECT_EQ(state.at("orphan"), "v1");
  EXPECT_EQ(state.at("after"), "v2");
  // The secondary saw every commit, so the chains still agree.
  EXPECT_EQ(primary_db.StateHash(), sec_db.StateHash());
  // The newest local commit translates exactly.
  EXPECT_EQ(sec.TranslateLocalToPrimary(sec_db.LatestCommitTs()),
            primary_db.LatestCommitTs());
}

TEST(DirectApplyTest, CommitWithoutStartRecoversDirect) {
  RunCommitWithoutStart(/*direct_mode=*/true);
}

TEST(DirectApplyTest, CommitWithoutStartRecoversLegacy) {
  RunCommitWithoutStart(/*direct_mode=*/false);
}

// Without pruning local_to_primary_ grows by one entry per refresh commit
// forever; pruning at the applied horizon must bound it while keeping the
// newest translation exact.
TEST(DirectApplyTest, TranslationTableIsPrunedToHorizon) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database sec_db(engine::DatabaseOptions{1, "sec", true});
  Secondary sec(&sec_db, SecondaryOptions{2, /*direct_apply=*/true});
  primary.AttachSecondary(&sec);
  sec.Start();
  primary.Start();

  constexpr int kCommits = 200;
  for (int i = 0; i < kCommits; ++i) {
    ASSERT_TRUE(primary_db.Put("k" + std::to_string(i % 5),
                               std::to_string(i)).ok());
  }
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));

  // One translation per refresh commit accumulated...
  EXPECT_EQ(sec.translation_count(), static_cast<std::size_t>(kCommits));
  // ...pruning at the applied horizon keeps only the entry at the horizon.
  const std::size_t erased = sec.PruneTranslations(sec.applied_seq());
  EXPECT_EQ(erased, static_cast<std::size_t>(kCommits - 1));
  EXPECT_EQ(sec.translation_count(), 1u);
  EXPECT_EQ(sec.TranslateLocalToPrimary(sec_db.LatestCommitTs()),
            primary_db.LatestCommitTs());

  primary.Stop();
  sec.Stop();
}

// Readers translate under a shared lock while the refresher and commit hook
// write and a pruner sweeps — the lock discipline must hold under load
// (this is the TSan target for the shared_mutex conversion).
TEST(DirectApplyTest, ContendedTranslationReadsDuringRefresh) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database sec_db(engine::DatabaseOptions{1, "sec", true});
  Secondary sec(&sec_db, SecondaryOptions{4, /*direct_apply=*/true});
  primary.AttachSecondary(&sec);
  sec.Start();
  primary.Start();

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        (void)sec.TranslateLocalToPrimary(sec_db.LatestCommitTs());
        (void)sec.translation_count();
      }
    });
  }
  std::thread pruner([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)sec.PruneTranslations(sec.applied_seq() / 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kCommits = 300;
  for (int i = 0; i < kCommits; ++i) {
    ASSERT_TRUE(primary_db.Put("k" + std::to_string(i % 7),
                               std::to_string(i)).ok());
  }
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  pruner.join();
  primary.Stop();
  sec.Stop();

  EXPECT_EQ(primary_db.StateHash(), sec_db.StateHash());
}

// Group-apply accounting: every refresh commit is covered by exactly one
// store pass, and passes never exceed commits. A pre-built backlog gives the
// single applicator a chance to coalesce (but the assertions hold for any
// batching the scheduler produces).
TEST(DirectApplyTest, GroupApplyCountersAccountForEveryCommit) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database sec_db(engine::DatabaseOptions{1, "sec", true});
  Secondary sec(&sec_db, SecondaryOptions{1, /*direct_apply=*/true});
  primary.AttachSecondary(&sec);

  constexpr std::uint64_t kCommits = 32;
  for (std::uint64_t i = 0; i < kCommits; ++i) {
    ASSERT_TRUE(primary_db.Put("k" + std::to_string(i), "v").ok());
  }
  sec.Start();
  primary.Start();
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  primary.Stop();
  sec.Stop();

  EXPECT_EQ(sec.refreshed_count(), kCommits);
  EXPECT_EQ(sec.group_applied_commits(), kCommits);
  EXPECT_GE(sec.group_applies(), 1u);
  EXPECT_LE(sec.group_applies(), kCommits);
  EXPECT_GE(sec.max_group_apply(), 1u);
  EXPECT_LE(sec.max_group_apply(), kCommits);
  EXPECT_EQ(primary_db.StateHash(), sec_db.StateHash());
}

// The legacy engine never touches the group-apply machinery.
TEST(DirectApplyTest, LegacyEngineReportsNoGroupApplies) {
  engine::Database primary_db;
  Primary primary(&primary_db);
  engine::Database sec_db(engine::DatabaseOptions{1, "sec", true});
  Secondary sec(&sec_db, SecondaryOptions{2, /*direct_apply=*/false});
  primary.AttachSecondary(&sec);
  sec.Start();
  primary.Start();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(primary_db.Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(sec.WaitForSeq(primary_db.LatestCommitTs(), kWait));
  primary.Stop();
  sec.Stop();
  EXPECT_EQ(sec.group_applies(), 0u);
  EXPECT_EQ(sec.group_applied_commits(), 0u);
  EXPECT_EQ(sec.max_group_apply(), 0u);
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
