#include "replication/wire.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace lazysi {
namespace replication {
namespace {

TEST(WireTest, StartRoundTrip) {
  std::string buf;
  EncodeRecord(PropStart{7, 100}, &buf);
  std::size_t offset = 0;
  auto r = DecodeRecord(buf, &offset);
  ASSERT_TRUE(r.ok());
  auto* s = std::get_if<PropStart>(&*r);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->txn_id, 7u);
  EXPECT_EQ(s->start_ts, 100u);
  EXPECT_EQ(offset, buf.size());
}

TEST(WireTest, CommitWithUpdatesRoundTrip) {
  PropCommit commit{9, 42, {{"a", "1", false}, {"b", "", true}}};
  std::string buf;
  EncodeRecord(PropagationRecord(commit), &buf);
  std::size_t offset = 0;
  auto r = DecodeRecord(buf, &offset);
  ASSERT_TRUE(r.ok());
  auto* c = std::get_if<PropCommit>(&*r);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->commit_ts, 42u);
  ASSERT_EQ(c->updates.size(), 2u);
  EXPECT_EQ(c->updates[0].key, "a");
  EXPECT_FALSE(c->updates[0].deleted);
  EXPECT_TRUE(c->updates[1].deleted);
}

TEST(WireTest, AbortRoundTrip) {
  std::string buf;
  EncodeRecord(PropAbort{13}, &buf);
  std::size_t offset = 0;
  auto r = DecodeRecord(buf, &offset);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(RecordTxnId(*r), 13u);
  EXPECT_TRUE(std::holds_alternative<PropAbort>(*r));
}

TEST(WireTest, BatchRoundTripRandomized) {
  Rng rng(55);
  std::vector<PropagationRecord> batch;
  for (int i = 0; i < 300; ++i) {
    switch (rng.Next(3)) {
      case 0:
        batch.push_back(PropStart{rng.Next(1 << 20), rng.Next(1 << 30)});
        break;
      case 1: {
        PropCommit c{rng.Next(1 << 20), rng.Next(1 << 30), {}};
        const auto n = rng.Next(5);
        for (std::uint64_t u = 0; u < n; ++u) {
          c.updates.push_back(storage::Write{
              "key" + std::to_string(rng.Next(100)),
              std::string(rng.Next(50), 'v'), rng.Bernoulli(0.2)});
        }
        batch.push_back(std::move(c));
        break;
      }
      default:
        batch.push_back(PropAbort{rng.Next(1 << 20)});
    }
  }
  const std::string encoded = EncodeBatch(batch);
  auto decoded = DecodeBatch(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(RecordTxnId((*decoded)[i]), RecordTxnId(batch[i]));
    EXPECT_EQ(RecordTimestamp((*decoded)[i]), RecordTimestamp(batch[i]));
    EXPECT_EQ((*decoded)[i].index(), batch[i].index());
  }
}

TEST(WireTest, TruncationDetected) {
  PropCommit commit{9, 42, {{"key", "a long enough value", false}}};
  std::string buf;
  EncodeRecord(PropagationRecord(commit), &buf);
  for (std::size_t cut = 1; cut < buf.size(); ++cut) {
    std::size_t offset = 0;
    auto r = DecodeRecord(buf.substr(0, cut), &offset);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

TEST(WireTest, UnknownTagRejected) {
  std::string buf = "\x7f\x01";
  std::size_t offset = 0;
  EXPECT_FALSE(DecodeRecord(buf, &offset).ok());
}

TEST(WireTest, RecordTimestampHelper) {
  EXPECT_EQ(RecordTimestamp(PropagationRecord(PropStart{1, 5})), 5u);
  EXPECT_EQ(RecordTimestamp(PropagationRecord(PropCommit{1, 9, {}})), 9u);
  EXPECT_EQ(RecordTimestamp(PropagationRecord(PropAbort{1})),
            kInvalidTimestamp);
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
