// Cascading (chained) replication: because every secondary applies refresh
// transactions through its own engine, its logical log is itself a valid
// propagation source. A tertiary site fed from a secondary's log converges
// to the same state chain — the architecture composes transitively.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "replication/primary.h"
#include "replication/secondary.h"

namespace lazysi {
namespace replication {
namespace {

TEST(CascadeTest, TertiaryConvergesThroughMiddleTier) {
  engine::Database primary_db;
  engine::Database mid_db(engine::DatabaseOptions{1, "mid", true});
  engine::Database leaf_db(engine::DatabaseOptions{2, "leaf", true});

  Primary primary(&primary_db);
  Secondary mid(&mid_db, SecondaryOptions{2});
  primary.AttachSecondary(&mid);

  // Second tier: a propagator tailing the *mid* site's log.
  Propagator mid_propagator(mid_db.log());
  Secondary leaf(&leaf_db, SecondaryOptions{2});
  mid_propagator.AttachSink(leaf.update_queue());

  mid.Start();
  leaf.Start();
  primary.Start();
  mid_propagator.Start();

  for (int i = 0; i < 100; ++i) {
    auto t = primary_db.Begin();
    ASSERT_TRUE(t->Put("k" + std::to_string(i % 13), std::to_string(i)).ok());
    if (i % 10 == 3) {
      ASSERT_TRUE(t->Delete("k" + std::to_string((i + 1) % 13)).ok());
    }
    ASSERT_TRUE(t->Commit().ok());
  }

  ASSERT_TRUE(mid.WaitForSeq(primary_db.LatestCommitTs(),
                             std::chrono::milliseconds(10000)));
  // The leaf's seq(DBsec) is expressed in *mid-local* commit timestamps.
  ASSERT_TRUE(leaf.WaitForSeq(mid_db.LatestCommitTs(),
                              std::chrono::milliseconds(10000)));

  mid_propagator.Stop();
  primary.Stop();
  mid.Stop();
  leaf.Stop();

  // Full convergence across all three tiers.
  const auto primary_state =
      primary_db.store()->Materialize(primary_db.LatestCommitTs());
  EXPECT_EQ(mid_db.store()->Materialize(mid_db.LatestCommitTs()),
            primary_state);
  EXPECT_EQ(leaf_db.store()->Materialize(leaf_db.LatestCommitTs()),
            primary_state);

  // Completeness holds tier over tier: identical state-hash chains.
  ASSERT_EQ(primary_db.StateChainHistory().size(),
            leaf_db.StateChainHistory().size());
  EXPECT_EQ(primary_db.StateHash(), mid_db.StateHash());
  EXPECT_EQ(mid_db.StateHash(), leaf_db.StateHash());
}

TEST(CascadeTest, FanOutFromMiddleTier) {
  // One mid-tier feeding two leaves (a replication tree).
  engine::Database primary_db;
  engine::Database mid_db(engine::DatabaseOptions{1, "mid", true});
  engine::Database leaf1_db(engine::DatabaseOptions{2, "leaf1", true});
  engine::Database leaf2_db(engine::DatabaseOptions{3, "leaf2", true});

  Primary primary(&primary_db);
  Secondary mid(&mid_db);
  primary.AttachSecondary(&mid);
  Propagator mid_propagator(mid_db.log());
  Secondary leaf1(&leaf1_db);
  Secondary leaf2(&leaf2_db);
  mid_propagator.AttachSink(leaf1.update_queue());
  mid_propagator.AttachSink(leaf2.update_queue());

  mid.Start();
  leaf1.Start();
  leaf2.Start();
  primary.Start();
  mid_propagator.Start();

  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(primary_db.Put("key" + std::to_string(i % 9),
                               std::to_string(i)).ok());
  }
  ASSERT_TRUE(mid.WaitForSeq(primary_db.LatestCommitTs(),
                             std::chrono::milliseconds(10000)));
  ASSERT_TRUE(leaf1.WaitForSeq(mid_db.LatestCommitTs(),
                               std::chrono::milliseconds(10000)));
  ASSERT_TRUE(leaf2.WaitForSeq(mid_db.LatestCommitTs(),
                               std::chrono::milliseconds(10000)));

  mid_propagator.Stop();
  primary.Stop();
  mid.Stop();
  leaf1.Stop();
  leaf2.Stop();

  EXPECT_EQ(leaf1_db.StateHash(), primary_db.StateHash());
  EXPECT_EQ(leaf2_db.StateHash(), primary_db.StateHash());
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
