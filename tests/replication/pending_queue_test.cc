#include "replication/pending_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace lazysi {
namespace replication {
namespace {

TEST(PendingQueueTest, WaitEmptyImmediateWhenEmpty) {
  PendingQueue q;
  EXPECT_TRUE(q.WaitEmpty());
}

TEST(PendingQueueTest, WaitEmptyBlocksUntilDrained) {
  PendingQueue q;
  q.Append(10);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    EXPECT_TRUE(q.WaitEmpty());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke);
  q.PopHead(10);
  waiter.join();
  EXPECT_TRUE(woke);
}

TEST(PendingQueueTest, WaitHeadOnlyForMatchingTimestamp) {
  PendingQueue q;
  q.Append(10);
  q.Append(20);
  EXPECT_TRUE(q.WaitHead(10));
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    EXPECT_TRUE(q.WaitHead(20));
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke);  // 20 is not at the head yet
  q.PopHead(10);
  waiter.join();
  EXPECT_TRUE(woke);
}

TEST(PendingQueueTest, PopHeadIgnoresMismatch) {
  PendingQueue q;
  q.Append(10);
  q.PopHead(99);  // not the head: no-op
  EXPECT_EQ(q.Size(), 1u);
  q.PopHead(10);
  EXPECT_EQ(q.Size(), 0u);
}

TEST(PendingQueueTest, CloseWakesAllWaiters) {
  PendingQueue q;
  q.Append(1);
  std::vector<std::thread> waiters;
  std::atomic<int> woken{0};
  waiters.emplace_back([&] {
    EXPECT_FALSE(q.WaitHead(2));
    ++woken;
  });
  waiters.emplace_back([&] {
    EXPECT_FALSE(q.WaitEmpty());
    ++woken;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woken, 2);
}

TEST(PendingQueueTest, EnforcesCommitOrderAcrossThreads) {
  // N workers each wait for their own timestamp to reach the head; the
  // completion order must equal the append order regardless of the order in
  // which workers become ready (the Lemma 3.3 mechanism).
  PendingQueue q;
  constexpr int kN = 16;
  for (int i = 1; i <= kN; ++i) q.Append(i);
  std::vector<int> completion_order;
  std::mutex mu;
  std::vector<std::thread> workers;
  for (int i = kN; i >= 1; --i) {  // start in reverse order
    workers.emplace_back([&, i] {
      EXPECT_TRUE(q.WaitHead(i));
      {
        std::lock_guard<std::mutex> lock(mu);
        completion_order.push_back(i);
      }
      q.PopHead(i);
    });
  }
  for (auto& t : workers) t.join();
  ASSERT_EQ(completion_order.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(completion_order[i], i + 1);
}

}  // namespace
}  // namespace replication
}  // namespace lazysi
