#include "engine/database.h"

#include <gtest/gtest.h>

namespace lazysi {
namespace engine {
namespace {

TEST(DatabaseTest, AutoCommitPutGet) {
  Database db;
  ASSERT_TRUE(db.Put("k", "v").ok());
  EXPECT_EQ(db.Get("k").value(), "v");
  ASSERT_TRUE(db.Delete("k").ok());
  EXPECT_TRUE(db.Get("k").status().IsNotFound());
}

TEST(DatabaseTest, LogReceivesLifecycleRecords) {
  Database db;
  auto t = db.Begin();
  ASSERT_TRUE(t->Put("a", "1").ok());
  ASSERT_TRUE(t->Put("b", "2").ok());
  ASSERT_TRUE(t->Commit().ok());

  // Expect START, UPDATE, UPDATE, COMMIT.
  ASSERT_EQ(db.log()->Size(), 4u);
  EXPECT_EQ(db.log()->At(0)->type, wal::LogRecordType::kStart);
  EXPECT_EQ(db.log()->At(1)->type, wal::LogRecordType::kUpdate);
  EXPECT_EQ(db.log()->At(2)->type, wal::LogRecordType::kUpdate);
  EXPECT_EQ(db.log()->At(3)->type, wal::LogRecordType::kCommit);
  EXPECT_EQ(db.log()->At(0)->timestamp, t->start_ts());
  EXPECT_EQ(db.log()->At(3)->timestamp, t->commit_ts());
}

TEST(DatabaseTest, ReadOnlyTxnsNotLogged) {
  Database db;
  auto t = db.Begin(/*read_only=*/true);
  (void)t->Get("x");
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(db.log()->Size(), 0u);
}

TEST(DatabaseTest, AbortLogged) {
  Database db;
  auto t = db.Begin();
  ASSERT_TRUE(t->Put("a", "1").ok());
  t->Abort();
  ASSERT_EQ(db.log()->Size(), 3u);  // START, UPDATE, ABORT
  EXPECT_EQ(db.log()->At(2)->type, wal::LogRecordType::kAbort);
}

TEST(DatabaseTest, LogOrderMatchesTimestampOrder) {
  Database db;
  // Interleave two transactions; start/commit records must appear in the
  // log in increasing timestamp order (the propagator's key assumption).
  auto t1 = db.Begin();
  auto t2 = db.Begin();
  ASSERT_TRUE(t2->Put("b", "2").ok());
  ASSERT_TRUE(t2->Commit().ok());
  ASSERT_TRUE(t1->Put("a", "1").ok());
  ASSERT_TRUE(t1->Commit().ok());

  Timestamp last_ts = 0;
  for (std::size_t lsn = 0; lsn < db.log()->Size(); ++lsn) {
    auto r = db.log()->At(lsn);
    if (r->type == wal::LogRecordType::kStart ||
        r->type == wal::LogRecordType::kCommit) {
      EXPECT_GT(r->timestamp, last_ts);
      last_ts = r->timestamp;
    }
  }
}

TEST(DatabaseTest, StateChainAdvancesPerCommit) {
  Database db;
  const auto h0 = db.StateHash();
  ASSERT_TRUE(db.Put("a", "1").ok());
  const auto h1 = db.StateHash();
  ASSERT_TRUE(db.Put("a", "2").ok());
  const auto h2 = db.StateHash();
  EXPECT_NE(h0, h1);
  EXPECT_NE(h1, h2);
  ASSERT_EQ(db.StateChainHistory().size(), 2u);
  EXPECT_EQ(db.StateChainHistory()[1].hash, h2);
}

TEST(DatabaseTest, IdenticalWorkloadsProduceIdenticalChains) {
  Database a, b;
  for (Database* db : {&a, &b}) {
    ASSERT_TRUE(db->Put("x", "1").ok());
    ASSERT_TRUE(db->Put("y", "2").ok());
    auto t = db->Begin();
    ASSERT_TRUE(t->Put("x", "3").ok());
    ASSERT_TRUE(t->Delete("y").ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  EXPECT_EQ(a.StateHash(), b.StateHash());
  ASSERT_EQ(a.StateChainHistory().size(), b.StateChainHistory().size());
  for (std::size_t i = 0; i < a.StateChainHistory().size(); ++i) {
    EXPECT_EQ(a.StateChainHistory()[i].hash, b.StateChainHistory()[i].hash);
  }
}

TEST(DatabaseTest, StateChainDisabledByOption) {
  DatabaseOptions options;
  options.record_state_chain = false;
  Database db(options);
  ASSERT_TRUE(db.Put("a", "1").ok());
  EXPECT_TRUE(db.StateChainHistory().empty());
  EXPECT_NE(db.StateHash(), 0u);  // the running hash still advances
}

TEST(DatabaseTest, CheckpointRoundTrip) {
  Database primary;
  ASSERT_TRUE(primary.Put("a", "1").ok());
  ASSERT_TRUE(primary.Put("b", "2").ok());
  auto cp = primary.TakeCheckpoint();
  EXPECT_EQ(cp.state.size(), 2u);
  EXPECT_EQ(cp.lsn, primary.log()->Size());
  EXPECT_EQ(cp.as_of, primary.LatestCommitTs());

  Database restored;
  auto install_ts = restored.InstallCheckpoint(cp);
  ASSERT_TRUE(install_ts.ok());
  EXPECT_EQ(restored.Get("a").value(), "1");
  EXPECT_EQ(restored.Get("b").value(), "2");
  EXPECT_EQ(restored.store()->Materialize(*install_ts),
            primary.store()->Materialize(cp.as_of));
}

TEST(DatabaseTest, GarbageCollectRespectsActiveSnapshots) {
  Database db;
  ASSERT_TRUE(db.Put("k", "v1").ok());
  auto pinned = db.Begin(/*read_only=*/true);  // pins v1
  ASSERT_TRUE(db.Put("k", "v2").ok());
  ASSERT_TRUE(db.Put("k", "v3").ok());

  // The reader's snapshot caps the horizon at v1: nothing below it is
  // shadowed, so nothing is reclaimed while the reader lives.
  EXPECT_EQ(db.GarbageCollect(), 0u);
  EXPECT_EQ(pinned->Get("k").value(), "v1");
  ASSERT_TRUE(pinned->Commit().ok());

  // Horizon advances once the reader finishes: v1 and v2 both go.
  EXPECT_EQ(db.GarbageCollect(), 2u);
  EXPECT_EQ(db.Get("k").value(), "v3");
  EXPECT_EQ(db.store()->VersionCount(), 1u);
}

TEST(DatabaseTest, GarbageCollectIdleDropsAllShadowed) {
  Database db;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Put("k", std::to_string(i)).ok());
  }
  EXPECT_EQ(db.store()->VersionCount(), 10u);
  EXPECT_EQ(db.GarbageCollect(), 9u);
  EXPECT_EQ(db.Get("k").value(), "9");
}

TEST(DatabaseTest, TimeTravelReaderPinsHorizon) {
  Database db;
  ASSERT_TRUE(db.Put("k", "v1").ok());
  const Timestamp ts1 = db.LatestCommitTs();
  ASSERT_TRUE(db.Put("k", "v2").ok());
  auto historical = db.BeginAtSnapshot(ts1);
  ASSERT_TRUE(historical.ok());
  db.GarbageCollect();
  EXPECT_EQ((*historical)->Get("k").value(), "v1");  // still there
}

TEST(DatabaseTest, LatestCommitTsAdvances) {
  Database db;
  EXPECT_EQ(db.LatestCommitTs(), 0u);
  ASSERT_TRUE(db.Put("a", "1").ok());
  const Timestamp first = db.LatestCommitTs();
  EXPECT_GT(first, 0u);
  ASSERT_TRUE(db.Put("b", "2").ok());
  EXPECT_GT(db.LatestCommitTs(), first);
}

}  // namespace
}  // namespace engine
}  // namespace lazysi
