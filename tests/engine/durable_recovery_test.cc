// Data-directory recovery tests for the group-commit WAL path: restart
// round-trips through OpenDataDir, the differential check that disk-based
// restore produces the same state as in-memory log replay, checkpoint-and-
// truncate cycles, and a fork+SIGKILL harness that kills the process at
// injected crash points inside the log writer and then asserts that every
// commit acknowledged before the crash survives recovery.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/checkpointer.h"
#include "engine/database.h"
#include "engine/recovery.h"
#include "wal/durable_log.h"

// The fork-based harness is incompatible with ThreadSanitizer (forking a
// multithreaded instrumented process wedges the child in the runtime).
#if defined(__SANITIZE_THREAD__)
#define LAZYSI_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LAZYSI_TSAN 1
#endif
#endif

namespace lazysi {
namespace engine {
namespace {

namespace fs = std::filesystem;

class DataDirRecoveryTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) /
           ("data_dir_recovery_" +
            std::string(
                testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string Key(int i) { return "key-" + std::to_string(i); }
  static std::string Val(int i) { return "val-" + std::to_string(i); }

  fs::path dir_;
};

TEST_F(DataDirRecoveryTest, RestartRoundTripsAckedCommits) {
  std::uint64_t hash_before = 0;
  Timestamp visible_before = kInvalidTimestamp;
  {
    Database db;
    wal::DurableLog::Options lo;
    lo.fsync_mode = wal::DurableLog::FsyncMode::kGroup;
    auto state = OpenDataDir(&db, dir_.string(), lo);
    ASSERT_TRUE(state.ok()) << state.status();
    EXPECT_FALSE(state->had_state);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db.Put(Key(i), Val(i)).ok());  // acked => durable
    }
    hash_before = db.ContentHash();
    visible_before = db.LatestCommitTs();
    state->durable->Close();
  }
  Database db;
  wal::DurableLog::Options lo;
  auto state = OpenDataDir(&db, dir_.string(), lo);
  ASSERT_TRUE(state.ok()) << state.status();
  EXPECT_TRUE(state->had_state);
  EXPECT_EQ(state->report.commits_applied, 20u);
  EXPECT_EQ(state->report.unresolved_aborted, 0u);
  EXPECT_EQ(state->report.restored_visible, visible_before);
  EXPECT_EQ(db.ContentHash(), hash_before);
  for (int i = 0; i < 20; ++i) {
    auto v = db.Get(Key(i));
    ASSERT_TRUE(v.ok()) << Key(i) << ": " << v.status();
    EXPECT_EQ(*v, Val(i));
  }
  // Commit timestamps were preserved, and new commits land above them.
  EXPECT_EQ(db.LatestCommitTs(), visible_before);
  ASSERT_TRUE(db.Put("after", "restart").ok());
  EXPECT_GT(db.LatestCommitTs(), visible_before);
  state->durable->Close();
}

TEST_F(DataDirRecoveryTest, RestoreMatchesInMemoryReplay) {
  {
    Database db;
    wal::DurableLog::Options lo;
    auto state = OpenDataDir(&db, dir_.string(), lo);
    ASSERT_TRUE(state.ok()) << state.status();
    for (int i = 0; i < 30; ++i) {
      auto t = db.Begin();
      ASSERT_TRUE(t->Put(Key(i % 11), Val(i)).ok());
      if (i % 7 == 0) {
        ASSERT_TRUE(t->Delete(Key((i + 3) % 11)).ok());
      }
      if (i % 5 == 4) {
        t->Abort();  // aborted work must not reappear on either path
      } else {
        ASSERT_TRUE(t->Commit().ok());
      }
    }
    state->durable->Close();
  }
  // Path A: the engine's disk-based restore (timestamp-preserving).
  Database restored;
  wal::DurableLog::Options lo;
  auto state = OpenDataDir(&restored, dir_.string(), lo);
  ASSERT_TRUE(state.ok()) << state.status();
  state->durable->Close();

  // Path B: decode the raw segments and run the in-memory replay engine.
  wal::DurableLog::Recovered raw;
  wal::DurableLog::Options ro;
  ro.dir = (dir_ / "wal").string();
  auto log = wal::DurableLog::Open(ro, &raw);
  ASSERT_TRUE(log.ok()) << log.status();
  (*log)->Close();
  Database replayed;
  auto applied = ReplayLog(&replayed, raw.records);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, state->report.commits_applied);

  // Same materialized state, regardless of which engine rebuilt it.
  EXPECT_EQ(restored.ContentHash(), replayed.ContentHash());
  EXPECT_NE(restored.ContentHash(), 0u);
}

TEST_F(DataDirRecoveryTest, CheckpointTruncatesAndBoundsReplay) {
  std::uint64_t hash_before = 0;
  {
    Database db;
    wal::DurableLog::Options lo;
    lo.segment_target_bytes = 256;  // rotate often so truncation can bite
    auto state = OpenDataDir(&db, dir_.string(), lo);
    ASSERT_TRUE(state.ok()) << state.status();
    Checkpointer::Options copts;
    copts.data_dir = dir_.string();
    Checkpointer checkpointer(&db, state->durable.get(), copts);

    for (int i = 0; i < 30; ++i) ASSERT_TRUE(db.Put(Key(i), Val(i)).ok());
    ASSERT_TRUE(checkpointer.CheckpointNow().ok());
    for (int i = 30; i < 50; ++i) ASSERT_TRUE(db.Put(Key(i), Val(i)).ok());
    ASSERT_TRUE(checkpointer.CheckpointNow().ok());
    EXPECT_EQ(checkpointer.checkpoint_count(), 2u);
    EXPECT_GT(checkpointer.last_checkpoint_lsn(), 0u);

    // The second cycle's floor covers the first 30+ transactions' segments.
    EXPECT_GT(state->durable->base_lsn(), 0u);
    EXPECT_GT(state->durable->counters().bytes_truncated, 0u);
    // The in-memory log was truncated in step with the segments.
    EXPECT_EQ(db.log()->base_lsn(), state->durable->base_lsn());
    hash_before = db.ContentHash();
    state->durable->Close();
  }
  // Restart: manifest names the checkpoint, replay covers only the suffix.
  Database db;
  wal::DurableLog::Options lo;
  auto state = OpenDataDir(&db, dir_.string(), lo);
  ASSERT_TRUE(state.ok()) << state.status();
  EXPECT_TRUE(state->had_state);
  EXPECT_LT(state->report.commits_applied, 50u);  // bounded replay
  EXPECT_EQ(db.ContentHash(), hash_before);
  for (int i = 0; i < 50; ++i) {
    auto v = db.Get(Key(i));
    ASSERT_TRUE(v.ok()) << Key(i) << ": " << v.status();
    EXPECT_EQ(*v, Val(i));
  }
  state->durable->Close();
}

TEST_F(DataDirRecoveryTest, TruncationFloorRespectsLogFloorCallback) {
  Database db;
  wal::DurableLog::Options lo;
  lo.segment_target_bytes = 256;
  auto state = OpenDataDir(&db, dir_.string(), lo);
  ASSERT_TRUE(state.ok()) << state.status();
  Checkpointer::Options copts;
  copts.data_dir = dir_.string();
  // A propagation sink stuck at LSN 0 pins the whole log.
  copts.log_floor = [] { return std::uint64_t{0}; };
  Checkpointer checkpointer(&db, state->durable.get(), copts);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(db.Put(Key(i), Val(i)).ok());
  ASSERT_TRUE(checkpointer.CheckpointNow().ok());
  EXPECT_EQ(state->durable->base_lsn(), 0u);
  EXPECT_EQ(state->durable->counters().bytes_truncated, 0u);
  state->durable->Close();
}

#ifndef LAZYSI_TSAN

/// Child body for the crash harness: opens the data dir, installs a crash
/// hook that SIGKILLs the whole process the `fire_after`-th time the writer
/// reaches `point`, then commits keys one at a time, reporting each *acked*
/// commit index on `ack_fd` before starting the next. Never returns.
[[noreturn]] void RunCrashingChild(const std::string& dir,
                                   wal::DurableLog::FsyncMode mode,
                                   wal::DurableLog::CrashPoint point,
                                   int fire_after, int ack_fd) {
  Database db;
  wal::DurableLog::Options lo;
  lo.fsync_mode = mode;
  auto state = OpenDataDir(&db, dir, lo);
  if (!state.ok()) ::_exit(3);
  auto fires = std::make_shared<std::atomic<int>>(0);
  state->durable->SetCrashHook(
      [point, fire_after, fires](wal::DurableLog::CrashPoint p) {
        if (p == point && fires->fetch_add(1) + 1 >= fire_after) {
          ::kill(::getpid(), SIGKILL);  // hard stop, mid-pipeline
        }
      });
  for (std::int32_t i = 0; i < 500; ++i) {
    if (!db.Put("key-" + std::to_string(i), "val-" + std::to_string(i)).ok()) {
      ::_exit(4);
    }
    // Acked: the durability gate accepted this commit. Anything reported
    // here must survive the crash.
    if (::write(ack_fd, &i, sizeof(i)) != sizeof(i)) ::_exit(5);
  }
  ::_exit(2);  // crash hook never fired — the test would be vacuous
}

class CrashPointRecoveryTest
    : public DataDirRecoveryTest,
      public testing::WithParamInterface<
          std::tuple<wal::DurableLog::FsyncMode, wal::DurableLog::CrashPoint>> {
};

TEST_P(CrashPointRecoveryTest, AckedCommitsSurviveKill) {
  const auto [mode, point] = GetParam();
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(fds[0]);
    RunCrashingChild(dir_.string(), mode, point, /*fire_after=*/9, fds[1]);
  }
  ::close(fds[1]);

  std::vector<std::int32_t> acked;
  std::int32_t idx = 0;
  while (::read(fds[0], &idx, sizeof(idx)) == sizeof(idx)) {
    acked.push_back(idx);
  }
  ::close(fds[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child exited " << status << " instead of being SIGKILLed";
  ASSERT_FALSE(acked.empty());

  // Recover in-process. Open must succeed whatever torn tail the kill left
  // behind (a partially-written frame is truncated, never surfaced).
  Database db;
  wal::DurableLog::Options lo;
  lo.fsync_mode = mode;
  auto state = OpenDataDir(&db, dir_.string(), lo);
  ASSERT_TRUE(state.ok()) << state.status();
  EXPECT_TRUE(state->had_state);
  for (const std::int32_t i : acked) {
    auto v = db.Get("key-" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << "acked key-" << i << " lost: " << v.status();
    EXPECT_EQ(*v, "val-" + std::to_string(i));
  }
  state->durable->Close();
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndPoints, CrashPointRecoveryTest,
    testing::Values(
        std::make_tuple(wal::DurableLog::FsyncMode::kGroup,
                        wal::DurableLog::CrashPoint::kAfterWrite),
        std::make_tuple(wal::DurableLog::FsyncMode::kGroup,
                        wal::DurableLog::CrashPoint::kAfterFsync),
        std::make_tuple(wal::DurableLog::FsyncMode::kAlways,
                        wal::DurableLog::CrashPoint::kAfterWrite),
        std::make_tuple(wal::DurableLog::FsyncMode::kAlways,
                        wal::DurableLog::CrashPoint::kAfterFsync)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) ==
                                 wal::DurableLog::FsyncMode::kGroup
                             ? "Group"
                             : "Always";
      name += std::get<1>(info.param) ==
                      wal::DurableLog::CrashPoint::kAfterWrite
                  ? "AfterWrite"
                  : "AfterFsync";
      return name;
    });

#endif  // !LAZYSI_TSAN

}  // namespace
}  // namespace engine
}  // namespace lazysi
