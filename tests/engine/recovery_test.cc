#include "engine/recovery.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"
#include "wal/log_file.h"

namespace lazysi {
namespace engine {
namespace {

class DurableRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    checkpoint_path_ = ::testing::TempDir() + "lazysi_recovery_test.ckpt";
    log_path_ = ::testing::TempDir() + "lazysi_recovery_test.log";
    std::remove(checkpoint_path_.c_str());
    std::remove(log_path_.c_str());
  }
  void TearDown() override {
    std::remove(checkpoint_path_.c_str());
    std::remove(log_path_.c_str());
  }
  std::string checkpoint_path_;
  std::string log_path_;
};

TEST_F(DurableRecoveryTest, CheckpointFileRoundTrip) {
  Database db;
  ASSERT_TRUE(db.Put("a", "1").ok());
  ASSERT_TRUE(db.Put("b", "2").ok());
  const auto cp = db.TakeCheckpoint();
  ASSERT_TRUE(SaveCheckpoint(cp, checkpoint_path_).ok());

  auto loaded = LoadCheckpoint(checkpoint_path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->as_of, cp.as_of);
  EXPECT_EQ(loaded->lsn, cp.lsn);
  EXPECT_EQ(loaded->state, cp.state);
}

TEST_F(DurableRecoveryTest, LoadRejectsCorruptCheckpoint) {
  Database db;
  ASSERT_TRUE(db.Put("a", "1").ok());
  ASSERT_TRUE(SaveCheckpoint(db.TakeCheckpoint(), checkpoint_path_).ok());
  std::FILE* f = std::fopen(checkpoint_path_.c_str(), "r+b");
  std::fseek(f, 10, SEEK_SET);
  std::fputc('X', f);
  std::fclose(f);
  EXPECT_FALSE(LoadCheckpoint(checkpoint_path_).ok());
}

TEST_F(DurableRecoveryTest, ReplayRestoresExactState) {
  Database original;
  Rng rng(404);
  // Phase 1: workload, then a quiesced checkpoint.
  for (int i = 0; i < 50; ++i) {
    auto t = original.Begin();
    ASSERT_TRUE(t->Put("k" + std::to_string(rng.Next(20)),
                       std::to_string(i)).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  const auto cp = original.TakeCheckpoint();
  ASSERT_TRUE(SaveCheckpoint(cp, checkpoint_path_).ok());

  // Phase 2: more workload — puts, deletes, multi-key txns, aborts.
  for (int i = 0; i < 50; ++i) {
    auto t = original.Begin();
    const std::string key = "k" + std::to_string(rng.Next(20));
    if (rng.Bernoulli(0.2)) {
      ASSERT_TRUE(t->Delete(key).ok());
    } else {
      ASSERT_TRUE(t->Put(key, "p2-" + std::to_string(i)).ok());
      ASSERT_TRUE(t->Put("extra/" + std::to_string(i % 7), "x").ok());
    }
    if (rng.Bernoulli(0.1)) {
      t->Abort();
    } else {
      ASSERT_TRUE(t->Commit().ok());
    }
  }
  ASSERT_TRUE(wal::LogFile::Write(*original.log(), log_path_, cp.lsn).ok());

  // "Crash" and restore: checkpoint + log suffix replay.
  Database restored;
  auto loaded = LoadCheckpoint(checkpoint_path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(restored.InstallCheckpoint(*loaded).ok());
  auto records = wal::LogFile::Read(log_path_);
  ASSERT_TRUE(records.ok());
  auto applied = ReplayLog(&restored, *records);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_GT(*applied, 0u);

  EXPECT_EQ(restored.store()->Materialize(restored.LatestCommitTs()),
            original.store()->Materialize(original.LatestCommitTs()));
}

TEST_F(DurableRecoveryTest, GroupApplyReplayMatchesLegacy) {
  // Differential check of the two replay engines: the group-apply path
  // (externally-ordered commits + ApplyBatch store passes) must restore the
  // same state-hash chain and materialized state as the legacy
  // one-transaction-per-commit path.
  Database original;
  Rng rng(1717);
  for (int i = 0; i < 120; ++i) {
    auto t = original.Begin();
    const std::string key = "k" + std::to_string(rng.Next(25));
    if (rng.Bernoulli(0.2)) {
      ASSERT_TRUE(t->Delete(key).ok());
    } else {
      ASSERT_TRUE(t->Put(key, "v" + std::to_string(i)).ok());
      if (rng.Bernoulli(0.5)) {
        ASSERT_TRUE(t->Put("multi/" + std::to_string(i % 9), "m").ok());
      }
    }
    if (rng.Bernoulli(0.15)) {
      t->Abort();
    } else {
      ASSERT_TRUE(t->Commit().ok());
    }
    if (i % 10 == 0) {
      // Interleaved disjoint-key transactions committed in reverse begin
      // order: their start/commit records interleave in the log, exercising
      // the group engine's out-of-order chain splicing.
      auto a = original.Begin();
      auto b = original.Begin();
      ASSERT_TRUE(a->Put("pair/a" + std::to_string(i), "pa").ok());
      ASSERT_TRUE(b->Put("pair/b" + std::to_string(i), "pb").ok());
      ASSERT_TRUE(b->Commit().ok());
      ASSERT_TRUE(a->Commit().ok());
    }
  }
  ASSERT_TRUE(wal::LogFile::Write(*original.log(), log_path_).ok());
  auto records = wal::LogFile::Read(log_path_);
  ASSERT_TRUE(records.ok());

  Database legacy;
  auto n_legacy = ReplayLog(&legacy, *records);
  ASSERT_TRUE(n_legacy.ok()) << n_legacy.status();

  Database grouped;
  ReplayOptions opts;
  opts.group_apply = true;
  opts.group_limit = 8;
  auto n_grouped = ReplayLog(&grouped, *records, opts);
  ASSERT_TRUE(n_grouped.ok()) << n_grouped.status();

  EXPECT_EQ(*n_legacy, *n_grouped);
  // Same write sets installed in the same commit order -> identical chains
  // (the executable form of Theorem 3.1) and identical state.
  EXPECT_EQ(legacy.StateHash(), grouped.StateHash());
  EXPECT_EQ(grouped.store()->Materialize(grouped.LatestCommitTs()),
            legacy.store()->Materialize(legacy.LatestCommitTs()));
  EXPECT_EQ(grouped.store()->Materialize(grouped.LatestCommitTs()),
            original.store()->Materialize(original.LatestCommitTs()));
}

TEST_F(DurableRecoveryTest, GroupApplyRejectsNonQuiescedSegment) {
  Database db;
  auto t = db.Begin();
  ASSERT_TRUE(t->Put("a", "1").ok());
  const std::size_t mid = db.log()->Size();
  ASSERT_TRUE(t->Commit().ok());
  ASSERT_TRUE(wal::LogFile::Write(*db.log(), log_path_, mid).ok());
  auto records = wal::LogFile::Read(log_path_);
  ASSERT_TRUE(records.ok());
  Database restored;
  ReplayOptions opts;
  opts.group_apply = true;
  auto applied = ReplayLog(&restored, *records, opts);
  EXPECT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DurableRecoveryTest, ReplayRejectsNonQuiescedSegment) {
  Database db;
  auto t = db.Begin();
  ASSERT_TRUE(t->Put("a", "1").ok());
  const std::size_t mid = db.log()->Size();  // start+update already logged
  ASSERT_TRUE(t->Commit().ok());
  ASSERT_TRUE(wal::LogFile::Write(*db.log(), log_path_, mid).ok());
  auto records = wal::LogFile::Read(log_path_);
  ASSERT_TRUE(records.ok());
  Database restored;
  auto applied = ReplayLog(&restored, *records);
  EXPECT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DurableRecoveryTest, ReplaySkipsAbortedTransactions) {
  Database db;
  auto t = db.Begin();
  ASSERT_TRUE(t->Put("gone", "x").ok());
  t->Abort();
  ASSERT_TRUE(db.Put("kept", "y").ok());
  ASSERT_TRUE(wal::LogFile::Write(*db.log(), log_path_).ok());
  auto records = wal::LogFile::Read(log_path_);
  ASSERT_TRUE(records.ok());
  Database restored;
  auto applied = ReplayLog(&restored, *records);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 1u);
  EXPECT_TRUE(restored.Get("gone").status().IsNotFound());
  EXPECT_EQ(restored.Get("kept").value(), "y");
}

TEST(TimeTravelTest, ReadsHistoricalSnapshots) {
  Database db;
  ASSERT_TRUE(db.Put("k", "v1").ok());
  const Timestamp ts1 = db.LatestCommitTs();
  ASSERT_TRUE(db.Put("k", "v2").ok());
  const Timestamp ts2 = db.LatestCommitTs();
  ASSERT_TRUE(db.Delete("k").ok());

  auto at1 = db.BeginAtSnapshot(ts1);
  ASSERT_TRUE(at1.ok());
  EXPECT_EQ((*at1)->Get("k").value(), "v1");
  auto at2 = db.BeginAtSnapshot(ts2);
  ASSERT_TRUE(at2.ok());
  EXPECT_EQ((*at2)->Get("k").value(), "v2");
  auto now = db.Begin(/*read_only=*/true);
  EXPECT_TRUE(now->Get("k").status().IsNotFound());
}

TEST(TimeTravelTest, FutureSnapshotRejected) {
  Database db;
  ASSERT_TRUE(db.Put("k", "v").ok());
  auto bad = db.BeginAtSnapshot(db.LatestCommitTs() + 1000);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(TimeTravelTest, PrunedVersionsGone) {
  Database db;
  ASSERT_TRUE(db.Put("k", "v1").ok());
  const Timestamp ts1 = db.LatestCommitTs();
  ASSERT_TRUE(db.Put("k", "v2").ok());
  const Timestamp ts2 = db.LatestCommitTs();
  db.store()->PruneVersions(ts2);
  // The old version is gone; a time-travel read below the horizon misses.
  auto at1 = db.BeginAtSnapshot(ts1);
  ASSERT_TRUE(at1.ok());
  EXPECT_TRUE((*at1)->Get("k").status().IsNotFound());
  // Current reads unaffected.
  EXPECT_EQ(db.Get("k").value(), "v2");
}

}  // namespace
}  // namespace engine
}  // namespace lazysi
