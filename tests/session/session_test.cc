#include "session/session.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace lazysi {
namespace session {
namespace {

TEST(SessionTest, SeqStartsAtZero) {
  Session s(1);
  EXPECT_EQ(s.label(), 1u);
  EXPECT_EQ(s.seq(), 0u);
}

TEST(SessionTest, AdvanceSeqMonotonic) {
  Session s(1);
  s.AdvanceSeq(10);
  EXPECT_EQ(s.seq(), 10u);
  s.AdvanceSeq(5);  // stale value ignored
  EXPECT_EQ(s.seq(), 10u);
  s.AdvanceSeq(20);
  EXPECT_EQ(s.seq(), 20u);
}

TEST(SessionTest, ConcurrentAdvanceKeepsMax) {
  Session s(1);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (Timestamp ts = 1; ts <= 1000; ++ts) s.AdvanceSeq(ts * 4 + t);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(s.seq(), 4003u);
}

TEST(SessionManagerTest, SessionSIHandsOutDistinctSessions) {
  SessionManager mgr(Guarantee::kStrongSessionSI);
  auto a = mgr.CreateSession();
  auto b = mgr.CreateSession();
  EXPECT_NE(a->label(), b->label());
  a->AdvanceSeq(42);
  EXPECT_EQ(b->seq(), 0u);  // independent sequence numbers
  EXPECT_TRUE(mgr.ReadsBlockOnSessionSeq());
}

TEST(SessionManagerTest, StrongSIHasSingleGlobalSession) {
  // ALG-STRONG-SI == ALG-STRONG-SESSION-SI with one session for the whole
  // system (Section 6).
  SessionManager mgr(Guarantee::kStrongSI);
  auto a = mgr.CreateSession();
  auto b = mgr.CreateSession();
  EXPECT_EQ(a.get(), b.get());
  a->AdvanceSeq(7);
  EXPECT_EQ(b->seq(), 7u);
  EXPECT_TRUE(mgr.ReadsBlockOnSessionSeq());
}

TEST(SessionManagerTest, WeakSINeverBlocks) {
  SessionManager mgr(Guarantee::kWeakSI);
  EXPECT_FALSE(mgr.ReadsBlockOnSessionSeq());
  // Sessions are still distinct (labels remain useful for analysis).
  auto a = mgr.CreateSession();
  auto b = mgr.CreateSession();
  EXPECT_NE(a->label(), b->label());
}

TEST(GuaranteeTest, Names) {
  EXPECT_EQ(GuaranteeName(Guarantee::kWeakSI), "ALG-WEAK-SI");
  EXPECT_EQ(GuaranteeName(Guarantee::kStrongSessionSI),
            "ALG-STRONG-SESSION-SI");
  EXPECT_EQ(GuaranteeName(Guarantee::kStrongSI), "ALG-STRONG-SI");
}

}  // namespace
}  // namespace session
}  // namespace lazysi
