// Table 1 of the paper, asserted: if these defaults drift, the benchmark
// figures are no longer the paper's experiments.

#include "simmodel/params.h"

#include <gtest/gtest.h>

namespace lazysi {
namespace simmodel {
namespace {

TEST(ParamsTest, Table1Defaults) {
  Params p;
  EXPECT_EQ(p.clients_per_secondary, 20u);       // num_clients: 20/secondary
  EXPECT_DOUBLE_EQ(p.think_time, 7.0);           // think_time: 7 s
  EXPECT_DOUBLE_EQ(p.session_time, 900.0);       // session_time: 15 min
  EXPECT_DOUBLE_EQ(p.update_tran_prob, 0.20);    // update_tran_prob: 20%
  EXPECT_DOUBLE_EQ(p.abort_prob, 0.01);          // abort_prob: 1%
  EXPECT_EQ(p.tran_size_min, 5);                 // tran_size: mean 10
  EXPECT_EQ(p.tran_size_max, 15);
  EXPECT_DOUBLE_EQ(p.op_service_time, 0.02);     // op_service_time: 0.02 s
  EXPECT_DOUBLE_EQ(p.update_op_prob, 0.30);      // update_op_prob: 30%
  EXPECT_DOUBLE_EQ(p.propagation_delay, 10.0);   // propagation_delay: 10 s
}

TEST(ParamsTest, RunControlDefaults) {
  Params p;
  EXPECT_DOUBLE_EQ(p.warmup_time, 300.0);      // 5 min warm-up (Sec. 6.1)
  EXPECT_DOUBLE_EQ(p.measure_time, 1800.0);    // 35 min total runs
  EXPECT_DOUBLE_EQ(p.response_threshold, 3.0); // "finish in 3 s or less"
}

TEST(ParamsTest, TotalClientsComputation) {
  Params p;
  p.num_secondaries = 5;
  p.clients_per_secondary = 20;
  EXPECT_EQ(p.total_clients(), 100u);
  p.total_clients_override = 250;
  EXPECT_EQ(p.total_clients(), 250u);
}

TEST(ParamsTest, TableStringMentionsKeyValues) {
  Params p;
  const std::string table = p.ToTableString();
  EXPECT_NE(table.find("think_time"), std::string::npos);
  EXPECT_NE(table.find("propagation_delay"), std::string::npos);
  EXPECT_NE(table.find("ALG-STRONG-SESSION-SI"), std::string::npos);
}

}  // namespace
}  // namespace simmodel
}  // namespace lazysi
