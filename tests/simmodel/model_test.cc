#include "simmodel/model.h"

#include <gtest/gtest.h>

namespace lazysi {
namespace simmodel {
namespace {

Params FastParams(session::Guarantee g, std::size_t secondaries = 3,
                  std::size_t clients = 60) {
  Params p;
  p.num_secondaries = secondaries;
  p.total_clients_override = clients;
  p.guarantee = g;
  // Shorter window keeps the test quick; still hundreds of transactions.
  p.warmup_time = 120;
  p.measure_time = 600;
  return p;
}

TEST(ModelTest, DeterministicGivenSeed) {
  Metrics a = Model(FastParams(session::Guarantee::kStrongSessionSI), 7).Run();
  Metrics b = Model(FastParams(session::Guarantee::kStrongSessionSI), 7).Run();
  EXPECT_EQ(a.throughput_total, b.throughput_total);
  EXPECT_EQ(a.ro_response_mean, b.ro_response_mean);
  EXPECT_EQ(a.upd_response_mean, b.upd_response_mean);
  EXPECT_EQ(a.refreshes_applied, b.refreshes_applied);
}

TEST(ModelTest, DifferentSeedsDiffer) {
  Metrics a = Model(FastParams(session::Guarantee::kWeakSI), 1).Run();
  Metrics b = Model(FastParams(session::Guarantee::kWeakSI), 2).Run();
  EXPECT_NE(a.throughput_total, b.throughput_total);
}

TEST(ModelTest, ThroughputInPlausibleRange) {
  // 60 clients, ~7s think + ~0.5s service => roughly 8 tps total.
  Metrics m = Model(FastParams(session::Guarantee::kWeakSI), 3).Run();
  EXPECT_GT(m.throughput_total, 4.0);
  EXPECT_LT(m.throughput_total, 12.0);
  EXPECT_GT(m.ro_completed, 100u);
  EXPECT_GT(m.upd_completed, 20u);
}

TEST(ModelTest, PercentilesDominateMeans) {
  Metrics m = Model(FastParams(session::Guarantee::kStrongSessionSI), 3).Run();
  EXPECT_GE(m.ro_response_p95, m.ro_response_mean);
  EXPECT_GE(m.upd_response_p95, m.upd_response_mean);
  EXPECT_GT(m.ro_response_p95, 0.0);
}

TEST(ModelTest, WeakSINeverBlocksReads) {
  Metrics m = Model(FastParams(session::Guarantee::kWeakSI), 3).Run();
  EXPECT_EQ(m.ro_block_mean, 0.0);
}

TEST(ModelTest, StrongSIBlocksReadsNearPropagationDelay) {
  Metrics m = Model(FastParams(session::Guarantee::kStrongSI), 3).Run();
  // Every read waits for the latest global update to be applied; with a
  // 10 s propagation cycle the mean block is several seconds.
  EXPECT_GT(m.ro_block_mean, 2.0);
  EXPECT_LT(m.ro_block_mean, 15.0);
}

TEST(ModelTest, SessionSIBlocksLessThanStrongSI) {
  Metrics session =
      Model(FastParams(session::Guarantee::kStrongSessionSI), 3).Run();
  Metrics strong = Model(FastParams(session::Guarantee::kStrongSI), 3).Run();
  EXPECT_LT(session.ro_block_mean, strong.ro_block_mean);
  EXPECT_GT(session.throughput_fast, strong.throughput_fast);
}

TEST(ModelTest, SessionSIThroughputCloseToWeakSI) {
  // The paper's headline: strong session SI costs almost nothing vs weak SI.
  Metrics weak = Model(FastParams(session::Guarantee::kWeakSI), 3).Run();
  Metrics session =
      Model(FastParams(session::Guarantee::kStrongSessionSI), 3).Run();
  EXPECT_GT(session.throughput_fast, 0.75 * weak.throughput_fast);
}

TEST(ModelTest, RefreshLagDominatedByPropagationDelay) {
  Metrics m = Model(FastParams(session::Guarantee::kWeakSI), 3).Run();
  // Records wait up to one 10 s cycle; mean lag around half that plus
  // queueing.
  EXPECT_GT(m.mean_refresh_lag, 2.0);
  EXPECT_LT(m.mean_refresh_lag, 12.0);
  EXPECT_GT(m.refreshes_applied, 0u);
}

TEST(ModelTest, AbortsHappenAtConfiguredRate) {
  Params p = FastParams(session::Guarantee::kWeakSI);
  p.abort_prob = 0.2;  // exaggerate to measure reliably
  Metrics m = Model(p, 3).Run();
  // Aborts restart immediately, so aborts/(commits+aborts) ~ abort_prob.
  const double rate =
      static_cast<double>(m.upd_aborts) /
      static_cast<double>(m.upd_completed + m.upd_aborts);
  EXPECT_NEAR(rate, 0.2, 0.05);
}

TEST(ModelTest, PrimarySaturatesWithScale) {
  // Fixing 20 clients/secondary and growing secondaries saturates the
  // primary (the Figure 5 plateau past ~11 secondaries).
  Params small = Params();
  small.num_secondaries = 4;
  small.warmup_time = 120;
  small.measure_time = 600;
  small.guarantee = session::Guarantee::kWeakSI;
  Params big = small;
  big.num_secondaries = 14;
  Metrics m_small = Model(small, 5).Run();
  Metrics m_big = Model(big, 5).Run();
  EXPECT_GT(m_big.primary_utilization, m_small.primary_utilization);
  EXPECT_GT(m_big.primary_utilization, 0.9);  // saturated
  EXPECT_GT(m_big.upd_response_mean, m_small.upd_response_mean);
}

TEST(ModelTest, BrowsingMixScalesFurther) {
  // 95/5 offloads the primary: at 14 secondaries it is far from saturated.
  Params p;
  p.num_secondaries = 14;
  p.update_tran_prob = 0.05;
  p.warmup_time = 120;
  p.measure_time = 600;
  p.guarantee = session::Guarantee::kWeakSI;
  Metrics m = Model(p, 5).Run();
  EXPECT_LT(m.primary_utilization, 0.6);
}

TEST(ModelTest, ReplicationsAggregateWithConfidence) {
  Params p = FastParams(session::Guarantee::kStrongSessionSI);
  ReplicatedResult r = RunReplications(p, 3);
  EXPECT_GT(r.throughput_fast.mean, 0.0);
  EXPECT_GT(r.throughput_fast.ci95, 0.0);
  EXPECT_GT(r.ro_response.mean, 0.0);
}

TEST(ModelTest, RoamingReadsRegressUnderPCSIButNotSessionSI) {
  // With reads roaming across secondaries, PCSI (and weak SI) sessions can
  // observe snapshots that go backwards; strong session SI's read-read rule
  // makes that impossible (Section 7).
  auto run = [](session::Guarantee g) {
    Params p = FastParams(g, 4, 80);
    p.roam_reads = true;
    return Model(p, 13).Run();
  };
  Metrics weak = run(session::Guarantee::kWeakSI);
  Metrics pcsi = run(session::Guarantee::kPrefixConsistentSI);
  Metrics strong_session = run(session::Guarantee::kStrongSessionSI);
  Metrics strong = run(session::Guarantee::kStrongSI);
  EXPECT_GT(weak.snapshot_regressions, 0u);
  EXPECT_GT(pcsi.snapshot_regressions, 0u);
  EXPECT_EQ(strong_session.snapshot_regressions, 0u);
  EXPECT_EQ(strong.snapshot_regressions, 0u);
}

TEST(ModelTest, RoamingSessionSICostsMoreThanPCSI) {
  // Enforcing read-read monotonicity across sites costs extra blocking.
  auto run = [](session::Guarantee g) {
    Params p = FastParams(g, 4, 80);
    p.roam_reads = true;
    return Model(p, 13).Run();
  };
  Metrics pcsi = run(session::Guarantee::kPrefixConsistentSI);
  Metrics strong_session = run(session::Guarantee::kStrongSessionSI);
  EXPECT_GE(strong_session.ro_block_mean, pcsi.ro_block_mean);
}

TEST(ModelTest, HomeBoundReadsNeverRegress) {
  // Bound to one secondary, even weak SI reads see monotone snapshots
  // (local states only move forward) — roaming is what breaks it.
  Params p = FastParams(session::Guarantee::kWeakSI, 4, 80);
  p.roam_reads = false;
  Metrics m = Model(p, 13).Run();
  EXPECT_EQ(m.snapshot_regressions, 0u);
}

TEST(ModelTest, PCSIEquivalentToSessionSIWithoutRoaming) {
  // With home-bound reads the two guarantees coincide (the secondary's
  // state is monotone), so their performance should match closely.
  Params a = FastParams(session::Guarantee::kStrongSessionSI, 3, 60);
  Params b = FastParams(session::Guarantee::kPrefixConsistentSI, 3, 60);
  Metrics ma = Model(a, 21).Run();
  Metrics mb = Model(b, 21).Run();
  EXPECT_NEAR(ma.ro_response_mean, mb.ro_response_mean,
              0.2 * ma.ro_response_mean + 0.05);
}

TEST(ModelTest, BoundedApplicatorPoolStillCorrectAndSlower) {
  // Ablation of Section 3.3's concurrency: a single applicator can only
  // increase refresh lag, never change what is applied.
  Params unbounded = FastParams(session::Guarantee::kStrongSessionSI, 3, 90);
  Params serial = unbounded;
  serial.applicator_pool_size = 1;
  Metrics mu = Model(unbounded, 5).Run();
  Metrics ms = Model(serial, 5).Run();
  // Timing shifts move a handful of refreshes across the window boundary;
  // the totals must agree up to that noise.
  EXPECT_NEAR(static_cast<double>(ms.refreshes_applied),
              static_cast<double>(mu.refreshes_applied),
              0.02 * static_cast<double>(mu.refreshes_applied));
  EXPECT_GE(ms.mean_refresh_lag, mu.mean_refresh_lag - 0.2);
}

TEST(ModelTest, RoundRobinDisciplineMatchesPSClosely) {
  // Fidelity check for the PS substitution on the real workload shape (small
  // configuration to keep runtime down).
  Params ps = FastParams(session::Guarantee::kWeakSI, 2, 20);
  ps.warmup_time = 60;
  ps.measure_time = 240;
  Params rr = ps;
  rr.discipline = sim::Resource::Discipline::kRoundRobin;
  Metrics m_ps = Model(ps, 11).Run();
  Metrics m_rr = Model(rr, 11).Run();
  EXPECT_NEAR(m_rr.throughput_total, m_ps.throughput_total,
              0.15 * m_ps.throughput_total + 0.5);
  EXPECT_NEAR(m_rr.ro_response_mean, m_ps.ro_response_mean,
              0.2 * m_ps.ro_response_mean + 0.05);
}

}  // namespace
}  // namespace simmodel
}  // namespace lazysi
