#include "storage/versioned_store.h"

#include <gtest/gtest.h>

#include <thread>

namespace lazysi {
namespace storage {
namespace {

WriteSet MakePut(const std::string& key, const std::string& value) {
  WriteSet ws;
  ws.Put(key, value);
  return ws;
}

TEST(VersionedStoreTest, GetMissingKey) {
  VersionedStore store;
  EXPECT_TRUE(store.Get("nope", 100).status().IsNotFound());
}

TEST(VersionedStoreTest, SnapshotSelectsVersion) {
  VersionedStore store;
  store.Apply(MakePut("k", "v1"), 10);
  store.Apply(MakePut("k", "v2"), 20);
  store.Apply(MakePut("k", "v3"), 30);

  EXPECT_TRUE(store.Get("k", 5).status().IsNotFound());
  EXPECT_EQ(store.Get("k", 10)->value, "v1");
  EXPECT_EQ(store.Get("k", 15)->value, "v1");
  EXPECT_EQ(store.Get("k", 20)->value, "v2");
  EXPECT_EQ(store.Get("k", 29)->value, "v2");
  EXPECT_EQ(store.Get("k", 1000)->value, "v3");
  EXPECT_EQ(store.Get("k", 1000)->commit_ts, 30u);
}

TEST(VersionedStoreTest, DeleteVisibility) {
  VersionedStore store;
  store.Apply(MakePut("k", "v1"), 10);
  WriteSet del;
  del.Delete("k");
  store.Apply(del, 20);
  store.Apply(MakePut("k", "v3"), 30);

  EXPECT_EQ(store.Get("k", 15)->value, "v1");
  EXPECT_TRUE(store.Get("k", 25).status().IsNotFound());
  EXPECT_EQ(store.Get("k", 35)->value, "v3");
}

TEST(VersionedStoreTest, HasCommitAfter) {
  VersionedStore store;
  store.Apply(MakePut("k", "v1"), 10);
  EXPECT_TRUE(store.HasCommitAfter("k", 5));
  EXPECT_FALSE(store.HasCommitAfter("k", 10));
  EXPECT_FALSE(store.HasCommitAfter("k", 15));
  EXPECT_FALSE(store.HasCommitAfter("other", 0));
}

TEST(VersionedStoreTest, ApplyMultipleKeysAtomically) {
  VersionedStore store;
  WriteSet ws;
  ws.Put("a", "1");
  ws.Put("b", "2");
  store.Apply(ws, 10);
  EXPECT_EQ(store.Get("a", 10)->value, "1");
  EXPECT_EQ(store.Get("b", 10)->value, "2");
  EXPECT_EQ(store.Get("a", 10)->commit_ts, store.Get("b", 10)->commit_ts);
}

TEST(VersionedStoreTest, ScanRangeAtSnapshot) {
  VersionedStore store;
  store.Apply(MakePut("a", "1"), 10);
  store.Apply(MakePut("b", "2"), 20);
  store.Apply(MakePut("c", "3"), 30);

  auto all = store.Scan("", "", 30);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, "a");
  EXPECT_EQ(all[2].first, "c");

  auto old_snapshot = store.Scan("", "", 15);
  ASSERT_EQ(old_snapshot.size(), 1u);
  EXPECT_EQ(old_snapshot[0].first, "a");

  auto range = store.Scan("b", "c", 30);
  ASSERT_EQ(range.size(), 1u);
  EXPECT_EQ(range[0].first, "b");
}

TEST(VersionedStoreTest, ScanSkipsDeleted) {
  VersionedStore store;
  store.Apply(MakePut("a", "1"), 10);
  WriteSet del;
  del.Delete("a");
  store.Apply(del, 20);
  EXPECT_EQ(store.Scan("", "", 30).size(), 0u);
  EXPECT_EQ(store.Scan("", "", 15).size(), 1u);
}

TEST(VersionedStoreTest, MaterializeSnapshot) {
  VersionedStore store;
  store.Apply(MakePut("a", "1"), 10);
  store.Apply(MakePut("b", "2"), 20);
  auto state = store.Materialize(15);
  EXPECT_EQ(state.size(), 1u);
  EXPECT_EQ(state["a"], "1");
  state = store.Materialize(25);
  EXPECT_EQ(state.size(), 2u);
}

TEST(VersionedStoreTest, PruneVersionsKeepsVisible) {
  VersionedStore store;
  store.Apply(MakePut("k", "v1"), 10);
  store.Apply(MakePut("k", "v2"), 20);
  store.Apply(MakePut("k", "v3"), 30);
  const std::size_t dropped = store.PruneVersions(25);
  EXPECT_EQ(dropped, 1u);  // v1 shadowed by v2 at horizon 25
  EXPECT_EQ(store.Get("k", 25)->value, "v2");
  EXPECT_EQ(store.Get("k", 35)->value, "v3");
}

TEST(VersionedStoreTest, PruneDropsDeletedKeys) {
  VersionedStore store;
  store.Apply(MakePut("k", "v1"), 10);
  WriteSet del;
  del.Delete("k");
  store.Apply(del, 20);
  store.PruneVersions(30);
  EXPECT_EQ(store.KeyCount(), 0u);
}

TEST(VersionedStoreTest, InstallClone) {
  VersionedStore store;
  std::map<std::string, std::string> state{{"a", "1"}, {"b", "2"}};
  store.InstallClone(state, 5);
  EXPECT_EQ(store.Get("a", 5)->value, "1");
  EXPECT_TRUE(store.Get("a", 4).status().IsNotFound());
  EXPECT_EQ(store.KeyCount(), 2u);
}

TEST(VersionedStoreTest, ConcurrentReadersWithWriter) {
  VersionedStore store;
  store.Apply(MakePut("k", "v0"), 1);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (Timestamp ts = 2; ts < 2000; ++ts) {
      store.Apply(MakePut("k", "v" + std::to_string(ts)), ts);
    }
    stop = true;
  });
  // Readers at a fixed snapshot always see the same value (reads are never
  // blocked and never see partial state).
  std::thread reader([&] {
    while (!stop) {
      auto v = store.Get("k", 1);
      ASSERT_TRUE(v.ok());
      ASSERT_EQ(v->value, "v0");
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(store.Get("k", 1999)->value, "v1999");
}

}  // namespace
}  // namespace storage
}  // namespace lazysi
