#include "storage/versioned_store.h"

#include <gtest/gtest.h>

#include <thread>

namespace lazysi {
namespace storage {
namespace {

WriteSet MakePut(const std::string& key, const std::string& value) {
  WriteSet ws;
  ws.Put(key, value);
  return ws;
}

TEST(VersionedStoreTest, GetMissingKey) {
  VersionedStore store;
  EXPECT_TRUE(store.Get("nope", 100).status().IsNotFound());
}

TEST(VersionedStoreTest, SnapshotSelectsVersion) {
  VersionedStore store;
  store.Apply(MakePut("k", "v1"), 10);
  store.Apply(MakePut("k", "v2"), 20);
  store.Apply(MakePut("k", "v3"), 30);

  EXPECT_TRUE(store.Get("k", 5).status().IsNotFound());
  EXPECT_EQ(store.Get("k", 10)->value, "v1");
  EXPECT_EQ(store.Get("k", 15)->value, "v1");
  EXPECT_EQ(store.Get("k", 20)->value, "v2");
  EXPECT_EQ(store.Get("k", 29)->value, "v2");
  EXPECT_EQ(store.Get("k", 1000)->value, "v3");
  EXPECT_EQ(store.Get("k", 1000)->commit_ts, 30u);
}

TEST(VersionedStoreTest, DeleteVisibility) {
  VersionedStore store;
  store.Apply(MakePut("k", "v1"), 10);
  WriteSet del;
  del.Delete("k");
  store.Apply(del, 20);
  store.Apply(MakePut("k", "v3"), 30);

  EXPECT_EQ(store.Get("k", 15)->value, "v1");
  EXPECT_TRUE(store.Get("k", 25).status().IsNotFound());
  EXPECT_EQ(store.Get("k", 35)->value, "v3");
}

TEST(VersionedStoreTest, HasCommitAfter) {
  VersionedStore store;
  store.Apply(MakePut("k", "v1"), 10);
  EXPECT_TRUE(store.HasCommitAfter("k", 5));
  EXPECT_FALSE(store.HasCommitAfter("k", 10));
  EXPECT_FALSE(store.HasCommitAfter("k", 15));
  EXPECT_FALSE(store.HasCommitAfter("other", 0));
}

TEST(VersionedStoreTest, ApplyMultipleKeysAtomically) {
  VersionedStore store;
  WriteSet ws;
  ws.Put("a", "1");
  ws.Put("b", "2");
  store.Apply(ws, 10);
  EXPECT_EQ(store.Get("a", 10)->value, "1");
  EXPECT_EQ(store.Get("b", 10)->value, "2");
  EXPECT_EQ(store.Get("a", 10)->commit_ts, store.Get("b", 10)->commit_ts);
}

TEST(VersionedStoreTest, ScanRangeAtSnapshot) {
  VersionedStore store;
  store.Apply(MakePut("a", "1"), 10);
  store.Apply(MakePut("b", "2"), 20);
  store.Apply(MakePut("c", "3"), 30);

  auto all = store.Scan("", "", 30);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, "a");
  EXPECT_EQ(all[2].first, "c");

  auto old_snapshot = store.Scan("", "", 15);
  ASSERT_EQ(old_snapshot.size(), 1u);
  EXPECT_EQ(old_snapshot[0].first, "a");

  auto range = store.Scan("b", "c", 30);
  ASSERT_EQ(range.size(), 1u);
  EXPECT_EQ(range[0].first, "b");
}

TEST(VersionedStoreTest, ScanSkipsDeleted) {
  VersionedStore store;
  store.Apply(MakePut("a", "1"), 10);
  WriteSet del;
  del.Delete("a");
  store.Apply(del, 20);
  EXPECT_EQ(store.Scan("", "", 30).size(), 0u);
  EXPECT_EQ(store.Scan("", "", 15).size(), 1u);
}

TEST(VersionedStoreTest, MaterializeSnapshot) {
  VersionedStore store;
  store.Apply(MakePut("a", "1"), 10);
  store.Apply(MakePut("b", "2"), 20);
  auto state = store.Materialize(15);
  EXPECT_EQ(state.size(), 1u);
  EXPECT_EQ(state["a"], "1");
  state = store.Materialize(25);
  EXPECT_EQ(state.size(), 2u);
}

TEST(VersionedStoreTest, PruneVersionsKeepsVisible) {
  VersionedStore store;
  store.Apply(MakePut("k", "v1"), 10);
  store.Apply(MakePut("k", "v2"), 20);
  store.Apply(MakePut("k", "v3"), 30);
  const std::size_t dropped = store.PruneVersions(25);
  EXPECT_EQ(dropped, 1u);  // v1 shadowed by v2 at horizon 25
  EXPECT_EQ(store.Get("k", 25)->value, "v2");
  EXPECT_EQ(store.Get("k", 35)->value, "v3");
}

TEST(VersionedStoreTest, PruneDropsDeletedKeys) {
  VersionedStore store;
  store.Apply(MakePut("k", "v1"), 10);
  WriteSet del;
  del.Delete("k");
  store.Apply(del, 20);
  store.PruneVersions(30);
  EXPECT_EQ(store.KeyCount(), 0u);
}

TEST(VersionedStoreTest, InstallClone) {
  VersionedStore store;
  std::map<std::string, std::string> state{{"a", "1"}, {"b", "2"}};
  store.InstallClone(state, 5);
  EXPECT_EQ(store.Get("a", 5)->value, "1");
  EXPECT_TRUE(store.Get("a", 4).status().IsNotFound());
  EXPECT_EQ(store.KeyCount(), 2u);
}

TEST(VersionedStoreTest, ConcurrentReadersWithWriter) {
  VersionedStore store;
  store.Apply(MakePut("k", "v0"), 1);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (Timestamp ts = 2; ts < 2000; ++ts) {
      store.Apply(MakePut("k", "v" + std::to_string(ts)), ts);
    }
    stop = true;
  });
  // Readers at a fixed snapshot always see the same value (reads are never
  // blocked and never see partial state).
  std::thread reader([&] {
    while (!stop) {
      auto v = store.Get("k", 1);
      ASSERT_TRUE(v.ok());
      ASSERT_EQ(v->value, "v0");
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(store.Get("k", 1999)->value, "v1999");
}

TEST(VersionedStoreShardTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(VersionedStore(0).shard_count(), 1u);
  EXPECT_EQ(VersionedStore(1).shard_count(), 1u);
  EXPECT_EQ(VersionedStore(3).shard_count(), 4u);
  EXPECT_EQ(VersionedStore(16).shard_count(), 16u);
  EXPECT_EQ(VersionedStore(17).shard_count(), 32u);
}

TEST(VersionedStoreShardTest, ShardOfIsStableAndInRange) {
  VersionedStore store(8);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::size_t shard = store.ShardOf(key);
    EXPECT_LT(shard, store.shard_count());
    EXPECT_EQ(store.ShardOf(key), shard);
  }
  // A single-shard store maps everything to shard 0.
  VersionedStore single(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(single.ShardOf("key" + std::to_string(i)), 0u);
  }
}

// The same operations must behave identically whatever the shard count;
// sharding is a locking layout, not a semantic change.
class VersionedStoreShardSweepTest
    : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(ShardCounts, VersionedStoreShardSweepTest,
                         ::testing::Values(1u, 2u, 16u));

TEST_P(VersionedStoreShardSweepTest, ScanMergesShardsInKeyOrder) {
  VersionedStore store(GetParam());
  // Insertion order deliberately scrambled relative to key order.
  for (int i : {7, 2, 9, 0, 5, 1, 8, 3, 6, 4}) {
    store.Apply(MakePut("k" + std::to_string(i), "v" + std::to_string(i)),
                10 + static_cast<Timestamp>(i));
  }
  auto all = store.Scan("", "", 100);
  ASSERT_EQ(all.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(all[i].first, "k" + std::to_string(i));
    EXPECT_EQ(all[i].second.value, "v" + std::to_string(i));
  }
  auto range = store.Scan("k3", "k7", 100);
  ASSERT_EQ(range.size(), 4u);
  EXPECT_EQ(range.front().first, "k3");
  EXPECT_EQ(range.back().first, "k6");
}

TEST_P(VersionedStoreShardSweepTest, MaterializeAndCountsSpanShards) {
  VersionedStore store(GetParam());
  for (int i = 0; i < 32; ++i) {
    store.Apply(MakePut("k" + std::to_string(i), "a"), 10);
    store.Apply(MakePut("k" + std::to_string(i), "b"), 20);
  }
  EXPECT_EQ(store.KeyCount(), 32u);
  EXPECT_EQ(store.VersionCount(), 64u);
  auto state = store.Materialize(15);
  ASSERT_EQ(state.size(), 32u);
  for (const auto& [key, value] : state) EXPECT_EQ(value, "a");
}

TEST_P(VersionedStoreShardSweepTest, PruneCountsAcrossShards) {
  VersionedStore store(GetParam());
  for (int i = 0; i < 32; ++i) {
    const std::string key = "k" + std::to_string(i);
    store.Apply(MakePut(key, "a"), 10);
    store.Apply(MakePut(key, "b"), 20);
    store.Apply(MakePut(key, "c"), 30);
  }
  // At horizon 25, "a" is shadowed by "b" for every key; "b" stays visible.
  EXPECT_EQ(store.PruneVersions(25), 32u);
  EXPECT_EQ(store.VersionCount(), 64u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(store.Get("k" + std::to_string(i), 25)->value, "b");
  }
}

}  // namespace
}  // namespace storage
}  // namespace lazysi
