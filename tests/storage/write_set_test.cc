#include "storage/write_set.h"

#include <gtest/gtest.h>

namespace lazysi {
namespace storage {
namespace {

TEST(WriteSetTest, PutAndFind) {
  WriteSet ws;
  ws.Put("a", "1");
  const Write* w = ws.Find("a");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->value, "1");
  EXPECT_FALSE(w->deleted);
  EXPECT_EQ(ws.Find("b"), nullptr);
}

TEST(WriteSetTest, LastWriteWins) {
  WriteSet ws;
  ws.Put("a", "1");
  ws.Put("a", "2");
  EXPECT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws.Find("a")->value, "2");
}

TEST(WriteSetTest, DeleteShadowsPut) {
  WriteSet ws;
  ws.Put("a", "1");
  ws.Delete("a");
  ASSERT_NE(ws.Find("a"), nullptr);
  EXPECT_TRUE(ws.Find("a")->deleted);
  ws.Put("a", "3");
  EXPECT_FALSE(ws.Find("a")->deleted);
}

TEST(WriteSetTest, ToVectorKeyOrdered) {
  WriteSet ws;
  ws.Put("c", "3");
  ws.Put("a", "1");
  ws.Put("b", "2");
  auto v = ws.ToVector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].key, "a");
  EXPECT_EQ(v[1].key, "b");
  EXPECT_EQ(v[2].key, "c");
}

TEST(WriteSetTest, IntersectsIsWriteWriteConflict) {
  // Section 2.4: ws_i intersect ws_j != empty set <=> write-write conflict.
  WriteSet a, b, c;
  a.Put("x", "1");
  a.Put("y", "2");
  b.Put("y", "9");
  c.Put("z", "0");
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(c.Intersects(a));
  EXPECT_FALSE(WriteSet().Intersects(a));
}

TEST(WriteSetTest, Clear) {
  WriteSet ws;
  ws.Put("a", "1");
  ws.Clear();
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.Find("a"), nullptr);
}

}  // namespace
}  // namespace storage
}  // namespace lazysi
