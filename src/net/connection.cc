#include "net/connection.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <utility>
#include <vector>

namespace lazysi {
namespace net {

std::shared_ptr<Connection> Connection::Adopt(EventLoop* loop, int fd,
                                              Options options,
                                              Callbacks callbacks) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  std::shared_ptr<Connection> conn(
      new Connection(loop, fd, std::move(options), std::move(callbacks)));
  // The registration's callback holds a strong ref: the connection stays
  // alive until RemoveFd (in DoClose), even if the owner drops its handle.
  loop->AddFd(fd, EPOLLIN, [conn](std::uint32_t events) {
    conn->OnEvents(events);
  });
  return conn;
}

Connection::Connection(EventLoop* loop, int fd, Options options,
                       Callbacks callbacks)
    : loop_(loop),
      fd_(fd),
      options_(std::move(options)),
      callbacks_(std::move(callbacks)) {}

Connection::~Connection() {
  // DoClose already ran (it holds the only paths that release the epoll
  // registration's strong ref), so the fd is closed by now.
}

void Connection::Write(std::string bytes) {
  if (bytes.empty() || closed_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    // Re-check under the lock: DoClose sets closed_ before draining out_,
    // so a write racing the close either lands before the drain (and is
    // cleared by it) or observes closed_ here — never bytes left queued,
    // and never a nonzero output_bytes(), on a closed connection.
    if (closed_.load(std::memory_order_acquire)) return;
    output_bytes_.fetch_add(bytes.size(), std::memory_order_acq_rel);
    out_.push_back(std::move(bytes));
  }
  if (loop_->InLoop()) {
    if (!close_done_ && !epollout_armed_) Flush();
  } else if (!flush_posted_.exchange(true, std::memory_order_acq_rel)) {
    auto self = shared_from_this();
    loop_->Post([self] {
      self->flush_posted_.store(false, std::memory_order_release);
      if (!self->close_done_ && !self->epollout_armed_) self->Flush();
    });
  }
}

void Connection::Close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  auto self = shared_from_this();
  loop_->RunInLoop([self] { self->DoClose(); });
}

Connection::Counters Connection::counters() const {
  Counters c;
  c.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  c.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  c.writev_calls = writev_calls_.load(std::memory_order_relaxed);
  c.flushes = flushes_.load(std::memory_order_relaxed);
  c.partial_flushes = partial_flushes_.load(std::memory_order_relaxed);
  return c;
}

void Connection::OnEvents(std::uint32_t events) {
  if (close_done_) return;
  if (events & EPOLLIN) ReadReady();
  if (close_done_) return;
  if (events & EPOLLOUT) Flush();
  if (close_done_) return;
  if ((events & (EPOLLHUP | EPOLLERR)) && !(events & EPOLLIN)) DoClose();
}

void Connection::ReadReady() {
  std::vector<char> buf(options_.read_chunk);
  // A few reads per event keeps one chatty peer from starving the rest of
  // the loop; level-triggered epoll re-reports whatever is left.
  for (int round = 0; round < 4; ++round) {
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n > 0) {
      bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      if (callbacks_.on_bytes) {
        callbacks_.on_bytes(
            *this, std::string_view(buf.data(), static_cast<std::size_t>(n)));
      }
      if (close_done_) return;
      if (static_cast<std::size_t>(n) < buf.size()) return;
      continue;
    }
    if (n == 0) {
      DoClose();
      return;
    }
    if (errno == EINTR) {
      --round;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    DoClose();
    return;
  }
}

void Connection::PauseReads(bool paused) {
  auto self = shared_from_this();
  loop_->RunInLoop([self, paused] {
    if (self->close_done_ || self->read_paused_ == paused) return;
    self->read_paused_ = paused;
    self->UpdateEpollMask();
  });
}

void Connection::ArmWrite(bool enable) {
  if (enable == epollout_armed_) return;
  epollout_armed_ = enable;
  UpdateEpollMask();
}

void Connection::UpdateEpollMask() {
  // With reads paused and no flush pending the mask is empty, but EPOLLHUP /
  // EPOLLERR are always reported, so a dying peer still reaches OnEvents.
  std::uint32_t events = read_paused_ ? 0 : EPOLLIN;
  if (epollout_armed_) events |= EPOLLOUT;
  loop_->ModFd(fd_, events);
}

void Connection::Flush() {
  // Latch the high-water state up front: partial flushes return early, and
  // the eventual full drain must still know a producer may be stalled.
  if (output_bytes_.load(std::memory_order_acquire) >=
      options_.low_watermark) {
    above_low_ = true;
  }
  for (;;) {
    struct iovec iov[64];
    std::size_t niov = 0;
    std::size_t gathered = 0;
    {
      std::lock_guard<std::mutex> lock(out_mu_);
      if (out_.empty()) break;
      std::size_t off = out_front_off_;
      const std::size_t max_iov =
          std::min<std::size_t>(options_.max_writev_iovecs, 64);
      for (const auto& chunk : out_) {
        if (niov == max_iov) break;
        // Only the loop thread pops/shrinks entries and producers only
        // push_back, so these pointers stay valid after unlock.
        iov[niov].iov_base = const_cast<char*>(chunk.data()) + off;
        iov[niov].iov_len = chunk.size() - off;
        gathered += chunk.size() - off;
        off = 0;
        ++niov;
      }
    }
    // sendmsg rather than writev for MSG_NOSIGNAL: a peer that resets
    // mid-stream (connection cut, kill -9) must surface as EPIPE on this
    // connection, not SIGPIPE to the whole process.
    struct msghdr msg = {};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    ssize_t w;
    do {
      w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    } while (w < 0 && errno == EINTR);
    writev_calls_.fetch_add(1, std::memory_order_relaxed);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        partial_flushes_.fetch_add(1, std::memory_order_relaxed);
        ArmWrite(true);
        return;
      }
      DoClose();
      return;
    }
    bytes_sent_.fetch_add(static_cast<std::uint64_t>(w),
                          std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(out_mu_);
      std::size_t left = static_cast<std::size_t>(w);
      while (left > 0 && !out_.empty()) {
        const std::size_t avail = out_.front().size() - out_front_off_;
        if (left >= avail) {
          left -= avail;
          out_.pop_front();
          out_front_off_ = 0;
        } else {
          out_front_off_ += left;
          left = 0;
        }
      }
      output_bytes_.fetch_sub(static_cast<std::size_t>(w),
                              std::memory_order_acq_rel);
    }
    if (static_cast<std::size_t>(w) < gathered) {
      // Kernel buffer full mid-gather; wait for writable.
      partial_flushes_.fetch_add(1, std::memory_order_relaxed);
      ArmWrite(true);
      return;
    }
    // Full gather written; loop in case producers queued more than
    // max_writev_iovecs chunks.
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  ArmWrite(false);
  const std::size_t now_buffered =
      output_bytes_.load(std::memory_order_acquire);
  if (now_buffered < options_.low_watermark && above_low_) {
    above_low_ = false;
    if (callbacks_.on_drain) callbacks_.on_drain(*this);
  }
}

void Connection::DoClose() {
  if (close_done_) return;
  close_done_ = true;
  closed_.store(true, std::memory_order_release);
  loop_->RemoveFd(fd_);
  ::close(fd_);
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    out_.clear();
    out_front_off_ = 0;
    output_bytes_.store(0, std::memory_order_release);
  }
  if (callbacks_.on_close) callbacks_.on_close(*this);
}

}  // namespace net
}  // namespace lazysi
