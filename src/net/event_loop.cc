#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <future>
#include <utility>

namespace lazysi {
namespace net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  assert(epoll_fd_ >= 0 && wake_fd_ >= 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  wheel_now_ = std::chrono::steady_clock::now();
}

EventLoop::~EventLoop() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) return;
  thread_ = std::thread([this] { LoopBody(); });
  // Callers may Post immediately after Start; running_ flips inside
  // LoopBody before the first epoll_wait, and Post's eventfd write is
  // valid regardless, so no handshake is needed here.
}

void EventLoop::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  assert(!InLoop() && "EventLoop::Stop must be called off-loop");
  stop_.store(true, std::memory_order_release);
  Wakeup();
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Post(Task task) {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks_.push_back(std::move(task));
  }
  Wakeup();
}

void EventLoop::RunInLoop(Task task) {
  if (InLoop()) {
    task();
  } else {
    Post(std::move(task));
  }
}

void EventLoop::PostAndWait(Task task) {
  assert(!InLoop() && "PostAndWait from the loop thread would deadlock");
  if (!running()) {
    task();
    return;
  }
  std::promise<void> done;
  auto fut = done.get_future();
  Post([&task, &done] {
    task();
    done.set_value();
  });
  fut.wait();
}

EventLoop::TimerId EventLoop::ScheduleAfter(std::chrono::milliseconds delay,
                                            Task task) {
  std::uint64_t ticks;
  TimerId id;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    // The wheel cursor lags wall time by however long the loop has been
    // parked in epoll_wait; schedule relative to wall time so the lag is
    // not subtracted from the delay.
    const auto now = std::chrono::steady_clock::now();
    auto effective = delay;
    if (now > wheel_now_) {
      effective += std::chrono::duration_cast<std::chrono::milliseconds>(
          now - wheel_now_);
    }
    ticks = static_cast<std::uint64_t>(effective.count() + kTickMs - 1) /
            static_cast<std::uint64_t>(kTickMs);
    if (ticks == 0) ticks = 1;
    id = next_timer_id_++;
    Timer t;
    t.id = id;
    t.rounds = static_cast<std::uint32_t>((ticks - 1) / kWheelSlots);
    t.fn = std::move(task);
    wheel_[(cursor_ + ticks) % kWheelSlots].push_back(std::move(t));
    ++timer_count_;
  }
  Wakeup();  // the loop may be sleeping with a longer (or no) timeout
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  std::lock_guard<std::mutex> lock(timer_mu_);
  for (auto& slot : wheel_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --timer_count_;
        return;
      }
    }
  }
}

void EventLoop::AddFd(int fd, std::uint32_t events, FdCallback cb) {
  assert(InLoop() || !running());
  auto reg = std::make_shared<Registration>();
  reg->cb = std::move(cb);
  reg->events = events;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  fds_[fd] = std::move(reg);
  fds_registered_.store(fds_.size(), std::memory_order_relaxed);
}

void EventLoop::ModFd(int fd, std::uint32_t events) {
  assert(InLoop() || !running());
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  it->second->events = events;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::RemoveFd(int fd) {
  assert(InLoop() || !running());
  if (fds_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_registered_.store(fds_.size(), std::memory_order_relaxed);
  if (dispatching_) removed_in_dispatch_.push_back(fd);
}

EventLoop::Stats EventLoop::stats() const {
  Stats s;
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.timers_fired = timers_fired_.load(std::memory_order_relaxed);
  s.fds_registered = fds_registered_.load(std::memory_order_relaxed);
  return s;
}

void EventLoop::Wakeup() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::RunTasks() {
  std::vector<Task> batch;
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    batch.swap(tasks_);
  }
  for (auto& task : batch) {
    task();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EventLoop::CollectDueTimers(std::vector<Task>* due) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(timer_mu_);
  const auto tick = std::chrono::milliseconds(kTickMs);
  while (timer_count_ > 0 && wheel_now_ + tick <= now) {
    wheel_now_ += tick;
    cursor_ = (cursor_ + 1) % kWheelSlots;
    auto& slot = wheel_[cursor_];
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->rounds > 0) {
        --it->rounds;
        ++it;
      } else {
        due->push_back(std::move(it->fn));
        it = slot.erase(it);
        --timer_count_;
      }
    }
  }
  // With no timers pending, snap the cursor's epoch to now so the next
  // ScheduleAfter doesn't see (and compensate for) a huge stale lag.
  if (timer_count_ == 0) wheel_now_ = now;
}

int EventLoop::NextTimeoutMs() {
  std::lock_guard<std::mutex> lock(task_mu_);
  if (!tasks_.empty()) return 0;
  std::lock_guard<std::mutex> tlock(timer_mu_);
  if (timer_count_ == 0) return -1;
  for (std::size_t i = 1; i <= kWheelSlots; ++i) {
    if (!wheel_[(cursor_ + i) % kWheelSlots].empty()) {
      return static_cast<int>(i) * kTickMs;
    }
  }
  return static_cast<int>(kWheelSlots) * kTickMs;
}

void EventLoop::LoopBody() {
  loop_tid_ = std::this_thread::get_id();
  running_.store(true, std::memory_order_release);
  epoll_event events[64];
  std::vector<Task> due;
  while (!stop_.load(std::memory_order_acquire)) {
    RunTasks();
    due.clear();
    CollectDueTimers(&due);
    for (auto& t : due) {
      t();
      timers_fired_.fetch_add(1, std::memory_order_relaxed);
    }
    if (stop_.load(std::memory_order_acquire)) break;
    const int n = ::epoll_wait(epoll_fd_, events, 64, NextTimeoutMs());
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself broken; nothing sane left to do
    }
    dispatching_ = true;
    removed_in_dispatch_.clear();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // An fd removed earlier in this batch stays skipped even if a new
      // registration reused the number: the queued event belongs to the
      // dead one, and the live one's events arrive with the next wait.
      if (std::find(removed_in_dispatch_.begin(), removed_in_dispatch_.end(),
                    fd) != removed_in_dispatch_.end()) {
        continue;
      }
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;  // removed earlier in this batch
      auto reg = it->second;           // keep the callback alive across
      reg->cb(events[i].events);       // a self-RemoveFd
    }
    dispatching_ = false;
  }
  // Final drain so PostAndWait callers blocked during shutdown complete.
  RunTasks();
  running_.store(false, std::memory_order_release);
}

}  // namespace net
}  // namespace lazysi
