#ifndef LAZYSI_NET_EVENT_LOOP_H_
#define LAZYSI_NET_EVENT_LOOP_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lazysi {
namespace net {

/// Single-threaded epoll reactor. One EventLoop thread multiplexes every
/// registered fd, so I/O thread count is O(loops), not O(connections) — the
/// scaling fix for the per-connection sender/acker/client threads of the
/// first TCP deployment (ROADMAP item 1).
///
/// Threading contract:
///   - AddFd / ModFd / RemoveFd are loop-thread-only (or before Start).
///     Cross-thread work reaches the loop via Post/RunInLoop.
///   - Post / PostAndWait / ScheduleAfter / CancelTimer are thread-safe;
///     an eventfd wakes the loop out of epoll_wait.
///   - Fd callbacks, posted tasks, and timer callbacks all run on the loop
///     thread, so per-connection protocol state needs no locking.
///
/// Timers ride a coarse hashed timing wheel (kTickMs granularity, kWheelSlots
/// slots, rounds counter for delays beyond one revolution) — cheap O(1)
/// insert/fire for the redial backoffs and batch-flush deadlines that
/// dominate, at the cost of kTickMs resolution.
class EventLoop {
 public:
  using Task = std::function<void()>;
  /// Receives the raw epoll event mask (EPOLLIN/EPOLLOUT/EPOLLERR/EPOLLHUP).
  using FdCallback = std::function<void(std::uint32_t)>;
  using TimerId = std::uint64_t;

  static constexpr std::size_t kWheelSlots = 512;
  static constexpr int kTickMs = 5;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread. Idempotent.
  void Start();

  /// Stops and joins the loop thread. Must not be called from the loop
  /// thread. Idempotent. Pending tasks run once more before exit so
  /// PostAndWait barriers cannot deadlock with Stop.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool InLoop() const {
    return running() && std::this_thread::get_id() == loop_tid_;
  }

  /// Enqueues a task for the loop thread; wakes the loop. Safe from any
  /// thread. Tasks enqueued after Stop() completed are dropped.
  void Post(Task task);

  /// Runs inline when already on the loop thread, otherwise Post.
  void RunInLoop(Task task);

  /// Post + block until the task has executed (teardown barrier). Must not
  /// be called from the loop thread. If the loop is not running, runs the
  /// task on the caller's thread.
  void PostAndWait(Task task);

  /// Schedules `task` to run on the loop thread after ~`delay` (quantized
  /// up to the wheel tick). Safe from any thread.
  TimerId ScheduleAfter(std::chrono::milliseconds delay, Task task);

  /// Best-effort cancel; no-op if the timer already fired. Safe from any
  /// thread (the callback never runs concurrently with the canceling
  /// thread if that thread is the loop thread).
  void CancelTimer(TimerId id);

  /// Registers `fd` for `events`; `cb` runs on the loop thread with the
  /// ready mask. Loop-thread-only (or before Start).
  void AddFd(int fd, std::uint32_t events, FdCallback cb);
  void ModFd(int fd, std::uint32_t events);
  /// Deregisters. Safe to call from inside the fd's own callback.
  void RemoveFd(int fd);

  struct Stats {
    std::uint64_t wakeups = 0;      // epoll_wait returns
    std::uint64_t tasks_run = 0;    // posted tasks executed
    std::uint64_t timers_fired = 0;
    std::uint64_t fds_registered = 0;  // currently registered fds
  };
  Stats stats() const;

 private:
  struct Registration {
    FdCallback cb;
    std::uint32_t events = 0;
  };
  struct Timer {
    TimerId id = 0;
    std::uint32_t rounds = 0;
    Task fn;
  };

  void LoopBody();
  void RunTasks();
  /// Moves due timers into `due`; advances the wheel cursor to wall time.
  void CollectDueTimers(std::vector<Task>* due);
  /// epoll_wait timeout: 0 with tasks pending, distance to the next
  /// occupied wheel slot with timers pending, -1 otherwise.
  int NextTimeoutMs();
  void Wakeup();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread::id loop_tid_;

  std::mutex task_mu_;
  std::vector<Task> tasks_;  // guarded by task_mu_

  std::mutex timer_mu_;
  std::array<std::vector<Timer>, kWheelSlots> wheel_;  // guarded by timer_mu_
  std::size_t cursor_ = 0;                             // guarded by timer_mu_
  std::chrono::steady_clock::time_point wheel_now_;    // guarded by timer_mu_
  TimerId next_timer_id_ = 1;                          // guarded by timer_mu_
  std::size_t timer_count_ = 0;                        // guarded by timer_mu_

  // Loop-thread-only; shared_ptr so RemoveFd during a callback's own
  // dispatch cannot destroy the std::function mid-execution.
  std::unordered_map<int, std::shared_ptr<Registration>> fds_;
  // Loop-thread-only: fds deregistered while dispatching the current
  // epoll_wait batch. Their remaining queued events are stale — the fd
  // number may already belong to a fresh registration (close + accept can
  // reuse it within one batch) — and must not be dispatched.
  bool dispatching_ = false;
  std::vector<int> removed_in_dispatch_;

  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> timers_fired_{0};
  std::atomic<std::uint64_t> fds_registered_{0};
};

}  // namespace net
}  // namespace lazysi

#endif  // LAZYSI_NET_EVENT_LOOP_H_
