#ifndef LAZYSI_NET_CONNECTION_H_
#define LAZYSI_NET_CONNECTION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "net/event_loop.h"

namespace lazysi {
namespace net {

/// One non-blocking socket registered on an EventLoop: reads are pushed to
/// the owner as raw bytes (framing stays with the protocol layer), writes
/// are buffered and flushed with writev (scatter-gather over the queued
/// chunks, so a burst of frames costs one syscall, not one per frame).
///
/// All callbacks run on the loop thread. Write() and Close() are safe from
/// any thread; everything else is loop-thread-only.
///
/// Output is *bounded by the caller's discipline*, not by dropping: the
/// owner checks output_bytes() against its own ceiling and stops producing
/// (backpressure); on_drain fires when a flush brings the buffer back under
/// low_watermark so the owner can resume.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  struct Options {
    std::size_t read_chunk = 64 * 1024;
    /// Max chunks gathered into one writev call.
    std::size_t max_writev_iovecs = 64;
    /// on_drain fires when a flush moves output_bytes from >= this to
    /// < this (edge-triggered resume signal for a stalled producer).
    std::size_t low_watermark = 64 * 1024;
  };

  struct Callbacks {
    /// Raw bytes off the socket, in order. May call Close().
    std::function<void(Connection&, std::string_view)> on_bytes;
    /// Output buffer fell below low_watermark after having been at/above it.
    std::function<void(Connection&)> on_drain;
    /// Connection is gone (peer EOF, error, or Close()); fires exactly once.
    /// The fd is already closed when this runs.
    std::function<void(Connection&)> on_close;
  };

  struct Counters {
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t writev_calls = 0;
    /// Flushes that fully drained the buffer.
    std::uint64_t flushes = 0;
    /// writev calls cut short by a full socket buffer (EPOLLOUT armed).
    std::uint64_t partial_flushes = 0;
  };

  /// Takes ownership of a connected fd: sets O_NONBLOCK and registers for
  /// EPOLLIN. Loop-thread-only (or before the loop starts).
  static std::shared_ptr<Connection> Adopt(EventLoop* loop, int fd,
                                           Options options,
                                           Callbacks callbacks);

  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Appends to the output buffer and flushes opportunistically (inline
  /// when called on the loop thread and the socket is writable; otherwise a
  /// flush task is posted, which naturally coalesces cross-thread bursts
  /// into fewer writev calls). Bytes written after close are dropped.
  void Write(std::string bytes);

  /// Bytes buffered but not yet accepted by the kernel.
  std::size_t output_bytes() const {
    return output_bytes_.load(std::memory_order_acquire);
  }

  /// Pauses (or resumes) read-side delivery by disarming EPOLLIN, so the
  /// kernel socket buffer fills and TCP backpressures the peer — the
  /// read-side analogue of the output_bytes() discipline. Safe from any
  /// thread (applied on the loop thread); no-op after close. Bytes already
  /// read may still be delivered once more in the current event batch.
  void PauseReads(bool paused);

  /// Idempotent, any thread. on_close fires on the loop thread.
  void Close();

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  int fd() const { return fd_; }
  EventLoop* loop() const { return loop_; }
  Counters counters() const;

 private:
  Connection(EventLoop* loop, int fd, Options options, Callbacks callbacks);

  void OnEvents(std::uint32_t events);
  void ReadReady();
  void Flush();
  void DoClose();
  void ArmWrite(bool enable);
  /// Re-derives the epoll interest mask from read_paused_ / epollout_armed_.
  void UpdateEpollMask();

  EventLoop* loop_;
  const int fd_;
  Options options_;
  Callbacks callbacks_;

  std::mutex out_mu_;
  std::deque<std::string> out_;     // guarded by out_mu_
  std::size_t out_front_off_ = 0;   // guarded by out_mu_
  std::atomic<std::size_t> output_bytes_{0};
  std::atomic<bool> flush_posted_{false};

  // Loop-thread-only state.
  bool close_done_ = false;
  bool epollout_armed_ = false;
  bool read_paused_ = false;
  bool above_low_ = false;

  std::atomic<bool> closed_{false};

  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> writev_calls_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> partial_flushes_{0};
};

}  // namespace net
}  // namespace lazysi

#endif  // LAZYSI_NET_CONNECTION_H_
