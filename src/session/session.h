#ifndef LAZYSI_SESSION_SESSION_H_
#define LAZYSI_SESSION_SESSION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/timestamp.h"
#include "session/guarantee.h"

namespace lazysi {
namespace session {

/// One client session: a label plus the session sequence number seq(c) of
/// Section 4. When an update transaction T from this session commits at the
/// primary, seq(c) := commit_p(T); a read-only transaction from the session
/// may not start at a secondary until seq(DBsec) >= seq(c).
class Session {
 public:
  explicit Session(SessionLabel label) : label_(label) {}

  SessionLabel label() const { return label_; }

  /// seq(c): primary commit timestamp of this session's latest update.
  Timestamp seq() const { return seq_.load(std::memory_order_acquire); }

  /// Monotonically advances seq(c). Called on update-transaction commit.
  void AdvanceSeq(Timestamp commit_ts) {
    Timestamp current = seq_.load(std::memory_order_relaxed);
    while (commit_ts > current &&
           !seq_.compare_exchange_weak(current, commit_ts,
                                       std::memory_order_acq_rel)) {
    }
  }

 private:
  SessionLabel label_;
  std::atomic<Timestamp> seq_{0};
};

/// Creates sessions according to the configured guarantee:
///  - kStrongSessionSI: every client gets its own session/label;
///  - kStrongSI: every client shares one system-wide session (the paper's
///    ALG-STRONG-SI is exactly ALG-STRONG-SESSION-SI with a single session);
///  - kWeakSI: sessions are still handed out (labels are useful for history
///    analysis) but the system never consults seq(c) before reads.
class SessionManager {
 public:
  explicit SessionManager(Guarantee guarantee) : guarantee_(guarantee) {
    if (guarantee_ == Guarantee::kStrongSI) {
      global_session_ = std::make_shared<Session>(0);
    }
  }

  Guarantee guarantee() const { return guarantee_; }

  std::shared_ptr<Session> CreateSession() {
    if (guarantee_ == Guarantee::kStrongSI) return global_session_;
    std::lock_guard<std::mutex> lock(mu_);
    auto s = std::make_shared<Session>(next_label_++);
    return s;
  }

  /// Whether reads must wait for seq(DBsec) >= seq(c) under this guarantee.
  bool ReadsBlockOnSessionSeq() const {
    return guarantee_ != Guarantee::kWeakSI;
  }

  /// Whether read-only commits fold their observed snapshot back into
  /// seq(c) (read-read monotonicity; off for weak SI and PCSI).
  bool ReadsAdvanceSessionSeq() const {
    return RequiresReadMonotonicity(guarantee_);
  }

 private:
  Guarantee guarantee_;
  std::shared_ptr<Session> global_session_;
  std::mutex mu_;
  SessionLabel next_label_ = 1;
};

}  // namespace session
}  // namespace lazysi

#endif  // LAZYSI_SESSION_SESSION_H_
