#ifndef LAZYSI_SESSION_GUARANTEE_H_
#define LAZYSI_SESSION_GUARANTEE_H_

#include <string_view>

namespace lazysi {
namespace session {

/// The three global transactional guarantees the paper evaluates
/// (Section 6):
///
///  - kWeakSI (ALG-WEAK-SI): global weak snapshot isolation; read-only
///    transactions run immediately against whatever snapshot their secondary
///    holds. Transaction inversions are possible.
///  - kStrongSessionSI (ALG-STRONG-SESSION-SI): weak SI plus the session
///    ordering rule of Definition 2.2 — a transaction must see the effects
///    of every earlier transaction in the *same session*. Inversions within
///    a session are impossible.
///  - kStrongSI (ALG-STRONG-SI): the same machinery with a single
///    system-wide session, i.e. a total order constraint — equivalent to the
///    strong SI of Definition 2.1.
///  - kPrefixConsistentSI (ALG-PCSI): the comparison point from the paper's
///    related work (Section 7, Elnikety et al): a session's reads must
///    include the session's own earlier *updates*, but — unlike strong
///    session SI — two read-only transactions in the same session need not
///    see monotonically advancing snapshots. The difference is observable
///    when a session's reads roam across secondaries.
enum class Guarantee {
  kWeakSI,
  kStrongSessionSI,
  kStrongSI,
  kPrefixConsistentSI,
};

inline std::string_view GuaranteeName(Guarantee g) {
  switch (g) {
    case Guarantee::kWeakSI:
      return "ALG-WEAK-SI";
    case Guarantee::kStrongSessionSI:
      return "ALG-STRONG-SESSION-SI";
    case Guarantee::kStrongSI:
      return "ALG-STRONG-SI";
    case Guarantee::kPrefixConsistentSI:
      return "ALG-PCSI";
  }
  return "?";
}

/// True when the guarantee requires a session's later reads to see
/// snapshots at least as fresh as its earlier reads (Definition 2.2's
/// read-read ordering; PCSI drops it, Section 7).
inline bool RequiresReadMonotonicity(Guarantee g) {
  return g == Guarantee::kStrongSessionSI || g == Guarantee::kStrongSI;
}

}  // namespace session
}  // namespace lazysi

#endif  // LAZYSI_SESSION_GUARANTEE_H_
