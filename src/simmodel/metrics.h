#ifndef LAZYSI_SIMMODEL_METRICS_H_
#define LAZYSI_SIMMODEL_METRICS_H_

#include <cstdint>

namespace lazysi {
namespace simmodel {

/// Outputs of one simulation run, measured over the post-warm-up window.
struct Metrics {
  /// Transactions finishing within response_threshold, per second — the
  /// "response time-related" throughput plotted in Figures 2, 5 and 8.
  double throughput_fast = 0;
  /// All completed transactions per second.
  double throughput_total = 0;
  /// Mean response time of read-only transactions (Figures 3, 6), seconds.
  double ro_response_mean = 0;
  /// Mean response time of update transactions (Figures 4, 7), seconds.
  double upd_response_mean = 0;
  /// 95th-percentile response times (supplements; the paper reports means).
  double ro_response_p95 = 0;
  double upd_response_p95 = 0;
  /// Mean time read-only transactions spent blocked on the
  /// seq(DBsec) >= seq(c) rule (0 under ALG-WEAK-SI).
  double ro_block_mean = 0;

  std::uint64_t ro_completed = 0;
  std::uint64_t upd_completed = 0;
  std::uint64_t upd_aborts = 0;

  double primary_utilization = 0;
  double mean_secondary_utilization = 0;
  /// Mean replication lag observed at refresh commit: virtual time between
  /// an update's primary commit and its refresh commit, averaged over
  /// secondaries.
  double mean_refresh_lag = 0;
  std::uint64_t refreshes_applied = 0;
  /// Read-only transactions whose snapshot was older than an earlier read
  /// in the same session provably saw (possible under weak SI and PCSI with
  /// roaming reads; never under strong session SI / strong SI).
  std::uint64_t snapshot_regressions = 0;
};

}  // namespace simmodel
}  // namespace lazysi

#endif  // LAZYSI_SIMMODEL_METRICS_H_
