#include "simmodel/model.h"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace lazysi {
namespace simmodel {

Model::SecondarySite::SecondarySite(sim::Simulator* sim, const Params& p,
                                    std::size_t index)
    : server(sim, "secondary-" + std::to_string(index), p.discipline,
             p.rr_quantum),
      update_queue(sim),
      seq_cond(sim),
      pending_cond(sim),
      pool_cond(sim) {}

Model::Model(const Params& params, std::uint64_t seed)
    : params_(params), rng_(seed),
      primary_server_(&sim_, "primary", params.discipline, params.rr_quantum) {
  secondaries_.reserve(params_.num_secondaries);
  for (std::size_t i = 0; i < params_.num_secondaries; ++i) {
    secondaries_.push_back(
        std::make_unique<SecondarySite>(&sim_, params_, i));
  }
}

Model::~Model() = default;

sim::Process Model::ClientProcess(std::size_t secondary_index, Rng rng) {
  SecondarySite& home = *secondaries_[secondary_index];
  // Desynchronize client start-up.
  co_await sim_.Delay(rng.Uniform(0, 2.0 * params_.think_time));
  for (;;) {
    // One session: exponential duration, fresh session sequence number
    // (ordering constraints do not cross sessions, Section 2.3).
    const double session_end =
        sim_.Now() + rng.Exponential(params_.session_time);
    std::uint64_t seq_c = 0;
    // Newest state an earlier read in this session provably saw; used for
    // the read-read monotonicity of Definition 2.2 and for counting
    // regressions when it is not enforced.
    std::uint64_t read_floor = 0;
    while (sim_.Now() < session_end) {
      co_await sim_.Delay(rng.Exponential(params_.think_time));
      const int size = static_cast<int>(
          rng.UniformInt(params_.tran_size_min, params_.tran_size_max));
      const double t0 = sim_.Now();
      if (rng.Bernoulli(params_.update_tran_prob)) {
        // ---- Update transaction: forwarded to the primary. ----
        std::uint64_t commit_ts = 0;
        for (;;) {  // retry loop: aborted updates restart immediately
          int update_ops = 0;
          for (int i = 0; i < size; ++i) {
            if (rng.Bernoulli(params_.update_op_prob)) ++update_ops;
          }
          const std::uint64_t txn = ++next_txn_id_;
          log_.push_back(PropRecord{PropRecord::Kind::kStart, txn,
                                    ++primary_clock_, 0, 0});
          for (int i = 0; i < size; ++i) {
            co_await primary_server_.Use(params_.op_service_time);
          }
          if (rng.Bernoulli(params_.abort_prob)) {
            log_.push_back(PropRecord{PropRecord::Kind::kAbort, txn, 0, 0, 0});
            if (InWindow()) ++collect_.upd_aborts;
            continue;  // first-committer-wins abort: restart to keep load
          }
          commit_ts = ++primary_clock_;
          log_.push_back(PropRecord{PropRecord::Kind::kCommit, txn, commit_ts,
                                    update_ops, sim_.Now()});
          break;
        }
        // seq(c) := commit_p(T); ALG-STRONG-SI keeps one global session.
        if (params_.guarantee == session::Guarantee::kStrongSI) {
          global_session_seq_ = commit_ts;
        } else {
          seq_c = commit_ts;
        }
        const double rt = sim_.Now() - t0;
        if (InWindow()) {
          collect_.upd_response.Add(rt);
          collect_.upd_histogram.Add(rt);
          if (rt <= params_.response_threshold) ++collect_.fast_completions;
        }
      } else {
        // ---- Read-only transaction: runs at a secondary (the client's
        // home site, or a random one in the roaming ablation). ----
        SecondarySite& sec =
            params_.roam_reads
                ? *secondaries_[rng.Next(secondaries_.size())]
                : home;
        std::uint64_t needed = 0;
        switch (params_.guarantee) {
          case session::Guarantee::kWeakSI:
            needed = 0;  // ALG-WEAK-SI never blocks
            break;
          case session::Guarantee::kStrongSessionSI:
            // Definition 2.2: both the session's own updates AND its
            // earlier reads' snapshots order this read.
            needed = std::max(seq_c, read_floor);
            break;
          case session::Guarantee::kStrongSI:
            needed = std::max(global_session_seq_, read_floor);
            break;
          case session::Guarantee::kPrefixConsistentSI:
            needed = seq_c;  // updates only; reads may regress (Section 7)
            break;
        }
        const double block_start = sim_.Now();
        while (sec.seq_db < needed) co_await sec.seq_cond.Wait();
        const double blocked = sim_.Now() - block_start;
        const std::uint64_t snapshot = sec.seq_db;
        if (InWindow() && snapshot < read_floor) {
          ++collect_.snapshot_regressions;
        }
        read_floor = std::max(read_floor, snapshot);
        for (int i = 0; i < size; ++i) {
          co_await sec.server.Use(params_.op_service_time);
        }
        const double rt = sim_.Now() - t0;
        if (InWindow()) {
          collect_.ro_response.Add(rt);
          collect_.ro_histogram.Add(rt);
          collect_.ro_block.Add(blocked);
          if (rt <= params_.response_threshold) ++collect_.fast_completions;
        }
      }
    }
  }
}

sim::Process Model::PropagatorProcess() {
  // Section 3.2 / Table 1: a log-sniffer with think time propagation_delay;
  // each cycle broadcasts everything accumulated since the last cycle, in
  // timestamp order.
  for (;;) {
    co_await sim_.Delay(params_.propagation_delay);
    while (propagated_upto_ < log_.size()) {
      const PropRecord& record = log_[propagated_upto_++];
      for (auto& sec : secondaries_) {
        sec->update_queue.Send(record);
      }
    }
  }
}

sim::Process Model::RefresherProcess(SecondarySite& sec) {
  // Algorithm 3.2.
  for (;;) {
    PropRecord record = co_await sec.update_queue.Receive();
    switch (record.kind) {
      case PropRecord::Kind::kStart:
        // Block until the pending queue is empty, so the refresh
        // transaction's snapshot includes every earlier refresh commit.
        while (!sec.pending.empty()) co_await sec.pending_cond.Wait();
        sec.started.insert(record.txn_id);
        break;
      case PropRecord::Kind::kCommit:
        sec.started.erase(record.txn_id);
        sec.pending.push_back(record.ts);
        sim_.Spawn(ApplicatorProcess(sec, record));
        break;
      case PropRecord::Kind::kAbort:
        sec.started.erase(record.txn_id);
        break;
    }
  }
}

sim::Process Model::ApplicatorProcess(SecondarySite& sec, PropRecord record) {
  // Bounded pool (Section 3.3 suggests a fixed pool of applicator threads):
  // acquire a slot in commit order before doing any work.
  if (params_.applicator_pool_size > 0) {
    sec.admission.push_back(record.ts);
    while (sec.admission.front() != record.ts ||
           sec.active_applicators >= params_.applicator_pool_size) {
      co_await sec.pool_cond.Wait();
    }
    sec.admission.pop_front();
    ++sec.active_applicators;
    sec.pool_cond.NotifyAll();
  }
  // Algorithm 3.3: apply the update list, then commit in primary commit
  // order (wait until our timestamp heads the pending queue).
  for (int i = 0; i < record.update_ops; ++i) {
    co_await sec.server.Use(params_.op_service_time);
  }
  while (sec.pending.empty() || sec.pending.front() != record.ts) {
    co_await sec.pending_cond.Wait();
  }
  sec.seq_db = record.ts;  // seq(DBsec) := commit_p(T)
  sec.seq_cond.NotifyAll();
  if (InWindow()) {
    collect_.refresh_lag.Add(sim_.Now() - record.commit_time);
    ++collect_.refreshes;
  }
  sec.pending.pop_front();
  sec.pending_cond.NotifyAll();
  if (params_.applicator_pool_size > 0) {
    --sec.active_applicators;
    sec.pool_cond.NotifyAll();
  }
}

Metrics Model::Run() {
  const std::size_t clients = params_.total_clients();
  for (std::size_t c = 0; c < clients; ++c) {
    // Clients are distributed uniformly over the secondaries (Section 5).
    sim_.Spawn(ClientProcess(c % params_.num_secondaries, rng_.Fork()));
  }
  sim_.Spawn(PropagatorProcess());
  for (auto& sec : secondaries_) {
    sim_.Spawn(RefresherProcess(*sec));
  }
  // End of warm-up: reset all measurement state.
  sim_.ScheduleCallback(params_.warmup_time, [this] {
    collect_ = Collectors{};
    primary_server_.ResetStats();
    for (auto& sec : secondaries_) sec->server.ResetStats();
  });

  sim_.RunUntil(params_.warmup_time + params_.measure_time);

  Metrics m;
  const double window = params_.measure_time;
  const std::uint64_t total =
      collect_.ro_response.count() + collect_.upd_response.count();
  m.throughput_fast = static_cast<double>(collect_.fast_completions) / window;
  m.throughput_total = static_cast<double>(total) / window;
  m.ro_response_mean = collect_.ro_response.mean();
  m.upd_response_mean = collect_.upd_response.mean();
  m.ro_response_p95 = collect_.ro_histogram.Quantile(0.95);
  m.upd_response_p95 = collect_.upd_histogram.Quantile(0.95);
  m.ro_block_mean = collect_.ro_block.mean();
  m.ro_completed = collect_.ro_response.count();
  m.upd_completed = collect_.upd_response.count();
  m.upd_aborts = collect_.upd_aborts;
  m.primary_utilization = primary_server_.Utilization();
  double sec_util = 0;
  for (auto& sec : secondaries_) sec_util += sec->server.Utilization();
  m.mean_secondary_utilization =
      secondaries_.empty() ? 0 : sec_util / secondaries_.size();
  m.mean_refresh_lag = collect_.refresh_lag.mean();
  m.refreshes_applied = collect_.refreshes;
  m.snapshot_regressions = collect_.snapshot_regressions;
  return m;
}

ReplicatedResult RunReplications(const Params& params, int replications) {
  std::vector<Metrics> results(replications);
  std::atomic<int> next{0};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned workers =
      std::min<unsigned>(hw, static_cast<unsigned>(replications));
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= replications) return;
        Model model(params, params.seed + static_cast<std::uint64_t>(i));
        results[i] = model.Run();
      }
    });
  }
  for (auto& t : threads) t.join();

  RunningStat tf, tt, ro, upd, rop95, updp95, blk, util, lag, reg;
  for (const Metrics& m : results) {
    tf.Add(m.throughput_fast);
    tt.Add(m.throughput_total);
    ro.Add(m.ro_response_mean);
    upd.Add(m.upd_response_mean);
    rop95.Add(m.ro_response_p95);
    updp95.Add(m.upd_response_p95);
    blk.Add(m.ro_block_mean);
    util.Add(m.primary_utilization);
    lag.Add(m.mean_refresh_lag);
    reg.Add(m.ro_completed == 0
                ? 0.0
                : 1000.0 * static_cast<double>(m.snapshot_regressions) /
                      static_cast<double>(m.ro_completed));
  }
  auto summarize = [](const RunningStat& s) {
    return Summary{s.mean(), s.ConfidenceHalfWidth95()};
  };
  ReplicatedResult r;
  r.throughput_fast = summarize(tf);
  r.throughput_total = summarize(tt);
  r.ro_response = summarize(ro);
  r.upd_response = summarize(upd);
  r.ro_response_p95 = summarize(rop95);
  r.upd_response_p95 = summarize(updp95);
  r.ro_block = summarize(blk);
  r.primary_utilization = summarize(util);
  r.refresh_lag = summarize(lag);
  r.regressions_per_k = summarize(reg);
  return r;
}

int DefaultReplications() {
  if (const char* env = std::getenv("LAZYSI_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 5;
}

double TimeScale() {
  if (const char* env = std::getenv("LAZYSI_TIME_SCALE")) {
    const double v = std::atof(env);
    if (v > 0 && v <= 1.0) return v;
  }
  return 1.0;
}

}  // namespace simmodel
}  // namespace lazysi
