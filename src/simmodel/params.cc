#include "simmodel/params.h"

#include <sstream>

namespace lazysi {
namespace simmodel {

std::string Params::ToTableString() const {
  std::ostringstream os;
  os << "Simulation parameters (Table 1):\n"
     << "  num_sec            " << num_secondaries << "\n"
     << "  num_clients        " << total_clients() << " ("
     << clients_per_secondary << "/secondary)\n"
     << "  think_time         " << think_time << " s\n"
     << "  session_time       " << session_time / 60.0 << " min\n"
     << "  update_tran_prob   " << update_tran_prob * 100 << "%\n"
     << "  abort_prob         " << abort_prob * 100 << "%\n"
     << "  tran_size          " << tran_size_min << ".." << tran_size_max
     << " ops (mean " << (tran_size_min + tran_size_max) / 2.0 << ")\n"
     << "  op_service_time    " << op_service_time << " s\n"
     << "  update_op_prob     " << update_op_prob * 100 << "%\n"
     << "  propagation_delay  " << propagation_delay << " s\n"
     << "  guarantee          " << session::GuaranteeName(guarantee) << "\n"
     << "  warmup/measure     " << warmup_time / 60.0 << " min / "
     << measure_time / 60.0 << " min\n";
  return os.str();
}

}  // namespace simmodel
}  // namespace lazysi
