#ifndef LAZYSI_SIMMODEL_MODEL_H_
#define LAZYSI_SIMMODEL_MODEL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "simmodel/metrics.h"
#include "simmodel/params.h"
#include "sim/condition.h"
#include "sim/mailbox.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace lazysi {
namespace simmodel {

/// One propagated log record in the simulation model. Mirrors
/// replication::PropagationRecord but carries only what the performance
/// model needs: the timestamp schedule and the refresh CPU demand.
struct PropRecord {
  enum class Kind { kStart, kCommit, kAbort };
  Kind kind = Kind::kStart;
  std::uint64_t txn_id = 0;
  /// start_p(T) or commit_p(T) (one logical clock, as in the engine).
  std::uint64_t ts = 0;
  /// Number of update operations — the refresh transaction's CPU demand in
  /// ops (kCommit only).
  int update_ops = 0;
  /// Virtual time of the primary commit, for replication-lag statistics.
  double commit_time = 0;
};

/// The simulation model of Section 5: the weak SI system of Section 3 plus
/// the ALG-WEAK-SI / ALG-STRONG-SESSION-SI / ALG-STRONG-SI read-blocking
/// rules of Sections 4 and 6, driven by the TPC-W-derived client workload of
/// Table 1. One Model instance is one independent replication.
class Model {
 public:
  Model(const Params& params, std::uint64_t seed);
  ~Model();

  /// Runs warm-up plus measurement window and returns the metrics.
  Metrics Run();

 private:
  struct SecondarySite {
    explicit SecondarySite(sim::Simulator* sim, const Params& p,
                           std::size_t index);

    sim::Resource server;
    sim::Mailbox<PropRecord> update_queue;
    /// seq(DBsec): primary commit timestamp of the latest refresh commit.
    std::uint64_t seq_db = 0;
    sim::Condition seq_cond;
    /// Pending queue of Algorithm 3.2/3.3 (commit timestamps, FIFO).
    std::deque<std::uint64_t> pending;
    sim::Condition pending_cond;
    /// Refresh transactions begun (start record processed, not resolved).
    std::set<std::uint64_t> started;
    /// Applicator pool gate (ablation): admission is FIFO in commit order so
    /// the pending-queue head always holds a slot (no starvation).
    std::deque<std::uint64_t> admission;
    std::size_t active_applicators = 0;
    sim::Condition pool_cond;
  };

  /// Measurement collectors, reset at the end of warm-up.
  struct Collectors {
    Collectors()
        : ro_histogram(0.0, 120.0, 2400), upd_histogram(0.0, 120.0, 2400) {}
    RunningStat ro_response;
    RunningStat upd_response;
    /// 50 ms buckets to 120 s for percentile supplements.
    Histogram ro_histogram;
    Histogram upd_histogram;
    RunningStat ro_block;
    RunningStat refresh_lag;
    std::uint64_t fast_completions = 0;
    std::uint64_t upd_aborts = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t snapshot_regressions = 0;
  };

  sim::Process ClientProcess(std::size_t secondary_index, Rng rng);
  sim::Process PropagatorProcess();
  sim::Process RefresherProcess(SecondarySite& sec);
  sim::Process ApplicatorProcess(SecondarySite& sec, PropRecord record);

  bool InWindow() const { return sim_.Now() >= params_.warmup_time; }

  Params params_;
  Rng rng_;
  sim::Simulator sim_;

  sim::Resource primary_server_;
  /// Primary logical clock issuing start and commit timestamps.
  std::uint64_t primary_clock_ = 0;
  std::uint64_t next_txn_id_ = 0;
  /// The primary's logical log, in timestamp order.
  std::vector<PropRecord> log_;
  std::size_t propagated_upto_ = 0;
  /// seq for ALG-STRONG-SI's single system-wide session.
  std::uint64_t global_session_seq_ = 0;

  std::vector<std::unique_ptr<SecondarySite>> secondaries_;
  Collectors collect_;
};

/// Cross-replication summary of one metric: mean and 95% confidence
/// half-width over independent runs (Section 6.1 style).
struct Summary {
  double mean = 0;
  double ci95 = 0;
};

/// All figure metrics summarized across replications.
struct ReplicatedResult {
  Summary throughput_fast;
  Summary throughput_total;
  Summary ro_response;
  Summary upd_response;
  Summary ro_response_p95;
  Summary upd_response_p95;
  Summary ro_block;
  Summary primary_utilization;
  Summary refresh_lag;
  /// Snapshot regressions per 1000 read-only transactions.
  Summary regressions_per_k;
};

/// Runs `replications` independent Model runs (seeds seed, seed+1, ...) and
/// aggregates. Runs use multiple OS threads when available; each replication
/// is fully deterministic given its seed.
ReplicatedResult RunReplications(const Params& params, int replications);

/// Replication count: LAZYSI_REPS env override, else 5 (the paper's count).
int DefaultReplications();

/// Measurement-window scale factor: LAZYSI_TIME_SCALE env override in (0,1],
/// else 1.0. Lets CI runs shrink the 30-minute window proportionally.
double TimeScale();

}  // namespace simmodel
}  // namespace lazysi

#endif  // LAZYSI_SIMMODEL_MODEL_H_
