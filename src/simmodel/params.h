#ifndef LAZYSI_SIMMODEL_PARAMS_H_
#define LAZYSI_SIMMODEL_PARAMS_H_

#include <cstdint>
#include <string>

#include "session/guarantee.h"
#include "sim/resource.h"

namespace lazysi {
namespace simmodel {

/// Simulation model parameters — Table 1 of the paper, plus the run-control
/// values from Section 6.1. Defaults are exactly the paper's defaults.
struct Params {
  /// num_sec: number of secondary sites (the paper varies this).
  std::size_t num_secondaries = 5;
  /// num_clients: 20 per secondary by default.
  std::size_t clients_per_secondary = 20;
  /// Overrides clients_per_secondary * num_secondaries when non-zero, for
  /// the fixed-site load sweeps of Figures 2-4.
  std::size_t total_clients_override = 0;
  /// think_time: mean client think time between transactions (s).
  double think_time = 7.0;
  /// session_time: mean session duration (s); 15 minutes.
  double session_time = 15.0 * 60.0;
  /// update_tran_prob: probability a transaction is an update (TPC-W
  /// "shopping" mix 80/20 by default; Figure 8 uses "browsing" 95/5).
  double update_tran_prob = 0.20;
  /// abort_prob: update transactions abort with this probability at commit
  /// and are restarted immediately to maintain primary load.
  double abort_prob = 0.01;
  /// tran_size: operations per transaction, uniform in [min,max], mean 10.
  int tran_size_min = 5;
  int tran_size_max = 15;
  /// op_service_time: CPU demand per operation (s).
  double op_service_time = 0.02;
  /// update_op_prob: probability an update transaction's operation is an
  /// update (determines refresh demand at secondaries).
  double update_op_prob = 0.30;
  /// propagation_delay: propagator think time per cycle (s).
  double propagation_delay = 10.0;

  // --- Run control (Section 6.1) ---
  /// Warm-up discarded from statistics (5 simulated minutes).
  double warmup_time = 5.0 * 60.0;
  /// Measurement window (runs last 35 minutes total).
  double measure_time = 30.0 * 60.0;
  /// "Response-time-related" throughput counts transactions finishing
  /// within this bound (3 s).
  double response_threshold = 3.0;

  /// Which of the Section 6 algorithms (plus ALG-PCSI from Section 7)
  /// governs read-only starts.
  session::Guarantee guarantee = session::Guarantee::kStrongSessionSI;
  /// Route each read-only transaction to a uniformly random secondary
  /// instead of the client's home site (ablation: exposes the PCSI vs
  /// strong-session-SI difference in snapshot monotonicity).
  bool roam_reads = false;
  /// Cap on concurrently executing applicators per secondary; 0 = unbounded
  /// (ablation for Section 3.3's concurrent-refresh design).
  std::size_t applicator_pool_size = 0;
  /// CPU scheduling at each site; PS is the fast equivalent of the paper's
  /// 1 ms round-robin (see sim::Resource).
  sim::Resource::Discipline discipline =
      sim::Resource::Discipline::kProcessorSharing;
  /// Round-robin slice, used when discipline == kRoundRobin.
  double rr_quantum = 0.001;

  std::uint64_t seed = 42;

  std::size_t total_clients() const {
    return total_clients_override != 0
               ? total_clients_override
               : clients_per_secondary * num_secondaries;
  }

  /// Renders the Table-1 parameter block (printed by bench binaries).
  std::string ToTableString() const;
};

}  // namespace simmodel
}  // namespace lazysi

#endif  // LAZYSI_SIMMODEL_PARAMS_H_
