#ifndef LAZYSI_HISTORY_RECORDER_H_
#define LAZYSI_HISTORY_RECORDER_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "common/timestamp.h"
#include "storage/write_set.h"

namespace lazysi {
namespace history {

/// One read observed by a committed transaction, in primary-state
/// coordinates: `version_primary_ts` is the primary commit timestamp of the
/// version the snapshot produced (reads at secondaries are translated through
/// the refresh map; kInvalidTimestamp means the key was absent).
struct RecordedRead {
  std::string key;
  Timestamp version_primary_ts = kInvalidTimestamp;
  bool found = false;
};

/// Everything the Section 2 correctness criteria need to know about one
/// committed transaction.
struct TxnRecord {
  /// Recorder-assigned dense id.
  std::uint64_t order_id = 0;
  SessionLabel label = 0;
  SiteId site = 0;
  bool read_only = true;
  /// Global real-time event sequence at the transaction's first operation.
  /// "Ti's commit precedes the first operation of Tj" (Definitions 2.1/2.2)
  /// compares commit_seq(Ti) < first_op_seq(Tj).
  std::uint64_t first_op_seq = 0;
  /// Global real-time event sequence when the commit returned to the client.
  std::uint64_t commit_seq = 0;
  /// Primary commit timestamp; kInvalidTimestamp for read-only transactions.
  Timestamp commit_primary_ts = kInvalidTimestamp;
  std::vector<RecordedRead> reads;
  /// Final write set (empty for read-only transactions).
  std::vector<storage::Write> writes;
};

/// Collects TxnRecords from the running system and issues the global
/// real-time event sequence. Thread-safe.
class Recorder {
 public:
  /// Issues the next real-time event sequence number. The counter is global
  /// across all sites, so it linearizes "commit precedes first operation"
  /// comparisons the way a wall clock would.
  std::uint64_t NextEventSeq() {
    return event_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  void Record(TxnRecord record) {
    std::lock_guard<std::mutex> lock(mu_);
    record.order_id = records_.size();
    records_.push_back(std::move(record));
  }

  std::vector<TxnRecord> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

 private:
  std::atomic<std::uint64_t> event_seq_{0};
  mutable std::mutex mu_;
  std::vector<TxnRecord> records_;
};

}  // namespace history
}  // namespace lazysi

#endif  // LAZYSI_HISTORY_RECORDER_H_
