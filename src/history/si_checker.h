#ifndef LAZYSI_HISTORY_SI_CHECKER_H_
#define LAZYSI_HISTORY_SI_CHECKER_H_

#include <map>
#include <string>
#include <vector>

#include "history/recorder.h"

namespace lazysi {
namespace history {

/// Result of one correctness check over a recorded history.
struct CheckReport {
  bool ok = true;
  /// Human-readable description of the first violation found.
  std::string violation;
  /// Number of transactions examined.
  std::size_t checked = 0;
};

/// Decides the Section 2 guarantees on a recorded execution history.
///
/// Method: rebuild the sequence of committed primary states from the update
/// transactions' write sets and commit timestamps. For each transaction,
/// compute the set of snapshot timestamps s consistent with *every* read it
/// made (the version observed for each key must be the newest one with
/// commit_ts <= s) and with first-committer-wins for its own writes. Then:
///
///  - weak SI (Def. of [3], Section 2.2 terminology) holds iff that set is
///    non-empty for every transaction;
///  - strong SI (Definition 2.1) additionally requires the set to contain an
///    s >= commit(Ti) for every Ti whose commit preceded the transaction's
///    first operation in real time;
///  - strong session SI (Definition 2.2) restricts that requirement to
///    transactions with the same session label.
class SIChecker {
 public:
  explicit SIChecker(std::vector<TxnRecord> records);

  CheckReport CheckWeakSI() const;
  /// Full Definition 2.1 / 2.2 checks: the ordering constraint covers every
  /// committed pair, including read-only -> read-only (a later read may not
  /// see an older snapshot than an earlier same-session read provably saw).
  CheckReport CheckStrongSI() const;
  CheckReport CheckStrongSessionSI() const;
  /// Prefix-consistent SI (Section 7, Elnikety et al): like strong session
  /// SI but only the session's own *update* commits constrain later
  /// transactions — read-read monotonicity is not required.
  CheckReport CheckPrefixConsistentSI() const;

  /// Observable transaction inversions: transactions Tj that read, for some
  /// key, a version older than the one installed by a committed transaction
  /// Ti whose commit preceded Tj's first operation. Counted per (Ti, Tj)
  /// ordering scope:
  std::size_t CountSessionInversions() const;  // Ti, Tj in the same session
  std::size_t CountGlobalInversions() const;   // any Ti, Tj

  std::size_t num_records() const { return records_.size(); }

 private:
  struct VersionEntry {
    Timestamp ts;
    bool deleted;
    std::uint64_t writer_order_id;
  };

  /// Half-open timestamp intervals [lo, hi); kInfinity marks "unbounded".
  static constexpr Timestamp kInfinity = ~static_cast<Timestamp>(0);
  using Interval = std::pair<Timestamp, Timestamp>;
  using IntervalSet = std::vector<Interval>;

  /// Allowed snapshot interval(s) implied by one read.
  IntervalSet ConstraintForRead(const RecordedRead& read,
                                std::string* error) const;
  /// Intersection of two interval sets.
  static IntervalSet Intersect(const IntervalSet& a, const IntervalSet& b);

  /// Snapshot candidates for one transaction (reads + FCW constraints);
  /// empty `error` on success.
  IntervalSet SnapshotWindow(const TxnRecord& txn, std::string* error) const;

  /// Generic strong check: `same_session_only` selects Definition 2.2
  /// vs 2.1; `updates_only` drops read-only contributions (PCSI).
  CheckReport CheckStrong(bool same_session_only, bool updates_only) const;
  std::size_t CountInversions(bool same_session_only) const;

  std::vector<TxnRecord> records_;
  /// order_id -> index into records_.
  std::map<std::uint64_t, std::size_t> by_order_id_;
  /// Version history per key, in increasing commit-timestamp order.
  std::map<std::string, std::vector<VersionEntry>> versions_;
  /// Committed transactions sorted by real-time commit sequence. For update
  /// transactions `state_floor` is commit_p(T); for read-only transactions
  /// it is the newest version timestamp the transaction provably observed
  /// (the minimum snapshot consistent with its reads).
  struct CommitEvent {
    std::uint64_t commit_seq;
    Timestamp state_floor;
    SessionLabel label;
    std::uint64_t order_id;
    bool is_update;
  };
  std::vector<CommitEvent> commit_events_;
};

}  // namespace history
}  // namespace lazysi

#endif  // LAZYSI_HISTORY_SI_CHECKER_H_
