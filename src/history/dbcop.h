#ifndef LAZYSI_HISTORY_DBCOP_H_
#define LAZYSI_HISTORY_DBCOP_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "history/recorder.h"

namespace lazysi {
namespace history {

/// The dbcop binary interchange format, as consumed by external
/// transactional-consistency checkers (dbcop, PolySI, smt-based artifacts):
///
///   FILE    := ID SESSION_NUM KEY_NUM TXN_NUM EVENT_NUM INFO START END
///              SIZE SESSION_1 .. SESSION_SIZE
///   SESSION := SIZE TXN_1 .. TXN_SIZE
///   TXN     := SIZE EVENT_1 .. EVENT_SIZE SUCCESS
///   EVENT   := IS_WRITE KEY VALUE SUCCESS
///
/// Integers are little-endian int64, strings are int64-length-prefixed
/// bytes, bools are one byte.
struct DbcopEvent {
  bool is_write = false;
  std::int64_t key = 0;
  std::int64_t value = 0;
  bool success = true;
};

struct DbcopTxn {
  std::vector<DbcopEvent> events;
  bool success = true;
};

struct DbcopSession {
  std::vector<DbcopTxn> txns;
};

struct DbcopHistory {
  std::int64_t id = 0;
  std::string info;
  std::string start;
  std::string end;
  std::vector<DbcopSession> sessions;

  std::int64_t key_num() const;
  std::int64_t txn_num() const;
  std::int64_t event_num() const;
};

/// Converts recorded transactions to a dbcop history. Sessions are the
/// recorder's session labels (ascending); within a session, transactions
/// are ordered by commit_seq (the order the session observed them commit).
/// String keys become dense int64 ids in sorted-key order. A write's value
/// is the transaction's primary commit timestamp — unique per transaction,
/// so (key, value) identifies the version, which is exactly the coordinate
/// a translated read observes. Reads carry the observed version's primary
/// timestamp, or 0 (the initial value) when the key was absent. Deletes are
/// exported as writes of the deleting commit's timestamp; a later read of
/// the dead key reads 0, so histories that delete are approximate for
/// external checkers (flagged in `info`).
DbcopHistory ToDbcop(const std::vector<TxnRecord>& records,
                     std::int64_t id = 0);

/// Serializes `history` in dbcop binary format.
void WriteDbcop(const DbcopHistory& history, std::ostream& out);

/// Parses a dbcop binary stream; InvalidArgument on truncation or
/// implausible sizes.
Result<DbcopHistory> ReadDbcop(std::istream& in);

}  // namespace history
}  // namespace lazysi

#endif  // LAZYSI_HISTORY_DBCOP_H_
