#include "history/dbcop.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>

namespace lazysi {
namespace history {

namespace {

void PutI64(std::ostream& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((u >> (8 * i)) & 0xff);
  }
  out.write(bytes, 8);
}

void PutStr(std::ostream& out, const std::string& s) {
  PutI64(out, static_cast<std::int64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void PutBool(std::ostream& out, bool b) { out.put(b ? '\x01' : '\x00'); }

bool GetI64(std::istream& in, std::int64_t* v) {
  char bytes[8];
  if (!in.read(bytes, 8)) return false;
  std::uint64_t u = 0;
  for (int i = 7; i >= 0; --i) {
    u = (u << 8) | static_cast<unsigned char>(bytes[i]);
  }
  *v = static_cast<std::int64_t>(u);
  return true;
}

bool GetStr(std::istream& in, std::string* s) {
  std::int64_t size = 0;
  if (!GetI64(in, &size)) return false;
  // A length claiming more than the stream could plausibly hold is
  // corruption, not data; bound it before allocating.
  if (size < 0 || size > (int64_t{1} << 30)) return false;
  s->resize(static_cast<std::size_t>(size));
  return static_cast<bool>(in.read(s->data(), size));
}

bool GetBool(std::istream& in, bool* b) {
  const int c = in.get();
  if (c == std::istream::traits_type::eof()) return false;
  *b = c != 0;
  return true;
}

constexpr std::int64_t kMaxListSize = std::int64_t{1} << 24;

}  // namespace

std::int64_t DbcopHistory::key_num() const {
  std::vector<std::int64_t> keys;
  for (const auto& session : sessions) {
    for (const auto& txn : session.txns) {
      for (const auto& event : txn.events) keys.push_back(event.key);
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return static_cast<std::int64_t>(keys.size());
}

std::int64_t DbcopHistory::txn_num() const {
  std::int64_t n = 0;
  for (const auto& session : sessions) {
    n += static_cast<std::int64_t>(session.txns.size());
  }
  return n;
}

std::int64_t DbcopHistory::event_num() const {
  std::int64_t n = 0;
  for (const auto& session : sessions) {
    for (const auto& txn : session.txns) {
      n += static_cast<std::int64_t>(txn.events.size());
    }
  }
  return n;
}

DbcopHistory ToDbcop(const std::vector<TxnRecord>& records, std::int64_t id) {
  // Dense key ids in sorted-key order, so the mapping is reproducible from
  // the history alone.
  std::map<std::string, std::int64_t> key_ids;
  bool has_deletes = false;
  for (const auto& record : records) {
    for (const auto& read : record.reads) key_ids.emplace(read.key, 0);
    for (const auto& write : record.writes) {
      key_ids.emplace(write.key, 0);
      has_deletes = has_deletes || write.deleted;
    }
  }
  std::int64_t next_key = 0;
  for (auto& entry : key_ids) entry.second = next_key++;

  // Sessions in label order; each session's transactions in the order the
  // session saw them commit.
  std::map<SessionLabel, std::vector<const TxnRecord*>> by_session;
  for (const auto& record : records) {
    by_session[record.label].push_back(&record);
  }

  DbcopHistory history;
  history.id = id;
  history.info = has_deletes ? "lazysi (has deletes: read-0 approximate)"
                             : "lazysi";
  history.start = "0";
  history.end = "0";
  for (auto& entry : by_session) {
    auto& txns = entry.second;
    std::sort(txns.begin(), txns.end(),
              [](const TxnRecord* a, const TxnRecord* b) {
                return a->commit_seq < b->commit_seq;
              });
    DbcopSession session;
    for (const TxnRecord* record : txns) {
      DbcopTxn txn;
      for (const auto& read : record->reads) {
        const std::int64_t value =
            read.found ? static_cast<std::int64_t>(read.version_primary_ts)
                       : 0;
        txn.events.push_back(
            DbcopEvent{false, key_ids.at(read.key), value, true});
      }
      for (const auto& write : record->writes) {
        txn.events.push_back(DbcopEvent{
            true, key_ids.at(write.key),
            static_cast<std::int64_t>(record->commit_primary_ts), true});
      }
      session.txns.push_back(std::move(txn));
    }
    history.sessions.push_back(std::move(session));
  }
  return history;
}

void WriteDbcop(const DbcopHistory& history, std::ostream& out) {
  PutI64(out, history.id);
  PutI64(out, static_cast<std::int64_t>(history.sessions.size()));
  PutI64(out, history.key_num());
  PutI64(out, history.txn_num());
  PutI64(out, history.event_num());
  PutStr(out, history.info);
  PutStr(out, history.start);
  PutStr(out, history.end);
  PutI64(out, static_cast<std::int64_t>(history.sessions.size()));
  for (const auto& session : history.sessions) {
    PutI64(out, static_cast<std::int64_t>(session.txns.size()));
    for (const auto& txn : session.txns) {
      PutI64(out, static_cast<std::int64_t>(txn.events.size()));
      for (const auto& event : txn.events) {
        PutBool(out, event.is_write);
        PutI64(out, event.key);
        PutI64(out, event.value);
        PutBool(out, event.success);
      }
      PutBool(out, txn.success);
    }
  }
}

Result<DbcopHistory> ReadDbcop(std::istream& in) {
  const auto truncated = [] {
    return Status::InvalidArgument("truncated dbcop stream");
  };
  DbcopHistory history;
  std::int64_t session_num = 0, key_num = 0, txn_num = 0, event_num = 0;
  if (!GetI64(in, &history.id) || !GetI64(in, &session_num) ||
      !GetI64(in, &key_num) || !GetI64(in, &txn_num) ||
      !GetI64(in, &event_num)) {
    return truncated();
  }
  if (!GetStr(in, &history.info) || !GetStr(in, &history.start) ||
      !GetStr(in, &history.end)) {
    return truncated();
  }
  std::int64_t size = 0;
  if (!GetI64(in, &size)) return truncated();
  if (size < 0 || size > kMaxListSize) {
    return Status::InvalidArgument("implausible dbcop session count");
  }
  for (std::int64_t s = 0; s < size; ++s) {
    DbcopSession session;
    std::int64_t txn_count = 0;
    if (!GetI64(in, &txn_count)) return truncated();
    if (txn_count < 0 || txn_count > kMaxListSize) {
      return Status::InvalidArgument("implausible dbcop txn count");
    }
    for (std::int64_t t = 0; t < txn_count; ++t) {
      DbcopTxn txn;
      std::int64_t event_count = 0;
      if (!GetI64(in, &event_count)) return truncated();
      if (event_count < 0 || event_count > kMaxListSize) {
        return Status::InvalidArgument("implausible dbcop event count");
      }
      for (std::int64_t e = 0; e < event_count; ++e) {
        DbcopEvent event;
        if (!GetBool(in, &event.is_write) || !GetI64(in, &event.key) ||
            !GetI64(in, &event.value) || !GetBool(in, &event.success)) {
          return truncated();
        }
        txn.events.push_back(event);
      }
      if (!GetBool(in, &txn.success)) return truncated();
      session.txns.push_back(std::move(txn));
    }
    history.sessions.push_back(std::move(session));
  }
  return history;
}

}  // namespace history
}  // namespace lazysi
