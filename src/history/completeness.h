#ifndef LAZYSI_HISTORY_COMPLETENESS_H_
#define LAZYSI_HISTORY_COMPLETENESS_H_

#include <sstream>
#include <vector>

#include "engine/database.h"
#include "history/si_checker.h"

namespace lazysi {
namespace history {

/// Executable form of Theorem 3.1 (completeness, in the sense of Zhuge,
/// Garcia-Molina et al): the sequence of database states installed at a
/// secondary must be a prefix of the sequence installed at the primary,
/// i.e. S_i^s == S_i^p for every refresh transaction i.
///
/// Both sites fold each committed write set into a state-hash chain in
/// commit order (engine::Database::StateChainHistory); the secondary's chain
/// must be a hash-for-hash prefix of the primary's.
inline CheckReport CheckCompleteness(
    const std::vector<engine::StateChainEntry>& primary_chain,
    const std::vector<engine::StateChainEntry>& secondary_chain) {
  CheckReport report;
  report.checked = secondary_chain.size();
  if (secondary_chain.size() > primary_chain.size()) {
    report.ok = false;
    std::ostringstream os;
    os << "secondary installed " << secondary_chain.size()
       << " states but the primary only installed " << primary_chain.size();
    report.violation = os.str();
    return report;
  }
  for (std::size_t i = 0; i < secondary_chain.size(); ++i) {
    if (secondary_chain[i].hash != primary_chain[i].hash) {
      report.ok = false;
      std::ostringstream os;
      os << "state " << i << " diverges: secondary installed a state "
         << "different from S_" << i << "^p (refresh order or contents "
         << "differ from the primary commit order)";
      report.violation = os.str();
      return report;
    }
  }
  return report;
}

}  // namespace history
}  // namespace lazysi

#endif  // LAZYSI_HISTORY_COMPLETENESS_H_
