#include "history/si_checker.h"

#include <algorithm>
#include <sstream>

namespace lazysi {
namespace history {

SIChecker::SIChecker(std::vector<TxnRecord> records)
    : records_(std::move(records)) {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    by_order_id_[records_[i].order_id] = i;
  }
  // Rebuild version histories from committed update transactions.
  std::vector<const TxnRecord*> updates;
  for (const auto& r : records_) {
    if (r.commit_primary_ts != kInvalidTimestamp && !r.writes.empty()) {
      updates.push_back(&r);
    }
  }
  std::sort(updates.begin(), updates.end(),
            [](const TxnRecord* a, const TxnRecord* b) {
              return a->commit_primary_ts < b->commit_primary_ts;
            });
  for (const TxnRecord* r : updates) {
    for (const auto& w : r->writes) {
      versions_[w.key].push_back(
          VersionEntry{r->commit_primary_ts, w.deleted, r->order_id});
    }
  }
  for (const auto& r : records_) {
    if (r.commit_primary_ts != kInvalidTimestamp) {
      commit_events_.push_back(CommitEvent{r.commit_seq, r.commit_primary_ts,
                                           r.label, r.order_id,
                                           /*is_update=*/true});
    } else {
      // Read-only: the provable lower bound on its snapshot is the newest
      // version it actually observed.
      Timestamp floor = 0;
      for (const auto& read : r.reads) {
        if (read.found) floor = std::max(floor, read.version_primary_ts);
      }
      commit_events_.push_back(
          CommitEvent{r.commit_seq, floor, r.label, r.order_id,
                      /*is_update=*/false});
    }
  }
  std::sort(commit_events_.begin(), commit_events_.end(),
            [](const CommitEvent& a, const CommitEvent& b) {
              return a.commit_seq < b.commit_seq;
            });
}

SIChecker::IntervalSet SIChecker::ConstraintForRead(const RecordedRead& read,
                                                    std::string* error) const {
  auto it = versions_.find(read.key);
  const std::vector<VersionEntry>* chain =
      it == versions_.end() ? nullptr : &it->second;

  if (read.found) {
    if (chain == nullptr) {
      *error = "read of key '" + read.key + "' observed a version but the key "
               "was never written by a committed transaction";
      return {};
    }
    auto v = std::find_if(chain->begin(), chain->end(),
                          [&](const VersionEntry& e) {
                            return e.ts == read.version_primary_ts;
                          });
    if (v == chain->end() || v->deleted) {
      std::ostringstream os;
      os << "read of key '" << read.key << "' observed version ts="
         << read.version_primary_ts
         << " which no committed transaction installed";
      *error = os.str();
      return {};
    }
    const Timestamp next =
        (v + 1) == chain->end() ? kInfinity : (v + 1)->ts;
    return {{v->ts, next}};
  }

  // Not found: every snapshot where the key is absent — before its first
  // version, or while the newest visible version is a delete tombstone.
  IntervalSet allowed;
  if (chain == nullptr || chain->empty()) {
    allowed.push_back({0, kInfinity});
    return allowed;
  }
  allowed.push_back({0, chain->front().ts});
  for (std::size_t i = 0; i < chain->size(); ++i) {
    if ((*chain)[i].deleted) {
      const Timestamp next =
          i + 1 < chain->size() ? (*chain)[i + 1].ts : kInfinity;
      allowed.push_back({(*chain)[i].ts, next});
    }
  }
  return allowed;
}

SIChecker::IntervalSet SIChecker::Intersect(const IntervalSet& a,
                                            const IntervalSet& b) {
  IntervalSet out;
  for (const auto& [alo, ahi] : a) {
    for (const auto& [blo, bhi] : b) {
      const Timestamp lo = std::max(alo, blo);
      const Timestamp hi = std::min(ahi, bhi);
      if (lo < hi) out.push_back({lo, hi});
    }
  }
  return out;
}

SIChecker::IntervalSet SIChecker::SnapshotWindow(const TxnRecord& txn,
                                                 std::string* error) const {
  IntervalSet window{{0, kInfinity}};
  for (const auto& read : txn.reads) {
    std::string read_error;
    IntervalSet c = ConstraintForRead(read, &read_error);
    if (!read_error.empty()) {
      *error = std::move(read_error);
      return {};
    }
    window = Intersect(window, c);
    if (window.empty()) {
      *error = "no snapshot is consistent with all reads (non-snapshot read "
               "set), first conflict at key '" + read.key + "'";
      return {};
    }
  }
  if (txn.commit_primary_ts != kInvalidTimestamp && !txn.writes.empty()) {
    // First-committer-wins: the snapshot must include every other-writer
    // version of this transaction's written keys that committed before it
    // (otherwise the history contains a lost update).
    Timestamp fcw_lo = 0;
    for (const auto& w : txn.writes) {
      auto it = versions_.find(w.key);
      if (it == versions_.end()) continue;
      for (const auto& v : it->second) {
        if (v.ts >= txn.commit_primary_ts) break;
        if (v.writer_order_id != txn.order_id) fcw_lo = std::max(fcw_lo, v.ts);
      }
    }
    window = Intersect(window, {{fcw_lo, kInfinity}});
    if (window.empty()) {
      *error = "first-committer-wins violated: transaction overwrote a "
               "concurrent committed write it did not see";
    }
  }
  return window;
}

CheckReport SIChecker::CheckWeakSI() const {
  CheckReport report;
  for (const auto& txn : records_) {
    std::string error;
    IntervalSet window = SnapshotWindow(txn, &error);
    ++report.checked;
    if (window.empty()) {
      report.ok = false;
      std::ostringstream os;
      os << "txn order_id=" << txn.order_id << " (label=" << txn.label
         << ", site=" << txn.site << "): " << error;
      report.violation = os.str();
      return report;
    }
  }
  return report;
}

CheckReport SIChecker::CheckStrong(bool same_session_only,
                                   bool updates_only) const {
  CheckReport report = CheckWeakSI();
  if (!report.ok) return report;

  // Prefix maxima of state floors over commit events ordered by real-time
  // commit sequence; one sequence globally, or one per label.
  struct PrefixEntry {
    std::uint64_t commit_seq;
    Timestamp max_commit_ts;
  };
  std::map<SessionLabel, std::vector<PrefixEntry>> by_label;
  std::vector<PrefixEntry> global;
  for (const auto& e : commit_events_) {
    if (updates_only && !e.is_update) continue;
    auto append = [&](std::vector<PrefixEntry>& vec) {
      const Timestamp prev = vec.empty() ? 0 : vec.back().max_commit_ts;
      vec.push_back(PrefixEntry{e.commit_seq, std::max(prev, e.state_floor)});
    };
    if (same_session_only) {
      append(by_label[e.label]);
    } else {
      append(global);
    }
  }
  auto required_min = [&](const TxnRecord& txn) -> Timestamp {
    const std::vector<PrefixEntry>* vec = nullptr;
    if (same_session_only) {
      auto it = by_label.find(txn.label);
      if (it == by_label.end()) return 0;
      vec = &it->second;
    } else {
      vec = &global;
    }
    // Largest commit_ts among events with commit_seq < txn.first_op_seq.
    auto it = std::lower_bound(
        vec->begin(), vec->end(), txn.first_op_seq,
        [](const PrefixEntry& e, std::uint64_t seq) {
          return e.commit_seq < seq;
        });
    if (it == vec->begin()) return 0;
    return std::prev(it)->max_commit_ts;
  };

  report.checked = 0;
  for (const auto& txn : records_) {
    ++report.checked;
    std::string error;
    IntervalSet window = SnapshotWindow(txn, &error);
    const Timestamp need = required_min(txn);
    window = Intersect(window, {{need, kInfinity}});
    if (window.empty()) {
      report.ok = false;
      std::ostringstream os;
      os << "txn order_id=" << txn.order_id << " (label=" << txn.label
         << ", site=" << txn.site << ") saw a snapshot older than commit ts "
         << need << " of a transaction that committed before its first "
         << "operation"
         << (same_session_only ? " in the same session" : "");
      report.violation = os.str();
      return report;
    }
  }
  return report;
}

CheckReport SIChecker::CheckStrongSI() const {
  return CheckStrong(/*same_session_only=*/false, /*updates_only=*/false);
}

CheckReport SIChecker::CheckStrongSessionSI() const {
  return CheckStrong(/*same_session_only=*/true, /*updates_only=*/false);
}

CheckReport SIChecker::CheckPrefixConsistentSI() const {
  return CheckStrong(/*same_session_only=*/true, /*updates_only=*/true);
}

std::size_t SIChecker::CountInversions(bool same_session_only) const {
  // A transaction Tj is inverted iff for some key it read, a transaction Ti
  // with commit_seq(Ti) < first_op_seq(Tj) (and same label, when scoped)
  // installed a newer version than the one Tj observed.
  std::size_t inverted = 0;
  for (const auto& txn : records_) {
    bool is_inverted = false;
    for (const auto& read : txn.reads) {
      auto it = versions_.find(read.key);
      if (it == versions_.end()) continue;
      // Newest snapshot any consistent explanation of this read can use.
      // A read observing absence after a delete is explained by a snapshot
      // inside the tombstone's absence window, so the tombstone itself (and
      // anything older) is not "missed"; only versions at or beyond every
      // allowed window count. For a found read this degenerates to the next
      // version's timestamp, matching the naive comparison.
      std::string error;
      const IntervalSet allowed = ConstraintForRead(read, &error);
      Timestamp max_hi = 0;
      for (const auto& [lo, hi] : allowed) max_hi = std::max(max_hi, hi);
      for (const auto& v : it->second) {
        if (v.ts < max_hi) continue;  // some consistent snapshot covers v
        // Find the writer's record to compare real-time order and label.
        auto writer_it = by_order_id_.find(v.writer_order_id);
        if (writer_it == by_order_id_.end()) continue;
        const TxnRecord& writer = records_[writer_it->second];
        if (writer.commit_seq >= txn.first_op_seq) continue;
        if (same_session_only && writer.label != txn.label) continue;
        is_inverted = true;
        break;
      }
      if (is_inverted) break;
    }
    if (is_inverted) ++inverted;
  }
  return inverted;
}

std::size_t SIChecker::CountSessionInversions() const {
  return CountInversions(/*same_session_only=*/true);
}

std::size_t SIChecker::CountGlobalInversions() const {
  return CountInversions(/*same_session_only=*/false);
}

}  // namespace history
}  // namespace lazysi
