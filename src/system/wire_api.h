#ifndef LAZYSI_SYSTEM_WIRE_API_H_
#define LAZYSI_SYSTEM_WIRE_API_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "replication/wire.h"

namespace lazysi {
namespace system {
namespace wire_api {

/// Client <-> site-server protocol, one length-prefixed frame (framed_socket)
/// per request and per reply. First byte of a request is the op tag; a reply
/// is varint(status code) + string(message) followed by op-specific payload
/// when OK. At most one transaction is in flight per connection.
///
///   'B' ro(1) varint(min_seq)          -> varint(snapshot_prefix)
///   'G' str(key)                       -> str(value)
///   'P' str(key) str(value)            -> -
///   'X' str(key)                       -> -
///   'S' str(begin) str(end)            -> varint(n) n*(str(key) str(value))
///   'C'                                -> varint(commit_seq; 0 = read-only)
///   'A'                                -> -
///   'W' varint(seq)                    -> -           (block until applied)
///   'T'                                -> varint(role) varint(applied_seq)
///                                         varint(latest_commit_ts)
///                                         varint(content_hash)
///                                         8 * varint(wire counter)
///
/// min_seq is the session's seq(c): a secondary blocks the begin until
/// seq(DBsec) >= min_seq (ALG-STRONG-SESSION-SI's rule); the primary always
/// satisfies it trivially. snapshot_prefix and commit_seq are in primary
/// timestamp coordinates, so a client can carry its session across sites.
///
/// The 'T' reply's trailing wire counters describe the site's replication
/// stream endpoint, role-neutrally: frames, batch frames, records, bytes,
/// writev calls, full-drain flushes, backpressure stalls, connections. A
/// primary reports the outbound (sent) direction and accepted connections;
/// a secondary the inbound (received) direction and its reconnect count
/// (see SiteServer::WireStats).
inline constexpr char kOpBegin = 'B';
inline constexpr char kOpGet = 'G';
inline constexpr char kOpPut = 'P';
inline constexpr char kOpDelete = 'X';
inline constexpr char kOpScan = 'S';
inline constexpr char kOpCommit = 'C';
inline constexpr char kOpAbort = 'A';
inline constexpr char kOpWaitSeq = 'W';
inline constexpr char kOpStats = 'T';

inline constexpr std::uint64_t kRolePrimary = 0;
inline constexpr std::uint64_t kRoleSecondary = 1;

inline void PutString(std::string* out, std::string_view s) {
  replication::PutVarint(out, s.size());
  out->append(s.data(), s.size());
}

inline bool GetString(const std::string& data, std::size_t* offset,
                      std::string* out) {
  std::uint64_t len = 0;
  if (!replication::GetVarint(data, offset, &len)) return false;
  if (data.size() - *offset < len) return false;
  out->assign(data, *offset, static_cast<std::size_t>(len));
  *offset += static_cast<std::size_t>(len);
  return true;
}

inline void PutStatus(std::string* out, const Status& status) {
  replication::PutVarint(out, static_cast<std::uint64_t>(status.code()));
  PutString(out, status.message());
}

inline bool GetStatus(const std::string& data, std::size_t* offset,
                      Status* out) {
  std::uint64_t code = 0;
  std::string message;
  if (!replication::GetVarint(data, offset, &code) ||
      !GetString(data, offset, &message)) {
    return false;
  }
  *out = code == 0 ? Status::OK()
                   : Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

}  // namespace wire_api
}  // namespace system
}  // namespace lazysi

#endif  // LAZYSI_SYSTEM_WIRE_API_H_
