#include "system/site_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/logging.h"
#include "system/wire_api.h"

namespace lazysi {
namespace system {

namespace {

using namespace wire_api;

engine::DatabaseOptions DbOptionsFor(const SiteServer::Options& options) {
  engine::DatabaseOptions db;
  db.site_id = options.site_id;
  db.name = options.role == SiteServer::Role::kPrimary
                ? "primary"
                : "secondary-" + std::to_string(options.site_id);
  return db;
}

}  // namespace

SiteServer::SiteServer(Options options)
    : options_(std::move(options)), db_(DbOptionsFor(options_)) {}

SiteServer::~SiteServer() { Stop(); }

std::uint16_t SiteServer::repl_port() const {
  return repl_listener_ ? repl_listener_->port() : 0;
}

Status SiteServer::Start() {
  if (options_.role == Role::kPrimary) {
    primary_ = std::make_unique<replication::Primary>(&db_);
    replication::ReplicationListener::Options lo;
    lo.host = options_.host;
    lo.port = options_.repl_port;
    repl_listener_ = std::make_unique<replication::ReplicationListener>(
        primary_->propagator(), lo);
    LAZYSI_RETURN_NOT_OK(repl_listener_->Start());
    primary_->Start();
  } else {
    secondary_ = std::make_unique<replication::Secondary>(&db_);
    replication::ReplicationReceiver::Options ro;
    ro.primary_host = options_.primary_host;
    ro.primary_port = options_.primary_repl_port;
    repl_receiver_ = std::make_unique<replication::ReplicationReceiver>(
        secondary_->update_queue(), ro);
    secondary_->Start();
    repl_receiver_->Start();
  }

  client_listen_fd_ =
      replication::ListenOn(options_.host, options_.client_port,
                            &client_port_);
  if (client_listen_fd_ < 0) {
    return Status::Unavailable("site server: cannot bind client port on " +
                               options_.host);
  }
  acceptor_ = std::thread([this] { AcceptClients(); });
  return Status::OK();
}

void SiteServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (client_listen_fd_ >= 0) ::shutdown(client_listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (client_listen_fd_ >= 0) {
    ::close(client_listen_fd_);
    client_listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->sock->ShutdownNow();
    for (auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    conns_.clear();
  }
  if (repl_receiver_) repl_receiver_->Stop();
  if (secondary_) secondary_->Stop();
  if (repl_listener_) repl_listener_->Stop();
  if (primary_) primary_->Stop();
}

void SiteServer::AcceptClients() {
  for (;;) {
    const int fd = replication::AcceptOn(client_listen_fd_);
    if (fd < 0) break;
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    auto conn = std::make_unique<ClientConn>();
    conn->sock = std::make_unique<replication::FramedSocket>(fd);
    ClientConn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ServeClient(raw->sock.get()); });
  }
}

void SiteServer::ServeClient(replication::FramedSocket* sock) {
  std::unique_ptr<txn::Transaction> txn;
  while (auto request = sock->Recv()) {
    std::string reply = HandleRequest(*request, &txn);
    if (!sock->Send(reply)) break;
  }
  // Connection gone mid-transaction: abandon it (SI: nothing was installed).
  if (txn) txn->Abort();
}

std::string SiteServer::HandleRequest(
    const std::string& request, std::unique_ptr<txn::Transaction>* txn) {
  std::string reply;
  if (request.empty()) {
    PutStatus(&reply, Status::InvalidArgument("empty request"));
    return reply;
  }
  const char op = request[0];
  std::size_t off = 1;
  switch (op) {
    case kOpBegin: {
      std::uint64_t min_seq = 0;
      off = 2;
      if (request.size() < 2 ||
          !replication::GetVarint(request, &off, &min_seq)) {
        PutStatus(&reply, Status::InvalidArgument("malformed begin"));
        return reply;
      }
      const bool read_only = request[1] != 0;
      if (*txn) {
        PutStatus(&reply,
                  Status::FailedPrecondition("transaction already open"));
        return reply;
      }
      if (options_.role == Role::kSecondary) {
        if (!read_only) {
          // Lazy master: all update transactions execute at the primary.
          PutStatus(&reply, Status::FailedPrecondition(
                                "updates execute at the primary"));
          return reply;
        }
        // ALG-STRONG-SESSION-SI blocking rule: do not start while
        // seq(c) > seq(DBsec).
        if (min_seq > 0 &&
            !secondary_->WaitForSeq(min_seq, options_.read_block_timeout)) {
          PutStatus(&reply,
                    Status::TimedOut("secondary lagging behind session"));
          return reply;
        }
        *txn = db_.Begin(/*read_only=*/true);
        PutStatus(&reply, Status::OK());
        replication::PutVarint(
            &reply, secondary_->PrimaryPrefixAtLocal((*txn)->snapshot_ts()));
      } else {
        *txn = db_.Begin(read_only);
        PutStatus(&reply, Status::OK());
        // Primary snapshots are already in primary timestamp coordinates.
        replication::PutVarint(&reply, (*txn)->snapshot_ts());
      }
      return reply;
    }
    case kOpGet: {
      std::string key;
      if (!GetString(request, &off, &key)) {
        PutStatus(&reply, Status::InvalidArgument("malformed get"));
        return reply;
      }
      if (!*txn) {
        PutStatus(&reply, Status::FailedPrecondition("no open transaction"));
        return reply;
      }
      auto value = (*txn)->Get(key);
      PutStatus(&reply, value.ok() ? Status::OK() : value.status());
      if (value.ok()) PutString(&reply, *value);
      return reply;
    }
    case kOpPut: {
      std::string key;
      std::string value;
      if (!GetString(request, &off, &key) ||
          !GetString(request, &off, &value)) {
        PutStatus(&reply, Status::InvalidArgument("malformed put"));
        return reply;
      }
      PutStatus(&reply, *txn ? (*txn)->Put(key, std::move(value))
                             : Status::FailedPrecondition(
                                   "no open transaction"));
      return reply;
    }
    case kOpDelete: {
      std::string key;
      if (!GetString(request, &off, &key)) {
        PutStatus(&reply, Status::InvalidArgument("malformed delete"));
        return reply;
      }
      PutStatus(&reply, *txn ? (*txn)->Delete(key)
                             : Status::FailedPrecondition(
                                   "no open transaction"));
      return reply;
    }
    case kOpScan: {
      std::string begin;
      std::string end;
      if (!GetString(request, &off, &begin) ||
          !GetString(request, &off, &end)) {
        PutStatus(&reply, Status::InvalidArgument("malformed scan"));
        return reply;
      }
      if (!*txn) {
        PutStatus(&reply, Status::FailedPrecondition("no open transaction"));
        return reply;
      }
      auto rows = (*txn)->Scan(begin, end);
      PutStatus(&reply, rows.ok() ? Status::OK() : rows.status());
      if (rows.ok()) {
        replication::PutVarint(&reply, rows->size());
        for (const auto& [key, value] : *rows) {
          PutString(&reply, key);
          PutString(&reply, value);
        }
      }
      return reply;
    }
    case kOpCommit: {
      if (!*txn) {
        PutStatus(&reply, Status::FailedPrecondition("no open transaction"));
        return reply;
      }
      const Status status = (*txn)->Commit();
      // commit_seq in primary coordinates: the session's new seq(c) after an
      // update commit. Read-only commits report 0 (seq(c) unchanged).
      const Timestamp seq =
          status.ok() && !(*txn)->read_only() ? (*txn)->commit_ts() : 0;
      txn->reset();
      PutStatus(&reply, status);
      if (status.ok()) replication::PutVarint(&reply, seq);
      return reply;
    }
    case kOpAbort: {
      if (*txn) (*txn)->Abort();
      txn->reset();
      PutStatus(&reply, Status::OK());
      return reply;
    }
    case kOpWaitSeq: {
      std::uint64_t seq = 0;
      if (!replication::GetVarint(request, &off, &seq)) {
        PutStatus(&reply, Status::InvalidArgument("malformed wait"));
        return reply;
      }
      if (options_.role == Role::kPrimary) {
        PutStatus(&reply, Status::OK());  // the primary is never stale
      } else {
        PutStatus(&reply,
                  secondary_->WaitForSeq(seq, options_.read_block_timeout)
                      ? Status::OK()
                      : Status::TimedOut("secondary lagging"));
      }
      return reply;
    }
    case kOpStats: {
      PutStatus(&reply, Status::OK());
      if (options_.role == Role::kPrimary) {
        replication::PutVarint(&reply, kRolePrimary);
        replication::PutVarint(&reply, db_.LatestCommitTs());
      } else {
        replication::PutVarint(&reply, kRoleSecondary);
        replication::PutVarint(&reply, secondary_->applied_seq());
      }
      replication::PutVarint(&reply, db_.LatestCommitTs());
      return reply;
    }
    default:
      PutStatus(&reply, Status::InvalidArgument("unknown op"));
      return reply;
  }
}

}  // namespace system
}  // namespace lazysi
