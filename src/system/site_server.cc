#include "system/site_server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/logging.h"
#include "replication/tcp_link.h"
#include "system/wire_api.h"

namespace lazysi {
namespace system {

namespace {

using namespace wire_api;

engine::DatabaseOptions DbOptionsFor(const SiteServer::Options& options) {
  engine::DatabaseOptions db;
  db.site_id = options.site_id;
  db.name = options.role == SiteServer::Role::kPrimary
                ? "primary"
                : "secondary-" + std::to_string(options.site_id);
  return db;
}

}  // namespace

SiteServer::SiteServer(Options options)
    : options_(std::move(options)), db_(DbOptionsFor(options_)) {
  if (options_.max_pending_requests == 0) options_.max_pending_requests = 1;
}

SiteServer::~SiteServer() { Stop(); }

std::uint16_t SiteServer::repl_port() const {
  return repl_listener_ ? repl_listener_->port() : 0;
}

Status SiteServer::Start() {
  if (started_) return Status::FailedPrecondition("site server started twice");
  started_ = true;
  // One reactor for the whole site: the replication endpoint and every
  // client connection register here, so the process's I/O thread count does
  // not grow with either fleet size or client count.
  loop_ = std::make_unique<net::EventLoop>();
  loop_->Start();

  if (options_.role == Role::kPrimary) {
    // Durable primary: restore the database from the data directory before
    // the propagator exists, then seed the propagator at the truncated log's
    // base — it re-consumes the restored suffix, regenerating the exact
    // stream numbering the pre-restart process used, so a reconnecting
    // secondary's HELLO { expected_seq } resyncs at a sync point at or below
    // its position and dedups the overlap.
    std::uint64_t base_lsn = 0;
    std::uint64_t base_seq = 0;
    if (!options_.data_dir.empty()) {
      wal::DurableLog::Options lopts;
      if (!wal::ParseFsyncMode(options_.fsync_mode, &lopts.fsync_mode)) {
        return Status::InvalidArgument("unknown fsync mode '" +
                                       options_.fsync_mode + "'");
      }
      lopts.group_flush_interval = options_.group_flush_interval;
      lopts.max_group_bytes = options_.max_group_bytes;
      auto state = engine::OpenDataDir(&db_, options_.data_dir, lopts);
      if (!state.ok()) return state.status();
      durable_log_ = std::move(state->durable);
      restore_report_ = state->report;
      base_lsn = state->base_lsn;
      base_seq = state->base_record_seq;
      if (state->had_state) {
        LAZYSI_INFO("primary restored from '" << options_.data_dir << "': "
                    << restore_report_.records_replayed << " records, "
                    << restore_report_.commits_applied << " commits, "
                    << restore_report_.unresolved_aborted
                    << " unresolved aborted, visible ts "
                    << restore_report_.restored_visible);
      }
    }
    replication::PropagatorOptions popts;
    if (!options_.data_dir.empty()) {
      // Durability read barrier: replication stays behind the flushed-LSN
      // watermark, so no record reaches a secondary before it reaches disk.
      popts.read_limit = [this]() -> std::size_t {
        wal::DurableLog* durable = db_.durable();
        return durable != nullptr
                   ? static_cast<std::size_t>(durable->flushed_end())
                   : SIZE_MAX;
      };
    }
    primary_ = std::make_unique<replication::Primary>(&db_, popts);
    if (durable_log_) {
      primary_->propagator()->SeedForRecovery(base_lsn, base_seq);
    }
    replication::ReplicationListener::Options lo;
    lo.host = options_.host;
    lo.port = options_.repl_port;
    lo.loop = loop_.get();
    lo.batching = options_.repl_batching;
    lo.max_batch_records = options_.max_batch_records;
    lo.max_batch_bytes = options_.max_batch_bytes;
    lo.batch_flush_interval = options_.batch_flush_interval;
    lo.max_output_bytes = options_.max_output_bytes;
    repl_listener_ = std::make_unique<replication::ReplicationListener>(
        primary_->propagator(), lo);
    LAZYSI_RETURN_NOT_OK(repl_listener_->Start());
    primary_->Start();
    if (durable_log_) {
      engine::Checkpointer::Options copts;
      copts.data_dir = options_.data_dir;
      copts.interval = options_.checkpoint_interval;
      // Truncation floor: never beyond what the propagator has consumed,
      // and held back by the least-acked connected secondary (its next
      // resync replays from a sync point at or below its ack).
      copts.log_floor = [this] {
        return std::min<std::uint64_t>(primary_->propagator()->position(),
                                       repl_listener_->MinAckFloor());
      };
      checkpointer_ = std::make_unique<engine::Checkpointer>(
          &db_, durable_log_.get(), copts);
      checkpointer_->Start();
    }
  } else {
    secondary_ = std::make_unique<replication::Secondary>(&db_);
    replication::ReplicationReceiver::Options ro;
    ro.primary_host = options_.primary_host;
    ro.primary_port = options_.primary_repl_port;
    ro.loop = loop_.get();
    repl_receiver_ = std::make_unique<replication::ReplicationReceiver>(
        secondary_->update_queue(), ro);
    secondary_->Start();
    repl_receiver_->Start();
  }

  client_listen_fd_ =
      replication::ListenOn(options_.host, options_.client_port,
                            &client_port_);
  if (client_listen_fd_ < 0) {
    return Status::Unavailable("site server: cannot bind client port on " +
                               options_.host);
  }
  replication::SetNonBlocking(client_listen_fd_);
  loop_->RunInLoop([this] {
    loop_->AddFd(client_listen_fd_, EPOLLIN,
                 [this](std::uint32_t) { OnClientAcceptable(); });
  });

  const std::size_t workers = std::max<std::size_t>(1, options_.worker_threads);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] {
      while (auto task = work_q_.Pop()) (*task)();
    });
  }
  return Status::OK();
}

void SiteServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (!loop_) return;
  // Stop accepting and sever every client connection on the loop. Each
  // close fires OnClientClosed inline here, which queues one final pump
  // task per connection (aborting its in-flight transaction) — all before
  // this barrier returns, so closing the work queue next loses nothing.
  loop_->PostAndWait([this] {
    if (client_listen_fd_ >= 0) {
      loop_->RemoveFd(client_listen_fd_);
      ::close(client_listen_fd_);
      client_listen_fd_ = -1;
    }
    std::vector<std::shared_ptr<ClientConn>> conns;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns = conns_;
    }
    for (auto& conn : conns) conn->nc->Close();
  });
  work_q_.Close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  if (repl_receiver_) repl_receiver_->Stop();
  if (secondary_) secondary_->Stop();
  if (checkpointer_) checkpointer_->Stop();
  if (repl_listener_) repl_listener_->Stop();
  if (primary_) primary_->Stop();
  if (durable_log_) durable_log_->Close();
  loop_->Stop();
}

SiteServer::WireStats SiteServer::wire_stats() const {
  WireStats wire;
  if (repl_listener_) {
    const auto stats = repl_listener_->stats();
    wire.frames = stats.frames_sent;
    wire.batch_frames = stats.batch_frames_sent;
    wire.records = stats.records_streamed;
    wire.bytes = stats.bytes_sent;
    wire.writev_calls = stats.writev_calls;
    wire.flushes = stats.flushes;
    wire.backpressure_stalls = stats.backpressure_stalls;
    wire.connections = stats.connections_accepted;
  } else if (repl_receiver_) {
    const auto stats = repl_receiver_->stats();
    wire.frames = stats.frames_received;
    wire.batch_frames = stats.batch_frames_received;
    wire.records = stats.records_delivered;
    wire.bytes = stats.bytes_received;
    wire.connections = stats.reconnects;
  }
  return wire;
}

void SiteServer::OnClientAcceptable() {
  for (;;) {
    int fd;
    do {
      fd = ::accept(client_listen_fd_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return;  // EAGAIN: drained the backlog
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    replication::SetTcpNoDelay(fd);
    auto conn = std::make_shared<ClientConn>();
    std::weak_ptr<ClientConn> weak = conn;
    net::Connection::Callbacks cbs;
    cbs.on_bytes = [this, weak](net::Connection&, std::string_view bytes) {
      if (auto conn = weak.lock()) OnClientBytes(conn, bytes);
    };
    cbs.on_close = [this, weak](net::Connection&) {
      if (auto conn = weak.lock()) OnClientClosed(conn);
    };
    conn->nc = net::Connection::Adopt(loop_.get(), fd,
                                      net::Connection::Options{}, cbs);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
  }
}

void SiteServer::OnClientBytes(const std::shared_ptr<ClientConn>& conn,
                               std::string_view bytes) {
  if (!conn->framer.Feed(bytes)) {
    conn->nc->Close();
    return;
  }
  bool added = false;
  bool pause = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (auto frame = conn->framer.Next()) {
      conn->pending.push_back(std::move(*frame));
      added = true;
    }
    // Read-side backpressure: a client pipelining faster than the worker
    // pool drains gets its reads parked (TCP then throttles it) instead of
    // growing `pending` without bound. PumpClient re-arms at half the cap.
    if (!conn->read_paused &&
        conn->pending.size() >= options_.max_pending_requests) {
      conn->read_paused = true;
      pause = true;
    }
  }
  if (pause) {
    read_pauses_.fetch_add(1, std::memory_order_relaxed);
    conn->nc->PauseReads(true);
  }
  if (conn->framer.poisoned()) {
    conn->nc->Close();
    // Fall through: frames decoded before the poison still get answered.
  }
  if (!added) return;
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->running) {
      conn->running = true;
      schedule = true;
    }
  }
  if (schedule) work_q_.Push([this, conn] { PumpClient(conn); });
}

void SiteServer::OnClientClosed(const std::shared_ptr<ClientConn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end(); ++it) {
      if (it->get() == conn.get()) {
        conns_.erase(it);
        break;
      }
    }
  }
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
    if (!conn->running) {
      conn->running = true;
      schedule = true;
    }
  }
  // One final pump aborts the in-flight transaction once the queue drains
  // (SI: nothing the transaction wrote was installed).
  if (schedule) work_q_.Push([this, conn] { PumpClient(conn); });
}

void SiteServer::PumpClient(const std::shared_ptr<ClientConn>& conn) {
  for (;;) {
    std::string request;
    bool have = false;
    bool resume = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->pending.empty()) {
        request = std::move(conn->pending.front());
        conn->pending.pop_front();
        have = true;
        if (conn->read_paused &&
            conn->pending.size() <= options_.max_pending_requests / 2) {
          conn->read_paused = false;
          resume = true;
        }
      } else if (!conn->closed) {
        conn->running = false;
        return;
      }
    }
    if (resume) conn->nc->PauseReads(false);
    if (!have) {
      // Closed and drained: connection gone mid-transaction, abandon it.
      if (conn->txn) {
        conn->txn->Abort();
        conn->txn.reset();
      }
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->running = false;
      return;
    }
    std::string wire;
    replication::AppendTcpFrame(&wire, HandleRequest(request, &conn->txn));
    conn->nc->Write(std::move(wire));
  }
}

std::string SiteServer::HandleRequest(
    const std::string& request, std::unique_ptr<txn::Transaction>* txn) {
  std::string reply;
  if (request.empty()) {
    PutStatus(&reply, Status::InvalidArgument("empty request"));
    return reply;
  }
  const char op = request[0];
  std::size_t off = 1;
  switch (op) {
    case kOpBegin: {
      std::uint64_t min_seq = 0;
      off = 2;
      if (request.size() < 2 ||
          !replication::GetVarint(request, &off, &min_seq)) {
        PutStatus(&reply, Status::InvalidArgument("malformed begin"));
        return reply;
      }
      const bool read_only = request[1] != 0;
      if (*txn) {
        PutStatus(&reply,
                  Status::FailedPrecondition("transaction already open"));
        return reply;
      }
      if (options_.role == Role::kSecondary) {
        if (!read_only) {
          // Lazy master: all update transactions execute at the primary.
          PutStatus(&reply, Status::FailedPrecondition(
                                "updates execute at the primary"));
          return reply;
        }
        // ALG-STRONG-SESSION-SI blocking rule: do not start while
        // seq(c) > seq(DBsec).
        if (min_seq > 0 &&
            !secondary_->WaitForSeq(min_seq, options_.read_block_timeout)) {
          PutStatus(&reply,
                    Status::TimedOut("secondary lagging behind session"));
          return reply;
        }
        *txn = db_.Begin(/*read_only=*/true);
        PutStatus(&reply, Status::OK());
        replication::PutVarint(
            &reply, secondary_->PrimaryPrefixAtLocal((*txn)->snapshot_ts()));
      } else {
        *txn = db_.Begin(read_only);
        PutStatus(&reply, Status::OK());
        // Primary snapshots are already in primary timestamp coordinates.
        replication::PutVarint(&reply, (*txn)->snapshot_ts());
      }
      return reply;
    }
    case kOpGet: {
      std::string key;
      if (!GetString(request, &off, &key)) {
        PutStatus(&reply, Status::InvalidArgument("malformed get"));
        return reply;
      }
      if (!*txn) {
        PutStatus(&reply, Status::FailedPrecondition("no open transaction"));
        return reply;
      }
      auto value = (*txn)->Get(key);
      PutStatus(&reply, value.ok() ? Status::OK() : value.status());
      if (value.ok()) PutString(&reply, *value);
      return reply;
    }
    case kOpPut: {
      std::string key;
      std::string value;
      if (!GetString(request, &off, &key) ||
          !GetString(request, &off, &value)) {
        PutStatus(&reply, Status::InvalidArgument("malformed put"));
        return reply;
      }
      PutStatus(&reply, *txn ? (*txn)->Put(key, std::move(value))
                             : Status::FailedPrecondition(
                                   "no open transaction"));
      return reply;
    }
    case kOpDelete: {
      std::string key;
      if (!GetString(request, &off, &key)) {
        PutStatus(&reply, Status::InvalidArgument("malformed delete"));
        return reply;
      }
      PutStatus(&reply, *txn ? (*txn)->Delete(key)
                             : Status::FailedPrecondition(
                                   "no open transaction"));
      return reply;
    }
    case kOpScan: {
      std::string begin;
      std::string end;
      if (!GetString(request, &off, &begin) ||
          !GetString(request, &off, &end)) {
        PutStatus(&reply, Status::InvalidArgument("malformed scan"));
        return reply;
      }
      if (!*txn) {
        PutStatus(&reply, Status::FailedPrecondition("no open transaction"));
        return reply;
      }
      auto rows = (*txn)->Scan(begin, end);
      PutStatus(&reply, rows.ok() ? Status::OK() : rows.status());
      if (rows.ok()) {
        replication::PutVarint(&reply, rows->size());
        for (const auto& [key, value] : *rows) {
          PutString(&reply, key);
          PutString(&reply, value);
        }
      }
      return reply;
    }
    case kOpCommit: {
      if (!*txn) {
        PutStatus(&reply, Status::FailedPrecondition("no open transaction"));
        return reply;
      }
      const Status status = (*txn)->Commit();
      // commit_seq in primary coordinates: the session's new seq(c) after an
      // update commit. Read-only commits report 0 (seq(c) unchanged).
      const Timestamp seq =
          status.ok() && !(*txn)->read_only() ? (*txn)->commit_ts() : 0;
      txn->reset();
      PutStatus(&reply, status);
      if (status.ok()) replication::PutVarint(&reply, seq);
      return reply;
    }
    case kOpAbort: {
      if (*txn) (*txn)->Abort();
      txn->reset();
      PutStatus(&reply, Status::OK());
      return reply;
    }
    case kOpWaitSeq: {
      std::uint64_t seq = 0;
      if (!replication::GetVarint(request, &off, &seq)) {
        PutStatus(&reply, Status::InvalidArgument("malformed wait"));
        return reply;
      }
      if (options_.role == Role::kPrimary) {
        PutStatus(&reply, Status::OK());  // the primary is never stale
      } else {
        PutStatus(&reply,
                  secondary_->WaitForSeq(seq, options_.read_block_timeout)
                      ? Status::OK()
                      : Status::TimedOut("secondary lagging"));
      }
      return reply;
    }
    case kOpStats: {
      PutStatus(&reply, Status::OK());
      if (options_.role == Role::kPrimary) {
        replication::PutVarint(&reply, kRolePrimary);
        replication::PutVarint(&reply, db_.LatestCommitTs());
      } else {
        replication::PutVarint(&reply, kRoleSecondary);
        replication::PutVarint(&reply, secondary_->applied_seq());
      }
      replication::PutVarint(&reply, db_.LatestCommitTs());
      // Order-independent hash of the committed state, for cross-site and
      // cross-restart equality checks.
      replication::PutVarint(&reply, db_.ContentHash());
      // Replication-wire counters ride along with the hash: frames,
      // batch frames, records, bytes, writev calls, full-drain flushes,
      // backpressure stalls, connections/reconnects (wire_api.h).
      const WireStats wire = wire_stats();
      replication::PutVarint(&reply, wire.frames);
      replication::PutVarint(&reply, wire.batch_frames);
      replication::PutVarint(&reply, wire.records);
      replication::PutVarint(&reply, wire.bytes);
      replication::PutVarint(&reply, wire.writev_calls);
      replication::PutVarint(&reply, wire.flushes);
      replication::PutVarint(&reply, wire.backpressure_stalls);
      replication::PutVarint(&reply, wire.connections);
      return reply;
    }
    default:
      PutStatus(&reply, Status::InvalidArgument("unknown op"));
      return reply;
  }
}

}  // namespace system
}  // namespace lazysi
