#ifndef LAZYSI_SYSTEM_SITE_SERVER_H_
#define LAZYSI_SYSTEM_SITE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/status.h"
#include "engine/checkpointer.h"
#include "engine/database.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "replication/framed_socket.h"
#include "replication/primary.h"
#include "replication/secondary.h"
#include "replication/tcp_replication.h"

namespace lazysi {
namespace system {

/// One site of the lazy-master architecture as a network server: a primary
/// (database + propagator + replication listener) or a secondary (database +
/// refresh machinery + replication receiver dialing the primary), each also
/// serving the client wire API (wire_api.h) on its own port. This is the
/// process-per-site deployment shape of Figure 1 — lazysi_server wraps one
/// of these per process, and scripts/run_cluster.sh starts a fleet.
///
/// All of the site's sockets — the replication stream and every client
/// connection — are registered on one shared net::EventLoop; requests are
/// executed by a small fixed worker pool (client begins may legitimately
/// block on the freshness rule, so they cannot run on the loop thread). The
/// process's I/O thread count is therefore O(1) in the number of
/// connections: loop + workers + the replication attach worker, regardless
/// of how many clients or secondaries attach.
class SiteServer {
 public:
  enum class Role { kPrimary, kSecondary };

  struct Options {
    Role role = Role::kPrimary;
    SiteId site_id = kPrimarySiteId;
    std::string host = "127.0.0.1";
    /// Client wire-API port; 0 = ephemeral (see client_port()).
    std::uint16_t client_port = 0;
    /// Primary only: replication stream port; 0 = ephemeral (repl_port()).
    std::uint16_t repl_port = 0;
    /// Secondary only: where the primary's replication listener lives.
    std::string primary_host = "127.0.0.1";
    std::uint16_t primary_repl_port = 0;
    /// Bound on the ALG-STRONG-SESSION-SI begin block (Section 4).
    std::chrono::milliseconds read_block_timeout{10000};
    /// Primary only: data directory for the durable commit log + periodic
    /// checkpoints. Empty = in-memory only (acks never touch disk). When
    /// set, Start() restores the database from the directory's checkpoint +
    /// log suffix, seeds the propagator at the truncated log's base so
    /// reconnecting secondaries can resync by record seq, and gates every
    /// commit ack on the flushed-LSN watermark.
    std::string data_dir;
    /// "always" | "group" | "never" (DurableLog::FsyncMode).
    std::string fsync_mode = "group";
    std::chrono::microseconds group_flush_interval{0};
    std::size_t max_group_bytes = 1 << 20;
    /// Checkpoint-and-truncate cadence; 0 = no background checkpoints.
    std::chrono::milliseconds checkpoint_interval{0};
    /// Request-execution pool width. A worker is held for the duration of
    /// one request, including a begin/wait blocked on the freshness rule,
    /// so this bounds the number of concurrently *blocked* clients, not
    /// just concurrently computing ones.
    std::size_t worker_threads = 4;
    /// Propagation-wire batching knobs (primary only; see
    /// ReplicationListener::Options).
    bool repl_batching = true;
    std::size_t max_batch_records = 128;
    std::size_t max_batch_bytes = 256 * 1024;
    std::chrono::milliseconds batch_flush_interval{0};
    std::size_t max_output_bytes = 1 << 20;
    /// Per-client bound on queued-but-unserved request frames: at or above
    /// it the server stops reading that connection (EPOLLIN disarmed, TCP
    /// backpressures the client), resuming once the workers drain the queue
    /// to half — the read-side counterpart of max_output_bytes, so a client
    /// pipelining faster than the worker pool cannot buffer unboundedly.
    std::size_t max_pending_requests = 256;
  };

  /// Role-neutral wire counters of the site's replication endpoint, shipped
  /// in the kOpStats reply next to the state ContentHash. On a primary they
  /// describe the outbound propagation stream (sent); on a secondary the
  /// inbound one (received).
  struct WireStats {
    std::uint64_t frames = 0;  // DATA+BATCH frames sent / received
    std::uint64_t batch_frames = 0;
    std::uint64_t records = 0;  // streamed / delivered
    std::uint64_t bytes = 0;
    std::uint64_t writev_calls = 0;         // primary flush syscalls
    std::uint64_t flushes = 0;              // full-drain flushes
    std::uint64_t backpressure_stalls = 0;  // primary pump pauses
    std::uint64_t connections = 0;          // accepted / reconnects
  };

  explicit SiteServer(Options options);
  ~SiteServer();

  SiteServer(const SiteServer&) = delete;
  SiteServer& operator=(const SiteServer&) = delete;

  Status Start();
  void Stop();

  std::uint16_t client_port() const { return client_port_; }
  /// Primary only; 0 on secondaries.
  std::uint16_t repl_port() const;

  engine::Database* db() { return &db_; }
  /// Null unless this is a primary with a data_dir.
  wal::DurableLog* durable_log() { return durable_log_.get(); }
  engine::Checkpointer* checkpointer() { return checkpointer_.get(); }
  /// What Start() restored from the data directory.
  const engine::Database::RestoreReport& restore_report() const {
    return restore_report_;
  }
  WireStats wire_stats() const;
  /// How many times a client connection's reads were paused because its
  /// pending-request queue hit Options::max_pending_requests.
  std::uint64_t read_pauses() const {
    return read_pauses_.load(std::memory_order_relaxed);
  }

 private:
  struct ClientConn {
    std::shared_ptr<net::Connection> nc;
    replication::TcpFramer framer;  // loop thread only

    std::mutex mu;
    std::deque<std::string> pending;  // complete request frames, in order
    bool running = false;             // a worker is draining this connection
    bool closed = false;
    bool read_paused = false;  // EPOLLIN disarmed: pending hit the cap

    /// The connection's at-most-one in-flight transaction. Touched only by
    /// the worker currently draining the connection (`running` serializes).
    std::unique_ptr<txn::Transaction> txn;
  };

  void OnClientAcceptable();
  void OnClientBytes(const std::shared_ptr<ClientConn>& conn,
                     std::string_view bytes);
  void OnClientClosed(const std::shared_ptr<ClientConn>& conn);
  /// Worker task: drains the connection's pending requests in order, one
  /// worker at a time per connection; aborts the in-flight transaction once
  /// the connection is closed and drained.
  void PumpClient(const std::shared_ptr<ClientConn>& conn);
  /// Builds the reply frame for one request. `txn` is the connection's
  /// at-most-one in-flight transaction.
  std::string HandleRequest(const std::string& request,
                            std::unique_ptr<txn::Transaction>* txn);

  Options options_;
  engine::Database db_;

  // Exactly one of the two role bundles is populated.
  std::unique_ptr<replication::Primary> primary_;
  std::unique_ptr<replication::ReplicationListener> repl_listener_;
  /// Primary durability (only with Options::data_dir).
  std::unique_ptr<wal::DurableLog> durable_log_;
  std::unique_ptr<engine::Checkpointer> checkpointer_;
  engine::Database::RestoreReport restore_report_;
  std::unique_ptr<replication::Secondary> secondary_;
  std::unique_ptr<replication::ReplicationReceiver> repl_receiver_;

  /// The site's one reactor: replication stream + every client connection.
  std::unique_ptr<net::EventLoop> loop_;
  std::vector<std::thread> workers_;
  BlockingQueue<std::function<void()>> work_q_;

  int client_listen_fd_ = -1;
  std::uint16_t client_port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> read_pauses_{0};
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<ClientConn>> conns_;
};

}  // namespace system
}  // namespace lazysi

#endif  // LAZYSI_SYSTEM_SITE_SERVER_H_
