#ifndef LAZYSI_SYSTEM_SITE_SERVER_H_
#define LAZYSI_SYSTEM_SITE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/checkpointer.h"
#include "engine/database.h"
#include "replication/framed_socket.h"
#include "replication/primary.h"
#include "replication/secondary.h"
#include "replication/tcp_replication.h"

namespace lazysi {
namespace system {

/// One site of the lazy-master architecture as a network server: a primary
/// (database + propagator + replication listener) or a secondary (database +
/// refresh machinery + replication receiver dialing the primary), each also
/// serving the client wire API (wire_api.h) on its own port. This is the
/// process-per-site deployment shape of Figure 1 — lazysi_server wraps one
/// of these per process, and scripts/run_cluster.sh starts a fleet.
class SiteServer {
 public:
  enum class Role { kPrimary, kSecondary };

  struct Options {
    Role role = Role::kPrimary;
    SiteId site_id = kPrimarySiteId;
    std::string host = "127.0.0.1";
    /// Client wire-API port; 0 = ephemeral (see client_port()).
    std::uint16_t client_port = 0;
    /// Primary only: replication stream port; 0 = ephemeral (repl_port()).
    std::uint16_t repl_port = 0;
    /// Secondary only: where the primary's replication listener lives.
    std::string primary_host = "127.0.0.1";
    std::uint16_t primary_repl_port = 0;
    /// Bound on the ALG-STRONG-SESSION-SI begin block (Section 4).
    std::chrono::milliseconds read_block_timeout{10000};
    /// Primary only: data directory for the durable commit log + periodic
    /// checkpoints. Empty = in-memory only (acks never touch disk). When
    /// set, Start() restores the database from the directory's checkpoint +
    /// log suffix, seeds the propagator at the truncated log's base so
    /// reconnecting secondaries can resync by record seq, and gates every
    /// commit ack on the flushed-LSN watermark.
    std::string data_dir;
    /// "always" | "group" | "never" (DurableLog::FsyncMode).
    std::string fsync_mode = "group";
    std::chrono::microseconds group_flush_interval{0};
    std::size_t max_group_bytes = 1 << 20;
    /// Checkpoint-and-truncate cadence; 0 = no background checkpoints.
    std::chrono::milliseconds checkpoint_interval{0};
  };

  explicit SiteServer(Options options);
  ~SiteServer();

  SiteServer(const SiteServer&) = delete;
  SiteServer& operator=(const SiteServer&) = delete;

  Status Start();
  void Stop();

  std::uint16_t client_port() const { return client_port_; }
  /// Primary only; 0 on secondaries.
  std::uint16_t repl_port() const;

  engine::Database* db() { return &db_; }
  /// Null unless this is a primary with a data_dir.
  wal::DurableLog* durable_log() { return durable_log_.get(); }
  engine::Checkpointer* checkpointer() { return checkpointer_.get(); }
  /// What Start() restored from the data directory.
  const engine::Database::RestoreReport& restore_report() const {
    return restore_report_;
  }

 private:
  struct ClientConn {
    std::unique_ptr<replication::FramedSocket> sock;
    std::thread thread;
  };

  void AcceptClients();
  void ServeClient(replication::FramedSocket* sock);
  /// Builds the reply frame for one request. `txn` is the connection's
  /// at-most-one in-flight transaction.
  std::string HandleRequest(const std::string& request,
                            std::unique_ptr<txn::Transaction>* txn);

  Options options_;
  engine::Database db_;

  // Exactly one of the two role bundles is populated.
  std::unique_ptr<replication::Primary> primary_;
  std::unique_ptr<replication::ReplicationListener> repl_listener_;
  /// Primary durability (only with Options::data_dir).
  std::unique_ptr<wal::DurableLog> durable_log_;
  std::unique_ptr<engine::Checkpointer> checkpointer_;
  engine::Database::RestoreReport restore_report_;
  std::unique_ptr<replication::Secondary> secondary_;
  std::unique_ptr<replication::ReplicationReceiver> repl_receiver_;

  int client_listen_fd_ = -1;
  std::uint16_t client_port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<ClientConn>> conns_;
};

}  // namespace system
}  // namespace lazysi

#endif  // LAZYSI_SYSTEM_SITE_SERVER_H_
