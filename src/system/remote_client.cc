#include "system/remote_client.h"

#include <thread>

#include "common/backoff.h"
#include "system/wire_api.h"

namespace lazysi {
namespace system {

using namespace wire_api;

Status RemoteSite::Connect(const std::string& host, std::uint16_t port,
                           const ConnectOptions& options) {
  options_ = options;
  ExponentialBackoff backoff(options_.backoff_initial, options_.backoff_max);
  const int attempts = options_.max_attempts > 0 ? options_.max_attempts : 1;
  for (int attempt = 0;; ++attempt) {
    const int fd = replication::DialTcp(host, port, options_.connect_timeout);
    if (fd >= 0) {
      sock_ = std::make_unique<replication::FramedSocket>(fd);
      sock_->set_recv_timeout(options_.op_timeout);
      return Status::OK();
    }
    if (attempt + 1 >= attempts) break;
    std::this_thread::sleep_for(
        Jittered(backoff.Next(), options_.jitter, &rng_));
  }
  return Status::Unavailable("cannot reach site at " + host + ":" +
                             std::to_string(port) + " after " +
                             std::to_string(attempts) + " attempts");
}

Status RemoteSite::RoundTrip(const std::string& request, std::string* reply,
                             std::size_t* offset) {
  if (!connected()) return Status::Unavailable("not connected");
  if (!sock_->Send(request)) {
    sock_.reset();
    return Status::Unavailable("site connection lost on send");
  }
  auto frame = sock_->Recv();
  if (!frame.has_value()) {
    const bool timed_out = sock_->timed_out();
    sock_.reset();
    return timed_out
               ? Status::TimedOut("site reply deadline exceeded")
               : Status::Unavailable("site connection lost on receive");
  }
  *reply = std::move(*frame);
  *offset = 0;
  Status status;
  if (!GetStatus(*reply, offset, &status)) {
    sock_.reset();
    return Status::Internal("malformed reply from site");
  }
  return status;
}

Result<Timestamp> RemoteSite::Begin(bool read_only, Timestamp min_seq) {
  std::string request(1, kOpBegin);
  request.push_back(read_only ? 1 : 0);
  replication::PutVarint(&request, min_seq);
  std::string reply;
  std::size_t off = 0;
  LAZYSI_RETURN_NOT_OK(RoundTrip(request, &reply, &off));
  std::uint64_t prefix = 0;
  if (!replication::GetVarint(reply, &off, &prefix)) {
    return Status::Internal("malformed begin reply");
  }
  return static_cast<Timestamp>(prefix);
}

Result<std::string> RemoteSite::Get(const std::string& key) {
  std::string request(1, kOpGet);
  PutString(&request, key);
  std::string reply;
  std::size_t off = 0;
  LAZYSI_RETURN_NOT_OK(RoundTrip(request, &reply, &off));
  std::string value;
  if (!GetString(reply, &off, &value)) {
    return Status::Internal("malformed get reply");
  }
  return value;
}

Status RemoteSite::Put(const std::string& key, const std::string& value) {
  std::string request(1, kOpPut);
  PutString(&request, key);
  PutString(&request, value);
  std::string reply;
  std::size_t off = 0;
  return RoundTrip(request, &reply, &off);
}

Status RemoteSite::Delete(const std::string& key) {
  std::string request(1, kOpDelete);
  PutString(&request, key);
  std::string reply;
  std::size_t off = 0;
  return RoundTrip(request, &reply, &off);
}

Result<std::vector<std::pair<std::string, std::string>>> RemoteSite::Scan(
    const std::string& begin, const std::string& end) {
  std::string request(1, kOpScan);
  PutString(&request, begin);
  PutString(&request, end);
  std::string reply;
  std::size_t off = 0;
  LAZYSI_RETURN_NOT_OK(RoundTrip(request, &reply, &off));
  std::uint64_t n = 0;
  if (!replication::GetVarint(reply, &off, &n)) {
    return Status::Internal("malformed scan reply");
  }
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key;
    std::string value;
    if (!GetString(reply, &off, &key) || !GetString(reply, &off, &value)) {
      return Status::Internal("malformed scan reply");
    }
    rows.emplace_back(std::move(key), std::move(value));
  }
  return rows;
}

Result<Timestamp> RemoteSite::Commit() {
  std::string reply;
  std::size_t off = 0;
  LAZYSI_RETURN_NOT_OK(RoundTrip(std::string(1, kOpCommit), &reply, &off));
  std::uint64_t seq = 0;
  if (!replication::GetVarint(reply, &off, &seq)) {
    return Status::Internal("malformed commit reply");
  }
  return static_cast<Timestamp>(seq);
}

Status RemoteSite::Abort() {
  std::string reply;
  std::size_t off = 0;
  return RoundTrip(std::string(1, kOpAbort), &reply, &off);
}

Status RemoteSite::WaitSeq(Timestamp seq) {
  std::string request(1, kOpWaitSeq);
  replication::PutVarint(&request, seq);
  std::string reply;
  std::size_t off = 0;
  return RoundTrip(request, &reply, &off);
}

Result<RemoteSite::SiteStats> RemoteSite::Stats() {
  std::string reply;
  std::size_t off = 0;
  LAZYSI_RETURN_NOT_OK(RoundTrip(std::string(1, kOpStats), &reply, &off));
  SiteStats stats;
  std::uint64_t applied = 0;
  std::uint64_t latest = 0;
  if (!replication::GetVarint(reply, &off, &stats.role) ||
      !replication::GetVarint(reply, &off, &applied) ||
      !replication::GetVarint(reply, &off, &latest) ||
      !replication::GetVarint(reply, &off, &stats.content_hash) ||
      !replication::GetVarint(reply, &off, &stats.wire_frames) ||
      !replication::GetVarint(reply, &off, &stats.wire_batch_frames) ||
      !replication::GetVarint(reply, &off, &stats.wire_records) ||
      !replication::GetVarint(reply, &off, &stats.wire_bytes) ||
      !replication::GetVarint(reply, &off, &stats.wire_writev_calls) ||
      !replication::GetVarint(reply, &off, &stats.wire_flushes) ||
      !replication::GetVarint(reply, &off, &stats.wire_backpressure_stalls) ||
      !replication::GetVarint(reply, &off, &stats.wire_connections)) {
    return Status::Internal("malformed stats reply");
  }
  stats.applied_seq = static_cast<Timestamp>(applied);
  stats.latest_commit_ts = static_cast<Timestamp>(latest);
  return stats;
}

}  // namespace system
}  // namespace lazysi
