#ifndef LAZYSI_SYSTEM_REPLICATED_SYSTEM_H_
#define LAZYSI_SYSTEM_REPLICATED_SYSTEM_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/checkpointer.h"
#include "engine/database.h"
#include "history/recorder.h"
#include "replication/byte_link.h"
#include "replication/chaos_link.h"
#include "replication/partition_map.h"
#include "replication/primary.h"
#include "replication/reliable_channel.h"
#include "replication/secondary.h"
#include "replication/transport.h"
#include "session/session.h"

namespace lazysi {
namespace system {

struct SystemConfig {
  std::size_t num_secondaries = 1;
  /// Which global guarantee client transactions get (Section 6's three
  /// algorithms).
  session::Guarantee guarantee = session::Guarantee::kStrongSessionSI;
  /// Applicator pool size at each secondary (Section 3.3).
  std::size_t applicator_threads = 4;
  /// Refresh engine at each secondary: true (default) uses the direct-apply
  /// engine (pre-allocated local commit timestamps + group installs into the
  /// store, visibility via the commit watermark); false uses the legacy
  /// transactional refresh path, kept for differential testing.
  bool direct_apply_refresh = true;
  /// Decode-pool size at each secondary's direct-apply engine. > 0 (the
  /// default) selects the parallel replay pipeline (decode pool -> batched
  /// ordered timestamp allocation -> key-disjoint concurrent group-apply);
  /// 0 selects the serial single-refresher direct path. Ignored when
  /// direct_apply_refresh is false.
  std::size_t decode_threads = 2;
  /// 0 = continuous propagation; > 0 models the paper's propagation_delay.
  std::chrono::milliseconds propagation_batch_interval{0};
  /// Per-record network latency on the primary -> secondary path (a
  /// LatencyChannel per secondary); models WAN replicas in the real system.
  std::chrono::milliseconds network_latency{0};
  /// Uniform extra network delay in [0, jitter]; FIFO order is preserved.
  std::chrono::milliseconds network_jitter{0};
  /// How long a blocked read-only transaction waits for seq(DBsec) to catch
  /// up before giving up with TimedOut.
  std::chrono::milliseconds read_block_timeout{10000};
  /// Record every committed transaction for offline SI checking.
  bool record_history = false;
  /// Fault injection on the primary -> secondary transport. Any nonzero rate
  /// routes each secondary's records through a ReliableChannel over a
  /// ChaosLink (the wire codec then runs on the hot path) instead of handing
  /// them between threads directly; the channel restores Section 3.2's
  /// reliable-FIFO contract on top of the injected faults.
  replication::FaultProfile transport_faults;
  /// Chaos RNG seed; secondary i draws from transport_seed + i, so a run
  /// with a fixed seed replays its exact fault schedule.
  std::uint64_t transport_seed = 42;
  /// Ship each secondary's records over real loopback TCP sockets (TcpLink)
  /// instead of in-process queues: the ReliableChannel path activates even
  /// with an all-zero fault profile, and any configured transport_faults are
  /// injected before the frames hit the socket (same seeded schedule as the
  /// chaos link draw-for-draw).
  bool transport_tcp = false;
  /// ReliableChannel tuning (used only when transport_faults.any()).
  std::size_t transport_ack_interval = 32;
  std::chrono::milliseconds transport_backoff_initial{2};
  std::chrono::milliseconds transport_backoff_max{100};
  int transport_retransmit_cap = 8;
  /// Route each read-only transaction to a round-robin secondary instead of
  /// the session's home secondary. Exposes the strong-session-SI vs PCSI
  /// difference (Section 7): under PCSI a roaming session's snapshots may
  /// regress between reads; under strong session SI they cannot.
  bool roam_reads = false;
  /// Freshness-aware read routing (takes precedence over roam_reads): each
  /// read-only transaction goes to the least-loaded live secondary whose
  /// seq(DBsec) already covers the session's seq(c), so the blocking rule of
  /// ALG-STRONG-SESSION-SI is satisfied *by placement* and the read starts
  /// immediately. If no secondary is fresh enough the read falls back to the
  /// freshest one and blocks there (counted in ro_blocked_on_freshness).
  /// Under weak SI seq(c) never gates reads, so this degrades to pure
  /// least-loaded balancing.
  bool freshness_routing = false;
  /// Background version-GC cadence: > 0 runs GarbageCollectAll on a
  /// maintenance thread every interval while the system is started. 0 (the
  /// default) disables it — tests that assert exact chain shapes or record
  /// history for offline SI checking rely on GC running only when invoked
  /// explicitly (the cadence also skips translation pruning when
  /// record_history is set, since pruning at non-quiesced points makes
  /// primary-coordinate history approximate).
  std::chrono::milliseconds gc_interval{0};
  /// Keep per-commit state-hash chains (Theorem 3.1 assertions).
  bool record_state_chain = true;
  /// Partial replication: number of keyspace partitions. 1 (the default)
  /// keeps full replication. With more partitions, each secondary receives
  /// only the write sets intersecting its assigned partitions; reads of
  /// uncovered keys are served SCAR-style by a covering replica at the
  /// transaction's snapshot timestamp.
  std::size_t num_partitions = 1;
  /// Replicas per partition (round-robin over the fleet). 0 or >= the fleet
  /// size means every secondary covers every partition (full replication).
  /// With >= 2, any single secondary failure leaves every partition covered.
  std::size_t partition_replication = 0;
  /// How keys map to partitions: hash (default) or contiguous ranges.
  replication::PartitionMap::Scheme partition_scheme =
      replication::PartitionMap::Scheme::kHash;
  /// Durable write-ahead log behind the primary's commit path. Requires
  /// data_dir; the primary restores itself from the data directory's
  /// checkpoint + log suffix at construction (fresh secondaries are then
  /// initialized from the restored state), and every commit ack waits for
  /// its log record to reach disk per fsync_mode.
  bool durable_log = false;
  /// Primary data directory: `<data_dir>/wal/*.seg` segments plus
  /// checkpoint-<lsn> and MANIFEST files. Empty = in-memory only.
  std::string data_dir;
  /// Commit durability discipline: "always" (one fdatasync per commit, the
  /// honest baseline), "group" (default; one writer thread batches all
  /// concurrently-committing transactions into one write + fdatasync),
  /// "never" (write-behind, acks do not wait for disk).
  std::string fsync_mode = "group";
  /// Group mode: how long the writer lingers after the first pending record
  /// before flushing, letting more committers pile into the batch. 0 =
  /// flush as soon as the writer wakes (pure concurrency-driven batching).
  std::chrono::microseconds group_flush_interval{0};
  /// Group mode: flush early once this many encoded bytes are pending.
  std::size_t max_group_bytes = 1 << 20;
  /// Checkpoint-and-truncate cadence; 0 = manual only (CheckpointNow via
  /// checkpointer()).
  std::chrono::milliseconds checkpoint_interval{0};
};

class ReplicatedSystem;
class ClientConnection;

/// A client transaction routed through the middleware: read-only
/// transactions run at the client's secondary, update transactions at the
/// primary (Figure 1). Obtained from ClientConnection::BeginRead/BeginUpdate.
class SystemTransaction {
 public:
  ~SystemTransaction();

  SystemTransaction(const SystemTransaction&) = delete;
  SystemTransaction& operator=(const SystemTransaction&) = delete;

  bool read_only() const { return read_only_; }
  /// Primary commit timestamp after a successful update commit.
  Timestamp commit_primary_ts() const { return commit_primary_ts_; }

  Result<std::string> Get(const std::string& key);
  Status Put(const std::string& key, std::string value);
  Status Delete(const std::string& key);
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      const std::string& begin, const std::string& end);

  /// Commits; on update transactions advances seq(c) to commit_p(T)
  /// (ALG-STRONG-SESSION-SI, Section 4) and may fail with WriteConflict
  /// under first-committer-wins.
  Status Commit();
  void Abort();

 private:
  friend class ClientConnection;
  SystemTransaction(ReplicatedSystem* sys,
                    std::shared_ptr<session::Session> session,
                    std::unique_ptr<txn::Transaction> txn,
                    replication::Secondary* secondary, SiteId site,
                    bool read_only, std::uint64_t first_op_seq,
                    Timestamp snapshot_primary);

  void RecordRead(const std::string& key, Timestamp local_version_ts,
                  bool found, bool own_write);
  /// Records an observation already expressed in primary coordinates (the
  /// remote-read path skips local->primary translation).
  void RecordPrimaryRead(const std::string& key, Timestamp primary_ts,
                         bool found);
  /// True when `key` must be served by another secondary: this is a
  /// partition-routed read-only transaction and the home replica does not
  /// cover the key's partition.
  bool RemoteRouted(const std::string& key) const;
  /// SCAR-style cross-partition read: serve `key` from a covering replica
  /// whose applied prefix contains snapshot_primary_; stale replicas are
  /// rejected (counted) and the next one tried rather than blocking on full
  /// freshness. When every covering replica is stale, waits on the freshest
  /// one for just the snapshot prefix (not full freshness) and retries once.
  Result<replication::Secondary::RemoteRead> RemoteReadKey(
      const std::string& key);
  /// Scan counterpart: items of `partition` within [begin, end) at
  /// snapshot_primary_, from a covering replica.
  Result<std::vector<replication::Secondary::RemoteScanItem>>
  RemoteScanPartition(std::size_t partition, const std::string& begin,
                      const std::string& end);

  ReplicatedSystem* sys_;
  std::shared_ptr<session::Session> session_;
  std::unique_ptr<txn::Transaction> txn_;
  replication::Secondary* secondary_;  // nullptr for primary transactions
  SiteId site_;
  bool read_only_;
  Timestamp commit_primary_ts_ = kInvalidTimestamp;
  std::uint64_t first_op_seq_ = 0;
  /// Read-only transactions under a partial partition map: the exact primary
  /// prefix contained in this transaction's local snapshot, computed at
  /// begin. Cross-partition reads are validated against it so every
  /// partition serves the same primary state (read atomicity across
  /// partitions).
  Timestamp snapshot_primary_ = 0;
  /// Largest primary commit timestamp provably contained in this read-only
  /// transaction's snapshot (max over observed versions). Folded into
  /// seq(c) at commit when the guarantee requires read-read monotonicity.
  Timestamp snapshot_floor_ = 0;
  std::vector<history::RecordedRead> recorded_reads_;
  bool finished_ = false;
};

/// A client's connection: bound to one secondary site, owning one session
/// (label + seq(c)). All of the client's transactions flow through here, as
/// in the paper's model where each client submits to a single secondary.
class ClientConnection {
 public:
  /// Begins a read-only transaction at the bound secondary. Under
  /// ALG-STRONG-SESSION-SI / ALG-STRONG-SI this blocks until
  /// seq(DBsec) >= seq(c); TimedOut if the secondary cannot catch up within
  /// the configured timeout, Unavailable if the secondary has failed.
  Result<std::unique_ptr<SystemTransaction>> BeginRead();

  /// Begins an update transaction, forwarded to the primary.
  Result<std::unique_ptr<SystemTransaction>> BeginUpdate();

  /// Runs `body` inside an update transaction, retrying on first-committer-
  /// wins conflicts up to `max_attempts` times. `body` returning non-OK
  /// aborts and propagates that status.
  Status ExecuteUpdate(
      const std::function<Status(SystemTransaction&)>& body,
      int max_attempts = 5);

  /// Runs `body` inside a read-only transaction.
  Status ExecuteRead(const std::function<Status(SystemTransaction&)>& body);

  session::Session* session() { return session_.get(); }
  std::size_t secondary_index() const { return secondary_index_; }

 private:
  friend class ReplicatedSystem;
  ClientConnection(ReplicatedSystem* sys,
                   std::shared_ptr<session::Session> session,
                   std::size_t secondary_index)
      : sys_(sys), session_(std::move(session)),
        secondary_index_(secondary_index) {}

  ReplicatedSystem* sys_;
  std::shared_ptr<session::Session> session_;
  std::size_t secondary_index_;
};

/// The complete lazy-master replicated system of Figure 1: one primary, N
/// secondaries, lazy update propagation, and the configured global
/// transactional guarantee.
class ReplicatedSystem {
 public:
  explicit ReplicatedSystem(SystemConfig config = SystemConfig());
  ~ReplicatedSystem();

  ReplicatedSystem(const ReplicatedSystem&) = delete;
  ReplicatedSystem& operator=(const ReplicatedSystem&) = delete;

  void Start();
  void Stop();

  /// Connects a new client, bound round-robin to a secondary.
  std::unique_ptr<ClientConnection> Connect();
  /// Connects to a specific secondary.
  std::unique_ptr<ClientConnection> ConnectTo(std::size_t secondary_index);

  engine::Database* primary_db() { return &primary_db_; }
  replication::Primary* primary() { return &primary_; }
  std::size_t num_secondaries() const { return secondaries_.size(); }
  replication::Secondary* secondary(std::size_t i);
  engine::Database* secondary_db(std::size_t i);

  const SystemConfig& config() const { return config_; }
  history::Recorder* recorder() { return &recorder_; }
  session::SessionManager* session_manager() { return &sessions_; }

  /// Point-in-time monitoring snapshot of one secondary.
  struct SecondaryStats {
    std::size_t index = 0;
    bool failed = false;
    /// seq(DBsec), in primary commit timestamps.
    Timestamp applied_seq = 0;
    /// primary latest commit ts minus applied_seq (staleness, in
    /// timestamp units; 0 when fully caught up).
    Timestamp lag = 0;
    std::uint64_t refreshed_count = 0;
    std::size_t update_queue_depth = 0;
    /// Freshness-router counters: reads placed here because seq(DBsec)
    /// already covered the session's seq(c), reads sent here as the
    /// freshest-available fallback (which then block), and read-only
    /// transactions currently open (the router's load signal).
    std::uint64_t ro_routed_fresh = 0;
    std::uint64_t ro_blocked_on_freshness = 0;
    std::uint64_t active_reads = 0;
    /// EWMA load estimate the router actually samples (fixed-point x1024;
    /// divide by 1024 for the smoothed active-read count).
    std::uint64_t load_estimate = 0;
    /// Size of the local->primary commit-timestamp translation table
    /// (bounded by GarbageCollectAll's pruning).
    std::size_t translation_count = 0;
    /// Times the ingest stream jumped backwards/forwards relative to the
    /// expected next sequence (resyncs after transport faults; replayed
    /// prefixes are deduplicated, so this counts stream repair events, not
    /// lost updates).
    std::uint64_t stream_discontinuities = 0;
    /// Partial replication: update records the propagator filtered out of
    /// this sink (not covered here), records actually received, their
    /// payload bytes, and cross-partition reads this replica served for
    /// other sites' transactions.
    std::uint64_t records_filtered = 0;
    std::uint64_t updates_received = 0;
    std::uint64_t update_bytes_received = 0;
    std::uint64_t remote_reads_served = 0;
    /// Partitions assigned to this secondary (== num_partitions under full
    /// replication).
    std::size_t covered_partitions = 0;
    /// Direct-apply engine counters: store passes, commits they covered
    /// (avg group size = commits / passes), and the largest single group.
    /// All zero under the legacy engine.
    std::uint64_t group_applies = 0;
    std::uint64_t group_applied_commits = 0;
    std::uint64_t max_group_apply = 0;
    /// Transport-layer counters; all zero on the direct in-process path
    /// (no chaos transport configured).
    std::uint64_t transport_delivered = 0;
    std::uint64_t transport_retransmits = 0;
    std::uint64_t transport_resyncs = 0;
    std::uint64_t transport_crc_rejected = 0;
    std::uint64_t transport_duplicates = 0;
    std::uint64_t link_dropped = 0;
    std::uint64_t link_corrupted = 0;
    std::uint64_t link_disconnects = 0;
    /// Byte-link wire volume: frames/bytes offered to the link toward this
    /// secondary, and what actually arrived (the gap is loss + disconnect
    /// windows; duplicates inflate the delivered side).
    std::uint64_t link_frames_sent = 0;
    std::uint64_t link_frames_delivered = 0;
    std::uint64_t link_bytes_sent = 0;
    std::uint64_t link_bytes_delivered = 0;
  };

  /// Point-in-time monitoring snapshot of the whole system.
  struct SystemStats {
    Timestamp primary_latest_commit_ts = 0;
    std::uint64_t primary_committed = 0;
    std::uint64_t primary_aborted = 0;
    std::uint64_t commits_propagated = 0;
    std::vector<SecondaryStats> secondaries;
    /// Partial replication: per-partition applied floors (min applied_seq
    /// over the partition's live replicas; empty under full replication),
    /// SCAR validation rejects (a covering replica was too stale for the
    /// snapshot and another was tried), and cross-partition reads routed to
    /// a remote replica.
    std::vector<Timestamp> partition_floors;
    std::uint64_t scar_stale_rejects = 0;
    std::uint64_t remote_partition_reads = 0;
    /// Durability counters (all zero without durable_log): fdatasync calls,
    /// records flushed to disk, group sizes (records per flush batch),
    /// checkpoints taken, and log bytes reclaimed by truncation.
    bool durable = false;
    std::uint64_t fsyncs = 0;
    std::uint64_t records_flushed = 0;
    double mean_group_size = 0.0;
    std::uint64_t max_group_size = 0;
    std::uint64_t checkpoint_count = 0;
    std::uint64_t log_bytes_truncated = 0;

    std::string ToString() const;
  };
  SystemStats Stats();

  const replication::PartitionMap& partition_map() const {
    return *partition_map_;
  }

  /// Per-partition applied floors: for each partition, the minimum
  /// applied_seq over its live replicas (0 when a partition currently has no
  /// live replica — nothing below it may be pruned until one recovers).
  std::vector<Timestamp> PartitionFloors();

  /// Version garbage collection across the primary and every live
  /// secondary; each site prunes at its own safe horizon (oldest active
  /// snapshot). Also prunes each secondary's local->primary translation
  /// table below its *partition floor*: the minimum per-partition applied
  /// floor (min applied_seq over each partition's live replicas) across the
  /// partitions the secondary covers. Under full replication every
  /// secondary covers every partition, so this degenerates to the fleet-wide
  /// minimum applied_seq. Every live replica of the covered partitions
  /// already serves state at least that new, so a session floor derived from
  /// a pruned entry could never block or reorder anything — and a partition
  /// with a dead replica holds its floor down until recovery, keeping the
  /// recovering site's translations intact. Returns the total number of
  /// versions reclaimed.
  /// Pruning never affects replication: the propagator ships update
  /// *records* from the log, not store versions. Pass prune_translations =
  /// false to reclaim versions only (the background cadence does this when
  /// history recording is on, because translation pruning at non-quiesced
  /// points makes primary-coordinate history approximate).
  std::size_t GarbageCollectAll(bool prune_translations = true);

  /// Number of background GC passes completed (gc_interval cadence).
  std::uint64_t gc_passes() const {
    return gc_passes_.load(std::memory_order_relaxed);
  }

  /// Durable-log plumbing (null without config.durable_log).
  wal::DurableLog* durable_log() { return durable_log_.get(); }
  engine::Checkpointer* checkpointer() { return checkpointer_.get(); }
  /// What the primary restored from its data directory at construction.
  const engine::Database::RestoreReport& restore_report() const {
    return restore_report_;
  }

  /// Blocks until every live secondary has applied all updates committed at
  /// the primary so far. Returns false on timeout.
  bool WaitForReplication(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

  /// Simulates a crash of secondary `i`: its pipeline stops and its queued
  /// updates and refresh state are lost (Section 3.4's failure model).
  Status FailSecondary(std::size_t i);

  /// Recovers secondary `i` from a fresh primary checkpoint: installs the
  /// checkpoint into a new local database, re-seeds seq(DBsec) via the
  /// dummy-transaction technique of Section 4, replays the missed log
  /// suffix, and rejoins live propagation. The primary must be quiesced (no
  /// in-flight update transactions) when this is called.
  Status RecoverSecondary(std::size_t i);

 private:
  friend class ClientConnection;
  friend class SystemTransaction;

  struct SecondarySite {
    std::unique_ptr<engine::Database> db;
    std::unique_ptr<replication::Secondary> replica;
    /// Present only when the config models network latency.
    std::unique_ptr<replication::LatencyChannel> channel;
    /// Present only when the config injects transport faults or selects the
    /// TCP transport: the propagator feeds `reliable`, which ships encoded
    /// frames across `link` (ChaosLink queues or TcpLink loopback sockets)
    /// into the latency channel (if any) or straight into the update queue.
    std::unique_ptr<replication::ByteLink> link;
    std::unique_ptr<replication::ReliableChannel> reliable;
    std::atomic<bool> failed{false};
  };

  /// Looks up a live secondary site; nullptr when failed.
  SecondarySite* site(std::size_t i);

  /// Freshness-aware read placement: the least-loaded live secondary with
  /// applied_seq >= need, else the freshest live secondary (the read will
  /// block there), else nullptr when every secondary has failed. Bumps the
  /// chosen site's router counter and stores its index in *index_out.
  SecondarySite* RouteRead(Timestamp need, std::size_t* index_out);

  void GcLoop();

  replication::ReliableChannel::Options TransportOptions(
      std::size_t secondary_index) const;

  /// The partition filter secondary `i`'s replication stream runs through
  /// (inactive under full replication).
  replication::SinkFilter FilterFor(std::size_t i) const {
    return replication::SinkFilter{partition_map_, i};
  }

  /// PartitionFloors() body; callers hold sites_mu_ (either mode).
  std::vector<Timestamp> PartitionFloorsLocked();

  /// Minimum LSN any propagation sink may still need for a resync (the
  /// checkpointer's log_floor): under fault transports, the min over live
  /// channels of the sync point at or below their receiver's cumulative
  /// ack; on the direct in-process path, the propagator's position.
  std::uint64_t PropagationFloor();

  SystemConfig config_;
  std::shared_ptr<const replication::PartitionMap> partition_map_;
  engine::Database primary_db_;
  replication::Primary primary_;
  /// Present only with config.durable_log: the on-disk log the primary's
  /// commits are gated on, and the checkpoint-and-truncate driver.
  std::unique_ptr<wal::DurableLog> durable_log_;
  std::unique_ptr<engine::Checkpointer> checkpointer_;
  engine::Database::RestoreReport restore_report_;
  std::shared_mutex sites_mu_;
  std::vector<std::unique_ptr<SecondarySite>> secondaries_;
  session::SessionManager sessions_;
  history::Recorder recorder_;
  std::atomic<std::size_t> next_secondary_{0};
  bool started_ = false;
  /// Cross-partition read counters (partial replication only).
  std::atomic<std::uint64_t> scar_stale_rejects_{0};
  std::atomic<std::uint64_t> remote_partition_reads_{0};

  /// Background GC cadence (gc_interval > 0).
  std::mutex gc_mu_;
  std::condition_variable gc_cv_;
  bool gc_stop_ = false;
  std::atomic<std::uint64_t> gc_passes_{0};
  std::thread gc_thread_;
};

}  // namespace system
}  // namespace lazysi

#endif  // LAZYSI_SYSTEM_REPLICATED_SYSTEM_H_
