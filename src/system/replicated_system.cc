#include "system/replicated_system.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "replication/tcp_link.h"

namespace lazysi {
namespace system {

// ---------------------------------------------------------------------------
// SystemTransaction

SystemTransaction::SystemTransaction(
    ReplicatedSystem* sys, std::shared_ptr<session::Session> session,
    std::unique_ptr<txn::Transaction> txn, replication::Secondary* secondary,
    SiteId site, bool read_only, std::uint64_t first_op_seq,
    Timestamp snapshot_primary)
    : sys_(sys), session_(std::move(session)), txn_(std::move(txn)),
      secondary_(secondary), site_(site), read_only_(read_only),
      first_op_seq_(first_op_seq), snapshot_primary_(snapshot_primary) {
  if (secondary_ != nullptr) secondary_->OnReadStart();
}

SystemTransaction::~SystemTransaction() {
  if (!finished_) Abort();
}

void SystemTransaction::RecordRead(const std::string& key,
                                   Timestamp local_version_ts, bool found,
                                   bool own_write) {
  if (own_write) return;
  Timestamp primary_ts = local_version_ts;
  if (secondary_ != nullptr && found) {
    // Express the observed version in primary-state coordinates.
    primary_ts = secondary_->TranslateLocalToPrimary(local_version_ts);
  }
  RecordPrimaryRead(key, primary_ts, found);
}

void SystemTransaction::RecordPrimaryRead(const std::string& key,
                                          Timestamp primary_ts, bool found) {
  if (found && primary_ts > snapshot_floor_) snapshot_floor_ = primary_ts;
  if (sys_->config().record_history) {
    recorded_reads_.push_back(history::RecordedRead{key, primary_ts, found});
  }
}

bool SystemTransaction::RemoteRouted(const std::string& key) const {
  if (!read_only_ || secondary_ == nullptr) return false;
  const auto& map = sys_->partition_map();
  if (!map.partial()) return false;
  return !map.CoversKey(static_cast<std::size_t>(site_) - 1, key);
}

Result<replication::Secondary::RemoteRead> SystemTransaction::RemoteReadKey(
    const std::string& key) {
  const auto& map = sys_->partition_map();
  const std::size_t partition = map.PartitionOf(key);
  sys_->remote_partition_reads_.fetch_add(1, std::memory_order_relaxed);
  for (int round = 0; round < 2; ++round) {
    replication::Secondary* freshest = nullptr;
    Timestamp freshest_seq = 0;
    for (std::size_t idx : map.Replicas(partition)) {
      auto* site = sys_->site(idx);
      if (site == nullptr) continue;
      replication::Secondary* replica = site->replica.get();
      const Timestamp seq = replica->applied_seq();
      if (seq < snapshot_primary_) {
        // SCAR validation failure: this replica's applied prefix does not
        // yet contain the transaction's snapshot. Reject it and try the
        // next covering replica instead of blocking.
        sys_->scar_stale_rejects_.fetch_add(1, std::memory_order_relaxed);
        if (freshest == nullptr || seq > freshest_seq) {
          freshest = replica;
          freshest_seq = seq;
        }
        continue;
      }
      auto read = replica->ReadAtPrimarySnapshot(key, snapshot_primary_);
      if (read.ok()) return read;
      // Raced with translation pruning or a restart; try the next replica.
    }
    if (round == 0 && freshest != nullptr) {
      // Every covering replica was stale. Wait on the freshest one for just
      // the snapshot prefix — far weaker than full freshness — and retry.
      if (!freshest->WaitForSeq(snapshot_primary_,
                                sys_->config().read_block_timeout)) {
        break;
      }
      continue;
    }
    break;
  }
  return Status::Unavailable(
      "no covering replica could serve the partition at this snapshot");
}

Result<std::vector<replication::Secondary::RemoteScanItem>>
SystemTransaction::RemoteScanPartition(std::size_t partition,
                                       const std::string& begin,
                                       const std::string& end) {
  const auto& map = sys_->partition_map();
  sys_->remote_partition_reads_.fetch_add(1, std::memory_order_relaxed);
  for (int round = 0; round < 2; ++round) {
    replication::Secondary* freshest = nullptr;
    Timestamp freshest_seq = 0;
    for (std::size_t idx : map.Replicas(partition)) {
      auto* site = sys_->site(idx);
      if (site == nullptr) continue;
      replication::Secondary* replica = site->replica.get();
      const Timestamp seq = replica->applied_seq();
      if (seq < snapshot_primary_) {
        sys_->scar_stale_rejects_.fetch_add(1, std::memory_order_relaxed);
        if (freshest == nullptr || seq > freshest_seq) {
          freshest = replica;
          freshest_seq = seq;
        }
        continue;
      }
      auto items =
          replica->ScanAtPrimarySnapshot(begin, end, snapshot_primary_);
      if (!items.ok()) continue;
      // The serving replica may cover several partitions; keep only the one
      // the home replica is missing (the rest are already served locally).
      std::vector<replication::Secondary::RemoteScanItem> kept;
      for (auto& item : *items) {
        if (map.PartitionOf(item.key) == partition) {
          kept.push_back(std::move(item));
        }
      }
      return kept;
    }
    if (round == 0 && freshest != nullptr) {
      if (!freshest->WaitForSeq(snapshot_primary_,
                                sys_->config().read_block_timeout)) {
        break;
      }
      continue;
    }
    break;
  }
  return Status::Unavailable(
      "no covering replica could serve the partition at this snapshot");
}

Result<std::string> SystemTransaction::Get(const std::string& key) {
  if (RemoteRouted(key)) {
    auto remote = RemoteReadKey(key);
    if (!remote.ok()) return remote.status();
    RecordPrimaryRead(key, remote->version_primary_ts, remote->found);
    if (!remote->found) return Status::NotFound();
    return std::move(remote->value);
  }
  const std::size_t before = txn_->reads().size();
  auto result = txn_->Get(key);
  // The underlying transaction appended exactly one observation.
  if (txn_->reads().size() == before + 1) {
    const auto& obs = txn_->reads().back();
    RecordRead(key, obs.version_commit_ts, obs.found, obs.from_own_write);
  }
  return result;
}

Status SystemTransaction::Put(const std::string& key, std::string value) {
  if (read_only_) {
    return Status::InvalidArgument(
        "updates must go through BeginUpdate (read-only transaction)");
  }
  return txn_->Put(key, std::move(value));
}

Status SystemTransaction::Delete(const std::string& key) {
  if (read_only_) {
    return Status::InvalidArgument(
        "updates must go through BeginUpdate (read-only transaction)");
  }
  return txn_->Delete(key);
}

Result<std::vector<std::pair<std::string, std::string>>>
SystemTransaction::Scan(const std::string& begin, const std::string& end) {
  const std::size_t before = txn_->reads().size();
  auto result = txn_->Scan(begin, end);
  if (!result.ok()) return result;
  for (std::size_t i = before; i < txn_->reads().size(); ++i) {
    const auto& obs = txn_->reads()[i];
    RecordRead(obs.key, obs.version_commit_ts, obs.found, obs.from_own_write);
  }
  const auto& map = sys_->partition_map();
  if (!read_only_ || secondary_ == nullptr || !map.partial()) return result;
  const std::size_t home = static_cast<std::size_t>(site_) - 1;
  if (map.Coverage(home).size() == map.num_partitions()) return result;
  // Partition-spanning scan: the local store holds only the home replica's
  // partitions, so fetch each uncovered partition's slice from a covering
  // replica at this transaction's primary snapshot and merge.
  std::vector<std::pair<std::string, std::string>> merged = std::move(*result);
  for (std::size_t p = 0; p < map.num_partitions(); ++p) {
    if (map.Covers(home, p)) continue;
    auto remote = RemoteScanPartition(p, begin, end);
    if (!remote.ok()) return remote.status();
    for (auto& item : *remote) {
      RecordPrimaryRead(item.key, item.version_primary_ts, /*found=*/true);
      merged.emplace_back(std::move(item.key), std::move(item.value));
    }
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

Status SystemTransaction::Commit() {
  if (finished_) return Status::FailedPrecondition("transaction finished");
  Status s = txn_->Commit();
  finished_ = true;
  if (secondary_ != nullptr) secondary_->OnReadFinish();
  if (!s.ok()) return s;
  if (!read_only_) {
    commit_primary_ts_ = txn_->commit_ts();
    // seq(c) := commit_p(T) (Section 4).
    session_->AdvanceSeq(commit_primary_ts_);
  } else if (sys_->session_manager()->ReadsAdvanceSessionSeq()) {
    // Definition 2.2 also orders read-read pairs: fold the snapshot this
    // read provably saw into seq(c) so a later read in the session (possibly
    // at another secondary) can never regress. PCSI skips this (Section 7).
    session_->AdvanceSeq(snapshot_floor_);
  }
  if (sys_->config().record_history) {
    history::TxnRecord record;
    record.label = session_->label();
    record.site = site_;
    record.read_only = read_only_;
    record.first_op_seq = first_op_seq_;
    record.commit_seq = sys_->recorder()->NextEventSeq();
    record.commit_primary_ts = read_only_ ? kInvalidTimestamp
                                          : commit_primary_ts_;
    record.reads = std::move(recorded_reads_);
    record.writes = txn_->write_set().ToVector();
    sys_->recorder()->Record(std::move(record));
  }
  return Status::OK();
}

void SystemTransaction::Abort() {
  if (finished_) return;
  txn_->Abort();
  finished_ = true;
  if (secondary_ != nullptr) secondary_->OnReadFinish();
}

// ---------------------------------------------------------------------------
// ClientConnection

Result<std::unique_ptr<SystemTransaction>> ClientConnection::BeginRead() {
  std::size_t read_index = secondary_index_;
  ReplicatedSystem::SecondarySite* site = nullptr;
  if (sys_->config().freshness_routing) {
    // Freshness-aware placement: pick a secondary whose seq(DBsec) already
    // covers what this session is owed, so the blocking rule below is
    // satisfied on arrival. Guarantees that never gate reads on seq(c)
    // (weak SI) route purely by load.
    const Timestamp need = sys_->session_manager()->ReadsBlockOnSessionSeq()
                               ? session_->seq()
                               : 0;
    site = sys_->RouteRead(need, &read_index);
  } else if (sys_->config().roam_reads) {
    // Roaming mode: each read-only transaction goes to the next *live*
    // secondary round-robin. The session guarantee machinery must then do
    // all the ordering work (Section 7's PCSI-vs-strong-session-SI
    // distinction).
    for (std::size_t attempt = 0; attempt < sys_->num_secondaries();
         ++attempt) {
      read_index =
          sys_->next_secondary_.fetch_add(1, std::memory_order_relaxed) %
          sys_->num_secondaries();
      site = sys_->site(read_index);
      if (site != nullptr) break;
    }
  } else {
    site = sys_->site(read_index);
  }
  if (site == nullptr) {
    return Status::Unavailable("secondary has failed");
  }
  // The transaction's place in the real-time order is its submission point;
  // taken before the blocking wait so the recorded history never demands
  // visibility of commits that arrived only while we were already waiting.
  const std::uint64_t first_op_seq =
      sys_->config().record_history ? sys_->recorder()->NextEventSeq() : 0;
  if (sys_->session_manager()->ReadsBlockOnSessionSeq()) {
    // ALG-STRONG-SESSION-SI blocking rule: a read-only transaction in
    // session c waits while seq(c) > seq(DBsec). Under ALG-STRONG-SI the
    // session is global and may advance while we wait, so re-read it until
    // the predicate is stable.
    for (;;) {
      const Timestamp target = session_->seq();
      if (!site->replica->WaitForSeq(target,
                                     sys_->config().read_block_timeout)) {
        return Status::TimedOut("secondary did not catch up to seq(c)");
      }
      if (session_->seq() == target) break;
    }
  }
  auto txn = site->db->Begin(/*read_only=*/true);
  Timestamp snapshot_primary = 0;
  if (sys_->partition_map().partial()) {
    // Cross-partition reads must observe the same primary prefix this local
    // snapshot contains; compute it once at begin (SCAR-style snapshot
    // timestamp).
    snapshot_primary =
        site->replica->PrimaryPrefixAtLocal(txn->snapshot_ts());
  }
  return std::unique_ptr<SystemTransaction>(new SystemTransaction(
      sys_, session_, std::move(txn), site->replica.get(),
      static_cast<SiteId>(read_index + 1), /*read_only=*/true,
      first_op_seq, snapshot_primary));
}

Result<std::unique_ptr<SystemTransaction>> ClientConnection::BeginUpdate() {
  // Update transactions are forwarded to the primary (Figure 1). The primary
  // guarantees strong SI locally, so no blocking is ever needed here
  // (Theorem 4.1, case 1).
  const std::uint64_t first_op_seq =
      sys_->config().record_history ? sys_->recorder()->NextEventSeq() : 0;
  auto txn = sys_->primary_db()->Begin(/*read_only=*/false);
  return std::unique_ptr<SystemTransaction>(new SystemTransaction(
      sys_, session_, std::move(txn), /*secondary=*/nullptr, kPrimarySiteId,
      /*read_only=*/false, first_op_seq, /*snapshot_primary=*/0));
}

Status ClientConnection::ExecuteUpdate(
    const std::function<Status(SystemTransaction&)>& body, int max_attempts) {
  Status last = Status::Internal("no attempts made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto txn = BeginUpdate();
    if (!txn.ok()) return txn.status();
    Status s = body(**txn);
    if (!s.ok()) {
      (*txn)->Abort();
      return s;
    }
    last = (*txn)->Commit();
    if (last.ok()) return last;
    if (!last.IsWriteConflict()) return last;
    // First-committer-wins abort: retry with a fresh snapshot.
  }
  return last;
}

Status ClientConnection::ExecuteRead(
    const std::function<Status(SystemTransaction&)>& body) {
  auto txn = BeginRead();
  if (!txn.ok()) return txn.status();
  Status s = body(**txn);
  if (!s.ok()) {
    (*txn)->Abort();
    return s;
  }
  return (*txn)->Commit();
}

// ---------------------------------------------------------------------------
// ReplicatedSystem

namespace {

/// Propagator options for the primary: batching per config, plus (for a
/// durable primary) the read barrier that keeps replication behind the
/// flushed-LSN watermark — no record reaches a secondary before disk.
replication::PropagatorOptions PropagatorOptionsFor(const SystemConfig& config,
                                                    engine::Database* db) {
  replication::PropagatorOptions opts;
  opts.batch_interval = config.propagation_batch_interval;
  if (config.durable_log && !config.data_dir.empty()) {
    opts.read_limit = [db]() -> std::size_t {
      wal::DurableLog* durable = db->durable();
      return durable != nullptr
                 ? static_cast<std::size_t>(durable->flushed_end())
                 : SIZE_MAX;
    };
  }
  return opts;
}

}  // namespace

ReplicatedSystem::ReplicatedSystem(SystemConfig config)
    : config_(config),
      partition_map_(std::make_shared<const replication::PartitionMap>(
          replication::PartitionMap::Config{config.num_partitions,
                                            config.partition_replication,
                                            config.partition_scheme},
          config.num_secondaries)),
      primary_db_(engine::DatabaseOptions{kPrimarySiteId, "primary",
                                          config.record_state_chain}),
      primary_(&primary_db_, PropagatorOptionsFor(config_, &primary_db_)),
      sessions_(config.guarantee) {
  // Durable primary: restore from the data directory's checkpoint + log
  // suffix before anything attaches to the propagator, then gate commit
  // acks on the flushed-LSN watermark (AttachDurableLog inside OpenDataDir).
  engine::Database::Checkpoint boot_cp;
  bool bootstrap_secondaries = false;
  if (config_.durable_log && !config_.data_dir.empty()) {
    wal::DurableLog::Options lopts;
    if (!wal::ParseFsyncMode(config_.fsync_mode, &lopts.fsync_mode)) {
      LAZYSI_WARN("unknown fsync_mode '" << config_.fsync_mode
                  << "', using group");
    }
    lopts.group_flush_interval = config_.group_flush_interval;
    lopts.max_group_bytes = config_.max_group_bytes;
    auto state = engine::OpenDataDir(&primary_db_, config_.data_dir, lopts);
    if (!state.ok()) {
      LAZYSI_ERROR("cannot open data dir '" << config_.data_dir
                   << "': " << state.status() << "; running without "
                   << "durability");
    } else {
      durable_log_ = std::move(state->durable);
      restore_report_ = state->report;
      // Seed the propagator at the restored log's end: the fleet is built
      // fresh below from a checkpoint of the restored state, so nothing
      // needs the suffix re-broadcast, and the stream numbering continues
      // exactly where the pre-restart primary's left off.
      const std::size_t end_lsn = primary_db_.log()->Size();
      std::uint64_t end_seq = state->base_record_seq;
      for (std::size_t lsn = state->base_lsn; lsn < end_lsn; ++lsn) {
        auto rec = primary_db_.log()->At(lsn);
        if (rec.has_value() && rec->type != wal::LogRecordType::kUpdate) {
          ++end_seq;
        }
      }
      primary_.propagator()->SeedForRecovery(end_lsn, end_seq);
      if (state->had_state) {
        boot_cp = primary_db_.TakeCheckpoint();
        bootstrap_secondaries = boot_cp.lsn > 0;
      }
      engine::Checkpointer::Options copts;
      copts.data_dir = config_.data_dir;
      copts.interval = config_.checkpoint_interval;
      copts.log_floor = [this] { return PropagationFloor(); };
      checkpointer_ = std::make_unique<engine::Checkpointer>(
          &primary_db_, durable_log_.get(), copts);
    }
  }
  for (std::size_t i = 0; i < config_.num_secondaries; ++i) {
    auto site = std::make_unique<SecondarySite>();
    site->db = std::make_unique<engine::Database>(engine::DatabaseOptions{
        static_cast<SiteId>(i + 1), "secondary-" + std::to_string(i),
        config_.record_state_chain});
    // A restored primary starts ahead of the empty fleet: initialize each
    // secondary from a checkpoint of the restored state, exactly like
    // RecoverSecondary does after a crash (Section 3.4).
    Timestamp boot_local = kInvalidTimestamp;
    if (bootstrap_secondaries) {
      engine::Database::Checkpoint cp = boot_cp;
      const replication::SinkFilter filter = FilterFor(i);
      if (filter.active()) {
        for (auto it = cp.state.begin(); it != cp.state.end();) {
          if (filter.CoversKey(it->first)) {
            ++it;
          } else {
            it = cp.state.erase(it);
          }
        }
      }
      auto install = site->db->InstallCheckpoint(cp);
      if (!install.ok()) {
        LAZYSI_ERROR("secondary " << i << " bootstrap from restored "
                     << "checkpoint failed: " << install.status());
      } else {
        boot_local = *install;
      }
    }
    replication::SecondaryOptions sec_opts;
    sec_opts.applicator_threads = config_.applicator_threads;
    sec_opts.direct_apply = config_.direct_apply_refresh;
    sec_opts.decode_threads = config_.decode_threads;
    site->replica = std::make_unique<replication::Secondary>(site->db.get(),
                                                             sec_opts);
    if (boot_local != kInvalidTimestamp) {
      site->replica->InitializeSeq(boot_cp.as_of, boot_local);
    }
    const bool wan = config_.network_latency.count() > 0 ||
                     config_.network_jitter.count() > 0;
    if (wan) {
      // WAN model: a latency channel delays records on their way into the
      // secondary's update queue.
      site->channel = std::make_unique<replication::LatencyChannel>(
          site->replica->update_queue(),
          replication::LatencyChannel::Options{config_.network_latency,
                                               config_.network_jitter,
                                               1000 + i});
    }
    if (config_.transport_faults.any() || config_.transport_tcp) {
      // Framed transport: records cross a byte link as encoded frames —
      // ChaosLink queues or real TcpLink loopback sockets — and the reliable
      // channel re-establishes FIFO-no-loss on top. It attaches itself to
      // the propagator in Start().
      if (config_.transport_tcp) {
        site->link = std::make_unique<replication::TcpLink>(
            config_.transport_faults, config_.transport_seed + i);
      } else {
        site->link = std::make_unique<replication::ChaosLink>(
            config_.transport_faults, config_.transport_seed + i);
      }
      site->reliable = std::make_unique<replication::ReliableChannel>(
          primary_.propagator(), site->link.get(),
          wan ? site->channel->inlet() : site->replica->update_queue(),
          TransportOptions(i));
    } else if (wan) {
      primary_.propagator()->AttachSink(site->channel->inlet(), FilterFor(i));
    } else {
      primary_.AttachSecondary(site->replica.get(), FilterFor(i));
    }
    secondaries_.push_back(std::move(site));
  }
}

replication::ReliableChannel::Options ReplicatedSystem::TransportOptions(
    std::size_t secondary_index) const {
  replication::ReliableChannel::Options opts;
  opts.ack_interval = config_.transport_ack_interval;
  opts.backoff_initial = config_.transport_backoff_initial;
  opts.backoff_max = config_.transport_backoff_max;
  opts.retransmit_cap = config_.transport_retransmit_cap;
  opts.filter = FilterFor(secondary_index);
  return opts;
}

ReplicatedSystem::~ReplicatedSystem() { Stop(); }

void ReplicatedSystem::Start() {
  if (started_) return;
  started_ = true;
  for (auto& site : secondaries_) {
    site->replica->Start();
    if (site->channel) site->channel->Start();
    if (site->reliable) {
      if (site->link) site->link->Reopen();
      site->reliable->Start();
    }
  }
  primary_.Start();
  if (checkpointer_) checkpointer_->Start();
  if (config_.gc_interval.count() > 0) {
    {
      std::lock_guard<std::mutex> lock(gc_mu_);
      gc_stop_ = false;
    }
    gc_thread_ = std::thread(&ReplicatedSystem::GcLoop, this);
  }
}

void ReplicatedSystem::GcLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(gc_mu_);
      if (gc_cv_.wait_for(lock, config_.gc_interval,
                          [this] { return gc_stop_; })) {
        return;
      }
    }
    // Translation pruning at non-quiesced points makes primary-coordinate
    // history approximate below the horizon, so the cadence skips it when
    // the run records history for offline SI checking.
    GarbageCollectAll(/*prune_translations=*/!config_.record_history);
    gc_passes_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ReplicatedSystem::Stop() {
  if (!started_) return;
  if (gc_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(gc_mu_);
      gc_stop_ = true;
    }
    gc_cv_.notify_all();
    gc_thread_.join();
  }
  if (checkpointer_) checkpointer_->Stop();
  primary_.Stop();
  for (auto& site : secondaries_) {
    if (site->reliable) site->reliable->Stop();
    if (site->channel) site->channel->Stop();
    site->replica->Stop();
  }
  if (durable_log_) durable_log_->Close();
  started_ = false;
}

std::uint64_t ReplicatedSystem::PropagationFloor() {
  // Records below the propagator's position were broadcast to every direct
  // sink; only fault-transport channels can rewind (resync replays from a
  // sync point at or below the receiver's cumulative ack), so each live
  // channel pins the floor at that sync point.
  std::uint64_t floor = primary_.propagator()->position();
  std::shared_lock lock(sites_mu_);
  for (auto& s : secondaries_) {
    if (s->failed.load(std::memory_order_acquire)) continue;
    if (!s->reliable) continue;
    floor = std::min<std::uint64_t>(
        floor, primary_.propagator()
                   ->SyncPointAtOrBefore(s->reliable->acked_floor())
                   .lsn);
  }
  return floor;
}

std::unique_ptr<ClientConnection> ReplicatedSystem::Connect() {
  const std::size_t index =
      next_secondary_.fetch_add(1, std::memory_order_relaxed) %
      secondaries_.size();
  return ConnectTo(index);
}

std::unique_ptr<ClientConnection> ReplicatedSystem::ConnectTo(
    std::size_t secondary_index) {
  return std::unique_ptr<ClientConnection>(new ClientConnection(
      this, sessions_.CreateSession(), secondary_index));
}

replication::Secondary* ReplicatedSystem::secondary(std::size_t i) {
  auto* s = site(i);
  return s == nullptr ? nullptr : s->replica.get();
}

engine::Database* ReplicatedSystem::secondary_db(std::size_t i) {
  auto* s = site(i);
  return s == nullptr ? nullptr : s->db.get();
}

ReplicatedSystem::SecondarySite* ReplicatedSystem::site(std::size_t i) {
  std::shared_lock lock(sites_mu_);
  if (i >= secondaries_.size()) return nullptr;
  auto* s = secondaries_[i].get();
  if (s->failed.load(std::memory_order_acquire)) return nullptr;
  return s;
}

ReplicatedSystem::SecondarySite* ReplicatedSystem::RouteRead(
    Timestamp need, std::size_t* index_out) {
  std::shared_lock lock(sites_mu_);
  SecondarySite* fresh_pick = nullptr;  // best score among fresh-enough
  std::size_t fresh_index = 0;
  std::uint64_t fresh_score = 0;
  std::size_t fresh_covered = 0;
  SecondarySite* freshest = nullptr;  // fallback: maximum applied_seq
  std::size_t freshest_index = 0;
  Timestamp freshest_seq = 0;
  for (std::size_t i = 0; i < secondaries_.size(); ++i) {
    auto* s = secondaries_[i].get();
    if (s->failed.load(std::memory_order_acquire)) continue;
    const Timestamp seq = s->replica->applied_seq();
    if (freshest == nullptr || seq > freshest_seq) {
      freshest = s;
      freshest_index = i;
      freshest_seq = seq;
    }
    // EWMA load estimate rather than the instantaneous gauge: a transient
    // burst of reads on one site decays over ~8 routing decisions instead of
    // flipping the pick (and the herd) on every sample, which is the
    // hysteresis that keeps placement stable under bursty load.
    const std::uint64_t load = s->replica->SampleLoadEstimate();
    // Coverage-aware score: a partial replica serves only covered keys
    // locally and must proxy the rest, so its effective capacity scales
    // with its coverage fraction. load+1 keeps coverage decisive at zero
    // load; under full replication every site covers everything and this
    // degenerates to pure least-loaded. Ties go to the wider replica
    // (fewer cross-partition hops).
    const std::size_t covered =
        std::max<std::size_t>(partition_map_->Coverage(i).size(), 1);
    const std::uint64_t score =
        (load + 1) * partition_map_->num_partitions() / covered;
    if (seq >= need &&
        (fresh_pick == nullptr || score < fresh_score ||
         (score == fresh_score && covered > fresh_covered))) {
      fresh_pick = s;
      fresh_index = i;
      fresh_score = score;
      fresh_covered = covered;
    }
  }
  // applied_seq only advances, so a site observed fresh stays fresh; the
  // caller's WaitForSeq loop still covers the fallback pick (and a seq(c)
  // that advanced after we sampled it, under ALG-STRONG-SI's global
  // session).
  if (fresh_pick != nullptr) {
    fresh_pick->replica->CountRoutedFresh();
    *index_out = fresh_index;
    return fresh_pick;
  }
  if (freshest != nullptr) {
    freshest->replica->CountBlockedOnFreshness();
    *index_out = freshest_index;
    return freshest;
  }
  return nullptr;
}

std::string ReplicatedSystem::SystemStats::ToString() const {
  std::ostringstream os;
  os << "primary: latest_commit_ts=" << primary_latest_commit_ts
     << " committed=" << primary_committed << " aborted=" << primary_aborted
     << " propagated=" << commits_propagated << "\n";
  if (durable) {
    os << "durability: fsyncs=" << fsyncs
       << " records_flushed=" << records_flushed
       << " group[mean=" << mean_group_size << " max=" << max_group_size
       << "] checkpoints=" << checkpoint_count
       << " log_bytes_truncated=" << log_bytes_truncated << "\n";
  }
  for (const auto& s : secondaries) {
    os << "secondary " << s.index << ": "
       << (s.failed ? "FAILED"
                    : "seq=" + std::to_string(s.applied_seq) +
                          " lag=" + std::to_string(s.lag) +
                          " refreshed=" + std::to_string(s.refreshed_count) +
                          " queue=" + std::to_string(s.update_queue_depth) +
                          " translations=" +
                          std::to_string(s.translation_count) +
                          " disc=" +
                          std::to_string(s.stream_discontinuities));
    if (!s.failed && (s.ro_routed_fresh > 0 || s.ro_blocked_on_freshness > 0)) {
      os << " router[fresh=" << s.ro_routed_fresh
         << " blocked=" << s.ro_blocked_on_freshness
         << " active=" << s.active_reads
         << " ewma=" << (s.load_estimate / 1024.0) << "]";
    }
    if (!s.failed && s.group_applies > 0) {
      os << " group_apply[passes=" << s.group_applies
         << " commits=" << s.group_applied_commits
         << " max=" << s.max_group_apply << "]";
    }
    if (!s.failed &&
        (s.records_filtered > 0 || s.remote_reads_served > 0)) {
      os << " partition[covered=" << s.covered_partitions
         << " filtered=" << s.records_filtered
         << " updates=" << s.updates_received
         << " bytes=" << s.update_bytes_received
         << " remote_served=" << s.remote_reads_served << "]";
    }
    if (!s.failed && (s.transport_delivered > 0 || s.link_dropped > 0)) {
      os << " transport[delivered=" << s.transport_delivered
         << " retx=" << s.transport_retransmits
         << " resyncs=" << s.transport_resyncs
         << " crc_rej=" << s.transport_crc_rejected
         << " dups=" << s.transport_duplicates
         << " drops=" << s.link_dropped << " corrupt=" << s.link_corrupted
         << " disc=" << s.link_disconnects << "]";
    }
    if (!s.failed && s.link_frames_sent > 0) {
      os << " wire[frames=" << s.link_frames_sent << "/"
         << s.link_frames_delivered << " bytes=" << s.link_bytes_sent << "/"
         << s.link_bytes_delivered << "]";
    }
    os << "\n";
  }
  if (!partition_floors.empty()) {
    os << "partitions: floors=[";
    for (std::size_t p = 0; p < partition_floors.size(); ++p) {
      if (p > 0) os << " ";
      os << partition_floors[p];
    }
    os << "] scar_rejects=" << scar_stale_rejects
       << " remote_reads=" << remote_partition_reads << "\n";
  }
  return os.str();
}

ReplicatedSystem::SystemStats ReplicatedSystem::Stats() {
  SystemStats stats;
  stats.primary_latest_commit_ts = primary_db_.LatestCommitTs();
  stats.primary_committed = primary_db_.txn_manager()->CommittedCount();
  stats.primary_aborted = primary_db_.txn_manager()->AbortedCount();
  stats.commits_propagated = primary_.propagator()->commits_propagated();
  if (durable_log_) {
    stats.durable = true;
    const auto c = durable_log_->counters();
    stats.fsyncs = c.fsyncs;
    stats.records_flushed = c.records_flushed;
    stats.mean_group_size =
        c.flush_batches > 0
            ? static_cast<double>(c.records_flushed) / c.flush_batches
            : 0.0;
    stats.max_group_size = c.max_group_size;
    stats.log_bytes_truncated = c.bytes_truncated;
    if (checkpointer_) {
      stats.checkpoint_count = checkpointer_->checkpoint_count();
    }
  }
  std::shared_lock lock(sites_mu_);
  for (std::size_t i = 0; i < secondaries_.size(); ++i) {
    auto* s = secondaries_[i].get();
    SecondaryStats sec;
    sec.index = i;
    sec.failed = s->failed.load(std::memory_order_acquire);
    if (!sec.failed) {
      sec.applied_seq = s->replica->applied_seq();
      sec.lag = stats.primary_latest_commit_ts > sec.applied_seq
                    ? stats.primary_latest_commit_ts - sec.applied_seq
                    : 0;
      sec.refreshed_count = s->replica->refreshed_count();
      sec.update_queue_depth = s->replica->update_queue_depth();
      sec.ro_routed_fresh = s->replica->ro_routed_fresh();
      sec.ro_blocked_on_freshness = s->replica->ro_blocked_on_freshness();
      sec.active_reads = s->replica->active_reads();
      sec.load_estimate = s->replica->load_estimate();
      sec.translation_count = s->replica->translation_count();
      sec.stream_discontinuities = s->replica->stream_discontinuities();
      sec.records_filtered = s->replica->records_filtered();
      sec.updates_received = s->replica->updates_received();
      sec.update_bytes_received = s->replica->update_bytes_received();
      sec.remote_reads_served = s->replica->remote_reads_served();
      sec.covered_partitions = partition_map_->Coverage(i).size();
      sec.group_applies = s->replica->group_applies();
      sec.group_applied_commits = s->replica->group_applied_commits();
      sec.max_group_apply = s->replica->max_group_apply();
      if (s->reliable) {
        const auto ch = s->reliable->stats();
        sec.transport_delivered = ch.records_delivered;
        sec.transport_retransmits = ch.retransmit_frames;
        sec.transport_resyncs = ch.resyncs;
        sec.transport_crc_rejected = ch.crc_rejected;
        sec.transport_duplicates = ch.duplicates_dropped;
        const auto lk = s->link->counters();
        sec.link_dropped = lk.dropped;
        sec.link_corrupted = lk.corrupted;
        sec.link_disconnects = lk.disconnects;
        sec.link_frames_sent = lk.sent;
        sec.link_frames_delivered = lk.delivered;
        sec.link_bytes_sent = lk.bytes_sent;
        sec.link_bytes_delivered = lk.bytes_delivered;
      }
    }
    stats.secondaries.push_back(sec);
  }
  if (partition_map_->partial()) {
    stats.partition_floors = PartitionFloorsLocked();
  }
  stats.scar_stale_rejects =
      scar_stale_rejects_.load(std::memory_order_relaxed);
  stats.remote_partition_reads =
      remote_partition_reads_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<Timestamp> ReplicatedSystem::PartitionFloorsLocked() {
  std::vector<Timestamp> floors(partition_map_->num_partitions(), 0);
  for (std::size_t p = 0; p < floors.size(); ++p) {
    Timestamp floor = 0;
    bool have = false;
    for (std::size_t idx : partition_map_->Replicas(p)) {
      if (idx >= secondaries_.size()) continue;
      auto* s = secondaries_[idx].get();
      if (s->failed.load(std::memory_order_acquire)) continue;
      const Timestamp seq = s->replica->applied_seq();
      if (!have || seq < floor) floor = seq;
      have = true;
    }
    // No live replica: floor 0 — nothing below this partition may be
    // pruned until one recovers.
    floors[p] = have ? floor : 0;
  }
  return floors;
}

std::vector<Timestamp> ReplicatedSystem::PartitionFloors() {
  std::shared_lock lock(sites_mu_);
  return PartitionFloorsLocked();
}

std::size_t ReplicatedSystem::GarbageCollectAll(bool prune_translations) {
  std::size_t reclaimed = primary_db_.GarbageCollect();
  std::shared_lock lock(sites_mu_);
  // Per-partition applied floors: the minimum applied_seq over each
  // partition's live replicas. A secondary's translation-prune horizon is
  // the minimum floor across the partitions it covers — below it every live
  // replica of its data already serves newer state, so no future session
  // floor can depend on a pruned translation. Under full replication every
  // secondary covers every partition and this is exactly the old fleet-wide
  // minimum.
  const std::vector<Timestamp> floors = PartitionFloorsLocked();
  for (std::size_t i = 0; i < secondaries_.size(); ++i) {
    auto* s = secondaries_[i].get();
    if (s->failed.load(std::memory_order_acquire)) continue;
    reclaimed += s->db->GarbageCollect();
    if (!prune_translations) continue;
    Timestamp horizon = 0;
    bool have = false;
    for (std::size_t p : partition_map_->Coverage(i)) {
      if (!have || floors[p] < horizon) horizon = floors[p];
      have = true;
    }
    if (have) s->replica->PruneTranslations(horizon);
  }
  return reclaimed;
}

bool ReplicatedSystem::WaitForReplication(std::chrono::milliseconds timeout) {
  const Timestamp target = primary_db_.LatestCommitTs();
  std::shared_lock lock(sites_mu_);
  for (auto& s : secondaries_) {
    if (s->failed.load(std::memory_order_acquire)) continue;
    if (!s->replica->WaitForSeq(target, timeout)) return false;
  }
  return true;
}

Status ReplicatedSystem::FailSecondary(std::size_t i) {
  std::unique_lock lock(sites_mu_);
  if (i >= secondaries_.size()) {
    return Status::InvalidArgument("no such secondary");
  }
  auto* s = secondaries_[i].get();
  if (s->failed.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("secondary already failed");
  }
  s->failed.store(true, std::memory_order_release);
  // Crash: the pipeline stops; queued updates and refresh state are lost
  // along with the site's database (Section 3.4). Detach from the
  // propagator first so broadcasts never touch the dead queue.
  if (s->reliable) {
    s->reliable->Stop();  // detaches its own propagator sink
    if (s->channel) s->channel->Stop();
  } else if (s->channel) {
    primary_.propagator()->DetachSink(s->channel->inlet());
    s->channel->Stop();
  } else {
    primary_.propagator()->DetachSink(s->replica->update_queue());
  }
  s->replica->Stop();
  return Status::OK();
}

Status ReplicatedSystem::RecoverSecondary(std::size_t i) {
  std::unique_lock lock(sites_mu_);
  if (i >= secondaries_.size()) {
    return Status::InvalidArgument("no such secondary");
  }
  auto* s = secondaries_[i].get();
  if (!s->failed.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("secondary has not failed");
  }

  // Fresh copy of the primary database (Section 3.4's periodic quiesced
  // copy, taken on demand here).
  engine::Database::Checkpoint checkpoint = primary_db_.TakeCheckpoint();
  const replication::SinkFilter filter = FilterFor(i);
  if (filter.active()) {
    // A partial replica installs only its covered partitions — uncovered
    // keys never live here (scans and differential checks rely on that),
    // and the replayed log suffix is filtered the same way below.
    for (auto it = checkpoint.state.begin(); it != checkpoint.state.end();) {
      if (filter.CoversKey(it->first)) {
        ++it;
      } else {
        it = checkpoint.state.erase(it);
      }
    }
  }

  auto fresh_db = std::make_unique<engine::Database>(engine::DatabaseOptions{
      static_cast<SiteId>(i + 1), "secondary-" + std::to_string(i) + "-r",
      config_.record_state_chain});
  auto install = fresh_db->InstallCheckpoint(checkpoint);
  if (!install.ok()) return install.status();

  replication::SecondaryOptions sec_opts;
  sec_opts.applicator_threads = config_.applicator_threads;
  sec_opts.direct_apply = config_.direct_apply_refresh;
  sec_opts.decode_threads = config_.decode_threads;
  auto fresh_replica =
      std::make_unique<replication::Secondary>(fresh_db.get(), sec_opts);
  // Dummy-transaction re-seed of seq(DBsec) (Section 4): the checkpoint
  // corresponds to the primary state checkpoint.as_of.
  const Timestamp seq = checkpoint.as_of;
  fresh_replica->InitializeSeq(seq, *install);
  fresh_replica->Start();
  std::unique_ptr<replication::LatencyChannel> fresh_channel;
  std::unique_ptr<replication::ByteLink> fresh_link;
  std::unique_ptr<replication::ReliableChannel> fresh_reliable;
  const bool wan = config_.network_latency.count() > 0 ||
                   config_.network_jitter.count() > 0;
  if (wan) {
    fresh_channel = std::make_unique<replication::LatencyChannel>(
        fresh_replica->update_queue(),
        replication::LatencyChannel::Options{config_.network_latency,
                                             config_.network_jitter,
                                             2000 + i});
    fresh_channel->Start();
  }
  if (config_.transport_faults.any() || config_.transport_tcp) {
    // The recovered site gets a fresh connection: new link (fresh fault
    // stream / fresh sockets), new channel, attached at the checkpoint so
    // the missed log suffix is replayed through the transport like any
    // other record.
    if (config_.transport_tcp) {
      fresh_link = std::make_unique<replication::TcpLink>(
          config_.transport_faults, config_.transport_seed + 1000 + i);
    } else {
      fresh_link = std::make_unique<replication::ChaosLink>(
          config_.transport_faults, config_.transport_seed + 1000 + i);
    }
    fresh_reliable = std::make_unique<replication::ReliableChannel>(
        primary_.propagator(), fresh_link.get(),
        wan ? fresh_channel->inlet() : fresh_replica->update_queue(),
        TransportOptions(i));
    LAZYSI_RETURN_NOT_OK(fresh_reliable->StartAt(checkpoint.lsn));
  } else if (wan) {
    LAZYSI_RETURN_NOT_OK(primary_.propagator()
                             ->AttachSinkAt(fresh_channel->inlet(),
                                            checkpoint.lsn, filter)
                             .status());
  } else {
    LAZYSI_RETURN_NOT_OK(primary_.AttachSecondaryAt(fresh_replica.get(),
                                                    checkpoint.lsn, filter));
  }

  s->db = std::move(fresh_db);
  s->replica = std::move(fresh_replica);
  s->channel = std::move(fresh_channel);
  s->link = std::move(fresh_link);
  s->reliable = std::move(fresh_reliable);
  s->failed.store(false, std::memory_order_release);
  return Status::OK();
}

}  // namespace system
}  // namespace lazysi
