#ifndef LAZYSI_SYSTEM_REMOTE_CLIENT_H_
#define LAZYSI_SYSTEM_REMOTE_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "replication/framed_socket.h"

namespace lazysi {
namespace system {

/// Client-side stub of the wire API (wire_api.h): one TCP connection to one
/// site server, at most one transaction in flight. Not thread-safe — one
/// client session drives one stub at a time, mirroring the paper's
/// one-connection-per-client workload model.
class RemoteSite {
 public:
  /// Every protocol step is bounded: connects time out and retry with
  /// jittered exponential backoff up to max_attempts; each round trip's
  /// reply has a deadline. Without deadlines a hung or silent peer wedges
  /// the client forever — with them the worst case is a bounded, observable
  /// TimedOut/Unavailable.
  struct ConnectOptions {
    std::chrono::milliseconds connect_timeout{2000};
    /// Total dial attempts before Connect gives up (>= 1).
    int max_attempts = 5;
    /// Delay before the 2nd attempt; doubles per failure up to the cap,
    /// randomized to delay * (1 ± jitter) so a fleet of clients does not
    /// redial a recovering site in lock-step.
    std::chrono::milliseconds backoff_initial{50};
    std::chrono::milliseconds backoff_max{1000};
    double jitter = 0.2;
    /// Per-round-trip reply deadline; 0 = wait forever. Must comfortably
    /// exceed the server's read_block_timeout (10s default) — a begin
    /// blocked on the freshness rule is the protocol working, not a hang.
    std::chrono::milliseconds op_timeout{30000};
  };

  RemoteSite() = default;

  /// Dials the site's client port (bounded retry per `options`).
  Status Connect(const std::string& host, std::uint16_t port,
                 const ConnectOptions& options);
  Status Connect(const std::string& host, std::uint16_t port) {
    return Connect(host, port, ConnectOptions());
  }
  bool connected() const { return sock_ != nullptr && sock_->valid(); }
  void Disconnect() { sock_.reset(); }

  /// Begins a transaction; `min_seq` is the session's seq(c) — a secondary
  /// blocks until it has applied that prefix (ALG-STRONG-SESSION-SI).
  /// Returns the snapshot's primary-coordinate prefix.
  Result<Timestamp> Begin(bool read_only, Timestamp min_seq = 0);
  Result<std::string> Get(const std::string& key);
  Status Put(const std::string& key, const std::string& value);
  Status Delete(const std::string& key);
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      const std::string& begin, const std::string& end);
  /// Returns the commit's primary timestamp (the session's new seq(c));
  /// 0 for read-only commits.
  Result<Timestamp> Commit();
  Status Abort();
  /// Blocks until the site has applied `seq` (no-op at the primary).
  Status WaitSeq(Timestamp seq);

  struct SiteStats {
    std::uint64_t role = 0;  // wire_api::kRolePrimary / kRoleSecondary
    Timestamp applied_seq = 0;
    Timestamp latest_commit_ts = 0;
    /// Order-independent hash of the site's committed state (equal hashes
    /// across sites == equal materialized databases).
    std::uint64_t content_hash = 0;
    /// Replication-wire counters of the site's stream endpoint: a primary
    /// reports the outbound (sent) direction, a secondary the inbound
    /// (received) one. `connections` is accepted connections on a primary,
    /// reconnects on a secondary.
    std::uint64_t wire_frames = 0;
    std::uint64_t wire_batch_frames = 0;
    std::uint64_t wire_records = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t wire_writev_calls = 0;
    std::uint64_t wire_flushes = 0;
    std::uint64_t wire_backpressure_stalls = 0;
    std::uint64_t wire_connections = 0;
  };
  Result<SiteStats> Stats();

 private:
  /// One request/reply round trip; fills *reply (status already consumed)
  /// and *offset with the payload start.
  Status RoundTrip(const std::string& request, std::string* reply,
                   std::size_t* offset);

  std::unique_ptr<replication::FramedSocket> sock_;
  ConnectOptions options_;
  Rng rng_{0xc11e47d1a1};
};

/// A client session roaming across sites (Section 4): tracks seq(c) — the
/// commit timestamp of the session's latest update transaction — and feeds
/// it into every Begin so strong session SI holds wherever the read lands.
class RemoteSession {
 public:
  Timestamp seq() const { return seq_; }
  void ObserveCommit(Timestamp commit_seq) {
    if (commit_seq > seq_) seq_ = commit_seq;
  }
  Result<Timestamp> Begin(RemoteSite* site, bool read_only) {
    return site->Begin(read_only, seq_);
  }
  Result<Timestamp> Commit(RemoteSite* site) {
    auto seq = site->Commit();
    if (seq.ok()) ObserveCommit(*seq);
    return seq;
  }

 private:
  Timestamp seq_ = 0;
};

}  // namespace system
}  // namespace lazysi

#endif  // LAZYSI_SYSTEM_REMOTE_CLIENT_H_
