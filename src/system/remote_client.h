#ifndef LAZYSI_SYSTEM_REMOTE_CLIENT_H_
#define LAZYSI_SYSTEM_REMOTE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "replication/framed_socket.h"

namespace lazysi {
namespace system {

/// Client-side stub of the wire API (wire_api.h): one TCP connection to one
/// site server, at most one transaction in flight. Not thread-safe — one
/// client session drives one stub at a time, mirroring the paper's
/// one-connection-per-client workload model.
class RemoteSite {
 public:
  RemoteSite() = default;

  /// Dials the site's client port.
  Status Connect(const std::string& host, std::uint16_t port);
  bool connected() const { return sock_ != nullptr && sock_->valid(); }
  void Disconnect() { sock_.reset(); }

  /// Begins a transaction; `min_seq` is the session's seq(c) — a secondary
  /// blocks until it has applied that prefix (ALG-STRONG-SESSION-SI).
  /// Returns the snapshot's primary-coordinate prefix.
  Result<Timestamp> Begin(bool read_only, Timestamp min_seq = 0);
  Result<std::string> Get(const std::string& key);
  Status Put(const std::string& key, const std::string& value);
  Status Delete(const std::string& key);
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      const std::string& begin, const std::string& end);
  /// Returns the commit's primary timestamp (the session's new seq(c));
  /// 0 for read-only commits.
  Result<Timestamp> Commit();
  Status Abort();
  /// Blocks until the site has applied `seq` (no-op at the primary).
  Status WaitSeq(Timestamp seq);

  struct SiteStats {
    std::uint64_t role = 0;  // wire_api::kRolePrimary / kRoleSecondary
    Timestamp applied_seq = 0;
    Timestamp latest_commit_ts = 0;
    /// Order-independent hash of the site's committed state (equal hashes
    /// across sites == equal materialized databases).
    std::uint64_t content_hash = 0;
  };
  Result<SiteStats> Stats();

 private:
  /// One request/reply round trip; fills *reply (status already consumed)
  /// and *offset with the payload start.
  Status RoundTrip(const std::string& request, std::string* reply,
                   std::size_t* offset);

  std::unique_ptr<replication::FramedSocket> sock_;
};

/// A client session roaming across sites (Section 4): tracks seq(c) — the
/// commit timestamp of the session's latest update transaction — and feeds
/// it into every Begin so strong session SI holds wherever the read lands.
class RemoteSession {
 public:
  Timestamp seq() const { return seq_; }
  void ObserveCommit(Timestamp commit_seq) {
    if (commit_seq > seq_) seq_ = commit_seq;
  }
  Result<Timestamp> Begin(RemoteSite* site, bool read_only) {
    return site->Begin(read_only, seq_);
  }
  Result<Timestamp> Commit(RemoteSite* site) {
    auto seq = site->Commit();
    if (seq.ok()) ObserveCommit(*seq);
    return seq;
  }

 private:
  Timestamp seq_ = 0;
};

}  // namespace system
}  // namespace lazysi

#endif  // LAZYSI_SYSTEM_REMOTE_CLIENT_H_
