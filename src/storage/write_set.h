#ifndef LAZYSI_STORAGE_WRITE_SET_H_
#define LAZYSI_STORAGE_WRITE_SET_H_

#include <map>
#include <string>
#include <vector>

namespace lazysi {
namespace storage {

/// One buffered write of a transaction.
struct Write {
  std::string key;
  std::string value;  // empty when deleted
  bool deleted = false;

  bool operator==(const Write& other) const = default;
};

/// A transaction's buffered writes, in application order with last-write-wins
/// per key. Under SI a transaction must see its own updates (Section 2.1), so
/// reads consult the write set before the snapshot.
class WriteSet {
 public:
  /// Records a put; overwrites any earlier buffered write of the same key.
  void Put(const std::string& key, std::string value) {
    writes_[key] = Write{key, std::move(value), /*deleted=*/false};
  }

  /// Records a delete.
  void Delete(const std::string& key) {
    writes_[key] = Write{key, std::string(), /*deleted=*/true};
  }

  /// Returns the buffered write for `key`, or nullptr.
  const Write* Find(const std::string& key) const {
    auto it = writes_.find(key);
    return it == writes_.end() ? nullptr : &it->second;
  }

  bool empty() const { return writes_.empty(); }
  std::size_t size() const { return writes_.size(); }
  void Clear() { writes_.clear(); }

  /// Key-ordered view (deterministic iteration is what makes state-hash
  /// chains comparable across sites).
  const std::map<std::string, Write>& entries() const { return writes_; }

  /// Flattened copy, key-ordered.
  std::vector<Write> ToVector() const {
    std::vector<Write> out;
    out.reserve(writes_.size());
    for (const auto& [k, w] : writes_) out.push_back(w);
    return out;
  }

  /// True if the two write sets update at least one common key — the paper's
  /// write-write conflict test (Section 2.4: ws_i ∩ ws_j != ∅).
  bool Intersects(const WriteSet& other) const {
    const WriteSet* small = this;
    const WriteSet* big = &other;
    if (small->size() > big->size()) std::swap(small, big);
    for (const auto& [k, w] : small->writes_) {
      if (big->writes_.count(k)) return true;
    }
    return false;
  }

 private:
  std::map<std::string, Write> writes_;
};

}  // namespace storage
}  // namespace lazysi

#endif  // LAZYSI_STORAGE_WRITE_SET_H_
