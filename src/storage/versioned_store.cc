#include "storage/versioned_store.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace lazysi {
namespace storage {

const VersionedStore::Version* VersionedStore::VisibleVersion(
    const Chain& chain, Timestamp snapshot) {
  // Chains are in increasing commit_ts order; binary search for the newest
  // version with commit_ts <= snapshot.
  auto it = std::upper_bound(
      chain.begin(), chain.end(), snapshot,
      [](Timestamp s, const Version& v) { return s < v.commit_ts; });
  if (it == chain.begin()) return nullptr;
  return &*std::prev(it);
}

Result<VersionedValue> VersionedStore::Get(const std::string& key,
                                           Timestamp snapshot) const {
  std::shared_lock lock(mu_);
  auto it = chains_.find(key);
  if (it == chains_.end()) return Status::NotFound();
  const Version* v = VisibleVersion(it->second, snapshot);
  if (v == nullptr || v->deleted) return Status::NotFound();
  return VersionedValue{v->value, v->commit_ts};
}

bool VersionedStore::HasCommitAfter(const std::string& key,
                                    Timestamp since) const {
  std::shared_lock lock(mu_);
  auto it = chains_.find(key);
  if (it == chains_.end()) return false;
  const Chain& chain = it->second;
  return !chain.empty() && chain.back().commit_ts > since;
}

void VersionedStore::Apply(const WriteSet& writes, Timestamp commit_ts) {
  std::unique_lock lock(mu_);
  for (const auto& [key, w] : writes.entries()) {
    Chain& chain = chains_[key];
    assert(chain.empty() || chain.back().commit_ts < commit_ts);
    chain.push_back(Version{commit_ts, w.value, w.deleted});
  }
}

std::vector<std::pair<std::string, VersionedValue>> VersionedStore::Scan(
    const std::string& begin, const std::string& end,
    Timestamp snapshot) const {
  std::shared_lock lock(mu_);
  std::vector<std::pair<std::string, VersionedValue>> out;
  auto it = chains_.lower_bound(begin);
  for (; it != chains_.end(); ++it) {
    if (!end.empty() && it->first >= end) break;
    const Version* v = VisibleVersion(it->second, snapshot);
    if (v != nullptr && !v->deleted) {
      out.emplace_back(it->first, VersionedValue{v->value, v->commit_ts});
    }
  }
  return out;
}

std::map<std::string, std::string> VersionedStore::Materialize(
    Timestamp snapshot) const {
  std::shared_lock lock(mu_);
  std::map<std::string, std::string> out;
  for (const auto& [key, chain] : chains_) {
    const Version* v = VisibleVersion(chain, snapshot);
    if (v != nullptr && !v->deleted) out[key] = v->value;
  }
  return out;
}

std::size_t VersionedStore::PruneVersions(Timestamp horizon) {
  std::unique_lock lock(mu_);
  std::size_t dropped = 0;
  for (auto it = chains_.begin(); it != chains_.end();) {
    Chain& chain = it->second;
    // Keep the newest version with commit_ts <= horizon plus everything
    // newer than the horizon.
    auto keep = std::upper_bound(
        chain.begin(), chain.end(), horizon,
        [](Timestamp s, const Version& v) { return s < v.commit_ts; });
    if (keep != chain.begin()) --keep;  // retain the visible-at-horizon one
    dropped += static_cast<std::size_t>(keep - chain.begin());
    chain.erase(chain.begin(), keep);
    if (chain.empty() ||
        (chain.size() == 1 && chain[0].deleted &&
         chain[0].commit_ts <= horizon)) {
      dropped += chain.size();
      it = chains_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

void VersionedStore::InstallClone(const std::map<std::string, std::string>& state,
                                  Timestamp commit_ts) {
  std::unique_lock lock(mu_);
  chains_.clear();
  for (const auto& [key, value] : state) {
    chains_[key].push_back(Version{commit_ts, value, /*deleted=*/false});
  }
}

std::size_t VersionedStore::KeyCount() const {
  std::shared_lock lock(mu_);
  return chains_.size();
}

std::size_t VersionedStore::VersionCount() const {
  std::shared_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, chain] : chains_) n += chain.size();
  return n;
}

}  // namespace storage
}  // namespace lazysi
