#include "storage/versioned_store.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <queue>

#include "common/hash.h"

namespace lazysi {
namespace storage {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  if (n <= 1) return 1;
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

VersionedStore::VersionedStore(std::size_t shard_count)
    : shards_(RoundUpPow2(shard_count)), shard_mask_(shards_.size() - 1) {}

VersionedStore::~VersionedStore() {
  for (Shard& shard : shards_) {
    // Every KeyNode ever created is reachable from its bucket (ghosts
    // included); every live version node from its KeyNode head. Unlinked
    // version nodes sit in the retired list.
    for (std::atomic<KeyNode*>& bucket : shard.buckets) {
      KeyNode* k = bucket.load(std::memory_order_relaxed);
      while (k != nullptr) {
        VersionNode* v = k->head.load(std::memory_order_relaxed);
        while (v != nullptr) {
          VersionNode* next = v->next.load(std::memory_order_relaxed);
          delete v;
          v = next;
        }
        KeyNode* next_key = k->bucket_next.load(std::memory_order_relaxed);
        delete k;
        k = next_key;
      }
    }
    for (VersionNode* v : shard.retired) delete v;
  }
}

std::size_t VersionedStore::ShardOf(const std::string& key) const {
  return static_cast<std::size_t>(Fnv1a64(key)) & shard_mask_;
}

std::uint64_t VersionedStore::ShardFootprint(const WriteSet& writes) const {
  std::uint64_t mask = 0;
  for (const auto& [key, w] : writes.entries()) {
    mask |= std::uint64_t{1} << (ShardOf(key) & 63);
  }
  return mask;
}

const VersionedStore::VersionNode* VersionedStore::VisibleVersion(
    const VersionNode* head, Timestamp snapshot) {
  // Newest-first walk: the first node at or below the snapshot is the
  // visible one. Acquire loads pair with the writers' release publications,
  // so a node pointer observed here always refers to a fully constructed,
  // immutable node.
  const VersionNode* v = head;
  while (v != nullptr && v->commit_ts > snapshot) {
    v = v->next.load(std::memory_order_acquire);
  }
  return v;
}

const VersionedStore::KeyNode* VersionedStore::FindKeyNode(
    const Shard& shard, std::uint64_t hash, const std::string& key) const {
  const KeyNode* k =
      shard.buckets[BucketOf(hash)].load(std::memory_order_acquire);
  while (k != nullptr && (k->hash != hash || k->key != key)) {
    k = k->bucket_next.load(std::memory_order_acquire);
  }
  return k;
}

Result<VersionedValue> VersionedStore::Get(const std::string& key,
                                           Timestamp snapshot) const {
  const std::uint64_t hash = Fnv1a64(key);
  const Shard& shard = shards_[static_cast<std::size_t>(hash) & shard_mask_];
  const KeyNode* k = FindKeyNode(shard, hash, key);
  if (k == nullptr) return Status::NotFound();
  const VersionNode* v =
      VisibleVersion(k->head.load(std::memory_order_acquire), snapshot);
  if (v == nullptr || v->deleted) return Status::NotFound();
  return VersionedValue{v->value, v->commit_ts};
}

Result<VersionedValue> VersionedStore::GetLocked(const std::string& key,
                                                 Timestamp snapshot) const {
  const std::uint64_t hash = Fnv1a64(key);
  const Shard& shard = shards_[static_cast<std::size_t>(hash) & shard_mask_];
  std::shared_lock lock(shard.mu);
  const KeyNode* k = FindKeyNode(shard, hash, key);
  if (k == nullptr) return Status::NotFound();
  const VersionNode* v =
      VisibleVersion(k->head.load(std::memory_order_acquire), snapshot);
  if (v == nullptr || v->deleted) return Status::NotFound();
  return VersionedValue{v->value, v->commit_ts};
}

bool VersionedStore::HasCommitAfter(const std::string& key,
                                    Timestamp since) const {
  const std::uint64_t hash = Fnv1a64(key);
  const Shard& shard = shards_[static_cast<std::size_t>(hash) & shard_mask_];
  const KeyNode* k = FindKeyNode(shard, hash, key);
  if (k == nullptr) return false;
  // The head is always the newest version (sorted splices keep it so).
  const VersionNode* head = k->head.load(std::memory_order_acquire);
  return head != nullptr && head->commit_ts > since;
}

VersionedStore::KeyNode* VersionedStore::FindOrCreateKeyNode(
    Shard& shard, std::uint64_t hash, const std::string& key) {
  auto it = shard.chains.find(key);
  if (it != shard.chains.end()) return it->second;
  // The key may have been fully pruned earlier: its immortal KeyNode is
  // still in the bucket (with a null head). Resurrect it rather than adding
  // a duplicate a reader could shadow.
  KeyNode* ghost = const_cast<KeyNode*>(FindKeyNode(shard, hash, key));
  if (ghost != nullptr) {
    shard.chains.emplace(key, ghost);
    return ghost;
  }
  KeyNode* node = new KeyNode{key, hash};
  std::atomic<KeyNode*>& bucket = shard.buckets[BucketOf(hash)];
  node->bucket_next.store(bucket.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  // Release: a reader that sees the new bucket head sees the node's key,
  // hash and bucket_next.
  bucket.store(node, std::memory_order_release);
  shard.chains.emplace(key, node);
  return node;
}

void VersionedStore::InsertVersionSorted(KeyNode* node, Timestamp commit_ts,
                                         const std::string& value,
                                         bool deleted) {
  VersionNode* head = node->head.load(std::memory_order_relaxed);
  if (head == nullptr || head->commit_ts < commit_ts) {
    VersionNode* v = new VersionNode{commit_ts, deleted, value};
    v->next.store(head, std::memory_order_relaxed);
    node->head.store(v, std::memory_order_release);
    return;
  }
  if (head->commit_ts == commit_ts) return;  // replayed duplicate
  // A later commit's version landed first (concurrent applicator runs);
  // splice at the sorted position. Readers racing the splice see the chain
  // with or without the new node — both are consistent, and the visibility
  // watermark keeps the node below any issued snapshot until its commit's
  // whole batch is installed.
  VersionNode* prev = head;
  for (;;) {
    VersionNode* next = prev->next.load(std::memory_order_relaxed);
    if (next == nullptr || next->commit_ts < commit_ts) {
      VersionNode* v = new VersionNode{commit_ts, deleted, value};
      v->next.store(next, std::memory_order_relaxed);
      prev->next.store(v, std::memory_order_release);
      return;
    }
    if (next->commit_ts == commit_ts) return;  // replayed duplicate
    prev = next;
  }
}

void VersionedStore::Apply(const WriteSet& writes, Timestamp commit_ts) {
  // Bucket the writes by shard so each shard lock is taken exactly once.
  // The scratch vector is thread-local to keep the hot auto-commit path
  // allocation-free after warm-up.
  thread_local std::vector<std::pair<std::size_t, const Write*>> scratch;
  scratch.clear();
  for (const auto& [key, w] : writes.entries()) {
    scratch.emplace_back(ShardOf(key), &w);
  }
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t i = 0;
  while (i < scratch.size()) {
    const std::size_t s = scratch[i].first;
    Shard& shard = shards_[s];
    std::unique_lock lock(shard.mu);
    for (; i < scratch.size() && scratch[i].first == s; ++i) {
      const Write& w = *scratch[i].second;
      KeyNode* node = FindOrCreateKeyNode(shard, Fnv1a64(w.key), w.key);
      assert(node->head.load(std::memory_order_relaxed) == nullptr ||
             node->head.load(std::memory_order_relaxed)->commit_ts <
                 commit_ts);
      VersionNode* v = new VersionNode{commit_ts, w.deleted, w.value};
      v->next.store(node->head.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      // Release-publish: readers that see the new head see a complete node.
      node->head.store(v, std::memory_order_release);
    }
  }
}

void VersionedStore::ApplyBatch(const std::vector<TimestampedWrites>& batch) {
  // Bucket (shard, write, ts) triples across the whole run, then lock each
  // touched shard once. Scratch order within a shard preserves batch order
  // (stable sort), i.e. increasing commit timestamps, so the common case is
  // a cheap head prepend.
  struct Slot {
    std::size_t shard;
    const Write* write;
    Timestamp commit_ts;
  };
  thread_local std::vector<Slot> scratch;
  scratch.clear();
  for (const TimestampedWrites& tw : batch) {
    for (const auto& [key, w] : tw.writes->entries()) {
      scratch.push_back(Slot{ShardOf(key), &w, tw.commit_ts});
    }
  }
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const Slot& a, const Slot& b) { return a.shard < b.shard; });
  std::size_t i = 0;
  while (i < scratch.size()) {
    const std::size_t s = scratch[i].shard;
    Shard& shard = shards_[s];
    std::unique_lock lock(shard.mu);
    for (; i < scratch.size() && scratch[i].shard == s; ++i) {
      const Write& w = *scratch[i].write;
      KeyNode* node = FindOrCreateKeyNode(shard, Fnv1a64(w.key), w.key);
      InsertVersionSorted(node, scratch[i].commit_ts, w.value, w.deleted);
    }
  }
}

std::vector<std::pair<std::string, VersionedValue>> VersionedStore::Scan(
    const std::string& begin, const std::string& end,
    Timestamp snapshot) const {
  // Collect the ordered run of each shard, then k-way merge. Keys are unique
  // across shards (each key hashes to exactly one), so the merge needs no
  // duplicate handling. Cross-shard consistency comes from SI itself: all
  // commits <= snapshot are fully installed before the snapshot is issued.
  using Entry = std::pair<std::string, VersionedValue>;
  std::vector<std::vector<Entry>> runs;
  runs.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    std::vector<Entry> run;
    std::shared_lock lock(shard.mu);
    auto it = shard.chains.lower_bound(begin);
    for (; it != shard.chains.end(); ++it) {
      if (!end.empty() && it->first >= end) break;
      const VersionNode* v = VisibleVersion(
          it->second->head.load(std::memory_order_acquire), snapshot);
      if (v != nullptr && !v->deleted) {
        run.emplace_back(it->first, VersionedValue{v->value, v->commit_ts});
      }
    }
    if (!run.empty()) runs.push_back(std::move(run));
  }

  struct Cursor {
    std::size_t run;
    std::size_t pos;
  };
  auto later = [&runs](const Cursor& a, const Cursor& b) {
    return runs[a.run][a.pos].first > runs[b.run][b.pos].first;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);
  std::size_t total = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    heap.push(Cursor{r, 0});
    total += runs[r].size();
  }
  std::vector<Entry> out;
  out.reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out.push_back(std::move(runs[c.run][c.pos]));
    if (++c.pos < runs[c.run].size()) heap.push(c);
  }
  return out;
}

std::map<std::string, std::string> VersionedStore::Materialize(
    Timestamp snapshot) const {
  std::map<std::string, std::string> out;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, node] : shard.chains) {
      const VersionNode* v = VisibleVersion(
          node->head.load(std::memory_order_acquire), snapshot);
      if (v != nullptr && !v->deleted) out[key] = v->value;
    }
  }
  return out;
}

void VersionedStore::RaiseGcFloor(Timestamp floor) {
  Timestamp cur = gc_floor_.load(std::memory_order_seq_cst);
  while (floor > cur && !gc_floor_.compare_exchange_weak(
                            cur, floor, std::memory_order_seq_cst)) {
  }
}

std::size_t VersionedStore::PruneVersions(Timestamp horizon) {
  // Publish the floor before touching any chain: a historical Begin that
  // misses this store is guaranteed to have been seen by the horizon
  // computation, and one that ran later sees the floor and reads under the
  // shard lock instead (the Dekker handshake of the class comment).
  RaiseGcFloor(horizon);
  std::size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    for (auto it = shard.chains.begin(); it != shard.chains.end();) {
      KeyNode* node = it->second;
      // Find the boundary: the newest version with commit_ts <= horizon.
      // Everything after it is shadowed for every reader at or above the
      // horizon and can be freed on the spot (see reclamation contract).
      VersionNode* boundary = node->head.load(std::memory_order_relaxed);
      while (boundary != nullptr && boundary->commit_ts > horizon) {
        boundary = boundary->next.load(std::memory_order_relaxed);
      }
      if (boundary == nullptr) {
        ++it;  // nothing at or below the horizon
        continue;
      }
      VersionNode* tail = boundary->next.load(std::memory_order_relaxed);
      if (tail != nullptr) {
        boundary->next.store(nullptr, std::memory_order_release);
        while (tail != nullptr) {
          VersionNode* next = tail->next.load(std::memory_order_relaxed);
          delete tail;
          tail = next;
          ++dropped;
        }
      }
      // A chain reduced to a single deleted tombstone at or below the
      // horizon: the key no longer exists for any permissible snapshot.
      // Unlink the chain and drop the key from the live map, but retire the
      // tombstone (a reader at snapshot >= horizon may be holding it) and
      // keep the KeyNode as a bucket ghost.
      if (boundary == node->head.load(std::memory_order_relaxed) &&
          boundary->deleted && boundary->commit_ts <= horizon) {
        node->head.store(nullptr, std::memory_order_release);
        shard.retired.push_back(boundary);
        ++dropped;
        it = shard.chains.erase(it);
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

void VersionedStore::InstallClone(const std::map<std::string, std::string>& state,
                                  Timestamp commit_ts) {
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    for (auto& [key, node] : shard.chains) {
      // Retire the whole old chain; recovery runs without concurrent
      // readers, but deferring reclamation keeps even a stray one safe.
      VersionNode* v = node->head.load(std::memory_order_relaxed);
      node->head.store(nullptr, std::memory_order_release);
      while (v != nullptr) {
        shard.retired.push_back(v);
        v = v->next.load(std::memory_order_relaxed);
      }
    }
    shard.chains.clear();
  }
  for (const auto& [key, value] : state) {
    const std::uint64_t hash = Fnv1a64(key);
    Shard& shard = shards_[static_cast<std::size_t>(hash) & shard_mask_];
    std::unique_lock lock(shard.mu);
    KeyNode* node = FindOrCreateKeyNode(shard, hash, key);
    VersionNode* v = new VersionNode{commit_ts, /*deleted=*/false, value};
    v->next.store(nullptr, std::memory_order_relaxed);
    node->head.store(v, std::memory_order_release);
  }
}

std::size_t VersionedStore::KeyCount() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    n += shard.chains.size();
  }
  return n;
}

std::size_t VersionedStore::VersionCount() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, node] : shard.chains) {
      const VersionNode* v = node->head.load(std::memory_order_acquire);
      while (v != nullptr) {
        ++n;
        v = v->next.load(std::memory_order_relaxed);
      }
    }
  }
  return n;
}

std::size_t HashPartitionOfKey(std::string_view key,
                               std::size_t num_partitions) {
  if (num_partitions <= 1) return 0;
  // Seed differs from ShardOf's default offset basis so a partition's keys
  // are not confined to a subset of store shards.
  constexpr std::uint64_t kPartitionSeed = 0x9e3779b97f4a7c15ull;
  return static_cast<std::size_t>(Fnv1a64(key, kPartitionSeed) %
                                  num_partitions);
}

std::size_t RangePartitionOfKey(std::string_view key,
                                std::size_t num_partitions) {
  if (num_partitions <= 1) return 0;
  std::uint64_t prefix = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t byte =
        i < key.size() ? static_cast<unsigned char>(key[i]) : 0;
    prefix = (prefix << 8) | byte;
  }
  // Proportional scaling: partition = floor(prefix * P / 2^64). Unlike
  // modulo this keeps each partition a contiguous prefix range.
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(prefix) * num_partitions) >> 64);
}

}  // namespace storage
}  // namespace lazysi
