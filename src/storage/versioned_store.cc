#include "storage/versioned_store.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <queue>

#include "common/hash.h"

namespace lazysi {
namespace storage {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  if (n <= 1) return 1;
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

VersionedStore::VersionedStore(std::size_t shard_count)
    : shards_(RoundUpPow2(shard_count)), shard_mask_(shards_.size() - 1) {}

std::size_t VersionedStore::ShardOf(const std::string& key) const {
  return static_cast<std::size_t>(Fnv1a64(key)) & shard_mask_;
}

const VersionedStore::Version* VersionedStore::VisibleVersion(
    const Chain& chain, Timestamp snapshot) {
  // Chains are in increasing commit_ts order; binary search for the newest
  // version with commit_ts <= snapshot.
  auto it = std::upper_bound(
      chain.begin(), chain.end(), snapshot,
      [](Timestamp s, const Version& v) { return s < v.commit_ts; });
  if (it == chain.begin()) return nullptr;
  return &*std::prev(it);
}

Result<VersionedValue> VersionedStore::Get(const std::string& key,
                                           Timestamp snapshot) const {
  const Shard& shard = shards_[ShardOf(key)];
  std::shared_lock lock(shard.mu);
  auto it = shard.chains.find(key);
  if (it == shard.chains.end()) return Status::NotFound();
  const Version* v = VisibleVersion(it->second, snapshot);
  if (v == nullptr || v->deleted) return Status::NotFound();
  return VersionedValue{v->value, v->commit_ts};
}

bool VersionedStore::HasCommitAfter(const std::string& key,
                                    Timestamp since) const {
  const Shard& shard = shards_[ShardOf(key)];
  std::shared_lock lock(shard.mu);
  auto it = shard.chains.find(key);
  if (it == shard.chains.end()) return false;
  const Chain& chain = it->second;
  return !chain.empty() && chain.back().commit_ts > since;
}

void VersionedStore::Apply(const WriteSet& writes, Timestamp commit_ts) {
  // Bucket the writes by shard so each shard lock is taken exactly once.
  // The scratch vector is thread-local to keep the hot auto-commit path
  // allocation-free after warm-up.
  thread_local std::vector<std::pair<std::size_t, const Write*>> scratch;
  scratch.clear();
  for (const auto& [key, w] : writes.entries()) {
    scratch.emplace_back(ShardOf(key), &w);
  }
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t i = 0;
  while (i < scratch.size()) {
    const std::size_t s = scratch[i].first;
    Shard& shard = shards_[s];
    std::unique_lock lock(shard.mu);
    for (; i < scratch.size() && scratch[i].first == s; ++i) {
      const Write& w = *scratch[i].second;
      Chain& chain = shard.chains[w.key];
      assert(chain.empty() || chain.back().commit_ts < commit_ts);
      chain.push_back(Version{commit_ts, w.value, w.deleted});
    }
  }
}

void VersionedStore::ApplyBatch(const std::vector<TimestampedWrites>& batch) {
  // Bucket (shard, write, ts) triples across the whole run, then lock each
  // touched shard once. Scratch order within a shard preserves batch order
  // (stable sort), i.e. increasing commit timestamps, so the common case
  // below is still a cheap append.
  struct Slot {
    std::size_t shard;
    const Write* write;
    Timestamp commit_ts;
  };
  thread_local std::vector<Slot> scratch;
  scratch.clear();
  for (const TimestampedWrites& tw : batch) {
    for (const auto& [key, w] : tw.writes->entries()) {
      scratch.push_back(Slot{ShardOf(key), &w, tw.commit_ts});
    }
  }
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const Slot& a, const Slot& b) { return a.shard < b.shard; });
  std::size_t i = 0;
  while (i < scratch.size()) {
    const std::size_t s = scratch[i].shard;
    Shard& shard = shards_[s];
    std::unique_lock lock(shard.mu);
    for (; i < scratch.size() && scratch[i].shard == s; ++i) {
      const Write& w = *scratch[i].write;
      const Timestamp ts = scratch[i].commit_ts;
      Chain& chain = shard.chains[w.key];
      if (chain.empty() || chain.back().commit_ts < ts) {
        chain.push_back(Version{ts, w.value, w.deleted});
      } else {
        // A later commit's version landed first (concurrent applicator run);
        // keep the chain sorted by inserting in place. Equal timestamps can
        // only be replayed duplicates of the same write — drop them.
        auto pos = std::lower_bound(
            chain.begin(), chain.end(), ts,
            [](const Version& v, Timestamp t) { return v.commit_ts < t; });
        if (pos != chain.end() && pos->commit_ts == ts) continue;
        chain.insert(pos, Version{ts, w.value, w.deleted});
      }
    }
  }
}

std::vector<std::pair<std::string, VersionedValue>> VersionedStore::Scan(
    const std::string& begin, const std::string& end,
    Timestamp snapshot) const {
  // Collect the ordered run of each shard, then k-way merge. Keys are unique
  // across shards (each key hashes to exactly one), so the merge needs no
  // duplicate handling. Cross-shard consistency comes from SI itself: all
  // commits <= snapshot are fully installed before the snapshot is issued.
  using Entry = std::pair<std::string, VersionedValue>;
  std::vector<std::vector<Entry>> runs;
  runs.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    std::vector<Entry> run;
    std::shared_lock lock(shard.mu);
    auto it = shard.chains.lower_bound(begin);
    for (; it != shard.chains.end(); ++it) {
      if (!end.empty() && it->first >= end) break;
      const Version* v = VisibleVersion(it->second, snapshot);
      if (v != nullptr && !v->deleted) {
        run.emplace_back(it->first, VersionedValue{v->value, v->commit_ts});
      }
    }
    if (!run.empty()) runs.push_back(std::move(run));
  }

  struct Cursor {
    std::size_t run;
    std::size_t pos;
  };
  auto later = [&runs](const Cursor& a, const Cursor& b) {
    return runs[a.run][a.pos].first > runs[b.run][b.pos].first;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);
  std::size_t total = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    heap.push(Cursor{r, 0});
    total += runs[r].size();
  }
  std::vector<Entry> out;
  out.reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out.push_back(std::move(runs[c.run][c.pos]));
    if (++c.pos < runs[c.run].size()) heap.push(c);
  }
  return out;
}

std::map<std::string, std::string> VersionedStore::Materialize(
    Timestamp snapshot) const {
  std::map<std::string, std::string> out;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, chain] : shard.chains) {
      const Version* v = VisibleVersion(chain, snapshot);
      if (v != nullptr && !v->deleted) out[key] = v->value;
    }
  }
  return out;
}

std::size_t VersionedStore::PruneVersions(Timestamp horizon) {
  std::size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    for (auto it = shard.chains.begin(); it != shard.chains.end();) {
      Chain& chain = it->second;
      // Keep the newest version with commit_ts <= horizon plus everything
      // newer than the horizon.
      auto keep = std::upper_bound(
          chain.begin(), chain.end(), horizon,
          [](Timestamp s, const Version& v) { return s < v.commit_ts; });
      if (keep != chain.begin()) --keep;  // retain the visible-at-horizon one
      dropped += static_cast<std::size_t>(keep - chain.begin());
      chain.erase(chain.begin(), keep);
      if (chain.empty() ||
          (chain.size() == 1 && chain[0].deleted &&
           chain[0].commit_ts <= horizon)) {
        dropped += chain.size();
        it = shard.chains.erase(it);
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

void VersionedStore::InstallClone(const std::map<std::string, std::string>& state,
                                  Timestamp commit_ts) {
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    shard.chains.clear();
  }
  for (const auto& [key, value] : state) {
    Shard& shard = shards_[ShardOf(key)];
    std::unique_lock lock(shard.mu);
    shard.chains[key].push_back(Version{commit_ts, value, /*deleted=*/false});
  }
}

std::size_t VersionedStore::KeyCount() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    n += shard.chains.size();
  }
  return n;
}

std::size_t VersionedStore::VersionCount() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, chain] : shard.chains) n += chain.size();
  }
  return n;
}

}  // namespace storage
}  // namespace lazysi
