#ifndef LAZYSI_STORAGE_VERSIONED_STORE_H_
#define LAZYSI_STORAGE_VERSIONED_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "storage/write_set.h"

namespace lazysi {
namespace storage {

/// A value observed by a snapshot read, together with the commit timestamp of
/// the version it came from. The history checkers use the timestamp to decide
/// which committed state a reader saw.
struct VersionedValue {
  std::string value;
  Timestamp commit_ts = kInvalidTimestamp;
};

/// Multi-version key-value store: each key maps to a chain of versions in
/// decreasing commit-timestamp order (newest first). Reads at snapshot `s`
/// return the newest version with commit_ts <= s and are therefore never
/// blocked by writers — the property the paper identifies as SI's key benefit
/// (Section 1).
///
/// Layout — lock-free snapshot reads over lock-striped writers:
///
///  - Keys are hash-partitioned across a fixed set of shards. Each shard has
///    (a) an ordered map used by writers, scans and counters under the
///    shard's reader-writer lock, and (b) a fixed array of atomic bucket
///    heads forming a lock-free hash index over immortal `KeyNode`s.
///  - A key's versions form a singly-linked, newest-first chain of
///    heap-allocated nodes. Writers (serialized per shard by the lock)
///    publish a new node with a release store of the chain head or of the
///    predecessor's `next`; every node is fully constructed before it is
///    published and immutable afterwards (only its `next` pointer changes,
///    and only to splice in an *older* node).
///  - `Get` and `HasCommitAfter` take no lock at all: an acquire load of the
///    bucket head finds the KeyNode, an acquire load of the chain head plus
///    acquire `next` hops finds the newest version with commit_ts <=
///    snapshot. Acquire/release pairing guarantees a reader that observes a
///    node pointer observes the node's contents; a torn prefix is impossible
///    because a chain is only ever extended by swinging exactly one pointer.
///
/// Reclamation contract (who may free what, and when):
///
///  - Shadowed tails: `PruneVersions(horizon)` cuts each chain after the
///    newest node with commit_ts <= horizon (the boundary node) and frees
///    the tail immediately. This is safe without hazard pointers *provided
///    every concurrent lock-free reader runs at a snapshot >= horizon*: such
///    a reader stops at (or before) the boundary node — whose timestamp is
///    <= horizon <= its snapshot — and never loads the severed `next`.
///    The TxnManager guarantees the proviso: it registers every snapshot in
///    an active table before reading and GC horizons are computed from that
///    table (see TxnManager::MinActiveSnapshot).
///  - Historical readers below the horizon (time travel): `PruneVersions`
///    first raises the monotone `gc_floor()` with a seq_cst store, and
///    horizon computation scans the active table only afterwards; a reader
///    registers its snapshot with a seq_cst store and only then loads the
///    floor. This Dekker-style handshake means at least one side sees the
///    other: either the pruner's horizon already accounts for the reader's
///    snapshot, or the reader observes the raised floor and demotes itself
///    to `GetLocked`, which excludes pruning via the shard lock.
///  - Unlinked boundary nodes (a fully-deleted key's tombstone) may still be
///    dereferenced by readers at snapshots >= horizon, so they are never
///    freed in place: they are retired to a list reclaimed only in the
///    destructor. KeyNodes are immortal for the store's lifetime (a pruned
///    key leaves a ghost KeyNode with a null chain in its bucket; rewriting
///    the key resurrects the ghost).
///
/// Thread safety: all operations are safe for concurrent use. `Apply` locks
/// one shard at a time and therefore does NOT make a multi-key commit visible
/// atomically by itself; the TxnManager's commit pipeline provides atomicity
/// by never issuing a snapshot >= commit_ts until the commit's installation
/// has finished (the `visible_ts` watermark).
class VersionedStore {
 public:
  static constexpr std::size_t kDefaultShardCount = 16;

  /// `shard_count` is rounded up to a power of two (minimum 1). A store with
  /// one shard reproduces the old single-global-lock layout for writers;
  /// reads are lock-free regardless.
  explicit VersionedStore(std::size_t shard_count = kDefaultShardCount);
  ~VersionedStore();

  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  /// Lock-free snapshot read. NotFound when the key has no version visible
  /// at `snapshot` (never written, written later, or deleted at the
  /// snapshot). Callers must read at snapshots protected per the reclamation
  /// contract above; unprotected historical reads go through GetLocked.
  Result<VersionedValue> Get(const std::string& key, Timestamp snapshot) const;

  /// Snapshot read under the shard's reader lock. Semantically identical to
  /// Get; used for snapshots below gc_floor() (safe against concurrent
  /// pruning without the active-table handshake) and as the contended-read
  /// benchmark baseline.
  Result<VersionedValue> GetLocked(const std::string& key,
                                   Timestamp snapshot) const;

  /// True if any committed version of `key` has commit_ts > `since`; reads
  /// only the chain head (chains are newest-first), lock-free. This is the
  /// first-committer-wins validation primitive: transaction T aborts iff
  /// some overlapping committed transaction wrote a key T also wrote
  /// (Section 2.1).
  bool HasCommitAfter(const std::string& key, Timestamp since) const;

  /// Installs all writes of one committed transaction with the given commit
  /// timestamp, locking each touched shard exactly once. Per-key commit
  /// timestamps must be increasing (enforced by the TxnManager's FCW rule);
  /// cross-shard visibility atomicity is the caller's job (see class
  /// comment).
  void Apply(const WriteSet& writes, Timestamp commit_ts);

  /// One element of a group install: a committed write set and its commit
  /// timestamp. The pointed-to write set must outlive the ApplyBatch call.
  struct TimestampedWrites {
    const WriteSet* writes = nullptr;
    Timestamp commit_ts = kInvalidTimestamp;
  };

  /// Installs a run of committed transactions in a single store pass: all
  /// writes of all commits are bucketed by shard and each touched shard lock
  /// is taken exactly once for the whole batch, instead of once per commit.
  ///
  /// `batch` must be in increasing commit-timestamp order. Unlike Apply,
  /// versions may arrive at a key *out of order across calls* — the direct-
  /// apply refresh engine installs independent runs from concurrent
  /// applicator threads, and two non-overlapping transactions that wrote the
  /// same key may land in either order — so versions are spliced in at their
  /// sorted chain position. Readers cannot observe the transient reordering:
  /// the commit pipeline's visibility watermark only passes a timestamp once
  /// every commit at or below it has fully installed.
  void ApplyBatch(const std::vector<TimestampedWrites>& batch);

  /// Key-ordered scan of all keys in [begin, end) visible at `snapshot`,
  /// produced by a k-way merge of the per-shard ordered runs.
  /// An empty `end` means "to the end of the keyspace".
  std::vector<std::pair<std::string, VersionedValue>> Scan(
      const std::string& begin, const std::string& end,
      Timestamp snapshot) const;

  /// Materializes the full latest-version state (used for recovery clones,
  /// Section 3.4, and for test assertions). Deleted keys are omitted.
  std::map<std::string, std::string> Materialize(Timestamp snapshot) const;

  /// Drops all versions that are shadowed by a newer version with
  /// commit_ts <= horizon; the newest such version is kept so reads at or
  /// after `horizon` still succeed. A key left with only a deleted tombstone
  /// at or below the horizon is dropped entirely. Shards are pruned
  /// independently. Returns the number of versions dropped.
  ///
  /// Safety: see the reclamation contract in the class comment. Lock-free
  /// readers concurrent with this call must be at snapshots >= horizon, which
  /// holds when `horizon` <= the TxnManager's MinActiveSnapshot computed
  /// after gc_floor() was raised (Database::GarbageCollect does both; raw
  /// calls with a hand-picked horizon require external quiescence).
  std::size_t PruneVersions(Timestamp horizon);

  /// Monotone high-water mark of every horizon ever passed to PruneVersions
  /// (or RaiseGcFloor). Snapshot reads strictly below the floor must use
  /// GetLocked; the TxnManager's BeginAtSnapshot checks this after pinning.
  Timestamp gc_floor() const {
    return gc_floor_.load(std::memory_order_seq_cst);
  }

  /// Raises gc_floor() to at least `floor` without pruning. The GC driver
  /// publishes its upper bound *before* computing the exact horizon from the
  /// active-snapshot table, closing the race against a concurrent historical
  /// Begin (see the reclamation contract).
  void RaiseGcFloor(Timestamp floor);

  /// Replaces the entire contents with `state`, all versions stamped
  /// `commit_ts`. Used when installing a recovery clone at a secondary.
  /// Old chains are retired, not freed, so stray concurrent readers (there
  /// should be none during recovery) never touch freed memory.
  void InstallClone(const std::map<std::string, std::string>& state,
                    Timestamp commit_ts);

  std::size_t KeyCount() const;
  std::size_t VersionCount() const;

  std::size_t shard_count() const { return shards_.size(); }

  /// Shard index `key` hashes to; stable for the lifetime of the store. The
  /// TxnManager keys its per-shard last-commit watermarks off this mapping.
  std::size_t ShardOf(const std::string& key) const;

  /// 64-bit shard-occupancy bitmap of a write set: bit (ShardOf(key) mod 64)
  /// is set for every key the set touches. Two write sets with disjoint
  /// footprints touch disjoint shards (the converse may not hold when the
  /// store has more than 64 shards — the fold is conservative, so a false
  /// collision only costs parallelism, never correctness). The secondary's
  /// key-disjoint apply scheduler runs non-overlapping runs concurrently
  /// based on these masks.
  std::uint64_t ShardFootprint(const WriteSet& writes) const;

 private:
  /// One version of one key. Immutable after publication except `next`,
  /// which only ever changes to splice in an older node (ApplyBatch) or to
  /// sever a pruned tail.
  struct VersionNode {
    Timestamp commit_ts;
    bool deleted;
    std::string value;
    std::atomic<VersionNode*> next{nullptr};  // next-older version
  };

  /// Immortal per-key anchor: lives in exactly one bucket chain from first
  /// write until the store is destroyed. `head` is the newest version
  /// (nullptr when the key is fully pruned — a ghost awaiting resurrection).
  struct KeyNode {
    std::string key;
    std::uint64_t hash;
    std::atomic<VersionNode*> head{nullptr};
    std::atomic<KeyNode*> bucket_next{nullptr};
  };

  /// Buckets per shard for the lock-free reader index (power of two).
  static constexpr std::size_t kBucketsPerShard = 512;

  struct Shard {
    mutable std::shared_mutex mu;
    /// Live keys; writers, scans and counters only (under `mu`).
    std::map<std::string, KeyNode*> chains;
    /// Lock-free reader index over all KeyNodes ever created in this shard
    /// (including ghosts). Written only under `mu`, read without it.
    std::vector<std::atomic<KeyNode*>> buckets =
        std::vector<std::atomic<KeyNode*>>(kBucketsPerShard);
    /// Unlinked version nodes that a concurrent reader may still hold;
    /// reclaimed in the destructor (under `mu`).
    std::vector<VersionNode*> retired;
  };

  std::size_t BucketOf(std::uint64_t hash) const {
    return (hash >> 16) & (kBucketsPerShard - 1);
  }

  /// Lock-free KeyNode lookup via the bucket index; nullptr when the key was
  /// never written.
  const KeyNode* FindKeyNode(const Shard& shard, std::uint64_t hash,
                             const std::string& key) const;

  /// Writer-side lookup-or-insert; caller holds the shard's unique lock.
  /// Resurrects ghosts instead of creating duplicate KeyNodes.
  KeyNode* FindOrCreateKeyNode(Shard& shard, std::uint64_t hash,
                               const std::string& key);

  /// Splices `{commit_ts, value, deleted}` into the (newest-first) chain at
  /// its sorted position; drops exact-timestamp duplicates (replayed
  /// writes). Caller holds the shard's unique lock.
  void InsertVersionSorted(KeyNode* node, Timestamp commit_ts,
                           const std::string& value, bool deleted);

  /// Newest version with commit_ts <= snapshot, starting from an
  /// acquire-loaded head; nullptr if none.
  static const VersionNode* VisibleVersion(const VersionNode* head,
                                           Timestamp snapshot);

  std::vector<Shard> shards_;
  std::size_t shard_mask_ = 0;  // shards_.size() - 1, size is a power of two
  std::atomic<Timestamp> gc_floor_{0};
};

/// Partition index of `key` under hash partitioning: a stable 64-bit hash
/// reduced modulo `num_partitions`. Uses a seed distinct from ShardOf's so
/// partition placement stays decorrelated from intra-store shard placement
/// (a partition's keys still spread across all store shards). Lives next to
/// ShardFootprint because both are key-placement primitives shared by the
/// store and the replication layer.
std::size_t HashPartitionOfKey(std::string_view key,
                               std::size_t num_partitions);

/// Partition index of `key` under range partitioning: the key's first eight
/// bytes, read big-endian (shorter keys zero-padded), scaled proportionally
/// over the 2^64 prefix space — partitions are contiguous key ranges of
/// equal prefix width.
std::size_t RangePartitionOfKey(std::string_view key,
                                std::size_t num_partitions);

}  // namespace storage
}  // namespace lazysi

#endif  // LAZYSI_STORAGE_VERSIONED_STORE_H_
