#ifndef LAZYSI_STORAGE_VERSIONED_STORE_H_
#define LAZYSI_STORAGE_VERSIONED_STORE_H_

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "storage/write_set.h"

namespace lazysi {
namespace storage {

/// A value observed by a snapshot read, together with the commit timestamp of
/// the version it came from. The history checkers use the timestamp to decide
/// which committed state a reader saw.
struct VersionedValue {
  std::string value;
  Timestamp commit_ts = kInvalidTimestamp;
};

/// Multi-version key-value store: each key maps to a chain of versions in
/// increasing commit-timestamp order. Reads at snapshot `s` return the newest
/// version with commit_ts <= s and are therefore never blocked by writers —
/// the property the paper identifies as SI's key benefit (Section 1).
///
/// Thread safety: all operations are safe for concurrent use. Version
/// installation (`Apply`) is expected to be serialized by the caller's commit
/// protocol (the TxnManager holds its commit mutex), which guarantees that
/// chains grow in timestamp order.
class VersionedStore {
 public:
  /// Snapshot read. NotFound when the key has no version visible at `snapshot`
  /// (never written, written later, or deleted at the snapshot).
  Result<VersionedValue> Get(const std::string& key, Timestamp snapshot) const;

  /// True if any committed version of `key` has commit_ts > `since`. This is
  /// the first-committer-wins validation primitive: transaction T aborts iff
  /// some overlapping committed transaction wrote a key T also wrote
  /// (Section 2.1).
  bool HasCommitAfter(const std::string& key, Timestamp since) const;

  /// Installs all writes of one committed transaction atomically with the
  /// given commit timestamp. Must be called with commit timestamps in
  /// increasing order (enforced by the TxnManager's commit mutex).
  void Apply(const WriteSet& writes, Timestamp commit_ts);

  /// Key-ordered scan of all keys in [begin, end) visible at `snapshot`.
  /// An empty `end` means "to the end of the keyspace".
  std::vector<std::pair<std::string, VersionedValue>> Scan(
      const std::string& begin, const std::string& end,
      Timestamp snapshot) const;

  /// Materializes the full latest-version state (used for recovery clones,
  /// Section 3.4, and for test assertions). Deleted keys are omitted.
  std::map<std::string, std::string> Materialize(Timestamp snapshot) const;

  /// Drops all versions that are shadowed by a newer version with
  /// commit_ts <= horizon; the newest such version is kept so reads at or
  /// after `horizon` still succeed. Returns the number of versions dropped.
  std::size_t PruneVersions(Timestamp horizon);

  /// Replaces the entire contents with `state`, all versions stamped
  /// `commit_ts`. Used when installing a recovery clone at a secondary.
  void InstallClone(const std::map<std::string, std::string>& state,
                    Timestamp commit_ts);

  std::size_t KeyCount() const;
  std::size_t VersionCount() const;

 private:
  struct Version {
    Timestamp commit_ts;
    std::string value;
    bool deleted;
  };
  using Chain = std::vector<Version>;

  /// Newest version in `chain` visible at `snapshot`, or nullptr.
  static const Version* VisibleVersion(const Chain& chain, Timestamp snapshot);

  mutable std::shared_mutex mu_;
  std::map<std::string, Chain> chains_;
};

}  // namespace storage
}  // namespace lazysi

#endif  // LAZYSI_STORAGE_VERSIONED_STORE_H_
