#ifndef LAZYSI_STORAGE_VERSIONED_STORE_H_
#define LAZYSI_STORAGE_VERSIONED_STORE_H_

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "storage/write_set.h"

namespace lazysi {
namespace storage {

/// A value observed by a snapshot read, together with the commit timestamp of
/// the version it came from. The history checkers use the timestamp to decide
/// which committed state a reader saw.
struct VersionedValue {
  std::string value;
  Timestamp commit_ts = kInvalidTimestamp;
};

/// Multi-version key-value store: each key maps to a chain of versions in
/// increasing commit-timestamp order. Reads at snapshot `s` return the newest
/// version with commit_ts <= s and are therefore never blocked by writers —
/// the property the paper identifies as SI's key benefit (Section 1).
///
/// Key chains are hash-partitioned across a fixed set of lock-striped shards,
/// each with its own reader-writer lock and ordered map. Point operations
/// (`Get`, `HasCommitAfter`, per-key installation) touch exactly one shard, so
/// concurrent reads of different keys never contend on a shared lock word;
/// `Scan` and `Materialize` merge the per-shard ordered runs.
///
/// Thread safety: all operations are safe for concurrent use. `Apply` locks
/// one shard at a time and therefore does NOT make a multi-key commit visible
/// atomically by itself; the TxnManager's commit pipeline provides atomicity
/// by never issuing a snapshot >= commit_ts until the commit's installation
/// has finished (the `visible_ts` watermark). Per-key chains must still grow
/// in commit-timestamp order, which first-committer-wins guarantees: two
/// transactions whose installations overlap can never share a key.
class VersionedStore {
 public:
  static constexpr std::size_t kDefaultShardCount = 16;

  /// `shard_count` is rounded up to a power of two (minimum 1). A store with
  /// one shard behaves exactly like the old single-global-lock layout, which
  /// the contended benchmarks use as their baseline.
  explicit VersionedStore(std::size_t shard_count = kDefaultShardCount);

  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  /// Snapshot read. NotFound when the key has no version visible at `snapshot`
  /// (never written, written later, or deleted at the snapshot).
  Result<VersionedValue> Get(const std::string& key, Timestamp snapshot) const;

  /// True if any committed version of `key` has commit_ts > `since`. This is
  /// the first-committer-wins validation primitive: transaction T aborts iff
  /// some overlapping committed transaction wrote a key T also wrote
  /// (Section 2.1).
  bool HasCommitAfter(const std::string& key, Timestamp since) const;

  /// Installs all writes of one committed transaction with the given commit
  /// timestamp, locking each touched shard exactly once. Per-key commit
  /// timestamps must be increasing (enforced by the TxnManager's FCW rule);
  /// cross-shard visibility atomicity is the caller's job (see class comment).
  void Apply(const WriteSet& writes, Timestamp commit_ts);

  /// One element of a group install: a committed write set and its commit
  /// timestamp. The pointed-to write set must outlive the ApplyBatch call.
  struct TimestampedWrites {
    const WriteSet* writes = nullptr;
    Timestamp commit_ts = kInvalidTimestamp;
  };

  /// Installs a run of committed transactions in a single store pass: all
  /// writes of all commits are bucketed by shard and each touched shard lock
  /// is taken exactly once for the whole batch, instead of once per commit.
  ///
  /// `batch` must be in increasing commit-timestamp order. Unlike Apply,
  /// versions may arrive at a key *out of order across calls* — the direct-
  /// apply refresh engine installs independent runs from concurrent
  /// applicator threads, and two non-overlapping transactions that wrote the
  /// same key may land in either order — so versions are inserted at their
  /// sorted chain position. Readers cannot observe the transient reordering:
  /// the commit pipeline's visibility watermark only passes a timestamp once
  /// every commit at or below it has fully installed.
  void ApplyBatch(const std::vector<TimestampedWrites>& batch);

  /// Key-ordered scan of all keys in [begin, end) visible at `snapshot`,
  /// produced by a k-way merge of the per-shard ordered runs.
  /// An empty `end` means "to the end of the keyspace".
  std::vector<std::pair<std::string, VersionedValue>> Scan(
      const std::string& begin, const std::string& end,
      Timestamp snapshot) const;

  /// Materializes the full latest-version state (used for recovery clones,
  /// Section 3.4, and for test assertions). Deleted keys are omitted.
  std::map<std::string, std::string> Materialize(Timestamp snapshot) const;

  /// Drops all versions that are shadowed by a newer version with
  /// commit_ts <= horizon; the newest such version is kept so reads at or
  /// after `horizon` still succeed. Shards are pruned independently.
  /// Returns the number of versions dropped.
  std::size_t PruneVersions(Timestamp horizon);

  /// Replaces the entire contents with `state`, all versions stamped
  /// `commit_ts`. Used when installing a recovery clone at a secondary.
  void InstallClone(const std::map<std::string, std::string>& state,
                    Timestamp commit_ts);

  std::size_t KeyCount() const;
  std::size_t VersionCount() const;

  std::size_t shard_count() const { return shards_.size(); }

  /// Shard index `key` hashes to; stable for the lifetime of the store. The
  /// TxnManager keys its per-shard last-commit watermarks off this mapping.
  std::size_t ShardOf(const std::string& key) const;

 private:
  struct Version {
    Timestamp commit_ts;
    std::string value;
    bool deleted;
  };
  using Chain = std::vector<Version>;

  struct Shard {
    mutable std::shared_mutex mu;
    std::map<std::string, Chain> chains;
  };

  /// Newest version in `chain` visible at `snapshot`, or nullptr.
  static const Version* VisibleVersion(const Chain& chain, Timestamp snapshot);

  std::vector<Shard> shards_;
  std::size_t shard_mask_ = 0;  // shards_.size() - 1, size is a power of two
};

}  // namespace storage
}  // namespace lazysi

#endif  // LAZYSI_STORAGE_VERSIONED_STORE_H_
