#include "txn/txn_manager.h"

#include <cassert>
#include <functional>
#include <thread>

namespace lazysi {
namespace txn {

TxnManager::TxnManager(storage::VersionedStore* store, TxnObserver* observer)
    : store_(store),
      observer_(observer),
      shard_last_commit_(store->shard_count(), kInvalidTimestamp) {}

TxnManager::~TxnManager() {
  // Banks beyond the inline first one were heap-allocated by GrowBank; no
  // transaction may outlive the manager, so no slot pointer dangles.
  SlotBank* bank = first_bank_.next.load(std::memory_order_acquire);
  while (bank != nullptr) {
    SlotBank* next = bank->next.load(std::memory_order_acquire);
    delete bank;
    bank = next;
  }
}

std::unique_ptr<Transaction> TxnManager::Begin(bool read_only) {
  if (read_only) return BeginReadOnly();
  const TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  Timestamp start_ts;
  Timestamp snapshot;
  {
    std::lock_guard<std::mutex> lock(clock_mu_);
    // The start timestamp advances the clock so that start/commit order is
    // totally ordered and log order can mirror it.
    start_ts = ++clock_;
    if (observer_ != nullptr) {
      observer_->OnStart(id, start_ts);
    }
    // Strong SI: the snapshot is the latest fully installed committed state
    // (Definition 2.1). It must be chosen in the *same* critical section
    // that emits the start record: commit records are also emitted under
    // clock_mu_, so a commit precedes this start record in the log iff its
    // timestamp is visible to this snapshot. The secondary's refresher
    // depends on exactly that equivalence — it derives each refresh
    // transaction's snapshot point from log order (Algorithm 3.2), and a
    // snapshot taken outside the critical section could include a commit
    // whose log record follows the start record, making two transactions
    // look concurrent at the secondary that were not concurrent here.
    // Tracked atomically with its choice so the GC horizon can never pass
    // it (lock order: clock_mu_ -> active_mu_).
    snapshot = TrackActiveAtWatermark();
  }
  return std::unique_ptr<Transaction>(
      new Transaction(this, id, start_ts, snapshot, read_only));
}

std::unique_ptr<Transaction> TxnManager::BeginReadOnly() {
  const TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  Timestamp snapshot;
  std::atomic<Timestamp>* slot = ClaimReadSlot(&snapshot);
  auto* t = new Transaction(this, id, /*start_ts=*/snapshot, snapshot,
                            /*read_only=*/true);
  t->active_slot_ = slot;
  return std::unique_ptr<Transaction>(t);
}

std::atomic<Timestamp>* TxnManager::TryClaimExisting(Timestamp value,
                                                     SlotBank** tail) {
  // Thread-local probe hint: repeat callers from the same thread land on
  // "their" slot with one CAS and never share a cache line with neighbours.
  thread_local std::size_t hint =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  SlotBank* bank = &first_bank_;
  for (;;) {
    for (std::size_t probe = 0; probe < kSlotsPerBank; ++probe) {
      const std::size_t idx = (hint + probe) & (kSlotsPerBank - 1);
      std::atomic<Timestamp>& slot = bank->slots[idx].ts;
      Timestamp expected = kFreeSlot;
      if (slot.compare_exchange_strong(expected, value,
                                       std::memory_order_seq_cst)) {
        hint = idx;
        return &slot;
      }
    }
    SlotBank* next = bank->next.load(std::memory_order_seq_cst);
    if (next == nullptr) {
      *tail = bank;
      return nullptr;
    }
    bank = next;
  }
}

std::atomic<Timestamp>* TxnManager::GrowBank(Timestamp value, SlotBank* tail) {
  // Slot 0 is pre-claimed before the bank is reachable; the seq_cst link CAS
  // is the slot's publication (the same role the claiming CAS plays for an
  // existing slot in the scan order argument — see MinActiveSnapshot).
  auto* fresh = new SlotBank;
  fresh->slots[0].ts.store(value, std::memory_order_relaxed);
  SlotBank* expected = nullptr;
  if (tail->next.compare_exchange_strong(expected, fresh,
                                         std::memory_order_seq_cst)) {
    bank_count_.fetch_add(1, std::memory_order_relaxed);
    return &fresh->slots[0].ts;
  }
  // Another thread linked a bank first; its slots are fair game — retry the
  // probe instead.
  delete fresh;
  return nullptr;
}

std::atomic<Timestamp>* TxnManager::ClaimReadSlot(Timestamp* snapshot) {
  std::atomic<Timestamp>* slot = nullptr;
  Timestamp s = visible_ts_.load(std::memory_order_seq_cst);
  while (slot == nullptr) {
    SlotBank* tail = nullptr;
    slot = TryClaimExisting(s, &tail);
    if (slot == nullptr) slot = GrowBank(s, tail);
  }
  // Publish-validate: the watermark may have advanced between our load
  // and the publication, in which case a concurrent MinActiveSnapshot
  // could have scanned before our publish *and* loaded the newer
  // watermark — its horizon might exceed s. Re-publishing until the
  // watermark is stable closes the window: once it validates, any
  // horizon computed before our publish loaded a watermark <= s (the
  // watermark is monotone and still s after our publish), and any
  // computed after sees the slot.
  for (;;) {
    const Timestamp now = visible_ts_.load(std::memory_order_seq_cst);
    if (now == s) break;
    s = now;
    slot->store(s, std::memory_order_seq_cst);
  }
  *snapshot = s;
  return slot;
}

std::atomic<Timestamp>* TxnManager::ClaimHistoricalSlot(Timestamp snapshot) {
  for (;;) {
    SlotBank* tail = nullptr;
    std::atomic<Timestamp>* slot = TryClaimExisting(snapshot, &tail);
    if (slot == nullptr) slot = GrowBank(snapshot, tail);
    if (slot != nullptr) return slot;
  }
}

void TxnManager::ReleaseSnapshot(Transaction* t) {
  if (t->active_slot_ != nullptr) {
    // Release ordering: the reader's chain traversals happen-before the
    // slot frees, so a GC that sees the free slot also sees the reads done.
    t->active_slot_->store(kFreeSlot, std::memory_order_release);
    t->active_slot_ = nullptr;
    return;
  }
  UntrackActive(t->snapshot_ts());
}

Result<std::unique_ptr<Transaction>> TxnManager::BeginAtSnapshot(
    Timestamp snapshot) {
  // Pin the snapshot before validating it: pinning first means any GC
  // horizon computed from now on is capped at `snapshot`, closing the race
  // where GarbageCollect pruned the snapshot between the visibility check
  // and the pin.
  std::atomic<Timestamp>* slot = ClaimHistoricalSlot(snapshot);
  auto untrack = [&] { slot->store(kFreeSlot, std::memory_order_release); };
  if (snapshot > visible_ts_.load(std::memory_order_seq_cst)) {
    untrack();
    return Status::InvalidArgument(
        "snapshot is in the future of this site's committed state");
  }
  // Floor check strictly after the pin (seq_cst on both sides): either the
  // pruner's horizon scan saw our pin (horizon <= snapshot, lock-free reads
  // are covered), or we see its raised floor here and demote every read to
  // the locked path, which a concurrent prune excludes via the shard lock.
  const bool locked_reads = snapshot < store_->gc_floor();
  const TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  auto* t = new Transaction(this, id, snapshot, snapshot, /*read_only=*/true);
  t->active_slot_ = slot;
  t->locked_reads_ = locked_reads;
  return std::unique_ptr<Transaction>(t);
}

Timestamp TxnManager::TrackActiveAtWatermark() {
  std::lock_guard<std::mutex> lock(active_mu_);
  const Timestamp snapshot = visible_ts_.load(std::memory_order_acquire);
  active_snapshots_.insert(snapshot);
  return snapshot;
}

void TxnManager::TrackActive(Timestamp snapshot) {
  std::lock_guard<std::mutex> lock(active_mu_);
  active_snapshots_.insert(snapshot);
}

void TxnManager::UntrackActive(Timestamp snapshot) {
  std::lock_guard<std::mutex> lock(active_mu_);
  auto it = active_snapshots_.find(snapshot);
  if (it != active_snapshots_.end()) active_snapshots_.erase(it);
}

Timestamp TxnManager::MinActiveSnapshot() const {
  // Watermark first, slots second, both seq_cst: this is the counterpart of
  // the readers' publish-validate (see BeginReadOnly). A reader whose slot
  // this scan misses must have published after the scan started, and its
  // validated snapshot is then >= the watermark loaded here, so the
  // returned horizon cannot exceed it. The same argument covers a whole
  // missed bank: the seq_cst link CAS is the publication of its pre-claimed
  // slot, so a scan whose null `next` load precedes the link also loaded
  // the watermark before the claimer validated. Free slots hold kFreeSlot
  // (= max) and never lower the min.
  Timestamp m = visible_ts_.load(std::memory_order_seq_cst);
  for (const SlotBank* bank = &first_bank_; bank != nullptr;
       bank = bank->next.load(std::memory_order_seq_cst)) {
    for (const ActiveSlot& slot : bank->slots) {
      const Timestamp s = slot.ts.load(std::memory_order_seq_cst);
      if (s < m) m = s;
    }
  }
  std::lock_guard<std::mutex> lock(active_mu_);
  if (!active_snapshots_.empty()) {
    m = std::min(m, *active_snapshots_.begin());
  }
  return m;
}

void TxnManager::StageInflightCommit(Timestamp commit_ts) {
  std::lock_guard<std::mutex> lock(visible_mu_);
  inflight_commits_.push_back(InflightCommit{commit_ts, /*installed=*/false});
  last_allocated_commit_ = commit_ts;
}

void TxnManager::PublishCommit(Timestamp commit_ts) {
  {
    std::unique_lock<std::mutex> lock(visible_mu_);
    for (auto& inflight : inflight_commits_) {
      if (inflight.ts == commit_ts) {
        inflight.installed = true;
        break;
      }
    }
    // The watermark advances over the fully installed prefix: everything up
    // to the oldest still-installing commit is safe to expose to snapshots.
    Timestamp new_visible = visible_ts_.load(std::memory_order_relaxed);
    while (!inflight_commits_.empty() && inflight_commits_.front().installed) {
      new_visible = inflight_commits_.front().ts;
      inflight_commits_.pop_front();
    }
    if (new_visible > visible_ts_.load(std::memory_order_relaxed)) {
      visible_ts_.store(new_visible, std::memory_order_release);
      visible_cv_.notify_all();
    }
    // Acknowledge in timestamp order: the client may not learn of the commit
    // until every earlier commit is also visible, so a snapshot taken after
    // this return includes this commit (strong SI) and never a partial one.
    visible_cv_.wait(lock, [&] {
      return visible_ts_.load(std::memory_order_relaxed) >= commit_ts;
    });
  }
  // Unlist from `installing_` strictly after publication: while the entry is
  // present, validators may read our write set (the transaction is alive,
  // since CommitTxn has not returned); once removed, the store answers for
  // us, because our versions are installed and visible.
  std::lock_guard<std::mutex> lock(clock_mu_);
  for (auto it = installing_.begin(); it != installing_.end(); ++it) {
    if (it->commit_ts == commit_ts) {
      installing_.erase(it);
      break;
    }
  }
}

Timestamp TxnManager::ExternalStart(TxnId id) {
  std::lock_guard<std::mutex> lock(clock_mu_);
  const Timestamp start_ts = ++clock_;
  if (observer_ != nullptr) observer_->OnStart(id, start_ts);
  return start_ts;
}

void TxnManager::ExternalAbort(TxnId id) {
  aborted_count_.fetch_add(1, std::memory_order_relaxed);
  if (observer_ != nullptr) {
    std::lock_guard<std::mutex> lock(clock_mu_);
    observer_->OnAbort(id);
  }
}

Timestamp TxnManager::BeginExternalCommit(TxnId id,
                                          const storage::WriteSet& writes) {
  std::lock_guard<std::mutex> lock(clock_mu_);
  const Timestamp commit_ts = ++clock_;
  // The local log must carry the update records (cascaded propagators tail
  // it), and validation of any concurrent local update transaction must see
  // this commit: bump the per-shard watermarks and list the write set as
  // installing. Emitting everything inside one clock_mu_ critical section
  // keeps log order == timestamp order, the invariant every lemma rests on.
  for (const auto& [key, w] : writes.entries()) {
    shard_last_commit_[store_->ShardOf(key)] = commit_ts;
    if (observer_ != nullptr) {
      observer_->OnUpdate(id, key, w.value, w.deleted);
    }
  }
  installing_.push_back(PendingInstall{commit_ts, &writes});
  if (observer_ != nullptr) observer_->OnCommit(id, commit_ts, writes);
  StageInflightCommit(commit_ts);
  return commit_ts;
}

std::vector<Timestamp> TxnManager::BeginExternalCommitBatch(
    const std::vector<ExternalCommitRequest>& batch) {
  std::vector<Timestamp> allocated;
  allocated.reserve(batch.size());
  if (batch.empty()) return allocated;
  std::lock_guard<std::mutex> lock(clock_mu_);
  for (const ExternalCommitRequest& req : batch) {
    const Timestamp commit_ts = ++clock_;
    for (const auto& [key, w] : req.writes->entries()) {
      shard_last_commit_[store_->ShardOf(key)] = commit_ts;
      if (observer_ != nullptr) {
        observer_->OnUpdate(req.id, key, w.value, w.deleted);
      }
    }
    installing_.push_back(PendingInstall{commit_ts, req.writes});
    if (observer_ != nullptr) observer_->OnCommit(req.id, commit_ts, *req.writes);
    allocated.push_back(commit_ts);
  }
  // Stage the whole run in the visibility pipeline under one visible_mu_
  // hold. Staging is normally interleaved with allocation (StageInflightCommit
  // under clock_mu_), but clock_mu_ is held across the entire loop above, so
  // no other commit can have been allocated in between and appending the run
  // here keeps the inflight deque sorted by timestamp.
  {
    std::lock_guard<std::mutex> visible_lock(visible_mu_);
    for (const Timestamp ts : allocated) {
      inflight_commits_.push_back(InflightCommit{ts, /*installed=*/false});
    }
    last_allocated_commit_ = allocated.back();
  }
  return allocated;
}

Timestamp TxnManager::FinishExternalCommit(Timestamp commit_ts) {
  Timestamp new_visible;
  {
    std::lock_guard<std::mutex> lock(visible_mu_);
    for (auto& inflight : inflight_commits_) {
      if (inflight.ts == commit_ts) {
        inflight.installed = true;
        break;
      }
    }
    new_visible = visible_ts_.load(std::memory_order_relaxed);
    while (!inflight_commits_.empty() && inflight_commits_.front().installed) {
      new_visible = inflight_commits_.front().ts;
      inflight_commits_.pop_front();
    }
    if (new_visible > visible_ts_.load(std::memory_order_relaxed)) {
      visible_ts_.store(new_visible, std::memory_order_release);
      visible_cv_.notify_all();
    }
  }
  // Unlist after installation (the caller installed before calling us): from
  // here the store is authoritative for this commit's writes, visible or not
  // — HasCommitAfter reads raw chains, not snapshots.
  {
    std::lock_guard<std::mutex> lock(clock_mu_);
    for (auto it = installing_.begin(); it != installing_.end(); ++it) {
      if (it->commit_ts == commit_ts) {
        installing_.erase(it);
        break;
      }
    }
  }
  committed_count_.fetch_add(1, std::memory_order_relaxed);
  return new_visible;
}

void TxnManager::ResetForRecovery(Timestamp clock, Timestamp visible,
                                  TxnId next_txn_id) {
  std::lock_guard<std::mutex> clock_lock(clock_mu_);
  std::lock_guard<std::mutex> visible_lock(visible_mu_);
  clock_ = clock;
  visible_ts_.store(visible, std::memory_order_release);
  last_allocated_commit_ = visible;
  next_txn_id_.store(next_txn_id, std::memory_order_relaxed);
}

Status TxnManager::CommitTxn(Transaction* t) {
  assert(t->state() == Transaction::State::kActive);
  if (t->write_set().empty()) {
    // Read-only (or empty) commit: no validation, no new database state.
    // Update-declared transactions still emit a commit record so their
    // refresh transactions at the secondaries are resolved; they go through
    // the same ordered watermark publication as real commits.
    if (!t->read_only()) {
      Timestamp commit_ts;
      {
        std::lock_guard<std::mutex> lock(clock_mu_);
        commit_ts = ++clock_;
        t->commit_ts_ = commit_ts;
        if (observer_ != nullptr) {
          observer_->OnCommit(t->id(), commit_ts, t->write_set());
        }
        StageInflightCommit(commit_ts);
      }
      PublishCommit(commit_ts);
      committed_count_.fetch_add(1, std::memory_order_relaxed);
      if (durability_gate_) {
        Status durable = durability_gate_(commit_ts);
        if (!durable.ok()) {
          t->state_ = Transaction::State::kCommitted;
          ReleaseSnapshot(t);
          return durable;
        }
      }
    }
    t->state_ = Transaction::State::kCommitted;
    ReleaseSnapshot(t);
    return Status::OK();
  }

  // Phase 1 — FCW pre-validation (Section 2.1), against the installed
  // history and without holding any manager lock: T aborts iff some
  // committed transaction whose lifespan overlapped T's wrote a key T also
  // wrote. "Committed with commit_ts > snapshot(T)" is exactly lifespan
  // overlap, since anything committed before the snapshot is in T's
  // snapshot. This pass is a pure early abort — phase 2 is complete on its
  // own — so it is skipped outright when nothing has committed since T's
  // snapshot (the uncontended fast path).
  if (visible_ts_.load(std::memory_order_acquire) != t->snapshot_ts()) {
    for (const auto& [key, w] : t->write_set().entries()) {
      if (store_->HasCommitAfter(key, t->snapshot_ts())) {
        AbortTxn(t);
        return Status::WriteConflict(
            "key '" + key + "' written by a concurrent committed txn");
      }
    }
  }

  Timestamp commit_ts = kInvalidTimestamp;
  std::string conflict_key;
  {
    std::lock_guard<std::mutex> lock(clock_mu_);
    // Phase 2 — exact validation, then timestamp allocation and log
    // emission. The per-shard watermark skips every key whose shard saw no
    // commit after T's snapshot — one array read per key, the whole cost
    // when uncontended. A racing key is conflict-checked against the
    // still-installing commits' write sets and, for commits already
    // installed and unlisted, against the store.
    for (const auto& [key, w] : t->write_set().entries()) {
      if (shard_last_commit_[store_->ShardOf(key)] <= t->snapshot_ts()) {
        continue;
      }
      for (const PendingInstall& pending : installing_) {
        if (pending.commit_ts > t->snapshot_ts() &&
            pending.writes->Find(key) != nullptr) {
          conflict_key = key;
          break;
        }
      }
      if (conflict_key.empty() &&
          store_->HasCommitAfter(key, t->snapshot_ts())) {
        conflict_key = key;
      }
      if (!conflict_key.empty()) break;
    }
    if (conflict_key.empty()) {
      commit_ts = ++clock_;
      for (const auto& [key, w] : t->write_set().entries()) {
        shard_last_commit_[store_->ShardOf(key)] = commit_ts;
      }
      installing_.push_back(PendingInstall{commit_ts, &t->write_set()});
      t->commit_ts_ = commit_ts;
      if (observer_ != nullptr) {
        observer_->OnCommit(t->id(), commit_ts, t->write_set());
      }
      StageInflightCommit(commit_ts);
    }
  }
  if (!conflict_key.empty()) {
    AbortTxn(t);
    return Status::WriteConflict("key '" + conflict_key +
                                 "' written by a concurrent committed txn");
  }

  // Phase 3 — version installation, outside the critical section and
  // overlapping with other commits. FCW guarantees no two in-flight
  // installations share a key, so per-key chains still grow in timestamp
  // order.
  store_->Apply(t->write_set(), commit_ts);

  // Phase 4 — publish visibility in timestamp order and acknowledge. The
  // durability gate then holds the acknowledgement until the commit's log
  // record is flushed (group commit shares one fsync across all committers
  // parked here).
  PublishCommit(commit_ts);
  committed_count_.fetch_add(1, std::memory_order_relaxed);
  t->state_ = Transaction::State::kCommitted;
  ReleaseSnapshot(t);
  if (durability_gate_) {
    LAZYSI_RETURN_NOT_OK(durability_gate_(commit_ts));
  }
  return Status::OK();
}

void TxnManager::AbortTxn(Transaction* t) {
  if (t->state() != Transaction::State::kActive) return;
  t->state_ = Transaction::State::kAborted;
  ReleaseSnapshot(t);
  if (!t->read_only()) {
    // Only update-transaction aborts are interesting (FCW losers and client
    // rollbacks); dropped read-only handles are routine.
    aborted_count_.fetch_add(1, std::memory_order_relaxed);
    if (observer_ != nullptr) observer_->OnAbort(t->id());
  }
}

void TxnManager::NotifyUpdate(TxnId id, const std::string& key,
                              const std::string& value, bool deleted) {
  if (observer_ != nullptr) {
    observer_->OnUpdate(id, key, value, deleted);
  }
}

}  // namespace txn
}  // namespace lazysi
