#include "txn/txn_manager.h"

#include <cassert>

namespace lazysi {
namespace txn {

TxnManager::TxnManager(storage::VersionedStore* store, TxnObserver* observer)
    : store_(store), observer_(observer) {}

std::unique_ptr<Transaction> TxnManager::Begin(bool read_only) {
  const TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  Timestamp start_ts;
  {
    std::lock_guard<std::mutex> lock(clock_mu_);
    // Strong SI: the snapshot is the latest committed state. The start
    // timestamp still advances the clock so that start/commit order is
    // totally ordered and log order can mirror it.
    start_ts = ++clock_;
    if (!read_only && observer_ != nullptr) {
      observer_->OnStart(id, start_ts);
    }
  }
  TrackActive(start_ts);
  return std::unique_ptr<Transaction>(
      new Transaction(this, id, start_ts, read_only));
}

Result<std::unique_ptr<Transaction>> TxnManager::BeginAtSnapshot(
    Timestamp snapshot) {
  {
    std::lock_guard<std::mutex> lock(clock_mu_);
    if (snapshot > clock_) {
      return Status::InvalidArgument(
          "snapshot is in the future of this site's clock");
    }
  }
  const TxnId id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  TrackActive(snapshot);
  return std::unique_ptr<Transaction>(
      new Transaction(this, id, snapshot, /*read_only=*/true));
}

void TxnManager::TrackActive(Timestamp snapshot) {
  std::lock_guard<std::mutex> lock(active_mu_);
  active_snapshots_.insert(snapshot);
}

void TxnManager::UntrackActive(Timestamp snapshot) {
  std::lock_guard<std::mutex> lock(active_mu_);
  auto it = active_snapshots_.find(snapshot);
  if (it != active_snapshots_.end()) active_snapshots_.erase(it);
}

Timestamp TxnManager::MinActiveSnapshot() const {
  std::lock_guard<std::mutex> lock(active_mu_);
  const Timestamp latest = latest_commit_ts_.load(std::memory_order_acquire);
  if (active_snapshots_.empty()) return latest;
  return std::min(latest, *active_snapshots_.begin());
}

Status TxnManager::CommitTxn(Transaction* t) {
  assert(t->state() == Transaction::State::kActive);
  if (t->write_set().empty()) {
    // Read-only (or empty) commit: no validation, no new database state.
    // Update-declared transactions still emit a commit record so their
    // refresh transactions at the secondaries are resolved.
    if (!t->read_only()) {
      std::lock_guard<std::mutex> lock(clock_mu_);
      const Timestamp commit_ts = ++clock_;
      t->commit_ts_ = commit_ts;
      if (observer_ != nullptr) {
        observer_->OnCommit(t->id(), commit_ts, t->write_set());
      }
      latest_commit_ts_.store(commit_ts, std::memory_order_release);
      committed_count_.fetch_add(1, std::memory_order_relaxed);
    }
    t->state_ = Transaction::State::kCommitted;
    UntrackActive(t->start_ts());
    return Status::OK();
  }

  std::unique_lock<std::mutex> lock(clock_mu_);
  // First-committer-wins (Section 2.1): T aborts iff some committed
  // transaction whose lifespan overlapped T's wrote a key T also wrote.
  // "Committed with commit_ts > start(T)" is exactly lifespan overlap, since
  // anything committed before start(T) is in T's snapshot.
  for (const auto& [key, w] : t->write_set().entries()) {
    if (store_->HasCommitAfter(key, t->start_ts())) {
      lock.unlock();
      AbortTxn(t);
      return Status::WriteConflict("key '" + key +
                                   "' written by a concurrent committed txn");
    }
  }
  const Timestamp commit_ts = ++clock_;
  store_->Apply(t->write_set(), commit_ts);
  t->commit_ts_ = commit_ts;
  if (observer_ != nullptr) {
    observer_->OnCommit(t->id(), commit_ts, t->write_set());
  }
  latest_commit_ts_.store(commit_ts, std::memory_order_release);
  committed_count_.fetch_add(1, std::memory_order_relaxed);
  t->state_ = Transaction::State::kCommitted;
  lock.unlock();
  UntrackActive(t->start_ts());
  return Status::OK();
}

void TxnManager::AbortTxn(Transaction* t) {
  if (t->state() != Transaction::State::kActive) return;
  t->state_ = Transaction::State::kAborted;
  UntrackActive(t->start_ts());
  if (!t->read_only()) {
    // Only update-transaction aborts are interesting (FCW losers and client
    // rollbacks); dropped read-only handles are routine.
    aborted_count_.fetch_add(1, std::memory_order_relaxed);
    if (observer_ != nullptr) observer_->OnAbort(t->id());
  }
}

void TxnManager::NotifyUpdate(TxnId id, const std::string& key,
                              const std::string& value, bool deleted) {
  if (observer_ != nullptr) {
    observer_->OnUpdate(id, key, value, deleted);
  }
}

}  // namespace txn
}  // namespace lazysi
