#ifndef LAZYSI_TXN_TRANSACTION_H_
#define LAZYSI_TXN_TRANSACTION_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "storage/versioned_store.h"
#include "storage/write_set.h"

namespace lazysi {
namespace txn {

class TxnManager;

/// One observed read: which key, and the commit timestamp of the version the
/// snapshot produced (kInvalidTimestamp when the key was absent). History
/// checkers use these observations to validate the SI guarantees of
/// Section 2 on real executions.
struct ReadObservation {
  std::string key;
  Timestamp version_commit_ts = kInvalidTimestamp;
  bool found = false;
  bool from_own_write = false;
};

/// A transaction handle running under the site's local strong SI control.
///
/// Lifecycle: Begin (via TxnManager) -> Get/Put/Delete/Scan -> Commit or
/// Abort. A handle may be passed between threads (the refresher begins a
/// refresh transaction and an applicator finishes it, Algorithms 3.2/3.3) but
/// must not be used from two threads concurrently.
class Transaction {
 public:
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  /// start_p(T): the clock value issued at Begin; orders this transaction's
  /// start against all other starts and commits (and is what the start log
  /// record carries).
  Timestamp start_ts() const { return start_ts_; }
  /// The snapshot this transaction reads: the visibility watermark at Begin
  /// time, i.e. the latest fully installed committed state. Under strong SI
  /// this includes every commit acknowledged before Begin (Definition 2.1).
  /// Also the first-committer-wins validation boundary.
  Timestamp snapshot_ts() const { return snapshot_ts_; }
  /// commit_p(T); kInvalidTimestamp until committed.
  Timestamp commit_ts() const { return commit_ts_; }
  bool read_only() const { return read_only_; }

  enum class State { kActive, kCommitted, kAborted };
  State state() const { return state_; }

  /// Snapshot read; sees the transaction's own buffered writes first
  /// (SI requires a transaction to see its own updates, Section 2.1).
  Result<std::string> Get(const std::string& key);

  /// Buffers an update. InvalidArgument on read-only transactions,
  /// FailedPrecondition once no longer active.
  Status Put(const std::string& key, std::string value);
  Status Delete(const std::string& key);

  /// Key-ordered snapshot scan of [begin, end), own writes overlaid.
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      const std::string& begin, const std::string& end);

  /// First-committer-wins validation and atomic version installation.
  /// Returns WriteConflict (and the transaction is aborted) when an
  /// overlapping committed transaction wrote one of this transaction's keys.
  Status Commit();

  /// Voluntary abort; idempotent on non-active transactions.
  void Abort();

  const storage::WriteSet& write_set() const { return write_set_; }
  const std::vector<ReadObservation>& reads() const { return reads_; }

 private:
  friend class TxnManager;
  Transaction(TxnManager* manager, TxnId id, Timestamp start_ts,
              Timestamp snapshot_ts, bool read_only);

  TxnManager* manager_;
  TxnId id_;
  Timestamp start_ts_;
  Timestamp snapshot_ts_;
  Timestamp commit_ts_ = kInvalidTimestamp;
  bool read_only_;
  /// The transaction's slot in the TxnManager's lock-free active-snapshot
  /// bank chain, or nullptr when the snapshot is tracked in the mutex-guarded
  /// multiset (update transactions). Banks live as long as the manager, so
  /// the pointer stays valid for the transaction's whole lifetime.
  std::atomic<Timestamp>* active_slot_ = nullptr;
  /// Reads must take the shard lock: set for historical snapshots below the
  /// store's GC floor, where the lock-free reclamation contract does not
  /// cover the reader (see VersionedStore).
  bool locked_reads_ = false;
  State state_ = State::kActive;
  storage::WriteSet write_set_;
  std::vector<ReadObservation> reads_;
};

}  // namespace txn
}  // namespace lazysi

#endif  // LAZYSI_TXN_TRANSACTION_H_
