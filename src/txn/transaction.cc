#include "txn/transaction.h"

#include "txn/txn_manager.h"

namespace lazysi {
namespace txn {

Transaction::Transaction(TxnManager* manager, TxnId id, Timestamp start_ts,
                         Timestamp snapshot_ts, bool read_only)
    : manager_(manager),
      id_(id),
      start_ts_(start_ts),
      snapshot_ts_(snapshot_ts),
      read_only_(read_only) {}

Transaction::~Transaction() {
  // Dropping an active handle rolls it back, RAII-style.
  if (state_ == State::kActive) Abort();
}

Result<std::string> Transaction::Get(const std::string& key) {
  if (state_ != State::kActive) {
    return Status::FailedPrecondition("transaction is not active");
  }
  // A transaction sees its own updates (Section 2.1).
  if (const storage::Write* own = write_set_.Find(key)) {
    reads_.push_back(ReadObservation{key, kInvalidTimestamp, !own->deleted,
                                     /*from_own_write=*/true});
    if (own->deleted) return Status::NotFound();
    return own->value;
  }
  auto result = locked_reads_
                    ? manager_->store()->GetLocked(key, snapshot_ts_)
                    : manager_->store()->Get(key, snapshot_ts_);
  if (result.ok()) {
    reads_.push_back(ReadObservation{key, result->commit_ts, /*found=*/true,
                                     /*from_own_write=*/false});
    return std::move(result)->value;
  }
  reads_.push_back(ReadObservation{key, kInvalidTimestamp, /*found=*/false,
                                   /*from_own_write=*/false});
  return result.status();
}

Status Transaction::Put(const std::string& key, std::string value) {
  if (state_ != State::kActive) {
    return Status::FailedPrecondition("transaction is not active");
  }
  if (read_only_) {
    return Status::InvalidArgument("Put on a read-only transaction");
  }
  manager_->NotifyUpdate(id_, key, value, /*deleted=*/false);
  write_set_.Put(key, std::move(value));
  return Status::OK();
}

Status Transaction::Delete(const std::string& key) {
  if (state_ != State::kActive) {
    return Status::FailedPrecondition("transaction is not active");
  }
  if (read_only_) {
    return Status::InvalidArgument("Delete on a read-only transaction");
  }
  manager_->NotifyUpdate(id_, key, std::string(), /*deleted=*/true);
  write_set_.Delete(key);
  return Status::OK();
}

Result<std::vector<std::pair<std::string, std::string>>> Transaction::Scan(
    const std::string& begin, const std::string& end) {
  if (state_ != State::kActive) {
    return Status::FailedPrecondition("transaction is not active");
  }
  auto snapshot = manager_->store()->Scan(begin, end, snapshot_ts_);
  // Overlay this transaction's own writes within the range.
  std::map<std::string, std::string> merged;
  for (auto& [key, vv] : snapshot) {
    reads_.push_back(ReadObservation{key, vv.commit_ts, /*found=*/true,
                                     /*from_own_write=*/false});
    merged[key] = std::move(vv.value);
  }
  for (const auto& [key, w] : write_set_.entries()) {
    if (key < begin) continue;
    if (!end.empty() && key >= end) continue;
    if (w.deleted) {
      merged.erase(key);
    } else {
      merged[key] = w.value;
    }
  }
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(merged.size());
  for (auto& [key, value] : merged) out.emplace_back(key, std::move(value));
  return out;
}

Status Transaction::Commit() {
  if (state_ == State::kCommitted) return Status::OK();
  if (state_ == State::kAborted) {
    return Status::Aborted("transaction already aborted");
  }
  return manager_->CommitTxn(this);
}

void Transaction::Abort() { manager_->AbortTxn(this); }

}  // namespace txn
}  // namespace lazysi
