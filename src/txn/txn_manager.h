#ifndef LAZYSI_TXN_TXN_MANAGER_H_
#define LAZYSI_TXN_TXN_MANAGER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timestamp.h"
#include "storage/versioned_store.h"
#include "txn/transaction.h"
#include "txn/txn_observer.h"

namespace lazysi {
namespace txn {

/// Local concurrency control providing **strong SI** with the
/// first-committer-wins rule — the contract the paper assumes of every site's
/// DBMS (Section 3: "a local concurrency controller that guarantees strong SI
/// and is deadlock-free").
///
/// Design — pipelined commit with a visibility watermark:
///  - One logical clock issues both start and commit timestamps, so every
///    commit timestamp is larger than all previously issued start/commit
///    timestamps (operational SI definition, Section 2.1).
///  - A transaction reads at `snapshot_ts` = `visible_ts_`, the commit-order
///    visibility watermark: the largest timestamp V such that every commit
///    with commit_ts <= V has finished installing its versions. Because a
///    commit is acknowledged to its client only after the watermark passes
///    its commit timestamp, any transaction beginning after that
///    acknowledgement gets snapshot >= commit(T1) — Definition 2.1's
///    strong-SI requirement — and no snapshot can ever observe a partially
///    installed commit.
///  - Commit runs in four phases. (1) FCW pre-validation against the store,
///    outside any manager lock — a pure early-abort optimization, skipped
///    entirely when nothing has committed since the transaction's snapshot.
///    (2) A tiny critical section under `clock_mu_`: validate, allocate the
///    commit timestamp, and emit the log record — so log order == timestamp
///    order (the invariant Lemmas 3.1-3.3 rest on). (3) Version installation
///    into the sharded store, outside `clock_mu_`, overlapping with other
///    commits' validation and installation. (4) Publish `visible_ts_` in
///    timestamp order and acknowledge.
///  - The under-mutex validation is exact and cheap: per-shard last-commit
///    watermarks skip every key whose shard saw no commit after the
///    transaction's snapshot (the uncontended case costs one array read per
///    key). A racing key is checked against (a) `installing_`, the list of
///    commits whose versions are not yet fully installed — their write sets
///    are readable because a committer only unlists itself, under
///    `clock_mu_`, after its publication — and (b) the store, which is
///    authoritative for every already-unlisted (hence installed) commit.
///  - Purely optimistic, lock-free data access: no waits-for graph exists,
///    so the control is trivially deadlock-free.
class TxnManager {
 public:
  /// `observer` may be nullptr; it is not owned.
  TxnManager(storage::VersionedStore* store, TxnObserver* observer = nullptr);
  ~TxnManager();

  /// Starts a transaction at the latest committed snapshot (the visibility
  /// watermark). Update transactions (read_only = false) emit a start record
  /// to the observer under the timestamp mutex; their snapshot is registered
  /// in the active set atomically with its choice, so the GC horizon can
  /// never pass a snapshot a live transaction reads. Read-only transactions
  /// are dispatched to the lock-free BeginReadOnly path.
  std::unique_ptr<Transaction> Begin(bool read_only = false);

  /// Lock-free read-only begin: the snapshot is the commit watermark, read
  /// with an atomic load — no clock mutex, no clock bump, no log record
  /// (weak SI lets a reader attach to any committed state, and the watermark
  /// *is* the latest fully installed one, so this is still strong SI
  /// locally). The snapshot is pinned in a fixed array of padded atomic
  /// slots with a publish-validate handshake: publish the snapshot (seq_cst
  /// store), then re-load the watermark and re-publish until it is
  /// unchanged. Paired with MinActiveSnapshot — which loads the watermark
  /// *before* scanning the slots, also seq_cst — this guarantees any
  /// concurrently computed GC horizon is <= the pinned snapshot: either the
  /// horizon scan sees the slot, or it ran entirely before the publish, in
  /// which case its watermark load (and hence the horizon) is <= the
  /// validated snapshot by monotonicity of the watermark. Falls back to the
  /// mutex-tracked multiset if all slots are taken. The transaction's
  /// start_ts equals its snapshot (read-only transactions no longer consume
  /// clock ticks; they are invisible to the log and to other sites).
  std::unique_ptr<Transaction> BeginReadOnly();

  /// Starts a *read-only* transaction pinned to the historical snapshot
  /// `snapshot` (time travel over the version chains — weak SI explicitly
  /// allows reading any earlier committed state; the paper's related work
  /// [18, 25] builds exactly this on SI engines). `snapshot` must not
  /// exceed the visibility watermark; versions below the prune horizon may
  /// be gone, in which case reads return NotFound. The snapshot is pinned
  /// in the active set *before* validation so a concurrent GarbageCollect
  /// cannot prune it between the check and the pin; if the snapshot lies
  /// below the store's GC floor the transaction reads under the shard lock
  /// (see VersionedStore's reclamation contract).
  Result<std::unique_ptr<Transaction>> BeginAtSnapshot(Timestamp snapshot);

  /// The visibility watermark: timestamp of the most recent *fully
  /// installed* committed update transaction, i.e. the snapshot new
  /// transactions will see. Every commit acknowledged to a client is at or
  /// below this value.
  Timestamp LatestCommitTs() const {
    return visible_ts_.load(std::memory_order_acquire);
  }

  /// Oldest snapshot any active transaction may read, i.e. the safe version
  /// garbage-collection horizon: versions shadowed by a newer version at or
  /// below this timestamp can never be read again. Equals LatestCommitTs()
  /// when no transaction is active.
  Timestamp MinActiveSnapshot() const;

  /// True when every allocated commit timestamp has finished installing and
  /// the watermark has caught up — i.e. no commit is mid-pipeline. Used by
  /// checkpointing to pick a (state, log position) pair that corresponds to
  /// one database state; with the pipelined commit, the log may briefly hold
  /// commit records whose versions are still installing.
  bool AllCommitsVisible() const {
    std::lock_guard<std::mutex> lock(visible_mu_);
    return inflight_commits_.empty() &&
           visible_ts_.load(std::memory_order_relaxed) ==
               last_allocated_commit_;
  }

  /// --- Externally-ordered commits (the secondary's direct-apply refresh
  /// engine). The caller owns both the global order (timestamps are issued
  /// in its call order) and version installation; FCW validation is skipped
  /// entirely, which is sound only when the caller can prove its commits
  /// never conflict — refresh transactions qualify, because conflicting
  /// primary transactions were never concurrent after FCW at the primary.
  ///
  /// Protocol, per externally-applied transaction:
  ///   1. id = AllocateTxnId()               (once, any thread)
  ///   2. ExternalStart(id)                   (emits the start record)
  ///   3. ts = BeginExternalCommit(id, ws)    (allocates the commit
  ///      timestamp, emits update+commit records and the commit hook,
  ///      stages the commit in the visibility pipeline)
  ///   4. store()->Apply(...)/ApplyBatch(...) (install, any thread)
  ///   5. FinishExternalCommit(ts)            (publish visibility)
  /// `ws` must stay alive and unmodified until step 5 returns: until then
  /// concurrent validators may read it through the installing list.
  /// Between steps 3 and 5 the versions may be installed out of order
  /// relative to other external commits; the visibility watermark only
  /// advances over the fully installed prefix, so no snapshot ever observes
  /// a torn or out-of-order state.

  /// Reserves a fresh local transaction id without starting a transaction.
  TxnId AllocateTxnId() {
    return next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Emits a start record for an externally-applied transaction: allocates a
  /// start timestamp under the clock mutex and notifies the observer, so the
  /// local log preserves the start/commit interleaving of the origin site
  /// (Lemmas 3.1-3.2 read the refresh schedule off this log).
  Timestamp ExternalStart(TxnId id);

  /// Emits an abort record for an externally-applied transaction that will
  /// never commit (the origin site aborted it).
  void ExternalAbort(TxnId id);

  /// Step 3 of the protocol above. Returns the allocated commit timestamp.
  Timestamp BeginExternalCommit(TxnId id, const storage::WriteSet& writes);

  /// One element of a batched step 3: an externally-applied transaction and
  /// its write set (same lifetime contract as BeginExternalCommit's `ws`).
  struct ExternalCommitRequest {
    TxnId id = kInvalidTxnId;
    const storage::WriteSet* writes = nullptr;
  };

  /// Batched step 3: allocates commit timestamps for a *run* of external
  /// commits under a single clock-mutex hold (and stages them in the
  /// visibility pipeline under a single visible-mutex hold), instead of one
  /// lock round-trip per commit. Timestamps are issued in `batch` order, so
  /// the caller's order is the commit order — the secondary's replay
  /// sequencer passes runs of consecutive primary commits here, keeping its
  /// ordered section as small as one mutex acquisition per run. Returns the
  /// allocated timestamps, index-aligned with `batch`.
  std::vector<Timestamp> BeginExternalCommitBatch(
      const std::vector<ExternalCommitRequest>& batch);

  /// Step 5: marks `commit_ts` installed, advances the visibility watermark
  /// over the installed prefix and unlists the commit. Never blocks (unlike
  /// the client commit path there is no per-transaction acknowledgement to
  /// order). Returns the new watermark, which may cover later external
  /// commits finished out of order by other threads.
  Timestamp FinishExternalCommit(Timestamp commit_ts);

  /// Durability gate: when set, CommitTxn blocks *after* watermark
  /// publication — the commit is installed and visible — until the gate
  /// returns, i.e. until the commit's log record is durable under the
  /// configured fsync policy. Because log order == timestamp order, gate
  /// waits resolve in commit order: N concurrent committers parked on the
  /// same flushed-LSN watermark are released by one shared fsync (group
  /// commit). A non-OK gate status is surfaced to the client, which must
  /// treat the commit's durability as unknown.
  void SetDurabilityGate(std::function<Status(Timestamp)> gate) {
    durability_gate_ = std::move(gate);
  }

  /// Recovery seeding for a *fresh* manager (no transaction may have run
  /// yet): restores the logical clock, the visibility watermark (= the
  /// newest restored commit timestamp) and the transaction-id counter, so
  /// post-restart timestamps and ids continue the pre-crash sequences.
  void ResetForRecovery(Timestamp clock, Timestamp visible, TxnId next_txn_id);

  /// Total committed update transactions (used by tests and stats).
  std::uint64_t CommittedCount() const {
    return committed_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t AbortedCount() const {
    return aborted_count_.load(std::memory_order_relaxed);
  }

  storage::VersionedStore* store() { return store_; }

 private:
  friend class Transaction;

  /// Commit protocol; called by Transaction::Commit.
  Status CommitTxn(Transaction* t);
  /// Abort path; called by Transaction::Abort and failed commits.
  void AbortTxn(Transaction* t);

  void NotifyUpdate(TxnId id, const std::string& key, const std::string& value,
                    bool deleted);

  /// Registers `commit_ts` as allocated-but-not-yet-installed. Caller holds
  /// clock_mu_; takes visible_mu_ (lock order: clock_mu_ -> visible_mu_).
  void StageInflightCommit(Timestamp commit_ts);

  /// Marks `commit_ts` installed, advances the visibility watermark as far
  /// as the in-flight set allows, blocks until the watermark reaches
  /// `commit_ts` — commits become visible, and are acknowledged, strictly
  /// in timestamp order — and finally removes the commit from `installing_`.
  void PublishCommit(Timestamp commit_ts);

  storage::VersionedStore* store_;
  TxnObserver* observer_;
  std::function<Status(Timestamp)> durability_gate_;

  /// Guards the logical clock, the FCW validation state and the observer's
  /// OnStart/OnCommit (keeping log order == timestamp order). Version
  /// installation happens *outside* this mutex.
  std::mutex clock_mu_;
  Timestamp clock_ = 0;
  /// Per-store-shard timestamp of the newest commit that wrote a key in the
  /// shard. Lets validation skip shards (and thus keys) untouched since the
  /// transaction's snapshot.
  std::vector<Timestamp> shard_last_commit_;
  /// Commits whose versions may not all be installed yet, with a view of
  /// their write sets. An entry is appended when the commit timestamp is
  /// allocated and removed — only by its owner, only after its publication —
  /// at the end of PublishCommit; the owning Transaction outlives the entry,
  /// so `writes` is always safe to read under clock_mu_. Validation needs
  /// the list because the store cannot answer for commits that have not
  /// finished installing.
  struct PendingInstall {
    Timestamp commit_ts;
    const storage::WriteSet* writes;
  };
  std::vector<PendingInstall> installing_;

  /// Commit timestamps allocated but not yet fully installed, and the
  /// watermark-publication plumbing. Commits are staged in timestamp order
  /// (staging happens under clock_mu_ right after allocation), so the deque
  /// is always sorted; the watermark advances over the installed prefix.
  mutable std::mutex visible_mu_;
  std::condition_variable visible_cv_;
  struct InflightCommit {
    Timestamp ts;
    bool installed;
  };
  std::deque<InflightCommit> inflight_commits_;
  Timestamp last_allocated_commit_ = 0;

  /// Snapshots of in-flight transactions, for the GC horizon — two tiers.
  ///
  /// Tier 1 (lock-free, the read-only hot path): a chain of fixed-size banks
  /// of cache-line-padded atomic slots. A free slot holds kFreeSlot (= max
  /// timestamp, so it never lowers a min-scan); claiming is a CAS from
  /// kFreeSlot guided by a thread-local hint, releasing is a plain store.
  /// When every slot in every bank is taken, the claimer allocates a fresh
  /// bank with its snapshot pre-written into slot 0 and links it at the
  /// chain tail with a seq_cst CAS — the link *is* the slot's publication,
  /// so begins never fall off the lock-free path no matter how many
  /// read-only sessions are live. Banks are never unlinked (16 KiB apiece;
  /// a burst of N concurrent readers permanently sizes the chain for N,
  /// which is the steady state that produced the burst). All slot, link and
  /// watermark accesses on this path are seq_cst; the publish-validate
  /// handshake (see BeginReadOnly) makes a concurrently computed horizon
  /// always <= any pinned snapshot, and a horizon scan that misses a
  /// just-linked bank precedes the link in the seq_cst order, so its
  /// watermark load bounds it the same way a missed slot store does.
  ///
  /// Tier 2 (mutex-guarded multiset): update transactions, whose Begin
  /// already serializes on the clock mutex for the start record. Begin loads
  /// the watermark and registers it under active_mu_ in one step, so a
  /// concurrently computed horizon either includes the new snapshot or
  /// predates it.
  static constexpr Timestamp kFreeSlot = ~Timestamp{0};
  static constexpr std::size_t kSlotsPerBank = 256;
  struct alignas(64) ActiveSlot {
    std::atomic<Timestamp> ts{kFreeSlot};
  };
  struct SlotBank {
    std::array<ActiveSlot, kSlotsPerBank> slots;
    std::atomic<SlotBank*> next{nullptr};
  };
  /// Head of the bank chain (inline; extra banks are heap-allocated and
  /// freed only in the destructor).
  SlotBank first_bank_;
  std::atomic<std::size_t> bank_count_{1};
  /// Claims a slot pinned to the (validated) current watermark; writes the
  /// snapshot. Grows the chain when full — never fails.
  std::atomic<Timestamp>* ClaimReadSlot(Timestamp* snapshot);
  /// Claims a slot pinned to an explicit historical snapshot; grows when
  /// full — never fails.
  std::atomic<Timestamp>* ClaimHistoricalSlot(Timestamp snapshot);
  /// Probes every existing bank for a free slot, CASing `value` in; nullptr
  /// when all are occupied. Writes the bank chain tail to *tail.
  std::atomic<Timestamp>* TryClaimExisting(Timestamp value, SlotBank** tail);
  /// Allocates and links a fresh bank whose slot 0 holds `value`; returns
  /// that slot, or nullptr if another thread linked a bank first (retry the
  /// probe).
  std::atomic<Timestamp>* GrowBank(Timestamp value, SlotBank* tail);
  /// Frees the transaction's slot, or untracks from the multiset.
  void ReleaseSnapshot(Transaction* t);

 public:
  /// Number of reader-slot banks ever linked (monitoring; growth test).
  std::size_t slot_bank_count() const {
    return bank_count_.load(std::memory_order_relaxed);
  }

 private:

  mutable std::mutex active_mu_;
  std::multiset<Timestamp> active_snapshots_;
  /// Atomically picks the current watermark as a snapshot and tracks it.
  Timestamp TrackActiveAtWatermark();
  void TrackActive(Timestamp snapshot);
  void UntrackActive(Timestamp snapshot);

  std::atomic<Timestamp> visible_ts_{0};
  std::atomic<TxnId> next_txn_id_{1};
  std::atomic<std::uint64_t> committed_count_{0};
  std::atomic<std::uint64_t> aborted_count_{0};
};

}  // namespace txn
}  // namespace lazysi

#endif  // LAZYSI_TXN_TXN_MANAGER_H_
