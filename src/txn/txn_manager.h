#ifndef LAZYSI_TXN_TXN_MANAGER_H_
#define LAZYSI_TXN_TXN_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>

#include "common/status.h"
#include "common/timestamp.h"
#include "storage/versioned_store.h"
#include "txn/transaction.h"
#include "txn/txn_observer.h"

namespace lazysi {
namespace txn {

/// Local concurrency control providing **strong SI** with the
/// first-committer-wins rule — the contract the paper assumes of every site's
/// DBMS (Section 3: "a local concurrency controller that guarantees strong SI
/// and is deadlock-free").
///
/// Design:
///  - One logical clock issues both start and commit timestamps, so every
///    commit timestamp is larger than all previously issued start/commit
///    timestamps (operational SI definition, Section 2.1).
///  - Begin assigns start(T) = the current clock value, i.e. the latest
///    committed snapshot — this is what makes the guarantee *strong* SI
///    (Definition 2.1: start(T2) > commit(T1) whenever T1 committed before
///    T2 started).
///  - Writers buffer updates; Commit validates FCW (no committed version of
///    any written key newer than start(T)) and installs all versions
///    atomically under the commit mutex. Readers never block and are never
///    blocked.
///  - Purely optimistic, lock-free data access: no waits-for graph exists,
///    so the control is trivially deadlock-free.
class TxnManager {
 public:
  /// `observer` may be nullptr; it is not owned.
  TxnManager(storage::VersionedStore* store, TxnObserver* observer = nullptr);

  /// Starts a transaction at the latest committed snapshot. Update
  /// transactions (read_only = false) emit a start record to the observer
  /// under the timestamp mutex.
  std::unique_ptr<Transaction> Begin(bool read_only = false);

  /// Starts a *read-only* transaction pinned to the historical snapshot
  /// `snapshot` (time travel over the version chains — weak SI explicitly
  /// allows reading any earlier committed state; the paper's related work
  /// [18, 25] builds exactly this on SI engines). `snapshot` must not
  /// exceed the current clock; versions below the prune horizon may be
  /// gone, in which case reads return NotFound.
  Result<std::unique_ptr<Transaction>> BeginAtSnapshot(Timestamp snapshot);

  /// Timestamp of the most recently committed update transaction; the
  /// snapshot new transactions will see.
  Timestamp LatestCommitTs() const {
    return latest_commit_ts_.load(std::memory_order_acquire);
  }

  /// Oldest snapshot any active transaction may read, i.e. the safe version
  /// garbage-collection horizon: versions shadowed by a newer version at or
  /// below this timestamp can never be read again. Equals LatestCommitTs()
  /// when no transaction is active.
  Timestamp MinActiveSnapshot() const;

  /// Total committed update transactions (used by tests and stats).
  std::uint64_t CommittedCount() const {
    return committed_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t AbortedCount() const {
    return aborted_count_.load(std::memory_order_relaxed);
  }

  storage::VersionedStore* store() { return store_; }

 private:
  friend class Transaction;

  /// Commit protocol; called by Transaction::Commit.
  Status CommitTxn(Transaction* t);
  /// Abort path; called by Transaction::Abort and failed commits.
  void AbortTxn(Transaction* t);

  void NotifyUpdate(TxnId id, const std::string& key, const std::string& value,
                    bool deleted);

  storage::VersionedStore* store_;
  TxnObserver* observer_;

  /// Guards the logical clock, commit validation + version installation and
  /// the observer's OnStart/OnCommit, keeping log order == timestamp order.
  std::mutex clock_mu_;
  Timestamp clock_ = 0;

  /// Snapshots of in-flight transactions, for the GC horizon.
  mutable std::mutex active_mu_;
  std::multiset<Timestamp> active_snapshots_;
  void TrackActive(Timestamp snapshot);
  void UntrackActive(Timestamp snapshot);

  std::atomic<Timestamp> latest_commit_ts_{0};
  std::atomic<TxnId> next_txn_id_{1};
  std::atomic<std::uint64_t> committed_count_{0};
  std::atomic<std::uint64_t> aborted_count_{0};
};

}  // namespace txn
}  // namespace lazysi

#endif  // LAZYSI_TXN_TXN_MANAGER_H_
