#ifndef LAZYSI_TXN_TXN_OBSERVER_H_
#define LAZYSI_TXN_TXN_OBSERVER_H_

#include <string>

#include "common/timestamp.h"
#include "storage/write_set.h"

namespace lazysi {
namespace txn {

/// Receives transaction lifecycle events from a TxnManager.
///
/// The engine wires a site's logical log in as an observer: OnStart and
/// OnCommit fire while the manager holds its timestamp mutex, so the log
/// order of start/commit records is exactly timestamp order — the invariant
/// Algorithm 3.1's propagator relies on. OnUpdate fires on each buffered
/// write, producing the per-transaction update records of the paper's log.
class TxnObserver {
 public:
  virtual ~TxnObserver() = default;

  /// An update transaction was assigned start_p(T). Called under the
  /// timestamp mutex.
  virtual void OnStart(TxnId txn_id, Timestamp start_ts) = 0;

  /// An update transaction buffered a write. Called from the transaction's
  /// own thread, after its OnStart and before its OnCommit/OnAbort.
  virtual void OnUpdate(TxnId txn_id, const std::string& key,
                        const std::string& value, bool deleted) = 0;

  /// An update transaction committed with commit_p(T) and the given final
  /// write set. Called under the timestamp mutex, after versions are
  /// installed.
  virtual void OnCommit(TxnId txn_id, Timestamp commit_ts,
                        const storage::WriteSet& writes) = 0;

  /// An update transaction aborted (FCW failure or client abort).
  virtual void OnAbort(TxnId txn_id) = 0;
};

}  // namespace txn
}  // namespace lazysi

#endif  // LAZYSI_TXN_TXN_OBSERVER_H_
