// lazysi_server: hosts one site of the lazy-master system as a standalone
// process — a primary (database + propagator + replication listener) or a
// secondary (database + refresh machinery + replication receiver). The
// client wire API is served on --client-port; a primary additionally streams
// propagation records on --repl-port; a secondary dials
// --primary-host:--primary-port.
//
//   lazysi_server --role=primary   [--client-port=N] [--repl-port=N]
//                 [--port-file=PATH] [--data-dir=PATH]
//                 [--fsync-mode=always|group|never] [--group-flush-us=N]
//                 [--checkpoint-interval-ms=N] [--batching=0|1]
//                 [--max-batch-records=N] [--max-batch-bytes=N]
//                 [--batch-flush-ms=N] [--workers=N]
//   lazysi_server --role=secondary --primary-port=N [--primary-host=H]
//                 [--client-port=N] [--site-id=N] [--port-file=PATH]
//                 [--workers=N]
//
// The wire knobs tune the propagation stream a primary serves: --batching=0
// falls back to one DATA frame per record (the PR 8 wire shape), the batch
// knobs bound how many records / bytes one BATCH frame coalesces and how
// long a partial batch may wait for more records. --workers sizes the
// client-request pool (all socket I/O runs on the site's single reactor
// thread regardless).
//
// --data-dir makes the primary durable: commits are written to a group-
// commit WAL under <dir>/wal and acked only once flushed (per --fsync-mode),
// periodic checkpoints truncate the log, and a restarted primary recovers
// every acked commit from the directory before accepting connections.
//
// Port 0 (the default) binds ephemerally; the actual ports are written to
// --port-file as "client_port repl_port\n" once the server is up, which is
// how run_cluster.sh and the multi-process tests discover them. The process
// runs until SIGTERM/SIGINT.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "system/site_server.h"

namespace {

using lazysi::system::SiteServer;

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --role=primary|secondary [--host=H] [--client-port=N]\n"
               "       [--repl-port=N] [--primary-host=H] [--primary-port=N]\n"
               "       [--site-id=N] [--port-file=PATH] [--data-dir=PATH]\n"
               "       [--fsync-mode=always|group|never] [--group-flush-us=N]\n"
               "       [--checkpoint-interval-ms=N] [--batching=0|1]\n"
               "       [--max-batch-records=N] [--max-batch-bytes=N]\n"
               "       [--batch-flush-ms=N] [--max-output-bytes=N]\n"
               "       [--max-pending-requests=N] [--workers=N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  SiteServer::Options options;
  std::string role;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--role", &value)) {
      role = value;
    } else if (ParseFlag(argv[i], "--host", &value)) {
      options.host = value;
    } else if (ParseFlag(argv[i], "--client-port", &value)) {
      options.client_port = static_cast<std::uint16_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "--repl-port", &value)) {
      options.repl_port = static_cast<std::uint16_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "--primary-host", &value)) {
      options.primary_host = value;
    } else if (ParseFlag(argv[i], "--primary-port", &value)) {
      options.primary_repl_port =
          static_cast<std::uint16_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "--site-id", &value)) {
      options.site_id = static_cast<lazysi::SiteId>(std::stoul(value));
    } else if (ParseFlag(argv[i], "--port-file", &value)) {
      port_file = value;
    } else if (ParseFlag(argv[i], "--data-dir", &value)) {
      options.data_dir = value;
    } else if (ParseFlag(argv[i], "--fsync-mode", &value)) {
      options.fsync_mode = value;
    } else if (ParseFlag(argv[i], "--group-flush-us", &value)) {
      options.group_flush_interval =
          std::chrono::microseconds(std::stoul(value));
    } else if (ParseFlag(argv[i], "--checkpoint-interval-ms", &value)) {
      options.checkpoint_interval =
          std::chrono::milliseconds(std::stoul(value));
    } else if (ParseFlag(argv[i], "--batching", &value)) {
      options.repl_batching = value != "0" && value != "false";
    } else if (ParseFlag(argv[i], "--max-batch-records", &value)) {
      options.max_batch_records = std::stoul(value);
    } else if (ParseFlag(argv[i], "--max-batch-bytes", &value)) {
      options.max_batch_bytes = std::stoul(value);
    } else if (ParseFlag(argv[i], "--batch-flush-ms", &value)) {
      options.batch_flush_interval =
          std::chrono::milliseconds(std::stoul(value));
    } else if (ParseFlag(argv[i], "--max-output-bytes", &value)) {
      options.max_output_bytes = std::stoul(value);
    } else if (ParseFlag(argv[i], "--max-pending-requests", &value)) {
      options.max_pending_requests = std::stoul(value);
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      options.worker_threads = std::stoul(value);
    } else {
      return Usage(argv[0]);
    }
  }

  if (role == "primary") {
    options.role = SiteServer::Role::kPrimary;
  } else if (role == "secondary") {
    options.role = SiteServer::Role::kSecondary;
    if (options.primary_repl_port == 0) {
      std::cerr << "secondary needs --primary-port\n";
      return 2;
    }
    if (options.site_id == lazysi::kPrimarySiteId) options.site_id = 1;
  } else {
    return Usage(argv[0]);
  }

  // Block the shutdown signals before any thread spawns, so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  SiteServer server(options);
  const lazysi::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "lazysi_server: " << started << "\n";
    return 1;
  }

  if (!port_file.empty()) {
    // Write to a temp name and rename: readers polling the file never see a
    // partial write.
    const std::string tmp = port_file + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
      std::fprintf(f, "%u %u\n", server.client_port(), server.repl_port());
      std::fclose(f);
      std::rename(tmp.c_str(), port_file.c_str());
    }
  }
  std::cerr << "lazysi_server: " << role << " up, client port "
            << server.client_port() << ", repl port " << server.repl_port()
            << " (pid " << ::getpid() << ")\n";

  int sig = 0;
  sigwait(&mask, &sig);
  std::cerr << "lazysi_server: signal " << sig << ", shutting down\n";
  server.Stop();
  return 0;
}
