#include "replication/partition_map.h"

#include <algorithm>

namespace lazysi {
namespace replication {

PartitionMap::PartitionMap(Config config, std::size_t num_secondaries)
    : num_partitions_(std::max<std::size_t>(config.num_partitions, 1)),
      num_secondaries_(std::max<std::size_t>(num_secondaries, 1)),
      // A single partition is full replication by definition — every
      // secondary must hold it, whatever factor was asked for.
      replication_factor_(num_partitions_ <= 1 ||
                                  config.replication_factor == 0 ||
                                  config.replication_factor >= num_secondaries_
                              ? num_secondaries_
                              : config.replication_factor),
      scheme_(config.scheme) {
  replicas_.resize(num_partitions_);
  coverage_.resize(num_secondaries_);
  covers_.assign(num_secondaries_,
                 std::vector<bool>(num_partitions_, false));
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    for (std::size_t j = 0; j < replication_factor_; ++j) {
      const std::size_t s = (p + j) % num_secondaries_;
      if (covers_[s][p]) continue;  // R > S wraps onto the same secondary
      covers_[s][p] = true;
      replicas_[p].push_back(s);
      coverage_[s].push_back(p);
    }
    std::sort(replicas_[p].begin(), replicas_[p].end());
  }
  for (auto& partitions : coverage_) {
    std::sort(partitions.begin(), partitions.end());
  }
  partial_ = false;
  for (std::size_t s = 0; s < num_secondaries_; ++s) {
    if (coverage_[s].size() < num_partitions_) {
      partial_ = true;
      break;
    }
  }
}

std::size_t PartitionMap::PartitionOf(const std::string& key) const {
  switch (scheme_) {
    case Scheme::kRange:
      return storage::RangePartitionOfKey(key, num_partitions_);
    case Scheme::kHash:
      break;
  }
  return storage::HashPartitionOfKey(key, num_partitions_);
}

}  // namespace replication
}  // namespace lazysi
