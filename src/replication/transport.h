#ifndef LAZYSI_REPLICATION_TRANSPORT_H_
#define LAZYSI_REPLICATION_TRANSPORT_H_

#include <chrono>
#include <thread>

#include "common/queue.h"
#include "common/random.h"
#include "replication/messages.h"

namespace lazysi {
namespace replication {

/// In-process stand-in for the network path between the propagator and a
/// secondary's update queue: delivers records in FIFO order after a
/// configurable latency with optional jitter. Models WAN replicas in the
/// real (threaded) system the way `propagation_delay` does in the simulator.
///
/// The paper assumes propagated messages are neither lost nor reordered
/// (Section 3.2); accordingly, jitter here delays deliveries but can never
/// reorder them — each record's delivery time is clamped to be no earlier
/// than its predecessor's.
class LatencyChannel {
 public:
  struct Options {
    std::chrono::milliseconds latency{0};
    /// Uniform extra delay in [0, jitter].
    std::chrono::milliseconds jitter{0};
    std::uint64_t seed = 1;
  };

  LatencyChannel(BlockingQueue<PropagationRecord>* downstream,
                 Options options)
      : downstream_(downstream), options_(options), rng_(options.seed) {}

  explicit LatencyChannel(BlockingQueue<PropagationRecord>* downstream)
      : LatencyChannel(downstream, Options{}) {}

  ~LatencyChannel() { Stop(); }

  LatencyChannel(const LatencyChannel&) = delete;
  LatencyChannel& operator=(const LatencyChannel&) = delete;

  /// The queue to attach to the propagator as a sink.
  BlockingQueue<PropagationRecord>* inlet() { return &inlet_; }

  void Start() {
    if (started_) return;
    started_ = true;
    // Reopen after a Stop(): records pushed while the channel was down were
    // dropped (a dead link loses traffic); delivery resumes with the next
    // record pushed into the reopened inlet.
    inlet_.Reopen();
    thread_ = std::thread([this] { Run(); });
  }

  /// Drains whatever has already arrived (with its delay) and stops.
  void Stop() {
    if (!started_) return;
    inlet_.Close();
    thread_.join();
    started_ = false;
  }

  std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  void Run() {
    auto last_delivery = std::chrono::steady_clock::now();
    while (auto record = inlet_.Pop()) {
      auto due = std::chrono::steady_clock::now() + options_.latency;
      if (options_.jitter.count() > 0) {
        due += std::chrono::milliseconds(
            rng_.UniformInt(0, options_.jitter.count()));
      }
      // FIFO: never deliver before the previous record.
      if (due < last_delivery) due = last_delivery;
      std::this_thread::sleep_until(due);
      last_delivery = due;
      downstream_->Push(std::move(*record));
      delivered_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  BlockingQueue<PropagationRecord> inlet_;
  BlockingQueue<PropagationRecord>* downstream_;
  Options options_;
  Rng rng_;
  std::thread thread_;
  std::atomic<std::uint64_t> delivered_{0};
  bool started_ = false;
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_TRANSPORT_H_
