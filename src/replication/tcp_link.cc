#include "replication/tcp_link.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/logging.h"
#include "replication/framed_socket.h"

namespace lazysi {
namespace replication {

namespace {

constexpr const char* kLoopback = "127.0.0.1";

}  // namespace

TcpLink::TcpLink(FaultProfile faults, std::uint64_t seed)
    : faults_(faults), rng_(seed) {
  listen_fd_ = ListenOn(kLoopback, 0, &port_);
  if (listen_fd_ < 0) {
    LAZYSI_ERROR("tcp link: cannot create loopback listener, errno="
                 << errno);
    return;
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (!EstablishLocked()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

TcpLink::~TcpLink() { Close(); }

bool TcpLink::EstablishLocked() {
  const int client = DialTcp(kLoopback, port_);
  if (client < 0) return false;
  const int server = AcceptOn(listen_fd_);
  if (server < 0) {
    ::close(client);
    return false;
  }
  sender_fd_ = client;
  receiver_fd_ = server;
  data_reader_ = std::thread([this, server] { ReaderLoop(server, &data_); });
  ack_reader_ = std::thread([this, client] { ReaderLoop(client, &acks_); });
  return true;
}

void TcpLink::TeardownLocked() {
  if (sender_fd_ >= 0) ::shutdown(sender_fd_, SHUT_RDWR);
  if (receiver_fd_ >= 0) ::shutdown(receiver_fd_, SHUT_RDWR);
  // Readers never touch conn_mu_, so joining under it cannot deadlock; they
  // exit on the EOF the shutdown above produced.
  if (data_reader_.joinable()) data_reader_.join();
  if (ack_reader_.joinable()) ack_reader_.join();
  if (sender_fd_ >= 0) ::close(sender_fd_);
  if (receiver_fd_ >= 0) ::close(receiver_fd_);
  sender_fd_ = -1;
  receiver_fd_ = -1;
}

void TcpLink::ReaderLoop(int fd, BlockingQueue<std::string>* out) {
  TcpFramer framer;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // orderly shutdown
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!framer.Feed(std::string_view(buf, static_cast<std::size_t>(n)))) {
      // A poisoned stream (oversized length prefix) has no recoverable
      // frame boundary: the connection is as good as cut.
      LAZYSI_WARN("tcp link: poisoned frame stream, dropping connection");
      MarkDisconnected();
      break;
    }
    while (auto frame = framer.Next()) {
      counter_delivered_.fetch_add(1, std::memory_order_relaxed);
      counter_bytes_delivered_.fetch_add(frame->size(),
                                         std::memory_order_relaxed);
      out->Push(std::move(*frame));
    }
    if (framer.poisoned()) {
      LAZYSI_WARN("tcp link: poisoned frame stream, dropping connection");
      MarkDisconnected();
      break;
    }
  }
  if (!closing_.load(std::memory_order_acquire)) MarkDisconnected();
}

void TcpLink::MarkDisconnected() {
  const bool was = disconnected_.exchange(true, std::memory_order_acq_rel);
  if (!was) counter_disconnects_.fetch_add(1, std::memory_order_relaxed);
}

bool TcpLink::SendData(std::string frame) {
  return SendFrame(&sender_fd_, std::move(frame));
}

bool TcpLink::SendAck(std::string frame) {
  return SendFrame(&receiver_fd_, std::move(frame));
}

bool TcpLink::SendFrame(int* fd_slot, std::string frame) {
  counter_sent_.fetch_add(1, std::memory_order_relaxed);
  counter_bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
  bool duplicate = false;
  if (faults_.any()) {
    // Same decision order as ChaosLink::Send, draw for draw, so a seeded
    // fault schedule replays identically on either transport.
    std::lock_guard<std::mutex> lock(rng_mu_);
    if (faults_.disconnect_probability > 0 &&
        rng_.Bernoulli(faults_.disconnect_probability)) {
      Disconnect();
    }
    if (disconnected_.load(std::memory_order_acquire)) {
      counter_dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (faults_.drop_probability > 0 &&
        rng_.Bernoulli(faults_.drop_probability)) {
      counter_dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!frame.empty() && faults_.corrupt_probability > 0 &&
        rng_.Bernoulli(faults_.corrupt_probability)) {
      // Payload bytes only — the length prefix is added below, so framing
      // survives and the corruption is ReliableChannel's CRC to catch.
      frame[rng_.Next(frame.size())] ^= static_cast<char>(1 + rng_.Next(255));
      counter_corrupted_.fetch_add(1, std::memory_order_relaxed);
    }
    duplicate = faults_.duplicate_probability > 0 &&
                rng_.Bernoulli(faults_.duplicate_probability);
  } else if (disconnected_.load(std::memory_order_acquire)) {
    counter_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  std::string wire;
  wire.reserve((frame.size() + 4) * (duplicate ? 2 : 1));
  AppendTcpFrame(&wire, frame);
  if (duplicate) {
    AppendTcpFrame(&wire, frame);
    counter_duplicated_.fetch_add(1, std::memory_order_relaxed);
  }

  std::lock_guard<std::mutex> lock(conn_mu_);
  const int fd = *fd_slot;
  if (fd < 0 || disconnected_.load(std::memory_order_acquire)) {
    counter_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!SendAll(fd, wire)) {
    // EPIPE/ECONNRESET: the kernel noticed the cut before we did.
    MarkDisconnected();
    counter_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void TcpLink::Disconnect() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  MarkDisconnected();
  // Wake both readers (EOF) and fail in-flight writes; fds stay open so the
  // readers can drain what the kernel already buffered for them.
  if (sender_fd_ >= 0) ::shutdown(sender_fd_, SHUT_RDWR);
  if (receiver_fd_ >= 0) ::shutdown(receiver_fd_, SHUT_RDWR);
}

void TcpLink::Reconnect() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (listen_fd_ < 0) return;
  if (!disconnected_.load(std::memory_order_acquire) && sender_fd_ >= 0) {
    return;  // connection is still live; nothing to re-establish
  }
  TeardownLocked();
  if (EstablishLocked()) {
    disconnected_.store(false, std::memory_order_release);
  } else {
    LAZYSI_WARN("tcp link: reconnect failed, staying disconnected");
  }
}

void TcpLink::Close() {
  closing_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    TeardownLocked();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }
  data_.Close();
  acks_.Close();
}

void TcpLink::Reopen() {
  while (data_.TryPop().has_value()) {
  }
  while (acks_.TryPop().has_value()) {
  }
  data_.Reopen();
  acks_.Reopen();
  closing_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(conn_mu_);
  if (listen_fd_ < 0) listen_fd_ = ListenOn(kLoopback, 0, &port_);
  if (listen_fd_ < 0) {
    LAZYSI_ERROR("tcp link: reopen cannot recreate listener");
    return;
  }
  TeardownLocked();
  if (EstablishLocked()) {
    disconnected_.store(false, std::memory_order_release);
  }
}

TcpLink::Counters TcpLink::counters() const {
  Counters c;
  c.sent = counter_sent_.load(std::memory_order_relaxed);
  c.delivered = counter_delivered_.load(std::memory_order_relaxed);
  c.dropped = counter_dropped_.load(std::memory_order_relaxed);
  c.duplicated = counter_duplicated_.load(std::memory_order_relaxed);
  c.corrupted = counter_corrupted_.load(std::memory_order_relaxed);
  c.disconnects = counter_disconnects_.load(std::memory_order_relaxed);
  c.bytes_sent = counter_bytes_sent_.load(std::memory_order_relaxed);
  c.bytes_delivered =
      counter_bytes_delivered_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace replication
}  // namespace lazysi
