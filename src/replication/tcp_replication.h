#ifndef LAZYSI_REPLICATION_TCP_REPLICATION_H_
#define LAZYSI_REPLICATION_TCP_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/status.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "replication/framed_socket.h"
#include "replication/messages.h"
#include "replication/propagator.h"
#include "replication/tcp_link.h"

namespace lazysi {
namespace replication {

/// Cross-process propagation stream. ReliableChannel hosts both protocol
/// endpoints in one object and so cannot span processes; this pair splits
/// the roles and leans on TCP for in-order, loss-free delivery within a
/// connection. Loss shows up only as a dropped connection, and repair is the
/// reconnect handshake:
///
///   secondary -> HELLO { expected_seq, from_lsn }
///   primary:  expected_seq > 0 -> AttachSinkAt(SyncPointAtOrBefore(E).lsn)
///             expected_seq == 0 -> AttachSinkAt(from_lsn)  (cold start /
///                                  restart after kill -9: full log replay)
///   primary -> WELCOME { base_seq }
///   primary -> BATCH { n, record* } | DATA { record }
///   secondary -> ACK { cum_seq }*
///
/// The replayed suffix may overlap what the secondary already applied
/// (sync points quantize downward); global record sequence numbers let the
/// receiver drop the overlap as duplicates — the same idempotence argument
/// as ReliableChannel's resync (Section 3.4's recovery machinery).
///
/// Both endpoints run on a net::EventLoop: connections are non-blocking and
/// reactor-registered, so I/O thread count is O(loops), not O(secondaries).
/// The hot direction coalesces records into BATCH frames (one length prefix
/// + tag + count for a whole run, one writev per frame instead of one
/// send() per record); single-record DATA frames remain understood for
/// compatibility and as the batching=false mode.

/// One-byte frame tags of the cross-process propagation stream. Exposed for
/// the framing fuzz corpus.
constexpr char kReplHelloTag = 'H';    // secondary -> primary
constexpr char kReplWelcomeTag = 'W';  // primary -> secondary
constexpr char kReplDataTag = 'D';     // one record
constexpr char kReplBatchTag = 'B';    // varint count + that many records
constexpr char kReplAckTag = 'A';      // cumulative seq

/// Builds one BATCH frame payload: tag + varint(count) + count encoded
/// records. The listener's pump produces the same bytes incrementally;
/// exposed for the framing fuzz corpus and benchmarks.
std::string EncodeBatchFramePayload(
    const std::vector<PropagationRecord>& records);

/// Decodes a BATCH frame payload (*offset at the tag byte), appending each
/// record to *out as it decodes. False — with *offset wherever the parse
/// stopped, never past frame.size() — on a malformed count varint, a
/// malformed or truncated record, or trailing bytes after the declared
/// count: all of these mean the stream is damaged and the connection must
/// drop. Never allocates proportional to the claimed count.
bool DecodeBatchFramePayload(const std::string& frame, std::size_t* offset,
                             std::vector<PropagationRecord>* out);

/// Primary-side listener: accepts one connection per secondary. Every
/// connection shares the listener's event loop; per connection there is a
/// propagator sink (queue) whose wakeup hook schedules a pump task that
/// encodes records into frames and hands them to the connection's bounded
/// output buffer. When a slow secondary's buffer hits max_output_bytes the
/// pump simply stops pulling from the sink (backpressure) until the drain
/// callback fires — nothing buffers unboundedly in userspace.
class ReplicationListener {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; see port() after Start
    /// Shared reactor; nullptr = the listener owns (and starts) its own.
    net::EventLoop* loop = nullptr;
    /// Coalesce records into BATCH frames (false = one DATA frame per
    /// record, the PR 8 wire shape).
    bool batching = true;
    std::size_t max_batch_records = 128;
    std::size_t max_batch_bytes = 256 * 1024;
    /// > 0: hold a partial batch this long for more records before
    /// flushing it (throughput over latency); 0 = flush a partial batch as
    /// soon as the sink runs dry.
    std::chrono::milliseconds batch_flush_interval{0};
    /// Per-connection output-buffer ceiling; at or above it the pump stops
    /// pulling from the propagator sink for that connection.
    std::size_t max_output_bytes = 1 << 20;
  };

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t records_streamed = 0;
    std::uint64_t replay_attaches = 0;  // HELLOs answered via AttachSinkAt
    std::uint64_t frames_sent = 0;      // DATA + BATCH frames
    std::uint64_t batch_frames_sent = 0;
    std::uint64_t bytes_sent = 0;    // wire bytes accepted by the kernel
    std::uint64_t writev_calls = 0;  // flush syscalls across connections
    std::uint64_t flushes = 0;       // flushes that fully drained a buffer
    std::uint64_t backpressure_stalls = 0;  // pump paused on a full buffer
  };

  ReplicationListener(Propagator* propagator, Options options);
  ~ReplicationListener();

  ReplicationListener(const ReplicationListener&) = delete;
  ReplicationListener& operator=(const ReplicationListener&) = delete;

  Status Start();
  void Stop();

  std::uint16_t port() const { return port_; }
  Stats stats() const;
  net::EventLoop* loop() { return loop_; }

  /// Lowest LSN any live secondary may still need for a resync: the minimum
  /// over live connections of the quiesced point at or below that
  /// connection's cumulative acked record seq. The checkpointer's truncation
  /// floor must not exceed this, or a reconnecting secondary's replay would
  /// hit truncated log. UINT64_MAX when no connection is live (nothing
  /// holds the log back).
  std::uint64_t MinAckFloor() const;

 private:
  struct Conn {
    std::shared_ptr<net::Connection> nc;
    TcpFramer framer;  // loop thread only
    BlockingQueue<PropagationRecord> sink;
    std::atomic<std::uint64_t> acked{0};
    std::atomic<bool> attached{false};
    std::atomic<bool> done{false};  // closed; ignore in MinAckFloor
    std::atomic<bool> pump_scheduled{false};
    // Loop-thread-only protocol state.
    bool hello_done = false;
    bool stalled = false;
    std::string pending_body;  // encoded records awaiting a BATCH frame
    std::size_t pending_n = 0;
    bool flush_timer_armed = false;
    net::EventLoop::TimerId flush_timer = 0;
  };

  void OnAcceptable();
  void OnConnBytes(const std::shared_ptr<Conn>& conn, std::string_view bytes);
  void OnConnClosed(const std::shared_ptr<Conn>& conn);
  void HandleFrame(const std::shared_ptr<Conn>& conn,
                   const std::string& frame);
  /// Attach worker thread: full-log replays can take a while, so HELLO
  /// handling runs off-loop (one worker serves all connections — thread
  /// count stays O(1)).
  void HandleAttach(const std::shared_ptr<Conn>& conn, std::uint64_t expected,
                    std::uint64_t from_lsn);
  void SchedulePump(const std::weak_ptr<Conn>& weak);
  void PumpConn(const std::shared_ptr<Conn>& conn);
  void EmitBatch(Conn* conn);
  void WriteFrame(Conn* conn, std::string_view payload);

  Propagator* propagator_;
  Options options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::unique_ptr<net::EventLoop> owned_loop_;
  net::EventLoop* loop_ = nullptr;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread attach_worker_;
  BlockingQueue<std::function<void()>> attach_q_;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;  // guarded by conns_mu_

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> records_streamed_{0};
  std::atomic<std::uint64_t> replay_attaches_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> batch_frames_sent_{0};
  std::atomic<std::uint64_t> backpressure_stalls_{0};
  // bytes/writev/flush counters of connections that already closed; stats()
  // adds the live connections' counters on top.
  std::atomic<std::uint64_t> retired_bytes_sent_{0};
  std::atomic<std::uint64_t> retired_writev_calls_{0};
  std::atomic<std::uint64_t> retired_flushes_{0};
};

/// Secondary-side stream client: dials the primary (non-blocking, on the
/// loop), handshakes, and feeds decoded records into the secondary's update
/// queue, deduplicating any replay overlap by global sequence number.
/// Reconnects with a fresh handshake whenever the connection drops; redial
/// delay is exponential with a cap and jitter so a dead primary's return
/// doesn't see the whole fleet dial in lock-step.
class ReplicationReceiver {
 public:
  struct Options {
    std::string primary_host = "127.0.0.1";
    std::uint16_t primary_port = 0;
    /// Cumulative ack every this many accepted records (acks are advisory —
    /// TCP carries the reliability — but keep the primary's lag visible).
    std::size_t ack_interval = 64;
    /// Initial redial delay; doubles per failed attempt up to the cap.
    std::chrono::milliseconds reconnect_backoff{50};
    std::chrono::milliseconds reconnect_backoff_max{2000};
    /// Redial delay randomized to delay * (1 ± jitter).
    double reconnect_jitter = 0.2;
    std::uint64_t jitter_seed = 0x5eedf00d;
    /// Checkpoint LSN to request the replay from when starting with
    /// expected_seq == 0 (restart-from-checkpoint; 0 = full log).
    std::size_t from_lsn = 0;
    /// Shared reactor; nullptr = the receiver owns (and starts) its own.
    net::EventLoop* loop = nullptr;
  };

  struct Stats {
    std::uint64_t records_delivered = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t decode_rejected = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t dial_attempts = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t batch_frames_received = 0;
    std::uint64_t bytes_received = 0;
  };

  ReplicationReceiver(BlockingQueue<PropagationRecord>* downstream,
                      Options options);
  ~ReplicationReceiver();

  ReplicationReceiver(const ReplicationReceiver&) = delete;
  ReplicationReceiver& operator=(const ReplicationReceiver&) = delete;

  void Start();
  void Stop();

  /// Fault injection: severs the current connection without stopping the
  /// receiver, forcing a reconnect + handshake resync at the current
  /// position (tests the replay-overlap dedup path).
  void CutConnection();

  Stats stats() const;
  std::uint64_t next_expected() const {
    return next_expected_.load(std::memory_order_acquire);
  }
  net::EventLoop* loop() { return loop_; }

 private:
  // All of these run on the loop thread.
  void StartDial();
  void OnDialDone(int fd, bool ok);
  void OnBytes(std::string_view bytes);
  void HandleFrame(const std::string& frame);
  /// Returns false when the stream is damaged and the connection must drop.
  bool HandleRecord(PropagationRecord record);
  void OnClosed();
  void ScheduleRedial();

  BlockingQueue<PropagationRecord>* downstream_;
  Options options_;
  std::unique_ptr<net::EventLoop> owned_loop_;
  net::EventLoop* loop_ = nullptr;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> next_expected_{0};

  // Loop-thread-only state.
  std::shared_ptr<net::Connection> current_;
  TcpFramer framer_;
  int pending_fd_ = -1;  // non-blocking connect in flight
  net::EventLoop::TimerId redial_timer_ = 0;
  bool handshaken_ = false;
  bool had_connection_ = false;
  std::size_t since_ack_ = 0;
  ExponentialBackoff backoff_;
  Rng rng_;
  std::uint64_t conn_epoch_ = 0;  // guards stale dial callbacks

  std::atomic<std::uint64_t> records_delivered_{0};
  std::atomic<std::uint64_t> duplicates_dropped_{0};
  std::atomic<std::uint64_t> decode_rejected_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> dial_attempts_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> batch_frames_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_TCP_REPLICATION_H_
