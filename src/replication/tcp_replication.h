#ifndef LAZYSI_REPLICATION_TCP_REPLICATION_H_
#define LAZYSI_REPLICATION_TCP_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/status.h"
#include "replication/framed_socket.h"
#include "replication/messages.h"
#include "replication/propagator.h"

namespace lazysi {
namespace replication {

/// Cross-process propagation stream. ReliableChannel hosts both protocol
/// endpoints in one object and so cannot span processes; this pair splits
/// the roles and leans on TCP for in-order, loss-free delivery within a
/// connection. Loss shows up only as a dropped connection, and repair is the
/// reconnect handshake:
///
///   secondary -> HELLO { expected_seq, from_lsn }
///   primary:  expected_seq > 0 -> AttachSinkAt(SyncPointAtOrBefore(E).lsn)
///             expected_seq == 0 -> AttachSinkAt(from_lsn)  (cold start /
///                                  restart after kill -9: full log replay)
///   primary -> WELCOME { base_seq }
///   primary -> DATA { seq, record }*      secondary -> ACK { cum_seq }*
///
/// The replayed suffix may overlap what the secondary already applied
/// (sync points quantize downward); global record sequence numbers let the
/// receiver drop the overlap as duplicates — the same idempotence argument
/// as ReliableChannel's resync (Section 3.4's recovery machinery).

/// Primary-side listener: accepts one connection per secondary, each served
/// by its own propagator sink + sender thread.
class ReplicationListener {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; see port() after Start
  };

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t records_streamed = 0;
    std::uint64_t replay_attaches = 0;  // HELLOs answered via AttachSinkAt
  };

  ReplicationListener(Propagator* propagator, Options options);
  ~ReplicationListener();

  ReplicationListener(const ReplicationListener&) = delete;
  ReplicationListener& operator=(const ReplicationListener&) = delete;

  Status Start();
  void Stop();

  std::uint16_t port() const { return port_; }
  Stats stats() const;

  /// Lowest LSN any live secondary may still need for a resync: the minimum
  /// over live connections of the quiesced point at or below that
  /// connection's cumulative acked record seq. The checkpointer's truncation
  /// floor must not exceed this, or a reconnecting secondary's replay would
  /// hit truncated log. UINT64_MAX when no connection is live (nothing
  /// holds the log back).
  std::uint64_t MinAckFloor() const;

 private:
  struct Conn {
    std::unique_ptr<FramedSocket> sock;
    BlockingQueue<PropagationRecord> sink;
    std::thread sender;
    std::thread acker;
    std::atomic<std::uint64_t> acked{0};
    std::atomic<bool> done{false};  // ServeConnection finished; ignore
  };

  void AcceptLoop();
  void ServeConnection(Conn* conn);

  Propagator* propagator_;
  Options options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> records_streamed_{0};
  std::atomic<std::uint64_t> replay_attaches_{0};
};

/// Secondary-side stream client: dials the primary, handshakes, and feeds
/// decoded records into the secondary's update queue, deduplicating any
/// replay overlap by global sequence number. Reconnects (with a fresh
/// handshake at the current position) whenever the connection drops.
class ReplicationReceiver {
 public:
  struct Options {
    std::string primary_host = "127.0.0.1";
    std::uint16_t primary_port = 0;
    /// Cumulative ack every this many accepted records (acks are advisory —
    /// TCP carries the reliability — but keep the primary's lag visible).
    std::size_t ack_interval = 64;
    std::chrono::milliseconds reconnect_backoff{50};
    /// Checkpoint LSN to request the replay from when starting with
    /// expected_seq == 0 (restart-from-checkpoint; 0 = full log).
    std::size_t from_lsn = 0;
  };

  struct Stats {
    std::uint64_t records_delivered = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t decode_rejected = 0;
    std::uint64_t reconnects = 0;
  };

  ReplicationReceiver(BlockingQueue<PropagationRecord>* downstream,
                      Options options);
  ~ReplicationReceiver();

  ReplicationReceiver(const ReplicationReceiver&) = delete;
  ReplicationReceiver& operator=(const ReplicationReceiver&) = delete;

  void Start();
  void Stop();

  /// Fault injection: severs the current connection without stopping the
  /// receiver, forcing a reconnect + handshake resync at the current
  /// position (tests the replay-overlap dedup path).
  void CutConnection();

  Stats stats() const;
  std::uint64_t next_expected() const {
    return next_expected_.load(std::memory_order_acquire);
  }

 private:
  void Run();
  /// One connection lifetime: dial, handshake, stream until the socket
  /// drops. Returns false when stopping.
  bool RunOnce();

  BlockingQueue<PropagationRecord>* downstream_;
  Options options_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_expected_{0};
  bool had_connection_ = false;  // runner thread only
  std::thread runner_;
  std::mutex sock_mu_;
  std::shared_ptr<FramedSocket> sock_;  // current connection, for Stop()

  std::atomic<std::uint64_t> records_delivered_{0};
  std::atomic<std::uint64_t> duplicates_dropped_{0};
  std::atomic<std::uint64_t> decode_rejected_{0};
  std::atomic<std::uint64_t> reconnects_{0};
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_TCP_REPLICATION_H_
