#ifndef LAZYSI_REPLICATION_MESSAGES_H_
#define LAZYSI_REPLICATION_MESSAGES_H_

#include <string>
#include <variant>
#include <vector>

#include "common/timestamp.h"
#include "storage/write_set.h"

namespace lazysi {
namespace replication {

/// start_p(T): propagated as soon as the propagator encounters it in the
/// primary log, which keeps propagation live even while T is still running
/// (Section 3.2).
struct PropStart {
  TxnId txn_id = kInvalidTxnId;
  Timestamp start_ts = kInvalidTimestamp;
  /// Position of this record in the propagator's canonical broadcast stream
  /// (its records_broadcast counter at emission). Stamped once at the
  /// propagator, preserved across the wire and transport resyncs, so a
  /// replica can detect stream discontinuities end-to-end and the parallel
  /// replay pipeline can fan records out and re-sequence the decoded results
  /// by tag.
  std::uint64_t seq = 0;
};

/// commit_p(T) together with T's complete update list. Updates ride with the
/// commit record so that aborted transactions are never shipped or applied at
/// secondaries (Algorithm 3.1, line 8).
struct PropCommit {
  TxnId txn_id = kInvalidTxnId;
  Timestamp commit_ts = kInvalidTimestamp;
  /// T's updates in execution order. Under partial replication this is only
  /// the subset covered by the receiving sink's partitions.
  std::vector<storage::Write> updates;
  /// Broadcast-stream position; see PropStart::seq.
  std::uint64_t seq = 0;
  /// Coverage marker: how many of T's updates partial replication filtered
  /// out for this sink. updates.size() + filtered always equals the
  /// transaction's full update count, so a secondary can distinguish a
  /// genuinely small commit from a filtered one, and a fully filtered commit
  /// (updates empty, filtered > 0) still advances the seq/ack stream and the
  /// visibility watermark.
  std::uint64_t filtered = 0;
};

/// abort_p(T): tells refreshers to abandon the refresh transaction they
/// started when T's start record arrived.
struct PropAbort {
  TxnId txn_id = kInvalidTxnId;
  /// Broadcast-stream position; see PropStart::seq.
  std::uint64_t seq = 0;
};

/// One element of a secondary's FIFO update queue. Records arrive in primary
/// timestamp order and, per the paper's assumption, are never lost or
/// reordered in transit.
using PropagationRecord = std::variant<PropStart, PropCommit, PropAbort>;

/// Primary timestamp carried by a record (start_ts or commit_ts; 0 for
/// aborts, which carry none).
inline Timestamp RecordTimestamp(const PropagationRecord& record) {
  if (const auto* s = std::get_if<PropStart>(&record)) return s->start_ts;
  if (const auto* c = std::get_if<PropCommit>(&record)) return c->commit_ts;
  return kInvalidTimestamp;
}

inline TxnId RecordTxnId(const PropagationRecord& record) {
  return std::visit([](const auto& r) { return r.txn_id; }, record);
}

/// Broadcast-stream position carried by every record (see PropStart::seq).
inline std::uint64_t RecordSeq(const PropagationRecord& record) {
  return std::visit([](const auto& r) { return r.seq; }, record);
}

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_MESSAGES_H_
