#include "replication/framed_socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace lazysi {
namespace replication {

namespace {

bool FillAddr(const std::string& host, std::uint16_t port,
              sockaddr_in* addr) {
  *addr = sockaddr_in{};
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (host.empty() || host == "localhost") {
    addr->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

int ListenOn(const std::string& host, std::uint16_t port,
             std::uint16_t* actual_port) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return -1;
  }
  if (actual_port != nullptr) *actual_port = ntohs(addr.sin_port);
  return fd;
}

int DialTcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return -1;
  }
  SetNoDelay(fd);
  return fd;
}

int AcceptOn(int listen_fd) {
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd >= 0) SetNoDelay(fd);
  return fd;
}

bool SendAll(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool FramedSocket::Send(std::string_view payload) {
  if (fd_ < 0) return false;
  std::string wire;
  wire.reserve(payload.size() + 4);
  AppendTcpFrame(&wire, payload);
  return SendAll(fd_, wire);
}

std::optional<std::string> FramedSocket::Recv() {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    if (auto frame = framer_.Next()) return frame;
    if (framer_.poisoned()) return std::nullopt;
    const ssize_t n = ::recv(fd_, buf_, sizeof(buf_), 0);
    if (n == 0) return std::nullopt;
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (!framer_.Feed(
            std::string_view(buf_, static_cast<std::size_t>(n)))) {
      return std::nullopt;
    }
  }
}

void FramedSocket::ShutdownNow() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void FramedSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace replication
}  // namespace lazysi
