#include "replication/framed_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

namespace lazysi {
namespace replication {

namespace {

bool FillAddr(const std::string& host, std::uint16_t port,
              sockaddr_in* addr) {
  *addr = sockaddr_in{};
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (host.empty() || host == "localhost") {
    addr->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

void SetTcpNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int ListenOn(const std::string& host, std::uint16_t port,
             std::uint16_t* actual_port) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return -1;
  }
  if (actual_port != nullptr) *actual_port = ntohs(addr.sin_port);
  return fd;
}

int DialTcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return -1;
  }
  SetTcpNoDelay(fd);
  return fd;
}

int StartDialTcp(const std::string& host, std::uint16_t port,
                 bool* in_progress) {
  *in_progress = false;
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (!SetNonBlocking(fd)) {
    ::close(fd);
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) {
    SetTcpNoDelay(fd);
    return fd;
  }
  if (errno == EINPROGRESS) {
    *in_progress = true;
    return fd;
  }
  ::close(fd);
  return -1;
}

bool FinishDial(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
    return false;
  }
  SetTcpNoDelay(fd);
  return true;
}

int DialTcp(const std::string& host, std::uint16_t port,
            std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return DialTcp(host, port);
  bool in_progress = false;
  const int fd = StartDialTcp(host, port, &in_progress);
  if (fd < 0) return -1;
  if (in_progress) {
    pollfd pfd{fd, POLLOUT, 0};
    int rc;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      rc = ::poll(&pfd, 1, static_cast<int>(std::max<std::int64_t>(
                               0, left.count())));
      if (rc < 0 && errno == EINTR) continue;
      break;
    }
    if (rc <= 0 || !FinishDial(fd)) {
      ::close(fd);
      return -1;
    }
  }
  // Back to blocking mode: FramedSocket's Send/Recv are blocking-style.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  return fd;
}

int AcceptOn(int listen_fd) {
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd >= 0) SetTcpNoDelay(fd);
  return fd;
}

bool SendAll(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool FramedSocket::Send(std::string_view payload) {
  if (fd_ < 0) return false;
  std::string wire;
  wire.reserve(payload.size() + 4);
  AppendTcpFrame(&wire, payload);
  return SendAll(fd_, wire);
}

std::optional<std::string> FramedSocket::Recv() {
  timed_out_ = false;
  if (fd_ < 0) return std::nullopt;
  const bool deadline_set = recv_timeout_.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + recv_timeout_;
  for (;;) {
    if (auto frame = framer_.Next()) return frame;
    if (framer_.poisoned()) return std::nullopt;
    if (deadline_set) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        timed_out_ = true;
        return std::nullopt;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (rc < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (rc == 0) {
        timed_out_ = true;
        return std::nullopt;
      }
    }
    const ssize_t n = ::recv(fd_, buf_, sizeof(buf_), 0);
    if (n == 0) return std::nullopt;
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (!framer_.Feed(
            std::string_view(buf_, static_cast<std::size_t>(n)))) {
      return std::nullopt;
    }
  }
}

void FramedSocket::ShutdownNow() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void FramedSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace replication
}  // namespace lazysi
