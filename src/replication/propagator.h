#ifndef LAZYSI_REPLICATION_PROPAGATOR_H_
#define LAZYSI_REPLICATION_PROPAGATOR_H_

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/status.h"
#include "replication/messages.h"
#include "wal/logical_log.h"

namespace lazysi {
namespace replication {

struct PropagatorOptions {
  /// 0 = continuous propagation (each log record forwarded as it appears).
  /// > 0 = batched cycles: every interval, all records accumulated since the
  /// last cycle are sent, modelling the paper's `propagation_delay`
  /// (Table 1: 10 s propagator think time).
  std::chrono::milliseconds batch_interval{0};
};

/// Algorithm 3.1: tails the primary's logical log as a "log sniffer"
/// (Section 5 — it does not pass through the concurrency control), keeps an
/// update list per in-flight transaction, and broadcasts records to every
/// secondary's update queue in log (= timestamp) order:
///
///   - start records are forwarded immediately, which keeps propagation live
///     even when an earlier-started transaction has not committed yet;
///   - update records are buffered into the transaction's update list;
///   - commit records are forwarded together with the full update list, so
///     updates of transactions that abort are never shipped;
///   - abort records drop the update list and are forwarded so refreshers
///     can abandon the refresh transaction they already started.
class Propagator {
 public:
  explicit Propagator(wal::LogicalLog* log,
                      PropagatorOptions options = PropagatorOptions());
  ~Propagator();

  Propagator(const Propagator&) = delete;
  Propagator& operator=(const Propagator&) = delete;

  /// Adds a sink receiving every record from the propagator's *current*
  /// position onward. Safe while running.
  void AttachSink(BlockingQueue<PropagationRecord>* sink);

  /// Adds a sink that first receives a replay of log records from `from_lsn`
  /// up to the current position, then joins the live broadcast. `from_lsn`
  /// must be a quiesced point (no transaction in flight across it), e.g. the
  /// LSN of a Database::TakeCheckpoint — otherwise FailedPrecondition.
  /// Used for secondary recovery (Section 3.4).
  Status AttachSinkAt(BlockingQueue<PropagationRecord>* sink,
                      std::size_t from_lsn);

  /// Removes a sink (e.g. a failed secondary, before its queue is
  /// destroyed). No-op when the sink is not attached.
  void DetachSink(BlockingQueue<PropagationRecord>* sink);

  void Start();
  void Stop();

  /// Next LSN the propagator will read.
  std::size_t position() const {
    return position_.load(std::memory_order_acquire);
  }

  std::uint64_t commits_propagated() const {
    return commits_propagated_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  /// Consumes one log record: updates per-txn lists and broadcasts. Must be
  /// called with mu_ held.
  void ProcessLocked(const wal::LogRecord& record);
  void BroadcastLocked(const PropagationRecord& record);

  wal::LogicalLog* log_;
  PropagatorOptions options_;

  std::mutex mu_;  // guards sinks_, update_lists_ and record processing
  std::vector<BlockingQueue<PropagationRecord>*> sinks_;
  std::map<TxnId, std::vector<storage::Write>> update_lists_;

  std::atomic<std::size_t> position_{0};
  std::atomic<std::uint64_t> commits_propagated_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
  bool started_ = false;
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_PROPAGATOR_H_
