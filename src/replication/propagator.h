#ifndef LAZYSI_REPLICATION_PROPAGATOR_H_
#define LAZYSI_REPLICATION_PROPAGATOR_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/result.h"
#include "common/status.h"
#include "replication/messages.h"
#include "replication/partition_map.h"
#include "wal/logical_log.h"

namespace lazysi {
namespace replication {

struct PropagatorOptions {
  /// 0 = continuous propagation (each log record forwarded as it appears).
  /// > 0 = batched cycles: every interval, all records accumulated since the
  /// last cycle are sent, modelling the paper's `propagation_delay`
  /// (Table 1: 10 s propagator think time).
  std::chrono::milliseconds batch_interval{0};
  /// Durability barrier: when set, the propagator only consumes log records
  /// below the returned LSN (exclusive). A durable primary points this at
  /// its flushed-LSN watermark so no record reaches a secondary before it
  /// reaches disk — otherwise a crash could leave the restarted primary
  /// *behind* its secondaries, re-issuing timestamps they already applied.
  /// Null = no barrier (in-memory primary).
  std::function<std::size_t()> read_limit;
};

/// Algorithm 3.1: tails the primary's logical log as a "log sniffer"
/// (Section 5 — it does not pass through the concurrency control), keeps an
/// update list per in-flight transaction, and broadcasts records to every
/// secondary's update queue in log (= timestamp) order:
///
///   - start records are forwarded immediately, which keeps propagation live
///     even when an earlier-started transaction has not committed yet;
///   - update records are buffered into the transaction's update list;
///   - commit records are forwarded together with the full update list, so
///     updates of transactions that abort are never shipped;
///   - abort records drop the update list and are forwarded so refreshers
///     can abandon the refresh transaction they already started.
class Propagator {
 public:
  explicit Propagator(wal::LogicalLog* log,
                      PropagatorOptions options = PropagatorOptions());
  ~Propagator();

  Propagator(const Propagator&) = delete;
  Propagator& operator=(const Propagator&) = delete;

  /// A quiesced propagation point: no transaction's start/commit pair spans
  /// `lsn`, and exactly `record_seq` propagation records precede it in the
  /// canonical broadcast stream. Valid target for AttachSinkAt; the reliable
  /// channel resyncs a reconnecting secondary from one of these.
  struct SyncPoint {
    std::size_t lsn = 0;
    std::uint64_t record_seq = 0;
  };

  /// Adds a sink receiving every record from the propagator's *current*
  /// position onward. Safe while running. Returns the global sequence number
  /// of the first record the sink will observe (records are numbered from
  /// the start of the log, one per non-update log record). An active
  /// `filter` restricts each commit's update list to the sink's partitions
  /// (dropped updates counted in PropCommit::filtered); record count and
  /// stream seqs are identical across all sinks regardless of filtering.
  std::uint64_t AttachSink(BlockingQueue<PropagationRecord>* sink,
                           SinkFilter filter = SinkFilter());

  /// Adds a sink that first receives a replay of log records from `from_lsn`
  /// up to the current position, then joins the live broadcast. `from_lsn`
  /// must be a quiesced point (no transaction in flight across it), e.g. the
  /// LSN of a Database::TakeCheckpoint or a SyncPoint — otherwise
  /// FailedPrecondition. Returns the global sequence number of the first
  /// replayed record. Used for secondary recovery (Section 3.4) and for
  /// transport-level resync after a disconnect. The replay is filtered the
  /// same way as the live broadcast.
  Result<std::uint64_t> AttachSinkAt(BlockingQueue<PropagationRecord>* sink,
                                     std::size_t from_lsn,
                                     SinkFilter filter = SinkFilter());

  /// Latest recorded quiesced point whose record_seq is <= `record_seq`.
  /// A reconnecting channel replays from here, so a receiver that
  /// acknowledged everything below `record_seq` sees exactly the suffix it
  /// missed (plus dedupable records between the sync point and `record_seq`).
  /// When `record_seq` predates every retained point (the log was truncated
  /// past it), the oldest retained point is returned — the caller compares
  /// record_seq against the result to detect that it can no longer resync.
  SyncPoint SyncPointAtOrBefore(std::uint64_t record_seq) const;

  /// Primes a propagator for a primary restored from a data directory whose
  /// log was truncated: the oldest retained record is `base_lsn`, preceded
  /// by exactly `base_record_seq` propagation records that are gone for
  /// good. The propagator starts reading at `base_lsn` (re-consuming the
  /// restored suffix so AttachSinkAt can replay it) and numbers the stream
  /// from `base_record_seq`. Must be called before Start / AttachSink, on a
  /// propagator that has consumed nothing.
  void SeedForRecovery(std::size_t base_lsn, std::uint64_t base_record_seq);

  /// Removes a sink (e.g. a failed secondary, before its queue is
  /// destroyed). No-op when the sink is not attached.
  void DetachSink(BlockingQueue<PropagationRecord>* sink);

  void Start();
  void Stop();

  /// Next LSN the propagator will read.
  std::size_t position() const {
    return position_.load(std::memory_order_acquire);
  }

  std::uint64_t commits_propagated() const {
    return commits_propagated_.load(std::memory_order_relaxed);
  }

  /// Total propagation records broadcast so far (starts + commits + aborts;
  /// update log records fold into their commit and are not counted).
  std::uint64_t records_broadcast() const {
    return records_broadcast_.load(std::memory_order_relaxed);
  }

 private:
  /// Recorded quiesced points beyond which older ones are dropped; the
  /// origin {0, 0} is always retained as the resync point of last resort.
  static constexpr std::size_t kMaxSyncPoints = 256;
  /// Upper bound on log records consumed per lock hold. The whole burst's
  /// propagation records are published to each sink with one PushAll — one
  /// queue lock per burst per sink instead of one per record — while the
  /// bound keeps Attach/Detach latency under a steady firehose.
  static constexpr std::size_t kBroadcastBurst = 256;

  void Run();
  /// Consumes up to kBroadcastBurst log records under one mu_ hold and
  /// flushes their propagation records to every sink. Returns the number of
  /// log records consumed (0 = nothing available).
  std::size_t DrainBurst();
  /// Consumes the log record at the current position: updates per-txn lists,
  /// buffers broadcast records into burst_, advances position_ and records a
  /// sync point when quiesced. Must be called with mu_ held.
  void ConsumeLocked(const wal::LogRecord& record);
  /// Counts the record as broadcast and appends it to the pending burst.
  void BufferLocked(PropagationRecord record);
  /// Publishes the pending burst to every sink. Must be called with mu_ held
  /// (attach/detach see either none or all of a burst).
  void FlushBurstLocked();

  wal::LogicalLog* log_;
  PropagatorOptions options_;

  struct SinkEntry {
    BlockingQueue<PropagationRecord>* queue;
    SinkFilter filter;
  };

  mutable std::mutex mu_;  // guards sinks_, update_lists_, sync_points_
  std::vector<SinkEntry> sinks_;
  std::map<TxnId, std::vector<storage::Write>> update_lists_;
  /// Propagation records of the burst being consumed, awaiting flush.
  std::vector<PropagationRecord> burst_;
  /// record_seq -> lsn at quiesced moments, ascending in both components.
  std::map<std::uint64_t, std::size_t> sync_points_{{0, 0}};

  std::atomic<std::size_t> position_{0};
  std::atomic<std::uint64_t> commits_propagated_{0};
  std::atomic<std::uint64_t> records_broadcast_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
  bool started_ = false;
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_PROPAGATOR_H_
