#ifndef LAZYSI_REPLICATION_PARTITION_MAP_H_
#define LAZYSI_REPLICATION_PARTITION_MAP_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "storage/versioned_store.h"

namespace lazysi {
namespace replication {

/// Static assignment of the keyspace to the secondary fleet: keys hash (or
/// range) into `num_partitions` partitions, and each partition is replicated
/// on `replication_factor` secondaries chosen round-robin
/// (replicas(p) = {(p + j) mod S : j < R}). Round-robin keeps per-secondary
/// coverage balanced (every secondary covers ceil(P*R/S) or floor(P*R/S)
/// partitions) and, with R >= 2, guarantees any single secondary failure
/// leaves every partition with a live replica.
///
/// The map is immutable after construction and shared (via shared_ptr) by
/// the system, the propagator's per-sink filters, and the router, so all
/// layers agree on placement without synchronization.
///
/// A replication_factor of 0 (the default) or >= the fleet size means full
/// replication: every secondary covers every partition and `partial()` is
/// false, which makes every filter a no-op and degrades routing, GC floors,
/// and reads to the pre-partitioning behavior.
class PartitionMap {
 public:
  enum class Scheme {
    kHash,   // storage::HashPartitionOfKey
    kRange,  // storage::RangePartitionOfKey (contiguous key ranges)
  };

  struct Config {
    std::size_t num_partitions = 1;
    std::size_t replication_factor = 0;  // 0 or >= fleet size => full
    Scheme scheme = Scheme::kHash;
  };

  PartitionMap(Config config, std::size_t num_secondaries);

  std::size_t num_partitions() const { return num_partitions_; }
  std::size_t num_secondaries() const { return num_secondaries_; }
  std::size_t replication_factor() const { return replication_factor_; }
  Scheme scheme() const { return scheme_; }

  /// True when at least one secondary does not replicate the whole keyspace.
  bool partial() const { return partial_; }

  std::size_t PartitionOf(const std::string& key) const;

  /// Secondary indices replicating `partition`, ascending.
  const std::vector<std::size_t>& Replicas(std::size_t partition) const {
    return replicas_[partition];
  }

  /// Partition indices covered by `secondary`, ascending.
  const std::vector<std::size_t>& Coverage(std::size_t secondary) const {
    return coverage_[secondary];
  }

  bool Covers(std::size_t secondary, std::size_t partition) const {
    return covers_[secondary][partition];
  }

  bool CoversKey(std::size_t secondary, const std::string& key) const {
    return covers_[secondary][PartitionOf(key)];
  }

  /// Fraction of partitions `secondary` covers, in (0, 1].
  double CoverageFraction(std::size_t secondary) const {
    return static_cast<double>(coverage_[secondary].size()) /
           static_cast<double>(num_partitions_);
  }

 private:
  std::size_t num_partitions_;
  std::size_t num_secondaries_;
  std::size_t replication_factor_;  // effective (clamped to fleet size)
  Scheme scheme_;
  bool partial_;
  std::vector<std::vector<std::size_t>> replicas_;  // [partition] -> secondaries
  std::vector<std::vector<std::size_t>> coverage_;  // [secondary] -> partitions
  std::vector<std::vector<bool>> covers_;           // [secondary][partition]
};

/// Coverage filter a propagation sink registers with the Propagator. An
/// inactive filter (no map, or a map that is not partial, or a secondary
/// that covers everything) passes records through untouched. An active one
/// drops the updates of keys outside the secondary's partitions from each
/// PropCommit, recording how many were dropped in PropCommit::filtered —
/// the record itself (and its stream seq) is always delivered, so the
/// sink's seq/ack stream, resync, and the visibility watermark are
/// oblivious to filtering.
struct SinkFilter {
  std::shared_ptr<const PartitionMap> map;
  std::size_t secondary_index = 0;

  bool active() const {
    return map != nullptr && map->partial() &&
           map->Coverage(secondary_index).size() < map->num_partitions();
  }

  bool CoversKey(const std::string& key) const {
    return map->CoversKey(secondary_index, key);
  }
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_PARTITION_MAP_H_
