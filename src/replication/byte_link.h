#ifndef LAZYSI_REPLICATION_BYTE_LINK_H_
#define LAZYSI_REPLICATION_BYTE_LINK_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace lazysi {
namespace replication {

/// Delivery counters of a byte link, uniform across implementations so the
/// system stats layer can report any transport the same way.
struct LinkCounters {
  std::uint64_t sent = 0;        // frames offered to the link
  std::uint64_t delivered = 0;   // frames that reached the other end
  std::uint64_t dropped = 0;     // includes frames eaten while disconnected
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t bytes_sent = 0;       // payload bytes offered to the link
  std::uint64_t bytes_delivered = 0;  // payload bytes that reached the end
};

/// A full-duplex, possibly unreliable byte link between the propagation
/// sender (primary side) and receiver (secondary side). Frames are opaque
/// byte strings produced by the wire codec; the link may lose, duplicate,
/// corrupt, or sever them — re-establishing Section 3.2's reliable-FIFO
/// contract on top is ReliableChannel's job, identically for every
/// implementation.
///
/// Direction "data" carries sender -> receiver record frames; direction
/// "ack" carries receiver -> sender acknowledgement frames. Both directions
/// share one disconnected state, like a real socket.
///
/// Implementations: ChaosLink (in-process queues with seeded fault
/// injection) and TcpLink (real loopback/remote sockets, optionally with the
/// same fault injection applied before frames hit the wire).
class ByteLink {
 public:
  virtual ~ByteLink() = default;

  /// Sends one data frame toward the receiver. Returns false when the frame
  /// was dropped (loss, disconnection, or a dead socket).
  virtual bool SendData(std::string frame) = 0;

  /// Sends one ack frame toward the sender.
  virtual bool SendAck(std::string frame) = 0;

  /// Blocking receive of the next data frame; nullopt after Close().
  virtual std::optional<std::string> ReceiveData() = 0;

  /// Bounded blocking receive: the next data frame, or nullopt after
  /// `timeout` with nothing available (also nullopt once closed — callers
  /// distinguish by falling back to the blocking ReceiveData, which returns
  /// immediately on a closed link). The receiver endpoint uses this to flush
  /// a batched cumulative ack when the stream goes idle.
  virtual std::optional<std::string> ReceiveDataFor(
      std::chrono::milliseconds timeout) = 0;

  /// Non-blocking receive used by the receiver to drain a burst.
  virtual std::optional<std::string> TryReceiveData() = 0;

  /// Non-blocking receive of the next ack frame (the sender polls acks
  /// between sends and retransmission rounds).
  virtual std::optional<std::string> TryReceiveAck() = 0;

  virtual bool disconnected() const = 0;

  /// Re-establishes a severed connection. Frames sent while disconnected
  /// stay lost; frames already delivered to the far side's queues survive
  /// (they were on the wire).
  virtual void Reconnect() = 0;

  /// Severs the connection as if the network cut it.
  virtual void Disconnect() = 0;

  /// Shuts the link down; blocked receivers drain then stop.
  virtual void Close() = 0;

  /// Reopens a Close()d link so a restarted channel can reuse it. Frames
  /// still queued from before the shutdown are discarded (they belong to a
  /// dead connection).
  virtual void Reopen() = 0;

  virtual LinkCounters counters() const = 0;
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_BYTE_LINK_H_
