#include "replication/propagator.h"

#include "common/logging.h"

namespace lazysi {
namespace replication {

Propagator::Propagator(wal::LogicalLog* log, PropagatorOptions options)
    : log_(log), options_(options) {}

Propagator::~Propagator() { Stop(); }

namespace {

/// Applies a sink's coverage filter to one record in place: commits keep
/// only covered updates and count the dropped ones in `filtered`; starts
/// and aborts pass through untouched.
void FilterRecordInPlace(PropagationRecord* record, const SinkFilter& filter) {
  auto* commit = std::get_if<PropCommit>(record);
  if (commit == nullptr) return;
  std::vector<storage::Write> kept;
  kept.reserve(commit->updates.size());
  for (auto& w : commit->updates) {
    if (filter.CoversKey(w.key)) {
      kept.push_back(std::move(w));
    } else {
      ++commit->filtered;
    }
  }
  commit->updates = std::move(kept);
}

}  // namespace

std::uint64_t Propagator::AttachSink(BlockingQueue<PropagationRecord>* sink,
                                     SinkFilter filter) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(SinkEntry{sink, std::move(filter)});
  return records_broadcast_.load(std::memory_order_relaxed);
}

Result<std::uint64_t> Propagator::AttachSinkAt(
    BlockingQueue<PropagationRecord>* sink, std::size_t from_lsn,
    SinkFilter filter) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t upto = position_.load(std::memory_order_acquire);
  if (from_lsn > upto) {
    return Status::InvalidArgument("from_lsn is ahead of the propagator");
  }
  // Global sequence number of the first replayed record: every non-update
  // log record below from_lsn produced exactly one propagation record. Count
  // forward from the nearest recorded sync point at or below from_lsn (both
  // map components ascend) instead of rescanning the log from LSN 0, so the
  // cost is O(sync points + resync window), not O(log size).
  std::uint64_t base_seq = 0;
  std::size_t base_lsn = 0;
  for (const auto& [seq, lsn] : sync_points_) {
    if (lsn > from_lsn) break;
    base_seq = seq;
    base_lsn = lsn;
  }
  for (std::size_t lsn = base_lsn; lsn < from_lsn; ++lsn) {
    auto rec = log_->At(lsn);
    if (!rec.has_value()) {
      return Status::Internal("log truncated below propagator position");
    }
    if (rec->type != wal::LogRecordType::kUpdate) ++base_seq;
  }
  // Rebuild update lists from the log slice and emit the records this sink
  // missed. A commit whose start record is not inside the slice means the
  // checkpoint was not quiesced.
  std::map<TxnId, std::vector<storage::Write>> lists;
  std::vector<PropagationRecord> replay;
  for (std::size_t lsn = from_lsn; lsn < upto; ++lsn) {
    auto rec = log_->At(lsn);
    if (!rec.has_value()) {
      return Status::Internal("log truncated below propagator position");
    }
    switch (rec->type) {
      case wal::LogRecordType::kStart:
        lists[rec->txn_id];  // mark txn as started inside the slice
        replay.push_back(
            PropStart{rec->txn_id, rec->timestamp, base_seq + replay.size()});
        break;
      case wal::LogRecordType::kUpdate:
        if (!lists.count(rec->txn_id)) {
          return Status::FailedPrecondition(
              "checkpoint LSN is not quiesced: update of a transaction "
              "started before the checkpoint");
        }
        lists[rec->txn_id].push_back(storage::Write{
            rec->key, rec->value, rec->deleted});
        break;
      case wal::LogRecordType::kCommit: {
        auto it = lists.find(rec->txn_id);
        if (it == lists.end()) {
          return Status::FailedPrecondition(
              "checkpoint LSN is not quiesced: commit of a transaction "
              "started before the checkpoint");
        }
        replay.push_back(PropCommit{rec->txn_id, rec->timestamp,
                                    std::move(it->second),
                                    base_seq + replay.size()});
        lists.erase(it);
        break;
      }
      case wal::LogRecordType::kAbort:
        lists.erase(rec->txn_id);
        replay.push_back(PropAbort{rec->txn_id, base_seq + replay.size()});
        break;
    }
  }
  if (filter.active()) {
    for (auto& record : replay) FilterRecordInPlace(&record, filter);
  }
  sink->PushAll(std::move(replay));
  sinks_.push_back(SinkEntry{sink, std::move(filter)});
  return base_seq;
}

Propagator::SyncPoint Propagator::SyncPointAtOrBefore(
    std::uint64_t record_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sync_points_.upper_bound(record_seq);
  if (it == sync_points_.begin()) {
    // record_seq predates every retained point (possible after truncation
    // on a recovered primary): return the oldest one; the caller notices
    // the returned seq is ahead of what it asked for.
    return SyncPoint{it->second, it->first};
  }
  --it;
  return SyncPoint{it->second, it->first};
}

void Propagator::SeedForRecovery(std::size_t base_lsn,
                                 std::uint64_t base_record_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  position_.store(base_lsn, std::memory_order_release);
  records_broadcast_.store(base_record_seq, std::memory_order_relaxed);
  // The truncation floor is always a quiesced point (segment rotation and
  // checkpoints only happen with no transaction in flight), so it replaces
  // the origin as the resync point of last resort.
  sync_points_.clear();
  sync_points_[base_record_seq] = base_lsn;
}

void Propagator::DetachSink(BlockingQueue<PropagationRecord>* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(sinks_, [sink](const SinkEntry& e) { return e.queue == sink; });
}

void Propagator::Start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void Propagator::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  started_ = false;
}

void Propagator::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (options_.batch_interval.count() > 0) {
      // Batched cycles: think for one propagation delay *before* each drain
      // (Table 1's propagation_delay is the propagator's think time), in
      // small increments so Stop() stays responsive.
      auto remaining = options_.batch_interval;
      const auto step = std::chrono::milliseconds(10);
      while (remaining.count() > 0 && !stop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::min(step, remaining));
        remaining -= step;
      }
    }
    // Drain everything currently available, in log order, one burst (and
    // one per-sink PushAll) per lock hold.
    bool drained_any = false;
    while (DrainBurst() > 0) drained_any = true;
    if (options_.batch_interval.count() == 0 && !drained_any) {
      // Continuous mode: block until the next record appears.
      auto rec = log_->WaitAt(position_.load(std::memory_order_acquire),
                              std::chrono::milliseconds(50));
      if (rec.has_value() && options_.read_limit) {
        // The record exists but DrainBurst declined it: it is still behind
        // the durability barrier. Yield while the flush completes rather
        // than spinning on WaitAt (which returns immediately).
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      if (!rec.has_value() && log_->closed()) {
        if (log_->Size() <= position_.load(std::memory_order_acquire)) break;
      }
    }
  }
  // Final drain so a Stop after workload completion loses nothing.
  while (DrainBurst() > 0) {
  }
}

std::size_t Propagator::DrainBurst() {
  std::lock_guard<std::mutex> lock(mu_);
  // Sampled once per burst: the watermark only advances, so a stale sample
  // merely under-drains this round.
  const std::size_t limit =
      options_.read_limit ? options_.read_limit() : SIZE_MAX;
  std::size_t consumed = 0;
  while (consumed < kBroadcastBurst) {
    const std::size_t pos = position_.load(std::memory_order_relaxed);
    if (pos >= limit) break;  // record not durable yet
    auto rec = log_->At(pos);
    if (!rec.has_value()) break;
    ConsumeLocked(*rec);
    ++consumed;
  }
  FlushBurstLocked();
  return consumed;
}

void Propagator::ConsumeLocked(const wal::LogRecord& record) {
  switch (record.type) {
    case wal::LogRecordType::kStart:
      update_lists_[record.txn_id];
      BufferLocked(PropStart{record.txn_id, record.timestamp});
      break;
    case wal::LogRecordType::kUpdate:
      update_lists_[record.txn_id].push_back(
          storage::Write{record.key, record.value, record.deleted});
      break;
    case wal::LogRecordType::kCommit: {
      auto it = update_lists_.find(record.txn_id);
      std::vector<storage::Write> updates;
      if (it != update_lists_.end()) {
        updates = std::move(it->second);
        update_lists_.erase(it);
      }
      BufferLocked(
          PropCommit{record.txn_id, record.timestamp, std::move(updates)});
      commits_propagated_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case wal::LogRecordType::kAbort:
      update_lists_.erase(record.txn_id);
      BufferLocked(PropAbort{record.txn_id});
      break;
  }
  position_.fetch_add(1, std::memory_order_release);
  if (update_lists_.empty()) {
    // No transaction spans the new position: remember it as a quiesced
    // resync target for reconnecting channels.
    sync_points_[records_broadcast_.load(std::memory_order_relaxed)] =
        position_.load(std::memory_order_relaxed);
    if (sync_points_.size() > kMaxSyncPoints) {
      // Drop the oldest point after the always-kept origin.
      sync_points_.erase(std::next(sync_points_.begin()));
    }
  }
}

void Propagator::BufferLocked(PropagationRecord record) {
  // Counted at buffering time: the flush happens under the same mu_ hold, so
  // a sink attached afterwards (AttachSink also takes mu_) starts exactly at
  // the post-burst sequence number it will first observe. The pre-increment
  // value is also the record's stream position, stamped into the record so
  // receivers can spot discontinuities after the wire and transport layers
  // have had their way with the batch framing.
  const std::uint64_t seq =
      records_broadcast_.fetch_add(1, std::memory_order_relaxed);
  std::visit([seq](auto& r) { r.seq = seq; }, record);
  burst_.push_back(std::move(record));
}

void Propagator::FlushBurstLocked() {
  if (burst_.empty()) return;
  if (sinks_.size() == 1 && !sinks_[0].filter.active()) {
    sinks_[0].queue->PushAll(std::move(burst_));
  } else {
    for (auto& sink : sinks_) {
      if (!sink.filter.active()) {
        sink.queue->PushAll(burst_);
        continue;
      }
      // Filtered sinks get their own copy with uncovered updates dropped;
      // the shared burst_ stays intact for the remaining sinks.
      std::vector<PropagationRecord> filtered = burst_;
      for (auto& record : filtered) FilterRecordInPlace(&record, sink.filter);
      sink.queue->PushAll(std::move(filtered));
    }
  }
  burst_.clear();
}

}  // namespace replication
}  // namespace lazysi
