#ifndef LAZYSI_REPLICATION_CHAOS_LINK_H_
#define LAZYSI_REPLICATION_CHAOS_LINK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "common/queue.h"
#include "common/random.h"
#include "replication/byte_link.h"

namespace lazysi {
namespace replication {

/// Fault rates of a chaos-injected link, each applied independently per
/// frame send. All zero (the default) models the paper's assumed network:
/// "propagated messages are not lost or reordered" (Section 3.2).
struct FaultProfile {
  /// P(frame silently dropped).
  double drop_probability = 0.0;
  /// P(frame delivered twice back to back).
  double duplicate_probability = 0.0;
  /// P(one random byte of the frame is flipped before delivery).
  double corrupt_probability = 0.0;
  /// P(the connection is severed; every later send in either direction is
  /// dropped until Reconnect()).
  double disconnect_probability = 0.0;

  bool any() const {
    return drop_probability > 0 || duplicate_probability > 0 ||
           corrupt_probability > 0 || disconnect_probability > 0;
  }
};

/// A full-duplex, in-process byte link that violates Section 3.2's
/// reliability assumption on purpose: frames (opaque byte strings produced
/// by the wire codec) are dropped, duplicated, corrupted, or cut off by a
/// connection loss, all from a seeded RNG so every failure run replays
/// exactly. Frames that do get through arrive in FIFO order per direction —
/// the link models a lossy datagram stream, and it is ReliableChannel's job
/// to rebuild the lost/duplicated/corrupted parts of the contract on top.
///
/// Direction "data" carries sender -> receiver record frames; direction
/// "ack" carries receiver -> sender acknowledgement frames. Both directions
/// share one fault process and one disconnected state, like a real socket.
class ChaosLink : public ByteLink {
 public:
  using Counters = LinkCounters;

  ChaosLink(FaultProfile faults, std::uint64_t seed)
      : faults_(faults), rng_(seed) {}

  ChaosLink(const ChaosLink&) = delete;
  ChaosLink& operator=(const ChaosLink&) = delete;

  /// Sends one data frame toward the receiver, subject to fault injection.
  /// Returns false when the frame was dropped (loss or disconnection).
  bool SendData(std::string frame) override {
    return Send(&data_, std::move(frame));
  }

  /// Sends one ack frame toward the sender, subject to fault injection.
  bool SendAck(std::string frame) override {
    return Send(&acks_, std::move(frame));
  }

  /// Blocking receive of the next data frame; nullopt after Close().
  std::optional<std::string> ReceiveData() override { return data_.Pop(); }

  /// Bounded blocking receive (nullopt on timeout or closed-and-drained).
  std::optional<std::string> ReceiveDataFor(
      std::chrono::milliseconds timeout) override {
    return data_.PopFor(timeout);
  }

  /// Non-blocking receive used by the receiver to drain a burst.
  std::optional<std::string> TryReceiveData() override {
    return data_.TryPop();
  }

  /// Non-blocking receive of the next ack frame (the sender polls acks
  /// between sends and retransmission rounds).
  std::optional<std::string> TryReceiveAck() override {
    return acks_.TryPop();
  }

  bool disconnected() const override {
    return disconnected_.load(std::memory_order_acquire);
  }

  /// Re-establishes a severed connection. Frames sent while disconnected
  /// stay lost; frames queued before the cut are still delivered (they were
  /// already on the wire).
  void Reconnect() override {
    disconnected_.store(false, std::memory_order_release);
  }

  /// Severs the connection as if the network cut it (also injected
  /// spontaneously with FaultProfile::disconnect_probability).
  void Disconnect() override {
    bool was = disconnected_.exchange(true, std::memory_order_acq_rel);
    if (!was) counter_disconnects_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Shuts the link down; blocked receivers drain then stop.
  void Close() override {
    data_.Close();
    acks_.Close();
  }

  /// Reopens a Close()d link so a restarted channel can reuse it. Frames
  /// still queued from before the shutdown are discarded (they belong to a
  /// dead connection).
  void Reopen() override {
    while (data_.TryPop().has_value()) {
    }
    while (acks_.TryPop().has_value()) {
    }
    data_.Reopen();
    acks_.Reopen();
    disconnected_.store(false, std::memory_order_release);
  }

  Counters counters() const override {
    Counters c;
    c.sent = counter_sent_.load(std::memory_order_relaxed);
    c.delivered = counter_delivered_.load(std::memory_order_relaxed);
    c.dropped = counter_dropped_.load(std::memory_order_relaxed);
    c.duplicated = counter_duplicated_.load(std::memory_order_relaxed);
    c.corrupted = counter_corrupted_.load(std::memory_order_relaxed);
    c.disconnects = counter_disconnects_.load(std::memory_order_relaxed);
    c.bytes_sent = counter_bytes_sent_.load(std::memory_order_relaxed);
    c.bytes_delivered =
        counter_bytes_delivered_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  bool Send(BlockingQueue<std::string>* direction, std::string frame) {
    counter_sent_.fetch_add(1, std::memory_order_relaxed);
    counter_bytes_sent_.fetch_add(frame.size(), std::memory_order_relaxed);
    bool duplicate = false;
    {
      std::lock_guard<std::mutex> lock(rng_mu_);
      if (faults_.disconnect_probability > 0 &&
          rng_.Bernoulli(faults_.disconnect_probability)) {
        Disconnect();
      }
      if (disconnected_.load(std::memory_order_acquire)) {
        counter_dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (faults_.drop_probability > 0 &&
          rng_.Bernoulli(faults_.drop_probability)) {
        counter_dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (!frame.empty() && faults_.corrupt_probability > 0 &&
          rng_.Bernoulli(faults_.corrupt_probability)) {
        frame[rng_.Next(frame.size())] ^=
            static_cast<char>(1 + rng_.Next(255));
        counter_corrupted_.fetch_add(1, std::memory_order_relaxed);
      }
      duplicate = faults_.duplicate_probability > 0 &&
                  rng_.Bernoulli(faults_.duplicate_probability);
    }
    const std::uint64_t size = frame.size();
    if (duplicate) {
      direction->Push(frame);
      counter_duplicated_.fetch_add(1, std::memory_order_relaxed);
      counter_delivered_.fetch_add(1, std::memory_order_relaxed);
      counter_bytes_delivered_.fetch_add(size, std::memory_order_relaxed);
    }
    direction->Push(std::move(frame));
    counter_delivered_.fetch_add(1, std::memory_order_relaxed);
    counter_bytes_delivered_.fetch_add(size, std::memory_order_relaxed);
    return true;
  }

  FaultProfile faults_;
  std::mutex rng_mu_;
  Rng rng_;
  BlockingQueue<std::string> data_;
  BlockingQueue<std::string> acks_;
  std::atomic<bool> disconnected_{false};
  std::atomic<std::uint64_t> counter_sent_{0};
  std::atomic<std::uint64_t> counter_delivered_{0};
  std::atomic<std::uint64_t> counter_dropped_{0};
  std::atomic<std::uint64_t> counter_duplicated_{0};
  std::atomic<std::uint64_t> counter_corrupted_{0};
  std::atomic<std::uint64_t> counter_disconnects_{0};
  std::atomic<std::uint64_t> counter_bytes_sent_{0};
  std::atomic<std::uint64_t> counter_bytes_delivered_{0};
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_CHAOS_LINK_H_
