#include "replication/wire.h"

namespace lazysi {
namespace replication {

namespace {

constexpr std::uint8_t kTagStart = 1;
constexpr std::uint8_t kTagCommit = 2;
constexpr std::uint8_t kTagAbort = 3;

}  // namespace

void PutVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const std::string& data, std::size_t* offset,
               std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (*offset < data.size()) {
    auto b = static_cast<unsigned char>(data[*offset]);
    ++(*offset);
    // The 10th byte can only contribute the top bit of a 64-bit value:
    // reject continuations and payload bits that would be shifted out, so
    // every value has exactly one accepted encoding of <= 10 bytes.
    if (shift == 63 && (b & 0xfe) != 0) return false;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
    if (shift > 63) return false;
  }
  return false;
}

namespace {

void PutString(std::string* out, const std::string& s) {
  PutVarint(out, s.size());
  out->append(s);
}

bool GetString(const std::string& data, std::size_t* offset,
               std::string* out) {
  std::uint64_t len = 0;
  if (!GetVarint(data, offset, &len)) return false;
  // Not `*offset + len > data.size()`: that sum wraps for attacker-chosen
  // len near 2^64 and would pass the check.
  if (len > data.size() - *offset) return false;
  out->assign(data, *offset, len);
  *offset += len;
  return true;
}

}  // namespace

void EncodeRecord(const PropagationRecord& record, std::string* out) {
  if (const auto* s = std::get_if<PropStart>(&record)) {
    out->push_back(static_cast<char>(kTagStart));
    PutVarint(out, s->txn_id);
    PutVarint(out, s->seq);
    PutVarint(out, s->start_ts);
  } else if (const auto* c = std::get_if<PropCommit>(&record)) {
    out->push_back(static_cast<char>(kTagCommit));
    PutVarint(out, c->txn_id);
    PutVarint(out, c->seq);
    PutVarint(out, c->commit_ts);
    PutVarint(out, c->filtered);
    PutVarint(out, c->updates.size());
    for (const auto& w : c->updates) {
      PutString(out, w.key);
      PutString(out, w.value);
      out->push_back(w.deleted ? 1 : 0);
    }
  } else if (const auto* a = std::get_if<PropAbort>(&record)) {
    out->push_back(static_cast<char>(kTagAbort));
    PutVarint(out, a->txn_id);
    PutVarint(out, a->seq);
  }
}

Result<PropagationRecord> DecodeRecord(const std::string& data,
                                       std::size_t* offset) {
  if (*offset >= data.size()) {
    return Status::InvalidArgument("wire: truncated tag");
  }
  const auto tag = static_cast<std::uint8_t>(data[*offset]);
  ++(*offset);
  std::uint64_t txn_id = 0, seq = 0;
  if (!GetVarint(data, offset, &txn_id) || !GetVarint(data, offset, &seq)) {
    return Status::InvalidArgument("wire: truncated record header");
  }
  switch (tag) {
    case kTagStart: {
      std::uint64_t ts = 0;
      if (!GetVarint(data, offset, &ts)) {
        return Status::InvalidArgument("wire: truncated start ts");
      }
      return PropagationRecord(PropStart{txn_id, ts, seq});
    }
    case kTagCommit: {
      std::uint64_t ts = 0, filtered = 0, count = 0;
      if (!GetVarint(data, offset, &ts) ||
          !GetVarint(data, offset, &filtered) ||
          !GetVarint(data, offset, &count)) {
        return Status::InvalidArgument("wire: truncated commit header");
      }
      // Each update needs at least 3 bytes (two length prefixes plus the
      // deleted flag), so a count the remaining bytes cannot possibly hold
      // is malformed input — reject it before reserve() turns a 12-byte
      // frame into a multi-GB allocation.
      if (count > (data.size() - *offset) / 3) {
        return Status::InvalidArgument("wire: update count exceeds payload");
      }
      PropCommit commit{txn_id, ts, {}, seq, filtered};
      commit.updates.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        storage::Write w;
        if (!GetString(data, offset, &w.key) ||
            !GetString(data, offset, &w.value) || *offset >= data.size()) {
          return Status::InvalidArgument("wire: truncated update");
        }
        w.deleted = data[*offset] != 0;
        ++(*offset);
        commit.updates.push_back(std::move(w));
      }
      return PropagationRecord(std::move(commit));
    }
    case kTagAbort:
      return PropagationRecord(PropAbort{txn_id, seq});
    default:
      return Status::InvalidArgument("wire: unknown tag");
  }
}

std::string EncodeBatch(const std::vector<PropagationRecord>& records) {
  std::string out;
  for (const auto& r : records) EncodeRecord(r, &out);
  return out;
}

Result<std::vector<PropagationRecord>> DecodeBatch(const std::string& data) {
  std::vector<PropagationRecord> out;
  std::size_t offset = 0;
  while (offset < data.size()) {
    auto record = DecodeRecord(data, &offset);
    if (!record.ok()) return record.status();
    out.push_back(std::move(record).value());
  }
  return out;
}

}  // namespace replication
}  // namespace lazysi
