#include "replication/reliable_channel.h"

#include <string_view>
#include <utility>

#include "common/backoff.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "replication/wire.h"

namespace lazysi {
namespace replication {

namespace {

constexpr char kFrameData = 'D';
constexpr char kFrameAck = 'A';
constexpr char kFrameProbe = 'P';

// Smallest structurally possible frame: type byte + 4-byte CRC trailer.
constexpr std::size_t kMinFrameSize = 5;

/// Validates the CRC-32C trailer; returns the body length (bytes covered by
/// the checksum) or 0 when the frame is malformed or corrupt.
std::size_t CheckedBodySize(const std::string& frame) {
  if (frame.size() < kMinFrameSize) return 0;
  const std::size_t body = frame.size() - 4;
  if (Crc32c(std::string_view(frame).substr(0, body)) !=
      ReadCrc32(frame, body)) {
    return 0;
  }
  return body;
}

}  // namespace

ReliableChannel::ReliableChannel(Propagator* propagator, ByteLink* link,
                                 BlockingQueue<PropagationRecord>* downstream,
                                 Options options)
    : propagator_(propagator), link_(link), downstream_(downstream),
      options_(options) {
  if (options_.ack_interval == 0) options_.ack_interval = 1;
  if (options_.ack_flush_interval <= std::chrono::milliseconds(0)) {
    options_.ack_flush_interval = std::chrono::milliseconds(1);
  }
  if (options_.send_window == 0) options_.send_window = 1;
  if (options_.retransmit_cap < 1) options_.retransmit_cap = 1;
}

ReliableChannel::ReliableChannel(Propagator* propagator, ByteLink* link,
                                 BlockingQueue<PropagationRecord>* downstream)
    : ReliableChannel(propagator, link, downstream, Options()) {}

ReliableChannel::~ReliableChannel() { Stop(); }

void ReliableChannel::Start() { (void)StartInternal(std::nullopt); }

Status ReliableChannel::StartAt(std::size_t from_lsn) {
  return StartInternal(from_lsn);
}

Status ReliableChannel::StartInternal(std::optional<std::size_t> from_lsn) {
  if (started_) return Status::FailedPrecondition("channel already started");
  std::uint64_t base = 0;
  if (from_lsn.has_value()) {
    auto attached =
        propagator_->AttachSinkAt(&inlet_, *from_lsn, options_.filter);
    if (!attached.ok()) return attached.status();
    base = attached.value();
  } else {
    base = propagator_->AttachSink(&inlet_, options_.filter);
  }
  // Connection establishment: both endpoints agree on the first sequence
  // number out of band; everything after this crosses the chaos link.
  next_seq_ = base;
  acked_ = base;
  acked_watermark_.store(base, std::memory_order_relaxed);
  next_expected_ = base;
  stopping_.store(false, std::memory_order_release);
  flush_deadline_set_.store(false, std::memory_order_release);
  started_ = true;
  sender_ = std::thread([this] { SenderLoop(); });
  receiver_ = std::thread([this] { ReceiverLoop(); });
  return Status::OK();
}

void ReliableChannel::Stop() {
  if (!started_) return;
  // No new records; the sender drains what is queued and keeps
  // retransmitting until everything is acked or the flush budget runs out.
  propagator_->DetachSink(&inlet_);
  stopping_.store(true, std::memory_order_release);
  sender_.join();
  link_->Close();
  receiver_.join();
  started_ = false;
}

ReliableChannel::Stats ReliableChannel::stats() const {
  Stats s;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.records_delivered = records_delivered_.load(std::memory_order_relaxed);
  s.retransmit_frames = retransmit_frames_.load(std::memory_order_relaxed);
  s.retransmit_rounds = retransmit_rounds_.load(std::memory_order_relaxed);
  s.crc_rejected = crc_rejected_.load(std::memory_order_relaxed);
  s.duplicates_dropped = duplicates_dropped_.load(std::memory_order_relaxed);
  s.gaps_detected = gaps_detected_.load(std::memory_order_relaxed);
  s.acks_sent = acks_sent_.load(std::memory_order_relaxed);
  s.resyncs = resyncs_.load(std::memory_order_relaxed);
  return s;
}

bool ReliableChannel::FlushDeadlinePassed() {
  if (!stopping_.load(std::memory_order_acquire)) return false;
  const auto now = std::chrono::steady_clock::now();
  if (!flush_deadline_set_.exchange(true, std::memory_order_acq_rel)) {
    flush_deadline_ = now + options_.flush_timeout;
    return false;
  }
  return now >= flush_deadline_;
}

bool ReliableChannel::HandleAckFrame(const std::string& frame) {
  const std::size_t body = CheckedBodySize(frame);
  if (body == 0) {
    crc_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (frame[0] != kFrameAck) return false;
  std::size_t offset = 1;
  std::uint64_t ack = 0;
  if (!GetVarint(frame, &offset, &ack) || offset != body) return false;
  // A cumulative ack ahead of everything we ever sent survived the CRC by
  // fluke; ignore it rather than poison the window.
  if (ack > next_seq_) return false;
  if (ack > acked_) acked_ = ack;
  return true;
}

void ReliableChannel::SenderLoop() {
  ExponentialBackoff backoff(options_.backoff_initial, options_.backoff_max);
  int rounds_without_progress = 0;
  auto retransmit_deadline = std::chrono::steady_clock::time_point::max();

  for (;;) {
    bool progressed = false;

    // 1. Acknowledgements: advance the window, reset the retransmit clock.
    const std::uint64_t acked_before = acked_;
    while (auto ack = link_->TryReceiveAck()) (void)HandleAckFrame(*ack);
    while (!unacked_.empty() && unacked_.front().first < acked_) {
      unacked_.pop_front();
    }
    if (acked_ > acked_before) {
      acked_watermark_.store(acked_, std::memory_order_relaxed);
      backoff.Reset();
      rounds_without_progress = 0;
      retransmit_deadline =
          unacked_.empty() ? std::chrono::steady_clock::time_point::max()
                           : std::chrono::steady_clock::now() +
                                 backoff.current();
      progressed = true;
    }

    // 2. Fresh records, while the send window has room.
    while (unacked_.size() < options_.send_window) {
      auto record = inlet_.TryPop();
      if (!record.has_value()) break;
      std::string frame(1, kFrameData);
      PutVarint(&frame, next_seq_);
      EncodeRecord(*record, &frame);
      AppendCrc32(&frame, Crc32c(frame));
      if (unacked_.empty()) {
        retransmit_deadline =
            std::chrono::steady_clock::now() + backoff.current();
      }
      unacked_.emplace_back(next_seq_, frame);
      ++next_seq_;
      link_->SendData(std::move(frame));
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      progressed = true;
    }

    // 3. A severed connection is beyond retransmission: resync through the
    // propagator's log.
    if (link_->disconnected()) {
      if (!Resync()) break;
      backoff.Reset();
      rounds_without_progress = 0;
      retransmit_deadline = std::chrono::steady_clock::time_point::max();
      continue;
    }

    // 4. Retransmission timer (go-back-N over the whole window).
    if (!unacked_.empty() &&
        std::chrono::steady_clock::now() >= retransmit_deadline) {
      ++rounds_without_progress;
      if (rounds_without_progress > options_.retransmit_cap) {
        // Persistent silence == dead connection.
        link_->Disconnect();
        if (!Resync()) break;
        backoff.Reset();
        rounds_without_progress = 0;
        retransmit_deadline = std::chrono::steady_clock::time_point::max();
        continue;
      }
      for (const auto& [seq, frame] : unacked_) {
        link_->SendData(frame);
        retransmit_frames_.fetch_add(1, std::memory_order_relaxed);
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
      }
      retransmit_rounds_.fetch_add(1, std::memory_order_relaxed);
      retransmit_deadline = std::chrono::steady_clock::now() + backoff.Next();
    }

    // 5. Shutdown: leave only when flushed (or out of flush budget).
    if (stopping_.load(std::memory_order_acquire)) {
      if (unacked_.empty() && inlet_.empty()) break;
      if (FlushDeadlinePassed()) {
        LAZYSI_WARN("reliable channel: flush timeout, "
                    << unacked_.size() << " frames abandoned");
        break;
      }
    }

    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  // Covers the race where a resync re-attached after Stop() detached.
  propagator_->DetachSink(&inlet_);
}

bool ReliableChannel::Resync() {
  // The connection state died with the link: the in-flight window is gone,
  // and whatever the propagator queued for us will be regenerated by the
  // log replay below.
  unacked_.clear();
  propagator_->DetachSink(&inlet_);
  while (inlet_.TryPop().has_value()) {
  }

  ExponentialBackoff backoff(options_.backoff_initial, options_.backoff_max);
  std::this_thread::sleep_for(backoff.Next());
  // A disconnect during shutdown is a crash at shutdown: do not re-attach
  // (Stop() already detached us for good).
  if (stopping_.load(std::memory_order_acquire)) return false;
  link_->Reconnect();

  // Handshake: probe for the receiver's cumulative ack so the replay suffix
  // is minimal. Probes and acks cross the chaos link and can be lost; after
  // retransmit_cap attempts the last ack we ever heard is still a safe
  // (just longer) resync point.
  for (int attempt = 0; attempt < options_.retransmit_cap; ++attempt) {
    if (link_->disconnected()) link_->Reconnect();
    std::string probe(1, kFrameProbe);
    AppendCrc32(&probe, Crc32c(probe));
    link_->SendData(std::move(probe));
    std::this_thread::sleep_for(backoff.Next());
    bool heard = false;
    while (auto ack = link_->TryReceiveAck()) heard |= HandleAckFrame(*ack);
    if (heard) break;
    if (stopping_.load(std::memory_order_acquire)) return false;
  }

  // Reattach from the latest quiesced point at or below the receiver's
  // position: the propagator replays exactly the suffix the secondary
  // missed (Section 3.4's recovery machinery, reused at transport level);
  // global sequence numbers let the receiver drop the sync-point-to-ack
  // overlap as duplicates.
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  const Propagator::SyncPoint sync = propagator_->SyncPointAtOrBefore(acked_);
  auto base = propagator_->AttachSinkAt(&inlet_, sync.lsn, options_.filter);
  if (!base.ok()) {
    // Unreachable for recorded sync points; the origin is always valid.
    LAZYSI_ERROR("reliable channel: resync at lsn " << sync.lsn
                                                    << " failed: "
                                                    << base.status());
    base = propagator_->AttachSinkAt(&inlet_, 0, options_.filter);
    if (!base.ok()) return false;
  }
  next_seq_ = base.value();
  return true;
}

bool ReliableChannel::HandleDataFrame(const std::string& frame,
                                      std::size_t* accepted_since_ack) {
  const std::size_t body = CheckedBodySize(frame);
  if (body == 0) {
    crc_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (frame[0] == kFrameProbe) return true;  // re-ack the current position
  if (frame[0] != kFrameData) return false;
  std::size_t offset = 1;
  std::uint64_t seq = 0;
  if (!GetVarint(frame, &offset, &seq) || offset > body) return false;
  if (seq == next_expected_) {
    // Decode only what we are going to deliver; the wire codec is the
    // arbiter of frame payload well-formedness.
    const std::string payload = frame.substr(offset, body - offset);
    std::size_t payload_offset = 0;
    auto record = DecodeRecord(payload, &payload_offset);
    if (!record.ok() || payload_offset != payload.size()) {
      // Corruption that slipped past the CRC (or a protocol bug): treat as
      // a lost frame and let retransmission try again.
      crc_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    downstream_->Push(std::move(record).value());
    ++next_expected_;
    records_delivered_.fetch_add(1, std::memory_order_relaxed);
    ++*accepted_since_ack;
    return *accepted_since_ack >= options_.ack_interval;
  }
  if (seq < next_expected_) {
    // Duplicate (retransmission overlap or chaos-duplicated frame): re-ack
    // so a sender stuck behind a lost ack advances.
    duplicates_dropped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Gap: an earlier frame was lost. Hold the line (FIFO!) and re-ack the
  // position we actually need; go-back-N retransmission fills the hole.
  gaps_detected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ReliableChannel::SendAckFrame() {
  std::string frame(1, kFrameAck);
  PutVarint(&frame, next_expected_);
  AppendCrc32(&frame, Crc32c(frame));
  link_->SendAck(std::move(frame));
  acks_sent_.fetch_add(1, std::memory_order_relaxed);
}

void ReliableChannel::ReceiverLoop() {
  std::size_t accepted_since_ack = 0;
  for (;;) {
    std::optional<std::string> frame;
    if (accepted_since_ack > 0) {
      // A cumulative ack is pending but below ack_interval: wait boundedly
      // so an idle stream still gets acked. On timeout flush and loop; the
      // blocking receive below then notices a Close()d link.
      frame = link_->ReceiveDataFor(options_.ack_flush_interval);
      if (!frame.has_value()) {
        SendAckFrame();
        accepted_since_ack = 0;
        continue;
      }
    } else {
      frame = link_->ReceiveData();
      if (!frame.has_value()) break;
    }
    bool want_ack = HandleDataFrame(*frame, &accepted_since_ack);
    // Drain the burst before acking: one cumulative ack per wake-up.
    while (auto more = link_->TryReceiveData()) {
      want_ack |= HandleDataFrame(*more, &accepted_since_ack);
    }
    if (want_ack) {
      SendAckFrame();
      accepted_since_ack = 0;
    }
  }
}

}  // namespace replication
}  // namespace lazysi
