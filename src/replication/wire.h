#ifndef LAZYSI_REPLICATION_WIRE_H_
#define LAZYSI_REPLICATION_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "replication/messages.h"

namespace lazysi {
namespace replication {

/// Wire codec for propagation records. The in-process system hands records
/// between threads directly; a networked deployment ships them through this
/// encoding instead (length-free, self-delimiting, same varint scheme as the
/// logical log). The paper assumes reliable FIFO delivery ("propagated
/// messages are not lost or reordered", Section 3.2), i.e. one TCP stream
/// per secondary carries EncodeRecord outputs back-to-back.

/// Appends `v` to `out` as a base-128 varint (same scheme as the logical
/// log). Exposed for the reliable channel's frame headers.
void PutVarint(std::string* out, std::uint64_t v);

/// Decodes a varint at *offset, advancing it. Rejects encodings longer than
/// 10 bytes and encodings whose high bits overflow 64 bits, so every value
/// has exactly one accepted encoding.
bool GetVarint(const std::string& data, std::size_t* offset,
               std::uint64_t* out);

/// Appends the encoding of `record` to `out`.
void EncodeRecord(const PropagationRecord& record, std::string* out);

/// Decodes one record from `data` at *offset, advancing it.
Result<PropagationRecord> DecodeRecord(const std::string& data,
                                       std::size_t* offset);

/// Encodes a batch (one propagation cycle) of records.
std::string EncodeBatch(const std::vector<PropagationRecord>& records);

/// Decodes a full batch; fails on any trailing garbage.
Result<std::vector<PropagationRecord>> DecodeBatch(const std::string& data);

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_WIRE_H_
