#ifndef LAZYSI_REPLICATION_FRAMED_SOCKET_H_
#define LAZYSI_REPLICATION_FRAMED_SOCKET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "replication/tcp_link.h"

namespace lazysi {
namespace replication {

/// Plain-socket plumbing shared by every TCP-speaking component (TcpLink,
/// the cross-process replication stream, the client-API server). IPv4 only —
/// the deployment model is loopback or a trusted LAN, per the paper's
/// middleware assumption.

/// Binds + listens on host:port (port 0 = ephemeral); fills *actual_port.
/// Returns the listening fd, or -1.
int ListenOn(const std::string& host, std::uint16_t port,
             std::uint16_t* actual_port);

/// Blocking connect; returns the connected fd (TCP_NODELAY set), or -1.
int DialTcp(const std::string& host, std::uint16_t port);

/// accept() riding out EINTR; returns the connected fd (TCP_NODELAY set),
/// or -1 when the listener is closed.
int AcceptOn(int listen_fd);

/// Writes the whole buffer with MSG_NOSIGNAL, riding out partial writes and
/// EINTR; false on a dead peer (EPIPE/ECONNRESET).
bool SendAll(int fd, std::string_view bytes);

/// One connected socket carrying length-prefixed frames (AppendTcpFrame /
/// TcpFramer) in both directions. Owns the fd: closes it on destruction.
/// Send and Recv are each single-caller (one writer thread, one reader
/// thread); ShutdownNow may be called from anywhere to wake the reader.
class FramedSocket {
 public:
  explicit FramedSocket(int fd) : fd_(fd) {}
  ~FramedSocket() { Close(); }

  FramedSocket(const FramedSocket&) = delete;
  FramedSocket& operator=(const FramedSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends one frame; false on a dead peer.
  bool Send(std::string_view payload);

  /// Blocks for the next complete frame; nullopt on EOF, error, or a
  /// poisoned frame stream (oversized length prefix).
  std::optional<std::string> Recv();

  /// Wakes a blocked Recv/Send with EOF/EPIPE without closing the fd.
  void ShutdownNow();

  void Close();

 private:
  int fd_;
  TcpFramer framer_;
  char buf_[64 * 1024];
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_FRAMED_SOCKET_H_
