#ifndef LAZYSI_REPLICATION_FRAMED_SOCKET_H_
#define LAZYSI_REPLICATION_FRAMED_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "replication/tcp_link.h"

namespace lazysi {
namespace replication {

/// Plain-socket plumbing shared by every TCP-speaking component (TcpLink,
/// the cross-process replication stream, the client-API server). IPv4 only —
/// the deployment model is loopback or a trusted LAN, per the paper's
/// middleware assumption.

/// Binds + listens on host:port (port 0 = ephemeral); fills *actual_port.
/// Returns the listening fd, or -1.
int ListenOn(const std::string& host, std::uint16_t port,
             std::uint16_t* actual_port);

/// Blocking connect; returns the connected fd (TCP_NODELAY set), or -1.
int DialTcp(const std::string& host, std::uint16_t port);

/// Connect with a deadline: non-blocking connect + poll. Returns the
/// connected fd (blocking mode restored, TCP_NODELAY set), or -1 on
/// refusal, timeout, or bad address. The client-protocol fix for "a hung
/// peer wedges the client forever".
int DialTcp(const std::string& host, std::uint16_t port,
            std::chrono::milliseconds timeout);

/// Starts a non-blocking connect for reactor use: returns the fd with the
/// connect in flight (*in_progress = true; wait for writability, then
/// FinishDial) or already connected (*in_progress = false), or -1. The fd
/// stays non-blocking.
int StartDialTcp(const std::string& host, std::uint16_t port,
                 bool* in_progress);

/// Resolves an in-flight non-blocking connect once the fd polls writable:
/// true and sets TCP_NODELAY on success, false on connection failure.
bool FinishDial(int fd);

/// Sets O_NONBLOCK; returns false on fcntl failure.
bool SetNonBlocking(int fd);

/// Sets TCP_NODELAY (best effort).
void SetTcpNoDelay(int fd);

/// accept() riding out EINTR; returns the connected fd (TCP_NODELAY set),
/// or -1 when the listener is closed.
int AcceptOn(int listen_fd);

/// Writes the whole buffer with MSG_NOSIGNAL, riding out partial writes and
/// EINTR; false on a dead peer (EPIPE/ECONNRESET).
bool SendAll(int fd, std::string_view bytes);

/// One connected socket carrying length-prefixed frames (AppendTcpFrame /
/// TcpFramer) in both directions. Owns the fd: closes it on destruction.
/// Send and Recv are each single-caller (one writer thread, one reader
/// thread); ShutdownNow may be called from anywhere to wake the reader.
class FramedSocket {
 public:
  explicit FramedSocket(int fd) : fd_(fd) {}
  ~FramedSocket() { Close(); }

  FramedSocket(const FramedSocket&) = delete;
  FramedSocket& operator=(const FramedSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends one frame; false on a dead peer.
  bool Send(std::string_view payload);

  /// Blocks for the next complete frame; nullopt on EOF, error, a
  /// poisoned frame stream (oversized length prefix), or — when a recv
  /// timeout is set — deadline expiry (check timed_out() to distinguish).
  std::optional<std::string> Recv();

  /// Per-Recv deadline; zero (the default) blocks forever. Applies to the
  /// whole frame: a peer trickling bytes still has to produce a complete
  /// frame within the window.
  void set_recv_timeout(std::chrono::milliseconds timeout) {
    recv_timeout_ = timeout;
  }

  /// True when the last Recv returned nullopt because the deadline
  /// expired rather than because the peer vanished.
  bool timed_out() const { return timed_out_; }

  /// Wakes a blocked Recv/Send with EOF/EPIPE without closing the fd.
  void ShutdownNow();

  void Close();

 private:
  int fd_;
  TcpFramer framer_;
  std::chrono::milliseconds recv_timeout_{0};
  bool timed_out_ = false;
  char buf_[64 * 1024];
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_FRAMED_SOCKET_H_
