#ifndef LAZYSI_REPLICATION_RELIABLE_CHANNEL_H_
#define LAZYSI_REPLICATION_RELIABLE_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <thread>

#include "common/queue.h"
#include "common/status.h"
#include "replication/byte_link.h"
#include "replication/messages.h"
#include "replication/propagator.h"

namespace lazysi {
namespace replication {

/// Restores Section 3.2's reliable-FIFO contract ("propagated messages are
/// not lost or reordered") on top of a faulty byte link, so Lemmas 3.1-3.3
/// keep holding when the network does not cooperate:
///
///   - every propagation record is encoded (replication/wire) into a frame
///     carrying a per-record sequence number and a CRC-32C trailer;
///   - the receiver delivers a record downstream only when its sequence
///     number is exactly the next expected one — duplicates are dropped,
///     gaps wait for retransmission — and acknowledges cumulatively;
///   - the sender keeps unacknowledged frames in a window and retransmits
///     the whole window (go-back-N) on an exponential-backoff timer;
///   - a retransmission cap turns persistent silence into a disconnect, and
///     a disconnect is resynced through the propagator itself: the sender
///     reattaches with Propagator::AttachSinkAt at the latest quiesced
///     SyncPoint at or below the receiver's cumulative ack, so the log
///     replays exactly the suffix the secondary missed and global sequence
///     numbers let the receiver discard the overlap.
///
/// Both endpoints live in this object (the link between them is the
/// network — ChaosLink's in-process queues or TcpLink's real sockets); they
/// communicate only through link frames, never through shared record state,
/// so the frame protocol is load-bearing.
class ReliableChannel {
 public:
  struct Options {
    /// Cumulative ack after this many newly accepted records (acks are also
    /// sent immediately on gaps, duplicates, and probes, and a pending
    /// batched ack is flushed after `ack_flush_interval` of idleness).
    std::size_t ack_interval = 32;
    /// How long the receiver holds a pending cumulative ack waiting for more
    /// data before flushing it, so a stream that goes idle below
    /// `ack_interval` still acks promptly.
    std::chrono::milliseconds ack_flush_interval{1};
    /// Max in-flight (sent, unacked) frames before the sender stops pulling
    /// new records from the propagator.
    std::size_t send_window = 256;
    /// Retransmission timer bounds (exponential backoff between rounds).
    std::chrono::milliseconds backoff_initial{2};
    std::chrono::milliseconds backoff_max{100};
    /// Consecutive no-progress retransmission rounds before the link is
    /// declared disconnected and resync kicks in.
    int retransmit_cap = 8;
    /// How long Stop() keeps retransmitting to flush in-flight records.
    std::chrono::milliseconds flush_timeout{5000};
    /// Coverage filter forwarded to every propagator attach (initial start,
    /// recovery StartAt, and disconnect resync), so a partially replicated
    /// secondary behind this channel never receives uncovered updates —
    /// not even in a resync replay.
    SinkFilter filter;
  };

  struct Stats {
    std::uint64_t frames_sent = 0;        // data frames, incl. retransmits
    std::uint64_t records_delivered = 0;  // pushed downstream, exactly once
    std::uint64_t retransmit_frames = 0;
    std::uint64_t retransmit_rounds = 0;
    std::uint64_t crc_rejected = 0;   // corrupt frames caught by checksum
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t gaps_detected = 0;  // out-of-order arrivals held back
    std::uint64_t acks_sent = 0;
    std::uint64_t resyncs = 0;        // AttachSinkAt reconnections
  };

  /// The channel feeds `downstream` (a secondary's update queue) with the
  /// records the propagator broadcasts, shipping them through `link`.
  ReliableChannel(Propagator* propagator, ByteLink* link,
                  BlockingQueue<PropagationRecord>* downstream,
                  Options options);
  ReliableChannel(Propagator* propagator, ByteLink* link,
                  BlockingQueue<PropagationRecord>* downstream);
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Attaches to the propagator at its current position and starts both
  /// endpoints.
  void Start();

  /// Attaches like a recovering secondary: records from `from_lsn` (a
  /// quiesced checkpoint LSN) are replayed first (Section 3.4).
  Status StartAt(std::size_t from_lsn);

  /// Detaches from the propagator, flushes in-flight records (bounded by
  /// Options::flush_timeout) and stops. Reconnection-with-resync is internal
  /// and automatic while running; after Stop() the channel can be started
  /// again once the link has been Reopen()ed.
  void Stop();

  Stats stats() const;

  std::uint64_t delivered() const {
    return records_delivered_.load(std::memory_order_relaxed);
  }

  /// Receiver's cumulative ack as last heard by the sender (a global record
  /// seq). Everything below it has been delivered downstream; a resync can
  /// never need log records below SyncPointAtOrBefore(acked_floor()), which
  /// makes this the channel's contribution to the log-truncation floor.
  std::uint64_t acked_floor() const {
    return acked_watermark_.load(std::memory_order_relaxed);
  }

 private:
  Status StartInternal(std::optional<std::size_t> from_lsn);
  void SenderLoop();
  void ReceiverLoop();
  /// Re-establishes the connection after a disconnect: probe handshake for
  /// the receiver's cumulative ack, then AttachSinkAt at a quiesced point at
  /// or below it. Returns false when stopping and out of flush budget.
  bool Resync();
  /// Applies one ack frame to the sender window; true if acked_ advanced.
  bool HandleAckFrame(const std::string& frame);
  /// Handles one incoming data/probe frame; true if an ack should be sent.
  bool HandleDataFrame(const std::string& frame,
                       std::size_t* accepted_since_ack);
  void SendAckFrame();
  bool FlushDeadlinePassed();

  Propagator* propagator_;
  ByteLink* link_;
  BlockingQueue<PropagationRecord>* downstream_;
  Options options_;

  /// Sink attached to the propagator; consumed by the sender thread.
  BlockingQueue<PropagationRecord> inlet_;

  // --- sender endpoint state (sender thread only) ---
  std::uint64_t next_seq_ = 0;  // global seq of the next fresh record
  std::uint64_t acked_ = 0;     // receiver's cumulative ack, as last heard
  std::deque<std::pair<std::uint64_t, std::string>> unacked_;
  /// Mirror of acked_ readable off-thread (acked_floor()).
  std::atomic<std::uint64_t> acked_watermark_{0};

  // --- receiver endpoint state (receiver thread only) ---
  std::uint64_t next_expected_ = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> flush_deadline_set_{false};
  std::chrono::steady_clock::time_point flush_deadline_;

  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> records_delivered_{0};
  std::atomic<std::uint64_t> retransmit_frames_{0};
  std::atomic<std::uint64_t> retransmit_rounds_{0};
  std::atomic<std::uint64_t> crc_rejected_{0};
  std::atomic<std::uint64_t> duplicates_dropped_{0};
  std::atomic<std::uint64_t> gaps_detected_{0};
  std::atomic<std::uint64_t> acks_sent_{0};
  std::atomic<std::uint64_t> resyncs_{0};

  std::thread sender_;
  std::thread receiver_;
  bool started_ = false;
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_RELIABLE_CHANNEL_H_
