#ifndef LAZYSI_REPLICATION_PENDING_QUEUE_H_
#define LAZYSI_REPLICATION_PENDING_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/timestamp.h"

namespace lazysi {
namespace replication {

/// The FIFO pending queue through which the refresher and the applicator
/// threads coordinate (Algorithms 3.2 and 3.3):
///
///  - the refresher appends commit_p(T) when it dequeues T's commit record,
///    *before* handing T's updates to an applicator;
///  - the refresher blocks processing of any later start record until the
///    queue is empty (so a new refresh transaction sees every earlier refresh
///    commit — relationship 2 of Section 3.1);
///  - an applicator blocks until its own commit timestamp is at the head
///    before committing, and removes it after committing (so refresh commits
///    happen in primary commit order — relationship 3).
class PendingQueue {
 public:
  /// Appends a commit timestamp at the tail. Refresher thread only.
  void Append(Timestamp commit_ts) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      entries_.push_back(commit_ts);
    }
    cv_.notify_all();
  }

  /// Blocks until the queue is empty or closed. Returns false when closed
  /// before becoming empty.
  bool WaitEmpty() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entries_.empty() || closed_; });
    return entries_.empty();
  }

  /// Blocks until `commit_ts` is at the head or the queue is closed.
  /// Returns false when closed first.
  bool WaitHead(Timestamp commit_ts) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return closed_ || (!entries_.empty() && entries_.front() == commit_ts);
    });
    return !closed_ && !entries_.empty() && entries_.front() == commit_ts;
  }

  /// Removes the head entry, which must equal `commit_ts` (the caller just
  /// committed that refresh transaction).
  void PopHead(Timestamp commit_ts) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!entries_.empty() && entries_.front() == commit_ts) {
        entries_.pop_front();
      }
    }
    cv_.notify_all();
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  bool Empty() const { return Size() == 0; }

  /// Wakes every blocked thread with a "closed" verdict; used at shutdown.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reopens after a shutdown and discards leftover entries. The entries
  /// that survive a Close belong to refresh transactions the applicators
  /// aborted during shutdown; a restarted pipeline must not wait on them
  /// (they would block the refresher's WaitEmpty forever).
  void Reopen() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
    entries_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Timestamp> entries_;
  bool closed_ = false;
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_PENDING_QUEUE_H_
