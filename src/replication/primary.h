#ifndef LAZYSI_REPLICATION_PRIMARY_H_
#define LAZYSI_REPLICATION_PRIMARY_H_

#include <utility>

#include "common/status.h"
#include "engine/database.h"
#include "replication/propagator.h"
#include "replication/secondary.h"

namespace lazysi {
namespace replication {

/// The primary site of the lazy master architecture (Figure 1): the primary
/// copy of the database plus the update propagator tailing its logical log.
/// All update transactions execute here; secondaries attach their update
/// queues and receive the start/commit schedule lazily.
class Primary {
 public:
  explicit Primary(engine::Database* db,
                   PropagatorOptions options = PropagatorOptions())
      : db_(db), propagator_(db->log(), options) {}

  /// Attaches a secondary that is already consistent with the propagator's
  /// current position (e.g. it was attached before any update ran). An
  /// active `filter` restricts the stream to the secondary's partitions.
  void AttachSecondary(Secondary* secondary, SinkFilter filter = SinkFilter()) {
    propagator_.AttachSink(secondary->update_queue(), std::move(filter));
  }

  /// Attaches a recovering secondary that installed a checkpoint taken at
  /// `checkpoint_lsn`; missed records are replayed first (Section 3.4).
  Status AttachSecondaryAt(Secondary* secondary, std::size_t checkpoint_lsn,
                           SinkFilter filter = SinkFilter()) {
    return propagator_
        .AttachSinkAt(secondary->update_queue(), checkpoint_lsn,
                      std::move(filter))
        .status();
  }

  void Start() { propagator_.Start(); }
  void Stop() { propagator_.Stop(); }

  engine::Database* db() { return db_; }
  Propagator* propagator() { return &propagator_; }

  /// Executes a "dummy transaction" at the primary and returns the latest
  /// committed primary timestamp; Section 4 uses this to re-seed
  /// seq(DBsec) after a secondary failure.
  Timestamp DummyTransactionSeq() {
    auto t = db_->Begin(/*read_only=*/true);
    const Timestamp seq = db_->LatestCommitTs();
    (void)t->Commit();
    return seq;
  }

 private:
  engine::Database* db_;
  Propagator propagator_;
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_PRIMARY_H_
