#ifndef LAZYSI_REPLICATION_SECONDARY_H_
#define LAZYSI_REPLICATION_SECONDARY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/queue.h"
#include "common/timestamp.h"
#include "engine/database.h"
#include "replication/messages.h"
#include "replication/pending_queue.h"

namespace lazysi {
namespace replication {

struct SecondaryOptions {
  /// Size of the fixed applicator thread pool (Section 3.3 suggests a fixed
  /// pool rather than a fork per transaction).
  std::size_t applicator_threads = 4;
};

/// A secondary site's refresh machinery: the FIFO update queue (kept outside
/// the database to avoid FCW aborts on queue pages, Section 3.4), the
/// refresher (Algorithm 3.2), the applicator pool (Algorithm 3.3), the
/// pending queue, and the seq(DBsec) sequence number of Section 4.
///
/// The local database must guarantee strong SI (engine::Database does); the
/// combination then installs refresh transactions so that their start and
/// commit order matches the primary's (relationships 1–3 of Section 3.1),
/// which is what Theorem 3.1's completeness proof requires.
class Secondary {
 public:
  explicit Secondary(engine::Database* db,
                     SecondaryOptions options = SecondaryOptions());
  ~Secondary();

  Secondary(const Secondary&) = delete;
  Secondary& operator=(const Secondary&) = delete;

  /// The update queue to attach to the primary's propagator.
  BlockingQueue<PropagationRecord>* update_queue() { return &update_queue_; }

  void Start();
  /// Stops the pipeline. In-flight refresh transactions are aborted; call
  /// WaitForSeq first if the test/workload needs everything applied.
  void Stop();

  /// seq(DBsec): the primary commit timestamp of the latest refresh
  /// transaction committed here (Section 4).
  Timestamp applied_seq() const {
    return applied_seq_.load(std::memory_order_acquire);
  }

  /// Blocks until seq(DBsec) >= seq or timeout. This is the blocking rule of
  /// ALG-STRONG-SESSION-SI: a read-only transaction with session sequence
  /// number seq(c) may not start while seq(c) > seq(DBsec).
  bool WaitForSeq(Timestamp seq,
                  std::chrono::milliseconds timeout =
                      std::chrono::milliseconds(10000)) const;

  /// Re-seeds seq(DBsec) after recovery: the checkpoint install corresponds
  /// to the primary state `seq` (Section 4 does this with a dummy primary
  /// transaction after failure).
  void InitializeSeq(Timestamp seq, Timestamp local_install_ts);

  /// Maps a local refresh-commit timestamp to the primary commit timestamp
  /// it installed (kInvalidTimestamp if unknown). History recording uses
  /// this to express secondary reads in primary-state coordinates.
  Timestamp TranslateLocalToPrimary(Timestamp local_ts) const;

  engine::Database* db() { return db_; }

  std::uint64_t refreshed_count() const {
    return refreshed_count_.load(std::memory_order_relaxed);
  }
  std::size_t update_queue_depth() const { return update_queue_.size(); }

 private:
  /// Upper bound on records the refresher drains from the update queue per
  /// lock round-trip; bounds the latency of a Stop() racing a large burst.
  static constexpr std::size_t kRefresherBatchSize = 256;

  struct ApplyTask {
    std::unique_ptr<txn::Transaction> txn;
    std::vector<storage::Write> updates;
    Timestamp commit_ts = kInvalidTimestamp;  // primary commit_p(T)
  };

  void RefresherLoop();
  void ApplicatorLoop();
  void AdvanceSeq(Timestamp primary_commit_ts);

  engine::Database* db_;
  SecondaryOptions options_;

  BlockingQueue<PropagationRecord> update_queue_;
  PendingQueue pending_queue_;
  BlockingQueue<ApplyTask> tasks_;

  /// Refresh transactions begun on start records, keyed by primary TxnId.
  /// Touched only by the refresher thread.
  std::map<TxnId, std::unique_ptr<txn::Transaction>> refresh_txns_;

  std::atomic<Timestamp> applied_seq_{0};
  mutable std::mutex seq_mu_;
  mutable std::condition_variable seq_cv_;

  mutable std::mutex translate_mu_;
  std::unordered_map<Timestamp, Timestamp> local_to_primary_;
  /// Staged translations keyed by local TxnId, published by the commit hook.
  std::unordered_map<TxnId, Timestamp> pending_translation_;

  std::atomic<std::uint64_t> refreshed_count_{0};

  std::thread refresher_;
  std::vector<std::thread> applicators_;
  bool started_ = false;
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_SECONDARY_H_
