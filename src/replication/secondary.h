#ifndef LAZYSI_REPLICATION_SECONDARY_H_
#define LAZYSI_REPLICATION_SECONDARY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/queue.h"
#include "common/result.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "engine/database.h"
#include "replication/messages.h"
#include "replication/pending_queue.h"

namespace lazysi {
namespace replication {

struct SecondaryOptions {
  /// Size of the fixed applicator thread pool (Section 3.3 suggests a fixed
  /// pool rather than a fork per transaction).
  std::size_t applicator_threads = 4;
  /// Direct-apply refresh engine (the default): the refresher allocates
  /// local commit timestamps up front in primary-commit order, applicators
  /// install write sets straight into the versioned store, and visibility is
  /// published through the commit pipeline's watermark — no refresh
  /// transaction ever passes through Begin/Put/Commit FCW machinery (whose
  /// validation is provably a no-op for refresh: conflicting primary
  /// transactions were never concurrent after FCW at the primary).
  /// When false, the legacy transactional refresh path of Algorithms 3.2/3.3
  /// runs instead; it is kept alive for differential testing.
  bool direct_apply = true;
  /// Direct-apply only: upper bound on the run of consecutive refresh
  /// commits an applicator group-applies in a single store pass.
  std::size_t group_apply_limit = 32;
  /// Direct-apply only: number of decode-pool workers in the parallel replay
  /// pipeline. Greater than zero (the default) selects the three-stage
  /// pipeline — decode pool, ordered timestamp allocation, key-disjoint
  /// concurrent group-apply. Zero selects the serial direct-apply path (one
  /// refresher thread decodes and allocates inline), kept alive for
  /// differential testing against the pipeline.
  std::size_t decode_threads = 2;
};

/// A secondary site's refresh machinery: the FIFO update queue (kept outside
/// the database to avoid FCW aborts on queue pages, Section 3.4), the
/// refresher (Algorithm 3.2), the applicator pool (Algorithm 3.3), and the
/// seq(DBsec) sequence number of Section 4.
///
/// Two interchangeable refresh engines implement the algorithms:
///
///  - The **direct-apply engine** (default). Each propagated commit record
///    becomes a pre-allocated local commit timestamp
///    (TxnManager::BeginExternalCommit, called in primary-commit order, so
///    local commit order == primary commit order by construction — Lemma
///    3.3); applicator threads install the write sets concurrently with
///    VersionedStore::ApplyBatch, group-applying runs of consecutive
///    commits in one store pass; and the commit pipeline's visibility
///    watermark publishes each refresh commit only once the whole prefix
///    below it has installed, which is what keeps snapshots torn-free
///    without ever draining the pipeline. Start records never block: the
///    refresh transaction's snapshot is *defined* by its position in the
///    emitted log (every previously emitted commit, exactly the set a
///    BeginAtSnapshot at the current watermark target would pin), so
///    PropStart only emits the local start record and moves on.
///
///    With decode_threads > 0 (the default) the direct engine runs as a
///    three-stage **parallel replay pipeline**:
///
///      1. An ingest thread tags each arriving record with a gapless local
///         sequence number and fans it to a pool of decode workers, which do
///         the CPU work off the ordered path: write-set construction and
///         shard-footprint extraction. Decoded records re-sequence through a
///         bounded reorder buffer.
///      2. A sequencer thread consumes the reordered stream and does nothing
///         but timestamp allocation, batching consecutive commits through
///         TxnManager::BeginExternalCommitBatch — one clock-mutex hold per
///         batch instead of per commit. This is the tiny ordered section;
///         everything before and after it is concurrent.
///      3. Applicators claim *key-disjoint* runs of allocated commits (64-bit
///         shard-footprint bitmaps; a run is claimable only while its
///         footprint is disjoint from every in-flight run's) and install
///         them concurrently via ApplyBatch. Disjointness means same-key
///         installs always happen in increasing timestamp order, and the
///         watermark FIFO still only advances seq(DBsec) over fully
///         installed prefixes.
///
///    decode_threads = 0 preserves the serial single-refresher direct path
///    for differential testing.
///  - The **legacy transactional engine** (direct_apply = false): refresh
///    transactions run through the full local concurrency control; the
///    refresher blocks each start on PendingQueue::WaitEmpty and applicators
///    serialize commits through PendingQueue::WaitHead.
///
/// Either way the local database guarantees strong SI (engine::Database
/// does) and refresh start/commit records are emitted in primary log order,
/// so relationships 1-3 of Section 3.1 hold and Theorem 3.1's completeness
/// proof applies.
class Secondary {
 public:
  explicit Secondary(engine::Database* db,
                     SecondaryOptions options = SecondaryOptions());
  ~Secondary();

  Secondary(const Secondary&) = delete;
  Secondary& operator=(const Secondary&) = delete;

  /// The update queue to attach to the primary's propagator.
  BlockingQueue<PropagationRecord>* update_queue() { return &update_queue_; }

  void Start();
  /// Stops the pipeline. Legacy engine: in-flight refresh transactions are
  /// aborted. Direct-apply engine: commits whose timestamps were already
  /// allocated are installed before the applicators exit (their commit
  /// records are in the log, so abandoning them would wedge the visibility
  /// watermark); records still in the update queue are dropped either way.
  /// Call WaitForSeq first if the test/workload needs everything applied.
  void Stop();

  /// seq(DBsec): the primary commit timestamp of the latest refresh
  /// transaction committed here (Section 4).
  Timestamp applied_seq() const {
    return applied_seq_.load(std::memory_order_acquire);
  }

  /// Blocks until seq(DBsec) >= seq or timeout. This is the blocking rule of
  /// ALG-STRONG-SESSION-SI: a read-only transaction with session sequence
  /// number seq(c) may not start while seq(c) > seq(DBsec).
  bool WaitForSeq(Timestamp seq,
                  std::chrono::milliseconds timeout =
                      std::chrono::milliseconds(10000)) const;

  /// Re-seeds seq(DBsec) after recovery: the checkpoint install corresponds
  /// to the primary state `seq` (Section 4 does this with a dummy primary
  /// transaction after failure).
  void InitializeSeq(Timestamp seq, Timestamp local_install_ts);

  /// Maps a local refresh-commit timestamp to the primary commit timestamp
  /// it installed (kInvalidTimestamp if unknown). History recording uses
  /// this to express secondary reads in primary-state coordinates.
  Timestamp TranslateLocalToPrimary(Timestamp local_ts) const;

  /// Drops local->primary translations of refresh commits whose *primary*
  /// commit timestamp is below `primary_horizon`, returning the number of
  /// entries erased. Without pruning the table grows by one entry per
  /// refresh commit forever. A sound horizon is one no future reader can
  /// need: the system layer uses the minimum applied_seq across live
  /// secondaries, below which every site already serves newer state, so
  /// session floors derived from pruned entries would be vacuous anyway.
  /// Reads of versions older than the horizon afterwards translate to
  /// kInvalidTimestamp (history recording in primary coordinates becomes
  /// approximate below the horizon; keep history-checked workloads above
  /// it by pruning only at quiesced points).
  std::size_t PruneTranslations(Timestamp primary_horizon);

  /// Current size of the local->primary translation table (monitoring and
  /// the pruning regression test).
  std::size_t translation_count() const;

  /// Largest primary commit timestamp whose refresh commit is contained in
  /// the local snapshot `local_snapshot_ts` — the exact primary-state prefix
  /// a local read-only transaction at that snapshot observes. 0 when the
  /// snapshot predates every refresh commit. Partition-spanning reads carry
  /// this as their SCAR-style snapshot timestamp: remote replicas serve the
  /// same primary prefix instead of "whatever is freshest", preserving read
  /// atomicity across partitions.
  Timestamp PrimaryPrefixAtLocal(Timestamp local_snapshot_ts) const;

  /// One observed value from a coverage-routed remote read, in primary-state
  /// coordinates.
  struct RemoteRead {
    bool found = false;
    std::string value;
    Timestamp version_primary_ts = kInvalidTimestamp;
  };
  struct RemoteScanItem {
    std::string key;
    std::string value;
    Timestamp version_primary_ts = kInvalidTimestamp;
  };

  /// Serves a key at the primary-prefix snapshot `primary_snapshot` on
  /// behalf of a reader homed on another secondary (SCAR-style partition
  /// read). Fails Unavailable when this replica has not applied the snapshot
  /// prefix yet (the caller treats that as a stale-partition rejection and
  /// tries another replica), and FailedPrecondition when the snapshot fell
  /// below the translation-prune horizon (the caller retries with a fresher
  /// snapshot). The read pins its local snapshot via BeginAtSnapshot, so it
  /// is safe against concurrent version pruning.
  Result<RemoteRead> ReadAtPrimarySnapshot(const std::string& key,
                                           Timestamp primary_snapshot);

  /// Range-scan counterpart of ReadAtPrimarySnapshot; returns the visible
  /// [begin, end) keys with their values and primary version timestamps.
  Result<std::vector<RemoteScanItem>> ScanAtPrimarySnapshot(
      const std::string& begin, const std::string& end,
      Timestamp primary_snapshot);

  engine::Database* db() { return db_; }

  std::uint64_t refreshed_count() const {
    return refreshed_count_.load(std::memory_order_relaxed);
  }
  std::size_t update_queue_depth() const { return update_queue_.size(); }

  bool direct_apply() const { return options_.direct_apply; }

  /// Freshness-aware router instrumentation (Section 6's read routing,
  /// generalized): read-only transactions routed here because this site's
  /// seq(DBsec) already covered the session's seq(c) (no blocking needed)
  /// vs. reads sent here as the freshest-available fallback, which must
  /// block until seq(DBsec) catches up.
  std::uint64_t ro_routed_fresh() const {
    return ro_routed_fresh_.load(std::memory_order_relaxed);
  }
  std::uint64_t ro_blocked_on_freshness() const {
    return ro_blocked_on_freshness_.load(std::memory_order_relaxed);
  }
  /// Read-only transactions currently open at this site — the raw input to
  /// the router's load signal.
  std::uint64_t active_reads() const {
    return active_reads_.load(std::memory_order_relaxed);
  }

  /// Folds the current active_reads() sample into an exponentially weighted
  /// moving average (alpha = 1/8) and returns the updated estimate in
  /// fixed-point (x1024) units. The router samples this instead of the raw
  /// gauge: the EWMA gives routing hysteresis, so one transient burst on the
  /// least-loaded fresh site no longer flips every subsequent read to
  /// another replica and back (herd oscillation).
  std::uint64_t SampleLoadEstimate();

  /// Last published EWMA load estimate, fixed-point x1024 (monitoring/tests).
  std::uint64_t load_estimate() const {
    return load_ewma_.load(std::memory_order_relaxed);
  }

  /// Number of gaps observed in the propagator-stamped record sequence
  /// (diagnostic: counts dropped/duplicated records at stream joins, e.g.
  /// restarts with a closed update queue).
  std::uint64_t stream_discontinuities() const {
    return stream_discontinuities_.load(std::memory_order_relaxed);
  }

  /// Partial replication accounting, tallied off incoming records before the
  /// refresh engines touch them: updates filtered out upstream for this sink
  /// (sum of PropCommit::filtered), updates actually received, and their
  /// payload bytes (keys + values). filtered / (filtered + received) is the
  /// bandwidth saved by partitioning.
  std::uint64_t records_filtered() const {
    return records_filtered_.load(std::memory_order_relaxed);
  }
  std::uint64_t updates_received() const {
    return updates_received_.load(std::memory_order_relaxed);
  }
  std::uint64_t update_bytes_received() const {
    return update_bytes_received_.load(std::memory_order_relaxed);
  }
  /// Coverage-routed reads this replica served for readers homed elsewhere.
  std::uint64_t remote_reads_served() const {
    return remote_reads_served_.load(std::memory_order_relaxed);
  }

  void CountRoutedFresh() {
    ro_routed_fresh_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountBlockedOnFreshness() {
    ro_blocked_on_freshness_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnReadStart() { active_reads_.fetch_add(1, std::memory_order_relaxed); }
  void OnReadFinish() {
    active_reads_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Direct-apply instrumentation: number of store passes, total commits
  /// they covered (avg group size = commits / passes), and the largest
  /// single group. All zero under the legacy engine.
  std::uint64_t group_applies() const {
    return group_applies_.load(std::memory_order_relaxed);
  }
  std::uint64_t group_applied_commits() const {
    return group_applied_commits_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_group_apply() const {
    return max_group_apply_.load(std::memory_order_relaxed);
  }

 private:
  /// Upper bound on records the refresher drains from the update queue per
  /// lock round-trip; bounds the latency of a Stop() racing a large burst.
  static constexpr std::size_t kRefresherBatchSize = 256;

  /// Upper bound on commits the sequencer pushes through one
  /// BeginExternalCommitBatch call (one clock-mutex hold). The batch is also
  /// flushed whenever the reordered stream interleaves a start or abort, so
  /// local log order always mirrors primary log order.
  static constexpr std::size_t kSequencerBatch = 64;

  /// Legacy engine task: a begun refresh transaction plus its updates.
  struct ApplyTask {
    std::unique_ptr<txn::Transaction> txn;
    std::vector<storage::Write> updates;
    Timestamp commit_ts = kInvalidTimestamp;  // primary commit_p(T)
  };

  /// Direct-apply task: a write set whose commit timestamp is already
  /// allocated and whose commit record is already in the local log — it
  /// *must* be installed. The write set is heap-allocated because the
  /// TxnManager's installing list holds a pointer to it until
  /// FinishExternalCommit.
  struct DirectTask {
    std::unique_ptr<storage::WriteSet> writes;
    Timestamp local_commit_ts = kInvalidTimestamp;
    Timestamp primary_commit_ts = kInvalidTimestamp;
    /// Shard-occupancy bitmap of the write set (parallel pipeline only; the
    /// serial path leaves it zero). See VersionedStore::ShardFootprint.
    std::uint64_t footprint = 0;
  };

  /// Pipeline stage 1 input: a propagation record tagged with its gapless
  /// local pipeline sequence number.
  struct DecodeJob {
    std::uint64_t seq = 0;
    PropagationRecord record;
  };

  /// Pipeline stage 1 output: the record with all CPU work done — write set
  /// built, shard footprint extracted — ready for ordered allocation.
  struct DecodedRecord {
    enum class Kind { kStart, kCommit, kAbort };
    Kind kind = Kind::kStart;
    TxnId txn_id = kInvalidTxnId;
    Timestamp primary_ts = kInvalidTimestamp;  // start_ts / commit_ts
    std::unique_ptr<storage::WriteSet> writes;  // commits only
    std::uint64_t footprint = 0;                // commits only
  };

  /// A decoded commit awaiting its turn through the ordered section.
  struct PendingCommit {
    TxnId local_id = kInvalidTxnId;
    std::unique_ptr<storage::WriteSet> writes;
    Timestamp primary_ts = kInvalidTimestamp;
    std::uint64_t footprint = 0;
  };

  /// Re-sequences decode-pool output back into pipeline-sequence order. The
  /// ingest thread admits a sequence number only while it is inside a bounded
  /// window past the sequencer's position, which backpressures ingest when
  /// decoding or allocation falls behind instead of buffering without bound.
  class ReorderBuffer {
   public:
    /// Blocks until `seq` fits in the window; false once closed.
    bool Admit(std::uint64_t seq);
    void Put(std::uint64_t seq, DecodedRecord record);
    /// Pops the contiguous ready prefix, blocking until at least one record
    /// is ready. Empty result means closed and fully drained.
    std::vector<DecodedRecord> PopReady();
    void Close();
    /// Restores the initial open state (restart after Stop).
    void Reset();

   private:
    /// In-flight bound: records admitted but not yet handed to the
    /// sequencer. Large enough to keep the decode pool busy across bursts,
    /// small enough that a stalled pipeline caps memory at window x record.
    static constexpr std::uint64_t kWindow = 4096;

    std::mutex mu_;
    std::condition_variable ready_cv_;
    std::condition_variable space_cv_;
    std::map<std::uint64_t, DecodedRecord> pending_;
    std::uint64_t next_ = 0;  // next sequence number the sequencer consumes
    bool closed_ = false;
  };

  /// Hands applicators key-disjoint runs of allocated commits. Claiming is
  /// head-prefix only: a run always starts at the oldest unclaimed commit,
  /// and is claimable only while its shard footprint is disjoint from every
  /// in-flight run's (busy mask). Consequences: (a) two concurrent ApplyBatch
  /// calls never touch the same shard bit, so same-key version installs
  /// always happen in increasing timestamp order; (b) every claimed bit is
  /// owned by exactly one run, so completion clears with busy &= ~mask;
  /// (c) progress is guaranteed — the head conflicts only with runs that are
  /// actively installing and will complete.
  class ApplyScheduler {
   public:
    struct Run {
      std::vector<DirectTask> tasks;  // empty => closed and drained
      std::uint64_t mask = 0;
    };

    void Submit(DirectTask task);
    /// Blocks until the head run is claimable (or closed and drained), then
    /// claims up to `limit` consecutive head tasks whose combined footprint
    /// is disjoint from the busy mask. Tasks *within* a run may overlap each
    /// other — they install in one ordered ApplyBatch pass.
    Run ClaimRun(std::size_t limit);
    void CompleteRun(std::uint64_t mask);
    void Close();
    void Reopen();
    std::size_t depth() const;

   private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<DirectTask> pending_;
    std::uint64_t busy_ = 0;
    bool closed_ = false;
  };

  void RefresherLoop();
  void LegacyRefreshRecord(PropagationRecord& record, bool* shutdown);
  void DirectRefreshRecord(PropagationRecord& record);
  void ApplicatorLoop();
  void DirectApplicatorLoop();

  /// Parallel pipeline threads.
  void IngestLoop();
  void DecodeLoop();
  void SequencerLoop();
  void ParallelApplicatorLoop();
  DecodedRecord DecodeRecord(PropagationRecord& record) const;
  /// Resolves the local txn id for a primary commit (normal start-record path
  /// or the commit-without-start recovery); shared by both direct engines.
  TxnId ResolveCommitTxn(TxnId primary_txn_id);
  /// Pushes the accumulated commit batch through the ordered section: one
  /// translate staging pass, one BeginExternalCommitBatch, one visibility
  /// FIFO append, then submits every task to the apply scheduler.
  void FlushCommitBatch(std::vector<PendingCommit>* batch);

  /// Newest local refresh-commit timestamp whose primary timestamp is
  /// <= `primary_snapshot` — the local snapshot at which a remote read must
  /// run to observe exactly the primary prefix up to `primary_snapshot`.
  /// FailedPrecondition when that boundary was pruned away.
  Result<Timestamp> LocalBoundForPrimary(Timestamp primary_snapshot) const;

  /// Tallies one incoming record into the partial-replication counters.
  void CountIncoming(const PropagationRecord& record);

  void AdvanceSeq(Timestamp primary_commit_ts);
  /// Direct engine: pops the visibility FIFO up to the local watermark and
  /// advances seq(DBsec) to the newest covered primary commit.
  void AdvanceSeqToWatermark(Timestamp local_watermark);
  /// Group-apply counter updates shared by both direct apply paths.
  void CountGroupApply(std::size_t batch_size);

  engine::Database* db_;
  SecondaryOptions options_;
  /// True when this site runs the three-stage parallel replay pipeline
  /// (direct_apply with decode_threads > 0). Fixed at construction.
  bool parallel_engine_ = false;

  BlockingQueue<PropagationRecord> update_queue_;
  PendingQueue pending_queue_;  // legacy engine only
  BlockingQueue<ApplyTask> tasks_;
  BlockingQueue<DirectTask> direct_tasks_;  // serial direct engine only

  /// Parallel pipeline plumbing (unused by the other engines).
  BlockingQueue<DecodeJob> decode_queue_;
  ReorderBuffer reorder_;
  ApplyScheduler scheduler_;

  /// Legacy engine: refresh transactions begun on start records, keyed by
  /// primary TxnId. Touched only by the refresher thread.
  std::map<TxnId, std::unique_ptr<txn::Transaction>> refresh_txns_;
  /// Direct engines: local txn ids of externally started transactions, keyed
  /// by primary TxnId. Touched only by the refresher thread (serial) or the
  /// sequencer thread (parallel) — never both in the same configuration.
  std::map<TxnId, TxnId> direct_txns_;

  std::atomic<Timestamp> applied_seq_{0};
  mutable std::mutex seq_mu_;
  mutable std::condition_variable seq_cv_;

  /// Direct engine: refresh commits awaiting visibility, in allocation (==
  /// local timestamp == primary commit) order. Applicators pop the prefix
  /// the watermark has passed.
  mutable std::mutex visibility_mu_;
  std::deque<std::pair<Timestamp, Timestamp>> visibility_fifo_;

  /// Reader-writer lock: the commit hook and the refresher write, every
  /// secondary read translates under a shared lock (the hot read path).
  mutable std::shared_mutex translate_mu_;
  std::unordered_map<Timestamp, Timestamp> local_to_primary_;
  /// Staged translations keyed by local TxnId, published by the commit hook.
  std::unordered_map<TxnId, Timestamp> pending_translation_;
  /// (primary, local) commit-timestamp pairs of every refresh commit, in
  /// allocation order — strictly increasing in both components, so either
  /// coordinate binary-searches the other (PrimaryPrefixAtLocal /
  /// LocalBoundForPrimary). Pruning drops the prefix below the translation
  /// horizon but always keeps the newest pruned entry as a boundary
  /// sentinel, so bound lookups stay exact down to the horizon. Guarded by
  /// translate_mu_.
  std::deque<std::pair<Timestamp, Timestamp>> primary_local_order_;

  std::atomic<std::uint64_t> refreshed_count_{0};
  std::atomic<std::uint64_t> ro_routed_fresh_{0};
  std::atomic<std::uint64_t> ro_blocked_on_freshness_{0};
  std::atomic<std::uint64_t> active_reads_{0};
  /// EWMA of active_reads_, fixed-point x1024, alpha = 1/8 (see
  /// SampleLoadEstimate).
  std::atomic<std::uint64_t> load_ewma_{0};
  std::atomic<std::uint64_t> stream_discontinuities_{0};
  std::atomic<std::uint64_t> records_filtered_{0};
  std::atomic<std::uint64_t> updates_received_{0};
  std::atomic<std::uint64_t> update_bytes_received_{0};
  std::atomic<std::uint64_t> remote_reads_served_{0};
  std::atomic<std::uint64_t> group_applies_{0};
  std::atomic<std::uint64_t> group_applied_commits_{0};
  std::atomic<std::uint64_t> max_group_apply_{0};

  std::thread refresher_;
  std::vector<std::thread> decoders_;
  std::thread sequencer_;
  std::vector<std::thread> applicators_;
  bool started_ = false;
};

}  // namespace replication
}  // namespace lazysi

#endif  // LAZYSI_REPLICATION_SECONDARY_H_
